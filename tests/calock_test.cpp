// Lock-based CA tree specifics: the range_update extension ([16], §3 "the
// use of locks makes it easier to extend the interface"), adaptation
// counters, and the Im-Tr clone operation.
#include "calock/ca_tree.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "common/spin_barrier.hpp"
#include "imtr/imtr_set.hpp"

namespace cats::calock {
namespace {

TEST(CaRangeUpdate, TransformsExactlyTheRange) {
  CaTree tree;
  for (Key k = 0; k < 100; ++k) tree.insert(k, 10);
  const std::size_t updated =
      tree.range_update(20, 40, [](Key, Value v) { return v * 2; });
  EXPECT_EQ(updated, 21u);
  Value v = 0;
  ASSERT_TRUE(tree.lookup(19, &v));
  EXPECT_EQ(v, 10u);
  ASSERT_TRUE(tree.lookup(20, &v));
  EXPECT_EQ(v, 20u);
  ASSERT_TRUE(tree.lookup(40, &v));
  EXPECT_EQ(v, 20u);
  ASSERT_TRUE(tree.lookup(41, &v));
  EXPECT_EQ(v, 10u);
}

TEST(CaRangeUpdate, EmptyRangeIsNoop) {
  CaTree tree;
  tree.insert(5, 1);
  EXPECT_EQ(tree.range_update(100, 200, [](Key, Value v) { return v + 1; }),
            0u);
  Value v = 0;
  ASSERT_TRUE(tree.lookup(5, &v));
  EXPECT_EQ(v, 1u);
}

// Atomicity: concurrent range updates add +1 to every item in a window;
// concurrent range queries must always see a uniform value across the
// window (all items updated the same number of times).
TEST(CaRangeUpdate, AtomicUnderConcurrency) {
  CaTree tree;
  constexpr Key kWindow = 100;
  for (Key k = 0; k < kWindow; ++k) tree.insert(k, 0);
  // Force some structure so the window spans several base nodes under
  // churn around it.
  for (Key k = kWindow; k < kWindow + 5000; ++k) tree.insert(k, 0);

  std::atomic<bool> stop{false};
  std::atomic<int> violations{0};
  std::thread updater([&] {
    for (int i = 0; i < 1500; ++i) {
      tree.range_update(0, kWindow - 1,
                        [](Key, Value v) { return v + 1; });
    }
    stop.store(true);
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      while (!stop.load()) {
        Value first = 0;
        bool started = false;
        bool uniform = true;
        std::size_t count = 0;
        tree.range_query(0, kWindow - 1, [&](Key, Value v) {
          if (!started) {
            first = v;
            started = true;
          } else if (v != first) {
            uniform = false;
          }
          ++count;
        });
        if (!uniform || count != kWindow) violations.fetch_add(1);
      }
    });
  }
  updater.join();
  for (auto& th : readers) th.join();
  EXPECT_EQ(violations.load(), 0);
  Value v = 0;
  ASSERT_TRUE(tree.lookup(0, &v));
  EXPECT_EQ(v, 1500u);
}

// Deterministic contention: a slow range_update holds the base lock while
// another thread's update arrives — its try_lock fails (the CA tree's
// contention signal), the statistics jump, and a split follows.  This
// avoids depending on preemption timing (on this host, CPU-bound threads
// get very long timeslices and genuine try_lock failures are ~1 in 10^5).
TEST(CaAdapt, ContendedLockAcquisitionCausesSplit) {
  Config config;
  config.high_cont = 0;  // one contended lock acquisition splits
  config.low_cont = -1;  // floor the drift right below the threshold: on
                         // this host timeslices are enormous, so contended
                         // events are too rare to out-accumulate the -1/op
                         // drift against the default -1000 floor
  CaTree tree(reclaim::Domain::global(), config);
  for (Key k = 0; k < 4096; ++k) tree.insert(k, 1);
  ASSERT_EQ(tree.route_node_count(), 0u);

  // The pre-fill drifts the statistics down to low_cont, so one contended
  // acquisition is not enough to cross the split threshold: keep a
  // range_update loop holding the base locks so most of our updates are
  // contended and the statistics climb past it.
  std::atomic<bool> stop{false};
  std::thread holder([&] {
    while (!stop.load()) {
      tree.range_update(0, 4095, [&](Key, Value v) { return v + 1; });
    }
  });
  for (int i = 0; i < 100'000 && tree.splits() == 0; ++i) {
    tree.insert(1 + (i % 4000), 7);
  }
  stop.store(true);
  holder.join();
  EXPECT_GT(tree.splits(), 0u);
  // Contents survived: 4096 original keys still present.
  EXPECT_EQ(tree.size(), 4096u);
}

TEST(CaAdapt, UncontendedDriftCausesJoins) {
  Config config;
  config.high_cont = 0;
  config.low_cont = -50;
  config.low_cont_contrib = 1;
  CaTree tree(reclaim::Domain::global(), config);
  for (Key k = 0; k < 4096; ++k) tree.insert(k, 1);

  // Build structure deterministically with the maintenance API.
  Xoshiro256 rng(3);
  for (int i = 0; i < 50 && tree.route_node_count() < 8; ++i) {
    tree.force_split(rng.next_in(0, 4095));
  }
  ASSERT_GT(tree.splits(), 0u);
  ASSERT_GT(tree.route_node_count(), 0u);

  // Single-threaded drift: joins collapse the structure again.
  for (int i = 0; i < 200'000 && tree.route_node_count() > 0; ++i) {
    tree.insert(i % 4096, 9);
  }
  EXPECT_GT(tree.joins(), 0u);
  EXPECT_EQ(tree.route_node_count(), 0u);
  EXPECT_EQ(tree.size(), 4096u);
}

TEST(ImtrClone, CloneIsSnapshotIsolated) {
  imtr::ImTreeSet set;
  for (Key k = 0; k < 1000; ++k) set.insert(k, 1);
  imtr::ImTreeSet copy = set.clone();
  EXPECT_EQ(copy.size(), 1000u);

  // Mutating the original never shows in the clone, and vice versa.
  set.insert(5000, 9);
  set.remove(0);
  copy.insert(6000, 9);
  EXPECT_EQ(set.size(), 1000u);   // +1 -1
  EXPECT_EQ(copy.size(), 1001u);  // +1
  EXPECT_FALSE(copy.lookup(5000));
  EXPECT_TRUE(copy.lookup(0));
  EXPECT_FALSE(set.lookup(6000));
}

TEST(ImtrClone, CloneUnderConcurrentUpdates) {
  imtr::ImTreeSet set;
  for (Key k = 0; k < 2000; ++k) set.insert(k, 1);
  std::atomic<bool> stop{false};
  std::thread churn([&] {
    Xoshiro256 rng(9);
    while (!stop.load()) {
      const Key k = rng.next_in(0, 1999);
      if (rng.next_below(2) == 0) {
        set.remove(k);
      } else {
        set.insert(k, 2);
      }
    }
  });
  for (int i = 0; i < 200; ++i) {
    imtr::ImTreeSet copy = set.clone();
    // The clone must be internally consistent: sorted, size == walk count.
    std::size_t count = 0;
    Key last = kKeyMin;
    bool ordered = true;
    copy.range_query(kKeyMin, kKeyMax, [&](Key k, Value) {
      if (count > 0 && k <= last) ordered = false;
      last = k;
      ++count;
    });
    EXPECT_TRUE(ordered);
    EXPECT_EQ(count, copy.size());
  }
  stop.store(true);
  churn.join();
}

}  // namespace
}  // namespace cats::calock
