// SkipList-specific tests: marked-pointer deletion protocol, level
// distribution, concurrent update safety, and the (documented) fact that
// its range queries are not atomic snapshots.
#include "skiplist/skiplist.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <set>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "common/spin_barrier.hpp"

namespace cats::skiplist {
namespace {

TEST(SkipListBasic, InsertRemoveLookup) {
  SkipList list;
  EXPECT_TRUE(list.insert(5, 50));
  EXPECT_FALSE(list.insert(5, 51));  // in-place value update
  Value v = 0;
  ASSERT_TRUE(list.lookup(5, &v));
  EXPECT_EQ(v, 51u);
  EXPECT_TRUE(list.remove(5));
  EXPECT_FALSE(list.remove(5));
  EXPECT_FALSE(list.lookup(5));
}

TEST(SkipListBasic, ReinsertAfterRemove) {
  SkipList list;
  for (int round = 0; round < 50; ++round) {
    EXPECT_TRUE(list.insert(7, static_cast<Value>(round))) << round;
    EXPECT_TRUE(list.remove(7)) << round;
  }
  EXPECT_EQ(list.size(), 0u);
}

TEST(SkipListBasic, OrderedTraversal) {
  SkipList list;
  Xoshiro256 rng(5);
  std::set<Key> keys;
  for (int i = 0; i < 5000; ++i) {
    const Key k = rng.next_in(1, 1'000'000);
    keys.insert(k);
    list.insert(k, 1);
  }
  std::vector<Key> seen;
  list.range_query(kKeyMin + 1, kKeyMax - 1,
                   [&](Key k, Value) { seen.push_back(k); });
  ASSERT_EQ(seen.size(), keys.size());
  auto it = keys.begin();
  for (Key k : seen) EXPECT_EQ(k, *it++);
}

TEST(SkipListBasic, SizeIgnoresLogicallyDeleted) {
  SkipList list;
  for (Key k = 1; k <= 100; ++k) list.insert(k, 1);
  for (Key k = 1; k <= 100; k += 2) list.remove(k);
  EXPECT_EQ(list.size(), 50u);
}

TEST(SkipListConcurrent, DisjointStripes) {
  SkipList list;
  constexpr int kThreads = 6;
  constexpr int kOps = 20'000;
  SpinBarrier barrier(kThreads);
  std::vector<std::map<Key, Value>> models(kThreads);
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(t * 7 + 1);
      auto& model = models[t];
      barrier.arrive_and_wait();
      for (int i = 0; i < kOps; ++i) {
        const Key k = rng.next_in(0, 2000) * kThreads + t + 1;
        switch (rng.next_below(3)) {
          case 0: {
            const Value v = rng.next() | 1;
            if (list.insert(k, v) != (model.count(k) == 0)) failures++;
            model[k] = v;
            break;
          }
          case 1:
            if (list.remove(k) != (model.erase(k) == 1)) failures++;
            break;
          default: {
            Value v = 0;
            const bool found = list.lookup(k, &v);
            auto it = model.find(k);
            if (found != (it != model.end())) failures++;
            else if (found && v != it->second) failures++;
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  std::size_t expected = 0;
  for (auto& m : models) expected += m.size();
  EXPECT_EQ(list.size(), expected);
}

// Concurrent same-key hammering: inserts and removes of one key from many
// threads must keep the list consistent (the marked-pointer protocol's
// hardest case) and end in a definite state.
TEST(SkipListConcurrent, SameKeyHammering) {
  SkipList list;
  constexpr int kThreads = 8;
  SpinBarrier barrier(kThreads);
  std::atomic<long> net{0};  // inserts that returned true minus removes true
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(t + 3);
      barrier.arrive_and_wait();
      for (int i = 0; i < 30'000; ++i) {
        if (rng.next_below(2) == 0) {
          if (list.insert(42, 1)) net.fetch_add(1);
        } else {
          if (list.remove(42)) net.fetch_sub(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  // Every successful insert is matched by at most one successful remove;
  // the net count must equal the final presence.
  EXPECT_EQ(net.load(), list.lookup(42) ? 1 : 0);
  EXPECT_EQ(list.size(), list.lookup(42) ? 1u : 0u);
}

// Demonstrates (without asserting, since the schedule may not cooperate on
// a single-core host) that the skiplist's range query is NOT a snapshot:
// the harness counts any observation where a sum-preserving overwrite pair
// is seen half-applied.  For the linearizable structures this count must be
// zero — see structures_test; for the skiplist we only log it.
TEST(SkipListConcurrent, RangeQueriesAreNotSnapshots) {
  SkipList list;
  constexpr Key kWindow = 64;
  for (Key k = 1; k <= kWindow; ++k) list.insert(k, 100);
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    Xoshiro256 rng(1);
    while (!stop.load()) {
      // Move 50 units from a to b (two non-atomic writes).
      const Key a = rng.next_in(1, kWindow);
      const Key b = rng.next_in(1, kWindow);
      if (a == b) continue;
      list.insert(a, 50);
      list.insert(b, 150);
      list.insert(a, 100);
      list.insert(b, 100);
    }
  });
  int torn = 0;
  for (int i = 0; i < 20'000; ++i) {
    Value sum = 0;
    list.range_query(1, kWindow, [&](Key, Value v) { sum += v; });
    if (sum != kWindow * 100) ++torn;
  }
  stop.store(true);
  writer.join();
  // No assertion on `torn`: zero just means the scheduler never preempted
  // mid-pair.  The structure promises nothing here, unlike the others.
  RecordProperty("torn_observations", torn);
  SUCCEED();
}

}  // namespace
}  // namespace cats::skiplist
