// Tests for the observability layer (src/obs): sharded counters, log-scale
// histograms, the adaptation-trace ring buffer, and the exporters (table /
// JSON round-trip / Prometheus).
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <sstream>
#include <thread>
#include <vector>

#include "lfca/lfca_tree.hpp"
#include "obs/counters.hpp"
#include "obs/export.hpp"
#include "obs/histogram.hpp"
#include "obs/json.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace {

using namespace cats;

// ---------------------------------------------------------------------------
// Sharded counters.
// ---------------------------------------------------------------------------

TEST(ObsCounters, SingleThreadAddAndRead) {
  obs::ShardedCounters<4> c;
  EXPECT_EQ(c.read(0), 0u);
  c.add(0);
  c.add(0, 41);
  c.add(3, 7);
  EXPECT_EQ(c.read(0), 42u);
  EXPECT_EQ(c.read(1), 0u);
  EXPECT_EQ(c.read(3), 7u);
  c.reset();
  EXPECT_EQ(c.read(0), 0u);
  EXPECT_EQ(c.read(3), 0u);
}

TEST(ObsCounters, AggregatesAcrossThreads) {
  obs::ShardedCounters<2> c;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kAdds = 20'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kAdds; ++i) c.add(1, 3);
    });
  }
  for (auto& t : threads) t.join();
  // Exact in quiescence: every relaxed increment landed in some shard.
  EXPECT_EQ(c.read(1), kThreads * kAdds * 3);
  EXPECT_EQ(c.read(0), 0u);
}

TEST(ObsCounters, ShardIndexStablePerThread) {
  const std::size_t mine = obs::shard_index();
  EXPECT_EQ(obs::shard_index(), mine);
  EXPECT_LT(mine, obs::kShards);
}

// ---------------------------------------------------------------------------
// Log-scale histograms.
// ---------------------------------------------------------------------------

TEST(ObsHistogram, BucketBoundaries) {
  EXPECT_EQ(obs::histogram_bucket(0), 0u);
  EXPECT_EQ(obs::histogram_bucket(1), 1u);
  EXPECT_EQ(obs::histogram_bucket(2), 2u);
  EXPECT_EQ(obs::histogram_bucket(3), 2u);
  EXPECT_EQ(obs::histogram_bucket(4), 3u);
  EXPECT_EQ(obs::histogram_bucket(255), 8u);
  EXPECT_EQ(obs::histogram_bucket(256), 9u);
  EXPECT_EQ(obs::histogram_bucket(std::numeric_limits<std::uint64_t>::max()),
            obs::kHistogramBuckets - 1);

  EXPECT_EQ(obs::bucket_low(0), 0u);
  EXPECT_EQ(obs::bucket_high(0), 0u);
  EXPECT_EQ(obs::bucket_low(1), 1u);
  EXPECT_EQ(obs::bucket_high(1), 1u);
  EXPECT_EQ(obs::bucket_low(8), 128u);
  EXPECT_EQ(obs::bucket_high(8), 255u);
  EXPECT_EQ(obs::bucket_high(obs::kHistogramBuckets - 1),
            std::numeric_limits<std::uint64_t>::max());

  // Every sample falls inside its own bucket's [low, high] range.
  for (std::uint64_t v : {0ull, 1ull, 2ull, 3ull, 7ull, 8ull, 1023ull,
                          1024ull, 123456789ull}) {
    const std::size_t b = obs::histogram_bucket(v);
    EXPECT_GE(v, obs::bucket_low(b)) << v;
    EXPECT_LE(v, obs::bucket_high(b)) << v;
  }
}

TEST(ObsHistogram, RecordSnapshotQuantiles) {
  obs::LogHistogram h;
  for (int i = 0; i < 10; ++i) h.record(1);
  for (int i = 0; i < 90; ++i) h.record(1024);
  const obs::HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 100u);
  EXPECT_EQ(s.sum, 10u + 90u * 1024u);
  EXPECT_EQ(s.buckets[1], 10u);
  EXPECT_EQ(s.buckets[11], 90u);  // 1024 in [1024, 2047]
  EXPECT_EQ(s.quantile_bound(0.05), 1u);
  EXPECT_EQ(s.quantile_bound(0.5), 2047u);
  EXPECT_EQ(s.quantile_bound(0.99), 2047u);
  EXPECT_NEAR(s.mean(), (10.0 + 90.0 * 1024.0) / 100.0, 1e-9);

  h.reset();
  EXPECT_EQ(h.snapshot().count, 0u);
}

TEST(ObsHistogram, InterpolatedQuantiles) {
  // Empty histogram: every quantile is 0.
  obs::HistogramSnapshot empty{};
  EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);

  // Point mass: a single-value bucket interpolates to the value itself.
  obs::LogHistogram point;
  for (int i = 0; i < 100; ++i) point.record(1);
  EXPECT_DOUBLE_EQ(point.snapshot().quantile(0.01), 1.0);
  EXPECT_DOUBLE_EQ(point.snapshot().quantile(0.99), 1.0);

  // Two-mode distribution: 10 samples at 1, 90 in [1024, 2047].  The rank
  // interpolation lands q inside the wide bucket at the exact fraction:
  //   p50: rank 50, 10 below the bucket, (50-10)/90 of the way through.
  obs::LogHistogram h;
  for (int i = 0; i < 10; ++i) h.record(1);
  for (int i = 0; i < 90; ++i) h.record(1024);
  const obs::HistogramSnapshot s = h.snapshot();
  const double lo = 1024.0, hi = 2047.0;
  EXPECT_NEAR(s.quantile(0.5), lo + (50.0 - 10.0) / 90.0 * (hi - lo), 1e-9);
  EXPECT_NEAR(s.quantile(0.9), lo + (90.0 - 10.0) / 90.0 * (hi - lo), 1e-9);
  EXPECT_NEAR(s.quantile(0.99), lo + (99.0 - 10.0) / 90.0 * (hi - lo), 1e-9);
  // Ranks entirely inside the low bucket stay there.
  EXPECT_DOUBLE_EQ(s.quantile(0.05), 1.0);
  // Quantiles are monotone in q and clamp out-of-range q.
  double prev = 0.0;
  for (double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    const double v = s.quantile(q);
    EXPECT_GE(v, prev);
    prev = v;
  }
  EXPECT_DOUBLE_EQ(s.quantile(-1.0), s.quantile(0.0));
  EXPECT_DOUBLE_EQ(s.quantile(2.0), s.quantile(1.0));
  // The interpolated estimate never exceeds the conservative bound.
  for (double q : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_LE(s.quantile(q), static_cast<double>(s.quantile_bound(q)));
  }
}

TEST(ObsHistogram, MergesAcrossThreads) {
  obs::LogHistogram h;
  constexpr int kThreads = 4;
  constexpr std::uint64_t kSamples = 10'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (std::uint64_t i = 0; i < kSamples; ++i) {
        h.record(static_cast<std::uint64_t>(t) + 1);
      }
    });
  }
  for (auto& t : threads) t.join();
  const obs::HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, kThreads * kSamples);
  EXPECT_EQ(s.sum, (1u + 2u + 3u + 4u) * kSamples);
}

// ---------------------------------------------------------------------------
// Adaptation trace.
// ---------------------------------------------------------------------------

TEST(ObsTrace, RecordsAndDumpsInOrder) {
  obs::AdaptTrace trace;
  trace.record(obs::AdaptKind::kSplit, 2, 1001);
  trace.record(obs::AdaptKind::kJoin, 3, -1005);
  trace.record(obs::AdaptKind::kJoinAborted, 1, -1002);
  const auto events = trace.dump();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].kind, obs::AdaptKind::kSplit);
  EXPECT_EQ(events[0].depth, 2u);
  EXPECT_EQ(events[0].stat, 1001);
  EXPECT_EQ(events[1].kind, obs::AdaptKind::kJoin);
  EXPECT_EQ(events[2].kind, obs::AdaptKind::kJoinAborted);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].time_ns, events[i].time_ns);
  }
}

TEST(ObsTrace, RingWrapsKeepingNewestEntries) {
  obs::AdaptTrace trace;
  constexpr std::uint64_t kExtra = 100;
  const std::uint64_t total = obs::AdaptTrace::kRingSize + kExtra;
  for (std::uint64_t i = 0; i < total; ++i) {
    trace.record(obs::AdaptKind::kSplit, 0, static_cast<std::int32_t>(i));
  }
  EXPECT_EQ(trace.recorded(), total);
  const auto events = trace.dump();
  ASSERT_EQ(events.size(), obs::AdaptTrace::kRingSize);
  // The oldest kExtra entries were overwritten; the dump holds exactly the
  // newest kRingSize, still in order.
  std::int32_t min_stat = events[0].stat, max_stat = events[0].stat;
  for (const auto& e : events) {
    min_stat = std::min(min_stat, e.stat);
    max_stat = std::max(max_stat, e.stat);
  }
  EXPECT_EQ(min_stat, static_cast<std::int32_t>(kExtra));
  EXPECT_EQ(max_stat, static_cast<std::int32_t>(total - 1));

  trace.reset();
  EXPECT_EQ(trace.recorded(), 0u);
  EXPECT_TRUE(trace.dump().empty());
}

TEST(ObsTrace, ConcurrentRecordAndDump) {
  obs::AdaptTrace trace;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 3; ++t) {
    writers.emplace_back([&trace, &stop] {
      std::int32_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        trace.record(obs::AdaptKind::kJoin, 1, i++);
      }
    });
  }
  // Dump while writers wrap their rings; every surviving entry must be
  // intact (the seq tags drop torn slots).
  for (int round = 0; round < 50; ++round) {
    for (const auto& e : trace.dump()) {
      EXPECT_EQ(e.kind, obs::AdaptKind::kJoin);
      EXPECT_EQ(e.depth, 1u);
      EXPECT_GE(e.stat, 0);
    }
  }
  stop.store(true);
  for (auto& t : writers) t.join();
}

// ---------------------------------------------------------------------------
// Exporters.
// ---------------------------------------------------------------------------

obs::Snapshot make_test_snapshot() {
  obs::Snapshot snap;
  snap.add_counter("alpha", 42);
  snap.add_counter("weird \"name\"\n", 7);
  snap.add_gauge("backlog", 2.5);
  obs::LogHistogram h;
  h.record(0);
  h.record(1);
  h.record(100);
  h.record(1'000'000);
  snap.add_histogram("lat", h.snapshot());
  obs::TraceEvent e;
  e.time_ns = 123;
  e.kind = obs::AdaptKind::kJoin;
  e.depth = 3;
  e.stat = -5;
  e.thread = 1;
  snap.events.push_back(e);
  return snap;
}

TEST(ObsExport, JsonRoundTrip) {
  const obs::Snapshot snap = make_test_snapshot();
  std::ostringstream os;
  obs::write_json(os, snap);
  const obs::json::Value doc = obs::json::parse(os.str());

  EXPECT_EQ(doc.at("counters").at("alpha").as_uint(), 42u);
  EXPECT_EQ(doc.at("counters").at("weird \"name\"\n").as_uint(), 7u);
  EXPECT_DOUBLE_EQ(doc.at("gauges").at("backlog").as_number(), 2.5);

  const obs::json::Value& lat = doc.at("histograms").at("lat");
  EXPECT_EQ(lat.at("count").as_uint(), 4u);
  EXPECT_EQ(lat.at("sum").as_uint(), 1'000'101u);
  // Samples 0, 1, 100, 1000000 land in buckets 0, 1, 7, 20.
  const obs::json::Array& buckets = lat.at("buckets").as_array();
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0].at("bucket").as_uint(), 0u);
  EXPECT_EQ(buckets[1].at("bucket").as_uint(), 1u);
  EXPECT_EQ(buckets[2].at("bucket").as_uint(), 7u);
  EXPECT_EQ(buckets[2].at("low").as_uint(), 64u);
  EXPECT_EQ(buckets[3].at("bucket").as_uint(), 20u);
  for (const auto& b : buckets) EXPECT_EQ(b.at("count").as_uint(), 1u);

  const obs::json::Array& trace = doc.at("trace").as_array();
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_EQ(trace[0].at("t_ns").as_uint(), 123u);
  EXPECT_EQ(trace[0].at("kind").as_string(), "join");
  EXPECT_EQ(trace[0].at("depth").as_uint(), 3u);
  EXPECT_DOUBLE_EQ(trace[0].at("stat").as_number(), -5.0);
}

TEST(ObsExport, JsonParserRejectsMalformedInput) {
  EXPECT_THROW(obs::json::parse(""), std::runtime_error);
  EXPECT_THROW(obs::json::parse("{"), std::runtime_error);
  EXPECT_THROW(obs::json::parse("{\"a\":}"), std::runtime_error);
  EXPECT_THROW(obs::json::parse("[1,2,]"), std::runtime_error);
  EXPECT_THROW(obs::json::parse("123 trailing"), std::runtime_error);
  EXPECT_THROW(obs::json::parse("\"unterminated"), std::runtime_error);
}

TEST(ObsExport, TableAndPrometheusContainMetrics) {
  const obs::Snapshot snap = make_test_snapshot();

  std::ostringstream table;
  obs::write_table(table, snap);
  EXPECT_NE(table.str().find("alpha"), std::string::npos);
  EXPECT_NE(table.str().find("join"), std::string::npos);

  std::ostringstream prom;
  obs::write_prometheus(prom, snap);
  const std::string text = prom.str();
  EXPECT_NE(text.find("# TYPE cats_alpha counter"), std::string::npos);
  EXPECT_NE(text.find("cats_alpha 42"), std::string::npos);
  EXPECT_NE(text.find("# TYPE cats_lat histogram"), std::string::npos);
  EXPECT_NE(text.find("cats_lat_bucket{le=\"+Inf\"} 4"), std::string::npos);
  EXPECT_NE(text.find("cats_lat_sum 1000101"), std::string::npos);
  EXPECT_NE(text.find("cats_adaptation_events 1"), std::string::npos);
}

TEST(ObsExport, PrometheusEmitsInterpolatedQuantiles) {
  obs::Snapshot snap;
  obs::LogHistogram h;
  for (int i = 0; i < 10; ++i) h.record(1);
  for (int i = 0; i < 90; ++i) h.record(1024);
  snap.add_histogram("lat", h.snapshot());

  std::ostringstream prom;
  obs::write_prometheus(prom, snap);
  const std::string text = prom.str();
  EXPECT_NE(text.find("# TYPE cats_lat_quantile gauge"), std::string::npos);
  EXPECT_NE(text.find("cats_lat_quantile{q=\"0.5\"}"), std::string::npos);
  EXPECT_NE(text.find("cats_lat_quantile{q=\"0.9\"}"), std::string::npos);
  EXPECT_NE(text.find("cats_lat_quantile{q=\"0.99\"}"), std::string::npos);
}

TEST(ObsExport, SnapshotCounterLookup) {
  const obs::Snapshot snap = make_test_snapshot();
  EXPECT_EQ(snap.counter("alpha"), 42u);
  EXPECT_EQ(snap.counter("absent"), 0u);
}

#if CATS_OBS_ENABLED
// ---------------------------------------------------------------------------
// Non-destructive registry snapshots: the monitor's delta sampling relies
// on snapshot() leaving the counters untouched (reset() is quiescent-only).
// ---------------------------------------------------------------------------

TEST(ObsRegistry, SnapshotIsNonDestructive) {
  obs::Registry& reg = obs::Registry::instance();
  const obs::RegistryValues before = reg.snapshot();

  obs::count(obs::GCounter::kHarnessOps, 5);
  obs::record(obs::GHistogram::kLookupLatencyNs, 100);

  const obs::RegistryValues a = reg.snapshot();
  const obs::RegistryValues b = reg.snapshot();
  EXPECT_EQ(a.counter(obs::GCounter::kHarnessOps),
            before.counter(obs::GCounter::kHarnessOps) + 5);
  // Reading twice returns the same values — nothing was consumed.
  EXPECT_EQ(b.counter(obs::GCounter::kHarnessOps),
            a.counter(obs::GCounter::kHarnessOps));
  EXPECT_EQ(b.histogram(obs::GHistogram::kLookupLatencyNs).count,
            a.histogram(obs::GHistogram::kLookupLatencyNs).count);

  obs::count(obs::GCounter::kHarnessOps, 2);
  const obs::RegistryValues c = reg.snapshot();
  EXPECT_EQ(c.counter(obs::GCounter::kHarnessOps),
            a.counter(obs::GCounter::kHarnessOps) + 2);
}
#endif  // CATS_OBS_ENABLED

// ---------------------------------------------------------------------------
// Integration with the tree: paper counters flow into snapshots, and (in
// CATS_OBS builds) adaptations land in the global trace.
// ---------------------------------------------------------------------------

TEST(ObsIntegration, TreeStatsAppendToSnapshot) {
  reclaim::Domain domain;
  {
    lfca::LfcaTree tree(domain);
    for (Key k = 1; k <= 256; ++k) tree.insert(k, k);
    ASSERT_TRUE(tree.force_split(128));
    const lfca::Stats stats = tree.stats();
    EXPECT_GE(stats.splits, 1u);

    obs::Snapshot snap;
    stats.append_to(snap, "lfca_");
    EXPECT_EQ(snap.counter("lfca_splits"), stats.splits);

    std::ostringstream os;
    obs::write_json(os, snap);
    const obs::json::Value doc = obs::json::parse(os.str());
    EXPECT_EQ(doc.at("counters").at("lfca_splits").as_uint(), stats.splits);
  }
  domain.drain();
}

#if CATS_OBS_ENABLED
TEST(ObsIntegration, ForcedAdaptationsReachGlobalTrace) {
  obs::Registry::instance().reset();
  reclaim::Domain domain;
  {
    lfca::LfcaTree tree(domain);
    for (Key k = 1; k <= 256; ++k) tree.insert(k, k);
    ASSERT_TRUE(tree.force_split(128));
    ASSERT_TRUE(tree.force_join(128));
  }
  domain.drain();

  const obs::Snapshot snap = obs::global_snapshot();
  bool saw_split = false, saw_join = false;
  for (const auto& e : snap.events) {
    saw_split |= e.kind == obs::AdaptKind::kSplit;
    saw_join |= e.kind == obs::AdaptKind::kJoin;
  }
  EXPECT_TRUE(saw_split);
  EXPECT_TRUE(saw_join);
  EXPECT_GT(snap.counter("ebr_retired"), 0u);
  EXPECT_GT(snap.counter("treap_node_allocs"), 0u);
}
#endif  // CATS_OBS_ENABLED

}  // namespace
