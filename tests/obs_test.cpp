// Tests for the observability layer (src/obs): sharded counters, log-scale
// histograms, the adaptation-trace ring buffer, and the exporters (table /
// JSON round-trip / Prometheus).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <limits>
#include <sstream>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "lfca/lfca_tree.hpp"
#include "obs/counters.hpp"
#include "obs/export.hpp"
#include "obs/flight/annot.hpp"
#include "obs/flight/flight.hpp"
#include "obs/flight/perf_counters.hpp"
#include "obs/flight/perfetto.hpp"
#include "obs/histogram.hpp"
#include "obs/json.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace {

using namespace cats;

// ---------------------------------------------------------------------------
// Sharded counters.
// ---------------------------------------------------------------------------

TEST(ObsCounters, SingleThreadAddAndRead) {
  obs::ShardedCounters<4> c;
  EXPECT_EQ(c.read(0), 0u);
  c.add(0);
  c.add(0, 41);
  c.add(3, 7);
  EXPECT_EQ(c.read(0), 42u);
  EXPECT_EQ(c.read(1), 0u);
  EXPECT_EQ(c.read(3), 7u);
  c.reset();
  EXPECT_EQ(c.read(0), 0u);
  EXPECT_EQ(c.read(3), 0u);
}

TEST(ObsCounters, AggregatesAcrossThreads) {
  obs::ShardedCounters<2> c;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kAdds = 20'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kAdds; ++i) c.add(1, 3);
    });
  }
  for (auto& t : threads) t.join();
  // Exact in quiescence: every relaxed increment landed in some shard.
  EXPECT_EQ(c.read(1), kThreads * kAdds * 3);
  EXPECT_EQ(c.read(0), 0u);
}

TEST(ObsCounters, ShardIndexStablePerThread) {
  const std::size_t mine = obs::shard_index();
  EXPECT_EQ(obs::shard_index(), mine);
  EXPECT_LT(mine, obs::kShards);
}

// ---------------------------------------------------------------------------
// Log-scale histograms.
// ---------------------------------------------------------------------------

TEST(ObsHistogram, BucketBoundaries) {
  EXPECT_EQ(obs::histogram_bucket(0), 0u);
  EXPECT_EQ(obs::histogram_bucket(1), 1u);
  EXPECT_EQ(obs::histogram_bucket(2), 2u);
  EXPECT_EQ(obs::histogram_bucket(3), 2u);
  EXPECT_EQ(obs::histogram_bucket(4), 3u);
  EXPECT_EQ(obs::histogram_bucket(255), 8u);
  EXPECT_EQ(obs::histogram_bucket(256), 9u);
  EXPECT_EQ(obs::histogram_bucket(std::numeric_limits<std::uint64_t>::max()),
            obs::kHistogramBuckets - 1);

  EXPECT_EQ(obs::bucket_low(0), 0u);
  EXPECT_EQ(obs::bucket_high(0), 0u);
  EXPECT_EQ(obs::bucket_low(1), 1u);
  EXPECT_EQ(obs::bucket_high(1), 1u);
  EXPECT_EQ(obs::bucket_low(8), 128u);
  EXPECT_EQ(obs::bucket_high(8), 255u);
  EXPECT_EQ(obs::bucket_high(obs::kHistogramBuckets - 1),
            std::numeric_limits<std::uint64_t>::max());

  // Every sample falls inside its own bucket's [low, high] range.
  for (std::uint64_t v : {0ull, 1ull, 2ull, 3ull, 7ull, 8ull, 1023ull,
                          1024ull, 123456789ull}) {
    const std::size_t b = obs::histogram_bucket(v);
    EXPECT_GE(v, obs::bucket_low(b)) << v;
    EXPECT_LE(v, obs::bucket_high(b)) << v;
  }
}

TEST(ObsHistogram, RecordSnapshotQuantiles) {
  obs::LogHistogram h;
  for (int i = 0; i < 10; ++i) h.record(1);
  for (int i = 0; i < 90; ++i) h.record(1024);
  const obs::HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 100u);
  EXPECT_EQ(s.sum, 10u + 90u * 1024u);
  EXPECT_EQ(s.buckets[1], 10u);
  EXPECT_EQ(s.buckets[11], 90u);  // 1024 in [1024, 2047]
  EXPECT_EQ(s.quantile_bound(0.05), 1u);
  EXPECT_EQ(s.quantile_bound(0.5), 2047u);
  EXPECT_EQ(s.quantile_bound(0.99), 2047u);
  EXPECT_NEAR(s.mean(), (10.0 + 90.0 * 1024.0) / 100.0, 1e-9);

  h.reset();
  EXPECT_EQ(h.snapshot().count, 0u);
}

TEST(ObsHistogram, InterpolatedQuantiles) {
  // Empty histogram: every quantile is 0.
  obs::HistogramSnapshot empty{};
  EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);

  // Point mass: a single-value bucket interpolates to the value itself.
  obs::LogHistogram point;
  for (int i = 0; i < 100; ++i) point.record(1);
  EXPECT_DOUBLE_EQ(point.snapshot().quantile(0.01), 1.0);
  EXPECT_DOUBLE_EQ(point.snapshot().quantile(0.99), 1.0);

  // Two-mode distribution: 10 samples at 1, 90 in [1024, 2047].  The rank
  // interpolation lands q inside the wide bucket at the exact fraction:
  //   p50: rank 50, 10 below the bucket, (50-10)/90 of the way through.
  obs::LogHistogram h;
  for (int i = 0; i < 10; ++i) h.record(1);
  for (int i = 0; i < 90; ++i) h.record(1024);
  const obs::HistogramSnapshot s = h.snapshot();
  const double lo = 1024.0, hi = 2047.0;
  EXPECT_NEAR(s.quantile(0.5), lo + (50.0 - 10.0) / 90.0 * (hi - lo), 1e-9);
  EXPECT_NEAR(s.quantile(0.9), lo + (90.0 - 10.0) / 90.0 * (hi - lo), 1e-9);
  EXPECT_NEAR(s.quantile(0.99), lo + (99.0 - 10.0) / 90.0 * (hi - lo), 1e-9);
  // Ranks entirely inside the low bucket stay there.
  EXPECT_DOUBLE_EQ(s.quantile(0.05), 1.0);
  // Quantiles are monotone in q and clamp out-of-range q.
  double prev = 0.0;
  for (double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    const double v = s.quantile(q);
    EXPECT_GE(v, prev);
    prev = v;
  }
  EXPECT_DOUBLE_EQ(s.quantile(-1.0), s.quantile(0.0));
  EXPECT_DOUBLE_EQ(s.quantile(2.0), s.quantile(1.0));
  // The interpolated estimate never exceeds the conservative bound.
  for (double q : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_LE(s.quantile(q), static_cast<double>(s.quantile_bound(q)));
  }
}

TEST(ObsHistogram, MergesAcrossThreads) {
  obs::LogHistogram h;
  constexpr int kThreads = 4;
  constexpr std::uint64_t kSamples = 10'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (std::uint64_t i = 0; i < kSamples; ++i) {
        h.record(static_cast<std::uint64_t>(t) + 1);
      }
    });
  }
  for (auto& t : threads) t.join();
  const obs::HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, kThreads * kSamples);
  EXPECT_EQ(s.sum, (1u + 2u + 3u + 4u) * kSamples);
}

// ---------------------------------------------------------------------------
// Adaptation trace.
// ---------------------------------------------------------------------------

TEST(ObsTrace, RecordsAndDumpsInOrder) {
  obs::AdaptTrace trace;
  trace.record(obs::AdaptKind::kSplit, 2, 1001);
  trace.record(obs::AdaptKind::kJoin, 3, -1005);
  trace.record(obs::AdaptKind::kJoinAborted, 1, -1002);
  const auto events = trace.dump();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].kind, obs::AdaptKind::kSplit);
  EXPECT_EQ(events[0].depth, 2u);
  EXPECT_EQ(events[0].stat, 1001);
  EXPECT_EQ(events[1].kind, obs::AdaptKind::kJoin);
  EXPECT_EQ(events[2].kind, obs::AdaptKind::kJoinAborted);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].time_ns, events[i].time_ns);
  }
}

TEST(ObsTrace, RingWrapsKeepingNewestEntries) {
  obs::AdaptTrace trace;
  constexpr std::uint64_t kExtra = 100;
  const std::uint64_t total = obs::AdaptTrace::kRingSize + kExtra;
  for (std::uint64_t i = 0; i < total; ++i) {
    trace.record(obs::AdaptKind::kSplit, 0, static_cast<std::int32_t>(i));
  }
  EXPECT_EQ(trace.recorded(), total);
  const auto events = trace.dump();
  ASSERT_EQ(events.size(), obs::AdaptTrace::kRingSize);
  // The oldest kExtra entries were overwritten; the dump holds exactly the
  // newest kRingSize, still in order.
  std::int32_t min_stat = events[0].stat, max_stat = events[0].stat;
  for (const auto& e : events) {
    min_stat = std::min(min_stat, e.stat);
    max_stat = std::max(max_stat, e.stat);
  }
  EXPECT_EQ(min_stat, static_cast<std::int32_t>(kExtra));
  EXPECT_EQ(max_stat, static_cast<std::int32_t>(total - 1));

  trace.reset();
  EXPECT_EQ(trace.recorded(), 0u);
  EXPECT_TRUE(trace.dump().empty());
}

TEST(ObsTrace, ConcurrentRecordAndDump) {
  obs::AdaptTrace trace;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 3; ++t) {
    writers.emplace_back([&trace, &stop] {
      std::int32_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        trace.record(obs::AdaptKind::kJoin, 1, i++);
      }
    });
  }
  // Dump while writers wrap their rings; every surviving entry must be
  // intact (the seq tags drop torn slots).
  for (int round = 0; round < 50; ++round) {
    for (const auto& e : trace.dump()) {
      EXPECT_EQ(e.kind, obs::AdaptKind::kJoin);
      EXPECT_EQ(e.depth, 1u);
      EXPECT_GE(e.stat, 0);
    }
  }
  stop.store(true);
  for (auto& t : writers) t.join();
}

// ---------------------------------------------------------------------------
// Exporters.
// ---------------------------------------------------------------------------

obs::Snapshot make_test_snapshot() {
  obs::Snapshot snap;
  snap.add_counter("alpha", 42);
  snap.add_counter("weird \"name\"\n", 7);
  snap.add_gauge("backlog", 2.5);
  obs::LogHistogram h;
  h.record(0);
  h.record(1);
  h.record(100);
  h.record(1'000'000);
  snap.add_histogram("lat", h.snapshot());
  obs::TraceEvent e;
  e.time_ns = 123;
  e.kind = obs::AdaptKind::kJoin;
  e.depth = 3;
  e.stat = -5;
  e.thread = 1;
  snap.events.push_back(e);
  return snap;
}

TEST(ObsExport, JsonRoundTrip) {
  const obs::Snapshot snap = make_test_snapshot();
  std::ostringstream os;
  obs::write_json(os, snap);
  const obs::json::Value doc = obs::json::parse(os.str());

  EXPECT_EQ(doc.at("counters").at("alpha").as_uint(), 42u);
  EXPECT_EQ(doc.at("counters").at("weird \"name\"\n").as_uint(), 7u);
  EXPECT_DOUBLE_EQ(doc.at("gauges").at("backlog").as_number(), 2.5);

  const obs::json::Value& lat = doc.at("histograms").at("lat");
  EXPECT_EQ(lat.at("count").as_uint(), 4u);
  EXPECT_EQ(lat.at("sum").as_uint(), 1'000'101u);
  // Samples 0, 1, 100, 1000000 land in buckets 0, 1, 7, 20.
  const obs::json::Array& buckets = lat.at("buckets").as_array();
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0].at("bucket").as_uint(), 0u);
  EXPECT_EQ(buckets[1].at("bucket").as_uint(), 1u);
  EXPECT_EQ(buckets[2].at("bucket").as_uint(), 7u);
  EXPECT_EQ(buckets[2].at("low").as_uint(), 64u);
  EXPECT_EQ(buckets[3].at("bucket").as_uint(), 20u);
  for (const auto& b : buckets) EXPECT_EQ(b.at("count").as_uint(), 1u);

  const obs::json::Array& trace = doc.at("trace").as_array();
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_EQ(trace[0].at("t_ns").as_uint(), 123u);
  EXPECT_EQ(trace[0].at("kind").as_string(), "join");
  EXPECT_EQ(trace[0].at("depth").as_uint(), 3u);
  EXPECT_DOUBLE_EQ(trace[0].at("stat").as_number(), -5.0);
}

TEST(ObsExport, JsonParserRejectsMalformedInput) {
  EXPECT_THROW(obs::json::parse(""), std::runtime_error);
  EXPECT_THROW(obs::json::parse("{"), std::runtime_error);
  EXPECT_THROW(obs::json::parse("{\"a\":}"), std::runtime_error);
  EXPECT_THROW(obs::json::parse("[1,2,]"), std::runtime_error);
  EXPECT_THROW(obs::json::parse("123 trailing"), std::runtime_error);
  EXPECT_THROW(obs::json::parse("\"unterminated"), std::runtime_error);
}

TEST(ObsExport, TableAndPrometheusContainMetrics) {
  const obs::Snapshot snap = make_test_snapshot();

  std::ostringstream table;
  obs::write_table(table, snap);
  EXPECT_NE(table.str().find("alpha"), std::string::npos);
  EXPECT_NE(table.str().find("join"), std::string::npos);

  std::ostringstream prom;
  obs::write_prometheus(prom, snap);
  const std::string text = prom.str();
  EXPECT_NE(text.find("# TYPE cats_alpha counter"), std::string::npos);
  EXPECT_NE(text.find("cats_alpha 42"), std::string::npos);
  EXPECT_NE(text.find("# TYPE cats_lat histogram"), std::string::npos);
  EXPECT_NE(text.find("cats_lat_bucket{le=\"+Inf\"} 4"), std::string::npos);
  EXPECT_NE(text.find("cats_lat_sum 1000101"), std::string::npos);
  EXPECT_NE(text.find("cats_adaptation_events 1"), std::string::npos);
}

TEST(ObsExport, PrometheusEmitsInterpolatedQuantiles) {
  obs::Snapshot snap;
  obs::LogHistogram h;
  for (int i = 0; i < 10; ++i) h.record(1);
  for (int i = 0; i < 90; ++i) h.record(1024);
  snap.add_histogram("lat", h.snapshot());

  std::ostringstream prom;
  obs::write_prometheus(prom, snap);
  const std::string text = prom.str();
  EXPECT_NE(text.find("# TYPE cats_lat_quantile gauge"), std::string::npos);
  EXPECT_NE(text.find("cats_lat_quantile{q=\"0.5\"}"), std::string::npos);
  EXPECT_NE(text.find("cats_lat_quantile{q=\"0.9\"}"), std::string::npos);
  EXPECT_NE(text.find("cats_lat_quantile{q=\"0.99\"}"), std::string::npos);
}

TEST(ObsExport, SnapshotCounterLookup) {
  const obs::Snapshot snap = make_test_snapshot();
  EXPECT_EQ(snap.counter("alpha"), 42u);
  EXPECT_EQ(snap.counter("absent"), 0u);
}

#if CATS_OBS_ENABLED
// ---------------------------------------------------------------------------
// Non-destructive registry snapshots: the monitor's delta sampling relies
// on snapshot() leaving the counters untouched (reset() is quiescent-only).
// ---------------------------------------------------------------------------

TEST(ObsRegistry, SnapshotIsNonDestructive) {
  obs::Registry& reg = obs::Registry::instance();
  const obs::RegistryValues before = reg.snapshot();

  obs::count(obs::GCounter::kHarnessOps, 5);
  obs::record(obs::GHistogram::kLookupLatencyNs, 100);

  const obs::RegistryValues a = reg.snapshot();
  const obs::RegistryValues b = reg.snapshot();
  EXPECT_EQ(a.counter(obs::GCounter::kHarnessOps),
            before.counter(obs::GCounter::kHarnessOps) + 5);
  // Reading twice returns the same values — nothing was consumed.
  EXPECT_EQ(b.counter(obs::GCounter::kHarnessOps),
            a.counter(obs::GCounter::kHarnessOps));
  EXPECT_EQ(b.histogram(obs::GHistogram::kLookupLatencyNs).count,
            a.histogram(obs::GHistogram::kLookupLatencyNs).count);

  obs::count(obs::GCounter::kHarnessOps, 2);
  const obs::RegistryValues c = reg.snapshot();
  EXPECT_EQ(c.counter(obs::GCounter::kHarnessOps),
            a.counter(obs::GCounter::kHarnessOps) + 2);
}
#endif  // CATS_OBS_ENABLED

// ---------------------------------------------------------------------------
// Integration with the tree: paper counters flow into snapshots, and (in
// CATS_OBS builds) adaptations land in the global trace.
// ---------------------------------------------------------------------------

TEST(ObsIntegration, TreeStatsAppendToSnapshot) {
  reclaim::Domain domain;
  {
    lfca::LfcaTree tree(domain);
    for (Key k = 1; k <= 256; ++k) tree.insert(k, k);
    ASSERT_TRUE(tree.force_split(128));
    const lfca::Stats stats = tree.stats();
    EXPECT_GE(stats.splits, 1u);

    obs::Snapshot snap;
    stats.append_to(snap, "lfca_");
    EXPECT_EQ(snap.counter("lfca_splits"), stats.splits);

    std::ostringstream os;
    obs::write_json(os, snap);
    const obs::json::Value doc = obs::json::parse(os.str());
    EXPECT_EQ(doc.at("counters").at("lfca_splits").as_uint(), stats.splits);
  }
  domain.drain();
}

#if CATS_OBS_ENABLED
TEST(ObsIntegration, ForcedAdaptationsReachGlobalTrace) {
  obs::Registry::instance().reset();
  reclaim::Domain domain;
  {
    lfca::LfcaTree tree(domain);
    for (Key k = 1; k <= 256; ++k) tree.insert(k, k);
    ASSERT_TRUE(tree.force_split(128));
    ASSERT_TRUE(tree.force_join(128));
  }
  domain.drain();

  const obs::Snapshot snap = obs::global_snapshot();
  bool saw_split = false, saw_join = false;
  for (const auto& e : snap.events) {
    saw_split |= e.kind == obs::AdaptKind::kSplit;
    saw_join |= e.kind == obs::AdaptKind::kJoin;
  }
  EXPECT_TRUE(saw_split);
  EXPECT_TRUE(saw_join);
  EXPECT_GT(snap.counter("ebr_retired"), 0u);
  EXPECT_GT(snap.counter("treap_node_allocs"), 0u);
}
#endif  // CATS_OBS_ENABLED

// ---------------------------------------------------------------------------
// Flight recorder: sampling, ring accounting, cross-thread merge, the
// Perfetto writer, and the perf-counter wrapper.
// ---------------------------------------------------------------------------

TEST(Flight, DisabledPathIsInert) {
  obs::flight::Recorder::instance().disable();
  const obs::flight::SpanStart s = obs::flight::begin_span();
  EXPECT_FALSE(s.active);
  obs::flight::end_span(s, obs::flight::SpanKind::kInsert, 1);  // no-op
  EXPECT_FALSE(obs::flight::Recorder::instance().enabled());
  EXPECT_EQ(obs::flight::Recorder::instance().sample_shift(), -1);
}

#if CATS_OBS_ENABLED

TEST(Flight, SpanRecordsAnnotationDeltas) {
  auto& rec = obs::flight::Recorder::instance();
  rec.enable(0);  // sample every op; enable() also clears the rings
  ASSERT_TRUE(rec.enabled());
  EXPECT_EQ(rec.sample_shift(), 0);
  EXPECT_GT(rec.ticks_per_ns(), 0.0);

  const obs::flight::SpanStart s = obs::flight::begin_span();
  ASSERT_TRUE(s.active);
  obs::flight::note_cas_fail();
  obs::flight::note_cas_fail();
  obs::flight::note_epoch_wait();
  obs::flight::note_pool_refill();
  obs::flight::end_span(s, obs::flight::SpanKind::kInsert, 42);
  rec.disable();

  const std::vector<obs::flight::SpanEvent> spans = rec.dump();
  ASSERT_EQ(spans.size(), 1u);
  const obs::flight::SpanEvent& e = spans[0];
  EXPECT_EQ(e.kind, obs::flight::SpanKind::kInsert);
  EXPECT_EQ(e.key_hash, static_cast<std::uint32_t>(mix64(42)));
  // Only the notes above happened inside the span, so the deltas are exact.
  EXPECT_EQ(e.cas_fails, 2u);
  EXPECT_EQ(e.epoch_waits, 1u);
  EXPECT_EQ(e.pool_refills, 1u);
  EXPECT_EQ(rec.recorded(), 1u);
  EXPECT_EQ(rec.dropped(), 0u);
}

TEST(Flight, SamplingIsDeterministicPerThread) {
  auto& rec = obs::flight::Recorder::instance();
  // Shift 2 = 1 op in 4.  The enable() generation bump invalidates this
  // thread's cached countdown, so op 0 is always sampled; then 4, 8, 12.
  rec.enable(2);
  EXPECT_EQ(rec.sample_shift(), 2);
  for (Key k = 0; k < 16; ++k) {
    const obs::flight::SpanStart s = obs::flight::begin_span();
    EXPECT_EQ(s.active, k % 4 == 0) << "op " << k;
    obs::flight::end_span(s, obs::flight::SpanKind::kLookup, k);
  }
  rec.disable();
  EXPECT_EQ(rec.recorded(), 4u);
  EXPECT_EQ(rec.dump().size(), 4u);
}

TEST(Flight, RingWraparoundKeepsExactAccounting) {
  auto& rec = obs::flight::Recorder::instance();
  rec.enable(0);
  constexpr std::uint64_t kExtra = 100;
  constexpr std::uint64_t kTotal =
      obs::flight::Recorder::kRingSize + kExtra;
  for (std::uint64_t i = 0; i < kTotal; ++i) {
    const obs::flight::SpanStart s = obs::flight::begin_span();
    ASSERT_TRUE(s.active);
    obs::flight::end_span(s, obs::flight::SpanKind::kRemove,
                          static_cast<Key>(i));
  }
  rec.disable();
  // Every span was counted; the ring retains the newest kRingSize and the
  // overwritten remainder is reported, not silently lost.
  EXPECT_EQ(rec.recorded(), kTotal);
  EXPECT_EQ(rec.dropped(), kExtra);
  const std::vector<obs::flight::SpanEvent> spans = rec.dump();
  EXPECT_EQ(spans.size(), obs::flight::Recorder::kRingSize);
  rec.reset();
  EXPECT_EQ(rec.recorded(), 0u);
  EXPECT_EQ(rec.dump().size(), 0u);
}

TEST(Flight, DumpMergesThreadsInTimestampOrder) {
  auto& rec = obs::flight::Recorder::instance();
  rec.enable(0);
  constexpr int kThreads = 6;
  constexpr std::uint64_t kSpansPerThread = 50;
  // Sequential spawn-and-join: shard assignment is round-robin, so each
  // new thread writes a distinct ring and nothing is lost to sharing.
  for (int t = 0; t < kThreads; ++t) {
    std::thread([t] {
      for (std::uint64_t i = 0; i < kSpansPerThread; ++i) {
        const obs::flight::SpanStart s = obs::flight::begin_span();
        obs::flight::end_span(s, obs::flight::SpanKind::kLookup,
                              static_cast<Key>(t * 1000 + i));
      }
    }).join();
  }
  rec.disable();

  const std::vector<obs::flight::SpanEvent> spans = rec.dump();
  ASSERT_EQ(spans.size(), kThreads * kSpansPerThread);
  std::vector<bool> seen_thread(obs::kShards, false);
  for (std::size_t i = 0; i < spans.size(); ++i) {
    if (i > 0) {
      EXPECT_LE(spans[i - 1].t_ns, spans[i].t_ns) << "unsorted at " << i;
    }
    ASSERT_LT(spans[i].thread, obs::kShards);
    seen_thread[spans[i].thread] = true;
  }
  std::size_t distinct = 0;
  for (bool b : seen_thread) distinct += b;
  EXPECT_GE(distinct, 2u);
}

TEST(Flight, ChromeTraceJsonSchema) {
  std::vector<obs::flight::SpanEvent> spans(2);
  spans[0].t_ns = 1000;  // 1.000 us
  spans[0].dur_ns = 2500;
  spans[0].kind = obs::flight::SpanKind::kInsert;
  spans[0].key_hash = 7;
  spans[0].thread = 3;
  spans[0].cas_fails = 2;
  spans[0].epoch_waits = 1;
  spans[1].t_ns = 5000;
  spans[1].dur_ns = 100;
  spans[1].kind = obs::flight::SpanKind::kRange;
  spans[1].thread = 4;

  std::vector<obs::TraceEvent> instants(1);
  instants[0].time_ns = 1500;
  instants[0].kind = obs::AdaptKind::kSplit;
  instants[0].depth = 2;
  instants[0].stat = 5;
  instants[0].thread = 1;

  std::ostringstream os;
  obs::flight::write_chrome_trace(os, spans, instants);
  const obs::json::Value doc = obs::json::parse(os.str());
  EXPECT_EQ(doc.at("displayTimeUnit").as_string(), "ms");

  std::size_t meta = 0, complete = 0, instant = 0;
  std::uint64_t last_ts_ns = 0;
  for (const obs::json::Value& ev : doc.at("traceEvents").as_array()) {
    const std::string ph = ev.at("ph").as_string();
    if (ph == "M") {
      ++meta;
      continue;
    }
    // Event rows are merged chronologically (ts is microseconds).
    const auto ts_ns =
        static_cast<std::uint64_t>(ev.at("ts").as_number() * 1000.0 + 0.5);
    EXPECT_GE(ts_ns, last_ts_ns);
    last_ts_ns = ts_ns;
    if (ph == "X") {
      ++complete;
      if (ev.at("name").as_string() == "insert") {
        EXPECT_DOUBLE_EQ(ev.at("ts").as_number(), 1.0);
        EXPECT_DOUBLE_EQ(ev.at("dur").as_number(), 2.5);
        EXPECT_EQ(ev.at("tid").as_uint(), 3u);
        EXPECT_EQ(ev.at("args").at("key_hash").as_uint(), 7u);
        EXPECT_EQ(ev.at("args").at("cas_fails").as_uint(), 2u);
        EXPECT_EQ(ev.at("args").at("epoch_waits").as_uint(), 1u);
        EXPECT_EQ(ev.at("args").at("pool_refills").as_uint(), 0u);
      } else {
        EXPECT_EQ(ev.at("name").as_string(), "range");
      }
    } else {
      ASSERT_EQ(ph, "i");
      ++instant;
      EXPECT_EQ(ev.at("name").as_string(), "split");
      EXPECT_EQ(ev.at("s").as_string(), "g");
      EXPECT_DOUBLE_EQ(ev.at("ts").as_number(), 1.5);
      EXPECT_EQ(ev.at("args").at("depth").as_uint(), 2u);
      EXPECT_EQ(ev.at("args").at("stat").as_uint(), 5u);
    }
  }
  // process_name plus one thread_name per used track (tids 1, 3, 4).
  EXPECT_EQ(meta, 4u);
  EXPECT_EQ(complete, 2u);
  EXPECT_EQ(instant, 1u);
}

// Producers record spans while the exporter dumps and serializes
// concurrently — the seqlock discipline must keep this clean under TSan.
TEST(Flight, ConcurrentProducersAndExporter) {
  auto& rec = obs::flight::Recorder::instance();
  rec.enable(4);  // 1 in 16: sampled and unsampled paths both exercised
  constexpr int kProducers = 4;
  constexpr std::uint64_t kOps = 20'000;
  std::atomic<int> running{kProducers};
  std::vector<std::thread> producers;
  for (int t = 0; t < kProducers; ++t) {
    producers.emplace_back([t, &running] {
      for (std::uint64_t i = 0; i < kOps; ++i) {
        const obs::flight::SpanStart s = obs::flight::begin_span();
        obs::flight::end_span(s, static_cast<obs::flight::SpanKind>(i % 4),
                              static_cast<Key>(t * kOps + i));
      }
      running.fetch_sub(1, std::memory_order_relaxed);
    });
  }
  // Export continuously while the producers write; each dump must come
  // back sorted and each serialization well-formed even mid-overwrite.
  do {
    const std::vector<obs::flight::SpanEvent> spans = rec.dump();
    for (std::size_t i = 1; i < spans.size(); ++i) {
      ASSERT_LE(spans[i - 1].t_ns, spans[i].t_ns);
    }
    std::ostringstream os;
    obs::flight::write_chrome_trace(os);
    EXPECT_NE(os.str().find("\"traceEvents\""), std::string::npos);
  } while (running.load(std::memory_order_relaxed) > 0);
  for (auto& p : producers) p.join();
  rec.disable();
  // Quiescent again: the per-thread countdowns sampled exactly 1 in 16.
  EXPECT_EQ(rec.recorded(), kProducers * kOps / 16);
}

TEST(Flight, PerfCountersDegradeGracefully) {
  obs::flight::ThreadPerf perf;
  perf.start();
  // A little work so available counters read something nonzero.
  std::uint64_t sink = 0;
  for (int i = 0; i < 100'000; ++i) sink += static_cast<std::uint64_t>(i);
  const obs::flight::PerfCounts c = perf.stop();
  EXPECT_EQ(sink, 99'999ull * 100'000 / 2);
  if (c.available) {
    EXPECT_GT(c.cycles, 0u);
    EXPECT_GT(c.instructions, 0u);
    EXPECT_EQ(c.threads, 1u);
    EXPECT_GT(c.ipc(), 0.0);
  } else {
    // The contract: never fail, always say why.
    EXPECT_FALSE(c.unavailable_reason.empty());
    EXPECT_EQ(c.cycles, 0u);
  }
}

TEST(Flight, PerfPhaseTotalsRoundTrip) {
  obs::flight::perf_phase_reset();
  obs::flight::PerfCounts a;
  a.available = true;
  a.cycles = 1000;
  a.instructions = 2000;
  a.threads = 1;
  obs::flight::perf_phase_add("unit_phase", a);
  obs::flight::perf_phase_add("unit_phase", a);

  bool found = false;
  for (const auto& [phase, total] : obs::flight::perf_phase_totals()) {
    if (phase != "unit_phase") continue;
    found = true;
    EXPECT_TRUE(total.available);
    EXPECT_EQ(total.cycles, 2000u);
    EXPECT_EQ(total.instructions, 4000u);
    EXPECT_EQ(total.threads, 2u);
    EXPECT_DOUBLE_EQ(total.ipc(), 2.0);
  }
  EXPECT_TRUE(found);

  obs::Snapshot snap;
  obs::flight::append_perf_phases(snap);
  bool saw_cycles = false;
  for (const auto& [name, value] : snap.gauges) {
    if (name == "perf_unit_phase_cycles") {
      saw_cycles = true;
      EXPECT_DOUBLE_EQ(value, 2000.0);
    }
  }
  EXPECT_TRUE(saw_cycles);

  obs::flight::perf_phase_reset();
  EXPECT_TRUE(obs::flight::perf_phase_totals().empty());
}

TEST(ObsExport, PrometheusHotBaseLabeledGauges) {
  obs::Snapshot snap;
  for (std::uint32_t rank = 0; rank < 2; ++rank) {
    obs::Snapshot::HotBase hot;
    hot.metric = "lfca_topo_hot_base";
    hot.rank = rank;
    hot.depth = rank + 1;
    hot.key_lo = 128 * rank;
    hot.cas_fails = 50 - rank;
    hot.helps = 5;
    hot.items = 100;
    snap.hot_bases.push_back(hot);
  }
  std::ostringstream os;
  obs::write_prometheus(os, snap);
  const std::string text = os.str();
  EXPECT_NE(text.find("# TYPE cats_lfca_topo_hot_base_cas_fails gauge"),
            std::string::npos);
  EXPECT_NE(text.find("cats_lfca_topo_hot_base_cas_fails{rank=\"0\","
                      "depth=\"1\",key_lo=\"0\"} 50"),
            std::string::npos);
  EXPECT_NE(text.find("cats_lfca_topo_hot_base_cas_fails{rank=\"1\","
                      "depth=\"2\",key_lo=\"128\"} 49"),
            std::string::npos);
  EXPECT_NE(text.find("cats_lfca_topo_hot_base_helps{rank=\"0\","),
            std::string::npos);
  // One TYPE line per family, not per sample.
  std::size_t type_lines = 0;
  for (std::size_t pos = 0;
       (pos = text.find("# TYPE cats_lfca_topo_hot_base_cas_fails", pos)) !=
       std::string::npos;
       ++pos) {
    ++type_lines;
  }
  EXPECT_EQ(type_lines, 1u);
}

#endif  // CATS_OBS_ENABLED

}  // namespace
