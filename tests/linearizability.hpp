// A small linearizability checker for ordered-set histories (Wing & Gong
// style search with memoization).
//
// Histories record invocation/response timestamps of concurrent operations
// over a tiny key universe (<= 16 keys), so the sequential state fits in a
// 16-bit presence mask.  The checker searches for a total order of the
// operations that (a) respects real-time precedence (A before B if A's
// response precedes B's invocation) and (b) is legal for set semantics:
//
//   insert(k) -> true iff k absent;  remove(k) -> true iff k present;
//   lookup(k) -> presence;           range(lo,hi) -> exact present subset.
//
// The search is exponential in the width of concurrency, which tiny
// histories keep tractable; a node budget turns pathological cases into
// "inconclusive" rather than hanging the test suite.
#pragma once

#include <algorithm>
#include <cstdint>
#include <unordered_set>
#include <vector>

namespace cats::lintest {

enum class OpType { kInsert, kRemove, kLookup, kRange };

struct Operation {
  OpType type;
  int key = 0;          // insert/remove/lookup
  int lo = 0, hi = 0;   // range
  bool returned = false;          // insert/remove/lookup result
  std::uint16_t range_mask = 0;   // range result as a presence bitmask
  std::uint64_t invoke_ns = 0;
  std::uint64_t response_ns = 0;
};

enum class Verdict { kLinearizable, kViolation, kInconclusive };

class Checker {
 public:
  explicit Checker(std::vector<Operation> history,
                   std::uint16_t initial_mask = 0,
                   std::size_t node_budget = 4'000'000)
      : ops_(std::move(history)), initial_(initial_mask),
        budget_(node_budget) {}

  Verdict check() {
    const std::size_t n = ops_.size();
    if (n == 0) return Verdict::kLinearizable;
    if (n > 63) return Verdict::kInconclusive;  // bitmask limit
    // Precompute precedence: pred_mask[i] = ops that must precede op i.
    pred_mask_.assign(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        if (ops_[j].response_ns < ops_[i].invoke_ns) {
          pred_mask_[i] |= std::uint64_t{1} << j;
        }
      }
    }
    seen_.clear();
    nodes_ = 0;
    const int result = dfs(0, initial_);
    if (result == 1) return Verdict::kLinearizable;
    if (result == 0) return Verdict::kViolation;
    return Verdict::kInconclusive;
  }

 private:
  /// Returns 1 = linearizable, 0 = no order found, -1 = budget exhausted.
  int dfs(std::uint64_t done, std::uint16_t state) {
    if (done == (std::uint64_t{1} << ops_.size()) - 1) return 1;
    if (++nodes_ > budget_) return -1;
    const std::uint64_t memo_key =
        done * 0x10001ull + state;  // (done, state) pair
    if (!seen_.insert(memo_key).second) return 0;
    bool inconclusive = false;
    for (std::size_t i = 0; i < ops_.size(); ++i) {
      const std::uint64_t bit = std::uint64_t{1} << i;
      if (done & bit) continue;
      if ((pred_mask_[i] & ~done) != 0) continue;  // a predecessor pending
      std::uint16_t next_state = state;
      if (!apply(ops_[i], &next_state)) continue;  // illegal here
      const int sub = dfs(done | bit, next_state);
      if (sub == 1) return 1;
      if (sub == -1) inconclusive = true;
    }
    return inconclusive ? -1 : 0;
  }

  static bool apply(const Operation& op, std::uint16_t* state) {
    const std::uint16_t key_bit =
        static_cast<std::uint16_t>(1u << (op.key & 15));
    switch (op.type) {
      case OpType::kInsert: {
        const bool was_present = (*state & key_bit) != 0;
        if (op.returned != !was_present) return false;
        *state |= key_bit;
        return true;
      }
      case OpType::kRemove: {
        const bool was_present = (*state & key_bit) != 0;
        if (op.returned != was_present) return false;
        *state &= static_cast<std::uint16_t>(~key_bit);
        return true;
      }
      case OpType::kLookup:
        return op.returned == ((*state & key_bit) != 0);
      case OpType::kRange: {
        std::uint16_t window = 0;
        for (int k = op.lo; k <= op.hi; ++k) {
          window |= static_cast<std::uint16_t>(1u << (k & 15));
        }
        return (*state & window) == op.range_mask;
      }
    }
    return false;
  }

  std::vector<Operation> ops_;
  std::vector<std::uint64_t> pred_mask_;
  const std::uint16_t initial_;
  const std::size_t budget_;
  std::size_t nodes_ = 0;
  std::unordered_set<std::uint64_t> seen_;
};

}  // namespace cats::lintest
