// Unit and property tests for the immutable fat-leaf container
// (src/treap).  Persistence, ordering, balance, reference counting and the
// split/join operations the LFCA tree depends on.
#include "treap/treap.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <vector>

#include "common/rng.hpp"

namespace cats::treap {
namespace {

std::vector<Item> items_of(const Ref& t) {
  std::vector<Item> out;
  for_all(t.get(), [&](Key k, Value v) { out.push_back({k, v}); });
  return out;
}

Ref build(const std::vector<Key>& keys) {
  Ref t;
  for (Key k : keys) t = insert(t, k, static_cast<Value>(k) * 3);
  return t;
}

TEST(TreapBasic, EmptyTree) {
  Ref t;
  EXPECT_TRUE(empty(t));
  EXPECT_EQ(size(t), 0u);
  EXPECT_TRUE(less_than_two_items(t.get()));
  EXPECT_FALSE(lookup(t, 42, nullptr));
  EXPECT_TRUE(check_invariants(t.get()));
}

TEST(TreapBasic, SingleInsertLookup) {
  Ref t = insert(Ref().get(), 10, 99, nullptr);
  Value v = 0;
  EXPECT_TRUE(lookup(t, 10, &v));
  EXPECT_EQ(v, 99u);
  EXPECT_FALSE(lookup(t, 9, &v));
  EXPECT_FALSE(lookup(t, 11, &v));
  EXPECT_EQ(size(t), 1u);
  EXPECT_TRUE(less_than_two_items(t.get()));
}

TEST(TreapBasic, InsertReportsReplacement) {
  bool replaced = true;
  Ref t = insert(nullptr, 5, 1, &replaced);
  EXPECT_FALSE(replaced);
  Ref t2 = insert(t.get(), 5, 2, &replaced);
  EXPECT_TRUE(replaced);
  Value v = 0;
  ASSERT_TRUE(lookup(t2, 5, &v));
  EXPECT_EQ(v, 2u);
  // Persistence: the old version still sees the old value.
  ASSERT_TRUE(lookup(t, 5, &v));
  EXPECT_EQ(v, 1u);
}

TEST(TreapBasic, RemoveReportsPresence) {
  Ref t = build({1, 2, 3});
  bool removed = false;
  Ref t2 = remove(t.get(), 2, &removed);
  EXPECT_TRUE(removed);
  EXPECT_EQ(size(t2), 2u);
  Ref t3 = remove(t2.get(), 2, &removed);
  EXPECT_FALSE(removed);
  EXPECT_EQ(size(t3), 2u);
  // Old version untouched.
  EXPECT_TRUE(lookup(t, 2, nullptr));
}

TEST(TreapBasic, RemoveLastItemYieldsEmpty) {
  Ref t = build({7});
  bool removed = false;
  Ref t2 = remove(t.get(), 7, &removed);
  EXPECT_TRUE(removed);
  EXPECT_TRUE(empty(t2));
}

TEST(TreapBasic, MinMaxSelect) {
  Ref t = build({5, 1, 9, 3, 7});
  EXPECT_EQ(min_key(t.get()), 1);
  EXPECT_EQ(max_key(t.get()), 9);
  EXPECT_EQ(select(t.get(), 0), 1);
  EXPECT_EQ(select(t.get(), 2), 5);
  EXPECT_EQ(select(t.get(), 4), 9);
}

TEST(TreapBasic, ForRangeBounds) {
  Ref t = build({10, 20, 30, 40, 50});
  std::vector<Key> seen;
  for_range(t.get(), 15, 45, [&](Key k, Value) { seen.push_back(k); });
  EXPECT_EQ(seen, (std::vector<Key>{20, 30, 40}));
  seen.clear();
  for_range(t.get(), 20, 20, [&](Key k, Value) { seen.push_back(k); });
  EXPECT_EQ(seen, (std::vector<Key>{20}));
  seen.clear();
  for_range(t.get(), 51, 100, [&](Key k, Value) { seen.push_back(k); });
  EXPECT_TRUE(seen.empty());
  seen.clear();
  for_range(t.get(), kKeyMin, kKeyMax, [&](Key k, Value) { seen.push_back(k); });
  EXPECT_EQ(seen.size(), 5u);
}

TEST(TreapBasic, LeafOverflowSplits) {
  // Insert more than one leaf's worth of ascending keys and check shape.
  Ref t;
  const int n = static_cast<int>(kLeafCapacity) * 3;
  for (int i = 0; i < n; ++i) t = insert(t.get(), i, 0, nullptr);
  EXPECT_EQ(size(t), static_cast<std::size_t>(n));
  EXPECT_GE(leaf_count(t.get()), 3u);
  EXPECT_TRUE(check_invariants(t.get()));
}

TEST(TreapJoin, JoinsDisjointTrees) {
  Ref l = build({1, 2, 3});
  Ref r = build({10, 11});
  Ref j = join(l, r);
  EXPECT_EQ(size(j), 5u);
  EXPECT_TRUE(check_invariants(j.get()));
  auto items = items_of(j);
  EXPECT_EQ(items.front().key, 1);
  EXPECT_EQ(items.back().key, 11);
  // Inputs unchanged.
  EXPECT_EQ(size(l), 3u);
  EXPECT_EQ(size(r), 2u);
}

TEST(TreapJoin, JoinWithEmpty) {
  Ref l = build({1, 2});
  Ref e;
  Ref a = join(l, e);
  Ref b = join(e, l);
  EXPECT_EQ(size(a), 2u);
  EXPECT_EQ(size(b), 2u);
}

TEST(TreapJoin, JoinSkewedHeights) {
  Ref small = build({1});
  std::vector<Key> big_keys;
  for (Key k = 100; k < 5000; ++k) big_keys.push_back(k);
  Ref big = build(big_keys);
  Ref j = join(small, big);
  EXPECT_EQ(size(j), big_keys.size() + 1);
  EXPECT_TRUE(check_invariants(j.get()));
  Ref j2 = join(big, build({100000}));
  EXPECT_EQ(size(j2), big_keys.size() + 1);
  EXPECT_TRUE(check_invariants(j2.get()));
}

TEST(TreapSplit, SplitByKey) {
  Ref t = build({1, 2, 3, 4, 5, 6, 7, 8});
  Ref l, r;
  split(t.get(), 5, &l, &r);
  EXPECT_EQ(size(l), 4u);
  EXPECT_EQ(size(r), 4u);
  EXPECT_EQ(max_key(l.get()), 4);
  EXPECT_EQ(min_key(r.get()), 5);
  EXPECT_TRUE(check_invariants(l.get()));
  EXPECT_TRUE(check_invariants(r.get()));
}

TEST(TreapSplit, SplitBoundaries) {
  Ref t = build({10, 20, 30});
  Ref l, r;
  split(t.get(), 10, &l, &r);  // everything >= 10 goes right
  EXPECT_TRUE(empty(l));
  EXPECT_EQ(size(r), 3u);
  split(t.get(), 31, &l, &r);
  EXPECT_EQ(size(l), 3u);
  EXPECT_TRUE(empty(r));
}

TEST(TreapSplit, SplitEvenlyBalancesAndKeys) {
  for (int n : {2, 3, 64, 65, 500, 1001}) {
    std::vector<Key> keys;
    for (int i = 0; i < n; ++i) keys.push_back(i * 2);
    Ref t = build(keys);
    Ref l, r;
    Key pivot = 0;
    split_evenly(t.get(), &l, &r, &pivot);
    EXPECT_EQ(size(l) + size(r), static_cast<std::size_t>(n));
    EXPECT_GE(size(l), static_cast<std::size_t>(n) / 4) << "n=" << n;
    EXPECT_GE(size(r), static_cast<std::size_t>(n) / 4) << "n=" << n;
    EXPECT_LT(max_key(l.get()), pivot);
    EXPECT_EQ(min_key(r.get()), pivot);
    EXPECT_TRUE(check_invariants(l.get()));
    EXPECT_TRUE(check_invariants(r.get()));
  }
}

TEST(TreapRefcount, NoLeakAcrossVersions) {
  const std::size_t before = live_nodes();
  {
    Ref t;
    std::vector<Ref> versions;
    for (Key k = 0; k < 1000; ++k) {
      t = insert(t.get(), k, 0, nullptr);
      if (k % 100 == 0) versions.push_back(t);
    }
    for (Key k = 0; k < 1000; k += 2) t = remove(t.get(), k, nullptr);
    EXPECT_GT(live_nodes(), before);
  }
  EXPECT_EQ(live_nodes(), before);
}

TEST(TreapRefcount, JoinSplitNoLeak) {
  const std::size_t before = live_nodes();
  {
    Ref a = build([] {
      std::vector<Key> v;
      for (Key k = 0; k < 500; ++k) v.push_back(k);
      return v;
    }());
    Ref b = build([] {
      std::vector<Key> v;
      for (Key k = 1000; k < 1500; ++k) v.push_back(k);
      return v;
    }());
    Ref j = join(a, b);
    Ref l, r;
    split(j.get(), 750, &l, &r);
    EXPECT_EQ(size(l), 500u);
    EXPECT_EQ(size(r), 500u);
  }
  EXPECT_EQ(live_nodes(), before);
}

TEST(TreapConfig, LeafFillKnobClamps) {
  set_leaf_fill(1);
  EXPECT_EQ(leaf_fill(), 2u);
  set_leaf_fill(10'000);
  EXPECT_EQ(leaf_fill(), kLeafCapacity);
  set_leaf_fill(16);
  EXPECT_EQ(leaf_fill(), 16u);
  Ref t;
  for (Key k = 0; k < 200; ++k) t = insert(t.get(), k, 0, nullptr);
  EXPECT_TRUE(check_invariants(t.get()));
  EXPECT_GE(leaf_count(t.get()), 200u / 16u);
  set_leaf_fill(kLeafCapacity);
}

// --- Property tests: random operation sequences vs std::map. --------------

struct RandomOpsParams {
  std::uint64_t seed;
  int operations;
  Key key_range;
};

class TreapRandomOps : public ::testing::TestWithParam<RandomOpsParams> {};

TEST_P(TreapRandomOps, MatchesReferenceModel) {
  const auto param = GetParam();
  Xoshiro256 rng(param.seed);
  Ref t;
  std::map<Key, Value> model;

  for (int i = 0; i < param.operations; ++i) {
    const Key key = rng.next_in(0, param.key_range - 1);
    switch (rng.next_below(4)) {
      case 0:
      case 1: {  // insert
        const Value value = rng.next();
        bool replaced = false;
        t = insert(t.get(), key, value, &replaced);
        EXPECT_EQ(replaced, model.count(key) == 1);
        model[key] = value;
        break;
      }
      case 2: {  // remove
        bool removed = false;
        t = remove(t.get(), key, &removed);
        EXPECT_EQ(removed, model.erase(key) == 1);
        break;
      }
      default: {  // lookup
        Value value = 0;
        const bool found = lookup(t, key, &value);
        auto it = model.find(key);
        EXPECT_EQ(found, it != model.end());
        if (found && it != model.end()) {
          EXPECT_EQ(value, it->second);
        }
        break;
      }
    }
    if (i % 512 == 0) {
      ASSERT_TRUE(check_invariants(t.get())) << "seed=" << param.seed;
      ASSERT_EQ(size(t), model.size());
    }
  }

  // Full content comparison at the end.
  auto items = items_of(t);
  ASSERT_EQ(items.size(), model.size());
  std::size_t index = 0;
  for (const auto& [k, v] : model) {
    EXPECT_EQ(items[index].key, k);
    EXPECT_EQ(items[index].value, v);
    ++index;
  }
  ASSERT_TRUE(check_invariants(t.get()));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TreapRandomOps,
    ::testing::Values(RandomOpsParams{1, 4000, 64},       // dense collisions
                      RandomOpsParams{2, 4000, 100000},   // sparse
                      RandomOpsParams{3, 8000, 1000},     // medium
                      RandomOpsParams{4, 8000, 128},      // leaf-heavy churn
                      RandomOpsParams{5, 2000, 2},        // pathological
                      RandomOpsParams{6, 6000, 1000000},  // very sparse
                      RandomOpsParams{7, 10000, 5000}));

class TreapSplitJoinProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(TreapSplitJoinProperty, SplitThenJoinIsIdentity) {
  Xoshiro256 rng(GetParam());
  std::set<Key> keys;
  Ref t;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    const Key k = rng.next_in(-100000, 100000);
    keys.insert(k);
    t = insert(t.get(), k, static_cast<Value>(i), nullptr);
  }
  for (int round = 0; round < 30; ++round) {
    const Key pivot = rng.next_in(-120000, 120000);
    Ref l, r;
    split(t.get(), pivot, &l, &r);
    ASSERT_TRUE(check_invariants(l.get()));
    ASSERT_TRUE(check_invariants(r.get()));
    if (!empty(l)) {
      ASSERT_LT(max_key(l.get()), pivot);
    }
    if (!empty(r)) {
      ASSERT_GE(min_key(r.get()), pivot);
    }
    Ref joined = join(l, r);
    ASSERT_EQ(size(joined), keys.size());
    ASSERT_TRUE(check_invariants(joined.get()));
    auto items = items_of(joined);
    auto it = keys.begin();
    for (const Item& item : items) ASSERT_EQ(item.key, *it++);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TreapSplitJoinProperty,
                         ::testing::Values(11, 22, 33, 44, 55));

class TreapBalanceProperty : public ::testing::TestWithParam<int> {};

TEST_P(TreapBalanceProperty, HeightStaysLogarithmic) {
  const int n = GetParam();
  Ref t;
  for (int i = 0; i < n; ++i) t = insert(t.get(), i, 0, nullptr);  // sorted!
  ASSERT_TRUE(check_invariants(t.get()));
  // AVL over fat leaves: height <= ~1.45 log2(leaves) + const.
  const double leaves = static_cast<double>(leaf_count(t.get()));
  EXPECT_LE(height(t.get()), 1.45 * std::log2(leaves + 1) + 3.0);
}

INSTANTIATE_TEST_SUITE_P(Sizes, TreapBalanceProperty,
                         ::testing::Values(100, 1000, 10000, 100000));

}  // namespace
}  // namespace cats::treap
