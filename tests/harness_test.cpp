// Tests for the benchmark harness itself: workload descriptions, the
// pre-fill contract, operation-mix proportions and the paper's sanity
// statistic (average items traversed per range query).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "harness/cli.hpp"
#include "harness/runner.hpp"
#include "harness/workload.hpp"
#include "imtr/imtr_set.hpp"
#include "lfca/lfca_tree.hpp"

namespace cats::harness {
namespace {

TEST(Workload, DescribeMatchesPaperNotation) {
  EXPECT_EQ(Mix::of_percent(20, 55, 25, 1000).describe(),
            "w:20% r:55% q:25%-1000");
  EXPECT_EQ(Mix::of_percent(50, 50, 0).describe(), "w:50% r:50% q:0%");
  EXPECT_EQ(Mix::of_percent(0, 0, 100, 128, true).describe(),
            "w:0% r:0% q:100%-128 (fixed)");
}

TEST(Workload, PermilleSumsTo1000) {
  const Mix mix = Mix::of_percent(20, 55, 25, 10);
  EXPECT_EQ(mix.update_permille + mix.lookup_permille + mix.range_permille,
            1000u);
}

TEST(Prefill, FillsToExactlyHalf) {
  imtr::ImTreeSet set;
  prefill(set, 10'000);
  EXPECT_EQ(set.size(), 5'000u);
  // Keys are within [1, S-1].
  std::size_t bad = 0;
  set.range_query(kKeyMin, kKeyMax, [&](Key k, Value) {
    if (k < 1 || k > 9'999) ++bad;
  });
  EXPECT_EQ(bad, 0u);
}

TEST(Runner, CountsOperationsAndStops) {
  lfca::LfcaTree tree;
  prefill(tree, 10'000);
  const Mix mix = Mix::of_percent(20, 55, 25, 100);
  const RunResult r = run_mix(tree, 2, mix, 10'000, 0.1);
  EXPECT_GT(r.total_ops, 0u);
  EXPECT_GT(r.seconds, 0.05);
  EXPECT_LT(r.seconds, 5.0);
  EXPECT_EQ(r.total_ops, r.group_ops[0]);
}

TEST(Runner, ReportsPerThreadOperationCounts) {
  lfca::LfcaTree tree;
  prefill(tree, 10'000);
  const Mix mix = Mix::of_percent(50, 50, 0);
  const RunResult r = run_mix(tree, 3, mix, 10'000, 0.1);
  ASSERT_EQ(r.per_thread_ops.size(), 3u);
  std::uint64_t sum = 0;
  for (std::uint64_t ops : r.per_thread_ops) sum += ops;
  EXPECT_EQ(sum, r.total_ops);
  EXPECT_LE(r.ops_min(), r.ops_max());
  EXPECT_GE(r.ops_stddev(), 0.0);
  EXPECT_LE(r.ops_stddev(),
            static_cast<double>(r.ops_max()));
}

TEST(Workload, PerThreadFairnessStatistics) {
  RunResult r;
  r.per_thread_ops = {10, 20, 30};
  r.total_ops = 60;
  EXPECT_EQ(r.ops_min(), 10u);
  EXPECT_EQ(r.ops_max(), 30u);
  // Population stddev of {10, 20, 30} = sqrt(200/3).
  EXPECT_NEAR(r.ops_stddev(), std::sqrt(200.0 / 3.0), 1e-9);
  EXPECT_EQ(RunResult{}.ops_min(), 0u);
  EXPECT_EQ(RunResult{}.ops_stddev(), 0.0);
}

TEST(Runner, GroupsAreCountedSeparately) {
  lfca::LfcaTree tree;
  prefill(tree, 10'000);
  const RunResult r = run_mix(
      tree,
      {ThreadGroup{1, Mix::of_percent(100, 0, 0)},
       ThreadGroup{1, Mix::of_percent(0, 100, 0)}},
      10'000, 0.1);
  EXPECT_EQ(r.total_ops, r.group_ops[0] + r.group_ops[1]);
  EXPECT_GT(r.group_ops[0], 0u);
  EXPECT_GT(r.group_ops[1], 0u);
  EXPECT_EQ(r.range_queries, 0u);
}

// The paper's sanity check (§7): with keys uniform over [0, S), a structure
// holding S/2 items and range sizes uniform in [1, R], a range query covers
// about R/4 items on average (expected span R/2, half the keys present).
TEST(Runner, RangeItemsSanityCheck) {
  lfca::LfcaTree tree;
  constexpr Key kS = 100'000;
  prefill(tree, kS);
  const Mix mix = Mix::of_percent(0, 0, 100, 1000);
  const RunResult r = run_mix(tree, 2, mix, kS, 0.2);
  ASSERT_GT(r.range_queries, 100u);
  const double avg = r.items_per_range_query();
  EXPECT_GT(avg, 1000.0 / 4 * 0.7);
  EXPECT_LT(avg, 1000.0 / 4 * 1.3);
}

TEST(Runner, FixedRangeSizesAreExact) {
  imtr::ImTreeSet set;
  // Fully populate so a fixed-size range always covers exactly `size` keys.
  for (Key k = 1; k < 2'000; ++k) set.insert(k, 1);
  Mix mix = Mix::of_percent(0, 0, 100, 64, /*fixed=*/true);
  const RunResult r = run_mix(set, 1, mix, 1'000, 0.05);
  ASSERT_GT(r.range_queries, 0u);
  // Every query spans exactly 64 keys, all present.
  EXPECT_DOUBLE_EQ(r.items_per_range_query(), 64.0);
}

// --- Command-line parsing (Options::parse_into). -----------------------------
//
// parse() exits the process on error, so the tests drive the underlying
// parse_into(), which reports through a (success, message) pair instead.

struct ParseResult {
  bool ok = false;
  bool help = false;
  std::string error;
  Options opt;
};

ParseResult parse_args(std::vector<std::string> args) {
  ParseResult r;
  std::vector<char*> argv;
  std::string prog = "bench";
  argv.push_back(prog.data());
  for (std::string& a : args) argv.push_back(a.data());
  r.ok = Options::parse_into(static_cast<int>(argv.size()), argv.data(),
                             r.opt, r.error, &r.help);
  return r;
}

TEST(Cli, DefaultsWhenNoArgs) {
  const ParseResult r = parse_args({});
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_FALSE(r.help);
  EXPECT_DOUBLE_EQ(r.opt.duration, 0.25);
  EXPECT_EQ(r.opt.runs, 1);
  EXPECT_EQ(r.opt.size, 100'000);
  EXPECT_EQ(r.opt.threads, (std::vector<int>{1, 2, 4, 8}));
  EXPECT_FALSE(r.opt.csv);
}

TEST(Cli, ParsesEveryFlag) {
  const ParseResult r = parse_args(
      {"--duration=1.5", "--runs=3", "--size=4096", "--threads=1,16,128",
       "--csv", "--only=lfca", "--high-cont=7", "--low-cont=-7",
       "--cont-contrib=42", "--monitor-interval-ms=10", "--monitor-port=0",
       "--metrics-out=m.json", "--series-out=s.csv",
       "--check-every-n-ops=1000"});
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_DOUBLE_EQ(r.opt.duration, 1.5);
  EXPECT_EQ(r.opt.runs, 3);
  EXPECT_EQ(r.opt.size, 4096);
  EXPECT_EQ(r.opt.threads, (std::vector<int>{1, 16, 128}));
  EXPECT_TRUE(r.opt.csv);
  EXPECT_EQ(r.opt.only, "lfca");
  EXPECT_EQ(r.opt.high_cont, 7);
  EXPECT_EQ(r.opt.low_cont, -7);
  EXPECT_EQ(r.opt.cont_contrib, 42);
  EXPECT_EQ(r.opt.monitor_interval_ms, 10);
  EXPECT_EQ(r.opt.monitor_port, 0);
  EXPECT_EQ(r.opt.metrics_out, "m.json");
  EXPECT_EQ(r.opt.series_out, "s.csv");
  EXPECT_EQ(r.opt.check_every_n_ops, 1000u);
  g_check_every_n_ops.store(0);  // don't leak state into other tests
}

TEST(Cli, KeyTypeSelection) {
  EXPECT_EQ(parse_args({}).opt.key_type, "int");  // default: the fast path
  const ParseResult str = parse_args({"--key-type=str"});
  ASSERT_TRUE(str.ok) << str.error;
  EXPECT_EQ(str.opt.key_type, "str");
  const ParseResult i = parse_args({"--key-type=int"});
  ASSERT_TRUE(i.ok) << i.error;
  EXPECT_EQ(i.opt.key_type, "int");
  // Anything else is a hard parse error, not a silent fallback.
  const ParseResult bad = parse_args({"--key-type=uuid"});
  ASSERT_FALSE(bad.ok);
  EXPECT_EQ(bad.error, "--key-type: expected 'int' or 'str', got 'uuid'");
  EXPECT_FALSE(parse_args({"--key-type="}).ok);
}

TEST(Cli, RejectsDuplicateFlags) {
  const ParseResult r = parse_args({"--runs=2", "--runs=3"});
  ASSERT_FALSE(r.ok);
  EXPECT_EQ(r.error, "duplicate option: --runs");
  // Also when the values differ only syntactically, and for value-less
  // flags.
  EXPECT_FALSE(parse_args({"--csv", "--csv"}).ok);
  EXPECT_FALSE(parse_args({"--threads=1", "--threads=1"}).ok);
}

TEST(Cli, RejectsMalformedNumbers) {
  // atoi-style silent garbage-to-zero parses must be errors instead.
  EXPECT_FALSE(parse_args({"--duration=abc"}).ok);
  EXPECT_FALSE(parse_args({"--duration=1.5x"}).ok);
  EXPECT_FALSE(parse_args({"--duration="}).ok);
  EXPECT_FALSE(parse_args({"--duration=0"}).ok);    // must be positive
  EXPECT_FALSE(parse_args({"--duration=-1"}).ok);
  EXPECT_FALSE(parse_args({"--runs=0"}).ok);
  EXPECT_FALSE(parse_args({"--runs=two"}).ok);
  EXPECT_FALSE(parse_args({"--size=0"}).ok);
  EXPECT_FALSE(parse_args({"--size=12tb"}).ok);
  EXPECT_FALSE(parse_args({"--monitor-interval-ms=-1"}).ok);
  EXPECT_FALSE(parse_args({"--monitor-port=65536"}).ok);
  EXPECT_FALSE(parse_args({"--monitor-port=-2"}).ok);
  EXPECT_FALSE(parse_args({"--check-every-n-ops=-5"}).ok);
  EXPECT_FALSE(parse_args({"--runs=99999999999999999999"}).ok);  // overflow
  const ParseResult r = parse_args({"--runs=1.5"});
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.error.find("--runs"), std::string::npos);
  EXPECT_NE(r.error.find("1.5"), std::string::npos);
}

TEST(Cli, RejectsBadThreadLists) {
  EXPECT_FALSE(parse_args({"--threads="}).ok);
  EXPECT_FALSE(parse_args({"--threads=1,,4"}).ok);
  EXPECT_FALSE(parse_args({"--threads=1,2,"}).ok);
  EXPECT_FALSE(parse_args({"--threads=0"}).ok);
  EXPECT_FALSE(parse_args({"--threads=1,-2"}).ok);
  EXPECT_FALSE(parse_args({"--threads=1;2"}).ok);
  const ParseResult r = parse_args({"--threads=4"});
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.opt.threads, (std::vector<int>{4}));
}

TEST(Cli, TraceFlagsParseWhenRecorderCompiledIn) {
  if (!obs::kEnabled) GTEST_SKIP() << "flight recorder compiled out";
  const ParseResult r =
      parse_args({"--trace-out=t.json", "--trace-sample-shift=4"});
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.opt.trace_out, "t.json");
  EXPECT_EQ(r.opt.trace_sample_shift, 4);
  // Default: no trace file, moderate sampling.
  const ParseResult d = parse_args({});
  ASSERT_TRUE(d.ok) << d.error;
  EXPECT_TRUE(d.opt.trace_out.empty());
  EXPECT_EQ(d.opt.trace_sample_shift, 10);
}

TEST(Cli, TraceFlagsRejectBadValues) {
  // An empty path is an error in every build.
  EXPECT_FALSE(parse_args({"--trace-out="}).ok);
  if (!obs::kEnabled) GTEST_SKIP() << "flight recorder compiled out";
  const ParseResult r = parse_args({"--trace-sample-shift=21"});
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.error.find("--trace-sample-shift"), std::string::npos);
  EXPECT_NE(r.error.find("21"), std::string::npos);
  EXPECT_FALSE(parse_args({"--trace-sample-shift=-1"}).ok);
  EXPECT_FALSE(parse_args({"--trace-sample-shift=abc"}).ok);
  EXPECT_FALSE(parse_args({"--trace-sample-shift="}).ok);
}

TEST(Cli, TraceFlagsHardFailWhenRecorderCompiledOut) {
  // A trace request against a build with no recorder must refuse loudly —
  // silently producing no trace would be worse than an error.
  if (obs::kEnabled) GTEST_SKIP() << "flight recorder compiled in";
  const ParseResult r = parse_args({"--trace-out=t.json"});
  ASSERT_FALSE(r.ok);
  EXPECT_EQ(r.error,
            "--trace-out: flight recorder compiled out (CATS_OBS=OFF)");
  const ParseResult s = parse_args({"--trace-sample-shift=4"});
  ASSERT_FALSE(s.ok);
  EXPECT_EQ(s.error,
            "--trace-sample-shift: flight recorder compiled out "
            "(CATS_OBS=OFF)");
}

TEST(Cli, RejectsUnknownFlags) {
  const ParseResult r = parse_args({"--frobnicate=9"});
  ASSERT_FALSE(r.ok);
  EXPECT_EQ(r.error, "unknown option: --frobnicate=9");
  // A value passed to a value-less flag is unknown, not silently accepted.
  EXPECT_FALSE(parse_args({"--csv=yes"}).ok);
}

TEST(Cli, HelpIsReportedNotExited) {
  ParseResult r = parse_args({"--help"});
  ASSERT_TRUE(r.ok);
  EXPECT_TRUE(r.help);
  r = parse_args({"-h"});
  ASSERT_TRUE(r.ok);
  EXPECT_TRUE(r.help);
  // --help wins even when earlier flags are fine and later ones are bogus.
  r = parse_args({"--runs=2", "--help", "--garbage"});
  ASSERT_TRUE(r.ok);
  EXPECT_TRUE(r.help);
}

TEST(Cli, PresetsStillApply) {
  const ParseResult paper = parse_args({"--paper"});
  ASSERT_TRUE(paper.ok) << paper.error;
  EXPECT_EQ(paper.opt.size, 1'000'000);
  EXPECT_DOUBLE_EQ(paper.opt.duration, 10.0);
  EXPECT_EQ(paper.opt.runs, 3);
  const ParseResult sens = parse_args({"--sensitive"});
  ASSERT_TRUE(sens.ok) << sens.error;
  EXPECT_EQ(sens.opt.high_cont, 0);
  EXPECT_EQ(sens.opt.low_cont, -100);
}

}  // namespace
}  // namespace cats::harness
