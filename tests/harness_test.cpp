// Tests for the benchmark harness itself: workload descriptions, the
// pre-fill contract, operation-mix proportions and the paper's sanity
// statistic (average items traversed per range query).
#include <gtest/gtest.h>

#include "harness/runner.hpp"
#include "harness/workload.hpp"
#include "imtr/imtr_set.hpp"
#include "lfca/lfca_tree.hpp"

namespace cats::harness {
namespace {

TEST(Workload, DescribeMatchesPaperNotation) {
  EXPECT_EQ(Mix::of_percent(20, 55, 25, 1000).describe(),
            "w:20% r:55% q:25%-1000");
  EXPECT_EQ(Mix::of_percent(50, 50, 0).describe(), "w:50% r:50% q:0%");
  EXPECT_EQ(Mix::of_percent(0, 0, 100, 128, true).describe(),
            "w:0% r:0% q:100%-128 (fixed)");
}

TEST(Workload, PermilleSumsTo1000) {
  const Mix mix = Mix::of_percent(20, 55, 25, 10);
  EXPECT_EQ(mix.update_permille + mix.lookup_permille + mix.range_permille,
            1000u);
}

TEST(Prefill, FillsToExactlyHalf) {
  imtr::ImTreeSet set;
  prefill(set, 10'000);
  EXPECT_EQ(set.size(), 5'000u);
  // Keys are within [1, S-1].
  std::size_t bad = 0;
  set.range_query(kKeyMin, kKeyMax, [&](Key k, Value) {
    if (k < 1 || k > 9'999) ++bad;
  });
  EXPECT_EQ(bad, 0u);
}

TEST(Runner, CountsOperationsAndStops) {
  lfca::LfcaTree tree;
  prefill(tree, 10'000);
  const Mix mix = Mix::of_percent(20, 55, 25, 100);
  const RunResult r = run_mix(tree, 2, mix, 10'000, 0.1);
  EXPECT_GT(r.total_ops, 0u);
  EXPECT_GT(r.seconds, 0.05);
  EXPECT_LT(r.seconds, 5.0);
  EXPECT_EQ(r.total_ops, r.group_ops[0]);
}

TEST(Runner, ReportsPerThreadOperationCounts) {
  lfca::LfcaTree tree;
  prefill(tree, 10'000);
  const Mix mix = Mix::of_percent(50, 50, 0);
  const RunResult r = run_mix(tree, 3, mix, 10'000, 0.1);
  ASSERT_EQ(r.per_thread_ops.size(), 3u);
  std::uint64_t sum = 0;
  for (std::uint64_t ops : r.per_thread_ops) sum += ops;
  EXPECT_EQ(sum, r.total_ops);
  EXPECT_LE(r.ops_min(), r.ops_max());
  EXPECT_GE(r.ops_stddev(), 0.0);
  EXPECT_LE(r.ops_stddev(),
            static_cast<double>(r.ops_max()));
}

TEST(Workload, PerThreadFairnessStatistics) {
  RunResult r;
  r.per_thread_ops = {10, 20, 30};
  r.total_ops = 60;
  EXPECT_EQ(r.ops_min(), 10u);
  EXPECT_EQ(r.ops_max(), 30u);
  // Population stddev of {10, 20, 30} = sqrt(200/3).
  EXPECT_NEAR(r.ops_stddev(), std::sqrt(200.0 / 3.0), 1e-9);
  EXPECT_EQ(RunResult{}.ops_min(), 0u);
  EXPECT_EQ(RunResult{}.ops_stddev(), 0.0);
}

TEST(Runner, GroupsAreCountedSeparately) {
  lfca::LfcaTree tree;
  prefill(tree, 10'000);
  const RunResult r = run_mix(
      tree,
      {ThreadGroup{1, Mix::of_percent(100, 0, 0)},
       ThreadGroup{1, Mix::of_percent(0, 100, 0)}},
      10'000, 0.1);
  EXPECT_EQ(r.total_ops, r.group_ops[0] + r.group_ops[1]);
  EXPECT_GT(r.group_ops[0], 0u);
  EXPECT_GT(r.group_ops[1], 0u);
  EXPECT_EQ(r.range_queries, 0u);
}

// The paper's sanity check (§7): with keys uniform over [0, S), a structure
// holding S/2 items and range sizes uniform in [1, R], a range query covers
// about R/4 items on average (expected span R/2, half the keys present).
TEST(Runner, RangeItemsSanityCheck) {
  lfca::LfcaTree tree;
  constexpr Key kS = 100'000;
  prefill(tree, kS);
  const Mix mix = Mix::of_percent(0, 0, 100, 1000);
  const RunResult r = run_mix(tree, 2, mix, kS, 0.2);
  ASSERT_GT(r.range_queries, 100u);
  const double avg = r.items_per_range_query();
  EXPECT_GT(avg, 1000.0 / 4 * 0.7);
  EXPECT_LT(avg, 1000.0 / 4 * 1.3);
}

TEST(Runner, FixedRangeSizesAreExact) {
  imtr::ImTreeSet set;
  // Fully populate so a fixed-size range always covers exactly `size` keys.
  for (Key k = 1; k < 2'000; ++k) set.insert(k, 1);
  Mix mix = Mix::of_percent(0, 0, 100, 64, /*fixed=*/true);
  const RunResult r = run_mix(set, 1, mix, 1'000, 0.05);
  ASSERT_GT(r.range_queries, 0u);
  // Every query spans exactly 64 keys, all present.
  EXPECT_DOUBLE_EQ(r.items_per_range_query(), 64.0);
}

}  // namespace
}  // namespace cats::harness
