// Tests for the reclamation substrates: epoch-based reclamation and hazard
// pointers.  These verify the safety contract the lock-free trees depend on:
// nothing is freed while a reader could still hold a reference, and nothing
// leaks once readers are gone.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "common/spin_barrier.hpp"
#include "reclaim/ebr.hpp"
#include "reclaim/hazard.hpp"

namespace cats::reclaim {
namespace {

struct Tracked {
  static std::atomic<int> live;
  int payload;
  explicit Tracked(int p) : payload(p) { live.fetch_add(1); }
  ~Tracked() { live.fetch_sub(1); }
};
std::atomic<int> Tracked::live{0};

TEST(Ebr, RetireIsDeferredUntilDrain) {
  Domain domain;
  const int before = Tracked::live.load();
  domain.retire(new Tracked(1));
  EXPECT_EQ(Tracked::live.load(), before + 1);  // not freed synchronously
  domain.drain();
  EXPECT_EQ(Tracked::live.load(), before);
  EXPECT_EQ(domain.pending(), 0u);
}

TEST(Ebr, GuardBlocksReclamation) {
  Domain domain;
  const int before = Tracked::live.load();
  auto* obj = new Tracked(7);

  std::atomic<bool> reader_in{false};
  std::atomic<bool> release_reader{false};
  std::atomic<bool> observed_alive{false};

  std::thread reader([&] {
    Domain::Guard guard(domain);
    reader_in.store(true);
    while (!release_reader.load()) std::this_thread::yield();
    // The object must still be alive here even though it was retired and
    // the owner tried hard to drain.
    observed_alive.store(obj->payload == 7);
  });

  while (!reader_in.load()) std::this_thread::yield();
  domain.retire(obj);
  // Epoch cannot advance twice past the reader's announcement.
  for (int i = 0; i < 10; ++i) domain.drain();
  EXPECT_EQ(Tracked::live.load(), before + 1);

  release_reader.store(true);
  reader.join();
  EXPECT_TRUE(observed_alive.load());
  domain.drain();
  EXPECT_EQ(Tracked::live.load(), before);
}

TEST(Ebr, NestedGuardsCountAsOne) {
  Domain domain;
  {
    Domain::Guard outer(domain);
    {
      Domain::Guard inner(domain);
    }
    // Still inside the outer guard: retirements from another thread must
    // not be freed.  (Smoke check via epoch: it cannot advance by 2.)
    const auto e = domain.epoch();
    std::thread([&] {
      for (int i = 0; i < 100; ++i) domain.retire(new Tracked(0));
      domain.drain();
    }).join();
    EXPECT_LE(domain.epoch(), e + 1);
  }
  domain.drain();
}

TEST(Ebr, ManyThreadsNoLeakNoUseAfterFree) {
  const int before = Tracked::live.load();
  {
    Domain domain;
    constexpr int kThreads = 8;
    constexpr int kOps = 20'000;
    // A shared atomic pointer that threads swap and retire: the canonical
    // EBR usage pattern.
    cats::atomic<Tracked*> shared{new Tracked(0)};
    SpinBarrier barrier(kThreads);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        Xoshiro256 rng(t + 1);
        barrier.arrive_and_wait();
        for (int i = 0; i < kOps; ++i) {
          Domain::Guard guard(domain);
          if (rng.next_below(2) == 0) {
            Tracked* fresh = new Tracked(i);
            Tracked* old = shared.exchange(fresh);
            domain.retire(old);
          } else {
            Tracked* cur = shared.load();
            // Use-after-free would crash or corrupt payload under ASan;
            // at minimum exercise the read.
            volatile int x = cur->payload;
            (void)x;
          }
        }
      });
    }
    for (auto& th : threads) th.join();
    domain.retire(shared.load());  // routed through the domain deleter
    domain.drain();
    EXPECT_EQ(domain.pending(), 0u);
  }
  EXPECT_EQ(Tracked::live.load(), before);
}

TEST(Ebr, GlobalDomainIsUsable) {
  Domain& d = Domain::global();
  d.retire(new Tracked(3));
  d.drain();
  SUCCEED();
}

TEST(Hazard, ProtectPreventsFree) {
  HazardDomain domain;
  const int before = Tracked::live.load();
  cats::atomic<Tracked*> shared{new Tracked(5)};

  Tracked* obj = shared.load();
  {
    auto holder = domain.make_holder();
    Tracked* protected_ptr = holder.protect(shared);
    EXPECT_EQ(protected_ptr, obj);
    shared.store(nullptr);
    domain.retire(obj);
    domain.scan_all();
    EXPECT_EQ(Tracked::live.load(), before + 1);  // still protected
    EXPECT_EQ(protected_ptr->payload, 5);
  }
  domain.scan_all();
  EXPECT_EQ(Tracked::live.load(), before);
}

TEST(Hazard, TreiberStackStress) {
  struct StackNode {
    Tracked tracked{0};
    int value;
    StackNode* next;
  };
  struct Stack {
    cats::atomic<StackNode*> head{nullptr};
  };

  const int before = Tracked::live.load();
  {
    HazardDomain domain;
    Stack stack;
    constexpr int kThreads = 6;
    constexpr int kOps = 10'000;
    std::atomic<long long> pushed_sum{0};
    std::atomic<long long> popped_sum{0};
    SpinBarrier barrier(kThreads);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        Xoshiro256 rng(100 + t);
        barrier.arrive_and_wait();
        for (int i = 0; i < kOps; ++i) {
          if (rng.next_below(2) == 0) {
            auto* node = new StackNode;
            node->value = static_cast<int>(rng.next_below(1000));
            pushed_sum.fetch_add(node->value);
            node->next = stack.head.load();
            while (!stack.head.compare_exchange_weak(node->next, node)) {
            }
          } else {
            auto holder = domain.make_holder();
            while (true) {
              StackNode* top = holder.protect(stack.head);
              if (top == nullptr) break;
              if (stack.head.compare_exchange_strong(top, top->next)) {
                popped_sum.fetch_add(top->value);
                domain.retire(top);
                break;
              }
            }
          }
        }
      });
    }
    for (auto& th : threads) th.join();
    // Drain the stack.
    long long rest = 0;
    StackNode* cur = stack.head.load();
    while (cur != nullptr) {
      rest += cur->value;
      StackNode* next = cur->next;
      domain.retire(cur);  // routed through the domain deleter
      cur = next;
    }
    EXPECT_EQ(pushed_sum.load(), popped_sum.load() + rest);
    domain.scan_all();
    EXPECT_EQ(domain.pending(), 0u);
  }
  EXPECT_EQ(Tracked::live.load(), before);
}

}  // namespace
}  // namespace cats::reclaim
