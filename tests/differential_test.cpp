// Differential fuzzing: every structure in the repository executes the
// same pseudo-random operation stream and must produce bit-identical
// results — return values, lookup payloads, and full range-query contents —
// to a reference std::map and hence to each other.  Parameterized over
// seeds and key densities; any divergence pinpoints the op index.
#include <gtest/gtest.h>

#include <iterator>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "calock/ca_tree.hpp"
#include "common/rng.hpp"
#include "common/strkey.hpp"
#include "imtr/imtr_set.hpp"
#include "kary/kary_tree.hpp"
#include "lfca/lfca_tree.hpp"
#include "skiplist/skiplist.hpp"
#include "vskip/versioned_skiplist.hpp"

namespace cats {
namespace {

struct FuzzParams {
  std::uint64_t seed;
  int operations;
  Key key_range;
};

template <class S>
class DifferentialFuzz : public ::testing::Test {};

using AllStructures =
    ::testing::Types<lfca::LfcaTree, lfca::LfcaTreeChunk, calock::CaTree,
                     kary::KaryTree, imtr::ImTreeSet, skiplist::SkipList,
                     vskip::VersionedSkipList>;
TYPED_TEST_SUITE(DifferentialFuzz, AllStructures);

template <class S>
void run_stream(const FuzzParams& params) {
  S structure;
  std::map<Key, Value> model;
  Xoshiro256 rng(params.seed);

  for (int i = 0; i < params.operations; ++i) {
    const Key k = rng.next_in(1, params.key_range);
    const auto kind = rng.next_below(10);
    if (kind < 4) {
      const Value v = rng.next() | 1;
      ASSERT_EQ(structure.insert(k, v), model.count(k) == 0)
          << "insert mismatch at op " << i << " seed " << params.seed;
      model[k] = v;
    } else if (kind < 6) {
      ASSERT_EQ(structure.remove(k), model.erase(k) == 1)
          << "remove mismatch at op " << i << " seed " << params.seed;
    } else if (kind < 9) {
      Value v = 0;
      const bool found = structure.lookup(k, &v);
      auto it = model.find(k);
      ASSERT_EQ(found, it != model.end())
          << "lookup mismatch at op " << i << " seed " << params.seed;
      if (found) {
        ASSERT_EQ(v, it->second)
            << "lookup value mismatch at op " << i << " seed "
            << params.seed;
      }
    } else {
      const Key span = rng.next_in(0, params.key_range / 4);
      const Key hi = k + span;
      std::vector<Item> got;
      structure.range_query(k, hi,
                            [&](Key key, Value v) { got.push_back({key, v}); });
      std::vector<Item> want;
      for (auto it = model.lower_bound(k);
           it != model.end() && it->first <= hi; ++it) {
        want.push_back({it->first, it->second});
      }
      ASSERT_EQ(got.size(), want.size())
          << "range size mismatch at op " << i << " seed " << params.seed;
      for (std::size_t j = 0; j < got.size(); ++j) {
        ASSERT_EQ(got[j].key, want[j].key) << "op " << i;
        ASSERT_EQ(got[j].value, want[j].value) << "op " << i;
      }
    }
  }
  ASSERT_EQ(structure.size(), model.size());
}

TYPED_TEST(DifferentialFuzz, DenseKeys) {
  run_stream<TypeParam>({101, 6000, 300});
}

TYPED_TEST(DifferentialFuzz, MediumDensity) {
  run_stream<TypeParam>({202, 6000, 5000});
}

TYPED_TEST(DifferentialFuzz, SparseKeys) {
  run_stream<TypeParam>({303, 4000, 1'000'000});
}

// Sentinel boundary agreement: keys come from an adversarial palette — the
// domain extremes and their neighbors, negatives, and dense clusters around
// zero — and one range query in four is the full-domain scan
// range_query(kKeyMin, kKeyMax).  Per the key-domain contract
// (common/types.hpp), every structure must treat kKeyMin and kKeyMax as
// ordinary keys in every build type; before the out-of-band sentinel ranks,
// the skiplists silently collided these with their head/tail sentinels in
// release builds.
template <class S>
void run_adversarial_stream(std::uint64_t seed, int operations) {
  static constexpr Key kPalette[] = {
      kKeyMin,       kKeyMin + 1, kKeyMin + 2, kKeyMin + 7,
      -1'000'000'007, -65536,     -257,        -256,
      -255,          -17,         -3,          -2,
      -1,            0,           1,           2,
      3,             15,          16,          17,
      255,           256,         257,         65536,
      kKeyMax - 7,   kKeyMax - 2, kKeyMax - 1, kKeyMax,
  };
  S structure;
  std::map<Key, Value> model;
  Xoshiro256 rng(seed);

  auto pick = [&] { return kPalette[rng.next_below(std::size(kPalette))]; };
  for (int i = 0; i < operations; ++i) {
    const auto kind = rng.next_below(10);
    if (kind < 4) {
      const Key k = pick();
      const Value v = rng.next() | 1;
      ASSERT_EQ(structure.insert(k, v), model.count(k) == 0)
          << "insert mismatch at op " << i << " key " << k;
      model[k] = v;
    } else if (kind < 6) {
      const Key k = pick();
      ASSERT_EQ(structure.remove(k), model.erase(k) == 1)
          << "remove mismatch at op " << i << " key " << k;
    } else if (kind < 8) {
      const Key k = pick();
      Value v = 0;
      const bool found = structure.lookup(k, &v);
      auto it = model.find(k);
      ASSERT_EQ(found, it != model.end())
          << "lookup mismatch at op " << i << " key " << k;
      if (found) {
        ASSERT_EQ(v, it->second) << "op " << i << " key " << k;
      }
    } else {
      Key lo = pick();
      Key hi = pick();
      if (hi < lo) std::swap(lo, hi);
      if (rng.next_below(4) == 0) {
        lo = kKeyMin;
        hi = kKeyMax;
      }
      std::vector<Item> got;
      structure.range_query(lo, hi,
                            [&](Key key, Value v) { got.push_back({key, v}); });
      std::vector<Item> want;
      for (auto it = model.lower_bound(lo);
           it != model.end() && it->first <= hi; ++it) {
        want.push_back({it->first, it->second});
      }
      ASSERT_EQ(got.size(), want.size())
          << "range [" << lo << ", " << hi << "] size mismatch at op " << i;
      for (std::size_t j = 0; j < got.size(); ++j) {
        ASSERT_EQ(got[j].key, want[j].key) << "op " << i;
        ASSERT_EQ(got[j].value, want[j].value) << "op " << i;
      }
    }
  }
  ASSERT_EQ(structure.size(), model.size());
}

TYPED_TEST(DifferentialFuzz, AdversarialSentinelKeys) {
  run_adversarial_stream<TypeParam>(505, 4000);
}

TYPED_TEST(DifferentialFuzz, AdversarialSentinelKeysSecondSeed) {
  run_adversarial_stream<TypeParam>(606, 4000);
}

TYPED_TEST(DifferentialFuzz, RemoveHeavy) {
  // A second generator biases toward removals by replaying inserts first.
  TypeParam structure;
  std::map<Key, Value> model;
  Xoshiro256 rng(404);
  for (int i = 0; i < 2000; ++i) {
    const Key k = rng.next_in(1, 800);
    structure.insert(k, 7);
    model[k] = 7;
  }
  for (int i = 0; i < 4000; ++i) {
    const Key k = rng.next_in(1, 800);
    ASSERT_EQ(structure.remove(k), model.erase(k) == 1) << "op " << i;
  }
  ASSERT_EQ(structure.size(), model.size());
}

// --- String-key twin. ------------------------------------------------------
//
// The StrKey instantiations run the same differential protocol against
// std::map<StrKey, Value>.  The key palette mixes inline (SSO) strings,
// interned long strings, the empty string, and both infinities — which are
// ordinary insertable keys per the key-domain contract.

template <class S>
class StrDifferentialFuzz : public ::testing::Test {};

using StrStructures = ::testing::Types<lfca::LfcaStrTree, lfca::LfcaStrTreeChunk>;
TYPED_TEST_SUITE(StrDifferentialFuzz, StrStructures);

std::vector<StrKey> str_palette() {
  std::vector<StrKey> keys;
  keys.push_back(StrKey::minus_infinity());
  keys.push_back(StrKey::plus_infinity());
  keys.push_back(StrKey::make(""));
  for (int i = 0; i < 48; ++i) {
    std::string text = "k";
    text += std::to_string(i * 37 % 100);
    keys.push_back(StrKey::make(text));
  }
  for (int i = 0; i < 12; ++i) {
    // Longer than StrKey::kInlineCapacity: exercises the intern pool.
    std::string text = "interned-key-with-long-suffix-";
    text += std::to_string(i);
    keys.push_back(StrKey::make(text));
  }
  return keys;
}

template <class S>
void run_str_stream(std::uint64_t seed, int operations) {
  const std::vector<StrKey> palette = str_palette();
  S structure;
  std::map<StrKey, Value> model;
  Xoshiro256 rng(seed);

  auto pick = [&] { return palette[rng.next_below(palette.size())]; };
  for (int i = 0; i < operations; ++i) {
    const auto kind = rng.next_below(10);
    if (kind < 4) {
      const StrKey k = pick();
      const Value v = rng.next() | 1;
      ASSERT_EQ(structure.insert(k, v), model.count(k) == 0)
          << "insert mismatch at op " << i << " key " << k.format();
      model[k] = v;
    } else if (kind < 6) {
      const StrKey k = pick();
      ASSERT_EQ(structure.remove(k), model.erase(k) == 1)
          << "remove mismatch at op " << i << " key " << k.format();
    } else if (kind < 8) {
      const StrKey k = pick();
      Value v = 0;
      const bool found = structure.lookup(k, &v);
      auto it = model.find(k);
      ASSERT_EQ(found, it != model.end())
          << "lookup mismatch at op " << i << " key " << k.format();
      if (found) {
        ASSERT_EQ(v, it->second) << "op " << i;
      }
    } else {
      StrKey lo = pick();
      StrKey hi = pick();
      if (hi < lo) std::swap(lo, hi);
      if (rng.next_below(4) == 0) {
        // Full-domain scan: the traits bounds must enumerate everything,
        // including any infinity keys inserted as ordinary items.
        lo = KeyTraits<StrKey>::min();
        hi = KeyTraits<StrKey>::max();
      }
      std::vector<std::pair<StrKey, Value>> got;
      structure.range_query(lo, hi, [&](StrKey key, Value v) {
        got.push_back({key, v});
      });
      std::vector<std::pair<StrKey, Value>> want;
      for (auto it = model.lower_bound(lo);
           it != model.end() && it->first <= hi; ++it) {
        want.push_back({it->first, it->second});
      }
      ASSERT_EQ(got.size(), want.size())
          << "range [" << lo.format() << ", " << hi.format()
          << "] size mismatch at op " << i;
      for (std::size_t j = 0; j < got.size(); ++j) {
        ASSERT_TRUE(got[j].first == want[j].first)
            << "op " << i << ": got " << got[j].first.format() << " want "
            << want[j].first.format();
        ASSERT_EQ(got[j].second, want[j].second) << "op " << i;
      }
    }
  }
  ASSERT_EQ(structure.size(), model.size());
}

TYPED_TEST(StrDifferentialFuzz, MixedInlineAndInterned) {
  run_str_stream<TypeParam>(707, 6000);
}

TYPED_TEST(StrDifferentialFuzz, SecondSeed) {
  run_str_stream<TypeParam>(808, 6000);
}

}  // namespace
}  // namespace cats
