// Differential fuzzing: every structure in the repository executes the
// same pseudo-random operation stream and must produce bit-identical
// results — return values, lookup payloads, and full range-query contents —
// to a reference std::map and hence to each other.  Parameterized over
// seeds and key densities; any divergence pinpoints the op index.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "calock/ca_tree.hpp"
#include "common/rng.hpp"
#include "imtr/imtr_set.hpp"
#include "kary/kary_tree.hpp"
#include "lfca/lfca_tree.hpp"
#include "skiplist/skiplist.hpp"
#include "vskip/versioned_skiplist.hpp"

namespace cats {
namespace {

struct FuzzParams {
  std::uint64_t seed;
  int operations;
  Key key_range;
};

template <class S>
class DifferentialFuzz : public ::testing::Test {};

using AllStructures =
    ::testing::Types<lfca::LfcaTree, lfca::LfcaTreeChunk, calock::CaTree,
                     kary::KaryTree, imtr::ImTreeSet, skiplist::SkipList,
                     vskip::VersionedSkipList>;
TYPED_TEST_SUITE(DifferentialFuzz, AllStructures);

template <class S>
void run_stream(const FuzzParams& params) {
  S structure;
  std::map<Key, Value> model;
  Xoshiro256 rng(params.seed);

  for (int i = 0; i < params.operations; ++i) {
    const Key k = rng.next_in(1, params.key_range);
    const auto kind = rng.next_below(10);
    if (kind < 4) {
      const Value v = rng.next() | 1;
      ASSERT_EQ(structure.insert(k, v), model.count(k) == 0)
          << "insert mismatch at op " << i << " seed " << params.seed;
      model[k] = v;
    } else if (kind < 6) {
      ASSERT_EQ(structure.remove(k), model.erase(k) == 1)
          << "remove mismatch at op " << i << " seed " << params.seed;
    } else if (kind < 9) {
      Value v = 0;
      const bool found = structure.lookup(k, &v);
      auto it = model.find(k);
      ASSERT_EQ(found, it != model.end())
          << "lookup mismatch at op " << i << " seed " << params.seed;
      if (found) {
        ASSERT_EQ(v, it->second)
            << "lookup value mismatch at op " << i << " seed "
            << params.seed;
      }
    } else {
      const Key span = rng.next_in(0, params.key_range / 4);
      const Key hi = k + span;
      std::vector<Item> got;
      structure.range_query(k, hi,
                            [&](Key key, Value v) { got.push_back({key, v}); });
      std::vector<Item> want;
      for (auto it = model.lower_bound(k);
           it != model.end() && it->first <= hi; ++it) {
        want.push_back({it->first, it->second});
      }
      ASSERT_EQ(got.size(), want.size())
          << "range size mismatch at op " << i << " seed " << params.seed;
      for (std::size_t j = 0; j < got.size(); ++j) {
        ASSERT_EQ(got[j].key, want[j].key) << "op " << i;
        ASSERT_EQ(got[j].value, want[j].value) << "op " << i;
      }
    }
  }
  ASSERT_EQ(structure.size(), model.size());
}

TYPED_TEST(DifferentialFuzz, DenseKeys) {
  run_stream<TypeParam>({101, 6000, 300});
}

TYPED_TEST(DifferentialFuzz, MediumDensity) {
  run_stream<TypeParam>({202, 6000, 5000});
}

TYPED_TEST(DifferentialFuzz, SparseKeys) {
  run_stream<TypeParam>({303, 4000, 1'000'000});
}

TYPED_TEST(DifferentialFuzz, RemoveHeavy) {
  // A second generator biases toward removals by replaying inserts first.
  TypeParam structure;
  std::map<Key, Value> model;
  Xoshiro256 rng(404);
  for (int i = 0; i < 2000; ++i) {
    const Key k = rng.next_in(1, 800);
    structure.insert(k, 7);
    model[k] = 7;
  }
  for (int i = 0; i < 4000; ++i) {
    const Key k = rng.next_in(1, 800);
    ASSERT_EQ(structure.remove(k), model.erase(k) == 1) << "op " << i;
  }
  ASSERT_EQ(structure.size(), model.size());
}

}  // namespace
}  // namespace cats
