// Tests for the common utilities: RNG quality basics, FunctionRef
// type erasure, SpinBarrier correctness and Backoff bounds.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "common/backoff.hpp"
#include "common/function_ref.hpp"
#include "common/padded.hpp"
#include "common/rng.hpp"
#include "common/spin_barrier.hpp"

namespace cats {
namespace {

TEST(Rng, DeterministicPerSeed) {
  Xoshiro256 a(42);
  Xoshiro256 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
  Xoshiro256 c(43);
  int same = 0;
  Xoshiro256 a2(42);
  for (int i = 0; i < 100; ++i) same += (a2.next() == c.next());
  EXPECT_LT(same, 3);
}

TEST(Rng, NextBelowIsInRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
    const std::int64_t v = rng.next_in(-5, 9);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 9);
  }
}

TEST(Rng, NextInCoversBothEndpoints) {
  Xoshiro256 rng(3);
  bool low = false;
  bool high = false;
  for (int i = 0; i < 10'000 && !(low && high); ++i) {
    const std::int64_t v = rng.next_in(0, 7);
    low |= (v == 0);
    high |= (v == 7);
  }
  EXPECT_TRUE(low);
  EXPECT_TRUE(high);
}

TEST(Rng, UniformityCoarse) {
  Xoshiro256 rng(99);
  int buckets[8] = {};
  constexpr int kDraws = 80'000;
  for (int i = 0; i < kDraws; ++i) ++buckets[rng.next_below(8)];
  for (int b : buckets) {
    EXPECT_GT(b, kDraws / 8 * 0.9);
    EXPECT_LT(b, kDraws / 8 * 1.1);
  }
}

TEST(Rng, Splitmix64AdvancesState) {
  std::uint64_t s = 1;
  const std::uint64_t a = splitmix64(s);
  const std::uint64_t b = splitmix64(s);
  EXPECT_NE(a, b);
  EXPECT_NE(mix64(1), mix64(2));
}

TEST(FunctionRefTest, CallsLambdaWithCaptures) {
  int sum = 0;
  // FunctionRef is non-owning: the callable must outlive it, so bind it to
  // a named object (initializing a FunctionRef variable from a temporary
  // lambda would dangle — that is the documented usage contract).
  auto lambda = [&](Key k, Value v) { sum += static_cast<int>(k + v); };
  FunctionRef<void(Key, Value)> visit = lambda;
  visit(1, 2);
  visit(3, 4);
  EXPECT_EQ(sum, 10);
}

TEST(FunctionRefTest, WorksWithFunctionPointersAndReturns) {
  struct Helper {
    static Value twice(Key k, Value v) {
      return v * 2 + static_cast<Value>(k) * 0;
    }
  };
  FunctionRef<Value(Key, Value)> f = Helper::twice;
  EXPECT_EQ(f(0, 21), 42u);
}

TEST(PaddedTest, ElementsOnDistinctCacheLines) {
  Padded<std::atomic<int>> a[4];
  for (int i = 1; i < 4; ++i) {
    const auto delta = reinterpret_cast<char*>(&a[i]) -
                       reinterpret_cast<char*>(&a[i - 1]);
    EXPECT_GE(delta, static_cast<long>(kCacheLine));
  }
}

TEST(SpinBarrierTest, SynchronizesRounds) {
  constexpr int kThreads = 6;
  constexpr int kRounds = 200;
  SpinBarrier barrier(kThreads);
  std::atomic<int> counter{0};
  std::atomic<int> violations{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int round = 0; round < kRounds; ++round) {
        counter.fetch_add(1);
        barrier.arrive_and_wait();
        // After the barrier, every thread of this round has incremented.
        if (counter.load() < (round + 1) * kThreads) violations.fetch_add(1);
        barrier.arrive_and_wait();
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(violations.load(), 0);
  EXPECT_EQ(counter.load(), kThreads * kRounds);
}

TEST(BackoffTest, SpinsAreBounded) {
  Backoff backoff;
  // Must terminate quickly even after many escalations.
  for (int i = 0; i < 200; ++i) backoff.spin();
  backoff.reset();
  backoff.spin();
  SUCCEED();
}

}  // namespace
}  // namespace cats
