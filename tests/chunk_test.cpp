// Unit and property tests for the immutable sorted-array container
// (src/chunk) and for the LFCA tree instantiated with it — the paper's
// "Flexible" property exercised end to end.
#include "chunk/chunk.hpp"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/rng.hpp"
#include "lfca/lfca_tree.hpp"

namespace cats::chunk {
namespace {

TEST(ChunkBasic, EmptyContainer) {
  Ref c;
  EXPECT_TRUE(empty(c.get()));
  EXPECT_EQ(size(c.get()), 0u);
  EXPECT_FALSE(lookup(c.get(), 5, nullptr));
  EXPECT_TRUE(check_invariants(c.get()));
}

TEST(ChunkBasic, InsertLookupRemove) {
  bool replaced = true;
  Ref c = insert(nullptr, 5, 50, &replaced);
  EXPECT_FALSE(replaced);
  Value v = 0;
  ASSERT_TRUE(lookup(c.get(), 5, &v));
  EXPECT_EQ(v, 50u);
  Ref c2 = insert(c.get(), 5, 51, &replaced);
  EXPECT_TRUE(replaced);
  ASSERT_TRUE(lookup(c2.get(), 5, &v));
  EXPECT_EQ(v, 51u);
  // Persistence.
  ASSERT_TRUE(lookup(c.get(), 5, &v));
  EXPECT_EQ(v, 50u);
  bool removed = false;
  Ref c3 = remove(c2.get(), 5, &removed);
  EXPECT_TRUE(removed);
  EXPECT_TRUE(empty(c3.get()));
}

TEST(ChunkBasic, RemoveAbsentSharesNode) {
  Ref c = insert(nullptr, 1, 1);
  bool removed = true;
  Ref c2 = remove(c.get(), 9, &removed);
  EXPECT_FALSE(removed);
  EXPECT_EQ(c2.get(), c.get());  // unchanged version is shared
}

TEST(ChunkBasic, JoinAndSplit) {
  Ref a;
  Ref b;
  for (Key k = 0; k < 10; ++k) a = insert(a.get(), k, 1);
  for (Key k = 100; k < 110; ++k) b = insert(b.get(), k, 2);
  Ref j = join(a.get(), b.get());
  EXPECT_EQ(size(j.get()), 20u);
  EXPECT_TRUE(check_invariants(j.get()));
  Ref l, r;
  Key pivot = 0;
  split_evenly(j.get(), &l, &r, &pivot);
  EXPECT_EQ(size(l.get()), 10u);
  EXPECT_EQ(size(r.get()), 10u);
  EXPECT_EQ(min_key(r.get()), pivot);
  EXPECT_LT(max_key(l.get()), pivot);
}

TEST(ChunkBasic, ForRangeBounds) {
  Ref c;
  for (Key k = 0; k < 100; k += 10) c = insert(c.get(), k, 1);
  std::vector<Key> seen;
  for_range(c.get(), 15, 55, [&](Key k, Value) { seen.push_back(k); });
  EXPECT_EQ(seen, (std::vector<Key>{20, 30, 40, 50}));
}

TEST(ChunkBasic, NoLeak) {
  const std::size_t before = live_nodes();
  {
    Ref c;
    std::vector<Ref> versions;
    for (Key k = 0; k < 300; ++k) {
      c = insert(c.get(), k * 3 % 301, static_cast<Value>(k));
      if (k % 50 == 0) versions.push_back(c);
    }
    for (Key k = 0; k < 300; k += 2) c = remove(c.get(), k);
  }
  EXPECT_EQ(live_nodes(), before);
}

class ChunkRandomOps : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChunkRandomOps, MatchesReferenceModel) {
  Xoshiro256 rng(GetParam());
  Ref c;
  std::map<Key, Value> model;
  for (int i = 0; i < 3000; ++i) {
    const Key k = rng.next_in(0, 500);
    switch (rng.next_below(4)) {
      case 0:
      case 1: {
        const Value v = rng.next();
        bool replaced = false;
        c = insert(c.get(), k, v, &replaced);
        EXPECT_EQ(replaced, model.count(k) == 1);
        model[k] = v;
        break;
      }
      case 2: {
        bool removed = false;
        c = remove(c.get(), k, &removed);
        EXPECT_EQ(removed, model.erase(k) == 1);
        break;
      }
      default: {
        Value v = 0;
        EXPECT_EQ(lookup(c.get(), k, &v), model.count(k) == 1);
        break;
      }
    }
  }
  EXPECT_EQ(size(c.get()), model.size());
  EXPECT_TRUE(check_invariants(c.get()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChunkRandomOps,
                         ::testing::Values(1, 2, 3, 4, 5));

// --- The LFCA tree on chunk containers (Flexible property). ----------------

TEST(LfcaChunk, BasicSemantics) {
  lfca::LfcaTreeChunk tree;
  EXPECT_TRUE(tree.insert(10, 1));
  EXPECT_FALSE(tree.insert(10, 2));
  EXPECT_TRUE(tree.lookup(10));
  EXPECT_TRUE(tree.remove(10));
  EXPECT_FALSE(tree.lookup(10));
  EXPECT_TRUE(tree.check_integrity());
}

TEST(LfcaChunk, ModelComparison) {
  lfca::LfcaTreeChunk tree;
  std::map<Key, Value> model;
  Xoshiro256 rng(77);
  for (int i = 0; i < 5000; ++i) {
    const Key k = rng.next_in(0, 2000);
    if (rng.next_below(2) == 0) {
      const Value v = rng.next();
      EXPECT_EQ(tree.insert(k, v), model.count(k) == 0);
      model[k] = v;
    } else {
      EXPECT_EQ(tree.remove(k), model.erase(k) == 1);
    }
  }
  EXPECT_EQ(tree.size(), model.size());
  std::vector<Item> items;
  tree.range_query(kKeyMin, kKeyMax,
                   [&](Key k, Value v) { items.push_back({k, v}); });
  ASSERT_EQ(items.size(), model.size());
  std::size_t i = 0;
  for (const auto& [k, v] : model) {
    EXPECT_EQ(items[i].key, k);
    EXPECT_EQ(items[i].value, v);
    ++i;
  }
  EXPECT_TRUE(tree.check_integrity());
}

TEST(LfcaChunk, SplitsKeepChunksSmall) {
  // With an aggressive split threshold, contention splits keep the flat
  // arrays short, which is the point of pairing chunks with adaptation.
  lfca::Config config;
  config.high_cont = 0;
  lfca::LfcaTreeChunk tree(reclaim::Domain::global(), config);
  for (Key k = 0; k < 10'000; ++k) tree.insert(k, 1);
  EXPECT_EQ(tree.size(), 10'000u);
  EXPECT_TRUE(tree.check_integrity());
}

TEST(LfcaTreap, CheckIntegrityAfterChurn) {
  lfca::LfcaTree tree;
  Xoshiro256 rng(3);
  for (int i = 0; i < 30'000; ++i) {
    const Key k = rng.next_in(-5000, 5000);
    if (rng.next_below(3) == 0) {
      tree.remove(k);
    } else {
      tree.insert(k, 1);
    }
  }
  EXPECT_TRUE(tree.check_integrity());
}

}  // namespace
}  // namespace cats::chunk
