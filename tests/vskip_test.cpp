// Versioned-skiplist (KiWi-mechanism) specifics: version assignment and
// helping, snapshot scans under concurrent updates, tombstone semantics and
// version-chain pruning.
#include "vskip/versioned_skiplist.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "common/spin_barrier.hpp"

namespace cats::vskip {
namespace {

TEST(VskipBasic, TombstoneSemantics) {
  VersionedSkipList map;
  EXPECT_FALSE(map.remove(5));  // no index node is created for this
  EXPECT_TRUE(map.insert(5, 1));
  EXPECT_FALSE(map.insert(5, 2));
  EXPECT_TRUE(map.remove(5));
  EXPECT_FALSE(map.lookup(5));
  // Reinsert over a tombstone.
  EXPECT_TRUE(map.insert(5, 3));
  Value v = 0;
  ASSERT_TRUE(map.lookup(5, &v));
  EXPECT_EQ(v, 3u);
}

TEST(VskipBasic, ScanSkipsTombstones) {
  VersionedSkipList map;
  for (Key k = 1; k <= 20; ++k) map.insert(k, 1);
  for (Key k = 1; k <= 20; k += 2) map.remove(k);
  std::vector<Key> seen;
  map.range_query(1, 20, [&](Key k, Value) { seen.push_back(k); });
  ASSERT_EQ(seen.size(), 10u);
  for (Key k : seen) EXPECT_EQ(k % 2, 0);
}

TEST(VskipBasic, SequentialModelComparison) {
  VersionedSkipList map;
  std::map<Key, Value> model;
  Xoshiro256 rng(11);
  for (int i = 0; i < 20'000; ++i) {
    const Key k = rng.next_in(1, 2000);
    switch (rng.next_below(4)) {
      case 0:
      case 1: {
        const Value v = rng.next();
        EXPECT_EQ(map.insert(k, v), model.count(k) == 0);
        model[k] = v;
        break;
      }
      case 2:
        EXPECT_EQ(map.remove(k), model.erase(k) == 1);
        break;
      default: {
        Value v = 0;
        const bool found = map.lookup(k, &v);
        EXPECT_EQ(found, model.count(k) == 1);
        if (found) {
          EXPECT_EQ(v, model[k]);
        }
      }
    }
  }
  EXPECT_EQ(map.size(), model.size());
}

TEST(VskipVersioning, ScansOwnDistinctVersions) {
  VersionedSkipList map;
  map.insert(1, 1);
  const std::uint64_t v0 = map.version();
  map.range_query(0, 10, [](Key, Value) {});
  map.range_query(0, 10, [](Key, Value) {});
  EXPECT_EQ(map.version(), v0 + 2);
  // Updates do not advance the version counter.
  map.insert(2, 1);
  map.remove(1);
  EXPECT_EQ(map.version(), v0 + 2);
}

// Snapshot semantics: sum-preserving overwrites must never be observed
// half-applied by a scan.
TEST(VskipConcurrent, ScansAreSnapshots) {
  VersionedSkipList map;
  constexpr Key kWindow = 64;
  constexpr Value kUnit = 100;
  for (Key k = 1; k <= kWindow; ++k) map.insert(k, kUnit);

  std::atomic<bool> stop{false};
  std::atomic<int> violations{0};
  std::vector<std::thread> writers;
  for (int w = 0; w < 3; ++w) {
    writers.emplace_back([&, w] {
      Xoshiro256 rng(w + 5);
      while (!stop.load()) {
        map.insert(rng.next_in(1, kWindow), kUnit);  // identity overwrite
      }
    });
  }
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      for (int i = 0; i < 3000; ++i) {
        Value sum = 0;
        std::size_t n = 0;
        map.range_query(1, kWindow, [&](Key, Value v) {
          sum += v;
          ++n;
        });
        if (sum != kWindow * kUnit || n != kWindow) violations.fetch_add(1);
      }
    });
  }
  for (auto& th : readers) th.join();
  stop.store(true);
  for (auto& th : writers) th.join();
  EXPECT_EQ(violations.load(), 0);
}

TEST(VskipConcurrent, DisjointStripes) {
  VersionedSkipList map;
  constexpr int kThreads = 6;
  SpinBarrier barrier(kThreads);
  std::vector<std::map<Key, Value>> models(kThreads);
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(t + 13);
      auto& model = models[t];
      barrier.arrive_and_wait();
      for (int i = 0; i < 15'000; ++i) {
        const Key k = rng.next_in(0, 1000) * kThreads + t + 1;
        switch (rng.next_below(4)) {
          case 0:
          case 1: {
            const Value v = rng.next();
            if (map.insert(k, v) != (model.count(k) == 0)) failures++;
            model[k] = v;
            break;
          }
          case 2:
            if (map.remove(k) != (model.erase(k) == 1)) failures++;
            break;
          default: {
            // Scans mixed in so pruning and version assignment race with
            // the updates.
            std::size_t n = 0;
            map.range_query(k, k + 100, [&](Key, Value) { ++n; });
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  std::size_t expected = 0;
  for (auto& m : models) expected += m.size();
  EXPECT_EQ(map.size(), expected);
}

TEST(VskipPruning, HotKeyChainsStayBounded) {
  VersionedSkipList map;
  // Alternate updates and scans on one key: pruning must keep reclaiming
  // superseded records (verified via the domain's pending counter staying
  // bounded rather than growing with the iteration count).
  reclaim::Domain& domain = map.domain();
  for (int i = 0; i < 50'000; ++i) {
    map.insert(7, static_cast<Value>(i));
    if (i % 16 == 0) {
      map.range_query(0, 10, [](Key, Value) {});
    }
  }
  domain.drain();
  EXPECT_LT(domain.pending(), 10'000u);
  Value v = 0;
  ASSERT_TRUE(map.lookup(7, &v));
  EXPECT_EQ(v, 49'999u);
}

}  // namespace
}  // namespace cats::vskip
