// Tests for the background monitor (obs/monitor.hpp) and the embedded
// HTTP endpoint (obs/http_server.hpp).  Both are CATS_OBS-only subsystems;
// in OFF builds this file compiles to a single placeholder test.
#include <gtest/gtest.h>

#include "obs/obs.hpp"

#if CATS_OBS_ENABLED

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "harness/runner.hpp"
#include "obs/export.hpp"
#include "obs/flight/flight.hpp"
#include "obs/http_server.hpp"
#include "obs/json.hpp"
#include "obs/monitor.hpp"
#include "obs/topology.hpp"

namespace {

using namespace cats;
using namespace std::chrono_literals;

// ---------------------------------------------------------------------------
// Monitor: sampling, rates, schema, ring bound, dumps.
// ---------------------------------------------------------------------------

obs::Monitor::StatsSource counting_source(std::atomic<std::uint64_t>& ops) {
  return [&ops] {
    obs::Snapshot snap;
    snap.add_counter("ops", ops.load());
    snap.add_gauge("level", 2.5);
    return snap;
  };
}

TEST(Monitor, SamplesCountersAndComputesRates) {
  std::atomic<std::uint64_t> ops{0};
  obs::Monitor::Config config;
  config.interval = 20ms;
  obs::Monitor monitor(config, counting_source(ops));

  monitor.start();
  EXPECT_TRUE(monitor.running());
  for (int i = 0; i < 5; ++i) {
    ops.fetch_add(1000);
    std::this_thread::sleep_for(25ms);
  }
  monitor.stop();
  EXPECT_FALSE(monitor.running());

  ASSERT_GE(monitor.sample_count(), 3u);
  ASSERT_EQ(monitor.counter_names().size(), 1u);
  EXPECT_EQ(monitor.counter_names()[0], "ops");
  ASSERT_EQ(monitor.gauge_names().size(), 1u);
  EXPECT_EQ(monitor.gauge_names()[0], "level");

  const auto series = monitor.series();
  double max_rate = 0.0;
  for (std::size_t i = 0; i < series.size(); ++i) {
    ASSERT_EQ(series[i].counters.size(), 1u);
    ASSERT_EQ(series[i].rates.size(), 1u);
    ASSERT_EQ(series[i].gauges.size(), 1u);
    EXPECT_GE(series[i].rates[0], 0.0);
    EXPECT_DOUBLE_EQ(series[i].gauges[0], 2.5);
    if (i > 0) {
      // Cumulative counters are monotone and time advances.
      EXPECT_GE(series[i].counters[0], series[i - 1].counters[0]);
      EXPECT_GT(series[i].t_s, series[i - 1].t_s);
    }
    max_rate = std::max(max_rate, series[i].rates[0]);
  }
  // 1000 ops every ~25 ms is ~40k/s; any positive rate proves the deltas
  // flow (CI schedulers make tighter bounds flaky).
  EXPECT_GT(max_rate, 0.0);
  EXPECT_EQ(series.back().counters[0], ops.load());
}

TEST(Monitor, RingStaysBounded) {
  std::atomic<std::uint64_t> ops{0};
  obs::Monitor::Config config;
  config.interval = 1ms;
  config.capacity = 8;
  obs::Monitor monitor(config, counting_source(ops));
  // Drive sampling synchronously — no thread, no timing dependence.
  for (int i = 0; i < 50; ++i) {
    ops.fetch_add(10);
    monitor.sample_now();
  }
  EXPECT_EQ(monitor.sample_count(), 8u);
  // The ring kept the newest samples.
  EXPECT_EQ(monitor.series().back().counters[0], ops.load());
}

TEST(Monitor, TopologySourceAddsGaugeColumns) {
  std::atomic<std::uint64_t> ops{0};
  obs::Monitor::Config config;
  obs::Monitor monitor(config, counting_source(ops), [] {
    obs::TopologySnapshot topo;
    topo.route_nodes = 3;
    topo.base_nodes = 4;
    topo.items = 100;
    return topo;
  });
  monitor.sample_now();

  const auto gauges = monitor.gauge_names();
  auto index_of = [&](const std::string& name) {
    for (std::size_t i = 0; i < gauges.size(); ++i) {
      if (gauges[i] == name) return static_cast<std::ptrdiff_t>(i);
    }
    return static_cast<std::ptrdiff_t>(-1);
  };
  const auto base_col = index_of("topo_base_nodes");
  const auto items_col = index_of("topo_items");
  ASSERT_GE(base_col, 0);
  ASSERT_GE(items_col, 0);
  const auto series = monitor.series();
  ASSERT_EQ(series.size(), 1u);
  EXPECT_DOUBLE_EQ(series[0].gauges[base_col], 4.0);
  EXPECT_DOUBLE_EQ(series[0].gauges[items_col], 100.0);
}

TEST(Monitor, CsvAndJsonDumps) {
  std::atomic<std::uint64_t> ops{0};
  obs::Monitor::Config config;
  obs::Monitor monitor(config, counting_source(ops));
  for (int i = 0; i < 3; ++i) {
    ops.fetch_add(7);
    monitor.sample_now();
  }

  std::ostringstream csv;
  monitor.write_csv(csv);
  const std::string text = csv.str();
  EXPECT_EQ(text.rfind("t_s,interval_s,ops,ops_per_sec,level\n", 0), 0u);
  // Header + one row per sample, each newline-terminated.
  std::size_t lines = 0;
  for (char c : text) lines += c == '\n';
  EXPECT_EQ(lines, 1u + monitor.sample_count());

  std::ostringstream json;
  monitor.write_json(json);
  EXPECT_NE(json.str().find("\"counters\":[\"ops\"]"), std::string::npos);
  EXPECT_NE(json.str().find("\"samples\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// HTTP endpoint: real sockets against 127.0.0.1 on an ephemeral port.
// ---------------------------------------------------------------------------

// Minimal blocking HTTP client: one request, read to EOF (the server
// closes after each response).
std::string http_request(int port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    ADD_FAILURE() << "connect failed";
    return {};
  }
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string http_get(int port, const std::string& path) {
  return http_request(port, "GET " + path +
                                " HTTP/1.1\r\nHost: localhost\r\n"
                                "Connection: close\r\n\r\n");
}

TEST(HttpServer, ServesRoutesOnEphemeralPort) {
  obs::HttpServer server(0);
  server.handle("/healthz", "text/plain", [] { return std::string("ok\n"); });
  std::atomic<int> hits{0};
  server.handle("/metrics", "text/plain", [&hits] {
    hits.fetch_add(1);
    return std::string("cats_alpha 42\n");
  });
  ASSERT_TRUE(server.start());
  ASSERT_GT(server.port(), 0);

  const std::string health = http_get(server.port(), "/healthz");
  EXPECT_NE(health.find("200 OK"), std::string::npos);
  EXPECT_NE(health.find("\r\n\r\nok\n"), std::string::npos);
  EXPECT_NE(health.find("Content-Type: text/plain"), std::string::npos);

  const std::string metrics = http_get(server.port(), "/metrics");
  EXPECT_NE(metrics.find("cats_alpha 42"), std::string::npos);
  EXPECT_EQ(hits.load(), 1);

  // Query strings are stripped before route matching.
  const std::string with_query = http_get(server.port(), "/metrics?x=1");
  EXPECT_NE(with_query.find("cats_alpha 42"), std::string::npos);

  const std::string missing = http_get(server.port(), "/nope");
  EXPECT_NE(missing.find("404"), std::string::npos);

  const std::string post = http_request(
      server.port(), "POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(post.find("405"), std::string::npos);

  server.stop();
  EXPECT_FALSE(server.running());
  server.stop();  // idempotent
}

TEST(HttpServer, HeadRequestOmitsBody) {
  obs::HttpServer server(0);
  server.handle("/healthz", "text/plain", [] { return std::string("ok\n"); });
  ASSERT_TRUE(server.start());
  const std::string head = http_request(
      server.port(), "HEAD /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(head.find("200 OK"), std::string::npos);
  EXPECT_NE(head.find("Content-Length: 3"), std::string::npos);
  EXPECT_EQ(head.find("\r\n\r\nok"), std::string::npos);
  server.stop();
}

// MonitoredRun with --trace-out: the ctor enables the flight recorder, the
// endpoint serves the live trace at /trace.json, and finish() writes the
// same document (parseable Chrome trace JSON) to the requested file.
TEST(Monitor, MonitoredRunServesAndWritesTrace) {
  const char* trace_path = "monitor_test_trace.json";
  harness::Options opt;
  opt.monitor_interval_ms = 0;  // no sampler thread; trace only
  opt.monitor_port = 0;         // ephemeral endpoint
  opt.trace_out = trace_path;
  opt.trace_sample_shift = 0;  // record every span
  std::atomic<std::uint64_t> ops{0};
  {
    harness::MonitoredRun run(opt, counting_source(ops));
    ASSERT_GT(run.port(), 0);
    ASSERT_TRUE(obs::flight::Recorder::instance().enabled());
    for (Key k = 0; k < 5; ++k) {
      const obs::flight::SpanStart s = obs::flight::begin_span();
      obs::flight::end_span(s, obs::flight::SpanKind::kLookup, k);
    }
    const std::string body = http_get(run.port(), "/trace.json");
    EXPECT_NE(body.find("200 OK"), std::string::npos);
    EXPECT_NE(body.find("Content-Type: application/json"),
              std::string::npos);
    EXPECT_NE(body.find("\"traceEvents\""), std::string::npos);
    run.finish();
    EXPECT_FALSE(obs::flight::Recorder::instance().enabled());
  }

  std::ifstream in(trace_path);
  ASSERT_TRUE(in) << "finish() did not write " << trace_path;
  std::stringstream file;
  file << in.rdbuf();
  const obs::json::Value doc = obs::json::parse(file.str());
  EXPECT_EQ(doc.at("displayTimeUnit").as_string(), "ms");
  std::size_t op_spans = 0;
  for (const obs::json::Value& ev : doc.at("traceEvents").as_array()) {
    op_spans += ev.at("ph").as_string() == "X";
  }
  EXPECT_EQ(op_spans, 5u);
  std::remove(trace_path);
}

TEST(HttpServer, SurvivesManySequentialRequests) {
  obs::HttpServer server(0);
  server.handle("/healthz", "text/plain", [] { return std::string("ok\n"); });
  ASSERT_TRUE(server.start());
  for (int i = 0; i < 50; ++i) {
    EXPECT_NE(http_get(server.port(), "/healthz").find("200 OK"),
              std::string::npos);
  }
  server.stop();
}

}  // namespace

#else  // !CATS_OBS_ENABLED

TEST(Monitor, CompiledOut) { SUCCEED(); }

#endif  // CATS_OBS_ENABLED
