// Tests of the CATS_CHECKED correctness tooling (src/check): the Report
// accumulator, the structural validators (treap, chunk, LFCA route tree),
// the canary protocol and the retired-pointer registry — including negative
// death tests proving each checker class actually fires on a deliberately
// planted bug.  In CATS_CHECKED=OFF builds only the always-available
// surface (Report, structural validate, no-op tree validate) is exercised.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "alloc/pool.hpp"
#include "check/check.hpp"
#include "chunk/chunk.hpp"
#include "harness/cli.hpp"
#include "harness/runner.hpp"
#include "harness/workload.hpp"
#include "lfca/lfca_tree.hpp"
#include "reclaim/ebr.hpp"
#include "treap/treap.hpp"

namespace {

using cats::Key;
using cats::Value;

// --- Always-available surface (both gate settings). ------------------------

TEST(CheckReport, AccumulatesFormattedFailures) {
  cats::check::Report report;
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.failure_count(), 0u);
  EXPECT_EQ(report.text(), "");
  report.add("first %d", 1);
  report.add("second %s", "two");
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.failure_count(), 2u);
  EXPECT_EQ(report.failures()[0], "first 1");
  EXPECT_EQ(report.failures()[1], "second two");
  EXPECT_EQ(report.text(), "first 1\nsecond two");
}

TEST(CheckGate, MacrosAreSafeStatements) {
  // Compiles and runs under both gate settings; with the gate off both
  // macros must expand to empty statements with unevaluated arguments.
  int evaluations = 0;
  auto touch = [&] { return ++evaluations > 0; };
  (void)touch;  // with the gate off no macro below evaluates it
  CATS_CHECK(touch(), "never fails");
  CATS_CHECKED_ONLY((void)touch());
  if (cats::check::kCheckedEnabled) {
    EXPECT_EQ(evaluations, 2);
  } else {
    EXPECT_EQ(evaluations, 0);
  }
}

TEST(TreapValidator, AcceptsWellFormedTree) {
  cats::treap::Ref tree;
  for (Key k = 0; k < 500; ++k) {
    tree = cats::treap::insert(tree.get(), k * 3, static_cast<Value>(k));
  }
  cats::check::Report report;
  EXPECT_TRUE(cats::treap::validate(tree.get(), &report)) << report.text();
  EXPECT_TRUE(report.ok());
  EXPECT_TRUE(cats::treap::validate(nullptr, &report));
}

TEST(ChunkValidator, AcceptsWellFormedChunk) {
  cats::chunk::Ref chunk;
  for (Key k = 0; k < 100; ++k) {
    chunk = cats::chunk::insert(chunk.get(), k * 7, static_cast<Value>(k));
  }
  cats::check::Report report;
  EXPECT_TRUE(cats::chunk::validate(chunk.get(), &report)) << report.text();
  EXPECT_TRUE(report.ok());
  EXPECT_TRUE(cats::chunk::validate(nullptr, &report));
}

TEST(TreeValidator, AcceptsQuiescentTreeWithStructure) {
  cats::lfca::LfcaTree tree;
  for (Key k = 1; k < 2000; ++k) tree.insert(k, static_cast<Value>(k) + 1);
  // Build real route structure plus join/neighbor leftovers.
  EXPECT_TRUE(tree.force_split(500));
  EXPECT_TRUE(tree.force_split(1500));
  tree.force_join(500);
  std::uint64_t sum = 0;
  tree.range_query(100, 1900, [&](Key, Value v) { sum += v; });
  EXPECT_GT(sum, 0u);
  std::string diagnostics;
  EXPECT_TRUE(tree.validate(&diagnostics)) << diagnostics;
  EXPECT_TRUE(diagnostics.empty());
}

TEST(TreeValidator, AcceptsChunkPolicyTree) {
  cats::lfca::LfcaTreeChunk tree;
  for (Key k = 1; k < 300; ++k) tree.insert(k, static_cast<Value>(k));
  EXPECT_TRUE(tree.force_split(150));
  std::string diagnostics;
  EXPECT_TRUE(tree.validate(&diagnostics)) << diagnostics;
}

TEST(TreeValidator, ConcurrentModeHoldsUnderLoad) {
  cats::lfca::LfcaTree tree;
  for (Key k = 1; k < 4000; k += 2) tree.insert(k, 1);
  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  for (int t = 0; t < 2; ++t) {
    workers.emplace_back([&tree, &stop, t] {
      std::uint64_t x = 0x9e3779b97f4a7c15ull * (t + 1);
      while (!stop.load(std::memory_order_relaxed)) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        const Key k = static_cast<Key>(x % 4000) + 1;
        if ((x & 2) != 0) {
          tree.insert(k, 1);
        } else {
          tree.remove(k);
        }
        if ((x & 1023) == 0) {
          tree.range_query(k, k + 64, [](Key, Value) {});
        }
      }
    });
  }
  for (int i = 0; i < 40; ++i) {
    std::string diagnostics;
    EXPECT_TRUE(tree.validate(&diagnostics, /*expect_quiescent=*/false))
        << diagnostics;
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& w : workers) w.join();
  // Now quiescent: the full invariant set must hold too.
  std::string diagnostics;
  EXPECT_TRUE(tree.validate(&diagnostics)) << diagnostics;
}

TEST(Harness, CheckEveryNOpsRunsInsideWorkload) {
  // Exercises the --check-every-n-ops path: with the gate on, each worker
  // validates the tree every 512 of its own operations; with the gate off
  // the knob is inert.  Either way the run must complete normally.
  cats::harness::g_check_every_n_ops.store(512, std::memory_order_relaxed);
  cats::lfca::LfcaTree tree;
  cats::harness::prefill(tree, 1024);
  cats::harness::Mix mix;
  mix.update_permille = 500;
  mix.lookup_permille = 450;
  mix.range_max = 64;
  const cats::harness::RunResult result =
      cats::harness::run_mix(tree, 2, mix, 1024, 0.1);
  cats::harness::g_check_every_n_ops.store(0, std::memory_order_relaxed);
  EXPECT_GT(result.total_ops, 0u);
}

#if CATS_CHECKED_ENABLED

// --- Canary protocol. ------------------------------------------------------

TEST(Canary, StateClassification) {
  using namespace cats::check;
  EXPECT_EQ(canary_state(kCanaryAlive), CanaryState::kAlive);
  EXPECT_EQ(canary_state(kCanaryRetired), CanaryState::kRetired);
  EXPECT_EQ(canary_state(kPoisonWord), CanaryState::kDead);
  EXPECT_EQ(canary_state(0), CanaryState::kDead);
  EXPECT_STREQ(canary_name(kCanaryAlive), "alive");
  EXPECT_STREQ(canary_name(kCanaryRetired), "retired");
  EXPECT_STREQ(canary_name(kPoisonWord), "freed (poison)");
  EXPECT_STREQ(canary_name(42), "corrupt");
}

TEST(CanaryDeath, CatsCheckAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(CATS_CHECK(1 == 2, "boom %d", 42),
               "CATS_CHECKED failure.*boom 42");
}

TEST(CanaryDeath, DoubleRetireOfCanaryAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        cats::check::Canary canary{cats::check::kCanaryAlive};
        cats::check::canary_mark_retired(canary, "test node");
        cats::check::canary_mark_retired(canary, "test node");
      },
      "double retire of test node");
}

// --- Validators fire on planted corruption. --------------------------------

TEST(TreapValidator, DetectsCorruptedLeafKey) {
  cats::treap::Ref tree;
  for (Key k = 0; k < 300; ++k) {
    tree = cats::treap::insert(tree.get(), k * 10, static_cast<Value>(k));
  }
  cats::treap::testing::corrupt_first_leaf_key(tree.get());
  cats::check::Report report;
  EXPECT_FALSE(cats::treap::validate(tree.get(), &report));
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.text().find("min_key"), std::string::npos)
      << report.text();
  EXPECT_FALSE(cats::treap::check_invariants(tree.get()));
}

TEST(TreapValidator, ReportsCorruptCanaryWithoutAborting) {
  // validate() is the non-fatal path: a smashed canary becomes a report
  // line, not an abort.  The corrupted tree is deliberately leaked — the
  // destructor's decref would (correctly) die on the dead canary.
  cats::treap::Ref tree;
  for (Key k = 0; k < 10; ++k) {
    tree = cats::treap::insert(tree.get(), k, static_cast<Value>(k));
  }
  const cats::treap::Node* raw = tree.release();
  cats::treap::testing::corrupt_canary(raw);
  cats::check::Report report;
  EXPECT_FALSE(cats::treap::validate(raw, &report));
  EXPECT_NE(report.text().find("canary"), std::string::npos) << report.text();
}

TEST(TreapValidatorDeath, IncrefOfCorruptCanaryAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        cats::treap::Ref tree = cats::treap::insert(nullptr, 1, 2);
        cats::treap::testing::corrupt_canary(tree.get());
        cats::treap::Ref copy = tree;  // incref hits the canary check
      },
      "treap node \\(incref\\) touched while its canary is");
}

TEST(PoolPoisonDeath, UseAfterFreeOfPooledNodeHitsPoison) {
  // Pool-owned memory is never returned to the OS: a freed node's storage
  // sits poisoned in a free list instead of being unmapped.  That makes
  // the poison *observable* — a stale pointer dereferenced after the free
  // must die on the canary check with a "freed (poison)" diagnosis rather
  // than segfault or silently read recycled bytes.  (With the pool
  // compiled out the same access is a genuine use-after-free that ASan,
  // not the canary, is responsible for catching.)
  if (!cats::alloc::kPoolEnabled) {
    GTEST_SKIP() << "pool compiled out: storage is unmapped, not poisoned";
  }
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        cats::treap::Ref tree = cats::treap::insert(nullptr, 1, 2);
        const cats::treap::Node* stale = tree.get();
        tree = cats::treap::Ref();  // last ref: poison, then back to pool
        cats::treap::detail::incref(stale);
      },
      "treap node \\(incref\\) touched while its canary is freed "
      "\\(poison\\)");
}

// --- Retired-pointer registry / reclamation checker. -----------------------

std::size_t retirements_from_this_file() {
  std::size_t total = 0;
  for (const cats::check::CensusEntry& entry : cats::check::census()) {
    if (entry.site.find("check_test.cpp") != std::string::npos) {
      total += entry.count;
    }
  }
  return total;
}

TEST(ReclamationChecker, CensusTracksRetireAndReclaim) {
  const std::size_t before = retirements_from_this_file();
  {
    cats::reclaim::Domain domain;
    for (int i = 0; i < 32; ++i) domain.retire(new int(i));
    EXPECT_EQ(retirements_from_this_file(), before + 32);
    domain.drain();
    // drain() frees everything pending; every on_reclaim must have
    // unregistered its pointer.
    EXPECT_EQ(retirements_from_this_file(), before);
  }
  EXPECT_EQ(retirements_from_this_file(), before);
}

TEST(ReclamationChecker, DomainDestructionReclaimsOrphans) {
  const std::size_t before = retirements_from_this_file();
  {
    cats::reclaim::Domain domain;
    for (int i = 0; i < 8; ++i) domain.retire(new int(i));
    EXPECT_EQ(retirements_from_this_file(), before + 8);
  }  // ~Domain frees the still-pending retirements of this thread
  EXPECT_EQ(retirements_from_this_file(), before);
}

TEST(ReclamationChecker, SharedRetireToleratesAliasedReferences) {
  // Refcounted objects (deleter = decref) may be retired once per owner
  // while earlier retirements of the same address are still pending — the
  // registry counts them instead of aborting, and each decref balances one.
  const std::size_t before = retirements_from_this_file();
  {
    cats::reclaim::Domain domain;
    auto* counter = new std::atomic<int>(3);
    auto decref = +[](void* p) {
      auto* c = static_cast<std::atomic<int>*>(p);
      if (c->fetch_sub(1, std::memory_order_acq_rel) == 1) delete c;
    };
    domain.retire_shared(static_cast<void*>(counter), decref);
    domain.retire_shared(static_cast<void*>(counter), decref);
    domain.retire_shared(static_cast<void*>(counter), decref);
    EXPECT_EQ(retirements_from_this_file(), before + 3);
    domain.drain();
    EXPECT_EQ(retirements_from_this_file(), before);
  }
  EXPECT_EQ(retirements_from_this_file(), before);
}

TEST(ReclamationCheckerDeath, SharedRetireAliasingExclusiveAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        cats::reclaim::Domain domain;
        int* p = new int(7);
        auto noop = [](void*) {};
        domain.retire(static_cast<void*>(p), +noop);
        domain.retire_shared(static_cast<void*>(p), +noop);
      },
      "aliases an exclusive retirement");
}

TEST(ReclamationCheckerDeath, DoubleRetireAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        cats::reclaim::Domain domain;
        int* p = new int(7);
        auto noop = [](void*) {};
        domain.retire(static_cast<void*>(p), +noop);
        domain.retire(static_cast<void*>(p), +noop);
      },
      "double retire of");
}

TEST(ReclamationCheckerDeath, ReclaimWithoutRetireAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      cats::check::on_reclaim(reinterpret_cast<void*>(0x12345678)),
      "never retired");
}

#else  // !CATS_CHECKED_ENABLED

TEST(CheckGate, CompiledOut) {
  EXPECT_FALSE(cats::check::kCheckedEnabled);
  // The tree validator is a no-op stub that reports success.
  cats::lfca::LfcaTree tree;
  tree.insert(1, 2);
  std::string diagnostics = "sentinel";
  EXPECT_TRUE(tree.validate(&diagnostics));
  EXPECT_TRUE(diagnostics.empty());
}

#endif  // CATS_CHECKED_ENABLED

}  // namespace
