// Tests for the slab-backed node pool (src/alloc): size-class round trips,
// free-list reuse, the oversize fallback, flush/transfer mechanics and a
// cross-thread producer/consumer stress that exercises the lock-free
// transfer cache (the TSan job's main target in this subsystem).
//
// Every test must pass under both -DCATS_POOL=ON and OFF; assertions about
// pool internals are gated on alloc::kPoolEnabled, while the allocate /
// write / free contract is checked unconditionally.
#include "alloc/pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "common/spin_barrier.hpp"
#include "lfca/lfca_tree.hpp"

namespace cats::alloc {
namespace {

TEST(AllocPool, RoundTripsEverySizeClass) {
  // One block of every pooled class plus the boundary cases around each
  // class edge; each block must be writable over its full requested size.
  std::vector<std::pair<void*, std::size_t>> blocks;
  for (std::size_t c = 0; c < kNumClasses; ++c) {
    const std::size_t cap = (c + 1) * kClassGranularity;
    for (const std::size_t size : {cap - kClassGranularity + 1, cap}) {
      void* p = pool_alloc(size);
      ASSERT_NE(p, nullptr);
      // Pooled node types start with pointer-aligned fields.
      EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % alignof(void*), 0u);
      std::memset(p, static_cast<int>(c + 1), size);
      blocks.emplace_back(p, size);
    }
  }
  for (auto& [p, size] : blocks) {
    const auto* bytes = static_cast<const unsigned char*>(p);
    EXPECT_EQ(bytes[0], bytes[size - 1]);  // pattern survived neighbors
    pool_free(p, size);
  }
}

TEST(AllocPool, FreeListReusesBlocksLifo) {
  if (!kPoolEnabled) GTEST_SKIP() << "pool compiled out";
  const PoolStats before = pool_stats();
  void* first = pool_alloc(128);
  pool_free(first, 128);
  // Single-threaded free-then-alloc of the same class must be served from
  // the thread-local list head — the very block just freed.
  void* second = pool_alloc(128);
  EXPECT_EQ(second, first);
  pool_free(second, 128);
  const PoolStats after = pool_stats();
  EXPECT_GE(after.alloc_fast, before.alloc_fast + 1);
  EXPECT_GE(after.free_fast, before.free_fast + 2);
}

TEST(AllocPool, OversizeFallsBackToHeap) {
  const PoolStats before = pool_stats();
  const std::size_t size = kMaxPooledBytes + 1;
  void* p = pool_alloc(size);
  ASSERT_NE(p, nullptr);
  std::memset(p, 0xab, size);
  pool_free(p, size);
  if (kPoolEnabled) {
    const PoolStats after = pool_stats();
    EXPECT_GE(after.alloc_fallback, before.alloc_fallback + 1);
    EXPECT_GE(after.free_fallback, before.free_fallback + 1);
  }
}

TEST(AllocPool, FlushParksCacheAndRefillsFromTransfer) {
  if (!kPoolEnabled) GTEST_SKIP() << "pool compiled out";
  constexpr std::size_t kSize = 192;
  constexpr int kBlocks = 32;
  std::vector<void*> blocks;
  for (int i = 0; i < kBlocks; ++i) blocks.push_back(pool_alloc(kSize));
  for (void* p : blocks) pool_free(p, kSize);

  const PoolStats before = pool_stats();
  flush_thread_cache();
  const PoolStats flushed = pool_stats();
  // The freed blocks moved out of the thread cache into the transfer (or,
  // if its slots were all occupied, overflow) lists — still cached, not
  // returned to the OS.
  EXPECT_GE(flushed.transfer_push + flushed.overflow_push,
            before.transfer_push + before.overflow_push + 1);
  EXPECT_GE(flushed.cached_blocks, static_cast<std::uint64_t>(kBlocks));

  // The next allocation of that class refills from the parked chains.
  void* p = pool_alloc(kSize);
  const PoolStats refilled = pool_stats();
  EXPECT_GE(refilled.alloc_transfer, flushed.alloc_transfer + 1);
  pool_free(p, kSize);
}

TEST(AllocPool, StatsAreMonotonicAndSane) {
  const PoolStats before = pool_stats();
  for (int i = 0; i < 1000; ++i) {
    void* p = pool_alloc(64 + (i % 4) * 64);
    pool_free(p, 64 + (i % 4) * 64);
  }
  const PoolStats after = pool_stats();
  EXPECT_EQ(after.enabled, kPoolEnabled);
  EXPECT_GE(after.alloc_fast, before.alloc_fast);
  EXPECT_GE(after.alloc_slab, before.alloc_slab);
  EXPECT_GE(after.slab_bytes, before.slab_bytes);
  EXPECT_GE(after.hit_rate(), 0.0);
  EXPECT_LE(after.hit_rate(), 1.0);
  if (kPoolEnabled) {
    // A warmed-up alloc/free loop of 4 classes is nearly all fast-path.
    EXPECT_GE(after.alloc_fast, before.alloc_fast + 900);
  }
}

TEST(AllocPool, TreeWorkloadRunsOnThePool) {
  if (!kPoolEnabled) GTEST_SKIP() << "pool compiled out";
  const PoolStats before = pool_stats();
  {
    lfca::LfcaTree tree;
    for (Key k = 0; k < 2000; ++k) tree.insert(k, 1);
    for (Key k = 0; k < 2000; k += 2) tree.remove(k);
    EXPECT_EQ(tree.size(), 1000u);
  }
  const PoolStats after = pool_stats();
  // Treap path copies dominate this workload; they must be pool-served.
  EXPECT_GE(after.alloc_fast + after.alloc_transfer + after.alloc_slab,
            before.alloc_fast + before.alloc_transfer + before.alloc_slab +
                1000);
}

// Producer/consumer stress across the transfer cache: blocks allocated on
// one thread are freed on another, exactly the flow EBR reclamation
// produces.  Each block carries its size in its first word so a consumer
// can verify it frees with the size it was allocated with; TSan checks the
// push/pop protocol, ASan checks nothing is freed twice or out of bounds.
TEST(AllocPool, CrossThreadTransferStress) {
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 20'000;
  constexpr std::size_t kSizes[] = {24, 64, 72, 192, 512, 2048,
                                    kMaxPooledBytes + 104};

  std::mutex mu;
  std::vector<std::pair<void*, std::size_t>> shared;
  std::atomic<std::uint64_t> allocated{0};
  std::atomic<std::uint64_t> freed{0};
  SpinBarrier barrier(kThreads);

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(t + 99);
      barrier.arrive_and_wait();
      for (int i = 0; i < kOpsPerThread; ++i) {
        if (rng.next_below(2) == 0) {
          const std::size_t size =
              kSizes[rng.next_below(std::size(kSizes))];
          void* p = pool_alloc(size);
          std::memcpy(p, &size, sizeof(size));
          allocated.fetch_add(1, std::memory_order_relaxed);
          std::lock_guard<std::mutex> lk(mu);
          shared.emplace_back(p, size);
        } else {
          std::pair<void*, std::size_t> item{nullptr, 0};
          {
            std::lock_guard<std::mutex> lk(mu);
            if (!shared.empty()) {
              // Take from the front so blocks usually die on a thread
              // other than the one that allocated them.
              item = shared.front();
              shared.erase(shared.begin());
            }
          }
          if (item.first != nullptr) {
            std::size_t stamped = 0;
            std::memcpy(&stamped, item.first, sizeof(stamped));
            ASSERT_EQ(stamped, item.second);
            pool_free(item.first, item.second);
            freed.fetch_add(1, std::memory_order_relaxed);
          }
        }
        if (i % 4096 == 0) flush_thread_cache();
      }
    });
  }
  for (auto& th : threads) th.join();
  for (auto& [p, size] : shared) {
    pool_free(p, size);
    freed.fetch_add(1, std::memory_order_relaxed);
  }
  EXPECT_EQ(allocated.load(), freed.load());
  if (kPoolEnabled) {
    const PoolStats stats = pool_stats();
    EXPECT_GT(stats.alloc_fast, 0u);
    EXPECT_GT(stats.transfer_push + stats.overflow_push, 0u);
  }
}

}  // namespace
}  // namespace cats::alloc
