// Shared helpers for the CATS_SIM=ON test binaries: budget selection,
// explore-and-report wrappers, failure-trace dumps, observed-pair export
// (tools/sim_pairs_diff.py) and a lintest history recorder driven by the
// simulator's logical clock.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <vector>

#include "linearizability.hpp"
#include "sim/sim.hpp"

namespace cats::simtest {

// CATS_SIM_BUDGET=quick (default, CI per-commit) or deep (nightly leg):
// deep raises the schedule caps roughly 10x.
inline bool deep_budget() {
  const char* env = std::getenv("CATS_SIM_BUDGET");
  return env != nullptr && std::strcmp(env, "deep") == 0;
}

inline sim::Options dfs_options(std::uint64_t quick_cap = 2000,
                                int preemption_bound = 1) {
  sim::Options o;
  o.mode = sim::Mode::kDfs;
  o.preemption_bound = preemption_bound;
  o.max_schedules = deep_budget() ? quick_cap * 10 : quick_cap;
  return o;
}

inline sim::Options random_options(std::uint64_t quick_schedules = 200,
                                   std::uint64_t seed = 1) {
  sim::Options o;
  o.mode = sim::Mode::kRandom;
  o.random_schedules =
      deep_budget() ? quick_schedules * 10 : quick_schedules;
  o.max_schedules = o.random_schedules;
  o.seed = seed;
  return o;
}

// Appends a Result's observed pairs to $CATS_SIM_PAIRS_OUT as JSON lines
// (one synchronizes-with site pair per line; see tools/sim_pairs_diff.py).
inline void export_pairs(const sim::Result& r) {
  const char* path = std::getenv("CATS_SIM_PAIRS_OUT");
  if (path == nullptr || r.observed_pairs.empty()) return;
  std::FILE* f = std::fopen(path, "a");
  if (f == nullptr) return;
  for (const auto& p : r.observed_pairs) {
    std::fprintf(f,
                 "{\"store_file\": \"%s\", \"store_line\": %u, "
                 "\"load_file\": \"%s\", \"load_line\": %u, "
                 "\"count\": %llu}\n",
                 p.store_file.c_str(), p.store_line, p.load_file.c_str(),
                 p.load_line,
                 static_cast<unsigned long long>(p.count));
  }
  std::fclose(f);
}

// Runs a scenario, prints the exploration summary (schedule counts are
// part of the test output contract), and on failure dumps a replayable
// trace file next to the test binary.
inline sim::Result run_reported(const char* name, const sim::Options& opts,
                                const std::function<void()>& scenario) {
  sim::Options o = opts;
  o.collect_pairs =
      o.collect_pairs || std::getenv("CATS_SIM_PAIRS_OUT") != nullptr;
  sim::Result r = sim::explore(o, scenario);
  std::printf("[sim] %-32s %s\n", name, r.summary().c_str());
  if (r.failed) {
    std::string path = std::string("sim_trace_") + name + ".txt";
    if (sim::write_trace_file(path, r)) {
      std::printf("[sim] %-32s trace dumped to %s\n", name, path.c_str());
    }
  }
  export_pairs(r);
  return r;
}

// --- linearizability history recording --------------------------------------

// Collects a lintest history from inside a scenario; invoke/response
// timestamps come from the simulator's logical step clock, so real-time
// precedence in the history is exactly scheduler precedence.  Workers
// record through one shared recorder; the mutex is uncontended under the
// cooperative scheduler (only the token holder runs).
class HistoryRecorder {
 public:
  void clear() {
    std::lock_guard<std::mutex> lock(mu_);
    ops_.clear();
  }

  // Returns the invoke timestamp to pass to done().
  std::uint64_t invoke() { return sim::logical_time(); }

  void done(lintest::OpType type, int key, bool returned,
            std::uint64_t invoke_ts) {
    lintest::Operation op;
    op.type = type;
    op.key = key;
    op.returned = returned;
    op.invoke_ns = invoke_ts;
    op.response_ns = sim::logical_time();
    push(op);
  }

  void done_range(int lo, int hi, std::uint16_t mask,
                  std::uint64_t invoke_ts) {
    lintest::Operation op;
    op.type = lintest::OpType::kRange;
    op.lo = lo;
    op.hi = hi;
    op.range_mask = mask;
    op.invoke_ns = invoke_ts;
    op.response_ns = sim::logical_time();
    push(op);
  }

  // Checks the recorded history against set semantics and reports a sim
  // failure (replayable schedule) on violation.
  void verify(std::uint16_t initial_mask) {
    std::vector<lintest::Operation> history;
    {
      std::lock_guard<std::mutex> lock(mu_);
      history = ops_;
    }
    lintest::Checker checker(std::move(history), initial_mask);
    sim::check(checker.check() != lintest::Verdict::kViolation,
               "history is not linearizable");
  }

 private:
  void push(const lintest::Operation& op) {
    std::lock_guard<std::mutex> lock(mu_);
    ops_.push_back(op);
  }

  std::mutex mu_;
  std::vector<lintest::Operation> ops_;
};

}  // namespace cats::simtest
