// Linearizability smoke checks: record real concurrent histories over a
// tiny key universe and verify a legal sequential order exists (see
// linearizability.hpp).  The checker itself is tested first against
// hand-crafted legal and illegal histories.
#include "linearizability.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

#include "calock/ca_tree.hpp"
#include "common/rng.hpp"
#include "common/spin_barrier.hpp"
#include "common/strkey.hpp"
#include "imtr/imtr_set.hpp"
#include "lfca/lfca_tree.hpp"

namespace cats::lintest {
namespace {

Operation op(OpType t, int key, bool ret, std::uint64_t inv,
             std::uint64_t res) {
  Operation o;
  o.type = t;
  o.key = key;
  o.returned = ret;
  o.invoke_ns = inv;
  o.response_ns = res;
  return o;
}

TEST(Checker, AcceptsSequentialLegalHistory) {
  std::vector<Operation> h = {
      op(OpType::kInsert, 1, true, 0, 1),
      op(OpType::kLookup, 1, true, 2, 3),
      op(OpType::kRemove, 1, true, 4, 5),
      op(OpType::kLookup, 1, false, 6, 7),
  };
  EXPECT_EQ(Checker(h).check(), Verdict::kLinearizable);
}

TEST(Checker, RejectsSequentialIllegalHistory) {
  std::vector<Operation> h = {
      op(OpType::kInsert, 1, true, 0, 1),
      op(OpType::kLookup, 1, false, 2, 3),  // must have seen key 1
  };
  EXPECT_EQ(Checker(h).check(), Verdict::kViolation);
}

TEST(Checker, AcceptsConcurrentReordering) {
  // insert(1) overlaps lookup(1)=false: legal (lookup linearizes first).
  std::vector<Operation> h = {
      op(OpType::kInsert, 1, true, 0, 10),
      op(OpType::kLookup, 1, false, 1, 9),
  };
  EXPECT_EQ(Checker(h).check(), Verdict::kLinearizable);
}

TEST(Checker, RejectsStaleReadAfterResponse) {
  // insert(1) completed strictly before the lookup began, so the lookup
  // must see it.
  std::vector<Operation> h = {
      op(OpType::kInsert, 1, true, 0, 1),
      op(OpType::kLookup, 1, false, 5, 6),
  };
  EXPECT_EQ(Checker(h).check(), Verdict::kViolation);
}

TEST(Checker, RangeResultsConstrainOrder) {
  Operation range;
  range.type = OpType::kRange;
  range.lo = 0;
  range.hi = 3;
  range.range_mask = 0b0010;  // saw key 1 only
  range.invoke_ns = 2;
  range.response_ns = 3;
  std::vector<Operation> h = {
      op(OpType::kInsert, 1, true, 0, 1),
      op(OpType::kInsert, 2, true, 0, 1),
      range,
  };
  // Both inserts precede the scan, which saw only key 1: illegal.
  EXPECT_EQ(Checker(h).check(), Verdict::kViolation);
  h[2].range_mask = 0b0110;  // saw keys 1 and 2
  EXPECT_EQ(Checker(h).check(), Verdict::kLinearizable);
}

TEST(Checker, TornRangeSnapshotIsRejected) {
  // A scan overlapping two inserts may see any prefix-consistent subset,
  // but a scan that saw {2} while {1} was inserted strictly earlier is a
  // torn snapshot.
  Operation range;
  range.type = OpType::kRange;
  range.lo = 0;
  range.hi = 3;
  range.range_mask = 0b0100;  // saw key 2 but not key 1
  range.invoke_ns = 10;
  range.response_ns = 11;
  std::vector<Operation> h = {
      op(OpType::kInsert, 1, true, 0, 1),   // completed first
      op(OpType::kInsert, 2, true, 2, 3),
      range,
  };
  EXPECT_EQ(Checker(h).check(), Verdict::kViolation);
}

// --- Recording real histories. ---------------------------------------------

std::uint64_t now_ns(std::chrono::steady_clock::time_point epoch) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch)
          .count());
}

template <class S>
std::vector<Operation> record_history(int threads, int ops_per_thread,
                                      std::uint64_t seed) {
  S structure;
  const auto epoch = std::chrono::steady_clock::now();
  std::mutex collect_mutex;
  std::vector<Operation> history;
  SpinBarrier barrier(threads);
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      Xoshiro256 rng(seed * 131 + t);
      std::vector<Operation> local;
      barrier.arrive_and_wait();
      for (int i = 0; i < ops_per_thread; ++i) {
        Operation o;
        o.key = static_cast<int>(rng.next_below(8));  // universe: keys 0..7
        const auto kind = rng.next_below(8);
        o.invoke_ns = now_ns(epoch);
        if (kind < 3) {
          o.type = OpType::kInsert;
          o.returned = structure.insert(o.key, 1);
        } else if (kind < 5) {
          o.type = OpType::kRemove;
          o.returned = structure.remove(o.key);
        } else if (kind < 7) {
          o.type = OpType::kLookup;
          o.returned = structure.lookup(o.key, nullptr);
        } else {
          o.type = OpType::kRange;
          o.lo = 0;
          o.hi = 7;
          std::uint16_t mask = 0;
          structure.range_query(0, 7, [&mask](Key k, Value) {
            mask |= static_cast<std::uint16_t>(1u << (k & 15));
          });
          o.range_mask = mask;
        }
        o.response_ns = now_ns(epoch);
        local.push_back(o);
      }
      std::lock_guard<std::mutex> lock(collect_mutex);
      history.insert(history.end(), local.begin(), local.end());
    });
  }
  for (auto& w : workers) w.join();
  return history;
}

template <class S>
void check_many_histories(const char* name) {
  int violations = 0;
  int inconclusive = 0;
  for (std::uint64_t seed = 1; seed <= 120; ++seed) {
    auto history = record_history<S>(/*threads=*/3, /*ops_per_thread=*/10,
                                     seed);
    switch (Checker(std::move(history)).check()) {
      case Verdict::kViolation:
        ++violations;
        break;
      case Verdict::kInconclusive:
        ++inconclusive;
        break;
      case Verdict::kLinearizable:
        break;
    }
  }
  EXPECT_EQ(violations, 0) << name;
  // The budget is generous; bounded-width histories should never hit it.
  EXPECT_LE(inconclusive, 2) << name;
}

TEST(Linearizability, LfcaTreeHistories) {
  check_many_histories<lfca::LfcaTree>("lfca");
}

TEST(Linearizability, LfcaTreeAggressiveAdaptationHistories) {
  // Same check but with adaptation thresholds that cause constant
  // splitting/joining even at this tiny scale.
  struct Aggressive : lfca::LfcaTree {
    Aggressive()
        : lfca::LfcaTree(reclaim::Domain::global(), [] {
            lfca::Config c;
            c.high_cont = 0;
            c.low_cont = -10;
            c.low_cont_contrib = 5;
            return c;
          }()) {}
  };
  check_many_histories<Aggressive>("lfca-aggressive");
}

TEST(Linearizability, CaTreeHistories) {
  check_many_histories<calock::CaTree>("ca-lock");
}

TEST(Linearizability, ImtrHistories) {
  check_many_histories<imtr::ImTreeSet>("imtr");
}

// String-key twin: the same histories driven through the StrKey
// instantiations.  The adapter renders the 0..7 universe as "key-N" strings
// (lexicographic order matches numeric order for one digit), so the
// recorder and checker are reused unchanged.
template <class Tree>
class StrUniverseAdapter {
 public:
  bool insert(int key, Value value) { return tree_.insert(encode(key), value); }
  bool remove(int key) { return tree_.remove(encode(key)); }
  bool lookup(int key, Value* value_out) {
    return tree_.lookup(encode(key), value_out);
  }
  template <class F>
  void range_query(int lo, int hi, F&& visit) {
    tree_.range_query(encode(lo), encode(hi), [&](StrKey key, Value value) {
      visit(static_cast<Key>(key.view().back() - '0'), value);
    });
  }

 private:
  static StrKey encode(int key) {
    return StrKey::make("key-" + std::to_string(key));
  }

  Tree tree_;
};

TEST(Linearizability, LfcaStrTreeHistories) {
  check_many_histories<StrUniverseAdapter<lfca::LfcaStrTree>>("lfca-str");
}

TEST(Linearizability, LfcaStrTreeChunkHistories) {
  check_many_histories<StrUniverseAdapter<lfca::LfcaStrTreeChunk>>(
      "lfca-str-chunk");
}

}  // namespace
}  // namespace cats::lintest
