// Unit tests for StrKey (common/strkey.hpp): inline vs interned storage,
// total order including the infinity tags, deduplication through the intern
// pool, and the KeyTraits<StrKey> specialization.
#include "common/strkey.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace cats {
namespace {

TEST(StrKey, InlineStorageUpToCapacity) {
  const std::string at_cap(StrKey::kInlineCapacity, 'x');
  EXPECT_TRUE(StrKey::make("").is_inline());
  EXPECT_TRUE(StrKey::make("hello").is_inline());
  EXPECT_TRUE(StrKey::make(at_cap).is_inline());
  EXPECT_FALSE(StrKey::make(at_cap + "x").is_inline());
}

TEST(StrKey, ViewRoundTrips) {
  EXPECT_EQ(StrKey::make("").view(), "");
  EXPECT_EQ(StrKey::make("short").view(), "short");
  const std::string long_text = "a string well past the inline capacity";
  EXPECT_EQ(StrKey::make(long_text).view(), long_text);
}

TEST(StrKey, OrderingMatchesStringOrder) {
  const std::vector<std::string> sorted = {
      "", "a", "ab", "abc", "b", "ba",
      "long-string-number-one-aaaaaaaaaa", "long-string-number-two-bbbbbbbbbb",
      "z"};
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    for (std::size_t j = 0; j < sorted.size(); ++j) {
      const StrKey a = StrKey::make(sorted[i]);
      const StrKey b = StrKey::make(sorted[j]);
      EXPECT_EQ(a < b, sorted[i] < sorted[j]) << sorted[i] << " vs " << sorted[j];
      EXPECT_EQ(a == b, i == j) << sorted[i] << " vs " << sorted[j];
    }
  }
}

TEST(StrKey, InfinitiesBracketEveryString) {
  const StrKey lo = StrKey::minus_infinity();
  const StrKey hi = StrKey::plus_infinity();
  EXPECT_TRUE(lo < hi);
  EXPECT_FALSE(hi < lo);
  EXPECT_TRUE(lo == StrKey::minus_infinity());
  EXPECT_TRUE(hi == StrKey::plus_infinity());
  for (const char* text : {"", "a", "zzzzzzzzzzzzzzzzzzzzzzzzzzzzzz"}) {
    const StrKey k = StrKey::make(text);
    EXPECT_TRUE(lo < k) << text;
    EXPECT_TRUE(k < hi) << text;
  }
  // The empty string is a real key, distinct from both infinities.
  EXPECT_FALSE(StrKey::make("") == lo);
  EXPECT_FALSE(StrKey::make("") == hi);
}

TEST(StrKey, InternPoolDeduplicates) {
  // Unique to this test so other tests' interning cannot interfere.
  const std::string text = "strkey-dedup-test-unique-long-string";
  const std::size_t before = strkey_interned_count();
  const StrKey a = StrKey::make(text);
  EXPECT_EQ(strkey_interned_count(), before + 1);
  const StrKey b = StrKey::make(text);
  EXPECT_EQ(strkey_interned_count(), before + 1);  // deduplicated
  EXPECT_TRUE(a == b);
  // Dedup means the two keys share storage: the views alias byte-for-byte.
  EXPECT_EQ(a.view().data(), b.view().data());
}

TEST(StrKey, CopiesAreStable) {
  const StrKey original =
      StrKey::make("another-unique-interned-string-for-copies");
  const StrKey copy = original;  // trivial 16-byte copy
  EXPECT_TRUE(copy == original);
  EXPECT_EQ(copy.view(), original.view());
}

TEST(StrKey, Format) {
  EXPECT_EQ(StrKey::make("abc").format(), "abc");
  EXPECT_EQ(StrKey::minus_infinity().format(), "-inf");
  EXPECT_EQ(StrKey::plus_infinity().format(), "+inf");
}

TEST(StrKeyTraits, BoundsAndFormat) {
  EXPECT_TRUE(KeyTraits<StrKey>::min() == StrKey::minus_infinity());
  EXPECT_TRUE(KeyTraits<StrKey>::max() == StrKey::plus_infinity());
  EXPECT_EQ(KeyTraits<StrKey>::format(StrKey::make("k1")), "k1");
}

TEST(StrKeyTraits, HeatCoordIsMonotoneOnPrefixes) {
  // heat_coord packs the first 7 bytes big-endian: it must order the
  // infinities at the extremes and respect prefix order between strings.
  const long long lo = KeyTraits<StrKey>::heat_coord(StrKey::minus_infinity());
  const long long hi = KeyTraits<StrKey>::heat_coord(StrKey::plus_infinity());
  const long long a = KeyTraits<StrKey>::heat_coord(StrKey::make("aaa"));
  const long long b = KeyTraits<StrKey>::heat_coord(StrKey::make("bbb"));
  EXPECT_LT(lo, a);
  EXPECT_LT(a, b);
  EXPECT_LT(b, hi);
}

}  // namespace
}  // namespace cats
