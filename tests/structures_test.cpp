// Cross-structure contract tests: every ordered map in this repository
// (LFCA tree, lock-based CA tree, k-ary tree, Im-Tr-Coarse, skiplist,
// versioned skiplist) implements the same interface and must satisfy the
// same sequential semantics; all but the plain skiplist must additionally
// provide linearizable (snapshot) range queries.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <thread>
#include <vector>

#include "calock/ca_tree.hpp"
#include "common/rng.hpp"
#include "common/spin_barrier.hpp"
#include "imtr/imtr_set.hpp"
#include "kary/kary_tree.hpp"
#include "lfca/lfca_tree.hpp"
#include "skiplist/skiplist.hpp"
#include "vskip/versioned_skiplist.hpp"

namespace cats {
namespace {

// The plain skiplist's range queries are non-linearizable by design (it
// models ConcurrentSkipListMap); its snapshot test is inverted below.
template <class T>
constexpr bool kLinearizableRanges = true;
template <>
constexpr bool kLinearizableRanges<skiplist::SkipList> = false;

template <class T>
class OrderedMapTest : public ::testing::Test {
 public:
  T map;
};

using Implementations =
    ::testing::Types<lfca::LfcaTree, calock::CaTree, kary::KaryTree,
                     imtr::ImTreeSet, skiplist::SkipList,
                     vskip::VersionedSkipList>;
TYPED_TEST_SUITE(OrderedMapTest, Implementations);

TYPED_TEST(OrderedMapTest, EmptyBehaviour) {
  auto& map = this->map;
  EXPECT_FALSE(map.lookup(1));
  EXPECT_FALSE(map.remove(1));
  EXPECT_EQ(map.size(), 0u);
  std::size_t visited = 0;
  map.range_query(-1000, 1000, [&](Key, Value) { ++visited; });
  EXPECT_EQ(visited, 0u);
}

TYPED_TEST(OrderedMapTest, InsertLookupRemoveRoundTrip) {
  auto& map = this->map;
  EXPECT_TRUE(map.insert(42, 7));
  Value v = 0;
  ASSERT_TRUE(map.lookup(42, &v));
  EXPECT_EQ(v, 7u);
  EXPECT_FALSE(map.insert(42, 8));  // overwrite
  ASSERT_TRUE(map.lookup(42, &v));
  EXPECT_EQ(v, 8u);
  EXPECT_TRUE(map.remove(42));
  EXPECT_FALSE(map.lookup(42));
  EXPECT_FALSE(map.remove(42));
}

TYPED_TEST(OrderedMapTest, SequentialRandomOpsMatchModel) {
  auto& map = this->map;
  std::map<Key, Value> model;
  Xoshiro256 rng(2024);
  for (int i = 0; i < 20'000; ++i) {
    const Key k = rng.next_in(1, 3000);
    switch (rng.next_below(4)) {
      case 0:
      case 1: {
        const Value v = rng.next();
        EXPECT_EQ(map.insert(k, v), model.count(k) == 0) << "op " << i;
        model[k] = v;
        break;
      }
      case 2:
        EXPECT_EQ(map.remove(k), model.erase(k) == 1) << "op " << i;
        break;
      default: {
        Value v = 0;
        const bool found = map.lookup(k, &v);
        auto it = model.find(k);
        EXPECT_EQ(found, it != model.end()) << "op " << i;
        if (found && it != model.end()) {
          EXPECT_EQ(v, it->second);
        }
        break;
      }
    }
  }
  EXPECT_EQ(map.size(), model.size());
  // Contents via full-range query.
  std::vector<Item> items;
  map.range_query(kKeyMin + 1, kKeyMax - 1,
                  [&](Key k, Value v) { items.push_back({k, v}); });
  ASSERT_EQ(items.size(), model.size());
  std::size_t i = 0;
  for (const auto& [k, v] : model) {
    EXPECT_EQ(items[i].key, k);
    EXPECT_EQ(items[i].value, v);
    ++i;
  }
}

TYPED_TEST(OrderedMapTest, RangeQueryBoundsInclusive) {
  auto& map = this->map;
  for (Key k = 10; k <= 100; k += 10) map.insert(k, static_cast<Value>(k));
  std::vector<Key> seen;
  map.range_query(20, 80, [&](Key k, Value) { seen.push_back(k); });
  EXPECT_EQ(seen, (std::vector<Key>{20, 30, 40, 50, 60, 70, 80}));
  seen.clear();
  map.range_query(15, 15, [&](Key k, Value) { seen.push_back(k); });
  EXPECT_TRUE(seen.empty());
  seen.clear();
  map.range_query(100, 2000, [&](Key k, Value) { seen.push_back(k); });
  EXPECT_EQ(seen, (std::vector<Key>{100}));
}

TYPED_TEST(OrderedMapTest, ConcurrentDisjointOwnership) {
  auto& map = this->map;
  constexpr int kThreads = 6;
  constexpr int kOps = 20'000;
  SpinBarrier barrier(kThreads);
  std::vector<std::map<Key, Value>> models(kThreads);
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(t * 131 + 7);
      auto& model = models[t];
      barrier.arrive_and_wait();
      for (int i = 0; i < kOps; ++i) {
        const Key k = rng.next_in(0, 3000) * kThreads + t + 1;
        switch (rng.next_below(3)) {
          case 0: {
            const Value v = rng.next();
            if (map.insert(k, v) != (model.count(k) == 0)) failures++;
            model[k] = v;
            break;
          }
          case 1:
            if (map.remove(k) != (model.erase(k) == 1)) failures++;
            break;
          default: {
            Value v = 0;
            const bool found = map.lookup(k, &v);
            auto it = model.find(k);
            if (found != (it != model.end())) {
              failures++;
            } else if (found && v != it->second) {
              failures++;
            }
            break;
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);

  std::map<Key, Value> expected;
  for (auto& m : models) expected.insert(m.begin(), m.end());
  std::vector<Item> items;
  map.range_query(kKeyMin + 1, kKeyMax - 1,
                  [&](Key k, Value v) { items.push_back({k, v}); });
  ASSERT_EQ(items.size(), expected.size());
  std::size_t i = 0;
  for (const auto& [k, v] : expected) {
    ASSERT_EQ(items[i].key, k);
    ASSERT_EQ(items[i].value, v);
    ++i;
  }
}

// Snapshot test: writers perform sum-preserving overwrites inside a window
// while churning keys outside it; linearizable range queries must always
// observe the invariant window sum.
TYPED_TEST(OrderedMapTest, RangeQuerySnapshotInvariant) {
  auto& map = this->map;
  constexpr Key kWindow = 64;
  constexpr Value kUnit = 100;
  for (Key k = 1; k <= kWindow; ++k) map.insert(k, kUnit);
  for (Key k = kWindow + 1; k < kWindow + 3000; ++k) map.insert(k, 1);
  const Value expected_sum = kWindow * kUnit;

  std::atomic<bool> stop{false};
  std::atomic<int> violations{0};
  std::vector<std::thread> writers;
  for (int w = 0; w < 3; ++w) {
    writers.emplace_back([&, w] {
      Xoshiro256 rng(w + 77);
      while (!stop.load()) {
        map.insert(rng.next_in(1, kWindow), kUnit);  // invariant overwrite
        const Key outside = rng.next_in(kWindow + 1, kWindow + 2999);
        if (rng.next_below(2) == 0) {
          map.remove(outside);
        } else {
          map.insert(outside, 1);
        }
      }
    });
  }
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      for (int i = 0; i < 1500; ++i) {
        Value sum = 0;
        std::size_t count = 0;
        map.range_query(1, kWindow, [&](Key, Value v) {
          sum += v;
          ++count;
        });
        if (sum != expected_sum || count != kWindow) violations.fetch_add(1);
      }
    });
  }
  for (auto& th : readers) th.join();
  stop.store(true);
  for (auto& th : writers) th.join();

  if (kLinearizableRanges<TypeParam>) {
    EXPECT_EQ(violations.load(), 0);
  }
  // For the plain skiplist the count stays correct (the window keys are
  // never structurally modified), so no inverted assertion is reliable
  // here; its non-atomicity is demonstrated by SkipListNonAtomicRange
  // below.
}

// --- Structure-specific behaviour. ----------------------------------------

TEST(KarySpecific, GranularityIsFixed) {
  kary::KaryTree tree;
  for (Key k = 0; k < 64 * 16; ++k) tree.insert(k, 1);
  const std::size_t routes = tree.route_node_count();
  EXPECT_GE(routes, 15u);  // 1024 items / 64 per leaf needs >= 16 leaves
  // Removing everything never coarsens the structure (no joins).
  for (Key k = 0; k < 64 * 16; ++k) tree.remove(k);
  EXPECT_EQ(tree.route_node_count(), routes);
  EXPECT_EQ(tree.size(), 0u);
}

TEST(KarySpecific, RangeRetriesAreCounted) {
  kary::KaryTree tree;
  for (Key k = 0; k < 10000; ++k) tree.insert(k, 1);
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    Xoshiro256 rng(3);
    while (!stop.load()) {
      const Key k = rng.next_in(0, 9999);
      tree.insert(k, 2);
      tree.remove(k);
    }
  });
  for (int i = 0; i < 3000; ++i) {
    long long sink = 0;
    tree.range_query(0, 9999, [&](Key k, Value) { sink += k; });
    (void)sink;
  }
  stop.store(true);
  writer.join();
  SUCCEED();  // retry counter may be zero on an unloaded machine
}

TEST(VskipSpecific, VersionCounterAdvancesOnScans) {
  vskip::VersionedSkipList map;
  map.insert(1, 1);
  const auto v0 = map.version();
  long long sink = 0;
  for (int i = 0; i < 100; ++i) {
    map.range_query(0, 10, [&](Key, Value v) { sink += v; });
  }
  (void)sink;
  EXPECT_EQ(map.version(), v0 + 100);  // the global hot spot, by design
}

TEST(VskipSpecific, OldVersionsArePruned) {
  vskip::VersionedSkipList map;
  // Hammer one key; the version chain must not grow unboundedly.
  for (int i = 0; i < 100'000; ++i) {
    map.insert(5, static_cast<Value>(i));
  }
  Value v = 0;
  ASSERT_TRUE(map.lookup(5, &v));
  EXPECT_EQ(v, 99'999u);
  // No direct chain-length accessor; the real check is that the process
  // does not balloon — exercised again by the leak checks in reclaim.
  SUCCEED();
}

TEST(ImtrSpecific, SnapshotIsolation) {
  imtr::ImTreeSet set;
  for (Key k = 0; k < 1000; ++k) set.insert(k, 1);
  // A range query that runs concurrently with updates sees one version:
  // verified by the typed snapshot test; here check persistence cheaply.
  std::size_t count = 0;
  set.range_query(0, 999, [&](Key, Value) { ++count; });
  EXPECT_EQ(count, 1000u);
}

}  // namespace
}  // namespace cats
