// Tests for live topology introspection (BasicLfcaTree::collect_topology +
// obs/topology.hpp): quiescent walks must agree exactly with the tree's own
// counting walks, and concurrent walks must stay safe (EBR keeps every
// visited node alive) and internally consistent while the tree splits and
// joins underneath them.  The concurrent case is the interesting one — run
// it under TSan.
#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "lfca/lfca_tree.hpp"
#include "obs/export.hpp"
#include "obs/json.hpp"
#include "obs/obs.hpp"
#include "obs/topology.hpp"

namespace {

using namespace cats;

// Invariants that hold for ANY snapshot, quiescent or racing: they follow
// from the walk itself, not from the tree holding still.
void check_internal_consistency(const obs::TopologySnapshot& topo) {
  EXPECT_EQ(topo.base_nodes,
            topo.normal_bases + topo.joining_bases + topo.range_bases);
  EXPECT_EQ(topo.depth.count, topo.base_nodes);
  EXPECT_EQ(topo.occupancy.count, topo.base_nodes);
  EXPECT_EQ(topo.stat_abs.count, topo.base_nodes);
  EXPECT_EQ(topo.occupancy.sum, topo.items);
  EXPECT_LE(topo.invalid_routes, topo.route_nodes);
  EXPECT_LE(topo.marked_routes, topo.route_nodes);
  EXPECT_LE(topo.stat_min, topo.stat_max);
  EXPECT_LT(topo.max_depth, 64u);  // a sane route tree is never this deep
}

TEST(Topology, FreshTreeIsOneBaseNode) {
  reclaim::Domain domain;
  {
    lfca::LfcaTree tree(domain);
    const obs::TopologySnapshot topo = tree.collect_topology();
    check_internal_consistency(topo);
    EXPECT_EQ(topo.route_nodes, 0u);
    EXPECT_EQ(topo.base_nodes, 1u);
    EXPECT_EQ(topo.normal_bases, 1u);
    EXPECT_EQ(topo.items, 0u);
    EXPECT_EQ(topo.max_depth, 0u);
    EXPECT_DOUBLE_EQ(topo.mean_occupancy(), 0.0);
  }
  domain.drain();
}

TEST(Topology, QuiescentWalkMatchesTreeCounts) {
  reclaim::Domain domain;
  {
    lfca::LfcaTree tree(domain);
    for (Key k = 1; k <= 1000; ++k) tree.insert(k, k);
    for (Key hint : {128, 384, 640, 896}) {
      ASSERT_TRUE(tree.force_split(hint));
    }

    const obs::TopologySnapshot topo = tree.collect_topology();
    check_internal_consistency(topo);
    EXPECT_EQ(topo.route_nodes, tree.route_node_count());
    EXPECT_EQ(topo.items, tree.size());
    // A quiescent route tree is a full binary tree over the leaves.
    EXPECT_EQ(topo.base_nodes, topo.route_nodes + 1);
    EXPECT_EQ(topo.normal_bases, topo.base_nodes);
    EXPECT_EQ(topo.joining_bases, 0u);
    EXPECT_EQ(topo.range_bases, 0u);
    EXPECT_EQ(topo.invalid_routes, 0u);
    EXPECT_EQ(topo.marked_routes, 0u);
    EXPECT_GE(topo.base_nodes, 5u);  // 4 splits of distinct leaves
    EXPECT_GE(topo.max_depth, 1u);
    EXPECT_NEAR(topo.mean_occupancy(),
                1000.0 / static_cast<double>(topo.base_nodes), 1e-9);

    // Joins shrink the census back down, and the walk tracks it.
    ASSERT_TRUE(tree.force_join(128));
    const obs::TopologySnapshot after = tree.collect_topology();
    check_internal_consistency(after);
    EXPECT_EQ(after.base_nodes, topo.base_nodes - 1);
    EXPECT_EQ(after.route_nodes, topo.route_nodes - 1);
    EXPECT_EQ(after.items, 1000u);
  }
  domain.drain();
}

TEST(Topology, ExportsThroughSnapshotAndJson) {
  reclaim::Domain domain;
  {
    lfca::LfcaTree tree(domain);
    for (Key k = 1; k <= 256; ++k) tree.insert(k, k);
    ASSERT_TRUE(tree.force_split(128));
    const obs::TopologySnapshot topo = tree.collect_topology();

    obs::Snapshot snap;
    topo.append_to(snap, "topo_");
    bool saw_base_nodes = false, saw_mean = false;
    for (const auto& [name, value] : snap.gauges) {
      if (name == "topo_base_nodes") {
        saw_base_nodes = true;
        EXPECT_DOUBLE_EQ(value, static_cast<double>(topo.base_nodes));
      }
      if (name == "topo_mean_occupancy") {
        saw_mean = true;
        EXPECT_DOUBLE_EQ(value, topo.mean_occupancy());
      }
    }
    EXPECT_TRUE(saw_base_nodes);
    EXPECT_TRUE(saw_mean);

    std::ostringstream os;
    obs::write_topology_json(os, topo);
    const obs::json::Value doc = obs::json::parse(os.str());
    EXPECT_EQ(doc.at("base_nodes").as_uint(), topo.base_nodes);
    EXPECT_EQ(doc.at("route_nodes").as_uint(), topo.route_nodes);
    EXPECT_EQ(doc.at("items").as_uint(), 256u);
    EXPECT_EQ(doc.at("occupancy").at("count").as_uint(), topo.base_nodes);
  }
  domain.drain();
}

// --- Contention heatmap. -----------------------------------------------------

TEST(Topology, HotBaseListIsTopKAndSorted) {
  obs::TopologySnapshot topo;
  // 12 bases with heat 0..11; only the nonzero ones may enter the list,
  // the totals must count every one.
  for (std::uint32_t i = 0; i < 12; ++i) {
    obs::BaseHeat base;
    base.depth = i;
    base.key_lo = 100 * i;
    base.cas_fails = i;        // heat == i, so base 0 has zero heat
    base.helps = 0;
    topo.add_base_heat(base);
  }
  ASSERT_EQ(topo.hot_bases.size(), obs::TopologySnapshot::kMaxHotBases);
  for (std::size_t i = 0; i < topo.hot_bases.size(); ++i) {
    if (i > 0) {
      EXPECT_GE(topo.hot_bases[i - 1].heat(), topo.hot_bases[i].heat());
    }
    EXPECT_GT(topo.hot_bases[i].heat(), 0u);
  }
  EXPECT_EQ(topo.hot_bases.front().heat(), 11u);
  // Top-8 of heats 1..11 cuts off at 4.
  EXPECT_EQ(topo.hot_bases.back().heat(), 4u);
  EXPECT_EQ(topo.heat_cas_fails, 66u);  // 0+1+...+11: totals see all bases
  EXPECT_EQ(topo.heat_helps, 0u);
}

TEST(Topology, HeatmapExportsThroughJson) {
  obs::TopologySnapshot topo;
  obs::BaseHeat hot;
  hot.depth = 3;
  hot.key_lo = 512;
  hot.cas_fails = 7;
  hot.helps = 2;
  hot.items = 40;
  hot.stat = -1;
  topo.add_base_heat(hot);

  std::ostringstream os;
  obs::write_topology_json(os, topo);
  const obs::json::Value doc = obs::json::parse(os.str());
  EXPECT_EQ(doc.at("heat_cas_fails").as_uint(), 7u);
  EXPECT_EQ(doc.at("heat_helps").as_uint(), 2u);
  const auto& heatmap = doc.at("heatmap").as_array();
  ASSERT_EQ(heatmap.size(), 1u);
  EXPECT_EQ(heatmap[0].at("depth").as_uint(), 3u);
  EXPECT_EQ(heatmap[0].at("key_lo").as_uint(), 512u);
  EXPECT_EQ(heatmap[0].at("cas_fails").as_uint(), 7u);
  EXPECT_EQ(heatmap[0].at("helps").as_uint(), 2u);
  EXPECT_EQ(heatmap[0].at("items").as_uint(), 40u);

  // And through the Snapshot path: totals as gauges, hot bases as labeled
  // samples.
  obs::Snapshot snap;
  topo.append_to(snap, "topo_");
  bool saw_total = false;
  for (const auto& [name, value] : snap.gauges) {
    if (name == "topo_heat_cas_fails") {
      saw_total = true;
      EXPECT_DOUBLE_EQ(value, 7.0);
    }
  }
  EXPECT_TRUE(saw_total);
  ASSERT_EQ(snap.hot_bases.size(), 1u);
  EXPECT_EQ(snap.hot_bases[0].metric, "topo_hot_base");
  EXPECT_EQ(snap.hot_bases[0].rank, 0u);
  EXPECT_EQ(snap.hot_bases[0].cas_fails, 7u);
}

#if CATS_OBS_ENABLED
// Deterministic heat attribution: force a range query to lose its marker
// CAS (the lfca_test retry idiom), then check that the failure survives
// base replacement — the pending-carry settles on the live base and the
// quiescent walk reports it.
TEST(Topology, RangeCasFailureLandsInHeatmap) {
  lfca::Config config;
  config.optimistic_ranges = false;  // route queries through all_in_range
  reclaim::Domain domain;
  {
    lfca::LfcaTree tree(domain, config);
    for (Key k = 0; k < 100; ++k) tree.insert(k, 1);
    int fires = 0;
    tree.testing_range_step_hook = [&](int phase) {
      // Overwrite a key between the query's descent and its marker CAS.
      if (phase == 0 && fires++ == 0) tree.insert(50, 999);
    };
    std::uint64_t seen = 0;
    tree.range_query(0, 99, [&](Key, Value) { ++seen; });
    tree.testing_range_step_hook = nullptr;
    ASSERT_EQ(seen, 100u);
    ASSERT_GE(fires, 2);  // the CAS failed and the query re-descended

    const obs::TopologySnapshot topo = tree.collect_topology();
    check_internal_consistency(topo);
    EXPECT_GE(topo.heat_cas_fails, 1u);
    ASSERT_FALSE(topo.hot_bases.empty());
    EXPECT_GE(topo.hot_bases.front().cas_fails, 1u);
  }
  domain.drain();
}
#endif  // CATS_OBS_ENABLED

// The stress case: walkers loop collect_topology() while writers insert,
// remove and force adaptations with hair-trigger thresholds.  EBR must keep
// every visited node alive (TSan/ASan validate that) and each snapshot must
// stay internally consistent; the node census may be off by the adaptations
// racing the walk, so the bounds are deliberately loose.
TEST(Topology, ConcurrentWalkersDuringAdaptations) {
  lfca::Config config;
  config.high_cont = 0;  // split on any contention event
  config.low_cont = -100;
  reclaim::Domain domain;
  {
    lfca::LfcaTree tree(domain, config);
    constexpr Key kRange = 1 << 12;
    for (Key k = 1; k < kRange; k += 2) tree.insert(k, k);

    std::atomic<bool> stop{false};
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&, t] {
        Xoshiro256 rng(t + 101);
        while (!stop.load(std::memory_order_relaxed)) {
          const Key k = rng.next_in(1, kRange - 1);
          const std::uint64_t dice = rng.next_below(100);
          if (dice < 40) {
            tree.insert(k, k);
          } else if (dice < 80) {
            tree.remove(k);
          } else if (dice < 90) {
            tree.force_split(k);
          } else {
            tree.force_join(k);
          }
        }
      });
    }

    std::atomic<std::uint64_t> walks{0};
    std::vector<std::thread> walkers;
    for (int t = 0; t < 2; ++t) {
      walkers.emplace_back([&] {
        while (!stop.load(std::memory_order_relaxed)) {
          const obs::TopologySnapshot topo = tree.collect_topology();
          check_internal_consistency(topo);
          EXPECT_GE(topo.base_nodes, 1u);
          // items can overshoot the key range on a racing walk: a join in
          // flight shows the merged container in the join-main node while
          // the neighbor still holds its pre-join copy, so the same items
          // count twice.  Only a garbage-detection bound is sound here.
          EXPECT_LE(topo.items, kRange * 64);
          walks.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }

    std::this_thread::sleep_for(std::chrono::milliseconds(500));
    stop.store(true);
    for (auto& t : threads) t.join();
    for (auto& t : walkers) t.join();
    EXPECT_GT(walks.load(), 0u);

    // Quiescent again: the walk agrees exactly with the counting walks.
    const obs::TopologySnapshot final_topo = tree.collect_topology();
    check_internal_consistency(final_topo);
    EXPECT_EQ(final_topo.route_nodes, tree.route_node_count());
    EXPECT_EQ(final_topo.items, tree.size());
    EXPECT_EQ(final_topo.base_nodes, final_topo.route_nodes + 1);
  }
  domain.drain();
}

}  // namespace
