// Tests for live topology introspection (BasicLfcaTree::collect_topology +
// obs/topology.hpp): quiescent walks must agree exactly with the tree's own
// counting walks, and concurrent walks must stay safe (EBR keeps every
// visited node alive) and internally consistent while the tree splits and
// joins underneath them.  The concurrent case is the interesting one — run
// it under TSan.
#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "lfca/lfca_tree.hpp"
#include "obs/export.hpp"
#include "obs/json.hpp"
#include "obs/topology.hpp"

namespace {

using namespace cats;

// Invariants that hold for ANY snapshot, quiescent or racing: they follow
// from the walk itself, not from the tree holding still.
void check_internal_consistency(const obs::TopologySnapshot& topo) {
  EXPECT_EQ(topo.base_nodes,
            topo.normal_bases + topo.joining_bases + topo.range_bases);
  EXPECT_EQ(topo.depth.count, topo.base_nodes);
  EXPECT_EQ(topo.occupancy.count, topo.base_nodes);
  EXPECT_EQ(topo.stat_abs.count, topo.base_nodes);
  EXPECT_EQ(topo.occupancy.sum, topo.items);
  EXPECT_LE(topo.invalid_routes, topo.route_nodes);
  EXPECT_LE(topo.marked_routes, topo.route_nodes);
  EXPECT_LE(topo.stat_min, topo.stat_max);
  EXPECT_LT(topo.max_depth, 64u);  // a sane route tree is never this deep
}

TEST(Topology, FreshTreeIsOneBaseNode) {
  reclaim::Domain domain;
  {
    lfca::LfcaTree tree(domain);
    const obs::TopologySnapshot topo = tree.collect_topology();
    check_internal_consistency(topo);
    EXPECT_EQ(topo.route_nodes, 0u);
    EXPECT_EQ(topo.base_nodes, 1u);
    EXPECT_EQ(topo.normal_bases, 1u);
    EXPECT_EQ(topo.items, 0u);
    EXPECT_EQ(topo.max_depth, 0u);
    EXPECT_DOUBLE_EQ(topo.mean_occupancy(), 0.0);
  }
  domain.drain();
}

TEST(Topology, QuiescentWalkMatchesTreeCounts) {
  reclaim::Domain domain;
  {
    lfca::LfcaTree tree(domain);
    for (Key k = 1; k <= 1000; ++k) tree.insert(k, k);
    for (Key hint : {128, 384, 640, 896}) {
      ASSERT_TRUE(tree.force_split(hint));
    }

    const obs::TopologySnapshot topo = tree.collect_topology();
    check_internal_consistency(topo);
    EXPECT_EQ(topo.route_nodes, tree.route_node_count());
    EXPECT_EQ(topo.items, tree.size());
    // A quiescent route tree is a full binary tree over the leaves.
    EXPECT_EQ(topo.base_nodes, topo.route_nodes + 1);
    EXPECT_EQ(topo.normal_bases, topo.base_nodes);
    EXPECT_EQ(topo.joining_bases, 0u);
    EXPECT_EQ(topo.range_bases, 0u);
    EXPECT_EQ(topo.invalid_routes, 0u);
    EXPECT_EQ(topo.marked_routes, 0u);
    EXPECT_GE(topo.base_nodes, 5u);  // 4 splits of distinct leaves
    EXPECT_GE(topo.max_depth, 1u);
    EXPECT_NEAR(topo.mean_occupancy(),
                1000.0 / static_cast<double>(topo.base_nodes), 1e-9);

    // Joins shrink the census back down, and the walk tracks it.
    ASSERT_TRUE(tree.force_join(128));
    const obs::TopologySnapshot after = tree.collect_topology();
    check_internal_consistency(after);
    EXPECT_EQ(after.base_nodes, topo.base_nodes - 1);
    EXPECT_EQ(after.route_nodes, topo.route_nodes - 1);
    EXPECT_EQ(after.items, 1000u);
  }
  domain.drain();
}

TEST(Topology, ExportsThroughSnapshotAndJson) {
  reclaim::Domain domain;
  {
    lfca::LfcaTree tree(domain);
    for (Key k = 1; k <= 256; ++k) tree.insert(k, k);
    ASSERT_TRUE(tree.force_split(128));
    const obs::TopologySnapshot topo = tree.collect_topology();

    obs::Snapshot snap;
    topo.append_to(snap, "topo_");
    bool saw_base_nodes = false, saw_mean = false;
    for (const auto& [name, value] : snap.gauges) {
      if (name == "topo_base_nodes") {
        saw_base_nodes = true;
        EXPECT_DOUBLE_EQ(value, static_cast<double>(topo.base_nodes));
      }
      if (name == "topo_mean_occupancy") {
        saw_mean = true;
        EXPECT_DOUBLE_EQ(value, topo.mean_occupancy());
      }
    }
    EXPECT_TRUE(saw_base_nodes);
    EXPECT_TRUE(saw_mean);

    std::ostringstream os;
    obs::write_topology_json(os, topo);
    const obs::json::Value doc = obs::json::parse(os.str());
    EXPECT_EQ(doc.at("base_nodes").as_uint(), topo.base_nodes);
    EXPECT_EQ(doc.at("route_nodes").as_uint(), topo.route_nodes);
    EXPECT_EQ(doc.at("items").as_uint(), 256u);
    EXPECT_EQ(doc.at("occupancy").at("count").as_uint(), topo.base_nodes);
  }
  domain.drain();
}

// The stress case: walkers loop collect_topology() while writers insert,
// remove and force adaptations with hair-trigger thresholds.  EBR must keep
// every visited node alive (TSan/ASan validate that) and each snapshot must
// stay internally consistent; the node census may be off by the adaptations
// racing the walk, so the bounds are deliberately loose.
TEST(Topology, ConcurrentWalkersDuringAdaptations) {
  lfca::Config config;
  config.high_cont = 0;  // split on any contention event
  config.low_cont = -100;
  reclaim::Domain domain;
  {
    lfca::LfcaTree tree(domain, config);
    constexpr Key kRange = 1 << 12;
    for (Key k = 1; k < kRange; k += 2) tree.insert(k, k);

    std::atomic<bool> stop{false};
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&, t] {
        Xoshiro256 rng(t + 101);
        while (!stop.load(std::memory_order_relaxed)) {
          const Key k = rng.next_in(1, kRange - 1);
          const std::uint64_t dice = rng.next_below(100);
          if (dice < 40) {
            tree.insert(k, k);
          } else if (dice < 80) {
            tree.remove(k);
          } else if (dice < 90) {
            tree.force_split(k);
          } else {
            tree.force_join(k);
          }
        }
      });
    }

    std::atomic<std::uint64_t> walks{0};
    std::vector<std::thread> walkers;
    for (int t = 0; t < 2; ++t) {
      walkers.emplace_back([&] {
        while (!stop.load(std::memory_order_relaxed)) {
          const obs::TopologySnapshot topo = tree.collect_topology();
          check_internal_consistency(topo);
          EXPECT_GE(topo.base_nodes, 1u);
          // items can overshoot the key range on a racing walk: a join in
          // flight shows the merged container in the join-main node while
          // the neighbor still holds its pre-join copy, so the same items
          // count twice.  Only a garbage-detection bound is sound here.
          EXPECT_LE(topo.items, kRange * 64);
          walks.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }

    std::this_thread::sleep_for(std::chrono::milliseconds(500));
    stop.store(true);
    for (auto& t : threads) t.join();
    for (auto& t : walkers) t.join();
    EXPECT_GT(walks.load(), 0u);

    // Quiescent again: the walk agrees exactly with the counting walks.
    const obs::TopologySnapshot final_topo = tree.collect_topology();
    check_internal_consistency(final_topo);
    EXPECT_EQ(final_topo.route_nodes, tree.route_node_count());
    EXPECT_EQ(final_topo.items, tree.size());
    EXPECT_EQ(final_topo.base_nodes, final_topo.route_nodes + 1);
  }
  domain.drain();
}

}  // namespace
