// Model-checked scenarios for the LFCA protocols (CATS_SIM=ON builds).
//
// Each scenario is re-executed once per explored schedule, so it builds
// all shared state locally: a per-execution reclamation Domain, a fresh
// tree, fresh cats::sim_thread workers.  Workers detach from the Domain
// before returning so EBR bookkeeping happens inside the managed
// schedule (reclaim/ebr.hpp, detach_current_thread).
//
// Two kinds of test live here:
//   * real-protocol scenarios (split help, range-query helping, join vs
//     readers, EBR advance/retire) that must explore CLEAN to the bound —
//     the race detector, quarantine checker and linearizability oracle
//     all armed;
//   * planted-bug twins (weakened publish order, skipped help step, early
//     guard exit) modelling a protocol with one rule broken — the
//     simulator must FIND the bug and produce a replayable trace.
#include <gtest/gtest.h>

#include <cstddef>
#include <string>

#include "common/catomic.hpp"
#include "lfca/lfca_tree.hpp"
#include "reclaim/ebr.hpp"
#include "sim/sim.hpp"
#include "sim_support.hpp"

namespace cats::lfca {
namespace {

using reclaim::Domain;
using simtest::dfs_options;
using simtest::run_reported;

Config non_optimistic() {
  Config config;
  config.optimistic_ranges = false;  // route queries through all_in_range
  return config;
}

Config eager_split() {
  Config config;
  config.high_cont = 1;  // any detected contention triggers a split
  return config;
}

std::size_t count_range(const LfcaTree& tree, Key lo, Key hi) {
  std::size_t n = 0;
  tree.range_query(lo, hi, [&](Key, Value) { ++n; });
  return n;
}

// --- real protocol scenarios: must explore clean ----------------------------

// Two inserts race with an in-flight split: the loser of the base CAS must
// retry onto the freshly published half and the split's pre-publication
// node construction (lb/rb/parent plain writes, relaxed left/right stores
// before the publishing CAS) must never race with the readers.
TEST(SimScenario, SplitHelpInsertInsert) {
  sim::Result r = run_reported("SplitHelpInsertInsert", dfs_options(800), [] {
    Domain domain;
    {
      LfcaTree tree(domain, eager_split());
      for (Key k = 0; k <= 10; k += 2) tree.insert(k, k * 10);
      cats::sim_thread a([&] {
        tree.force_split(6);
        tree.insert(3, 30);
        domain.detach_current_thread();
      });
      cats::sim_thread b([&] {
        tree.insert(9, 90);
        domain.detach_current_thread();
      });
      a.join();
      b.join();
      sim::check(tree.lookup(3), "insert(3) lost");
      sim::check(tree.lookup(9), "insert(9) lost");
      sim::check(tree.size() == 8, "size after concurrent inserts");
      sim::check(tree.check_integrity(), "route/container invariants");
    }
  });
  EXPECT_FALSE(r.failed) << r.failure_message << "\n" << r.failure_trace;
  EXPECT_GT(r.schedules_explored, 1u);
}

// A non-optimistic range query overlaps an updating thread: the query's
// snapshot must be exact (every key, no duplicates) in every schedule,
// and the recorded history must linearize.  Keys stay below 16 so the
// lintest presence mask covers the whole universe.
TEST(SimScenario, RangeQueryVsUpdateHelp) {
  simtest::HistoryRecorder history;
  sim::Result r =
      run_reported("RangeQueryVsUpdateHelp", dfs_options(800), [&] {
        history.clear();
        Domain domain;
        {
          LfcaTree tree(domain, non_optimistic());
          for (Key k = 0; k < 12; ++k) tree.insert(k, 1);
          tree.force_split(6);
          cats::sim_thread updater([&] {
            const std::uint64_t t0 = history.invoke();
            bool fresh = tree.insert(5, 999);  // overwrite: membership fixed
            history.done(lintest::OpType::kInsert, 5, fresh, t0);
            domain.detach_current_thread();
          });
          const std::uint64_t t0 = history.invoke();
          std::uint16_t mask = 0;
          std::size_t n = 0;
          tree.range_query(0, 11, [&](Key k, Value) {
            mask = static_cast<std::uint16_t>(mask | (1u << k));
            ++n;
          });
          history.done_range(0, 11, mask, t0);
          updater.join();
          sim::check(n == 12, "range query missed or duplicated a key");
          history.verify(/*initial_mask=*/0x0FFF);
        }
      });
  EXPECT_FALSE(r.failed) << r.failure_message << "\n" << r.failure_trace;
  EXPECT_GT(r.schedules_explored, 1u);
}

// A forced join (kJoinMain/kJoinNeighbor protocol, paper §4) runs against
// an insert and a lookup: helpers may complete the join, and the §4
// publication pairing (m->gparent/otherb/neigh1 written plain before
// neigh2's release CAS, read after its acquire) is verified dynamically
// by the race detector at every interleaving.
TEST(SimScenario, JoinVsInsertLookup) {
  sim::Result r = run_reported("JoinVsInsertLookup", dfs_options(800), [] {
    Domain domain;
    {
      LfcaTree tree(domain);
      for (Key k = 0; k < 12; ++k) tree.insert(k, k);
      tree.force_split(6);
      cats::sim_thread joiner([&] {
        tree.force_join(3);
        domain.detach_current_thread();
      });
      cats::sim_thread writer([&] {
        tree.insert(12, 120);
        sim::check(tree.lookup(7), "lookup(7) lost during join");
        domain.detach_current_thread();
      });
      joiner.join();
      writer.join();
      for (Key k = 0; k <= 12; ++k) {
        sim::check(tree.lookup(k), "key lost across join");
      }
      sim::check(tree.check_integrity(), "route/container invariants");
    }
  });
  EXPECT_FALSE(r.failed) << r.failure_message << "\n" << r.failure_trace;
  EXPECT_GT(r.schedules_explored, 1u);
}

// EBR: a reader inside a guard overlaps retire + drain.  The epoch
// machinery must order the eventual free after the reader's last access
// in every schedule (quarantined frees are checked against the reader's
// vector clock).
struct TestObj {
  int v = 0;
  explicit TestObj(int x) : v(x) {}
  static void* operator new(std::size_t n) {
    void* p = ::operator new(n);
    cats::sim_note_alloc(p, n);
    return p;
  }
  static void operator delete(void* p, std::size_t n) {
    if (cats::sim_quarantine_free(
            p, n, [](void* q, std::size_t) { ::operator delete(q); }))
      return;
    ::operator delete(p);
  }
};

TEST(SimScenario, EbrAdvanceRetire) {
  // Bound 2: the interesting window (reader between guard exit and detach
  // while the writer drains) takes two preemptions to reach — mirrored by
  // the fire twin below, which must find its planted bug there.
  sim::Result r =
      run_reported("EbrAdvanceRetire", dfs_options(4000, 2), [] {
    Domain domain;
    cats::atomic<TestObj*> slot{new TestObj(42)};
    cats::sim_thread reader([&] {
      {
        Domain::Guard g(domain);
        TestObj* p = slot.load(std::memory_order_acquire);
        if (p != nullptr) {
          sim::check(cats::sim_plain_read(p->v) == 42, "torn read");
        }
      }
      domain.detach_current_thread();
    });
    TestObj* p = slot.exchange(nullptr, std::memory_order_acq_rel);
    domain.retire(p);
    domain.drain();  // may be blocked by the reader's guard: that is the point
    reader.join();
    domain.drain();
  });
  EXPECT_FALSE(r.failed) << r.failure_message << "\n" << r.failure_trace;
  EXPECT_GT(r.schedules_explored, 1u);
}

// --- planted-bug twins: the simulator must find these -----------------------

// Planted bug: the reader drops its guard and touches the node afterwards.
// In schedules where the writer's drain lands in that window, the
// quarantined free precedes the read with no happens-before edge.
TEST(SimScenario, EbrEarlyGuardExitFires) {
  sim::Result r =
      run_reported("EbrEarlyGuardExitFires", dfs_options(4000, 2), [] {
        Domain domain;
        cats::atomic<TestObj*> slot{new TestObj(42)};
        cats::sim_thread reader([&] {
          TestObj* p = nullptr;
          {
            Domain::Guard g(domain);
            p = slot.load(std::memory_order_acquire);
          }  // planted bug: guard released before the access below
          if (p != nullptr) (void)cats::sim_plain_read(p->v);
          domain.detach_current_thread();
        });
        TestObj* p = slot.exchange(nullptr, std::memory_order_acq_rel);
        domain.retire(p);
        domain.drain();
        reader.join();
        domain.drain();
      });
  ASSERT_TRUE(r.failed) << "planted early-guard-exit bug not found in "
                        << r.schedules_explored << " schedules";
  const bool mentions_free =
      r.failure_message.find("free") != std::string::npos ||
      r.failure_message.find("reclaim") != std::string::npos;
  EXPECT_TRUE(mentions_free) << r.failure_message;
  EXPECT_FALSE(r.failure_schedule.empty());  // replayable
}

// Miniature of the split-publication protocol.  A node's payload is
// plain-written, then the node is published through an atomic slot.  With
// a release store the reader's acquire load orders the payload write
// before the read (clean); the weakened relaxed publish has no such edge
// and the race detector must flag the payload access.
struct PNode {
  int payload = 0;
  static void* operator new(std::size_t n) {
    void* p = ::operator new(n);
    cats::sim_note_alloc(p, n);
    return p;
  }
  static void operator delete(void* p, std::size_t n) {
    if (cats::sim_quarantine_free(
            p, n, [](void* q, std::size_t) { ::operator delete(q); }))
      return;
    ::operator delete(p);
  }
};

void publish_scenario(std::memory_order publish_order) {
  cats::atomic<PNode*> slot{nullptr};
  cats::sim_thread publisher([&] {
    auto* n = new PNode;
    cats::sim_plain_write(n->payload, 7);
    slot.store(n, publish_order);
  });
  PNode* p = slot.load(std::memory_order_acquire);
  if (p != nullptr) {
    sim::check(cats::sim_plain_read(p->payload) == 7,
               "published node read before initialization");
  }
  publisher.join();
  delete slot.load(std::memory_order_relaxed);
}

TEST(SimScenario, WeakenedPublishOrderFires) {
  sim::Result r =
      run_reported("WeakenedPublishOrderFires", dfs_options(400), [] {
        publish_scenario(std::memory_order_relaxed);  // planted bug
      });
  ASSERT_TRUE(r.failed) << "planted relaxed publish not found in "
                        << r.schedules_explored << " schedules";
  EXPECT_NE(r.failure_message.find("data race"), std::string::npos)
      << r.failure_message;
  EXPECT_FALSE(r.failure_schedule.empty());
}

TEST(SimScenario, ReleasePublishOrderPasses) {
  sim::Result r =
      run_reported("ReleasePublishOrderPasses", dfs_options(400), [] {
        publish_scenario(std::memory_order_release);
      });
  EXPECT_FALSE(r.failed) << r.failure_message << "\n" << r.failure_trace;
}

// Miniature of the join-help protocol (help_if_needed/complete_join): a
// descriptor goes through phases prepare(0) -> published(1) ->
// completed(2).  Any thread that observes phase 1 must help it to 2
// before relying on the result.  The twin that skips the help step trips
// the phase assertion in schedules where the owner is preempted between
// publishing and completing.
void help_scenario(bool skip_help_step) {
  cats::atomic<int> phase{0};
  cats::sim_thread owner([&] {
    phase.store(1, std::memory_order_release);
    // The owner may be preempted here: helpers must be able to finish.
    int expected = 1;
    phase.compare_exchange_strong(expected, 2, std::memory_order_acq_rel,
                                  std::memory_order_acquire);
  });
  int seen = phase.load(std::memory_order_acquire);
  if (seen >= 1) {
    if (!skip_help_step) {
      int expected = 1;
      phase.compare_exchange_strong(expected, 2, std::memory_order_acq_rel,
                                    std::memory_order_acquire);
    }
    sim::check(phase.load(std::memory_order_acquire) == 2,
               "used join result before completion");
  }
  owner.join();
}

TEST(SimScenario, SkippedHelpStepFires) {
  sim::Result r =
      run_reported("SkippedHelpStepFires", dfs_options(400), [] {
        help_scenario(/*skip_help_step=*/true);  // planted bug
      });
  ASSERT_TRUE(r.failed) << "planted skipped-help bug not found in "
                        << r.schedules_explored << " schedules";
  EXPECT_NE(r.failure_message.find("completion"), std::string::npos)
      << r.failure_message;
  EXPECT_FALSE(r.failure_schedule.empty());
}

TEST(SimScenario, HelpStepPasses) {
  sim::Result r = run_reported("HelpStepPasses", dfs_options(400), [] {
    help_scenario(/*skip_help_step=*/false);
  });
  EXPECT_FALSE(r.failed) << r.failure_message << "\n" << r.failure_trace;
}

// --- StageGate twins (tests/lfca_test.cpp, LfcaRangeRetry) ------------------
//
// The StageGate tests drive ONE specific interleaving of the range-query
// retry protocol with a condition-variable gate.  These twins hand the
// same two-query situations to the model checker instead: every reachable
// interleaving up to the preemption bound is explored, and the exact-count
// assertion must hold in all of them (lost CAS -> help the wider in-flight
// query; a helper-marked base must count as progress, not a retry loop).

// Twin of LfcaRangeRetry.LostCasThenHelpsWiderInFlightQuery.
TEST(SimScenario, StageGateTwinNarrowWideRangeHelp) {
  sim::Result r =
      run_reported("StageGateTwinNarrowWide", dfs_options(800), [] {
        Domain domain;
        {
          LfcaTree tree(domain, non_optimistic());
          for (Key k = 0; k < 12; ++k) tree.insert(k, 1);
          tree.force_split(6);
          cats::sim_thread wide([&] {
            sim::check(count_range(tree, 0, 11) == 12,
                       "wide query snapshot wrong");
            domain.detach_current_thread();
          });
          sim::check(count_range(tree, 0, 5) == 6,
                     "narrow query snapshot wrong");
          wide.join();
        }
      });
  EXPECT_FALSE(r.failed) << r.failure_message << "\n" << r.failure_trace;
  EXPECT_GT(r.schedules_explored, 1u);
}

// Twin of LfcaRangeRetry.HelperMarkedBaseCountsAsAdvanced: two identical
// full-range queries over three base nodes; whichever falls behind must
// treat the other's markers as progress and both must return the exact
// snapshot.
TEST(SimScenario, StageGateTwinOwnerHelperAdvance) {
  sim::Result r =
      run_reported("StageGateTwinOwnerHelper", dfs_options(800), [] {
        Domain domain;
        {
          LfcaTree tree(domain, non_optimistic());
          for (Key k = 0; k < 12; ++k) tree.insert(k, 1);
          tree.force_split(6);
          tree.force_split(3);  // three base nodes
          cats::sim_thread helper([&] {
            sim::check(count_range(tree, 0, 11) == 12,
                       "helper query snapshot wrong");
            domain.detach_current_thread();
          });
          sim::check(count_range(tree, 0, 11) == 12,
                     "owner query snapshot wrong");
          helper.join();
        }
      });
  EXPECT_FALSE(r.failed) << r.failure_message << "\n" << r.failure_trace;
  EXPECT_GT(r.schedules_explored, 1u);
}

}  // namespace
}  // namespace cats::lfca
