// Self-tests for the deterministic concurrency simulator (src/sim):
// scheduler determinism, DPOR soundness on a litmus set, the vector-clock
// race detector's fire/pass twins, quarantined-free detection, failure
// trace replay round trips, and the step-budget free-run abort.
#include "sim/sim.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/catomic.hpp"
#include "sim_support.hpp"

namespace cats {
namespace {

using sim::Mode;
using sim::Options;
using sim::Result;

// A two-thread message-passing scenario used by the determinism tests.
void mp_scenario() {
  cats::atomic<int> data{0};
  cats::atomic<int> flag{0};
  cats::sim_thread t([&] {
    data.store(1, std::memory_order_relaxed);
    flag.store(1, std::memory_order_release);
  });
  int f = flag.load(std::memory_order_acquire);
  int d = data.load(std::memory_order_relaxed);
  sim::check(!(f == 1 && d == 0), "MP: flag observed without data");
  t.join();
}

TEST(SimDeterminism, DfsSameOptionsSameDigest) {
  Options o;
  o.mode = Mode::kDfs;
  o.preemption_bound = 2;
  Result a = sim::explore(o, mp_scenario);
  Result b = sim::explore(o, mp_scenario);
  EXPECT_FALSE(a.failed) << a.failure_message;
  EXPECT_GT(a.schedules_explored, 1u);
  EXPECT_EQ(a.schedules_explored, b.schedules_explored);
  EXPECT_EQ(a.schedules_pruned, b.schedules_pruned);
  EXPECT_EQ(a.schedule_digest, b.schedule_digest);
}

TEST(SimDeterminism, RandomSameSeedSameDigestDifferentSeedDiffers) {
  Options o;
  o.mode = Mode::kRandom;
  o.random_schedules = 50;
  o.seed = 7;
  Result a = sim::explore(o, mp_scenario);
  Result b = sim::explore(o, mp_scenario);
  EXPECT_EQ(a.schedule_digest, b.schedule_digest);
  EXPECT_EQ(a.schedules_explored, 50u);
  o.seed = 8;
  Result c = sim::explore(o, mp_scenario);
  EXPECT_NE(a.schedule_digest, c.schedule_digest);
}

// --- DPOR soundness: sleep sets must not lose SC outcomes -------------------
//
// The simulator explores interleavings of scheduling points, i.e. the
// sequentially-consistent outcome set.  For each classic litmus shape the
// outcome set with sleep-set pruning ON must equal the brute-force set,
// and both must equal the known SC answer.  (Weak-memory outcomes like
// SB's 0,0 are out of scope by design: those bugs are caught by the
// happens-before race detector, not by reordering simulation.)

using Outcomes = std::set<std::pair<int, int>>;

Result run_litmus(bool sleep_sets, Outcomes& outcomes,
                  const std::function<void(int&, int&)>& body) {
  Options o;
  o.mode = Mode::kDfs;
  o.preemption_bound = 8;  // effectively unbounded for these tiny programs
  o.sleep_sets = sleep_sets;
  outcomes.clear();
  return sim::explore(o, [&] {
    int r1 = -1, r2 = -1;
    body(r1, r2);
    outcomes.insert({r1, r2});
  });
}

TEST(SimLitmus, MessagePassing) {
  auto body = [](int& r1, int& r2) {
    cats::atomic<int> x{0}, y{0};
    cats::sim_thread t([&] {
      x.store(1, std::memory_order_relaxed);
      y.store(1, std::memory_order_release);
    });
    r1 = y.load(std::memory_order_acquire);
    r2 = x.load(std::memory_order_relaxed);
    t.join();
  };
  Outcomes with, without;
  Result a = run_litmus(true, with, body);
  Result b = run_litmus(false, without, body);
  EXPECT_FALSE(a.failed);
  EXPECT_FALSE(b.failed);
  EXPECT_EQ(with, without);
  EXPECT_EQ(with, (Outcomes{{0, 0}, {0, 1}, {1, 1}}));  // no (1, 0) under SC
  EXPECT_LE(a.schedules_explored, b.schedules_explored);
}

TEST(SimLitmus, StoreBuffering) {
  auto body = [](int& r1, int& r2) {
    cats::atomic<int> x{0}, y{0};
    int other = -1;
    cats::sim_thread t([&] {
      x.store(1, std::memory_order_relaxed);
      other = y.load(std::memory_order_relaxed);
    });
    y.store(1, std::memory_order_relaxed);
    r2 = x.load(std::memory_order_relaxed);
    t.join();
    r1 = other;
  };
  Outcomes with, without;
  Result a = run_litmus(true, with, body);
  Result b = run_litmus(false, without, body);
  EXPECT_EQ(with, without);
  // Interleaving (SC) semantics: at least one thread sees the other's
  // store; (0, 0) requires hardware store buffering.
  EXPECT_EQ(with, (Outcomes{{0, 1}, {1, 0}, {1, 1}}));
  EXPECT_GT(a.schedules_pruned, 0u);  // the POR actually pruned something
}

TEST(SimLitmus, LoadBuffering) {
  auto body = [](int& r1, int& r2) {
    cats::atomic<int> x{0}, y{0};
    int other = -1;
    cats::sim_thread t([&] {
      other = x.load(std::memory_order_relaxed);
      y.store(1, std::memory_order_relaxed);
    });
    r2 = y.load(std::memory_order_relaxed);
    x.store(1, std::memory_order_relaxed);
    t.join();
    r1 = other;
  };
  Outcomes with, without;
  run_litmus(true, with, body);
  run_litmus(false, without, body);
  EXPECT_EQ(with, without);
  EXPECT_EQ(with, (Outcomes{{0, 0}, {0, 1}, {1, 0}}));  // no (1, 1) under SC
}

// --- race detector fire/pass twins ------------------------------------------

TEST(SimRace, UnsynchronizedPlainWritesFire) {
  Options o;
  Result r = sim::explore(o, [] {
    int data = 0;
    cats::sim_thread t([&] { cats::sim_plain_write(data, 1); });
    cats::sim_plain_write(data, 2);
    t.join();
  });
  ASSERT_TRUE(r.failed);
  EXPECT_NE(r.failure_message.find("data race"), std::string::npos)
      << r.failure_message;
  EXPECT_FALSE(r.failure_schedule.empty());
  EXPECT_FALSE(r.failure_trace.empty());
}

TEST(SimRace, ReleaseAcquireHandoffPasses) {
  Options o;
  o.preemption_bound = 2;
  o.collect_pairs = true;
  Result r = sim::explore(o, [] {
    int data = 0;
    cats::atomic<int> flag{0};
    cats::sim_thread t([&] {
      cats::sim_plain_write(data, 42);
      flag.store(1, std::memory_order_release);
    });
    if (flag.load(std::memory_order_acquire) == 1) {
      sim::check(cats::sim_plain_read(data) == 42,
                 "handoff lost the write");
    }
    t.join();
  });
  EXPECT_FALSE(r.failed) << r.failure_message << "\n" << r.failure_trace;
  EXPECT_FALSE(r.observed_pairs.empty());  // the release->acquire edge
}

TEST(SimRace, FreeVsPlainReadFires) {
  Options o;
  Result r = sim::explore(o, [] {
    auto* p = static_cast<int*>(::operator new(sizeof(int)));
    *p = 42;  // pre-simulation-tracking init is fine: note_alloc follows
    cats::sim_note_alloc(p, sizeof(int));
    cats::sim_thread t([&] {
      if (!cats::sim_quarantine_free(
              p, sizeof(int),
              [](void* q, std::size_t) { ::operator delete(q); })) {
        ::operator delete(p);
      }
    });
    (void)cats::sim_plain_read(*p);
    t.join();
  });
  ASSERT_TRUE(r.failed);
  const bool mentions_free =
      r.failure_message.find("free") != std::string::npos ||
      r.failure_message.find("reclaim") != std::string::npos;
  EXPECT_TRUE(mentions_free) << r.failure_message;
}

TEST(SimRace, FreeAfterAcquireOfReaderExitPasses) {
  Options o;
  o.preemption_bound = 2;
  Result r = sim::explore(o, [] {
    auto* p = static_cast<int*>(::operator new(sizeof(int)));
    cats::sim_note_alloc(p, sizeof(int));
    cats::sim_plain_write(*p, 7);
    cats::atomic<int> done{0};
    const auto free_it = [](void* q, std::size_t) { ::operator delete(q); };
    cats::sim_thread t([&] {
      (void)cats::sim_plain_read(*p);
      done.store(1, std::memory_order_release);
    });
    bool freed = false;
    if (done.load(std::memory_order_acquire) == 1) {
      // Ordered after the reader's last access by the release/acquire
      // edge: safe to free before joining.
      if (!cats::sim_quarantine_free(p, sizeof(int), free_it))
        free_it(p, 0);
      freed = true;
    }
    t.join();
    if (!freed) {
      if (!cats::sim_quarantine_free(p, sizeof(int), free_it))
        free_it(p, 0);
    }
  });
  EXPECT_FALSE(r.failed) << r.failure_message << "\n" << r.failure_trace;
}

// --- failure trace replay ---------------------------------------------------

TEST(SimReplay, TraceFileRoundTripReproducesFailure) {
  // Fails only in schedules where the worker's store lands before the
  // main thread's load: the replayed choice list must land there again.
  const auto scenario = [] {
    cats::atomic<int> x{0};
    cats::sim_thread t([&] { x.store(1, std::memory_order_relaxed); });
    sim::check(x.load(std::memory_order_relaxed) == 0,
               "planted: observed the store");
    t.join();
  };
  Options o;
  Result r = sim::explore(o, scenario);
  ASSERT_TRUE(r.failed);
  ASSERT_FALSE(r.failure_schedule.empty());

  const std::string path = "sim_replay_roundtrip.txt";
  ASSERT_TRUE(sim::write_trace_file(path, r));
  std::vector<int> choices;
  ASSERT_TRUE(sim::load_schedule_file(path, choices));
  EXPECT_EQ(choices, r.failure_schedule);

  Options ro;
  ro.mode = Mode::kReplay;
  ro.replay = choices;
  Result rr = sim::explore(ro, scenario);
  EXPECT_TRUE(rr.failed);
  EXPECT_EQ(rr.failure_message, r.failure_message);
  EXPECT_EQ(rr.schedules_explored, 1u);
  std::remove(path.c_str());
}

TEST(SimReplay, ParseScheduleLine) {
  EXPECT_EQ(sim::parse_schedule_line("schedule: 0 1 1 0 2"),
            (std::vector<int>{0, 1, 1, 0, 2}));
  EXPECT_EQ(sim::parse_schedule_line("0 1"), (std::vector<int>{0, 1}));
  EXPECT_TRUE(sim::parse_schedule_line("").empty());
}

// --- step budget / free-run abort -------------------------------------------

TEST(SimAbort, StepBudgetAbortsAndFreeRunsToCompletion) {
  std::uint64_t final_count = 0;
  Options o;
  o.mode = Mode::kRandom;
  o.random_schedules = 1;
  o.max_steps = 200;  // far below the scenario's demand
  Result r = sim::explore(o, [&] {
    cats::atomic<std::uint64_t> c{0};
    cats::sim_thread t([&] {
      for (int i = 0; i < 2000; ++i)
        c.fetch_add(1, std::memory_order_relaxed);
    });
    for (int i = 0; i < 2000; ++i)
      c.fetch_add(1, std::memory_order_relaxed);
    t.join();
    final_count = c.load(std::memory_order_relaxed);
  });
  ASSERT_TRUE(r.failed);
  EXPECT_NE(r.failure_message.find("step budget"), std::string::npos)
      << r.failure_message;
  // The abort path releases every thread to free-run: the scenario still
  // completes (no exception through the workers, no lost increments).
  EXPECT_EQ(final_count, 4000u);
}

}  // namespace
}  // namespace cats
