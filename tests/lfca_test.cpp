// Tests for the LFCA tree: sequential semantics, adaptation mechanics
// (splits and joins), range-query snapshot consistency, and concurrent
// stress against a reference model.
#include "lfca/lfca_tree.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "common/spin_barrier.hpp"

namespace cats::lfca {
namespace {

std::vector<Item> range_items(const LfcaTree& tree, Key lo, Key hi) {
  std::vector<Item> out;
  tree.range_query(lo, hi, [&](Key k, Value v) { out.push_back({k, v}); });
  return out;
}

TEST(LfcaBasic, EmptyTree) {
  LfcaTree tree;
  EXPECT_FALSE(tree.lookup(1));
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.route_node_count(), 0u);
  EXPECT_TRUE(range_items(tree, kKeyMin, kKeyMax).empty());
}

TEST(LfcaBasic, InsertLookupRemove) {
  LfcaTree tree;
  EXPECT_TRUE(tree.insert(10, 100));
  EXPECT_FALSE(tree.insert(10, 200));  // overwrite: not newly inserted
  Value v = 0;
  ASSERT_TRUE(tree.lookup(10, &v));
  EXPECT_EQ(v, 200u);
  EXPECT_TRUE(tree.remove(10));
  EXPECT_FALSE(tree.remove(10));
  EXPECT_FALSE(tree.lookup(10));
}

TEST(LfcaBasic, ManySequentialInserts) {
  LfcaTree tree;
  const int n = 10'000;
  // i*7 mod n is a permutation of [0, n) since gcd(7, 10000) == 1, so every
  // insert must report "newly inserted".
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(tree.insert(i * 7 % n, static_cast<Value>(i))) << "i=" << i;
  }
  EXPECT_EQ(tree.size(), static_cast<std::size_t>(n));
}

TEST(LfcaBasic, SizeMatchesInsertions) {
  LfcaTree tree;
  std::set<Key> keys;
  Xoshiro256 rng(42);
  for (int i = 0; i < 5000; ++i) {
    const Key k = rng.next_in(0, 100000);
    keys.insert(k);
    tree.insert(k, 1);
  }
  EXPECT_EQ(tree.size(), keys.size());
}

TEST(LfcaBasic, RangeQueryOrderedAndBounded) {
  LfcaTree tree;
  for (Key k = 0; k < 1000; k += 3) tree.insert(k, static_cast<Value>(k));
  auto items = range_items(tree, 100, 200);
  ASSERT_FALSE(items.empty());
  EXPECT_GE(items.front().key, 100);
  EXPECT_LE(items.back().key, 200);
  EXPECT_TRUE(std::is_sorted(items.begin(), items.end(),
                             [](const Item& a, const Item& b) {
                               return a.key < b.key;
                             }));
  EXPECT_EQ(items.size(), 33u);  // 102, 105, ..., 198
}

TEST(LfcaBasic, RangeQueryFullTree) {
  LfcaTree tree;
  std::map<Key, Value> model;
  Xoshiro256 rng(7);
  for (int i = 0; i < 3000; ++i) {
    const Key k = rng.next_in(-50000, 50000);
    const Value v = rng.next();
    tree.insert(k, v);
    model[k] = v;
  }
  auto items = range_items(tree, kKeyMin, kKeyMax);
  ASSERT_EQ(items.size(), model.size());
  std::size_t i = 0;
  for (const auto& [k, v] : model) {
    EXPECT_EQ(items[i].key, k);
    EXPECT_EQ(items[i].value, v);
    ++i;
  }
}

TEST(LfcaBasic, NegativeAndExtremeKeys) {
  LfcaTree tree;
  EXPECT_TRUE(tree.insert(kKeyMin, 1));
  EXPECT_TRUE(tree.insert(kKeyMax, 2));
  EXPECT_TRUE(tree.insert(0, 3));
  EXPECT_TRUE(tree.insert(-1, 4));
  EXPECT_TRUE(tree.lookup(kKeyMin));
  EXPECT_TRUE(tree.lookup(kKeyMax));
  auto items = range_items(tree, kKeyMin, kKeyMax);
  EXPECT_EQ(items.size(), 4u);
}

// --- Adaptation mechanics. -------------------------------------------------
//
// This machine may have a single hardware thread.  There, CAS conflicts
// between plain updates only arise when a thread is preempted between its
// read and its CAS, which is rare; the deterministic contention source is
// the *writing* range-query path (Fig. 5), which keeps every base node in
// its span irreplaceable for the whole traversal — updates landing in that
// window observe an irreplaceable base and report contention, exactly as
// the paper defines it.  The tests set the split threshold to zero so one
// detected conflict splits (verifying the mechanism, not the threshold
// magnitudes, which the benchmarks exercise) and retry a bounded number of
// contention rounds before asserting.

// One round of mixed updates + (non-optimistic) range queries.
void contended_round(LfcaTree& tree, Key key_range, bool with_ranges) {
  constexpr int kThreads = 8;
  SpinBarrier barrier(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(t + 1);
      barrier.arrive_and_wait();
      for (int i = 0; i < 5'000; ++i) {
        const Key k = rng.next_in(0, key_range - 1);
        if (with_ranges && t % 2 == 0) {
          long long sink = 0;
          tree.range_query(k, k + key_range / 4,
                           [&](Key key, Value) { sink += key; });
          (void)sink;
        } else if (rng.next_below(2) == 0) {
          tree.insert(k, 2);
        } else {
          tree.remove(k);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
}

// Retries contention rounds until the tree has at least `want_routes` route
// nodes (or a generous cap is hit).
void build_structure(LfcaTree& tree, Key key_range, bool with_ranges,
                     std::size_t want_routes) {
  for (int round = 0; round < 40; ++round) {
    if (tree.route_node_count() >= want_routes) return;
    contended_round(tree, key_range, with_ranges);
  }
}

TEST(LfcaAdapt, ContentionCausesSplits) {
  Config config;
  config.high_cont = 0;             // a single detected conflict splits
  config.optimistic_ranges = false; // writing range path => contention
  LfcaTree tree(reclaim::Domain::global(), config);
  for (Key k = 0; k < 4096; ++k) tree.insert(k, 1);

  build_structure(tree, 4096, /*with_ranges=*/true, 1);
  const Stats stats = tree.stats();
  EXPECT_GT(stats.splits, 0u);
  // (The instantaneous route count is racy: range-driven joins may have
  // already coarsened the structure back — the split counter is the
  // reliable signal.)  Contents survived the structural churn:
  EXPECT_EQ(tree.size(), range_items(tree, kKeyMin, kKeyMax).size());
}

TEST(LfcaAdapt, ForceSplitAndJoinAreDeterministic) {
  LfcaTree tree;
  for (Key k = 0; k < 1000; ++k) tree.insert(k, 1);
  EXPECT_EQ(tree.route_node_count(), 0u);
  EXPECT_FALSE(tree.force_join(0));  // the root base node cannot join

  EXPECT_TRUE(tree.force_split(500));
  EXPECT_EQ(tree.route_node_count(), 1u);
  EXPECT_TRUE(tree.force_split(100));
  EXPECT_EQ(tree.route_node_count(), 2u);
  EXPECT_EQ(tree.size(), 1000u);
  EXPECT_TRUE(tree.check_integrity());
  {
    std::string diagnostics;
    EXPECT_TRUE(tree.validate(&diagnostics)) << diagnostics;
  }

  // Joins collapse the structure back to a single base node.
  int guard = 0;
  while (tree.route_node_count() > 0 && guard++ < 100) {
    tree.force_join(0);
  }
  EXPECT_EQ(tree.route_node_count(), 0u);
  EXPECT_EQ(tree.size(), 1000u);
  EXPECT_TRUE(tree.check_integrity());
  {
    std::string diagnostics;
    EXPECT_TRUE(tree.validate(&diagnostics)) << diagnostics;
  }

  // Splitting a too-small base node is refused.
  LfcaTree tiny;
  tiny.insert(1, 1);
  EXPECT_FALSE(tiny.force_split(1));
}

TEST(LfcaAdapt, UncontendedOperationsCauseJoins) {
  Config config;
  config.high_cont = 0;   // easy splits for the setup phase
  config.low_cont = -50;  // joins trigger quickly from one thread
  config.low_cont_contrib = 1;
  config.optimistic_ranges = false;
  LfcaTree tree(reclaim::Domain::global(), config);
  for (Key k = 0; k < 20000; ++k) tree.insert(k, 1);

  // With low_cont this aggressive, uncontended stretches *inside* the
  // contended rounds already join structure back — the instantaneous route
  // count may be 0 at any sample point.  Assert on the counters instead.
  for (int round = 0; round < 40 && tree.stats().splits == 0; ++round) {
    contended_round(tree, 20000, /*with_ranges=*/true);
  }
  ASSERT_GT(tree.stats().splits, 0u) << "need splits to test joins";

  // Single-threaded phase: every update is uncontended, stats drift down by
  // low_cont_contrib, and joins must collapse the structure completely
  // (each split must eventually be undone by exactly one join).
  for (int round = 0; round < 300'000; ++round) {
    tree.insert(round % 20000, 3);
  }
  const Stats stats = tree.stats();
  EXPECT_GT(stats.joins, 0u);
  EXPECT_EQ(stats.splits, stats.joins + tree.route_node_count());
  EXPECT_LT(tree.route_node_count(), 3u);
  EXPECT_EQ(tree.size(), 20000u);
}

TEST(LfcaAdapt, MultiBaseRangeQueriesDriveJoins) {
  Config config;
  config.high_cont = 0;  // easy splits for the setup phase
  config.range_contrib = 100;
  config.low_cont = -1000;
  // optimistic_ranges stays on: phase 2 exercises the §6 fast path, whose
  // in-place statistics nudge is what lets query-only workloads drive
  // joins.  Structure setup is deterministic via the maintenance API.
  LfcaTree tree(reclaim::Domain::global(), config);
  for (Key k = 0; k < 20000; ++k) tree.insert(k, 1);

  Xoshiro256 rng(5);
  for (int i = 0; i < 400 && tree.route_node_count() < 40; ++i) {
    tree.force_split(rng.next_in(0, 19999));
  }
  const std::size_t routes_before = tree.route_node_count();
  ASSERT_GT(routes_before, 4u);

  // Large range queries spanning many base nodes should drive joins.
  long long sink = 0;
  for (int i = 0; i < 20'000; ++i) {
    tree.range_query(0, 19999, [&](Key k, Value) { sink += k; });
  }
  (void)sink;
  const Stats stats = tree.stats();
  EXPECT_GT(stats.joins, 0u);
  EXPECT_LT(tree.route_node_count(), routes_before);
}

// --- Join-after-join liveness. ----------------------------------------------

TEST(LfcaAdapt, JoinAfterJoinCompletesWithoutSpinning) {
  // Back-to-back joins through the same region of the route tree: each join
  // invalidates the parent route node it collapses, and secure_join's
  // parent_of lookup on the next attempt must re-resolve against live nodes
  // only.  A stale-parent bug would surface here as an aborted join (the
  // not_found() path) or, in the worst case, a non-terminating retry; in
  // quiescence every one of these joins must succeed on its first attempt.
  LfcaTree tree;
  for (Key k = 0; k < 4000; ++k) tree.insert(k, 1);
  ASSERT_TRUE(tree.force_split(2000));
  ASSERT_TRUE(tree.force_split(1000));
  ASSERT_TRUE(tree.force_split(3000));
  ASSERT_EQ(tree.route_node_count(), 3u);

  const std::uint64_t aborted_before = tree.stats().aborted_joins;
  EXPECT_TRUE(tree.force_join(0));
  EXPECT_EQ(tree.route_node_count(), 2u);
  // The previous join unlinked the route node that used to parent the
  // leftmost base; this one starts from the joined base and must join
  // across what is now the root route node.
  EXPECT_TRUE(tree.force_join(0));
  EXPECT_EQ(tree.route_node_count(), 1u);
  // And once more from a join_neighbor base left behind by the last join.
  EXPECT_TRUE(tree.force_join(0));
  EXPECT_EQ(tree.route_node_count(), 0u);
  EXPECT_EQ(tree.stats().aborted_joins, aborted_before);
  EXPECT_FALSE(tree.force_join(0));  // single base left: nothing to join

  EXPECT_EQ(tree.size(), 4000u);
  EXPECT_TRUE(tree.check_integrity());
  std::string diagnostics;
  EXPECT_TRUE(tree.validate(&diagnostics)) << diagnostics;
}

// --- Range-query retry protocol (Fig. 5). ------------------------------------
//
// all_in_range has several rarely-taken retry and helping paths that only
// trigger when the tree mutates between a query's descent and its CAS, or
// when two queries overlap mid-flight.  testing_range_step_hook fires at the
// two decision points (phase 0: after a find_first descent; phase 1: after an
// advance step finds its candidate base node), which lets these tests inject
// a conflicting operation at exactly the right instant and drive each retry
// path deterministically — single-threaded where possible, with one parked
// peer thread where the path requires a concurrent in-flight query.

Config non_optimistic() {
  Config config;
  config.optimistic_ranges = false;  // route queries through all_in_range
  return config;
}

TEST(LfcaRangeRetry, FindFirstLostCasRetriesAndReusesStorage) {
  LfcaTree tree(reclaim::Domain::global(), non_optimistic());
  for (Key k = 0; k < 100; ++k) tree.insert(k, 1);
  int fires = 0;
  tree.testing_range_step_hook = [&](int phase) {
    // Overwrite a key after the descent but before the query's marker CAS:
    // the installation must fail and the query re-descends, reusing the
    // ResultStorage it already allocated.
    if (phase == 0 && fires++ == 0) tree.insert(50, 999);
  };
  auto items = range_items(tree, 0, 99);
  tree.testing_range_step_hook = nullptr;
  ASSERT_EQ(items.size(), 100u);
  // The overwrite preceded the query's linearization point, so the snapshot
  // must contain the new value.
  EXPECT_EQ(items[50].key, 50);
  EXPECT_EQ(items[50].value, 999u);
  EXPECT_GE(fires, 2);  // the retry re-ran find_first
  if (obs::kEnabled) {
    EXPECT_GE(tree.stats().range_cas_fails, 1u);
  }
}

TEST(LfcaRangeRetry, AdvanceLostCasRestoresStackAndRetries) {
  LfcaTree tree(reclaim::Domain::global(), non_optimistic());
  for (Key k = 0; k < 200; ++k) tree.insert(k, 1);
  ASSERT_TRUE(tree.force_split(100));  // two base nodes
  int fires = 0;
  tree.testing_range_step_hook = [&](int phase) {
    // Mutate the candidate base between find_next_base_stack and the
    // query's CAS: the marker installation fails, `stack = backup` must
    // restore the half-popped descent stack, and the retried advance must
    // find the replacement base.
    if (phase == 1 && fires++ == 0) tree.insert(150, 999);
  };
  auto items = range_items(tree, 0, 199);
  tree.testing_range_step_hook = nullptr;
  ASSERT_EQ(items.size(), 200u);
  EXPECT_EQ(items[150].key, 150);
  EXPECT_EQ(items[150].value, 999u);  // the insert preceded linearization
  if (obs::kEnabled) {
    EXPECT_GE(tree.stats().range_cas_fails, 1u);
  }
}

TEST(LfcaRangeRetry, NestedQueryHelpsAndOuterSeesResultSet) {
  LfcaTree tree(reclaim::Domain::global(), non_optimistic());
  for (Key k = 0; k < 200; ++k) tree.insert(k, 1);
  ASSERT_TRUE(tree.force_split(100));
  int fires = 0;
  std::size_t nested_count = 0;
  tree.testing_range_step_hook = [&](int phase) {
    if (phase == 1 && fires++ == 0) {
      // A same-range query started while the outer one is mid-traversal:
      // it finds the outer query's unset marker as its first base node,
      // takes the help-wider path, finishes the traversal and publishes
      // the outer query's result.
      tree.range_query(0, 199, [&](Key, Value) { ++nested_count; });
    }
  };
  auto items = range_items(tree, 0, 199);
  tree.testing_range_step_hook = nullptr;
  EXPECT_EQ(nested_count, 200u);
  // The outer query's next advance step saw the result already set and
  // returned early with the same snapshot.
  ASSERT_EQ(items.size(), 200u);
}

// Shared staging for the two-thread retry tests: a monotone stage counter
// advanced under a mutex, with generous timeouts so a sequencing bug fails
// assertions instead of deadlocking the suite.
//
// Each StageGate test pins ONE interleaving of the range-retry protocol.
// The CATS_SIM=ON build additionally model-checks the same two-query
// situations across every schedule up to the preemption bound — see the
// StageGateTwin* scenarios in tests/sim_scenarios_test.cpp.
struct StageGate {
  std::mutex m;
  std::condition_variable cv;
  int stage = 0;

  void advance_to(int s) {
    std::lock_guard<std::mutex> lk(m);
    stage = std::max(stage, s);
    cv.notify_all();
  }
  [[nodiscard]] bool wait_for_stage(int s) {
    std::unique_lock<std::mutex> lk(m);
    return cv.wait_for(lk, std::chrono::seconds(30),
                       [&] { return stage >= s; });
  }
};

TEST(LfcaRangeRetry, LostCasThenHelpsWiderInFlightQuery) {
  LfcaTree tree(reclaim::Domain::global(), non_optimistic());
  for (Key k = 0; k < 200; ++k) tree.insert(k, 1);
  ASSERT_TRUE(tree.force_split(100));

  StageGate gate;
  const std::thread::id main_id = std::this_thread::get_id();
  std::atomic<int> narrow_phase0{0};
  std::atomic<int> wide_phase1{0};
  tree.testing_range_step_hook = [&](int phase) {
    if (std::this_thread::get_id() == main_id) {
      if (phase == 0 && narrow_phase0.fetch_add(1) == 0) {
        // The narrow query descended to the first base node; let the wide
        // query replace that base with its marker before we CAS.
        gate.advance_to(1);
        EXPECT_TRUE(gate.wait_for_stage(2));
      }
    } else {
      if (phase == 1 && wide_phase1.fetch_add(1) == 0) {
        // The wide query installed its first marker and found its next
        // candidate: park it here so the marker stays unset while the
        // narrow query runs into it.
        gate.advance_to(2);
        EXPECT_TRUE(gate.wait_for_stage(3));
      }
    }
  };

  std::size_t wide_count = 0;
  std::thread wide([&] {
    if (!gate.wait_for_stage(1)) return;
    tree.range_query(0, 199, [&](Key, Value) { ++wide_count; });
  });

  // Loses its find_first CAS to the wide query's marker (allocating its
  // ResultStorage in the process), re-descends, finds the wider unset
  // marker covering [0, 150], releases its own storage and helps the wide
  // query to completion instead.
  std::size_t narrow_count = 0;
  tree.range_query(0, 150, [&](Key, Value) { ++narrow_count; });
  gate.advance_to(3);
  wide.join();
  tree.testing_range_step_hook = nullptr;

  EXPECT_EQ(narrow_count, 151u);  // keys 0..150 of the helped snapshot
  EXPECT_EQ(wide_count, 200u);    // the parked query returns the same result
  if (obs::kEnabled) {
    EXPECT_GE(tree.stats().range_cas_fails, 1u);
  }
}

TEST(LfcaRangeRetry, HelperMarkedBaseCountsAsAdvanced) {
  LfcaTree tree(reclaim::Domain::global(), non_optimistic());
  for (Key k = 0; k < 300; ++k) tree.insert(k, 1);
  ASSERT_TRUE(tree.force_split(150));
  ASSERT_TRUE(tree.force_split(75));  // three base nodes

  // The query below replaces the first base, then a concurrent helper of
  // the same query overtakes it and replaces the second.  The query first
  // loses a CAS against its stale candidate (restoring its stack), then
  // re-finds the base as a marker of its own storage — which must count as
  // progress (`advanced`), not as a conflict to retry forever.
  StageGate gate;
  const std::thread::id main_id = std::this_thread::get_id();
  std::atomic<int> owner_phase1{0};
  std::atomic<int> helper_phase1{0};
  tree.testing_range_step_hook = [&](int phase) {
    if (phase != 1) return;
    if (std::this_thread::get_id() == main_id) {
      if (owner_phase1.fetch_add(1) == 0) {
        // Owner found its first advance candidate: let the helper run past
        // this base before the owner tries to replace it.
        gate.advance_to(1);
        EXPECT_TRUE(gate.wait_for_stage(2));
      }
    } else {
      if (helper_phase1.fetch_add(1) == 1) {
        // Helper has replaced the owner's candidate and moved on to the
        // third base: park it so the result stays unset while the owner
        // works through the marked base.
        gate.advance_to(2);
        EXPECT_TRUE(gate.wait_for_stage(3));
      }
    }
  };

  std::size_t helper_count = 0;
  std::thread helper([&] {
    if (!gate.wait_for_stage(1)) return;
    tree.range_query(0, 299, [&](Key, Value) { ++helper_count; });
  });

  std::size_t owner_count = 0;
  tree.range_query(0, 299, [&](Key, Value) { ++owner_count; });
  gate.advance_to(3);
  helper.join();
  tree.testing_range_step_hook = nullptr;

  EXPECT_EQ(owner_count, 300u);
  EXPECT_EQ(helper_count, 300u);
  if (obs::kEnabled) {
    EXPECT_GE(tree.stats().range_cas_fails, 1u);
  }
}

// --- Concurrent stress. ------------------------------------------------------

// Per-key-slice ownership: thread t exclusively owns keys with k % T == t,
// so a sequential model per thread stays exact even under concurrency.
TEST(LfcaStress, DisjointKeyOwnership) {
  LfcaTree tree;
  constexpr int kThreads = 8;
  constexpr int kOps = 40'000;
  SpinBarrier barrier(kThreads);
  std::vector<std::thread> threads;
  std::vector<std::map<Key, Value>> models(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(t * 977 + 1);
      auto& model = models[t];
      barrier.arrive_and_wait();
      for (int i = 0; i < kOps; ++i) {
        const Key k = rng.next_in(0, 5000) * kThreads + t;
        switch (rng.next_below(3)) {
          case 0: {
            const Value v = rng.next();
            const bool fresh = tree.insert(k, v);
            ASSERT_EQ(fresh, model.count(k) == 0);
            model[k] = v;
            break;
          }
          case 1: {
            const bool removed = tree.remove(k);
            ASSERT_EQ(removed, model.erase(k) == 1);
            break;
          }
          default: {
            Value v = 0;
            const bool found = tree.lookup(k, &v);
            auto it = model.find(k);
            ASSERT_EQ(found, it != model.end());
            if (found) {
              ASSERT_EQ(v, it->second);
            }
            break;
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  // Final content must equal the union of the models.
  std::map<Key, Value> expected;
  for (auto& m : models) expected.insert(m.begin(), m.end());
  auto items = range_items(tree, kKeyMin, kKeyMax);
  ASSERT_EQ(items.size(), expected.size());
  std::size_t i = 0;
  for (const auto& [k, v] : expected) {
    ASSERT_EQ(items[i].key, k);
    ASSERT_EQ(items[i].value, v);
    ++i;
  }
}

// Snapshot consistency: a writer maintains the invariant that the sum of a
// fixed window is constant (it atomically moves value between two keys via
// insert overwrites).  Every linearizable range query must observe the
// invariant sum.
TEST(LfcaStress, RangeQuerySnapshotConsistency) {
  LfcaTree tree;
  constexpr Key kWindow = 128;
  constexpr Value kUnit = 1000;
  for (Key k = 0; k < kWindow; ++k) tree.insert(k, kUnit);
  const Value kTotal = kWindow * kUnit;
  // Surround the window so range queries span several base nodes.
  for (Key k = -20000; k < 0; ++k) tree.insert(k, 1);
  for (Key k = kWindow; k < 20000; ++k) tree.insert(k, 1);

  std::atomic<bool> stop{false};
  std::atomic<int> violations{0};

  std::vector<std::thread> writers;
  for (int w = 0; w < 4; ++w) {
    writers.emplace_back([&, w] {
      Xoshiro256 rng(w + 5);
      while (!stop.load()) {
        // Move `delta` from key a to key b with two overwrites.  The sum is
        // invariant only if a range query sees both or neither — which a
        // linearizable snapshot cannot guarantee mid-pair...  so instead
        // keep each *single* write sum-preserving: rotate values among keys
        // in a cycle using a single overwrite that keeps the total fixed.
        const Key a = rng.next_in(0, kWindow - 1);
        tree.insert(a, kUnit);  // idempotent overwrite, total unchanged
        // Also churn the surroundings to force structural changes.
        const Key outside = rng.next_in(kWindow, 19999);
        if (rng.next_below(2) == 0) {
          tree.remove(outside);
        } else {
          tree.insert(outside, 1);
        }
      }
    });
  }

  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&] {
      for (int i = 0; i < 3000; ++i) {
        Value sum = 0;
        std::size_t count = 0;
        Key last = kKeyMin;
        bool ordered = true;
        tree.range_query(0, kWindow - 1, [&](Key k, Value v) {
          sum += v;
          ++count;
          if (k <= last && count > 1) ordered = false;
          last = k;
        });
        if (sum != kTotal || count != kWindow || !ordered) {
          violations.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : readers) th.join();
  stop.store(true);
  for (auto& th : writers) th.join();
  EXPECT_EQ(violations.load(), 0);
}

// Structural churn: concurrent updates and range queries with aggressive
// adaptation thresholds, then verify the final contents exactly.
TEST(LfcaStress, AdaptationChurnPreservesContents) {
  Config config;
  config.high_cont = 0;
  config.low_cont = -500;
  config.cont_contrib = 300;
  config.range_contrib = 200;
  config.optimistic_ranges = false;  // writing ranges => reliable conflicts
  LfcaTree tree(reclaim::Domain::global(), config);
  // Guarantee structural churn even on a single-core host: build an initial
  // route structure first (bounded retry), so the mixed phase below runs
  // against real splits and joins.
  for (Key k = 0; k < 16000; ++k) tree.insert(k, 1);
  build_structure(tree, 16000, /*with_ranges=*/true, 1);
  ASSERT_GT(tree.stats().splits, 0u);
  // Reset contents exactly: remove the setup keys.
  for (Key k = 0; k < 16000; ++k) tree.remove(k);
  ASSERT_EQ(tree.size(), 0u);

  constexpr int kThreads = 8;
  constexpr int kOps = 25'000;
  SpinBarrier barrier(kThreads);
  std::vector<std::map<Key, Value>> models(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(t * 31 + 7);
      auto& model = models[t];
      barrier.arrive_and_wait();
      for (int i = 0; i < kOps; ++i) {
        const Key k = rng.next_in(0, 2000) * kThreads + t;
        const auto dice = rng.next_below(10);
        if (dice < 4) {
          const Value v = rng.next();
          tree.insert(k, v);
          model[k] = v;
        } else if (dice < 7) {
          tree.remove(k);
          model.erase(k);
        } else if (dice < 9) {
          tree.lookup(k);
        } else {
          Key last = kKeyMin;
          bool ordered = true;
          std::size_t n = 0;
          const Key lo = rng.next_in(0, 15000);
          tree.range_query(lo, lo + 500, [&](Key key, Value) {
            if (n > 0 && key <= last) ordered = false;
            last = key;
            ++n;
          });
          ASSERT_TRUE(ordered);
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  const Stats stats = tree.stats();
  EXPECT_GT(stats.splits + stats.joins, 0u)
      << "thresholds should cause adaptations";

  std::map<Key, Value> expected;
  for (auto& m : models) expected.insert(m.begin(), m.end());
  auto items = range_items(tree, kKeyMin, kKeyMax);
  ASSERT_EQ(items.size(), expected.size());
  std::size_t i = 0;
  for (const auto& [k, v] : expected) {
    ASSERT_EQ(items[i].key, k) << "at index " << i;
    ASSERT_EQ(items[i].value, v);
    ++i;
  }
  EXPECT_EQ(tree.size(), expected.size());
}

// The non-optimistic (writing) range query path must also be exercised.
TEST(LfcaStress, WritingRangePathConsistency) {
  Config config;
  config.optimistic_ranges = false;  // force the Fig. 5 algorithm
  LfcaTree tree(reclaim::Domain::global(), config);
  for (Key k = 0; k < 10000; ++k) tree.insert(k, 2);

  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < 3; ++w) {
    writers.emplace_back([&, w] {
      Xoshiro256 rng(w + 11);
      while (!stop.load()) {
        const Key k = rng.next_in(0, 9999);
        if (rng.next_below(2) == 0) {
          tree.insert(k, 2);
        } else {
          tree.remove(k);
        }
      }
    });
  }
  std::vector<std::thread> readers;
  std::atomic<int> violations{0};
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&, r] {
      Xoshiro256 rng(r + 21);
      for (int i = 0; i < 2000; ++i) {
        const Key lo = rng.next_in(0, 9000);
        Key last = kKeyMin;
        std::size_t n = 0;
        bool ok = true;
        tree.range_query(lo, lo + 800, [&](Key k, Value v) {
          if (k < lo || k > lo + 800 || v != 2) ok = false;
          if (n > 0 && k <= last) ok = false;
          last = k;
          ++n;
        });
        if (!ok) violations.fetch_add(1);
      }
    });
  }
  for (auto& th : readers) th.join();
  stop.store(true);
  for (auto& th : writers) th.join();
  EXPECT_EQ(violations.load(), 0);
  const Stats stats = tree.stats();
  EXPECT_GT(stats.range_queries, 0u);
  EXPECT_EQ(stats.optimistic_ranges, 0u);
}

TEST(LfcaStress, LookupsDuringChurn) {
  LfcaTree tree;
  // Keys 0..999 are permanently present with value 7; churn happens on
  // other keys.  Lookups of permanent keys must always succeed.
  for (Key k = 0; k < 1000; ++k) tree.insert(k, 7);
  std::atomic<bool> stop{false};
  std::atomic<int> misses{0};

  std::vector<std::thread> writers;
  for (int w = 0; w < 4; ++w) {
    writers.emplace_back([&, w] {
      Xoshiro256 rng(w + 3);
      while (!stop.load()) {
        const Key k = 1000 + rng.next_in(0, 5000);
        if (rng.next_below(2) == 0) {
          tree.insert(k, 9);
        } else {
          tree.remove(k);
        }
      }
    });
  }
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&, r] {
      Xoshiro256 rng(r + 13);
      for (int i = 0; i < 50'000; ++i) {
        Value v = 0;
        if (!tree.lookup(rng.next_in(0, 999), &v) || v != 7) {
          misses.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : readers) th.join();
  stop.store(true);
  for (auto& th : writers) th.join();
  EXPECT_EQ(misses.load(), 0);
}

}  // namespace
}  // namespace cats::lfca
