// Additional reclamation tests: multi-domain usage, epoch monotonicity,
// orphan adoption on thread exit, hazard-pointer holder discipline, and
// cross-checking both schemes against the same workload.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "reclaim/ebr.hpp"
#include "reclaim/hazard.hpp"

namespace cats::reclaim {
namespace {

struct Counted {
  static std::atomic<int> live;
  Counted() { live.fetch_add(1); }
  ~Counted() { live.fetch_sub(1); }
};
std::atomic<int> Counted::live{0};

TEST(EbrExtra, TwoDomainsAreIndependent) {
  Domain a;
  Domain b;
  const int before = Counted::live.load();
  {
    Domain::Guard guard_a(a);  // blocks A's reclamation only
    b.retire(new Counted());
    for (int i = 0; i < 5; ++i) b.drain();
    EXPECT_EQ(Counted::live.load(), before);  // B drained despite A's guard
    a.retire(new Counted());
    for (int i = 0; i < 5; ++i) {
      // Draining A under our own guard is futile by design: our guard
      // pins the epoch (drain() documents the no-guard precondition, so we
      // only check nothing is freed prematurely).
      EXPECT_EQ(Counted::live.load(), before + 1);
      Domain::Guard inner(a);
    }
  }
  a.drain();
  EXPECT_EQ(Counted::live.load(), before);
}

TEST(EbrExtra, EpochIsMonotonic) {
  Domain domain;
  std::uint64_t last = domain.epoch();
  for (int i = 0; i < 1000; ++i) {
    domain.retire(new Counted());
    const std::uint64_t now = domain.epoch();
    EXPECT_GE(now, last);
    last = now;
  }
  domain.drain();
}

TEST(EbrExtra, OrphansAdoptedAfterThreadExit) {
  Domain domain;
  const int before = Counted::live.load();
  std::thread worker([&] {
    for (int i = 0; i < 500; ++i) domain.retire(new Counted());
    // Exit without draining: retirements become orphans.
  });
  worker.join();
  EXPECT_GT(Counted::live.load(), before);  // not yet freed
  domain.drain();
  EXPECT_EQ(Counted::live.load(), before);
  EXPECT_EQ(domain.pending(), 0u);
}

TEST(EbrExtra, ManyShortLivedThreads) {
  // Slot recycling: more thread lifetimes than kMaxThreads must work as
  // long as concurrent registration stays below the limit.
  Domain domain;
  const int before = Counted::live.load();
  for (int batch = 0; batch < 20; ++batch) {
    std::vector<std::thread> threads;
    for (int t = 0; t < 16; ++t) {
      threads.emplace_back([&] {
        for (int i = 0; i < 50; ++i) {
          Domain::Guard guard(domain);
          domain.retire(new Counted());
        }
      });
    }
    for (auto& th : threads) th.join();
  }
  domain.drain();
  EXPECT_EQ(Counted::live.load(), before);
}

TEST(EbrExtra, PendingCountTracksRetirements) {
  Domain domain;
  const std::size_t base = domain.pending();
  for (int i = 0; i < 10; ++i) domain.retire(new Counted());
  EXPECT_EQ(domain.pending(), base + 10);
  domain.drain();
  EXPECT_EQ(domain.pending(), 0u);
}

TEST(HazardExtra, MultipleHoldersPerThread) {
  HazardDomain domain;
  cats::atomic<Counted*> p1{new Counted()};
  cats::atomic<Counted*> p2{new Counted()};
  const int before = Counted::live.load() - 2;
  {
    auto h1 = domain.make_holder();
    auto h2 = domain.make_holder();
    Counted* a = h1.protect(p1);
    Counted* b = h2.protect(p2);
    domain.retire(p1.exchange(nullptr));
    domain.retire(p2.exchange(nullptr));
    domain.scan_all();
    EXPECT_EQ(Counted::live.load(), before + 2);  // both protected
    (void)a;
    (void)b;
  }
  domain.scan_all();
  EXPECT_EQ(Counted::live.load(), before);
}

TEST(HazardExtra, ProtectFollowsMovingPointer) {
  HazardDomain domain;
  cats::atomic<Counted*> shared{new Counted()};
  std::atomic<bool> stop{false};
  std::thread swapper([&] {
    Xoshiro256 rng(1);
    while (!stop.load()) {
      Counted* fresh = new Counted();
      domain.retire(shared.exchange(fresh));
    }
  });
  for (int i = 0; i < 20'000; ++i) {
    auto holder = domain.make_holder();
    Counted* p = holder.protect(shared);
    // p is protected: dereferencing must be safe right now.
    volatile auto* x = p;
    (void)x;
  }
  stop.store(true);
  swapper.join();
  domain.retire(shared.exchange(nullptr));
  domain.scan_all();
  EXPECT_EQ(domain.pending(), 0u);
}

}  // namespace
}  // namespace cats::reclaim
