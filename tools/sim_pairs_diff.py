#!/usr/bin/env python3
"""sim_pairs_diff: cross-check catslint's static release/acquire matrix
against the release/acquire pairs the simulator actually observed.

Inputs:
  --atomics  JSON from `catslint.py --dump-atomics` (every static atomic
             site with its resolved memory orders).
  --pairs    JSON-lines file written by the sim tests when
             CATS_SIM_PAIRS_OUT is set: one object per observed
             synchronizes-with edge, {"store_file", "store_line",
             "load_file", "load_line", "count"}.

The report is ADVISORY: the sim scenarios drive a handful of schedules
over small trees, so a statically-declared release store that never
showed up in a pair usually means "not covered by a scenario", not a
bug.  The interesting directions are:

  * observed pair whose store site is not a static release-side write —
    either the static matrix is stale or an engine missed a site;
  * observed pair whose store site catslint thinks is relaxed — a real
    disagreement worth a look;
  * static release-side writes never observed pairing — a coverage list
    for future scenarios.

Exit code is always 0 unless --strict is given, in which case the two
disagreement classes (not coverage gaps) fail the run.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import defaultdict

RELEASE_SIDE = {"release", "acq_rel", "seq_cst"}
ACQUIRE_SIDE = {"acquire", "acq_rel", "consume", "seq_cst"}


def _norm(path: str) -> str:
    """Join key: repo-relative when possible, else the path's tail.

    The sim records __FILE__/source_location paths (absolute or
    build-relative); catslint records repo-relative ones.  The last two
    components disambiguate every source file in this repo.
    """
    parts = path.replace("\\", "/").split("/")
    return "/".join(parts[-2:])


def load_pairs(path: str, scope):
    pairs = defaultdict(int)
    with open(path, encoding="utf-8") as fh:
        for raw in fh:
            raw = raw.strip()
            if not raw:
                continue
            obj = json.loads(raw)
            store = obj["store_file"].replace("\\", "/")
            if scope and not any(s in store for s in scope):
                continue
            key = (_norm(store), int(obj["store_line"]),
                   _norm(obj["load_file"]), int(obj["load_line"]))
            pairs[key] += int(obj.get("count", 1))
    return pairs


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(prog="sim_pairs_diff",
                                 description=__doc__)
    ap.add_argument("--atomics", required=True,
                    help="catslint --dump-atomics output")
    ap.add_argument("--pairs", required=True,
                    help="JSONL of observed pairs (CATS_SIM_PAIRS_OUT)")
    ap.add_argument("--strict", action="store_true",
                    help="exit 1 on matrix/observation disagreements")
    ap.add_argument("--scope", action="append", default=[],
                    help="only report observed stores whose path contains "
                         "this substring (repeatable; e.g. --scope src/). "
                         "Pairs from test scaffolding are outside the "
                         "static dump and would otherwise all show up as "
                         "'unknown site'.")
    args = ap.parse_args(argv)

    with open(args.atomics, encoding="utf-8") as fh:
        atomics = json.load(fh)["atomics"]
    pairs = load_pairs(args.pairs, args.scope)

    by_site = {}
    for op in atomics:
        by_site[(_norm(op["file"]), op["line"])] = op

    release_sites = {
        (_norm(op["file"]), op["line"]): op for op in atomics
        if op.get("write_order") in RELEASE_SIDE}

    observed_stores = {(sf, sl) for sf, sl, _, _ in pairs}

    unknown_stores = []     # observed, no static op at that site
    weaker_stores = []      # observed, static op is weaker than release
    uncovered = []          # static release write never observed pairing

    for (sf, sl, lf, ll), n in sorted(pairs.items()):
        op = by_site.get((sf, sl))
        if op is None:
            unknown_stores.append((sf, sl, lf, ll, n))
        elif op.get("write_order") not in RELEASE_SIDE:
            weaker_stores.append((sf, sl, lf, ll, n,
                                  op.get("write_order")))

    for site, op in sorted(release_sites.items()):
        if site not in observed_stores:
            uncovered.append((site[0], site[1], op["field"], op["op"]))

    print(f"sim_pairs_diff: {len(pairs)} observed pair(s), "
          f"{len(release_sites)} static release-side write(s)")
    if unknown_stores:
        print("\n# observed pairs with no static atomic site "
              "(stale dump or missed site):")
        for sf, sl, lf, ll, n in unknown_stores:
            print(f"  {sf}:{sl} -> {lf}:{ll}  x{n}")
    if weaker_stores:
        print("\n# observed pairs whose store site is statically weaker "
              "than release (disagreement):")
        for sf, sl, lf, ll, n, wo in weaker_stores:
            print(f"  {sf}:{sl} [{wo}] -> {lf}:{ll}  x{n}")
    if uncovered:
        print("\n# static release-side writes never observed pairing "
              "(scenario coverage gaps, advisory):")
        for sf, sl, field, op in uncovered:
            print(f"  {sf}:{sl}  {op}() on `{field}`")
    if not (unknown_stores or weaker_stores or uncovered):
        print("matrix and observations agree; full coverage")

    if args.strict and (unknown_stores or weaker_stores):
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
