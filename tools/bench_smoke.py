#!/usr/bin/env python3
"""Benchmark smoke gate: compare a bench_micro run against the committed
baseline and fail on large throughput regressions.

The committed baseline is BENCH_micro.json at the repo root, which holds a
"benchmarks" map of {benchmark name: ns/op} alongside the "metrics" snapshot
of the observability demo.  CI runs:

    ./build/bench/bench_micro --demo-duration=0 \
        --benchmark_format=json --benchmark_out=results.json \
        --benchmark_repetitions=5 --benchmark_report_aggregates_only=true
    python3 tools/bench_smoke.py --baseline BENCH_micro.json \
        --results results.json

A benchmark regresses when its measured ns/op exceeds baseline * tolerance
(default 1.20, i.e. >20% slower).  Medians are compared when repetitions
were requested, which keeps one descheduled iteration on a noisy shared
runner from failing the build; the tolerance absorbs the rest.  Benchmarks
present on only one side are reported but never fail the gate, so adding or
retiring a benchmark doesn't need a lockstep baseline update.

--update rewrites the baseline's "benchmarks" map from the results file
(leaving "metrics" untouched) for recording a new accepted baseline.
"""

import argparse
import json
import sys


def load_results(path):
    """Extracts {name: ns/op} from google-benchmark JSON output.

    Prefers median aggregates when present; falls back to plain iteration
    rows.  Times are normalised to nanoseconds.
    """
    with open(path) as f:
        data = json.load(f)
    scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}
    medians = {}
    iterations = {}
    for row in data.get("benchmarks", []):
        ns = row["real_time"] * scale[row.get("time_unit", "ns")]
        if row.get("run_type") == "aggregate":
            if row.get("aggregate_name") == "median":
                medians[row["run_name"]] = ns
        else:
            iterations[row["name"]] = ns
    return medians or iterations


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", default="BENCH_micro.json")
    parser.add_argument("--results", required=True,
                        help="google-benchmark JSON output file")
    parser.add_argument("--tolerance", type=float, default=1.20,
                        help="fail when ns/op > baseline * tolerance")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline's benchmarks map from "
                             "the results instead of gating")
    args = parser.parse_args()

    results = load_results(args.results)
    if not results:
        print("bench_smoke: no benchmark rows in", args.results)
        return 1

    with open(args.baseline) as f:
        baseline = json.load(f)

    if args.update:
        baseline["benchmarks"] = {
            name: round(ns, 1) for name, ns in sorted(results.items())
        }
        with open(args.baseline, "w") as f:
            json.dump(baseline, f, indent=1)
            f.write("\n")
        print(f"bench_smoke: baseline updated with {len(results)} "
              f"benchmarks -> {args.baseline}")
        return 0

    reference = baseline.get("benchmarks", {})
    if not reference:
        print(f"bench_smoke: {args.baseline} has no 'benchmarks' map; "
              f"record one with --update")
        return 1

    regressions = []
    print(f"{'benchmark':<40} {'base ns':>12} {'now ns':>12} {'ratio':>7}")
    for name, base_ns in sorted(reference.items()):
        if name not in results:
            print(f"{name:<40} {base_ns:>12.1f} {'(absent)':>12}")
            continue
        now_ns = results[name]
        ratio = now_ns / base_ns
        flag = "  REGRESSION" if ratio > args.tolerance else ""
        print(f"{name:<40} {base_ns:>12.1f} {now_ns:>12.1f} "
              f"{ratio:>7.2f}{flag}")
        if ratio > args.tolerance:
            regressions.append((name, base_ns, now_ns))
    for name in sorted(set(results) - set(reference)):
        print(f"{name:<40} {'(new)':>12} {results[name]:>12.1f}")

    if regressions:
        print(f"\nbench_smoke: {len(regressions)} benchmark(s) regressed "
              f"more than {(args.tolerance - 1) * 100:.0f}% vs "
              f"{args.baseline}")
        return 1
    print(f"\nbench_smoke: OK ({len(reference)} baselined benchmarks, "
          f"tolerance {(args.tolerance - 1) * 100:.0f}%)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
