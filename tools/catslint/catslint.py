#!/usr/bin/env python3
"""cats-lint: repo-specific static analysis for the LFCA tree's
concurrency contracts.

Rules (see DESIGN.md, "Static analysis"):
  R1 explicit-memory-order   every atomic op names its memory order
  R2 guard-required          shared-pointer loads happen under EBR/hazard
  R3 retire-not-delete       node types go through Domain::retire
  R4 no-blocking-in-lockfree lock-free paths never block

Engines:
  clang  precise, built on the libclang Python bindings and
         compile_commands.json (CI installs python3-clang)
  token  dependency-free lexical engine, authoritative for the gating
         run so results match on machines without libclang
  auto   clang when importable, token otherwise

Usage:
  catslint.py [--src PATH ...] [--engine auto|token|clang]
              [--compdb build/compile_commands.json]
              [--baseline tools/catslint/baseline.json]
              [--disable R2,R4] [--update-baseline] [--json OUT]
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import baseline as baseline_mod  # noqa: E402
import rules as rules_mod  # noqa: E402
import token_engine  # noqa: E402

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(os.path.dirname(HERE))
SOURCE_EXTS = (".hpp", ".cpp", ".cc", ".h", ".hh", ".cxx")


def discover_sources(paths):
    out = []
    for p in paths:
        p = os.path.abspath(p)
        if os.path.isfile(p):
            out.append(p)
            continue
        for root, dirs, files in os.walk(p):
            dirs[:] = [d for d in dirs if not d.startswith(".")]
            for name in sorted(files):
                if name.endswith(SOURCE_EXTS):
                    out.append(os.path.join(root, name))
    return sorted(set(out))


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(prog="catslint", description=__doc__)
    ap.add_argument("--src", action="append", default=[],
                    help="file or directory to analyze (repeatable); "
                         "default: <repo>/src")
    ap.add_argument("--engine", choices=("auto", "token", "clang"),
                    default="auto")
    ap.add_argument("--compdb",
                    default=os.path.join(REPO, "build",
                                         "compile_commands.json"),
                    help="compile_commands.json for the clang engine")
    ap.add_argument("--config", default=os.path.join(HERE, "config.json"))
    ap.add_argument("--baseline",
                    default=os.path.join(HERE, "baseline.json"))
    ap.add_argument("--no-baseline", action="store_true",
                    help="ignore the baseline file (report everything)")
    ap.add_argument("--disable", default="",
                    help="comma-separated rules to disable, e.g. R2,R4")
    ap.add_argument("--update-baseline", action="store_true",
                    help="rewrite the baseline from current findings")
    ap.add_argument("--json", default="",
                    help="write a JSON report to this path")
    ap.add_argument("--verbose", "-v", action="store_true")
    args = ap.parse_args(argv)

    with open(args.config, encoding="utf-8") as f:
        cfg = json.load(f)

    disabled = {r.strip().upper() for r in args.disable.split(",")
                if r.strip()}
    enabled = {r for r in rules_mod.ALL_RULES if r not in disabled}

    src_paths = args.src or [os.path.join(REPO, "src")]
    wanted = discover_sources(src_paths)
    wanted_rel = {os.path.relpath(p, REPO) for p in wanted}

    engine = args.engine
    if engine == "auto":
        import clang_engine
        engine = "clang" if clang_engine.available() else "token"

    models = []
    if engine == "clang":
        import clang_engine
        if not clang_engine.available():
            print("catslint: clang engine requested but clang.cindex is "
                  "not importable", file=sys.stderr)
            return 2
        if not os.path.exists(args.compdb):
            print(f"catslint: compile_commands.json not found at "
                  f"{args.compdb} (configure with "
                  f"-DCMAKE_EXPORT_COMPILE_COMMANDS=ON)", file=sys.stderr)
            return 2
        by_rel = clang_engine.analyze_compdb(args.compdb, REPO, cfg)
        models = [m for rel, m in sorted(by_rel.items())
                  if rel in wanted_rel]
        # Files never reached through a TU (self-contained fixtures,
        # orphan headers) are parsed standalone; if even that fails they
        # fall back to the token engine so nothing escapes analysis.
        covered = {m.rel for m in models}
        for p in wanted:
            rel = os.path.relpath(p, REPO)
            if rel in covered:
                continue
            try:
                for m in clang_engine.analyze_file(p, REPO, cfg).values():
                    models.append(m)
                    covered.add(m.rel)
            except Exception:
                pass
            if rel not in covered:
                models.append(token_engine.analyze_file(p, rel, cfg))
    else:
        for p in wanted:
            rel = os.path.relpath(p, REPO)
            models.append(token_engine.analyze_file(p, rel, cfg))

    findings = []
    for m in models:
        findings.extend(rules_mod.run_rules(m, cfg, enabled))
    findings.sort(key=lambda f: (f.file, f.line, f.rule))

    if args.update_baseline:
        baseline_mod.save(args.baseline, findings)
        print(f"catslint: wrote {len(findings)} finding(s) to "
              f"{os.path.relpath(args.baseline, REPO)}")
        return 0

    base = {} if args.no_baseline else baseline_mod.load(args.baseline)
    new, old = baseline_mod.split(findings, base)

    for f in new:
        print(f.render())
    if args.verbose and old:
        for f in old:
            print(f"(baselined) {f.render()}")

    if args.json:
        report = {
            "engine": engine,
            "files_analyzed": len(models),
            "rules": sorted(enabled),
            "new": [vars(f) for f in new],
            "baselined": [vars(f) for f in old],
        }
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")

    summary = (f"catslint[{engine}]: {len(models)} file(s), "
               f"{len(new)} new finding(s), {len(old)} baselined")
    print(summary, file=sys.stderr)
    return 1 if new else 0


if __name__ == "__main__":
    sys.exit(main())
