#!/usr/bin/env python3
"""cats-lint: repo-specific static analysis for the LFCA tree's
concurrency contracts.

Rules (see DESIGN.md, "Static analysis"):
  R0 dangling-annotation     every catslint annotation still earns its keep
  R1 explicit-memory-order   every atomic op names its memory order
  R2 guard-required          shared-pointer loads happen under EBR/hazard
  R3 retire-not-delete       node types go through Domain::retire
  R4 no-blocking-in-lockfree lock-free paths never block
  R5 release-acquire-pairing per-field order matrix: release writes have
                             acquire readers, no relaxed pointer publish
  R6 immutable-after-publish no plain field writes on published nodes
  R7 guard-lifetime          loaded pointers die with their guard; CAS
                             expected values come from the current guard

Engines:
  clang  precise, built on the libclang Python bindings and
         compile_commands.json (CI installs python3-clang)
  token  dependency-free lexical engine, authoritative for the gating
         run so results match on machines without libclang
  auto   clang when importable, token otherwise

Usage:
  catslint.py [--src PATH ...] [--engine auto|token|clang] [--jobs N]
              [--compdb build/compile_commands.json]
              [--baseline tools/catslint/baseline.json]
              [--disable R2,R4] [--update-baseline] [--json OUT]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import baseline as baseline_mod  # noqa: E402
import rules as rules_mod  # noqa: E402
import token_engine  # noqa: E402

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(os.path.dirname(HERE))
SOURCE_EXTS = (".hpp", ".cpp", ".cc", ".h", ".hh", ".cxx")


def discover_sources(paths):
    out = []
    for p in paths:
        p = os.path.abspath(p)
        if os.path.isfile(p):
            out.append(p)
            continue
        for root, dirs, files in os.walk(p):
            dirs[:] = [d for d in dirs if not d.startswith(".")]
            for name in sorted(files):
                if name.endswith(SOURCE_EXTS):
                    out.append(os.path.join(root, name))
    return sorted(set(out))


def _analyze_one(job):
    """Module-level worker so multiprocessing can pickle it."""
    path, rel, cfg = job
    return token_engine.analyze_file(path, rel, cfg)


def build_token_models(wanted, cfg, jobs):
    """FileModels for `wanted`, in input (sorted-path) order regardless
    of how many workers built them."""
    work = [(p, os.path.relpath(p, REPO), cfg) for p in wanted]
    if jobs == 0:
        jobs = os.cpu_count() or 1
    if jobs <= 1 or len(work) <= 1:
        return [_analyze_one(j) for j in work]
    import multiprocessing
    with multiprocessing.Pool(min(jobs, len(work))) as pool:
        # pool.map preserves input order, so output ordering (and hence
        # finding order and fingerprints) is identical to the serial run.
        return pool.map(_analyze_one, work, chunksize=4)


def compdb_staleness(compdb_path, wanted):
    """Error string when compile_commands.json predates the newest
    analyzed source, None when it is fresh."""
    try:
        db_mtime = os.path.getmtime(compdb_path)
    except OSError:
        return None  # absence is reported separately
    newest_path, newest_mtime = None, db_mtime
    for p in wanted:
        try:
            mt = os.path.getmtime(p)
        except OSError:
            continue
        if mt > newest_mtime:
            newest_path, newest_mtime = p, mt
    if newest_path is None:
        return None
    return (f"compile_commands.json is older than "
            f"{os.path.relpath(newest_path, REPO)} "
            f"({time.strftime('%Y-%m-%d %H:%M:%S', time.localtime(db_mtime))}"
            f" < {time.strftime('%Y-%m-%d %H:%M:%S', time.localtime(newest_mtime))}); "
            f"the clang engine would analyze a stale build — re-run "
            f"`cmake -B build -S .` first")


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(prog="catslint", description=__doc__)
    ap.add_argument("--src", action="append", default=[],
                    help="file or directory to analyze (repeatable); "
                         "default: <repo>/src")
    ap.add_argument("--engine", choices=("auto", "token", "clang"),
                    default="auto")
    ap.add_argument("--compdb",
                    default=os.path.join(REPO, "build",
                                         "compile_commands.json"),
                    help="compile_commands.json for the clang engine")
    ap.add_argument("--config", default=os.path.join(HERE, "config.json"))
    ap.add_argument("--baseline",
                    default=os.path.join(HERE, "baseline.json"))
    ap.add_argument("--no-baseline", action="store_true",
                    help="ignore the baseline file (report everything)")
    ap.add_argument("--disable", default="",
                    help="comma-separated rules to disable, e.g. R2,R4")
    ap.add_argument("--update-baseline", action="store_true",
                    help="rewrite the baseline from current findings")
    ap.add_argument("--json", default="",
                    help="write a JSON report to this path")
    ap.add_argument("--dump-atomics", default="",
                    help="write every analyzed atomic op (file, line, op, "
                         "field, orders) as JSON to this path; input for "
                         "tools/sim_pairs_diff.py")
    ap.add_argument("--jobs", "-j", type=int, default=1,
                    help="worker processes for the token engine "
                         "(0 = one per CPU; output order is stable)")
    ap.add_argument("--check-compdb", action="store_true",
                    help="only verify compile_commands.json exists and is "
                         "newer than every analyzed source, then exit "
                         "(0 fresh / 2 missing or stale)")
    ap.add_argument("--verbose", "-v", action="store_true")
    args = ap.parse_args(argv)
    t0 = time.monotonic()

    with open(args.config, encoding="utf-8") as f:
        cfg = json.load(f)

    disabled = {r.strip().upper() for r in args.disable.split(",")
                if r.strip()}
    enabled = {r for r in rules_mod.ALL_RULES if r not in disabled}

    src_paths = args.src or [os.path.join(REPO, "src")]
    wanted = discover_sources(src_paths)
    wanted_rel = {os.path.relpath(p, REPO) for p in wanted}

    if args.check_compdb:
        if not os.path.exists(args.compdb):
            print(f"catslint: compile_commands.json not found at "
                  f"{args.compdb} (configure with "
                  f"-DCMAKE_EXPORT_COMPILE_COMMANDS=ON)", file=sys.stderr)
            return 2
        stale = compdb_staleness(args.compdb, wanted)
        if stale:
            print(f"catslint: {stale}", file=sys.stderr)
            return 2
        print(f"catslint: {os.path.relpath(args.compdb, REPO)} is fresh")
        return 0

    engine = args.engine
    if engine == "auto":
        import clang_engine
        engine = "clang" if clang_engine.available() else "token"

    models = []
    if engine == "clang":
        import clang_engine
        if not clang_engine.available():
            print("catslint: clang engine requested but clang.cindex is "
                  "not importable", file=sys.stderr)
            return 2
        if not os.path.exists(args.compdb):
            print(f"catslint: compile_commands.json not found at "
                  f"{args.compdb} (configure with "
                  f"-DCMAKE_EXPORT_COMPILE_COMMANDS=ON)", file=sys.stderr)
            return 2
        stale = compdb_staleness(args.compdb, wanted)
        if stale:
            print(f"catslint: {stale}", file=sys.stderr)
            return 2
        by_rel = clang_engine.analyze_compdb(args.compdb, REPO, cfg)
        models = [m for rel, m in sorted(by_rel.items())
                  if rel in wanted_rel]
        # Files never reached through a TU (self-contained fixtures,
        # orphan headers) are parsed standalone; if even that fails they
        # fall back to the token engine so nothing escapes analysis.
        covered = {m.rel for m in models}
        for p in wanted:
            rel = os.path.relpath(p, REPO)
            if rel in covered:
                continue
            try:
                for m in clang_engine.analyze_file(p, REPO, cfg).values():
                    models.append(m)
                    covered.add(m.rel)
            except Exception:
                pass
            if rel not in covered:
                models.append(token_engine.analyze_file(p, rel, cfg))
    else:
        models = build_token_models(wanted, cfg, args.jobs)

    if args.dump_atomics:
        dump = [{"file": op.file, "line": op.line, "op": op.op,
                 "field": op.field, "orders": list(op.orders),
                 "write_order": op.write_order(),
                 "read_order": op.read_order(),
                 "stores_pointer": op.stores_pointer,
                 "receiver_unpublished": op.receiver_unpublished}
                for m in models for op in m.atomic_ops]
        with open(args.dump_atomics, "w", encoding="utf-8") as fh:
            json.dump({"engine": engine, "atomics": dump}, fh, indent=2)
            fh.write("\n")

    findings = rules_mod.run_all(models, cfg, enabled)

    if args.update_baseline:
        baseline_mod.save(args.baseline, findings)
        print(f"catslint: wrote {len(findings)} finding(s) to "
              f"{os.path.relpath(args.baseline, REPO)}")
        return 0

    base = {} if args.no_baseline else baseline_mod.load(args.baseline)
    new, old = baseline_mod.split(findings, base)

    for f in new:
        print(f.render())
    if args.verbose and old:
        for f in old:
            print(f"(baselined) {f.render()}")

    if args.json:
        report = {
            "engine": engine,
            "files_analyzed": len(models),
            "rules": sorted(enabled),
            "new": [vars(f) for f in new],
            "baselined": [vars(f) for f in old],
        }
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")

    elapsed = time.monotonic() - t0
    summary = (f"catslint[{engine}]: {len(models)} file(s), "
               f"{len(new)} new finding(s), {len(old)} baselined "
               f"({elapsed:.2f}s"
               + (f", {args.jobs or os.cpu_count()} jobs)"
                  if engine == "token" and args.jobs != 1 else ")"))
    print(summary, file=sys.stderr)
    return 1 if new else 0


if __name__ == "__main__":
    sys.exit(main())
