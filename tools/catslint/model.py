"""Shared analysis model for cats-lint.

Both frontends (the libclang engine and the fallback token engine) lower a
translation unit / source file into this engine-independent fact set; the
rules in rules.py only ever see these types, so a rule behaves identically
no matter which frontend produced the facts.
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Dict, List, Optional, Set, Tuple

# Atomic member functions R1 cares about.  wait/notify_one/notify_all are
# excluded: they have no memory-order argument worth auditing here.
ATOMIC_OPS = {
    "load",
    "store",
    "exchange",
    "compare_exchange_weak",
    "compare_exchange_strong",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
}

# Annotation directive names and whether they require a (reason).
DIRECTIVES = {
    "seq_cst": True,        # R1: deliberate seq_cst, reason required
    "under-guard": False,   # R2: callers guarantee an EBR guard / hazard slot
    "quiescent": True,      # R2: single-threaded context (ctor/teardown/test)
    "direct-delete": True,  # R3: delete outside the reclamation domain
    "blocking-ok": True,    # R4: deliberate blocking call, reason required
    "off": False,           # generic per-line rule suppression: off(R1,R3)
}


@dataclasses.dataclass
class Annotation:
    directive: str
    reason: str  # empty when the directive takes no reason
    rules: Tuple[str, ...]  # for "off": which rules are suppressed
    line: int  # effective code line the annotation applies to
    raw_line: int  # line the comment physically sits on


@dataclasses.dataclass
class AtomicOp:
    file: str
    line: int
    op: str  # one of ATOMIC_OPS
    receiver: str  # source text of the object expression, best effort
    has_explicit_order: bool
    explicit_seq_cst: bool
    enclosing: Optional[str]  # enclosing function name, best effort


@dataclasses.dataclass
class DeleteOp:
    file: str
    line: int
    target_type: Optional[str]  # resolved pointee type name, best effort
    target_expr: str
    is_delete_this: bool
    enclosing: Optional[str]
    enclosing_class: Optional[str]
    in_operator_delete: bool  # inside a (poisoning) operator delete


@dataclasses.dataclass
class FuncInfo:
    name: str  # qualified, best effort (e.g. BasicLfcaTree::do_update)
    base_name: str  # last component, used for per-TU call-graph matching
    file: str
    def_line: int
    end_line: int
    creates_guard: bool = False
    # Lines holding loads of shared atomic pointers (R2 trigger sites).
    shared_load_lines: List[int] = dataclasses.field(default_factory=list)
    calls: List[Tuple[str, int]] = dataclasses.field(default_factory=list)
    # (token, line) pairs of blocking primitives seen in the body (R4).
    blocking: List[Tuple[str, int]] = dataclasses.field(default_factory=list)


@dataclasses.dataclass
class FileModel:
    path: str  # path as analyzed (absolute or repo-relative)
    rel: str  # repo-relative path used in reports and fingerprints
    atomic_ops: List[AtomicOp] = dataclasses.field(default_factory=list)
    delete_ops: List[DeleteOp] = dataclasses.field(default_factory=list)
    funcs: List[FuncInfo] = dataclasses.field(default_factory=list)
    # effective code line -> annotations applying to that line
    annotations: Dict[int, List[Annotation]] = dataclasses.field(
        default_factory=dict)
    # line number -> raw source text (for fingerprints)
    lines: Dict[int, str] = dataclasses.field(default_factory=dict)

    def annotations_for_line(self, line: int) -> List[Annotation]:
        return self.annotations.get(line, [])

    def annotations_for_func(self, f: FuncInfo) -> List[Annotation]:
        out: List[Annotation] = []
        for line, anns in self.annotations.items():
            if f.def_line <= line <= f.end_line:
                out.extend(anns)
        return out


@dataclasses.dataclass
class Finding:
    rule: str  # R1..R4
    file: str  # repo-relative
    line: int
    message: str
    fingerprint: str = ""

    def render(self) -> str:
        return (f"{self.file}:{self.line}: {self.rule}: {self.message} "
                f"[{self.fingerprint}]")


def fingerprint(rule: str, rel: str, line_text: str) -> str:
    """Content-based fingerprint, stable across unrelated line drift."""
    norm = " ".join(line_text.split())
    h = hashlib.sha1(f"{rule}|{rel}|{norm}".encode()).hexdigest()
    return h[:16]


def suppressed(anns: List[Annotation], rule: str,
               directive: str) -> Optional[Annotation]:
    """Returns the annotation that suppresses `rule`, if any.

    A finding is suppressed either by the rule's dedicated directive (with
    its reason) or by a generic off(<rule>) entry.
    """
    for a in anns:
        if a.directive == directive:
            return a
        if a.directive == "off" and (not a.rules or rule in a.rules):
            return a
    return None


def func_directives(model: FileModel, f: FuncInfo) -> Set[str]:
    return {a.directive for a in model.annotations_for_func(f)}
