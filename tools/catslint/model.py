"""Shared analysis model for cats-lint.

Both frontends (the libclang engine and the fallback token engine) lower a
translation unit / source file into this engine-independent fact set; the
rules in rules.py only ever see these types, so a rule behaves identically
no matter which frontend produced the facts.
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Dict, List, Optional, Set, Tuple

# Atomic member functions R1 cares about.  wait/notify_one/notify_all are
# excluded: they have no memory-order argument worth auditing here.
ATOMIC_OPS = {
    "load",
    "store",
    "exchange",
    "compare_exchange_weak",
    "compare_exchange_strong",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
}

# Annotation directive names and whether they require a (reason).
DIRECTIVES = {
    "seq_cst": True,        # R1: deliberate seq_cst, reason required
    "under-guard": False,   # R2: callers guarantee an EBR guard / hazard slot
    "quiescent": True,      # R2: single-threaded context (ctor/teardown/test)
    "direct-delete": True,  # R3: delete outside the reclamation domain
    "blocking-ok": True,    # R4: deliberate blocking call, reason required
    "pairing": True,        # R5: deliberate one-sided order, reason required
    "pre-publish": False,   # R5/R6: object not yet reachable (builder code),
    #                         or a write ordered before the edge that makes
    #                         it reachable (reason recommended)
    "pinned": True,         # R7: pointer outlives the guard (refcount,
    #                         immortal, quiescent), reason required
    "off": False,           # generic per-line rule suppression: off(R1,R3)
}


@dataclasses.dataclass
class Annotation:
    directive: str
    reason: str  # empty when the directive takes no reason
    rules: Tuple[str, ...]  # for "off": which rules are suppressed
    line: int  # effective code line the annotation applies to
    raw_line: int  # line the comment physically sits on
    # Set by the rules when this annotation suppressed (or justified) a
    # would-be finding; annotations still False afterwards are dangling (R0).
    used: bool = dataclasses.field(default=False, compare=False)


# Memory-order names that make a WRITE visible to an acquire-side reader.
RELEASE_SIDE = {"release", "acq_rel", "seq_cst"}
# Memory-order names that let a READ synchronize with a release-side write.
ACQUIRE_SIDE = {"acquire", "acq_rel", "seq_cst", "consume"}

# Ops that write the atomic (store side of the R5 matrix).
WRITE_OPS = {"store", "exchange", "compare_exchange_weak",
             "compare_exchange_strong", "fetch_add", "fetch_sub",
             "fetch_and", "fetch_or", "fetch_xor"}
# Ops that read the atomic (load side of the R5 matrix).
READ_OPS = {"load", "exchange", "compare_exchange_weak",
            "compare_exchange_strong", "fetch_add", "fetch_sub",
            "fetch_and", "fetch_or", "fetch_xor"}


@dataclasses.dataclass
class AtomicOp:
    file: str
    line: int
    op: str  # one of ATOMIC_OPS
    receiver: str  # source text of the object expression, best effort
    has_explicit_order: bool
    explicit_seq_cst: bool
    enclosing: Optional[str]  # enclosing function name, best effort
    # Member/variable name the op targets (last component of the receiver);
    # the R5 grouping key.  Empty when the receiver could not be resolved.
    field: str = ""
    # Explicit memory-order names in argument-position order, e.g.
    # ("release",) or ("acq_rel", "acquire") for a CAS.  Empty when the op
    # relies on the defaulted seq_cst.
    orders: Tuple[str, ...] = ()
    # The stored/desired value looks like a pointer (a `new` expression or a
    # pointer-typed local/parameter).  Only meaningful for write ops.
    stores_pointer: bool = False
    # The receiver object was allocated with `new` in this function and has
    # not escaped (no atomic publish, no call argument) before this op: the
    # op is pre-publication initialisation.
    receiver_unpublished: bool = False

    def effective_orders(self) -> Tuple[str, ...]:
        """Order names with the defaulted seq_cst made explicit."""
        return self.orders if self.orders else ("seq_cst",)

    def write_order(self) -> Optional[str]:
        """The order governing this op's write, None for pure loads."""
        if self.op not in WRITE_OPS:
            return None
        return self.effective_orders()[0]

    def read_order(self) -> Optional[str]:
        """The order governing this op's read, None for pure stores."""
        if self.op not in READ_OPS:
            return None
        return self.effective_orders()[0]


@dataclasses.dataclass
class DeleteOp:
    file: str
    line: int
    target_type: Optional[str]  # resolved pointee type name, best effort
    target_expr: str
    is_delete_this: bool
    enclosing: Optional[str]
    enclosing_class: Optional[str]
    in_operator_delete: bool  # inside a (poisoning) operator delete


@dataclasses.dataclass
class FlowEvent:
    """One step of the per-function dataflow stream (R5-R7).

    Events appear in source (token) order, which stands in for program
    order: the rules sweep the stream once, tracking what is published,
    which guard generations are open, and where each pointer was read.

    kinds:
      new          var allocated with `new <node type>`; aux = type name
      publish      var passed as the stored/desired value of an atomic
                   store/exchange/CAS; aux = target field
      field_write  plain (non-atomic-call) member write `var->aux = ...`
      call_arg     var passed whole as an argument; aux = callee base name
      guard_open   an EBR Guard / hazard Holder is constructed;
                   aux = generation number (unique per function)
      guard_close  that guard's scope ends; aux = generation number
      shared_load  var bound from an atomic load of a shared field;
                   aux = generation of the innermost open guard ("0" = none)
      deref        var dereferenced (var-> / var.)
      use          var escapes (returned)
      cas_expected var passed as the expected value of a CAS;
                   aux = generation of the innermost open guard
    """
    kind: str
    var: str
    aux: str
    line: int


@dataclasses.dataclass
class FuncInfo:
    name: str  # qualified, best effort (e.g. BasicLfcaTree::do_update)
    base_name: str  # last component, used for per-TU call-graph matching
    file: str
    def_line: int
    end_line: int
    creates_guard: bool = False
    # Lines holding loads of shared atomic pointers (R2 trigger sites).
    shared_load_lines: List[int] = dataclasses.field(default_factory=list)
    calls: List[Tuple[str, int]] = dataclasses.field(default_factory=list)
    # (token, line) pairs of blocking primitives seen in the body (R4).
    blocking: List[Tuple[str, int]] = dataclasses.field(default_factory=list)
    # Dataflow stream for R5-R7, in source order.
    events: List[FlowEvent] = dataclasses.field(default_factory=list)
    # Pointer-typed parameters: name -> pointee type name (best effort).
    ptr_params: Dict[str, str] = dataclasses.field(default_factory=dict)
    # Local pointer variables of reclaimable node/container types (R6).
    node_vars: List[str] = dataclasses.field(default_factory=list)


@dataclasses.dataclass
class FileModel:
    path: str  # path as analyzed (absolute or repo-relative)
    rel: str  # repo-relative path used in reports and fingerprints
    atomic_ops: List[AtomicOp] = dataclasses.field(default_factory=list)
    delete_ops: List[DeleteOp] = dataclasses.field(default_factory=list)
    funcs: List[FuncInfo] = dataclasses.field(default_factory=list)
    # effective code line -> annotations applying to that line
    annotations: Dict[int, List[Annotation]] = dataclasses.field(
        default_factory=dict)
    # line number -> raw source text (for fingerprints)
    lines: Dict[int, str] = dataclasses.field(default_factory=dict)

    def annotations_for_line(self, line: int) -> List[Annotation]:
        return self.annotations.get(line, [])

    def annotations_for_func(self, f: FuncInfo) -> List[Annotation]:
        out: List[Annotation] = []
        for line, anns in self.annotations.items():
            if f.def_line <= line <= f.end_line:
                out.extend(anns)
        return out


@dataclasses.dataclass
class Finding:
    rule: str  # R0..R7
    file: str  # repo-relative
    line: int
    message: str
    fingerprint: str = ""

    def render(self) -> str:
        return (f"{self.file}:{self.line}: {self.rule}: {self.message} "
                f"[{self.fingerprint}]")


def fingerprint(rule: str, rel: str, line_text: str) -> str:
    """Content-based fingerprint, stable across unrelated line drift."""
    norm = " ".join(line_text.split())
    h = hashlib.sha1(f"{rule}|{rel}|{norm}".encode()).hexdigest()
    return h[:16]


def suppressed(anns: List[Annotation], rule: str,
               directive: str) -> Optional[Annotation]:
    """Returns the annotation that suppresses `rule`, if any.

    A finding is suppressed either by the rule's dedicated directive (with
    its reason) or by a generic off(<rule>) entry.  The winning annotation
    is marked used, which is what keeps it off R0's dangling list.
    """
    for a in anns:
        if a.directive == directive:
            a.used = True
            return a
        if a.directive == "off" and (not a.rules or rule in a.rules):
            a.used = True
            return a
    return None


def func_directives(model: FileModel, f: FuncInfo) -> Set[str]:
    return {a.directive for a in model.annotations_for_func(f)}
