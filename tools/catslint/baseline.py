"""Findings baseline: a checked-in allowlist of fingerprints.

A baseline entry grandfathers an existing finding without fixing it; the
CI gate fails only on findings whose fingerprint is not in the baseline.
Fingerprints hash the rule, file and normalized line text, so unrelated
edits (line drift, reformatting elsewhere) do not invalidate them.

The repo policy is to keep this file EMPTY outside genuine migrations:
prefer a fix or an in-source annotation with a reason.  `--update-baseline`
rewrites the file from the current findings for bulk migrations.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Tuple

from model import Finding


def load(path: str) -> Dict[str, dict]:
    if not path or not os.path.exists(path):
        return {}
    with open(path, encoding="utf-8") as f:
        data = json.load(f)
    return {e["fingerprint"]: e for e in data.get("findings", [])}


def save(path: str, findings: List[Finding]) -> None:
    data = {
        "comment": ("cats-lint baseline: grandfathered findings. "
                    "Keep empty; prefer fixes or in-source annotations."),
        "findings": [
            {"fingerprint": f.fingerprint, "rule": f.rule, "file": f.file,
             "message": f.message}
            for f in findings
        ],
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(data, fh, indent=2, sort_keys=True)
        fh.write("\n")


def split(findings: List[Finding],
          base: Dict[str, dict]) -> Tuple[List[Finding], List[Finding]]:
    """Returns (new_findings, baselined_findings)."""
    new: List[Finding] = []
    old: List[Finding] = []
    for f in findings:
        (old if f.fingerprint in base else new).append(f)
    return new, old
