"""libclang frontend: lowers translation units from compile_commands.json
into the same FileModel the token engine produces, with real type
information (atomic receivers, delete-target types, guard declarations).

Import of clang.cindex is deferred so the driver can fall back to the
token engine on machines without the bindings (this repo's dev container
ships only GCC); CI installs python3-clang/libclang and runs this engine.
"""

from __future__ import annotations

import os
import re
from typing import Dict, List, Optional, Set

import cpptok
from model import (ATOMIC_OPS, AtomicOp, DeleteOp, FileModel, FlowEvent,
                   FuncInfo)

_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
               "<<=", ">>="}
_ORDER_RE = re.compile(r"memory_order\s*(?:_|::)\s*(\w+)")
_IDENT_RE = re.compile(r"[A-Za-z_]\w*")


def _tok_spellings(cursor) -> List[str]:
    try:
        return [t.spelling for t in cursor.get_tokens()]
    except Exception:
        return []


def _field_before_op(toks: List[str], op: str):
    """Member/variable an atomic op is invoked on: the identifier left of
    the `.`/`->` preceding `op(`; `x[i]->op` skips back over the subscript.
    Returns (name, token_index) or ("", -1)."""
    for k in range(1, len(toks) - 1):
        if toks[k] == op and toks[k + 1] == "(" and toks[k - 1] in (".", "->"):
            j = k - 2
            if j >= 0 and toks[j] == "]":
                depth = 0
                while j >= 0:
                    if toks[j] == "]":
                        depth += 1
                    elif toks[j] == "[":
                        depth -= 1
                        if depth == 0:
                            break
                    j -= 1
                j -= 1
            if j >= 0 and _IDENT_RE.fullmatch(toks[j]):
                return toks[j], j
    return "", -1


def _receiver_base(toks: List[str], field_idx: int) -> str:
    """First identifier of the receiver's postfix chain: `m` in
    `m.root_.load(...)`, `this` for `this->root_`, or the field itself
    for a bare-member op (ctor initialisation)."""
    j = field_idx
    while j - 2 >= 0 and toks[j - 1] in (".", "->") and \
            _IDENT_RE.fullmatch(toks[j - 2]):
        j -= 2
    return toks[j] if j >= 0 else ""


class _FnState:
    """Per-function dataflow state, the clang-side mirror of the token
    engine's _FnCtx (see token_engine.py)."""

    def __init__(self, is_ctor: bool):
        self.is_ctor = is_ctor
        self.newed: Set[str] = set()
        self.escaped: Set[str] = set()
        self.published: Set[str] = set()
        self.loaded: Set[str] = set()
        self.guards: List[int] = []  # generation stack, one per open scope
        self.gen_counter = 0

    def cur_gen(self) -> int:
        return self.guards[-1] if self.guards else 0


def available() -> bool:
    try:
        import clang.cindex  # noqa: F401
        return True
    except Exception:
        return False


def _configure_library() -> None:
    import clang.cindex as ci
    if ci.Config.loaded:
        return
    for candidate in (
            os.environ.get("CATSLINT_LIBCLANG", ""),
            "libclang.so", "libclang-15.so", "libclang-14.so",
            "/usr/lib/llvm-15/lib/libclang.so",
            "/usr/lib/llvm-14/lib/libclang.so",
            "/usr/lib/x86_64-linux-gnu/libclang-14.so.1"):
        if not candidate:
            continue
        try:
            ci.Config.set_library_file(candidate)
            ci.Index.create()
            return
        except Exception:
            ci.Config.loaded = False
            continue


def _spelled_type(t) -> str:
    """Last component of a type spelling, templates and quals stripped."""
    s = t.spelling
    for prefix in ("const ", "volatile "):
        while s.startswith(prefix):
            s = s[len(prefix):]
    s = s.split("<")[0].rstrip("*& ")
    return s.split("::")[-1].strip()


class _TuVisitor:
    def __init__(self, models: Dict[str, FileModel], repo: str, cfg: dict):
        self.models = models
        self.repo = repo
        self.cfg = cfg
        self.guard_types = set(cfg.get("guard_types", []))
        self.blocking_ids = set(cfg.get("blocking_identifiers", []))
        self.shared_fields = set(cfg.get("shared_atomic_fields", []))
        self.node_types = set(cfg.get("r3", {}).get("node_types", []))
        self.r6_node_types = set(
            cfg.get("r6", {}).get("node_types",
                                  cfg.get("r3", {}).get("node_types", [])))
        # FuncInfo is a plain dataclass; key the per-function dataflow
        # state by object identity.
        self._state: Dict[int, _FnState] = {}
        self._ptrs: Dict[int, Set[str]] = {}

    def _st(self, f: Optional[FuncInfo]) -> Optional[_FnState]:
        return self._state.get(id(f)) if f is not None else None

    def model_for(self, cursor) -> Optional[FileModel]:
        loc = cursor.location
        if loc.file is None:
            return None
        path = os.path.realpath(loc.file.name)
        rel = os.path.relpath(path, self.repo)
        if rel.startswith(".."):
            return None
        if rel not in self.models:
            self.models[rel] = FileModel(path=path, rel=rel)
            try:
                with open(path, encoding="utf-8", errors="replace") as f:
                    raw = f.read().splitlines()
                self.models[rel].lines = {
                    i + 1: raw[i] for i in range(len(raw))}
                self.models[rel].annotations = \
                    cpptok.extract_annotations(raw)
            except OSError:
                pass
        return self.models[rel]

    def visit(self, tu) -> None:
        from clang.cindex import CursorKind
        func_kinds = {
            CursorKind.FUNCTION_DECL, CursorKind.CXX_METHOD,
            CursorKind.CONSTRUCTOR, CursorKind.DESTRUCTOR,
            CursorKind.FUNCTION_TEMPLATE, CursorKind.LAMBDA_EXPR,
        }

        def walk(cursor, enclosing: Optional[FuncInfo],
                 enclosing_class: Optional[str]) -> None:
            for child in cursor.get_children():
                kind = child.kind
                if kind in (CursorKind.CLASS_DECL, CursorKind.STRUCT_DECL,
                            CursorKind.CLASS_TEMPLATE):
                    walk(child, enclosing, child.spelling or enclosing_class)
                    continue
                if kind in func_kinds and child.is_definition() and \
                        kind != CursorKind.LAMBDA_EXPR:
                    model = self.model_for(child)
                    f = None
                    if model is not None:
                        extent = child.extent
                        name = child.spelling or "<anon>"
                        qual = name
                        sem = child.semantic_parent
                        if sem is not None and sem.spelling and \
                                sem.kind != CursorKind.TRANSLATION_UNIT:
                            qual = f"{sem.spelling}::{name}"
                        f = FuncInfo(
                            name=qual, base_name=name, file=model.rel,
                            def_line=extent.start.line,
                            end_line=extent.end.line)
                        model.funcs.append(f)
                        st = _FnState(kind == CursorKind.CONSTRUCTOR)
                        self._state[id(f)] = st
                        ptrs: Set[str] = set()
                        self._ptrs[id(f)] = ptrs
                        try:
                            for p in child.get_children():
                                if p.kind != CursorKind.PARM_DECL or \
                                        "*" not in p.type.spelling:
                                    continue
                                pname = p.spelling
                                if not pname:
                                    continue
                                ptee = _spelled_type(p.type)
                                f.ptr_params[pname] = ptee
                                ptrs.add(pname)
                                if ptee in self.r6_node_types:
                                    f.node_vars.append(pname)
                        except Exception:
                            pass
                    walk(child, f if f is not None else enclosing,
                         enclosing_class)
                    if f is not None:
                        st = self._state[id(f)]
                        while st.guards:
                            f.events.append(FlowEvent(
                                "guard_close", "", str(st.guards.pop()),
                                f.end_line))
                    continue
                if kind == CursorKind.COMPOUND_STMT and \
                        enclosing is not None:
                    st = self._st(enclosing)
                    mark = len(st.guards) if st is not None else 0
                    walk(child, enclosing, enclosing_class)
                    if st is not None:
                        while len(st.guards) > mark:
                            enclosing.events.append(FlowEvent(
                                "guard_close", "", str(st.guards.pop()),
                                child.extent.end.line))
                    continue
                self._visit_stmt(child, enclosing, enclosing_class)
                walk(child, enclosing, enclosing_class)

        walk(tu.cursor, None, None)

    def _visit_stmt(self, cursor, f: Optional[FuncInfo],
                    enclosing_class: Optional[str]) -> None:
        from clang.cindex import CursorKind
        model = self.model_for(cursor)
        if model is None:
            return
        kind = cursor.kind
        line = cursor.location.line

        if kind == CursorKind.CALL_EXPR and f is not None:
            callee = cursor.spelling or ""
            if callee in ATOMIC_OPS and self._is_atomic_member(cursor):
                self._record_atomic(model, f, cursor)
                return
            if callee in ("sim_plain_write", "sim_plain_read"):
                self._record_sim_plain(f, callee, cursor, line)
                return
            if callee:
                f.calls.append((callee, line))
            if callee in self.blocking_ids:
                f.blocking.append((callee, line))
            st = self._st(f)
            if st is not None and callee:
                try:
                    known = self._ptrs.get(id(f), set())
                    for arg in cursor.get_arguments():
                        at = _tok_spellings(arg)
                        if len(at) != 1 or not _IDENT_RE.fullmatch(at[0]):
                            continue
                        var = at[0]
                        if var in known or var in st.newed or \
                                var in st.loaded:
                            f.events.append(FlowEvent(
                                "call_arg", var, callee, line))
                            st.escaped.add(var)
                except Exception:
                    pass
            return

        if kind == CursorKind.VAR_DECL and f is not None:
            tname = _spelled_type(cursor.type)
            st = self._st(f)
            if tname in self.guard_types:
                f.creates_guard = True
                if st is not None:
                    st.gen_counter += 1
                    st.guards.append(st.gen_counter)
                    f.events.append(FlowEvent(
                        "guard_open", "", str(st.gen_counter), line))
            if tname in self.blocking_ids:
                f.blocking.append((tname, line))
            if st is None:
                return
            name = cursor.spelling or ""
            try:
                is_ptr = "*" in cursor.type.spelling
            except Exception:
                is_ptr = False
            toks = _tok_spellings(cursor)
            if is_ptr and name:
                self._ptrs.setdefault(id(f), set()).add(name)
                if tname in self.r6_node_types:
                    f.node_vars.append(name)
                if "new" in toks:
                    st.newed.add(name)
                    if tname in self.r6_node_types:
                        f.events.append(FlowEvent("new", name, tname, line))
            if name and "load" in toks and \
                    any(t in self.shared_fields for t in toks):
                st.loaded.add(name)
                f.events.append(FlowEvent(
                    "shared_load", name, str(st.cur_gen()), line))
            return

        if kind == CursorKind.BINARY_OPERATOR and f is not None:
            st = self._st(f)
            if st is None:
                return
            toks = _tok_spellings(cursor)
            if len(toks) >= 4 and _IDENT_RE.fullmatch(toks[0]) and \
                    toks[1] in (".", "->") and \
                    _IDENT_RE.fullmatch(toks[2]) and \
                    toks[3] in _ASSIGN_OPS:
                f.events.append(FlowEvent(
                    "field_write", toks[0], toks[2], line))
                rhs = toks[4:]
                if len(rhs) == 1 and rhs[0] in st.newed and \
                        toks[0] not in st.newed:
                    st.escaped.add(rhs[0])
                return
            if len(toks) >= 3 and _IDENT_RE.fullmatch(toks[0]) and \
                    toks[1] == "=":
                rest = toks[2:]
                if "load" in rest and \
                        any(t in self.shared_fields for t in rest):
                    st.loaded.add(toks[0])
                    f.events.append(FlowEvent(
                        "shared_load", toks[0], str(st.cur_gen()), line))
                elif len(rest) == 1 and rest[0] in st.newed:
                    st.escaped.add(rest[0])
            return

        if kind == CursorKind.RETURN_STMT and f is not None:
            st = self._st(f)
            toks = _tok_spellings(cursor)
            if st is not None and len(toks) == 2 and toks[0] == "return" \
                    and _IDENT_RE.fullmatch(toks[1]):
                var = toks[1]
                if var in st.loaded:
                    f.events.append(FlowEvent("use", var, "", line))
                if var in st.newed:
                    st.escaped.add(var)
            return

        if kind == CursorKind.MEMBER_REF_EXPR and f is not None:
            st = self._st(f)
            if st is not None and st.loaded:
                try:
                    base = next(iter(cursor.get_children()), None)
                    name = base.spelling if base is not None else ""
                    if name in st.loaded:
                        f.events.append(FlowEvent("deref", name, "", line))
                except Exception:
                    pass
            return

        if kind == CursorKind.CXX_DELETE_EXPR:
            self._record_delete(model, f, cursor, enclosing_class)

    def _record_sim_plain(self, f: FuncInfo, callee: str, cursor,
                          line: int) -> None:
        """Lowers `cats::sim_plain_write(x->field, v)` / `sim_plain_read(
        x->field)` to the events their unwrapped forms would produce, the
        clang-side mirror of token_engine._record_sim_plain."""
        st = self._st(f)
        try:
            args = list(cursor.get_arguments())
        except Exception:
            args = []
        if not args:
            return
        dt = _tok_spellings(args[0])
        if len(dt) != 3 or not _IDENT_RE.fullmatch(dt[0]) or \
                dt[1] not in ("->", ".") or not _IDENT_RE.fullmatch(dt[2]):
            return
        base, fld = dt[0], dt[2]
        if callee == "sim_plain_read":
            return  # deref events come from the MEMBER_REF_EXPR visit
        f.events.append(FlowEvent("field_write", base, fld, line))
        if st is not None and len(args) >= 2:
            vt = _tok_spellings(args[1])
            # Same private-graph exception as a lexical `lb->parent = r`:
            # storing a fresh node into another still-private node keeps
            # the object graph private; anything else escapes the value.
            if len(vt) == 1 and vt[0] in st.newed and base not in st.newed:
                st.escaped.add(vt[0])

    def _is_atomic_member(self, cursor) -> bool:
        from clang.cindex import CursorKind
        for child in cursor.get_children():
            if child.kind == CursorKind.MEMBER_REF_EXPR:
                base = next(iter(child.get_children()), None)
                if base is not None and \
                        "atomic" in base.type.spelling:
                    return True
        return False

    def _record_atomic(self, model: FileModel, f: FuncInfo,
                       cursor) -> None:
        op = cursor.spelling
        line = cursor.location.line
        toks = _tok_spellings(cursor)
        has_order = any("memory_order" in t for t in toks)
        seq_cst = any("seq_cst" in t for t in toks)
        field, fidx = _field_before_op(toks, op)
        base = _receiver_base(toks, fidx) if fidx >= 0 else ""
        pointee_shared = field in self.shared_fields
        st = self._st(f)
        known = self._ptrs.get(id(f), set()) if f is not None else set()

        # Argument partition: bare memory-order expressions vs values.
        def argtoks(a):
            return _tok_spellings(a)

        def is_order_arg(at):
            return bool(at) and len(at) <= 5 and \
                _ORDER_RE.search(" ".join(at)) is not None

        def is_order_typed(a):
            # A memory_order-typed expression with no literal order name:
            # a forwarding parameter (cats::atomic passes its caller's
            # order through).  Counts as explicit, order "forwarded".
            try:
                return "memory_order" in a.type.spelling
            except Exception:
                return False

        try:
            args = list(cursor.get_arguments())
        except Exception:
            args = []
        orders: List[str] = []
        value_args = []
        for a in args:
            at = argtoks(a)
            if is_order_arg(at):
                m = _ORDER_RE.search(" ".join(at))
                if m:
                    orders.append(m.group(1))
            elif is_order_typed(a):
                orders.append("forwarded")
                has_order = True
            else:
                value_args.append(a)

        # Stored value (store/exchange arg0, CAS desired arg1): a `new`
        # expression or pointer-typed value marks a pointer publication.
        stores_ptr = False
        publish_var = None
        val = None
        if op in ("store", "exchange") and value_args:
            val = value_args[0]
        elif op.startswith("compare_exchange") and len(value_args) >= 2:
            val = value_args[1]
        if val is not None:
            vt = argtoks(val)
            if "new" in vt[:2]:
                stores_ptr = True
            try:
                if "*" in val.type.spelling:
                    stores_ptr = True
            except Exception:
                pass
            if len(vt) == 1 and _IDENT_RE.fullmatch(vt[0]):
                if vt[0] in known or (st is not None and
                                      (vt[0] in st.newed or
                                       vt[0] in st.loaded)):
                    stores_ptr = True
                    publish_var = vt[0]
        expected_var = None
        if op.startswith("compare_exchange") and value_args:
            et = argtoks(value_args[0])
            if len(et) == 1 and _IDENT_RE.fullmatch(et[0]):
                expected_var = et[0]

        bare = base == field or base == "this"
        recv_unpub = False
        if st is not None:
            if not bare and base and base in st.newed and \
                    base not in st.escaped and base not in st.published:
                recv_unpub = True
            elif st.is_ctor and bare:
                recv_unpub = True

        model.atomic_ops.append(AtomicOp(
            file=model.rel, line=line, op=op, receiver=field,
            has_explicit_order=has_order, explicit_seq_cst=seq_cst,
            enclosing=f.name if f else None, field=field,
            orders=tuple(orders), stores_pointer=stores_ptr,
            receiver_unpublished=recv_unpub))

        if f is not None and st is not None:
            if publish_var is not None:
                f.events.append(FlowEvent("publish", publish_var, field,
                                          line))
                st.published.add(publish_var)
            if expected_var is not None:
                f.events.append(FlowEvent("cas_expected", expected_var,
                                          str(st.cur_gen()), line))
        if op == "load" and pointee_shared and f is not None:
            f.shared_load_lines.append(line)

    def _record_delete(self, model: FileModel, f: Optional[FuncInfo],
                       cursor, enclosing_class: Optional[str]) -> None:
        from clang.cindex import CursorKind
        line = cursor.location.line
        target_type = None
        target_expr = ""
        is_this = False
        for child in cursor.get_children():
            target_type = _spelled_type(child.type)
            toks = [t.spelling for t in child.get_tokens()]
            target_expr = " ".join(toks[:12])
            if child.kind == CursorKind.CXX_THIS_EXPR or \
                    target_expr.strip() == "this":
                is_this = True
            break
        in_op_delete = bool(f and f.base_name == "operator delete")
        model.delete_ops.append(DeleteOp(
            file=model.rel, line=line, target_type=target_type,
            target_expr=target_expr, is_delete_this=is_this,
            enclosing=f.name if f else None,
            enclosing_class=enclosing_class,
            in_operator_delete=in_op_delete))


def analyze_file(path: str, repo: str, cfg: dict) -> Dict[str, FileModel]:
    """Parses one self-contained file (no compdb), e.g. a lint fixture."""
    import clang.cindex as ci
    _configure_library()
    index = ci.Index.create()
    tu = index.parse(os.path.realpath(path), args=["-std=c++20"])
    models: Dict[str, FileModel] = {}
    _TuVisitor(models, repo, cfg).visit(tu)
    rel = os.path.relpath(os.path.realpath(path), repo)
    return {k: v for k, v in models.items() if k == rel}


def analyze_compdb(compdb_path: str, repo: str,
                   cfg: dict) -> Dict[str, FileModel]:
    import json

    import clang.cindex as ci
    _configure_library()
    index = ci.Index.create()
    with open(compdb_path, encoding="utf-8") as fh:
        entries = json.load(fh)
    models: Dict[str, FileModel] = {}
    visitor = _TuVisitor(models, repo, cfg)
    seen = set()
    for entry in entries:
        src = os.path.realpath(
            os.path.join(entry.get("directory", "."), entry["file"]))
        if src in seen:
            continue
        seen.add(src)
        args = entry.get("command", "").split()[1:]
        if "arguments" in entry:
            args = entry["arguments"][1:]
        # Drop output/input args; keep includes, defines, std flags.
        keep: List[str] = []
        skip_next = False
        for a in args:
            if skip_next:
                skip_next = False
                continue
            if a in ("-o", "-c", "-MF", "-MT", "-MQ"):
                skip_next = a != "-c"
                continue
            if a == entry["file"] or a.endswith(os.path.basename(src)):
                continue
            keep.append(a)
        try:
            tu = index.parse(src, args=keep)
        except ci.TranslationUnitLoadError:
            continue
        visitor.visit(tu)
    return models
