"""libclang frontend: lowers translation units from compile_commands.json
into the same FileModel the token engine produces, with real type
information (atomic receivers, delete-target types, guard declarations).

Import of clang.cindex is deferred so the driver can fall back to the
token engine on machines without the bindings (this repo's dev container
ships only GCC); CI installs python3-clang/libclang and runs this engine.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional

import cpptok
from model import (ATOMIC_OPS, AtomicOp, DeleteOp, FileModel, FuncInfo)


def available() -> bool:
    try:
        import clang.cindex  # noqa: F401
        return True
    except Exception:
        return False


def _configure_library() -> None:
    import clang.cindex as ci
    if ci.Config.loaded:
        return
    for candidate in (
            os.environ.get("CATSLINT_LIBCLANG", ""),
            "libclang.so", "libclang-15.so", "libclang-14.so",
            "/usr/lib/llvm-15/lib/libclang.so",
            "/usr/lib/llvm-14/lib/libclang.so",
            "/usr/lib/x86_64-linux-gnu/libclang-14.so.1"):
        if not candidate:
            continue
        try:
            ci.Config.set_library_file(candidate)
            ci.Index.create()
            return
        except Exception:
            ci.Config.loaded = False
            continue


def _spelled_type(t) -> str:
    """Last component of a type spelling, templates and quals stripped."""
    s = t.spelling
    for prefix in ("const ", "volatile "):
        while s.startswith(prefix):
            s = s[len(prefix):]
    s = s.split("<")[0].rstrip("*& ")
    return s.split("::")[-1].strip()


class _TuVisitor:
    def __init__(self, models: Dict[str, FileModel], repo: str, cfg: dict):
        self.models = models
        self.repo = repo
        self.cfg = cfg
        self.guard_types = set(cfg.get("guard_types", []))
        self.blocking_ids = set(cfg.get("blocking_identifiers", []))
        self.shared_fields = set(cfg.get("shared_atomic_fields", []))
        self.node_types = set(cfg.get("r3", {}).get("node_types", []))

    def model_for(self, cursor) -> Optional[FileModel]:
        loc = cursor.location
        if loc.file is None:
            return None
        path = os.path.realpath(loc.file.name)
        rel = os.path.relpath(path, self.repo)
        if rel.startswith(".."):
            return None
        if rel not in self.models:
            self.models[rel] = FileModel(path=path, rel=rel)
            try:
                with open(path, encoding="utf-8", errors="replace") as f:
                    raw = f.read().splitlines()
                self.models[rel].lines = {
                    i + 1: raw[i] for i in range(len(raw))}
                self.models[rel].annotations = \
                    cpptok.extract_annotations(raw)
            except OSError:
                pass
        return self.models[rel]

    def visit(self, tu) -> None:
        from clang.cindex import CursorKind
        func_kinds = {
            CursorKind.FUNCTION_DECL, CursorKind.CXX_METHOD,
            CursorKind.CONSTRUCTOR, CursorKind.DESTRUCTOR,
            CursorKind.FUNCTION_TEMPLATE, CursorKind.LAMBDA_EXPR,
        }

        def walk(cursor, enclosing: Optional[FuncInfo],
                 enclosing_class: Optional[str]) -> None:
            for child in cursor.get_children():
                kind = child.kind
                if kind in (CursorKind.CLASS_DECL, CursorKind.STRUCT_DECL,
                            CursorKind.CLASS_TEMPLATE):
                    walk(child, enclosing, child.spelling or enclosing_class)
                    continue
                if kind in func_kinds and child.is_definition() and \
                        kind != CursorKind.LAMBDA_EXPR:
                    model = self.model_for(child)
                    f = None
                    if model is not None:
                        extent = child.extent
                        name = child.spelling or "<anon>"
                        qual = name
                        sem = child.semantic_parent
                        if sem is not None and sem.spelling and \
                                sem.kind != CursorKind.TRANSLATION_UNIT:
                            qual = f"{sem.spelling}::{name}"
                        f = FuncInfo(
                            name=qual, base_name=name, file=model.rel,
                            def_line=extent.start.line,
                            end_line=extent.end.line)
                        model.funcs.append(f)
                    walk(child, f if f is not None else enclosing,
                         enclosing_class)
                    continue
                self._visit_stmt(child, enclosing, enclosing_class)
                walk(child, enclosing, enclosing_class)

        walk(tu.cursor, None, None)

    def _visit_stmt(self, cursor, f: Optional[FuncInfo],
                    enclosing_class: Optional[str]) -> None:
        from clang.cindex import CursorKind
        model = self.model_for(cursor)
        if model is None:
            return
        kind = cursor.kind
        line = cursor.location.line

        if kind == CursorKind.CALL_EXPR and f is not None:
            callee = cursor.spelling or ""
            if callee in ATOMIC_OPS and self._is_atomic_member(cursor):
                self._record_atomic(model, f, cursor)
                return
            if callee:
                f.calls.append((callee, line))
            if callee in self.blocking_ids:
                f.blocking.append((callee, line))
            return

        if kind == CursorKind.VAR_DECL and f is not None:
            tname = _spelled_type(cursor.type)
            if tname in self.guard_types:
                f.creates_guard = True
            if tname in self.blocking_ids:
                f.blocking.append((tname, line))
            return

        if kind == CursorKind.CXX_DELETE_EXPR:
            self._record_delete(model, f, cursor, enclosing_class)

    def _is_atomic_member(self, cursor) -> bool:
        from clang.cindex import CursorKind
        for child in cursor.get_children():
            if child.kind == CursorKind.MEMBER_REF_EXPR:
                base = next(iter(child.get_children()), None)
                if base is not None and \
                        "atomic" in base.type.spelling:
                    return True
        return False

    def _record_atomic(self, model: FileModel, f: FuncInfo,
                       cursor) -> None:
        from clang.cindex import CursorKind
        op = cursor.spelling
        line = cursor.location.line
        toks = [t.spelling for t in cursor.get_tokens()]
        has_order = any("memory_order" in t for t in toks)
        seq_cst = any("seq_cst" in t for t in toks)
        receiver = ""
        pointee_shared = False
        for child in cursor.get_children():
            if child.kind == CursorKind.MEMBER_REF_EXPR:
                receiver = child.spelling or ""
                base = next(iter(child.get_children()), None)
                if base is not None and receiver in self.shared_fields:
                    pointee_shared = True
                # member itself named like a shared field, e.g. root_
                if child.spelling in self.shared_fields:
                    pointee_shared = True
                break
        model.atomic_ops.append(AtomicOp(
            file=model.rel, line=line, op=op, receiver=receiver,
            has_explicit_order=has_order, explicit_seq_cst=seq_cst,
            enclosing=f.name if f else None))
        if op == "load" and pointee_shared and f is not None:
            f.shared_load_lines.append(line)

    def _record_delete(self, model: FileModel, f: Optional[FuncInfo],
                       cursor, enclosing_class: Optional[str]) -> None:
        from clang.cindex import CursorKind
        line = cursor.location.line
        target_type = None
        target_expr = ""
        is_this = False
        for child in cursor.get_children():
            target_type = _spelled_type(child.type)
            toks = [t.spelling for t in child.get_tokens()]
            target_expr = " ".join(toks[:12])
            if child.kind == CursorKind.CXX_THIS_EXPR or \
                    target_expr.strip() == "this":
                is_this = True
            break
        in_op_delete = bool(f and f.base_name == "operator delete")
        model.delete_ops.append(DeleteOp(
            file=model.rel, line=line, target_type=target_type,
            target_expr=target_expr, is_delete_this=is_this,
            enclosing=f.name if f else None,
            enclosing_class=enclosing_class,
            in_operator_delete=in_op_delete))


def analyze_file(path: str, repo: str, cfg: dict) -> Dict[str, FileModel]:
    """Parses one self-contained file (no compdb), e.g. a lint fixture."""
    import clang.cindex as ci
    _configure_library()
    index = ci.Index.create()
    tu = index.parse(os.path.realpath(path), args=["-std=c++20"])
    models: Dict[str, FileModel] = {}
    _TuVisitor(models, repo, cfg).visit(tu)
    rel = os.path.relpath(os.path.realpath(path), repo)
    return {k: v for k, v in models.items() if k == rel}


def analyze_compdb(compdb_path: str, repo: str,
                   cfg: dict) -> Dict[str, FileModel]:
    import json

    import clang.cindex as ci
    _configure_library()
    index = ci.Index.create()
    with open(compdb_path, encoding="utf-8") as fh:
        entries = json.load(fh)
    models: Dict[str, FileModel] = {}
    visitor = _TuVisitor(models, repo, cfg)
    seen = set()
    for entry in entries:
        src = os.path.realpath(
            os.path.join(entry.get("directory", "."), entry["file"]))
        if src in seen:
            continue
        seen.add(src)
        args = entry.get("command", "").split()[1:]
        if "arguments" in entry:
            args = entry["arguments"][1:]
        # Drop output/input args; keep includes, defines, std flags.
        keep: List[str] = []
        skip_next = False
        for a in args:
            if skip_next:
                skip_next = False
                continue
            if a in ("-o", "-c", "-MF", "-MT", "-MQ"):
                skip_next = a != "-c"
                continue
            if a == entry["file"] or a.endswith(os.path.basename(src)):
                continue
            keep.append(a)
        try:
            tu = index.parse(src, args=keep)
        except ci.TranslationUnitLoadError:
            continue
        visitor.visit(tu)
    return models
