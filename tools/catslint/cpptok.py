"""Lexical front half of the fallback token engine.

Turns a C++ source file into an annotation map plus a token stream with
line numbers, after (a) extracting `// catslint:` annotations, (b) dropping
preprocessor-inactive regions for a configured macro environment, and
(c) stripping comments, string and character literals.

This is deliberately not a real preprocessor: it evaluates only the simple
conditional shapes this repo uses (`#if MACRO`, `#if defined(MACRO)`,
`#ifdef` / `#ifndef`, negations, `#else`, `#elif` of the same shapes).
Unknown conditions keep the #if branch active and drop the #else branch,
which matches how the default build configuration compiles this tree.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from model import Annotation, DIRECTIVES

Token = Tuple[str, str, int]  # (kind, text, line) kind: id | num | punct

_ANNOT_RE = re.compile(r"//\s*catslint:\s*(.+?)\s*(?:\*/)?\s*$")
_ID_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
_TOKEN_RE = re.compile(
    r"""[A-Za-z_][A-Za-z0-9_]*          # identifier / keyword
      | 0[xX][0-9a-fA-F']+[uUlL]*       # hex literal
      | \d[\d'.eEpPxX+\-uUlLfF]*        # numeric literal (loose)
      | ::|->\*?|\+\+|--|<<=|>>=|<=>|<=|>=|==|!=|&&|\|\||\+=|-=|\*=|/=
      | %=|&=|\|=|\^=|<<|>>|\.\.\.|.
    """, re.VERBOSE)


def _split_directives(text: str) -> List[Tuple[str, str]]:
    """Splits 'seq_cst(reason, more), off(R1)' into (name, payload) pairs."""
    out: List[Tuple[str, str]] = []
    i = 0
    n = len(text)
    while i < n:
        m = _ID_RE.match(text.replace("-", "_"), i)
        if not m:
            i += 1
            continue
        name = text[m.start():m.end()]
        i = m.end()
        payload = ""
        if i < n and text[i] == "(":
            depth = 0
            j = i
            while j < n:
                if text[j] == "(":
                    depth += 1
                elif text[j] == ")":
                    depth -= 1
                    if depth == 0:
                        break
                j += 1
            payload = text[i + 1:j]
            i = j + 1
        out.append((name, payload.strip()))
        while i < n and text[i] in ", \t":
            i += 1
    return out


def extract_annotations(lines: List[str]) -> Dict[int, List[Annotation]]:
    """Maps effective code line -> annotations.

    An annotation applies to the code on its own line; when the line holds
    nothing but the comment, it applies to the next non-blank line.
    """
    out: Dict[int, List[Annotation]] = {}
    for idx, line in enumerate(lines, start=1):
        m = _ANNOT_RE.search(line)
        if not m:
            continue
        before = line[:m.start()].strip()
        effective = idx
        if not before or before in {"/*", "*"}:
            nxt = idx + 1
            while nxt <= len(lines) and not lines[nxt - 1].strip():
                nxt += 1
            effective = nxt
        for name, payload in _split_directives(m.group(1)):
            if name not in DIRECTIVES:
                continue
            rules: Tuple[str, ...] = ()
            reason = payload
            if name == "off":
                rules = tuple(r.strip().upper()
                              for r in payload.split(",") if r.strip())
                reason = ""
            out.setdefault(effective, []).append(
                Annotation(directive=name, reason=reason, rules=rules,
                           line=effective, raw_line=idx))
    return out


def _eval_condition(cond: str, defines: Dict[str, int]) -> Optional[bool]:
    """Evaluates the simple conditional shapes used in this repo.

    Returns None when the condition is outside the supported subset.
    """
    cond = cond.strip()
    neg = False
    while cond.startswith("!"):
        neg = not neg
        cond = cond[1:].strip()
    m = re.fullmatch(r"defined\s*\(\s*(\w+)\s*\)|defined\s+(\w+)", cond)
    if m:
        name = m.group(1) or m.group(2)
        val = name in defines
    elif re.fullmatch(r"\w+", cond):
        if cond.isdigit():
            val = int(cond) != 0
        elif cond in defines:
            val = defines[cond] != 0
        else:
            # Undefined identifier in #if evaluates to 0.  Unknown macros we
            # have no opinion about are treated as "keep the branch".
            return None if not neg else None
    else:
        return None
    return (not val) if neg else val


def strip_inactive(lines: List[str], defines: Dict[str, int]) -> List[str]:
    """Blanks out lines in preprocessor-inactive regions."""
    out: List[str] = []
    # Stack of (parent_active, this_branch_active, any_branch_taken).
    stack: List[List[bool]] = []

    def active() -> bool:
        return all(fr[1] for fr in stack)

    # Pre-pass: blank backslash-continuation lines of multi-line
    # directives so macro bodies never leak into the token stream.
    lines = list(lines)
    idx = 0
    total = len(lines)
    while idx < total:
        if lines[idx].lstrip().startswith("#"):
            while lines[idx].rstrip().endswith("\\") and idx + 1 < total:
                idx += 1
                lines[idx] = ""
        idx += 1

    for line in lines:
        stripped = line.lstrip()
        if stripped.startswith("#"):
            directive = stripped[1:].lstrip()
            parent = active()
            if directive.startswith(("ifdef", "ifndef", "if")):
                if directive.startswith("ifdef"):
                    name = directive[5:].strip().split()[0] if \
                        directive[5:].strip() else ""
                    cond = name in defines
                elif directive.startswith("ifndef"):
                    name = directive[6:].strip().split()[0] if \
                        directive[6:].strip() else ""
                    cond = name not in defines
                else:
                    res = _eval_condition(directive[2:], defines)
                    cond = True if res is None else res
                stack.append([parent, bool(cond), bool(cond)])
                out.append("")
                continue
            if directive.startswith("elif"):
                if stack:
                    fr = stack[-1]
                    if fr[2]:
                        fr[1] = False
                    else:
                        res = _eval_condition(directive[4:], defines)
                        fr[1] = True if res is None else res
                        fr[2] = fr[2] or fr[1]
                out.append("")
                continue
            if directive.startswith("else"):
                if stack:
                    fr = stack[-1]
                    fr[1] = not fr[2]
                    fr[2] = True
                out.append("")
                continue
            if directive.startswith("endif"):
                if stack:
                    stack.pop()
                out.append("")
                continue
            # Other directives (#include, #define, #pragma): keep the line
            # out of the token stream either way.
            out.append("")
            continue
        out.append(line if active() else "")
    return out


def strip_comments_and_strings(lines: List[str]) -> List[str]:
    """Removes comments and string/char literal contents, keeping lines."""
    out: List[str] = []
    in_block = False
    for line in lines:
        res: List[str] = []
        i = 0
        n = len(line)
        while i < n:
            if in_block:
                j = line.find("*/", i)
                if j < 0:
                    i = n
                else:
                    in_block = False
                    i = j + 2
                continue
            c = line[i]
            two = line[i:i + 2]
            if two == "//":
                break
            if two == "/*":
                in_block = True
                i += 2
                continue
            if c in "\"'":
                quote = c
                res.append(quote)
                i += 1
                while i < n:
                    if line[i] == "\\":
                        i += 2
                        continue
                    if line[i] == quote:
                        break
                    i += 1
                res.append(quote)
                i += 1
                continue
            res.append(c)
            i += 1
        out.append("".join(res))
    return out


def tokenize(lines: List[str]) -> List[Token]:
    toks: List[Token] = []
    for idx, line in enumerate(lines, start=1):
        for m in _TOKEN_RE.finditer(line):
            text = m.group(0)
            if text.isspace():
                continue
            if text[0].isalpha() or text[0] == "_":
                kind = "id"
            elif text[0].isdigit():
                kind = "num"
            else:
                kind = "punct"
            toks.append((kind, text, idx))
    return toks


def lex_file(path: str, defines: Dict[str, int]):
    """Returns (raw_lines, annotations, tokens)."""
    with open(path, "r", encoding="utf-8", errors="replace") as f:
        raw = f.read().splitlines()
    annotations = extract_annotations(raw)
    active = strip_inactive(raw, defines)
    clean = strip_comments_and_strings(active)
    return raw, annotations, tokenize(clean)
