"""Fallback frontend: lowers C++ source to the FileModel via lexical
analysis (no compiler needed).

Scope and honesty: this engine understands the subset of C++ this repo is
written in — namespaces, classes with inline members, free/member function
definitions (templates included), constructor initializer lists, lambdas
(attributed to the enclosing function).  It resolves delete-target types
from local declarations, parameters, `new` expressions and casts, and it
builds a per-file call graph by callee base name.  Anything it cannot
resolve it leaves unflagged (conservative); the libclang engine, when
available, resolves those cases with real type information.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import cpptok
from model import (ATOMIC_OPS, AtomicOp, DeleteOp, FileModel, FuncInfo)

_KEYWORDS = {
    "if", "for", "while", "switch", "return", "sizeof", "alignof",
    "decltype", "catch", "new", "delete", "throw", "case", "do", "else",
    "static_assert", "alignas", "co_await", "co_return", "co_yield",
    "assert", "typeid", "goto",
}
_POST_PAREN_QUALIFIERS = {"const", "noexcept", "override", "final",
                          "mutable", "try", "requires"}
_TYPE_KEYWORDS = {
    "const", "constexpr", "static", "inline", "typename", "volatile",
    "unsigned", "signed", "struct", "class", "auto", "register", "extern",
    "thread_local", "friend", "virtual", "explicit",
}


class _Scanner:
    def __init__(self, toks: List[cpptok.Token], model: FileModel,
                 cfg: dict):
        self.toks = toks
        self.model = model
        self.cfg = cfg
        self.guard_types = set(cfg.get("guard_types", []))
        self.blocking_ids = set(cfg.get("blocking_identifiers", []))
        self.shared_fields = set(cfg.get("shared_atomic_fields", []))

    # -- token helpers ----------------------------------------------------

    def match_forward(self, i: int, open_t: str, close_t: str) -> int:
        """Index of the token matching toks[i] == open_t, or len(toks)."""
        depth = 0
        n = len(self.toks)
        while i < n:
            t = self.toks[i][1]
            if t == open_t:
                depth += 1
            elif t == close_t:
                depth -= 1
                if depth == 0:
                    return i
            i += 1
        return n - 1

    def match_back(self, i: int, close_t: str, open_t: str) -> int:
        depth = 0
        while i >= 0:
            t = self.toks[i][1]
            if t == close_t:
                depth += 1
            elif t == open_t:
                depth -= 1
                if depth == 0:
                    return i
            i -= 1
        return 0

    def _skip_template_back(self, i: int) -> int:
        """Given toks[i] == '>', index before the matching '<'."""
        depth = 0
        while i >= 0:
            t = self.toks[i][1]
            if t == ">":
                depth += 1
            elif t == "<":
                depth -= 1
                if depth == 0:
                    return i - 1
            i -= 1
        return -1

    def _name_chain_back(self, i: int) -> Tuple[Optional[str], int]:
        """Reads a (possibly qualified) name ending at toks[i].

        Returns (qualified_name, index_before_chain).  Handles A::B<T>::f,
        ~X, and operator <symbol>/new/delete.
        """
        parts: List[str] = []
        while i >= 0:
            kind, text, _ = self.toks[i]
            if text == ">":
                i = self._skip_template_back(i)
                continue
            if kind == "id":
                name = text
                if i >= 1 and self.toks[i - 1][1] == "~":
                    name = "~" + name
                    i -= 1
                if i >= 1 and self.toks[i - 1][1] == "operator":
                    # operator delete / operator new as a declared name
                    name = "operator " + text
                    i -= 1
                parts.insert(0, name)
                i -= 1
                if i >= 0 and self.toks[i][1] == "::":
                    i -= 1
                    continue
                break
            break
        if not parts:
            return None, i
        return "::".join(parts), i

    # -- function discovery ------------------------------------------------

    def run(self) -> None:
        i = 0
        n = len(self.toks)
        class_stack: List[str] = []
        brace_kinds: List[str] = []  # parallel to open braces: ns/class/other
        while i < n:
            kind, text, line = self.toks[i]
            if text == "enum":
                # skip `enum [class] name [: type] { ... }` entirely
                j = i + 1
                while j < n and self.toks[j][1] != "{":
                    if self.toks[j][1] in {";", "}"}:
                        break
                    j += 1
                if j < n and self.toks[j][1] == "{":
                    i = self.match_forward(j, "{", "}") + 1
                else:
                    i = j + 1
                continue
            if text == "{":
                cls = self._classify_open_brace(i, class_stack)
                if cls == "func":
                    i = self._consume_function(i, class_stack)
                    continue
                brace_kinds.append(cls)
                i += 1
                continue
            if text == "}":
                if brace_kinds:
                    k = brace_kinds.pop()
                    if k == "class" and class_stack:
                        class_stack.pop()
                i += 1
                continue
            i += 1

    def _classify_open_brace(self, i: int,
                             class_stack: List[str]) -> str:
        """Classifies the '{' at index i: ns | class | func | other.

        Side effect: pushes the class name for 'class'.
        """
        j = i - 1
        if j < 0:
            return "other"
        # namespace NAME { / namespace {
        if self.toks[j][1] == "namespace":
            return "ns"
        if self.toks[j][0] == "id" and j >= 1 and \
                self.toks[j - 1][1] == "namespace":
            return "ns"
        # class/struct [attr] NAME [final] [: bases] {
        k = j
        steps = 0
        while k >= 0 and steps < 64:
            t = self.toks[k][1]
            if t in {";", "}", "{", ")"}:
                break
            if t in {"class", "struct", "union"}:
                # find the name right after the keyword
                m = k + 1
                while m < i and self.toks[m][0] != "id":
                    m += 1
                name = self.toks[m][1] if m < i else "<anon>"
                class_stack.append(name)
                return "class"
            k -= 1
            steps += 1
        # function body: '{' preceded by ')' modulo qualifiers, trailing
        # return types and constructor initializer lists.
        k = j
        while k >= 0:
            t = self.toks[k][1]
            if self.toks[k][0] == "id" and t in _POST_PAREN_QUALIFIERS:
                k -= 1
                continue
            if t == ">":  # e.g. noexcept(...) -> T<...>, requires-clauses
                k = self._skip_template_back(k)
                continue
            if t == ")":
                open_idx = self.match_back(k, ")", "(")
                name, _ = self._name_chain_back(open_idx - 1)
                if name is None:
                    return "other"
                base = name.split("::")[-1]
                if base in _KEYWORDS:
                    return "other"
                # constructor initializer-list: walk back over `name(..),`
                # units to the ':' and re-anchor on the signature's ')'
                prev = self._ctor_init_anchor(open_idx)
                if prev is not None:
                    open_idx = self.match_back(prev, ")", "(")
                    name, _ = self._name_chain_back(open_idx - 1)
                    if name is None:
                        return "other"
                return "func"
            if self.toks[k][0] == "id" or t in {"::", "*", "&", "&&"}:
                # possibly a trailing return type: scan further back for ->
                m = k
                steps2 = 0
                while m >= 0 and steps2 < 32:
                    tm = self.toks[m][1]
                    if tm == "->":
                        k = m - 1
                        break
                    if self.toks[m][0] == "id" or tm in {"::", "*", "&",
                                                         ">", "<", ","}:
                        m -= 1
                        steps2 += 1
                        continue
                    return "other"
                else:
                    return "other"
                if m < 0 or steps2 >= 32:
                    return "other"
                continue
            return "other"
        return "other"

    def _ctor_init_anchor(self, open_idx: int) -> Optional[int]:
        """If toks[open_idx] is the '(' of an init-list member, walks the
        list back and returns the index of the signature's ')'."""
        idx = open_idx
        while True:
            name, before = self._name_chain_back(idx - 1)
            if name is None:
                return None
            if before < 0:
                return None
            sep = self.toks[before][1]
            if sep == ",":
                # previous unit: `name(...)` or `name{...}`
                close = before
                while close >= 0 and self.toks[close][1] not in {")", "}"}:
                    close -= 1
                if close < 0:
                    return None
                if self.toks[close][1] == ")":
                    idx = self.match_back(close, ")", "(")
                else:
                    idx = self.match_back(close, "}", "{")
                continue
            if sep == ":":
                prev = before - 1
                while prev >= 0 and self.toks[prev][0] == "id" and \
                        self.toks[prev][1] in _POST_PAREN_QUALIFIERS:
                    prev -= 1
                if prev >= 0 and self.toks[prev][1] == ")":
                    return prev
                return None
            return None

    # -- function body analysis -------------------------------------------

    def _consume_function(self, brace_idx: int,
                          class_stack: List[str]) -> int:
        end_idx = self.match_forward(brace_idx, "{", "}")
        # Re-derive the name and signature span.
        k = brace_idx - 1
        while k >= 0 and self.toks[k][1] != ")":
            if self.toks[k][1] == ">":
                k = self._skip_template_back(k)
                continue
            k -= 1
        open_idx = self.match_back(k, ")", "(")
        anchor = self._ctor_init_anchor(open_idx)
        if anchor is not None:
            k = anchor
            open_idx = self.match_back(k, ")", "(")
        name, _ = self._name_chain_back(open_idx - 1)
        qual = name or "<anon>"
        if class_stack and "::" not in qual:
            qual = "::".join(class_stack) + "::" + qual
        base = qual.split("::")[-1]
        f = FuncInfo(name=qual, base_name=base, file=self.model.rel,
                     def_line=self.toks[open_idx][2],
                     end_line=self.toks[end_idx][2])
        symbols = self._param_types(open_idx, k)
        # Constructor initializer lists run code too (atomic ops, calls):
        # start the scan at the signature's ')' when one is present.
        start = k if anchor is not None else brace_idx
        self._scan_body(f, start, end_idx, symbols, class_stack)
        self.model.funcs.append(f)
        return end_idx + 1

    def _param_types(self, open_idx: int, close_idx: int) -> Dict[str, str]:
        """name -> pointee type for `T* name`-shaped parameters."""
        out: Dict[str, str] = {}
        i = open_idx + 1
        while i < close_idx:
            if self.toks[i][1] == "*" and i + 1 < close_idx and \
                    self.toks[i + 1][0] == "id":
                # walk back over const/type chain for the last real type id
                j = i - 1
                while j > open_idx and self.toks[j][1] == "const":
                    j -= 1
                if self.toks[j][1] == ">":
                    j = self._skip_template_back(j)
                if j > open_idx and self.toks[j][0] == "id" and \
                        self.toks[j][1] not in _TYPE_KEYWORDS:
                    nxt = self.toks[i + 1][1]
                    if nxt not in _TYPE_KEYWORDS:
                        out[nxt] = self.toks[j][1]
            i += 1
        return out

    def _scan_body(self, f: FuncInfo, start: int, end: int,
                   symbols: Dict[str, str],
                   class_stack: List[str]) -> None:
        i = start + 1
        while i < end:
            kind, text, line = self.toks[i]
            if kind != "id" and text != "delete":
                i += 1
                continue
            nxt = self.toks[i + 1][1] if i + 1 < end else ""

            # delete expressions ------------------------------------------
            if text == "delete":
                prev = self.toks[i - 1][1] if i > start else ""
                if prev == "operator":
                    i += 1
                    continue
                if prev == "=":  # `= delete;`
                    i += 1
                    continue
                i = self._record_delete(f, i, end, symbols, class_stack)
                continue

            # local declarations: `T* name`, `auto* name = new T`,
            # `auto* name = static_cast<T*>` ------------------------------
            if text == "auto" and nxt == "*" and i + 2 < end and \
                    self.toks[i + 2][0] == "id":
                var = self.toks[i + 2][1]
                j = i + 3
                if j < end and self.toks[j][1] == "=":
                    t = self._new_or_cast_type(j + 1, end)
                    if t:
                        symbols[var] = t
                i += 3
                continue
            if kind == "id" and text not in _TYPE_KEYWORDS and \
                    text not in _KEYWORDS and nxt == "*" and \
                    i + 2 < end and self.toks[i + 2][0] == "id" and \
                    self.toks[i + 2][1] not in _TYPE_KEYWORDS and \
                    i + 3 < end and self.toks[i + 3][1] in {"=", ";", ","}:
                symbols[self.toks[i + 2][1]] = text
                i += 3
                continue

            # guard creation ----------------------------------------------
            if text in self.guard_types and i + 1 < end and \
                    self.toks[i + 1][0] == "id" and i + 2 < end and \
                    self.toks[i + 2][1] in {"(", "{"}:
                f.creates_guard = True
                i += 2
                continue

            # blocking primitives -----------------------------------------
            if text in self.blocking_ids:
                f.blocking.append((text, line))
                i += 1
                continue

            # calls -------------------------------------------------------
            call_paren = -1
            if nxt == "(" and text not in _KEYWORDS:
                call_paren = i + 1
            elif nxt == "<" and text not in _KEYWORDS and \
                    text not in _TYPE_KEYWORDS:
                # explicit template arguments: name<...>(  — skip the
                # balanced angle brackets (bounded, to avoid treating a
                # less-than comparison as a template)
                j = i + 1
                depth = 0
                steps = 0
                while j < end and steps < 24:
                    t = self.toks[j][1]
                    if t == "<":
                        depth += 1
                    elif t == ">":
                        depth -= 1
                        if depth == 0:
                            break
                    elif t in {";", "{", "}"}:
                        break
                    j += 1
                    steps += 1
                if j < end and self.toks[j][1] == ">" and \
                        j + 1 < end and self.toks[j + 1][1] == "(":
                    call_paren = j + 1
            if call_paren >= 0:
                prev = self.toks[i - 1][1] if i > start else ""
                if prev in {".", "->"} and text in ATOMIC_OPS:
                    i = self._record_atomic(f, i, end)
                    continue
                if prev not in {"new", "class", "struct", "enum"}:
                    f.calls.append((text, line))
                i += 1
                continue
            i += 1

    def _new_or_cast_type(self, i: int, end: int) -> Optional[str]:
        if i < end and self.toks[i][1] == "new":
            j = i + 1
            last = None
            while j < end and (self.toks[j][0] == "id" or
                               self.toks[j][1] == "::"):
                if self.toks[j][0] == "id":
                    last = self.toks[j][1]
                j += 1
            return last
        if i < end and self.toks[i][1] == "static_cast":
            # take the outermost type head: last id at template depth 1
            j = i + 1
            last = None
            depth = 0
            while j < end:
                t = self.toks[j][1]
                if t == "<":
                    depth += 1
                elif t == ">":
                    depth -= 1
                    if depth == 0:
                        break
                elif t == "*":
                    break
                elif self.toks[j][0] == "id" and depth == 1 and \
                        t != "const":
                    last = t
                j += 1
            return last
        return None

    def _record_delete(self, f: FuncInfo, i: int, end: int,
                       symbols: Dict[str, str],
                       class_stack: List[str]) -> int:
        line = self.toks[i][2]
        j = i + 1
        if j < end and self.toks[j][1] == "[":
            j = self.match_forward(j, "[", "]") + 1
        target_type: Optional[str] = None
        is_this = False
        expr_parts: List[str] = []
        if j < end and self.toks[j][1] == "this":
            is_this = True
            expr_parts.append("this")
            if class_stack:
                target_type = class_stack[-1]
        else:
            t = self._new_or_cast_type(j, end)
            if t:
                target_type = t
            last_id = None
            steps = 0
            while j < end and self.toks[j][1] != ";" and steps < 48:
                if self.toks[j][0] == "id":
                    last_id = self.toks[j][1]
                expr_parts.append(self.toks[j][1])
                j += 1
                steps += 1
            if target_type is None and last_id is not None:
                target_type = symbols.get(last_id)
        self.model.delete_ops.append(DeleteOp(
            file=self.model.rel, line=line, target_type=target_type,
            target_expr=" ".join(expr_parts[:12]), is_delete_this=is_this,
            enclosing=f.name,
            enclosing_class=class_stack[-1] if class_stack else None,
            in_operator_delete=f.base_name == "operator delete"))
        return j + 1

    def _record_atomic(self, f: FuncInfo, i: int, end: int) -> int:
        op = self.toks[i][1]
        line = self.toks[i][2]
        receiver = self._receiver_text(i - 2)
        close = self.match_forward(i + 1, "(", ")")
        has_order = False
        seq_cst = False
        # Only memory_order tokens that are direct arguments of THIS call
        # count (paren depth 1) — a nested atomic op's order must not
        # satisfy the outer call.
        depth = 0
        j = i + 1
        while j <= close:
            t = self.toks[j][1]
            if t in {"(", "[", "{"}:
                depth += 1
            elif t in {")", "]", "}"}:
                depth -= 1
            elif depth == 1 and "memory_order" in t:
                has_order = True
                if "seq_cst" in t:
                    seq_cst = True
                elif t == "memory_order" and j + 2 <= close and \
                        self.toks[j + 1][1] == "::" and \
                        self.toks[j + 2][1] == "seq_cst":
                    seq_cst = True
            j += 1
        self.model.atomic_ops.append(AtomicOp(
            file=self.model.rel, line=line, op=op, receiver=receiver,
            has_explicit_order=has_order, explicit_seq_cst=seq_cst,
            enclosing=f.name))
        if op == "load" and any(fld in receiver.split()
                                for fld in self.shared_fields):
            f.shared_load_lines.append(line)
        # Do not swallow the argument list: nested atomic ops, calls and
        # deletes inside it must still be scanned.
        return i + 2

    def _receiver_text(self, i: int) -> str:
        """Source-ish text of the postfix expression ending at toks[i]."""
        parts: List[str] = []
        steps = 0
        while i >= 0 and steps < 40:
            t = self.toks[i][1]
            if t == "]":
                open_idx = self.match_back(i, "]", "[")
                parts.insert(0, "[]")
                i = open_idx - 1
                steps += 1
                continue
            if t == ")":
                open_idx = self.match_back(i, ")", "(")
                for k in range(i, open_idx - 1, -1):
                    parts.insert(0, self.toks[k][1])
                i = open_idx - 1
                steps += 1
                continue
            if t == ">":
                j = self._skip_template_back(i)
                parts.insert(0, "<>")
                i = j
                steps += 1
                continue
            if self.toks[i][0] == "id" or t in {"::", ".", "->", "*"}:
                parts.insert(0, t)
                i -= 1
                steps += 1
                continue
            break
        return " ".join(parts)


def analyze_file(path: str, rel: str, cfg: dict) -> FileModel:
    defines = {k: int(v) for k, v in cfg.get("defines", {}).items()}
    raw, annotations, toks = cpptok.lex_file(path, defines)
    model = FileModel(path=path, rel=rel)
    model.annotations = annotations
    model.lines = {i + 1: raw[i] for i in range(len(raw))}
    _Scanner(toks, model, cfg).run()
    return model
