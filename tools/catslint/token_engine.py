"""Fallback frontend: lowers C++ source to the FileModel via lexical
analysis (no compiler needed).

Scope and honesty: this engine understands the subset of C++ this repo is
written in — namespaces, classes with inline members, free/member function
definitions (templates included), constructor initializer lists, lambdas
(attributed to the enclosing function).  It resolves delete-target types
from local declarations, parameters, `new` expressions and casts, and it
builds a per-file call graph by callee base name.  Anything it cannot
resolve it leaves unflagged (conservative); the libclang engine, when
available, resolves those cases with real type information.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Set, Tuple

import cpptok
from model import (ATOMIC_OPS, AtomicOp, DeleteOp, FileModel, FlowEvent,
                   FuncInfo)

_ID_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
               "<<=", ">>="}

_KEYWORDS = {
    "if", "for", "while", "switch", "return", "sizeof", "alignof",
    "decltype", "catch", "new", "delete", "throw", "case", "do", "else",
    "static_assert", "alignas", "co_await", "co_return", "co_yield",
    "assert", "typeid", "goto",
}
_POST_PAREN_QUALIFIERS = {"const", "noexcept", "override", "final",
                          "mutable", "try", "requires"}
_TYPE_KEYWORDS = {
    "const", "constexpr", "static", "inline", "typename", "volatile",
    "unsigned", "signed", "struct", "class", "auto", "register", "extern",
    "thread_local", "friend", "virtual", "explicit",
}


class _FnCtx:
    """Transient per-function dataflow state for the body scan."""

    def __init__(self, symbols: Dict[str, str],
                 order_params: Optional[Set[str]] = None):
        self.symbols = symbols  # var -> pointee type (params + locals)
        self.order_params = order_params or set()  # memory_order params
        self.newed: Set[str] = set()  # vars allocated with `new` here
        self.escaped: Set[str] = set()  # passed to a call / stored away
        self.published: Set[str] = set()  # value argument of an atomic write
        self.loaded: Set[str] = set()  # bound from a shared atomic load
        self.guards: List[Tuple[int, int]] = []  # (generation, brace depth)
        self.gen_counter = 0
        self.depth = 0

    def cur_gen(self) -> int:
        return self.guards[-1][0] if self.guards else 0


class _Scanner:
    def __init__(self, toks: List[cpptok.Token], model: FileModel,
                 cfg: dict):
        self.toks = toks
        self.model = model
        self.cfg = cfg
        self.guard_types = set(cfg.get("guard_types", []))
        self.blocking_ids = set(cfg.get("blocking_identifiers", []))
        self.shared_fields = set(cfg.get("shared_atomic_fields", []))
        self.node_types = set(
            cfg.get("r6", {}).get("node_types",
                                  cfg.get("r3", {}).get("node_types", [])))

    # -- token helpers ----------------------------------------------------

    def match_forward(self, i: int, open_t: str, close_t: str) -> int:
        """Index of the token matching toks[i] == open_t, or len(toks)."""
        depth = 0
        n = len(self.toks)
        while i < n:
            t = self.toks[i][1]
            if t == open_t:
                depth += 1
            elif t == close_t:
                depth -= 1
                if depth == 0:
                    return i
            i += 1
        return n - 1

    def match_back(self, i: int, close_t: str, open_t: str) -> int:
        depth = 0
        while i >= 0:
            t = self.toks[i][1]
            if t == close_t:
                depth += 1
            elif t == open_t:
                depth -= 1
                if depth == 0:
                    return i
            i -= 1
        return 0

    def _skip_template_back(self, i: int) -> int:
        """Given toks[i] == '>', index before the matching '<'."""
        depth = 0
        while i >= 0:
            t = self.toks[i][1]
            if t == ">":
                depth += 1
            elif t == "<":
                depth -= 1
                if depth == 0:
                    return i - 1
            i -= 1
        return -1

    def _name_chain_back(self, i: int) -> Tuple[Optional[str], int]:
        """Reads a (possibly qualified) name ending at toks[i].

        Returns (qualified_name, index_before_chain).  Handles A::B<T>::f,
        ~X, and operator <symbol>/new/delete.
        """
        parts: List[str] = []
        while i >= 0:
            kind, text, _ = self.toks[i]
            if text == ">":
                i = self._skip_template_back(i)
                continue
            if kind == "id":
                name = text
                if i >= 1 and self.toks[i - 1][1] == "~":
                    name = "~" + name
                    i -= 1
                if i >= 1 and self.toks[i - 1][1] == "operator":
                    # operator delete / operator new as a declared name
                    name = "operator " + text
                    i -= 1
                parts.insert(0, name)
                i -= 1
                if i >= 0 and self.toks[i][1] == "::":
                    i -= 1
                    continue
                break
            break
        if not parts:
            return None, i
        return "::".join(parts), i

    # -- function discovery ------------------------------------------------

    def run(self) -> None:
        i = 0
        n = len(self.toks)
        class_stack: List[str] = []
        brace_kinds: List[str] = []  # parallel to open braces: ns/class/other
        while i < n:
            kind, text, line = self.toks[i]
            if text == "enum":
                # skip `enum [class] name [: type] { ... }` entirely
                j = i + 1
                while j < n and self.toks[j][1] != "{":
                    if self.toks[j][1] in {";", "}"}:
                        break
                    j += 1
                if j < n and self.toks[j][1] == "{":
                    i = self.match_forward(j, "{", "}") + 1
                else:
                    i = j + 1
                continue
            if text == "{":
                cls = self._classify_open_brace(i, class_stack)
                if cls == "func":
                    i = self._consume_function(i, class_stack)
                    continue
                brace_kinds.append(cls)
                i += 1
                continue
            if text == "}":
                if brace_kinds:
                    k = brace_kinds.pop()
                    if k == "class" and class_stack:
                        class_stack.pop()
                i += 1
                continue
            i += 1

    def _classify_open_brace(self, i: int,
                             class_stack: List[str]) -> str:
        """Classifies the '{' at index i: ns | class | func | other.

        Side effect: pushes the class name for 'class'.
        """
        j = i - 1
        if j < 0:
            return "other"
        # namespace NAME { / namespace {
        if self.toks[j][1] == "namespace":
            return "ns"
        if self.toks[j][0] == "id" and j >= 1 and \
                self.toks[j - 1][1] == "namespace":
            return "ns"
        # class/struct [attr] NAME [final] [: bases] {
        k = j
        steps = 0
        while k >= 0 and steps < 64:
            t = self.toks[k][1]
            if t in {";", "}", "{", ")"}:
                break
            if t in {"class", "struct", "union"}:
                # find the name right after the keyword; for an
                # out-of-class definition (`struct Outer::Inner {`) the
                # class being defined is the LAST component
                m = k + 1
                while m < i and self.toks[m][0] != "id":
                    m += 1
                while m + 2 < i and self.toks[m + 1][1] == "::" and \
                        self.toks[m + 2][0] == "id":
                    m += 2
                name = self.toks[m][1] if m < i else "<anon>"
                class_stack.append(name)
                return "class"
            k -= 1
            steps += 1
        # function body: '{' preceded by ')' modulo qualifiers, trailing
        # return types and constructor initializer lists.
        k = j
        while k >= 0:
            t = self.toks[k][1]
            if self.toks[k][0] == "id" and t in _POST_PAREN_QUALIFIERS:
                k -= 1
                continue
            if t == ">":  # e.g. noexcept(...) -> T<...>, requires-clauses
                k = self._skip_template_back(k)
                continue
            if t == ")":
                open_idx = self.match_back(k, ")", "(")
                name, _ = self._name_chain_back(open_idx - 1)
                if name is None:
                    return "other"
                base = name.split("::")[-1]
                if base in _KEYWORDS:
                    return "other"
                # constructor initializer-list: walk back over `name(..),`
                # units to the ':' and re-anchor on the signature's ')'
                prev = self._ctor_init_anchor(open_idx)
                if prev is not None:
                    open_idx = self.match_back(prev, ")", "(")
                    name, _ = self._name_chain_back(open_idx - 1)
                    if name is None:
                        return "other"
                return "func"
            if self.toks[k][0] == "id" or t in {"::", "*", "&", "&&"}:
                # possibly a trailing return type: scan further back for ->
                m = k
                steps2 = 0
                while m >= 0 and steps2 < 32:
                    tm = self.toks[m][1]
                    if tm == "->":
                        k = m - 1
                        break
                    if self.toks[m][0] == "id" or tm in {"::", "*", "&",
                                                         ">", "<", ","}:
                        m -= 1
                        steps2 += 1
                        continue
                    return "other"
                else:
                    return "other"
                if m < 0 or steps2 >= 32:
                    return "other"
                continue
            return "other"
        return "other"

    def _ctor_init_anchor(self, open_idx: int) -> Optional[int]:
        """If toks[open_idx] is the '(' of an init-list member, walks the
        list back and returns the index of the signature's ')'."""
        idx = open_idx
        while True:
            name, before = self._name_chain_back(idx - 1)
            if name is None:
                return None
            if before < 0:
                return None
            sep = self.toks[before][1]
            if sep == ",":
                # previous unit: `name(...)` or `name{...}`
                close = before
                while close >= 0 and self.toks[close][1] not in {")", "}"}:
                    close -= 1
                if close < 0:
                    return None
                if self.toks[close][1] == ")":
                    idx = self.match_back(close, ")", "(")
                else:
                    idx = self.match_back(close, "}", "{")
                continue
            if sep == ":":
                prev = before - 1
                while prev >= 0 and self.toks[prev][0] == "id" and \
                        self.toks[prev][1] in _POST_PAREN_QUALIFIERS:
                    prev -= 1
                if prev >= 0 and self.toks[prev][1] == ")":
                    return prev
                return None
            return None

    # -- function body analysis -------------------------------------------

    def _consume_function(self, brace_idx: int,
                          class_stack: List[str]) -> int:
        end_idx = self.match_forward(brace_idx, "{", "}")
        # Re-derive the name and signature span.
        k = brace_idx - 1
        while k >= 0 and self.toks[k][1] != ")":
            if self.toks[k][1] == ">":
                k = self._skip_template_back(k)
                continue
            k -= 1
        open_idx = self.match_back(k, ")", "(")
        anchor = self._ctor_init_anchor(open_idx)
        if anchor is not None:
            k = anchor
            open_idx = self.match_back(k, ")", "(")
        name, _ = self._name_chain_back(open_idx - 1)
        qual = name or "<anon>"
        if class_stack and "::" not in qual:
            qual = "::".join(class_stack) + "::" + qual
        base = qual.split("::")[-1]
        f = FuncInfo(name=qual, base_name=base, file=self.model.rel,
                     def_line=self.toks[open_idx][2],
                     end_line=self.toks[end_idx][2])
        symbols = self._param_types(open_idx, k)
        f.ptr_params = dict(symbols)
        order_params = self._order_params(open_idx, k)
        # Constructor initializer lists run code too (atomic ops, calls):
        # start the scan at the signature's ')' when one is present.
        start = k if anchor is not None else brace_idx
        self._scan_body(f, start, end_idx, symbols, class_stack,
                        order_params)
        f.node_vars = sorted(v for v, t in symbols.items()
                             if t in self.node_types)
        self.model.funcs.append(f)
        return end_idx + 1

    def _param_types(self, open_idx: int, close_idx: int) -> Dict[str, str]:
        """name -> pointee type for `T* name`-shaped parameters."""
        out: Dict[str, str] = {}
        i = open_idx + 1
        while i < close_idx:
            if self.toks[i][1] == "*" and i + 1 < close_idx and \
                    self.toks[i + 1][0] == "id":
                # walk back over const/type chain for the last real type id
                j = i - 1
                while j > open_idx and self.toks[j][1] == "const":
                    j -= 1
                if self.toks[j][1] == ">":
                    j = self._skip_template_back(j)
                if j > open_idx and self.toks[j][0] == "id" and \
                        self.toks[j][1] not in _TYPE_KEYWORDS:
                    nxt = self.toks[i + 1][1]
                    if nxt not in _TYPE_KEYWORDS:
                        out[nxt] = self.toks[j][1]
            i += 1
        return out

    def _order_params(self, open_idx: int, close_idx: int) -> Set[str]:
        """Names of `std::memory_order name` parameters.  Wrapper layers
        (cats::atomic in src/common/catomic.hpp) forward their caller's
        order through such a parameter; an op passing one has an explicit
        — forwarded — order, not a defaulted seq_cst."""
        out: Set[str] = set()
        i = open_idx + 1
        while i < close_idx:
            if self.toks[i][1] == "memory_order" and \
                    self.toks[i + 1][0] == "id":
                out.add(self.toks[i + 1][1])
            i += 1
        return out

    def _scan_body(self, f: FuncInfo, start: int, end: int,
                   symbols: Dict[str, str],
                   class_stack: List[str],
                   order_params: Optional[Set[str]] = None) -> None:
        ctx = _FnCtx(symbols, order_params)
        i = start
        while i < end:
            kind, text, line = self.toks[i]
            # Brace depth drives guard-scope lifetimes (R7): a guard dies
            # when its declaring block closes.
            if text == "{":
                ctx.depth += 1
                i += 1
                continue
            if text == "}":
                ctx.depth -= 1
                while ctx.guards and ctx.guards[-1][1] > ctx.depth:
                    gen, _ = ctx.guards.pop()
                    f.events.append(
                        FlowEvent("guard_close", "", str(gen), line))
                i += 1
                continue
            if kind != "id" and text != "delete":
                i += 1
                continue
            nxt = self.toks[i + 1][1] if i + 1 < end else ""
            prev = self.toks[i - 1][1] if i > start else ""

            # delete expressions ------------------------------------------
            if text == "delete":
                if prev == "operator":
                    i += 1
                    continue
                if prev == "=":  # `= delete;`
                    i += 1
                    continue
                i = self._record_delete(f, i, end, symbols, class_stack)
                continue

            # local declarations: `T* name`, `auto* name = new T`,
            # `auto* name = static_cast<T*>` ------------------------------
            if text == "auto" and nxt == "*" and i + 2 < end and \
                    self.toks[i + 2][0] == "id":
                var = self.toks[i + 2][1]
                j = i + 3
                if j < end and self.toks[j][1] == "=":
                    t = self._new_or_cast_type(j + 1, end)
                    if t:
                        symbols[var] = t
                        if self.toks[j + 1][1] == "new":
                            ctx.newed.add(var)
                            if t in self.node_types:
                                f.events.append(
                                    FlowEvent("new", var, t, line))
                i += 3
                continue
            if kind == "id" and text not in _TYPE_KEYWORDS and \
                    text not in _KEYWORDS and nxt == "*" and \
                    i + 2 < end and self.toks[i + 2][0] == "id" and \
                    self.toks[i + 2][1] not in _TYPE_KEYWORDS and \
                    i + 3 < end and self.toks[i + 3][1] in {"=", ";", ","}:
                var = self.toks[i + 2][1]
                symbols[var] = text
                if self.toks[i + 3][1] == "=" and i + 4 < end and \
                        self.toks[i + 4][1] == "new":
                    ctx.newed.add(var)
                    if text in self.node_types:
                        f.events.append(FlowEvent("new", var, text, line))
                i += 3
                continue

            # guard creation ----------------------------------------------
            if text in self.guard_types and i + 1 < end and \
                    self.toks[i + 1][0] == "id" and i + 2 < end and \
                    self.toks[i + 2][1] in {"(", "{"}:
                f.creates_guard = True
                ctx.gen_counter += 1
                ctx.guards.append((ctx.gen_counter, ctx.depth))
                f.events.append(
                    FlowEvent("guard_open", "", str(ctx.gen_counter), line))
                i += 2
                continue

            # blocking primitives -----------------------------------------
            if text in self.blocking_ids:
                f.blocking.append((text, line))
                i += 1
                continue

            # pointer-variable uses (R6/R7 events) ------------------------
            if text == "return" and i + 1 < end and \
                    self.toks[i + 1][0] == "id":
                rv = self.toks[i + 1][1]
                if rv in ctx.loaded:
                    f.events.append(FlowEvent("use", rv, "", line))
                if rv in ctx.newed:
                    ctx.escaped.add(rv)
                i += 1
                continue
            if nxt in {"->", "."} and text in symbols:
                if text in ctx.loaded:
                    f.events.append(FlowEvent("deref", text, "", line))
                if i + 3 < end and self.toks[i + 2][0] == "id" and \
                        self.toks[i + 3][1] in _ASSIGN_OPS:
                    f.events.append(
                        FlowEvent("field_write", text,
                                  self.toks[i + 2][1], line))
                i += 1
                continue
            if prev == "=" and text in ctx.newed and \
                    nxt in {";", ","}:
                # the fresh node's address is stored somewhere: it escaped
                # — unless the destination is a field of another node that
                # is itself still private (`lb->parent = r` while both are
                # pre-publication), which keeps the object graph private.
                if not (i - 4 >= start and
                        self.toks[i - 2][0] == "id" and
                        self.toks[i - 3][1] in {"->", "."} and
                        self.toks[i - 4][1] in ctx.newed):
                    ctx.escaped.add(text)
                i += 1
                continue

            # calls -------------------------------------------------------
            call_paren = -1
            if nxt == "(" and text not in _KEYWORDS:
                call_paren = i + 1
            elif nxt == "<" and text not in _KEYWORDS and \
                    text not in _TYPE_KEYWORDS:
                # explicit template arguments: name<...>(  — skip the
                # balanced angle brackets (bounded, to avoid treating a
                # less-than comparison as a template)
                j = i + 1
                depth = 0
                steps = 0
                while j < end and steps < 24:
                    t = self.toks[j][1]
                    if t == "<":
                        depth += 1
                    elif t == ">":
                        depth -= 1
                        if depth == 0:
                            break
                    elif t in {";", "{", "}"}:
                        break
                    j += 1
                    steps += 1
                if j < end and self.toks[j][1] == ">" and \
                        j + 1 < end and self.toks[j + 1][1] == "(":
                    call_paren = j + 1
            if call_paren >= 0:
                if prev in {".", "->"} and text in ATOMIC_OPS:
                    i = self._record_atomic(f, i, end, ctx)
                    continue
                if text in {"sim_plain_write", "sim_plain_read"}:
                    self._record_sim_plain(f, text, call_paren, ctx, line)
                    # Scan inside the argument list (deref events, nested
                    # calls) but skip the generic call_arg handling: these
                    # are the simulator's transparent plain-access shims
                    # (src/common/catomic.hpp), not escapes.
                    i = call_paren + 1
                    continue
                if prev not in {"new", "class", "struct", "enum"}:
                    f.calls.append((text, line))
                    for arg in self._direct_args(call_paren):
                        if len(arg) == 1 and arg[0][0] == "id" and \
                                arg[0][1] in symbols:
                            f.events.append(
                                FlowEvent("call_arg", arg[0][1], text,
                                          line))
                            ctx.escaped.add(arg[0][1])
                i += 1
                continue
            i += 1
        # The function's end closes every guard still open.
        end_line = self.toks[end][2] if end < len(self.toks) else 0
        while ctx.guards:
            gen, _ = ctx.guards.pop()
            f.events.append(FlowEvent("guard_close", "", str(gen), end_line))

    def _record_sim_plain(self, f: FuncInfo, callee: str, open_idx: int,
                          ctx: _FnCtx, line: int) -> None:
        """Lowers `cats::sim_plain_write(x->field, v)` / `sim_plain_read(
        x->field)` to the events their unwrapped forms (`x->field = v`,
        `x->field`) would produce, so the dataflow rules (R5 receiver
        tracking, R6 immutability, R0 annotation consumption) see through
        the simulator's instrumentation layer."""
        args = self._direct_args(open_idx)
        if not args:
            return
        dst = args[0]
        if len(dst) != 3 or dst[0][0] != "id" or \
                dst[1][1] not in {"->", "."} or dst[2][0] != "id":
            return
        base, fld = dst[0][1], dst[2][1]
        if callee == "sim_plain_read" or base not in ctx.symbols:
            return  # deref events come from the in-args scan
        f.events.append(FlowEvent("field_write", base, fld, line))
        if len(args) >= 2:
            vid = self._arg_single_id(args[1])
            # Same private-graph exception as a lexical `lb->parent = r`:
            # storing a fresh node into another still-private node keeps
            # the object graph private; anything else escapes the value.
            if vid is not None and vid in ctx.newed and \
                    base not in ctx.newed:
                ctx.escaped.add(vid)

    def _new_or_cast_type(self, i: int, end: int) -> Optional[str]:
        if i < end and self.toks[i][1] == "new":
            j = i + 1
            last = None
            while j < end and (self.toks[j][0] == "id" or
                               self.toks[j][1] == "::"):
                if self.toks[j][0] == "id":
                    last = self.toks[j][1]
                j += 1
            return last
        if i < end and self.toks[i][1] == "static_cast":
            # take the outermost type head: last id at template depth 1
            j = i + 1
            last = None
            depth = 0
            while j < end:
                t = self.toks[j][1]
                if t == "<":
                    depth += 1
                elif t == ">":
                    depth -= 1
                    if depth == 0:
                        break
                elif t == "*":
                    break
                elif self.toks[j][0] == "id" and depth == 1 and \
                        t != "const":
                    last = t
                j += 1
            return last
        return None

    def _record_delete(self, f: FuncInfo, i: int, end: int,
                       symbols: Dict[str, str],
                       class_stack: List[str]) -> int:
        line = self.toks[i][2]
        j = i + 1
        if j < end and self.toks[j][1] == "[":
            j = self.match_forward(j, "[", "]") + 1
        target_type: Optional[str] = None
        is_this = False
        expr_parts: List[str] = []
        if j < end and self.toks[j][1] == "this":
            is_this = True
            expr_parts.append("this")
            if class_stack:
                target_type = class_stack[-1]
        else:
            t = self._new_or_cast_type(j, end)
            if t:
                target_type = t
            last_id = None
            steps = 0
            while j < end and self.toks[j][1] != ";" and steps < 48:
                if self.toks[j][0] == "id":
                    last_id = self.toks[j][1]
                expr_parts.append(self.toks[j][1])
                j += 1
                steps += 1
            if target_type is None and last_id is not None:
                target_type = symbols.get(last_id)
        self.model.delete_ops.append(DeleteOp(
            file=self.model.rel, line=line, target_type=target_type,
            target_expr=" ".join(expr_parts[:12]), is_delete_this=is_this,
            enclosing=f.name,
            enclosing_class=class_stack[-1] if class_stack else None,
            in_operator_delete=f.base_name == "operator delete"))
        return j + 1

    def _direct_args(self, open_idx: int) -> List[List[Tuple[str, str, int]]]:
        """Token runs of each top-level argument of the call at toks[open_idx]."""
        close = self.match_forward(open_idx, "(", ")")
        args: List[List[Tuple[str, str, int]]] = []
        cur: List[Tuple[str, str, int]] = []
        depth = 0
        j = open_idx
        while j <= close:
            t = self.toks[j][1]
            if t in {"(", "[", "{"}:
                depth += 1
                if depth > 1:
                    cur.append(self.toks[j])
            elif t in {")", "]", "}"}:
                depth -= 1
                if depth >= 1:
                    cur.append(self.toks[j])
            elif depth == 1 and t == ",":
                args.append(cur)
                cur = []
            else:
                cur.append(self.toks[j])
            j += 1
        if cur:
            args.append(cur)
        return args

    @staticmethod
    def _order_name(arg: List[Tuple[str, str, int]]) -> Optional[str]:
        """The memory-order name an argument denotes, or None.

        Only order tokens at the argument's own top level count — a nested
        atomic op's order (`x.store(y.load(acquire), release)`) must not
        turn the value argument into an order argument.
        """
        depth = 0
        for k, (_kind, t, _ln) in enumerate(arg):
            if t in {"(", "[", "{"}:
                depth += 1
            elif t in {")", "]", "}"}:
                depth -= 1
            elif depth == 0 and t.startswith("memory_order"):
                if t.startswith("memory_order_"):
                    return t[len("memory_order_"):]
                if t == "memory_order" and k + 2 < len(arg) and \
                        arg[k + 1][1] == "::":
                    return arg[k + 2][1]
        return None

    @staticmethod
    def _arg_single_id(arg: List[Tuple[str, str, int]]) -> Optional[str]:
        if len(arg) == 1 and arg[0][0] == "id":
            return arg[0][1]
        return None

    def _record_atomic(self, f: FuncInfo, i: int, end: int,
                       ctx: _FnCtx) -> int:
        op = self.toks[i][1]
        line = self.toks[i][2]
        rstart, receiver = self._receiver_span(i - 2)
        args = self._direct_args(i + 1)
        orders: List[str] = []
        value_args: List[List[Tuple[str, str, int]]] = []
        for arg in args:
            name = self._order_name(arg)
            if name is None:
                vid = self._arg_single_id(arg)
                if vid is not None and vid in ctx.order_params:
                    name = "forwarded"
            if name is not None:
                orders.append(name)
            else:
                value_args.append(arg)
        has_order = bool(orders)
        seq_cst = "seq_cst" in orders

        recv_ids = [p for p in receiver.split() if _ID_RE.fullmatch(p)]
        field = recv_ids[-1] if recv_ids else ""
        base = recv_ids[0] if recv_ids else ""

        # The value whose address this op makes reachable (if any).
        val: Optional[List[Tuple[str, str, int]]] = None
        is_cas = op.startswith("compare_exchange")
        if op in {"store", "exchange"} and value_args:
            val = value_args[0]
        elif is_cas and len(value_args) >= 2:
            val = value_args[1]
        stores_ptr = False
        if val:
            vid = self._arg_single_id(val)
            if val[0][1] == "new":
                stores_ptr = True
            elif vid is not None and vid in ctx.symbols:
                stores_ptr = True

        recv_unpub = base in ctx.newed and base not in ctx.escaped and \
            base not in ctx.published
        # A bare-member (or this->member) op inside a constructor initializes
        # an object that cannot be reachable yet.
        if not recv_unpub and (len(recv_ids) == 1 or base == "this"):
            parts = f.name.split("::")
            if len(parts) >= 2 and parts[-1] == parts[-2]:
                recv_unpub = True

        self.model.atomic_ops.append(AtomicOp(
            file=self.model.rel, line=line, op=op, receiver=receiver,
            has_explicit_order=has_order, explicit_seq_cst=seq_cst,
            enclosing=f.name, field=field, orders=tuple(orders),
            stores_pointer=stores_ptr, receiver_unpublished=recv_unpub))

        # Flow events ----------------------------------------------------
        if val:
            vid = self._arg_single_id(val)
            if vid is not None and vid in ctx.symbols:
                f.events.append(FlowEvent("publish", vid, field, line))
                ctx.published.add(vid)
        if is_cas and value_args:
            eid = self._arg_single_id(value_args[0])
            if eid is not None:
                f.events.append(
                    FlowEvent("cas_expected", eid, str(ctx.cur_gen()),
                              line))

        if op == "load" and any(fld in receiver.split()
                                for fld in self.shared_fields):
            f.shared_load_lines.append(line)
            # `var = <recv>.load(...)` binds the loaded pointer to var
            # under the innermost open guard generation (R7).
            if rstart - 2 >= 0 and self.toks[rstart - 1][1] == "=" and \
                    self.toks[rstart - 2][0] == "id":
                var = self.toks[rstart - 2][1]
                f.events.append(
                    FlowEvent("shared_load", var, str(ctx.cur_gen()),
                              line))
                ctx.loaded.add(var)
                ctx.symbols.setdefault(var, "")
        # Do not swallow the argument list: nested atomic ops, calls and
        # deletes inside it must still be scanned.
        return i + 2

    def _receiver_span(self, i: int) -> Tuple[int, str]:
        """(start token index, source-ish text) of the postfix expression
        ending at toks[i]."""
        parts: List[str] = []
        steps = 0
        while i >= 0 and steps < 40:
            t = self.toks[i][1]
            if t == "]":
                open_idx = self.match_back(i, "]", "[")
                parts.insert(0, "[]")
                i = open_idx - 1
                steps += 1
                continue
            if t == ")":
                open_idx = self.match_back(i, ")", "(")
                for k in range(i, open_idx - 1, -1):
                    parts.insert(0, self.toks[k][1])
                i = open_idx - 1
                steps += 1
                continue
            if t == ">":
                j = self._skip_template_back(i)
                parts.insert(0, "<>")
                i = j
                steps += 1
                continue
            if self.toks[i][0] == "id" or t in {"::", ".", "->", "*"}:
                parts.insert(0, t)
                i -= 1
                steps += 1
                continue
            break
        return i + 1, " ".join(parts)

    def _receiver_text(self, i: int) -> str:
        return self._receiver_span(i)[1]


def analyze_file(path: str, rel: str, cfg: dict) -> FileModel:
    defines = {k: int(v) for k, v in cfg.get("defines", {}).items()}
    raw, annotations, toks = cpptok.lex_file(path, defines)
    model = FileModel(path=path, rel=rel)
    model.annotations = annotations
    model.lines = {i + 1: raw[i] for i in range(len(raw))}
    _Scanner(toks, model, cfg).run()
    return model
