"""The four cats-lint rules, evaluated over the engine-independent
FileModel.

R1 explicit-memory-order  — no defaulted (or unexplained explicit) seq_cst.
R2 guard-required         — shared-atomic pointer loads only in functions
                            proven to run under an EBR guard / hazard slot
                            (directly, by annotation, or because every
                            caller chain in the TU is proven).
R3 retire-not-delete      — no direct delete of reclaimable node types
                            outside src/reclaim/ and poisoning deleters.
R4 no-blocking-in-lockfree— no blocking primitive reachable from the
                            lock-free entry points.
"""

from __future__ import annotations

import fnmatch
from typing import Dict, List, Set

from model import (FileModel, Finding, FuncInfo, fingerprint, suppressed)

ALL_RULES = ("R1", "R2", "R3", "R4")


def _line_text(model: FileModel, line: int) -> str:
    return model.lines.get(line, "")


def _path_matches(rel: str, patterns: List[str]) -> bool:
    return any(fnmatch.fnmatch(rel, pat) or rel.startswith(pat.rstrip("*"))
               for pat in patterns)


def _mk(model: FileModel, rule: str, line: int, msg: str) -> Finding:
    return Finding(rule=rule, file=model.rel, line=line, message=msg,
                   fingerprint=fingerprint(rule, model.rel,
                                           _line_text(model, line)))


# ---------------------------------------------------------------------------
# R1
# ---------------------------------------------------------------------------

def check_r1(model: FileModel, cfg: dict) -> List[Finding]:
    out: List[Finding] = []
    if _path_matches(model.rel, cfg.get("r1", {}).get("exempt_paths", [])):
        return out
    for op in model.atomic_ops:
        anns = model.annotations_for_line(op.line)
        if not op.has_explicit_order:
            if suppressed(anns, "R1", "seq_cst"):
                continue
            out.append(_mk(
                model, "R1", op.line,
                f"atomic {op.op}() relies on the defaulted "
                f"std::memory_order_seq_cst; pass an explicit order or "
                f"annotate `// catslint: seq_cst(<reason>)`"))
        elif op.explicit_seq_cst:
            if suppressed(anns, "R1", "seq_cst"):
                continue
            out.append(_mk(
                model, "R1", op.line,
                f"atomic {op.op}() uses memory_order_seq_cst without a "
                f"`// catslint: seq_cst(<reason>)` justification"))
    return out


# ---------------------------------------------------------------------------
# R2
# ---------------------------------------------------------------------------

def _sccs(nodes: List[str], edges: Dict[str, Set[str]]) -> List[Set[str]]:
    """Tarjan SCCs (iterative) over the caller graph."""
    index: Dict[str, int] = {}
    low: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    result: List[Set[str]] = []
    counter = [0]

    for root in nodes:
        if root in index:
            continue
        work = [(root, iter(sorted(edges.get(root, ()))))]
        index[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            v, it = work[-1]
            advanced = False
            for w in it:
                if w not in index:
                    index[w] = low[w] = counter[0]
                    counter[0] += 1
                    stack.append(w)
                    on_stack.add(w)
                    work.append((w, iter(sorted(edges.get(w, ())))))
                    advanced = True
                    break
                if w in on_stack:
                    low[v] = min(low[v], index[w])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[v])
            if low[v] == index[v]:
                comp: Set[str] = set()
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    comp.add(w)
                    if w == v:
                        break
                result.append(comp)
    return result


def guard_coverage(model: FileModel) -> Dict[str, bool]:
    """For every function (by base name): is it proven to run under a
    guard?  True when the function creates a guard, is annotated
    under-guard/quiescent, or when every caller-SCC above it is covered.

    Computed on the SCC condensation of the per-TU call graph so mutual
    recursion neither loops forever nor self-certifies: an SCC with no
    external callers is covered only if it contains a seed.
    """
    funcs: Dict[str, FuncInfo] = {}
    for f in model.funcs:
        funcs.setdefault(f.base_name, f)
    defined = set(funcs)

    seeds: Set[str] = set()
    for f in model.funcs:
        directives = {a.directive for a in model.annotations_for_func(f)}
        if f.creates_guard or "under-guard" in directives or \
                "quiescent" in directives:
            seeds.add(f.base_name)

    callees: Dict[str, Set[str]] = {n: set() for n in defined}
    callers: Dict[str, Set[str]] = {n: set() for n in defined}
    for f in model.funcs:
        for callee, _ in f.calls:
            if callee in defined and callee != f.base_name:
                callees[f.base_name].add(callee)
                callers[callee].add(f.base_name)

    comps = _sccs(sorted(defined), callees)
    comp_of: Dict[str, int] = {}
    for idx, comp in enumerate(comps):
        for n in comp:
            comp_of[n] = idx

    covered: Dict[int, bool] = {}

    def comp_covered(idx: int, visiting: Set[int]) -> bool:
        if idx in covered:
            return covered[idx]
        comp = comps[idx]
        if comp & seeds:
            covered[idx] = True
            return True
        pred_comps = {comp_of[c] for n in comp for c in callers[n]
                      if comp_of[c] != idx}
        if not pred_comps:
            covered[idx] = False
            return False
        visiting.add(idx)
        ok = all(p not in visiting and comp_covered(p, visiting)
                 for p in pred_comps)
        visiting.discard(idx)
        covered[idx] = ok
        return ok

    return {n: comp_covered(comp_of[n], set()) for n in defined}


def check_r2(model: FileModel, cfg: dict) -> List[Finding]:
    out: List[Finding] = []
    r2 = cfg.get("r2", {})
    if not _path_matches(model.rel, r2.get("paths", [])):
        return out
    if _path_matches(model.rel, r2.get("exempt_paths", [])):
        return out
    coverage = guard_coverage(model)
    for f in model.funcs:
        if not f.shared_load_lines:
            continue
        if coverage.get(f.base_name, False):
            continue
        line = f.shared_load_lines[0]
        anns = model.annotations_for_line(line) + \
            model.annotations_for_func(f)
        if suppressed(anns, "R2", "under-guard") or \
                suppressed(anns, "R2", "quiescent"):
            continue
        out.append(_mk(
            model, "R2", line,
            f"{f.name}() loads a shared atomic pointer but neither it nor "
            f"every in-TU caller chain holds an EBR Guard/hazard slot; "
            f"add a guard or annotate the function "
            f"`// catslint: under-guard` / `// catslint: "
            f"quiescent(<reason>)`"))
    return out


# ---------------------------------------------------------------------------
# R3
# ---------------------------------------------------------------------------

def check_r3(model: FileModel, cfg: dict) -> List[Finding]:
    out: List[Finding] = []
    r3 = cfg.get("r3", {})
    if _path_matches(model.rel, r3.get("exempt_paths", [])):
        return out
    node_types = set(r3.get("node_types", []))
    for op in model.delete_ops:
        if op.in_operator_delete:
            continue
        t = op.target_type
        if op.is_delete_this and op.enclosing_class in node_types:
            t = op.enclosing_class
        if t not in node_types:
            continue
        anns = model.annotations_for_line(op.line)
        if suppressed(anns, "R3", "direct-delete"):
            continue
        out.append(_mk(
            model, "R3", op.line,
            f"direct delete of reclaimable node type `{t}` "
            f"(`delete {op.target_expr.strip()}`); route it through "
            f"Domain::retire or annotate "
            f"`// catslint: direct-delete(<reason>)`"))
    return out


# ---------------------------------------------------------------------------
# R4
# ---------------------------------------------------------------------------

def check_r4(model: FileModel, cfg: dict) -> List[Finding]:
    out: List[Finding] = []
    r4 = cfg.get("r4", {})
    if not _path_matches(model.rel, r4.get("paths", [])):
        return out
    if _path_matches(model.rel, r4.get("exempt_paths", [])):
        return out
    entry_points = set(r4.get("entry_points", []))

    funcs: Dict[str, FuncInfo] = {}
    for f in model.funcs:
        funcs.setdefault(f.base_name, f)
    callees: Dict[str, Set[str]] = {}
    for f in model.funcs:
        callees.setdefault(f.base_name, set()).update(
            c for c, _ in f.calls if c in funcs)

    reachable: Set[str] = set()
    work = [n for n in funcs if n in entry_points]
    while work:
        n = work.pop()
        if n in reachable:
            continue
        reachable.add(n)
        work.extend(callees.get(n, ()))

    for f in model.funcs:
        if f.base_name not in reachable or not f.blocking:
            continue
        for what, line in f.blocking:
            anns = model.annotations_for_line(line) + \
                model.annotations_for_func(f)
            if suppressed(anns, "R4", "blocking-ok"):
                continue
            out.append(_mk(
                model, "R4", line,
                f"blocking primitive `{what}` in {f.name}(), reachable "
                f"from lock-free entry points; lock-free operations must "
                f"not block (annotate `// catslint: blocking-ok(<reason>)` "
                f"if deliberate)"))
    return out


_CHECKS = {"R1": check_r1, "R2": check_r2, "R3": check_r3, "R4": check_r4}


def run_rules(model: FileModel, cfg: dict,
              enabled: Set[str]) -> List[Finding]:
    out: List[Finding] = []
    for rule in ALL_RULES:
        if rule in enabled:
            out.extend(_CHECKS[rule](model, cfg))
    return sorted(out, key=lambda f: (f.file, f.line, f.rule))
