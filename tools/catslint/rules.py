"""The cats-lint rules, evaluated over the engine-independent FileModel.

R0 dangling-annotation    — every `// catslint:` annotation must still
                            suppress (or justify) a live finding.
R1 explicit-memory-order  — no defaulted (or unexplained explicit) seq_cst.
R2 guard-required         — shared-atomic pointer loads only in functions
                            proven to run under an EBR guard / hazard slot
                            (directly, by annotation, or because every
                            caller chain in the TU is proven).
R3 retire-not-delete      — no direct delete of reclaimable node types
                            outside src/reclaim/ and poisoning deleters.
R4 no-blocking-in-lockfree— no blocking primitive reachable from the
                            lock-free entry points.
R5 release-acquire-pairing— per-field order matrix over every atomic site
                            in the analyzed set: a release-side write needs
                            an acquire-side reader (and vice versa), a
                            relaxed store must not publish a pointer, and a
                            seq_cst justification claiming a fence pair must
                            name a partner that still exists.
R6 immutable-after-publish— no non-atomic field write on a node reachable
                            after the node escaped via an atomic store/CAS
                            (intra-function flow + call-graph closure).
R7 guard-lifetime         — a pointer loaded under a Guard/Holder must not
                            flow past the guard's scope, and a CAS expected
                            value must come from the current guard
                            generation (ABA discipline).

Rules R0-R4, R6 and R7 are per-file; R5 aggregates the order matrix over
the whole analyzed set, and R0 runs last because it consumes the `used`
marks the other rules leave on annotations.  `run_all` therefore always
EVALUATES every rule and only filters what is EMITTED by the enabled set —
disabling a rule must not fabricate dangling annotations.
"""

from __future__ import annotations

import fnmatch
import re
from typing import Dict, List, Set, Tuple

from model import (ACQUIRE_SIDE, RELEASE_SIDE, FileModel, Finding, FuncInfo,
                   fingerprint, suppressed)

ALL_RULES = ("R0", "R1", "R2", "R3", "R4", "R5", "R6", "R7")


def _line_text(model: FileModel, line: int) -> str:
    return model.lines.get(line, "")


def _path_matches(rel: str, patterns: List[str]) -> bool:
    return any(fnmatch.fnmatch(rel, pat) or rel.startswith(pat.rstrip("*"))
               for pat in patterns)


def _mk(model: FileModel, rule: str, line: int, msg: str) -> Finding:
    return Finding(rule=rule, file=model.rel, line=line, message=msg,
                   fingerprint=fingerprint(rule, model.rel,
                                           _line_text(model, line)))


# ---------------------------------------------------------------------------
# R1
# ---------------------------------------------------------------------------

def check_r1(model: FileModel, cfg: dict) -> List[Finding]:
    out: List[Finding] = []
    if _path_matches(model.rel, cfg.get("r1", {}).get("exempt_paths", [])):
        return out
    for op in model.atomic_ops:
        anns = model.annotations_for_line(op.line)
        if not op.has_explicit_order:
            if suppressed(anns, "R1", "seq_cst"):
                continue
            out.append(_mk(
                model, "R1", op.line,
                f"atomic {op.op}() relies on the defaulted "
                f"std::memory_order_seq_cst; pass an explicit order or "
                f"annotate `// catslint: seq_cst(<reason>)`"))
        elif op.explicit_seq_cst:
            if suppressed(anns, "R1", "seq_cst"):
                continue
            out.append(_mk(
                model, "R1", op.line,
                f"atomic {op.op}() uses memory_order_seq_cst without a "
                f"`// catslint: seq_cst(<reason>)` justification"))
    return out


# ---------------------------------------------------------------------------
# R2
# ---------------------------------------------------------------------------

def _sccs(nodes: List[str], edges: Dict[str, Set[str]]) -> List[Set[str]]:
    """Tarjan SCCs (iterative) over the caller graph."""
    index: Dict[str, int] = {}
    low: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    result: List[Set[str]] = []
    counter = [0]

    for root in nodes:
        if root in index:
            continue
        work = [(root, iter(sorted(edges.get(root, ()))))]
        index[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            v, it = work[-1]
            advanced = False
            for w in it:
                if w not in index:
                    index[w] = low[w] = counter[0]
                    counter[0] += 1
                    stack.append(w)
                    on_stack.add(w)
                    work.append((w, iter(sorted(edges.get(w, ())))))
                    advanced = True
                    break
                if w in on_stack:
                    low[v] = min(low[v], index[w])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[v])
            if low[v] == index[v]:
                comp: Set[str] = set()
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    comp.add(w)
                    if w == v:
                        break
                result.append(comp)
    return result


def guard_coverage(model: FileModel) -> Dict[str, bool]:
    """For every function (by base name): is it proven to run under a
    guard?  True when the function creates a guard, is annotated
    under-guard/quiescent, or when every caller-SCC above it is covered.

    Computed on the SCC condensation of the per-TU call graph so mutual
    recursion neither loops forever nor self-certifies: an SCC with no
    external callers is covered only if it contains a seed.
    """
    funcs: Dict[str, FuncInfo] = {}
    for f in model.funcs:
        funcs.setdefault(f.base_name, f)
    defined = set(funcs)

    seeds: Set[str] = set()
    for f in model.funcs:
        directives = {a.directive for a in model.annotations_for_func(f)}
        if f.creates_guard or "under-guard" in directives or \
                "quiescent" in directives:
            seeds.add(f.base_name)

    callees: Dict[str, Set[str]] = {n: set() for n in defined}
    callers: Dict[str, Set[str]] = {n: set() for n in defined}
    for f in model.funcs:
        for callee, _ in f.calls:
            if callee in defined and callee != f.base_name:
                callees[f.base_name].add(callee)
                callers[callee].add(f.base_name)

    comps = _sccs(sorted(defined), callees)
    comp_of: Dict[str, int] = {}
    for idx, comp in enumerate(comps):
        for n in comp:
            comp_of[n] = idx

    covered: Dict[int, bool] = {}

    def comp_covered(idx: int, visiting: Set[int]) -> bool:
        if idx in covered:
            return covered[idx]
        comp = comps[idx]
        if comp & seeds:
            covered[idx] = True
            return True
        pred_comps = {comp_of[c] for n in comp for c in callers[n]
                      if comp_of[c] != idx}
        if not pred_comps:
            covered[idx] = False
            return False
        visiting.add(idx)
        ok = all(p not in visiting and comp_covered(p, visiting)
                 for p in pred_comps)
        visiting.discard(idx)
        covered[idx] = ok
        return ok

    return {n: comp_covered(comp_of[n], set()) for n in defined}


def check_r2(model: FileModel, cfg: dict) -> List[Finding]:
    out: List[Finding] = []
    r2 = cfg.get("r2", {})
    if not _path_matches(model.rel, r2.get("paths", [])):
        return out
    if _path_matches(model.rel, r2.get("exempt_paths", [])):
        return out
    coverage = guard_coverage(model)
    for f in model.funcs:
        if not f.shared_load_lines:
            continue
        if coverage.get(f.base_name, False):
            continue
        line = f.shared_load_lines[0]
        anns = model.annotations_for_line(line) + \
            model.annotations_for_func(f)
        if suppressed(anns, "R2", "under-guard") or \
                suppressed(anns, "R2", "quiescent"):
            continue
        out.append(_mk(
            model, "R2", line,
            f"{f.name}() loads a shared atomic pointer but neither it nor "
            f"every in-TU caller chain holds an EBR Guard/hazard slot; "
            f"add a guard or annotate the function "
            f"`// catslint: under-guard` / `// catslint: "
            f"quiescent(<reason>)`"))
    return out


# ---------------------------------------------------------------------------
# R3
# ---------------------------------------------------------------------------

def check_r3(model: FileModel, cfg: dict) -> List[Finding]:
    out: List[Finding] = []
    r3 = cfg.get("r3", {})
    if _path_matches(model.rel, r3.get("exempt_paths", [])):
        return out
    node_types = set(r3.get("node_types", []))
    for op in model.delete_ops:
        if op.in_operator_delete:
            continue
        t = op.target_type
        if op.is_delete_this and op.enclosing_class in node_types:
            t = op.enclosing_class
        if t not in node_types:
            continue
        anns = model.annotations_for_line(op.line)
        if suppressed(anns, "R3", "direct-delete"):
            continue
        out.append(_mk(
            model, "R3", op.line,
            f"direct delete of reclaimable node type `{t}` "
            f"(`delete {op.target_expr.strip()}`); route it through "
            f"Domain::retire or annotate "
            f"`// catslint: direct-delete(<reason>)`"))
    return out


# ---------------------------------------------------------------------------
# R4
# ---------------------------------------------------------------------------

def check_r4(model: FileModel, cfg: dict) -> List[Finding]:
    out: List[Finding] = []
    r4 = cfg.get("r4", {})
    if not _path_matches(model.rel, r4.get("paths", [])):
        return out
    if _path_matches(model.rel, r4.get("exempt_paths", [])):
        return out
    entry_points = set(r4.get("entry_points", []))

    funcs: Dict[str, FuncInfo] = {}
    for f in model.funcs:
        funcs.setdefault(f.base_name, f)
    callees: Dict[str, Set[str]] = {}
    for f in model.funcs:
        callees.setdefault(f.base_name, set()).update(
            c for c, _ in f.calls if c in funcs)

    reachable: Set[str] = set()
    work = [n for n in funcs if n in entry_points]
    while work:
        n = work.pop()
        if n in reachable:
            continue
        reachable.add(n)
        work.extend(callees.get(n, ()))

    for f in model.funcs:
        if f.base_name not in reachable or not f.blocking:
            continue
        for what, line in f.blocking:
            anns = model.annotations_for_line(line) + \
                model.annotations_for_func(f)
            if suppressed(anns, "R4", "blocking-ok"):
                continue
            out.append(_mk(
                model, "R4", line,
                f"blocking primitive `{what}` in {f.name}(), reachable "
                f"from lock-free entry points; lock-free operations must "
                f"not block (annotate `// catslint: blocking-ok(<reason>)` "
                f"if deliberate)"))
    return out


# ---------------------------------------------------------------------------
# R5 — whole-program release/acquire pairing (per-field order matrix)
# ---------------------------------------------------------------------------

_PAIRS_WITH_RE = re.compile(r"pairs\s+with\s+(\w+)")


def check_r5(models: List[FileModel], cfg: dict) -> List[Finding]:
    out: List[Finding] = []
    r5 = cfg.get("r5", {})
    exempt = r5.get("exempt_paths", [])

    # The order matrix: field -> every atomic site targeting it, across
    # the whole analyzed set (publishers and readers usually live in
    # different files, so per-file grouping would see only half the pair).
    by_field: Dict[str, List[Tuple[FileModel, object]]] = {}
    for m in models:
        if _path_matches(m.rel, exempt):
            continue
        for op in m.atomic_ops:
            if op.field:
                by_field.setdefault(op.field, []).append((m, op))

    for field in sorted(by_field):
        sites = by_field[field]
        # Explicit release-side writes (seq_cst writes are audited by R1's
        # justification machinery instead, and defaulted orders would make
        # every write-only counter fire).
        expl_release_writes = [
            (m, op) for m, op in sites
            if op.orders and op.write_order() in {"release", "acq_rel"}]
        acquire_readers = [
            (m, op) for m, op in sites if op.read_order() in ACQUIRE_SIDE]
        expl_acquire_reads = [
            (m, op) for m, op in sites
            if op.orders and op.read_order() in {"acquire", "consume"}]
        release_writers = [
            (m, op) for m, op in sites if op.write_order() in RELEASE_SIDE]
        any_writes = [
            (m, op) for m, op in sites if op.write_order() is not None]

        # (a) release store nobody acquires: the release fence orders
        # nothing and the readers see unsynchronized data.
        if expl_release_writes and not acquire_readers:
            m, op = expl_release_writes[0]
            anns = m.annotations_for_line(op.line)
            if not suppressed(anns, "R5", "pairing"):
                out.append(_mk(
                    m, "R5", op.line,
                    f"release-side {op.op}() on atomic field `{field}` has "
                    f"no acquire-side reader anywhere in the analyzed set; "
                    f"the release order synchronizes nothing (annotate "
                    f"`// catslint: pairing(<reason>)` if the pair lives "
                    f"outside the analyzed set)"))

        # (b) acquire load with writers but no release-side writer: the
        # acquire can never synchronize with the stores it observes.
        if expl_acquire_reads and any_writes and not release_writers:
            m, op = expl_acquire_reads[0]
            anns = m.annotations_for_line(op.line)
            if not suppressed(anns, "R5", "pairing"):
                out.append(_mk(
                    m, "R5", op.line,
                    f"acquire-side {op.op}() on atomic field `{field}` but "
                    f"every write to it is weaker than release; the acquire "
                    f"cannot synchronize-with any store (annotate "
                    f"`// catslint: pairing(<reason>)` if deliberate)"))

        # (c) relaxed store publishing a pointer: readers can reach the
        # pointee before its initialization is visible.  Pre-publication
        # initialization of a node still private to this function is
        # exempt (the publishing CAS/store provides the release edge).
        for m, op in sites:
            if op.write_order() != "relaxed" or not op.stores_pointer:
                continue
            if op.receiver_unpublished:
                continue
            anns = m.annotations_for_line(op.line)
            if suppressed(anns, "R5", "pairing") or \
                    suppressed(anns, "R5", "pre-publish"):
                continue
            out.append(_mk(
                m, "R5", op.line,
                f"relaxed {op.op}() publishes a pointer through atomic "
                f"field `{field}`; a reader can dereference the node "
                f"before its fields are visible — use release (or annotate "
                f"`// catslint: pre-publish` if the object is still "
                f"private)"))

    # (d) seq_cst justifications claiming a fence pair with a partner site
    # that no longer exists: the justification has rotted.
    valid_partners: Set[str] = set(by_field)
    for m in models:
        for f in m.funcs:
            valid_partners.add(f.base_name)
    for m in models:
        if _path_matches(m.rel, exempt):
            continue
        for line in sorted(m.annotations):
            for a in m.annotations[line]:
                if a.directive != "seq_cst" or not a.reason:
                    continue
                match = _PAIRS_WITH_RE.search(a.reason)
                if not match:
                    continue
                partner = match.group(1)
                if partner not in valid_partners:
                    out.append(_mk(
                        m, "R5", a.line,
                        f"seq_cst justification claims it `pairs with "
                        f"{partner}`, but no function or atomic field of "
                        f"that name exists in the analyzed set; update the "
                        f"justification"))
    return out


# ---------------------------------------------------------------------------
# R6 — immutability after publication
# ---------------------------------------------------------------------------

def _escape_closures(model: FileModel) -> Tuple[Set[str], Set[str]]:
    """(publishers, mutators): functions that atomically publish /
    non-atomically mutate a pointer parameter, closed over the per-TU
    call graph (f passing its param to a publisher is itself one)."""
    publishers: Set[str] = set()
    mutators: Set[str] = set()
    changed = True
    while changed:
        changed = False
        for f in model.funcs:
            for ev in f.events:
                if ev.var not in f.ptr_params:
                    continue
                if ev.kind == "publish" or (
                        ev.kind == "call_arg" and ev.aux in publishers):
                    if f.base_name not in publishers:
                        publishers.add(f.base_name)
                        changed = True
                if ev.kind == "field_write" or (
                        ev.kind == "call_arg" and ev.aux in mutators):
                    if f.base_name not in mutators:
                        mutators.add(f.base_name)
                        changed = True
    return publishers, mutators


def check_r6(model: FileModel, cfg: dict) -> List[Finding]:
    out: List[Finding] = []
    r6 = cfg.get("r6", {})
    if _path_matches(model.rel, r6.get("exempt_paths", [])):
        return out
    node_types = set(r6.get("node_types",
                            cfg.get("r3", {}).get("node_types", [])))
    if not node_types:
        return out
    publishers, mutators = _escape_closures(model)

    for f in model.funcs:
        tracked = set(f.node_vars)
        if not tracked:
            continue
        published: Set[str] = set()
        for ev in f.events:
            if ev.var not in tracked:
                continue
            if ev.kind == "field_write" and ev.var in published:
                anns = model.annotations_for_line(ev.line) + \
                    model.annotations_for_func(f)
                if suppressed(anns, "R6", "pre-publish"):
                    continue
                out.append(_mk(
                    model, "R6", ev.line,
                    f"non-atomic write `{ev.var}->{ev.aux} = ...` after "
                    f"`{ev.var}` was published by an atomic store/CAS in "
                    f"{f.name}(); published nodes are immutable (annotate "
                    f"`// catslint: pre-publish(<reason>)` if the write is "
                    f"ordered before the edge that makes it reachable)"))
            elif ev.kind == "call_arg":
                if ev.aux in mutators and ev.var in published:
                    anns = model.annotations_for_line(ev.line) + \
                        model.annotations_for_func(f)
                    if not suppressed(anns, "R6", "pre-publish"):
                        out.append(_mk(
                            model, "R6", ev.line,
                            f"`{ev.var}` was published by an atomic "
                            f"store/CAS in {f.name}() and is then passed "
                            f"to `{ev.aux}()`, which writes its fields "
                            f"non-atomically; published nodes are "
                            f"immutable (annotate `// catslint: "
                            f"pre-publish(<reason>)` if deliberate)"))
                if ev.aux in publishers:
                    published.add(ev.var)
            elif ev.kind == "publish":
                published.add(ev.var)
    return out


# ---------------------------------------------------------------------------
# R7 — guard lifetime / ABA generations
# ---------------------------------------------------------------------------

def check_r7(model: FileModel, cfg: dict) -> List[Finding]:
    out: List[Finding] = []
    if _path_matches(model.rel,
                     cfg.get("r7", {}).get("exempt_paths", [])):
        return out
    for f in model.funcs:
        binding: Dict[str, int] = {}  # var -> guard generation it was
        #                               loaded under (0 = unguarded, R2's
        #                               problem, not R7's)
        open_gens: Set[int] = set()
        for ev in f.events:
            if ev.kind == "guard_open":
                open_gens.add(int(ev.aux))
            elif ev.kind == "guard_close":
                open_gens.discard(int(ev.aux))
            elif ev.kind == "shared_load":
                gen = int(ev.aux)
                if gen > 0:
                    binding[ev.var] = gen
                else:
                    binding.pop(ev.var, None)
            elif ev.kind in {"deref", "use"}:
                gen = binding.get(ev.var, 0)
                if gen <= 0 or gen in open_gens:
                    continue
                anns = model.annotations_for_line(ev.line) + \
                    model.annotations_for_func(f)
                if suppressed(anns, "R7", "pinned"):
                    continue
                what = "dereferenced" if ev.kind == "deref" else "returned"
                out.append(_mk(
                    model, "R7", ev.line,
                    f"`{ev.var}` was loaded under a guard whose scope has "
                    f"ended, but is {what} here in {f.name}(); the node "
                    f"may already be reclaimed (annotate `// catslint: "
                    f"pinned(<reason>)` if the pointer is kept alive "
                    f"another way)"))
            elif ev.kind == "cas_expected":
                gen = binding.get(ev.var, 0)
                if gen <= 0 or int(ev.aux) == gen:
                    continue
                anns = model.annotations_for_line(ev.line) + \
                    model.annotations_for_func(f)
                if suppressed(anns, "R7", "pinned"):
                    continue
                out.append(_mk(
                    model, "R7", ev.line,
                    f"CAS in {f.name}() uses `{ev.var}` as its expected "
                    f"value, but `{ev.var}` was read under a different "
                    f"guard generation; the address may have been "
                    f"reclaimed and reused (ABA) — re-read it under the "
                    f"current guard or annotate `// catslint: "
                    f"pinned(<reason>)`"))
    return out


# ---------------------------------------------------------------------------
# R0 — dangling annotations (runs last; consumes the `used` marks)
# ---------------------------------------------------------------------------

def _mark_guard_seeds(model: FileModel) -> None:
    """Marks under-guard/quiescent annotations used when they anchor R2
    coverage: guard_coverage() reads them as seeds without going through
    suppressed(), so a seed whose callee closure really reaches shared
    loads must not be reported as dangling."""
    funcs: Dict[str, FuncInfo] = {}
    for f in model.funcs:
        funcs.setdefault(f.base_name, f)
    callees: Dict[str, Set[str]] = {}
    for f in model.funcs:
        callees.setdefault(f.base_name, set()).update(
            c for c, _ in f.calls if c in funcs)

    memo: Dict[str, bool] = {}

    def closure_has_loads(name: str, trail: Set[str]) -> bool:
        if name in memo:
            return memo[name]
        if name in trail:
            return False
        trail.add(name)
        f = funcs[name]
        ok = bool(f.shared_load_lines) or any(
            closure_has_loads(c, trail) for c in callees.get(name, ()))
        trail.discard(name)
        memo[name] = ok
        return ok

    for f in model.funcs:
        anns = [a for a in model.annotations_for_func(f)
                if a.directive in {"under-guard", "quiescent"}]
        if anns and closure_has_loads(f.base_name, set()):
            for a in anns:
                a.used = True


def check_r0(models: List[FileModel], cfg: dict) -> List[Finding]:
    out: List[Finding] = []
    r0 = cfg.get("r0", {})
    r2 = cfg.get("r2", {})
    for m in models:
        if _path_matches(m.rel, r2.get("paths", [])) and \
                not _path_matches(m.rel, r2.get("exempt_paths", [])):
            _mark_guard_seeds(m)
    for m in models:
        if _path_matches(m.rel, r0.get("exempt_paths", [])):
            continue
        for line in sorted(m.annotations):
            for a in m.annotations[line]:
                if a.used:
                    continue
                spec = a.directive
                if a.directive == "off" and a.rules:
                    spec += "(" + ",".join(a.rules) + ")"
                out.append(Finding(
                    rule="R0", file=m.rel, line=a.raw_line,
                    message=(
                        f"dangling annotation `// catslint: {spec}`: it no "
                        f"longer suppresses or justifies any finding; "
                        f"remove it (stale justifications hide real "
                        f"regressions)"),
                    fingerprint=fingerprint(
                        "R0", m.rel, _line_text(m, a.raw_line))))
    return out


_CHECKS = {"R1": check_r1, "R2": check_r2, "R3": check_r3, "R4": check_r4}
_PER_FILE = {"R1": check_r1, "R2": check_r2, "R3": check_r3,
             "R4": check_r4, "R6": check_r6, "R7": check_r7}


def run_rules(model: FileModel, cfg: dict,
              enabled: Set[str]) -> List[Finding]:
    """Single-file evaluation of the per-file rules (legacy entry point;
    the driver uses run_all, which adds R5/R0 and whole-set context)."""
    out: List[Finding] = []
    for rule in ("R1", "R2", "R3", "R4"):
        if rule in enabled:
            out.extend(_CHECKS[rule](model, cfg))
    return sorted(out, key=lambda f: (f.file, f.line, f.rule))


def run_all(models: List[FileModel], cfg: dict,
            enabled: Set[str]) -> List[Finding]:
    """Evaluates every rule over the whole analyzed set.

    All rules always RUN — they leave `used` marks on the annotations
    they consume, which R0 needs to be accurate — and `enabled` only
    filters which findings are emitted.
    """
    out: List[Finding] = []
    for m in models:
        for rule in ("R1", "R2", "R3", "R4", "R6", "R7"):
            found = _PER_FILE[rule](m, cfg)
            if rule in enabled:
                out.extend(found)
    found = check_r5(models, cfg)
    if "R5" in enabled:
        out.extend(found)
    found = check_r0(models, cfg)  # last: consumes the used marks
    if "R0" in enabled:
        out.extend(found)
    return sorted(out, key=lambda f: (f.file, f.line, f.rule))
