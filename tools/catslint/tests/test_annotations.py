#!/usr/bin/env python3
"""Annotation-grammar edge cases for cats-lint.

Locks in the parsing and scoping semantics the rules rely on:
  - payload parsing (nested parentheses, hyphenated directive names,
    several directives on one line, unknown directives ignored),
  - effective-line resolution (same-line vs line-above, blank-line
    skipping, block-comment continuation lines),
  - function-scope suppression (an off(...) inside a function covers
    findings in nested lambdas, which the engine attributes to the
    enclosing function),
  - the R0 interaction (a redundant annotation on an already-suppressed
    line is itself reported as dangling).

Token-engine specific (the tests build FileModels directly); the clang
engine shares extract_annotations, so the grammar itself is engine
independent.
"""

import json
import os
import sys
import tempfile
import unittest

HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, os.path.join(HERE, os.pardir))

import cpptok  # noqa: E402
import rules  # noqa: E402
import token_engine  # noqa: E402

with open(os.path.join(HERE, os.pardir, "config.json"),
          encoding="utf-8") as _f:
    CFG = json.load(_f)

# The rel path decides which path-scoped rules apply; impersonate a
# fixture so R2/R4 treat the virtual file like the real corpus.
REL = "tools/catslint/tests/fixtures/virtual_annotations.cpp"


def analyze(source):
    with tempfile.NamedTemporaryFile("w", suffix=".cpp",
                                     delete=False) as tf:
        tf.write(source)
        path = tf.name
    try:
        return token_engine.analyze_file(path, REL, CFG)
    finally:
        os.unlink(path)


def lint(source, enabled=None):
    model = analyze(source)
    found = rules.run_all([model], CFG,
                          set(rules.ALL_RULES) if enabled is None
                          else enabled)
    return model, found


class SplitDirectives(unittest.TestCase):
    def test_nested_parentheses_stay_in_the_payload(self):
        parsed = cpptok._split_directives(
            "pairing(pairs with scan (via the range-for alias))")
        self.assertEqual(parsed, [
            ("pairing", "pairs with scan (via the range-for alias)")])

    def test_hyphenated_directive_names(self):
        parsed = cpptok._split_directives(
            "pre-publish(builder), direct-delete(teardown), under-guard")
        self.assertEqual([name for name, _ in parsed],
                         ["pre-publish", "direct-delete", "under-guard"])

    def test_several_directives_on_one_line(self):
        parsed = cpptok._split_directives("seq_cst(fence pair), off(R1,R3)")
        self.assertEqual(parsed,
                         [("seq_cst", "fence pair"), ("off", "R1,R3")])

    def test_unknown_directives_are_dropped_by_extraction(self):
        anns = cpptok.extract_annotations(
            ["int x;  // catslint: not_a_directive(whatever), seq_cst(ok)"])
        self.assertEqual(len(anns[1]), 1)
        self.assertEqual(anns[1][0].directive, "seq_cst")


class EffectiveLine(unittest.TestCase):
    def test_same_line_annotation_applies_to_its_own_line(self):
        anns = cpptok.extract_annotations(
            ["x.store(0);  // catslint: seq_cst(why)"])
        self.assertEqual(list(anns), [1])
        self.assertEqual(anns[1][0].raw_line, 1)

    def test_line_above_applies_to_next_code_line_skipping_blanks(self):
        anns = cpptok.extract_annotations([
            "// catslint: seq_cst(why)",
            "",
            "",
            "x.store(0);",
        ])
        self.assertEqual(list(anns), [4])
        self.assertEqual(anns[4][0].raw_line, 1)

    def test_block_comment_continuation_counts_as_line_above(self):
        """A `// catslint:` on a block-comment continuation line (leading
        `*`) is comment-only and falls through to the next code line."""
        anns = cpptok.extract_annotations([
            " * // catslint: seq_cst(why)",
            "x.store(0);",
        ])
        self.assertEqual(list(anns), [2])
        self.assertEqual(anns[2][0].directive, "seq_cst")

    def test_same_line_and_line_above_both_attach_in_source_order(self):
        anns = cpptok.extract_annotations([
            "// catslint: seq_cst(above)",
            "x.store(0);  // catslint: off(R1)",
        ])
        self.assertEqual([a.directive for a in anns[2]],
                         ["seq_cst", "off"])


class FunctionScope(unittest.TestCase):
    LAMBDA_SRC = """\
#include <atomic>
#include <chrono>
#include <thread>

int lf_entry(int x) {
  // catslint: off(R4)
  auto outer = [&] {
    auto inner = [&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      return 1;
    };
    return inner();
  };
  return outer() + x;
}
"""

    def test_off_covers_findings_inside_nested_lambdas(self):
        """The blocking call sits two lambdas deep; the engine attributes
        it to lf_entry, so the function-scope off(R4) suppresses it and
        is therefore live (no R0)."""
        model, found = lint(self.LAMBDA_SRC)
        self.assertEqual(found, [], [f.render() for f in found])
        ann = model.annotations_for_func(model.funcs[0])
        self.assertTrue(any(a.directive == "off" and a.used for a in ann))

    def test_without_the_annotation_the_lambda_finding_fires(self):
        src = self.LAMBDA_SRC.replace("  // catslint: off(R4)\n", "")
        _, found = lint(src)
        self.assertEqual([f.rule for f in found], ["R4"])
        self.assertIn("sleep_for", found[0].message)

    def test_redundant_second_annotation_is_reported_dangling(self):
        """Line-above wins the suppression race; the same-line off(R1)
        then suppresses nothing and R0 calls it out."""
        src = """\
#include <atomic>
std::atomic<int> c{0};
int bump() {
  // catslint: seq_cst(the winning justification)
  return c.fetch_add(1);  // catslint: off(R1)
}
"""
        _, found = lint(src)
        self.assertEqual([f.rule for f in found], ["R0"])
        self.assertIn("off(R1)", found[0].message)

    def test_disabling_a_rule_does_not_fabricate_danglers(self):
        """--disable only filters emission: the rules still run and mark
        their annotations used, so a justified site stays R0-clean even
        when its rule's findings are not emitted."""
        src = """\
#include <atomic>
std::atomic<int> c{0};
int bump() {
  // catslint: seq_cst(still evaluated even when R1 is disabled)
  return c.fetch_add(1);
}
"""
        _, found = lint(src, enabled=set(rules.ALL_RULES) - {"R1"})
        self.assertEqual(found, [], [f.render() for f in found])


if __name__ == "__main__":
    unittest.main()
