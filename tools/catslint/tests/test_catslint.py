#!/usr/bin/env python3
"""Fixture tests for cats-lint.

Every rule R0-R7 is proven LIVE: its firing fixture must yield findings,
and the same run with the rule disabled must yield none (so a silently
broken or skipped check fails this suite, not just the fixture).  The
corrected twin of each fixture must pass clean.

Runs under pytest or plain `python3 test_catslint.py` (unittest), against
the engine named by CATSLINT_TEST_ENGINE (default: token; CI also runs
clang).
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

HERE = os.path.dirname(os.path.abspath(__file__))
TOOL = os.path.join(HERE, os.pardir, "catslint.py")
FIXTURES = os.path.join(HERE, "fixtures")
ENGINE = os.environ.get("CATSLINT_TEST_ENGINE", "token")


def run_lint(*args):
    cmd = [sys.executable, TOOL, "--engine", ENGINE, "--no-baseline",
           *args]
    proc = subprocess.run(cmd, capture_output=True, text=True, timeout=300)
    return proc


def lint_fixture(name, extra=()):
    return run_lint("--src", os.path.join(FIXTURES, name), *extra)


class RuleLiveness(unittest.TestCase):
    """fire fixture finds; --disable silences; pass fixture is clean."""

    def assert_fires(self, fixture, rule, min_count=1, must_mention=()):
        proc = lint_fixture(fixture)
        lines = [ln for ln in proc.stdout.splitlines()
                 if f" {rule}: " in ln]
        self.assertEqual(proc.returncode, 1,
                         f"{fixture} should fail the lint gate:\n"
                         f"{proc.stdout}\n{proc.stderr}")
        self.assertGreaterEqual(
            len(lines), min_count,
            f"{fixture} expected >= {min_count} {rule} finding(s):\n"
            f"{proc.stdout}")
        for needle in must_mention:
            self.assertTrue(any(needle in ln for ln in lines),
                            f"expected a {rule} finding mentioning "
                            f"{needle!r}:\n{proc.stdout}")
        # Liveness: disabling the rule must silence it — this is what
        # catches a check that was accidentally turned off.
        off = lint_fixture(fixture, ("--disable", rule))
        self.assertEqual(off.returncode, 0,
                         f"{fixture} with --disable {rule} should pass:\n"
                         f"{off.stdout}\n{off.stderr}")
        self.assertNotIn(f" {rule}: ", off.stdout)

    def assert_clean(self, fixture):
        proc = lint_fixture(fixture)
        self.assertEqual(proc.returncode, 0,
                         f"{fixture} should be clean:\n{proc.stdout}\n"
                         f"{proc.stderr}")
        self.assertEqual(proc.stdout.strip(), "")

    def test_r1_fires_on_defaulted_and_unexplained_seq_cst(self):
        self.assert_fires("r1_fire.cpp", "R1", min_count=2,
                          must_mention=("defaulted", "seq_cst"))

    def test_r1_passes_explicit_and_justified(self):
        self.assert_clean("r1_pass.cpp")

    def test_r1_passes_forwarded_order_params(self):
        """cats::atomic-style wrappers forward their caller's order
        through a std::memory_order parameter; that is explicit."""
        self.assert_clean("r1_forward_pass.cpp")

    def test_r2_fires_on_unguarded_shared_load(self):
        self.assert_fires("r2_fire.cpp", "R2",
                          must_mention=("unguarded_read",))

    def test_r2_passes_guard_and_annotations(self):
        self.assert_clean("r2_pass.cpp")

    def test_r2_callgraph_rejects_partially_guarded_callers(self):
        self.assert_fires("r2_callgraph_fire.cpp", "R2",
                          must_mention=("helper",))

    def test_r2_callgraph_accepts_fully_guarded_chains(self):
        self.assert_clean("r2_callgraph_pass.cpp")

    def test_r3_fires_on_direct_node_delete(self):
        self.assert_fires("r3_fire.cpp", "R3", min_count=2,
                          must_mention=("Node",))

    def test_r3_passes_retire_annotation_and_poisoning_deleter(self):
        self.assert_clean("r3_pass.cpp")

    def test_r4_fires_on_blocking_in_lockfree_closure(self):
        self.assert_fires("r4_fire.cpp", "R4", min_count=2,
                          must_mention=("sleep_for",))

    def test_r4_passes_nonblocking_closure(self):
        self.assert_clean("r4_pass.cpp")

    def test_r5_fires_on_broken_order_matrix(self):
        self.assert_fires("r5_fire.cpp", "R5", min_count=4,
                          must_mention=("release-side", "relaxed",
                                        "pairs with"))

    def test_r5_passes_paired_matrix(self):
        self.assert_clean("r5_pass.cpp")

    def test_r6_fires_on_write_after_publish(self):
        self.assert_fires("r6_fire.cpp", "R6", min_count=2,
                          must_mention=("published", "immutable"))

    def test_r6_passes_prepublish_builders(self):
        self.assert_clean("r6_pass.cpp")

    def test_r6_fires_through_sim_plain_write(self):
        """The simulator's plain-access shim must not launder a
        post-publication mutation."""
        self.assert_fires("r6_sim_fire.cpp", "R6",
                          must_mention=("published",))

    def test_r6_passes_sim_instrumented_builders(self):
        """sim_plain_write/read are transparent: private-graph escapes,
        R5 receiver tracking and annotation consumption all see through
        them (the instrumented lfca tree relies on this)."""
        self.assert_clean("r6_sim_pass.cpp")

    def test_r7_fires_on_guard_escape_and_cross_generation_cas(self):
        self.assert_fires("r7_fire.cpp", "R7", min_count=2,
                          must_mention=("guard", "ABA"))

    def test_r7_passes_in_scope_uses(self):
        self.assert_clean("r7_pass.cpp")

    def test_r0_fires_on_dangling_annotations(self):
        self.assert_fires("r0_fire.cpp", "R0", min_count=2,
                          must_mention=("dangling",))

    def test_r0_passes_live_annotations(self):
        self.assert_clean("r0_pass.cpp")


class Baseline(unittest.TestCase):
    def test_update_baseline_then_gate_passes(self):
        with tempfile.TemporaryDirectory() as tmp:
            base = os.path.join(tmp, "baseline.json")
            fix = os.path.join(FIXTURES, "r1_fire.cpp")
            up = subprocess.run(
                [sys.executable, TOOL, "--engine", ENGINE, "--src", fix,
                 "--baseline", base, "--update-baseline"],
                capture_output=True, text=True, timeout=300)
            self.assertEqual(up.returncode, 0, up.stderr)
            with open(base, encoding="utf-8") as f:
                data = json.load(f)
            self.assertGreaterEqual(len(data["findings"]), 2)
            gated = subprocess.run(
                [sys.executable, TOOL, "--engine", ENGINE, "--src", fix,
                 "--baseline", base],
                capture_output=True, text=True, timeout=300)
            self.assertEqual(gated.returncode, 0,
                             f"baselined findings must not fail the "
                             f"gate:\n{gated.stdout}\n{gated.stderr}")


class RepoGate(unittest.TestCase):
    def test_src_tree_is_clean_under_all_rules(self):
        """The acceptance gate: src/ has zero unbaselined findings."""
        proc = run_lint()
        self.assertEqual(proc.returncode, 0,
                         f"src/ must lint clean:\n{proc.stdout}\n"
                         f"{proc.stderr}")


class ParallelDeterminism(unittest.TestCase):
    def test_jobs_output_matches_serial(self):
        """--jobs must not change findings, their order, or the verdict.

        The whole fixture corpus is linted at once (dozens of findings
        across many files) serially and with a worker pool; byte-identical
        stdout proves the pool preserves file order and the global rules
        see the same model sequence.
        """
        if ENGINE != "token":
            self.skipTest("--jobs parallelizes the token engine only")
        serial = run_lint("--src", FIXTURES, "--jobs", "1")
        pooled = run_lint("--src", FIXTURES, "--jobs", "4")
        self.assertEqual(serial.returncode, pooled.returncode)
        self.assertNotEqual(serial.stdout.strip(), "",
                            "fixture corpus should produce findings")
        self.assertEqual(serial.stdout, pooled.stdout)


if __name__ == "__main__":
    unittest.main()
