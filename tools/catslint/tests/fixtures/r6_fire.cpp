// R6 fixture: must fire — a node's fields are written non-atomically after
// the node escaped through an atomic store/CAS, both directly and through
// a helper the call-graph closure identifies as a mutator.
#include <atomic>

struct Node {
  int key{0};
  std::atomic<int> stat{0};
};

struct Tree {
  std::atomic<Node*> head{nullptr};
};

Tree t;

Node* peek() {
  return t.head.load(std::memory_order_acquire);
}

void publish_then_mutate() {
  auto* n = new Node();
  n->key = 1;  // fine: still private
  t.head.store(n, std::memory_order_release);
  n->key = 2;  // write after publication: readers can observe the tear
}

void rekey(Node* n) {
  n->key = 9;  // makes rekey() a mutator in the closure
}

void publish_by_cas_then_helper() {
  auto* n = new Node();
  Node* expected = nullptr;
  if (t.head.compare_exchange_strong(expected, n,
                                     std::memory_order_acq_rel)) {
    rekey(n);  // mutator called on a published node
  }
}
