// R7 fixture: must be clean — loaded pointers are used strictly inside
// their guard's scope, the CAS expected value is read under the same
// guard that covers the CAS, and the one deliberate escape is pinned.
#include <atomic>

struct Guard {
  explicit Guard(int) {}
};

struct Rec {
  int v{0};
};

struct Map {
  std::atomic<Rec*> root_{nullptr};
};

Map m;

Rec* load_under_guard() {
  Guard g(0);
  Rec* r = m.root_.load(std::memory_order_acquire);
  return r;  // still inside g's scope
}

bool cas_same_guard() {
  Guard g(0);
  Rec* seen = m.root_.load(std::memory_order_acquire);
  Rec* next_val = nullptr;
  return m.root_.compare_exchange_strong(seen, next_val,
                                         std::memory_order_acq_rel);
}

Rec* pinned_escape() {
  Rec* r = nullptr;
  {
    Guard g(0);
    r = m.root_.load(std::memory_order_acquire);
  }
  // catslint: pinned(a refcount taken under the guard keeps the node alive)
  return r;
}
