// R2 call-graph fixture: must be clean.  The helper has no guard of its
// own, but every caller chain in the TU — including a mutually recursive
// pair — bottoms out in a function that creates a Guard.
#include <atomic>

struct Domain {
  void enter() {}
  void exit() {}
  struct Guard {
    explicit Guard(Domain& d) : d_(d) { d_.enter(); }
    ~Guard() { d_.exit(); }
    Domain& d_;
  };
};

struct Node {
  int key;
  std::atomic<Node*> next{nullptr};
};

Domain g_domain;
std::atomic<Node*> root_{nullptr};

int helper_b(int depth);

int helper_a(int depth) {
  Node* n = root_.load(std::memory_order_acquire);
  if (depth > 0) return helper_b(depth - 1);
  return n != nullptr ? n->key : 0;
}

int helper_b(int depth) {
  Node* n = root_.load(std::memory_order_acquire);
  if (depth > 0) return helper_a(depth - 1);
  return n != nullptr ? n->key : 0;
}

int entry() {
  Domain::Guard guard(g_domain);
  return helper_a(4);
}
