// R0 fixture: must fire — both annotations are dangling: the seq_cst
// justification sits on an op that now names an explicit relaxed order,
// and the direct-delete justification outlived the delete it excused.
#include <atomic>

std::atomic<int> counter{0};

int bump() {
  // catslint: seq_cst(leftover justification from a removed fence)
  return counter.fetch_add(1, std::memory_order_relaxed);
}

// catslint: direct-delete(the delete this excused was removed long ago)
int unused_marker() {
  return 0;
}
