// R0 fixture: must be clean — every annotation still suppresses a live
// would-be finding (one via its dedicated directive, one via off()).
#include <atomic>

std::atomic<int> counter{0};

int bump() {
  // catslint: seq_cst(the global order with the flush flag is load-bearing)
  return counter.fetch_add(1);
}

int bump_legacy() {
  // catslint: off(R1)
  return counter.fetch_add(1);
}
