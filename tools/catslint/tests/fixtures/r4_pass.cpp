// R4 fixture: must be clean — the entry point's closure is non-blocking;
// a mutex-using function exists but is NOT reachable from the entry
// point, and a deliberate blocking call is annotated.
#include <atomic>
#include <mutex>

std::atomic<int> g_value{0};
std::mutex g_report_lock;

int fast_helper(int x) {
  return g_value.fetch_add(x, std::memory_order_relaxed);
}

int debug_helper(int x);

int lf_entry(int x) {  // configured lock-free entry point
  return fast_helper(x) + debug_helper(x);
}

void report_stats() {  // unreachable from lf_entry: allowed to block
  std::lock_guard<std::mutex> hold(g_report_lock);
  g_value.store(0, std::memory_order_relaxed);
}

int lf_entry_with_annotation(int x) {
  return x;
}

int debug_helper(int x) {  // reachable from lf_entry: needs the annotation
  // catslint: blocking-ok(debug-only dump path, compiled out in release)
  std::lock_guard<std::mutex> hold(g_report_lock);
  return x;
}
