// R3 fixture: must be clean — retirement goes through the domain, the
// never-published delete is annotated, and the poisoning operator delete
// is exempt by construction.
#include <cstddef>

struct Domain {
  void retire(void* p, void (*deleter)(void*)) { deleter(p); }
};

struct Node {
  int key = 0;
  Node* left = nullptr;
  static void operator delete(void* p, std::size_t size) {
    // poisoning deleter: allowed to free (runs after the grace period)
    (void)size;
    ::operator delete(p);
  }
};

Domain g_domain;

void node_deleter(void* p) {
  // catslint: direct-delete(EBR deleter; grace period already elapsed)
  delete static_cast<Node*>(p);
}

void unlink_and_retire(Node* parent) {
  Node* victim = parent->left;
  parent->left = nullptr;
  g_domain.retire(victim, &node_deleter);
}

void failed_publish() {
  Node* fresh = new Node();
  delete fresh;  // catslint: direct-delete(never published; CAS lost)
}
