// R2 fixture: must be clean — the load happens under a Guard, the helper
// is annotated under-guard, and teardown is annotated quiescent.
#include <atomic>

struct Domain {
  void enter() {}
  void exit() {}
  struct Guard {
    explicit Guard(Domain& d) : d_(d) { d_.enter(); }
    ~Guard() { d_.exit(); }
    Domain& d_;
  };
};

struct Node {
  int key;
  std::atomic<Node*> next{nullptr};
};

Domain g_domain;
std::atomic<Node*> root_{nullptr};

// catslint: under-guard
int helper_annotated() {
  Node* n = root_.load(std::memory_order_acquire);
  return n != nullptr ? n->key : 0;
}

int guarded_read() {
  Domain::Guard guard(g_domain);
  Node* n = root_.load(std::memory_order_acquire);
  return n != nullptr ? n->key : 0;
}

// catslint: quiescent(destructor-time teardown, no concurrent readers)
void teardown() {
  Node* n = root_.load(std::memory_order_relaxed);
  (void)n;
}
