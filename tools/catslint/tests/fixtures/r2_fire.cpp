// R2 fixture: MUST produce one finding — a shared atomic pointer load in
// a function with no guard, no annotation, and no guarded caller.
#include <atomic>

struct Node {
  int key;
  std::atomic<Node*> next{nullptr};
};

std::atomic<Node*> root_{nullptr};

int unguarded_read() {
  Node* n = root_.load(std::memory_order_acquire);  // finding
  return n != nullptr ? n->key : 0;
}
