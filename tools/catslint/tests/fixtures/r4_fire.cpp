// R4 fixture: MUST produce two findings — a mutex and a sleep, both
// reachable from the lock-free entry point through a helper.
#include <chrono>
#include <mutex>
#include <thread>

std::mutex g_lock;

int slow_helper(int x) {
  std::lock_guard<std::mutex> hold(g_lock);  // finding: blocking
  std::this_thread::sleep_for(std::chrono::milliseconds(1));  // finding
  return x + 1;
}

int lf_entry(int x) {  // configured lock-free entry point
  return slow_helper(x);
}
