// R5/R6/R0 fixture: must be clean — the simulator's plain-access shims
// (cats::sim_plain_write/read, src/common/catomic.hpp) are transparent
// to the dataflow rules: pre-publication initialization through them
// does not escape the still-private receiver (so a later relaxed store
// into the private graph stays exempt from R5), and a justified
// post-publication write consumes its pre-publish annotation (R0).
#include <atomic>

namespace cats {
template <class T, class U>
void sim_plain_write(T& dst, U v) { dst = v; }
template <class T>
T sim_plain_read(const T& src) { return src; }
}  // namespace cats

struct Node {
  int key{0};
  Node* parent{nullptr};
  std::atomic<Node*> left{nullptr};
  std::atomic<Node*> right{nullptr};
};

struct Tree {
  std::atomic<Node*> head{nullptr};
};

Tree t;

Node* peek() {
  return t.head.load(std::memory_order_acquire);
}

void build_subtree_and_publish() {
  auto* r = new Node();
  auto* lb = new Node();
  auto* rb = new Node();
  cats::sim_plain_write(r->key, 7);
  cats::sim_plain_write(lb->parent, r);  // private graph: r must not escape
  cats::sim_plain_write(rb->parent, r);
  r->left.store(lb, std::memory_order_relaxed);   // pre-publication: ok
  r->right.store(rb, std::memory_order_relaxed);
  t.head.store(r, std::memory_order_release);
}

int read_key() {
  Node* n = t.head.load(std::memory_order_acquire);
  return cats::sim_plain_read(n->key);
}

void deferred_init() {
  auto* n = new Node();
  t.head.store(n, std::memory_order_release);
  // catslint: pre-publish(readers wait on left before reading key; the release edge is the left store)
  cats::sim_plain_write(n->key, 2);
}
