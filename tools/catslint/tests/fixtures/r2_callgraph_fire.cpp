// R2 call-graph fixture: MUST produce one finding.  The helper loads a
// shared atomic pointer; one caller holds a Guard but another does not,
// so the per-TU propagation must NOT certify the helper.
#include <atomic>

struct Domain {
  void enter() {}
  void exit() {}
  struct Guard {
    explicit Guard(Domain& d) : d_(d) { d_.enter(); }
    ~Guard() { d_.exit(); }
    Domain& d_;
  };
};

struct Node {
  int key;
  std::atomic<Node*> next{nullptr};
};

Domain g_domain;
std::atomic<Node*> root_{nullptr};

int helper() {
  Node* n = root_.load(std::memory_order_acquire);  // finding
  return n != nullptr ? n->key : 0;
}

int guarded_caller() {
  Domain::Guard guard(g_domain);
  return helper();
}

int unguarded_caller() {  // poisons the caller set
  return helper();
}
