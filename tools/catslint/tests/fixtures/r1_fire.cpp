// R1 fixture: MUST produce two findings — a defaulted memory order and an
// unexplained explicit seq_cst.
#include <atomic>
#include <cstdint>

std::atomic<std::uint64_t> g_epoch{1};

std::uint64_t defaulted_load() {
  return g_epoch.load();  // finding: defaulted seq_cst
}

void unexplained_seq_cst(std::uint64_t v) {
  g_epoch.store(v, std::memory_order_seq_cst);  // finding: no reason given
}
