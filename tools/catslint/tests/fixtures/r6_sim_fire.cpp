// R6 fixture: must fire — a write through the simulator's plain-access
// shim (cats::sim_plain_write, src/common/catomic.hpp) after the node
// escaped is still a post-publication mutation; the shim must not
// launder it.
#include <atomic>

namespace cats {
template <class T, class U>
void sim_plain_write(T& dst, U v) { dst = v; }
}  // namespace cats

struct Node {
  int key{0};
  std::atomic<int> stat{0};
};

struct Tree {
  std::atomic<Node*> head{nullptr};
};

Tree t;

Node* peek() {
  return t.head.load(std::memory_order_acquire);
}

void publish_then_sim_mutate() {
  auto* n = new Node();
  cats::sim_plain_write(n->key, 1);  // fine: still private
  t.head.store(n, std::memory_order_release);
  cats::sim_plain_write(n->key, 2);  // write after publication
}
