// R6 fixture: must be clean — builders fully initialize nodes before the
// publishing store/CAS, and the one deliberate post-escape write is part
// of a deferred-init protocol carrying a pre-publish() annotation.
#include <atomic>

struct Node {
  int key{0};
  std::atomic<int> stat{0};
};

struct Tree {
  std::atomic<Node*> head{nullptr};
};

Tree t;

Node* peek() {
  return t.head.load(std::memory_order_acquire);
}

void build_and_publish() {
  auto* n = new Node();
  n->key = 1;  // private until the store below
  t.head.store(n, std::memory_order_release);
}

void cas_publish() {
  auto* n = new Node();
  n->key = 3;
  Node* expected = nullptr;
  t.head.compare_exchange_strong(expected, n, std::memory_order_acq_rel);
}

void deferred_init() {
  auto* n = new Node();
  t.head.store(n, std::memory_order_release);
  // catslint: pre-publish(readers spin on stat before touching key; the protocol's release edge is elsewhere)
  n->key = 2;
}
