// R5 fixture: must fire — the per-field order matrix is broken four ways:
// a release store nobody acquires, an acquire load with only relaxed
// writers, a relaxed store publishing a pointer, and a seq_cst
// justification claiming a fence pair with a partner that does not exist.
#include <atomic>

struct Obj {
  int v{0};
};

struct State {
  std::atomic<int> head{0};
  std::atomic<int> tail{0};
  std::atomic<Obj*> slot{nullptr};
  std::atomic<int> fence{0};
};

State g;

void writer() {
  g.head.store(1, std::memory_order_release);  // no acquire reader anywhere
  g.tail.store(2, std::memory_order_relaxed);  // the only write to tail
}

int reader() {
  int h = g.head.load(std::memory_order_relaxed);
  int t = g.tail.load(std::memory_order_acquire);  // nothing releases tail
  return h + t;
}

void publish_obj(Obj* o) {
  g.slot.store(o, std::memory_order_relaxed);  // relaxed pointer publish
}

void fence_op() {
  // catslint: seq_cst(pairs with retired_partner; store-load fence)
  g.fence.store(1);
}
