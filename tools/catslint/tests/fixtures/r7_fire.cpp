// R7 fixture: must fire — a pointer loaded under a Guard escapes the
// guard's scope, and a CAS uses an expected value read under a different
// guard generation (the ABA window).
#include <atomic>

struct Guard {
  explicit Guard(int) {}
};

struct Rec {
  int v{0};
};

struct Map {
  std::atomic<Rec*> root_{nullptr};
};

Map m;

Rec* escape_past_guard() {
  Rec* r = nullptr;
  {
    Guard g(0);
    r = m.root_.load(std::memory_order_acquire);
  }
  return r;  // the guard is gone: r may be reclaimed by now
}

bool aba_cas() {
  Rec* seen = nullptr;
  {
    Guard g1(0);
    seen = m.root_.load(std::memory_order_acquire);
  }
  Guard g2(0);
  Rec* next_val = nullptr;
  return m.root_.compare_exchange_strong(seen, next_val,
                                         std::memory_order_acq_rel);
}
