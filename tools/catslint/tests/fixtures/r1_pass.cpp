// R1 fixture: must be clean — every order is explicit, and the one
// deliberate seq_cst carries its justification.
#include <atomic>
#include <cstdint>

std::atomic<std::uint64_t> g_epoch{1};
std::atomic<int> g_stat{0};

std::uint64_t explicit_load() {
  return g_epoch.load(std::memory_order_acquire);
}

void relaxed_stat_bump() {
  g_stat.fetch_add(1, std::memory_order_relaxed);
}

void justified_seq_cst(std::uint64_t v) {
  // catslint: seq_cst(store-load fence against the scan in try_advance)
  g_epoch.store(v, std::memory_order_seq_cst);
}

bool explicit_cas(std::uint64_t expected) {
  return g_epoch.compare_exchange_strong(expected, expected + 1,
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire);
}
