// R3 fixture: MUST produce two findings — a direct delete of a node type
// through a local, and one through a cast in an ad-hoc deleter.
struct Node {
  int key = 0;
  Node* left = nullptr;
};

void unlink_and_free(Node* parent) {
  Node* victim = parent->left;
  parent->left = nullptr;
  delete victim;  // finding: freed while readers may still hold it
}

void raw_deleter(void* p) {
  delete static_cast<Node*>(p);  // finding: not a registered domain deleter
}
