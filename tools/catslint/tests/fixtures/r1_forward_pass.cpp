// R1/R5 fixture: must be clean — a wrapper that forwards its caller's
// memory_order through a parameter (the cats::atomic pattern in
// src/common/catomic.hpp) has an explicit order at every op, not a
// defaulted seq_cst; the forwarded order is neutral in the R5 matrix.
#include <atomic>

template <class T>
class forwarding_box {
 public:
  T load(std::memory_order mo) const { return v_.load(mo); }
  void store(T v, std::memory_order mo) { v_.store(v, mo); }
  T exchange(T v, std::memory_order mo) { return v_.exchange(v, mo); }
  bool compare_exchange_strong(T& expected, T desired,
                               std::memory_order mo) {
    return v_.compare_exchange_strong(expected, desired, mo,
                                      std::memory_order_relaxed);
  }

 private:
  std::atomic<T> v_;
};

forwarding_box<int> g_box;

int read_it() { return g_box.load(std::memory_order_acquire); }
