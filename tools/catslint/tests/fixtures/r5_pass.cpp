// R5 fixture: must be clean — every release-side write has an acquire-side
// reader (and vice versa), the pointer publish uses release, the seq_cst
// justification names a partner that exists, and the one deliberately
// unpaired store carries a pairing() annotation.
#include <atomic>

struct Obj {
  int v{0};
};

struct State {
  std::atomic<int> head{0};
  std::atomic<Obj*> slot{nullptr};
  std::atomic<int> fence{0};
  std::atomic<int> beacon{0};
};

State g;

void writer() {
  g.head.store(1, std::memory_order_release);
}

int reader() {
  return g.head.load(std::memory_order_acquire);
}

void publish_obj(Obj* o) {
  g.slot.store(o, std::memory_order_release);
}

Obj* take() {
  return g.slot.load(std::memory_order_acquire);
}

void fence_op() {
  // catslint: seq_cst(pairs with reader; store-load fence on the head flag)
  g.fence.store(1);
}

void external_pair() {
  // catslint: pairing(the acquire reader lives in the benchmark harness, outside the analyzed set)
  g.beacon.store(1, std::memory_order_release);
}
