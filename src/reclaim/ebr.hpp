// Epoch-based memory reclamation (EBR).
//
// The paper's LFCA tree implementation is in Java and leans on the JVM
// garbage collector: unlinked route/base nodes and superseded immutable leaf
// containers simply become unreachable.  In C++ we must not free a node while
// a concurrent wait-free lookup may still dereference it, so this module
// provides the classic three-epoch scheme (Fraser 2004):
//
//  * Every operation on a shared structure runs inside a `Guard`, which
//    announces the current global epoch in a per-thread slot.
//  * A thread that unlinks a node calls `retire(ptr, deleter)`.  The node is
//    tagged with the global epoch observed at retirement.
//  * A node tagged with epoch e may be freed once the global epoch reaches
//    e + 2: advancing from e to e+1 requires every in-guard thread to have
//    announced e, and advancing again requires every guard begun at epoch
//    <= e to have ended — at which point no thread can still hold a
//    reference obtained before the unlink.
//
// Guard enter/exit are a store and a load each (wait-free), preserving the
// paper's wait-free lookup guarantee.  `retire` is lock-free: it appends to
// a thread-private list and occasionally attempts a (failable) epoch
// advance.
//
// Lifetime contract: a Domain must outlive every guard and retirement that
// uses it.  Threads unregister automatically at thread exit.  The process-
// wide `Domain::global()` instance is intentionally leaked so that static
// destruction order can never invalidate it.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "check/check.hpp"
#include "common/catomic.hpp"
#include "common/padded.hpp"

#if CATS_CHECKED_ENABLED
#include <source_location>
#endif

namespace cats::reclaim {

class Domain {
 public:
  /// Maximum number of threads that may be simultaneously registered.
  static constexpr std::size_t kMaxThreads = 512;

  Domain();
  ~Domain();

  Domain(const Domain&) = delete;
  Domain& operator=(const Domain&) = delete;

  /// RAII epoch critical section.  Nestable; only the outermost guard
  /// announces and clears the epoch.
  class Guard {
   public:
    explicit Guard(Domain& domain) : domain_(domain) { domain_.enter(); }
    ~Guard() { domain_.exit(); }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

   private:
    Domain& domain_;
  };

  /// Defers `deleter(ptr)` until no guard that could observe `ptr` remains.
  /// Must be called after `ptr` has been unlinked from the shared structure.
  /// In CATS_CHECKED builds the call site is recorded so double retires and
  /// the at-exit leak census can name the offending line.
#if CATS_CHECKED_ENABLED
  void retire(void* ptr, void (*deleter)(void*),
              std::source_location site = std::source_location::current());
#else
  void retire(void* ptr, void (*deleter)(void*));
#endif

  /// Like `retire`, but for one *reference* to a refcounted object (the
  /// deleter is a decref).  Several owners may hold references to the same
  /// address — e.g. container roots shared across base nodes after a
  /// split/join — so in checked builds the reclamation checker counts
  /// pending retirements of the address instead of flagging a double
  /// retire.  Use plain `retire` for exclusively-owned nodes.
#if CATS_CHECKED_ENABLED
  void retire_shared(
      void* ptr, void (*deleter)(void*),
      std::source_location site = std::source_location::current());
#else
  void retire_shared(void* ptr, void (*deleter)(void*)) {
    retire(ptr, deleter);
  }
#endif

  /// Typed convenience overload: defers `delete ptr`.
#if CATS_CHECKED_ENABLED
  template <class T>
  void retire(T* ptr,
              std::source_location site = std::source_location::current()) {
    retire(static_cast<void*>(ptr),
           [](void* p) { delete static_cast<T*>(p); }, site);
  }
#else
  template <class T>
  void retire(T* ptr) {
    retire(static_cast<void*>(ptr),
           [](void* p) { delete static_cast<T*>(p); });
  }
#endif

  /// Test/shutdown helper: repeatedly advances the epoch and frees
  /// everything pending.  Precondition: no thread holds a guard.
  void drain();

  /// Eagerly unregister the calling thread from this domain (idempotent;
  /// pending retirements become orphans).  Thread exit does this lazily via
  /// TLS destructors; CATS_SIM scenarios call it at the end of each worker
  /// so the bookkeeping happens inside the managed schedule instead of
  /// during unmanaged thread teardown.
  void detach_current_thread();

  /// Number of retirements not yet freed (approximate; for tests/stats).
  std::size_t pending() const;

  /// Current global epoch (for tests).
  std::uint64_t epoch() const {
    return global_epoch_.load(std::memory_order_acquire);
  }

  /// Process-wide default domain (leaked singleton).
  static Domain& global();

 private:
  struct Retired {
    void* ptr;
    void (*deleter)(void*);
    std::uint64_t epoch;
  };

  struct Slot {
    /// 0 = slot free; otherwise points at the owning ThreadCtx.
    cats::atomic<void*> owner{nullptr};
    /// kIdle when the thread is outside any guard, else the announced epoch.
    cats::atomic<std::uint64_t> announced{kIdle};
  };

  struct ThreadCtx {
    Domain* domain = nullptr;
    std::size_t slot_index = 0;
    std::uint32_t guard_depth = 0;
    std::uint64_t retire_count = 0;
    std::vector<Retired> retired;
  };

  static constexpr std::uint64_t kIdle = 0;
  static constexpr std::size_t kDrainThreshold = 64;

  void enter();
  void exit();
#if CATS_CHECKED_ENABLED
  /// Shared tail of retire/retire_shared once the registry is updated.
  void enqueue_retirement(void* ptr, void (*deleter)(void*));
#endif
  ThreadCtx& context();
  ThreadCtx* register_thread();
  void unregister(ThreadCtx* ctx);
  /// Attempts one epoch advance; returns true if the epoch moved.
  bool try_advance();
  /// Frees entries in `list` that are two epochs old; compacts in place.
  void free_eligible(std::vector<Retired>& list, std::uint64_t global);

  alignas(kCacheLine) cats::atomic<std::uint64_t> global_epoch_{1};
  Padded<Slot> slots_[kMaxThreads];

  std::mutex orphan_mutex_;
  std::vector<Retired> orphans_;
  /// Total retirements across all threads not yet freed.
  cats::atomic<std::size_t> pending_{0};

  friend struct DomainTls;
};

}  // namespace cats::reclaim
