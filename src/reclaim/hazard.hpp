// Hazard-pointer reclamation (Michael 2004).
//
// Provided as the second reclamation substrate.  EBR (ebr.hpp) is what the
// concurrent trees use on their hot paths — guard enter/exit is cheaper than
// publishing one hazard pointer per traversed node, and tree traversals
// touch many nodes.  Hazard pointers bound garbage per thread regardless of
// stalled readers, which EBR cannot, so they are the right tool for
// structures holding few pointers at a time; the test suite uses this domain
// to cross-check the reclamation contract with a Treiber stack.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "check/check.hpp"
#include "common/catomic.hpp"
#include "common/padded.hpp"

#if CATS_CHECKED_ENABLED
#include <source_location>
#endif

namespace cats::reclaim {

class HazardDomain {
 public:
  static constexpr std::size_t kMaxThreads = 256;
  /// Hazard slots available per thread.
  static constexpr std::size_t kPerThread = 4;

  HazardDomain() = default;
  ~HazardDomain();

  HazardDomain(const HazardDomain&) = delete;
  HazardDomain& operator=(const HazardDomain&) = delete;

  /// One published hazard slot.  RAII: clears the slot on destruction.
  class Holder {
   public:
    Holder(HazardDomain& domain, std::size_t index)
        : domain_(&domain), index_(index) {}
    Holder(Holder&& other) noexcept
        : domain_(other.domain_), index_(other.index_) {
      other.domain_ = nullptr;
    }
    Holder(const Holder&) = delete;
    Holder& operator=(const Holder&) = delete;
    Holder& operator=(Holder&&) = delete;
    ~Holder() {
      if (domain_ != nullptr) domain_->clear(index_);
    }

    /// Safely reads `*source`: publishes the observed pointer and re-reads
    /// until the publication is stable.  The returned pointer cannot be
    /// freed while this holder protects it.
    template <class T>
    T* protect(const cats::atomic<T*>& source) {
      T* ptr = source.load(std::memory_order_acquire);
      while (true) {
        domain_->publish(index_, ptr);
        T* again = source.load(std::memory_order_acquire);
        if (again == ptr) return ptr;
        ptr = again;
      }
    }

    /// Publishes a pointer obtained by other means (caller must re-validate
    /// reachability afterwards).
    void publish_raw(void* ptr) { domain_->publish(index_, ptr); }

    void reset() { domain_->publish(index_, nullptr); }

   private:
    HazardDomain* domain_;
    std::size_t index_;
  };

  /// Acquires a free hazard slot for the calling thread.
  Holder make_holder();

  /// Defers `deleter(ptr)` until no hazard slot publishes `ptr`.  In
  /// CATS_CHECKED builds the call site feeds the reclamation checker (same
  /// registry as the EBR domains, so cross-domain double retires are caught
  /// too).
#if CATS_CHECKED_ENABLED
  void retire(void* ptr, void (*deleter)(void*),
              std::source_location site = std::source_location::current());

  template <class T>
  void retire(T* ptr,
              std::source_location site = std::source_location::current()) {
    retire(static_cast<void*>(ptr),
           [](void* p) { delete static_cast<T*>(p); }, site);
  }
#else
  void retire(void* ptr, void (*deleter)(void*));

  template <class T>
  void retire(T* ptr) {
    retire(static_cast<void*>(ptr),
           [](void* p) { delete static_cast<T*>(p); });
  }
#endif

  /// Frees everything whose pointer is not currently published.  Tests call
  /// this after joining workers to verify nothing leaks.
  void scan_all();

  std::size_t pending() const {
    return pending_.load(std::memory_order_relaxed);
  }

 private:
  struct Retired {
    void* ptr;
    void (*deleter)(void*);
  };

  struct ThreadCtx {
    std::size_t base_slot = 0;  // first of kPerThread slots
    std::uint32_t slots_in_use = 0;
    std::vector<Retired> retired;
  };

  static constexpr std::size_t kScanThreshold = 128;

  void publish(std::size_t index, void* ptr) {
    // The store must precede the validating re-read of the source pointer
    // in the total order, or scan() could miss a hazard that protect() is
    // about to confirm — the classic hazard-pointer store-load fence.
    // catslint: seq_cst(publish must be ordered before validation re-read)
    hazards_[index]->store(ptr, std::memory_order_seq_cst);
  }
  void clear(std::size_t index);
  ThreadCtx& context();
  void scan(ThreadCtx& ctx);

  Padded<cats::atomic<void*>> hazards_[kMaxThreads * kPerThread];
  Padded<cats::atomic<void*>> owners_[kMaxThreads];

  std::mutex orphan_mutex_;
  std::vector<Retired> orphans_;
  cats::atomic<std::size_t> pending_{0};

  friend struct HazardTls;
};

}  // namespace cats::reclaim
