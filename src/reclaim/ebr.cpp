#include "reclaim/ebr.hpp"

#include <cstdio>
#include <cstdlib>

#include "obs/flight/annot.hpp"
#include "obs/registry.hpp"

namespace cats::reclaim {

// ---------------------------------------------------------------------------
// Thread-local registry.
//
// A thread may use several domains (the global one plus per-test domains), so
// its TLS holds a small vector of (domain, context) pairs, plus a one-entry
// cache for the domain it touched last.  The DomainTls destructor runs at
// thread exit and hands any still-pending retirements back to the domain as
// orphans.
// ---------------------------------------------------------------------------

struct DomainTls {
  struct Entry {
    Domain* domain;
    Domain::ThreadCtx* ctx;
  };
  std::vector<Entry> entries;

  ~DomainTls() {
    for (auto& entry : entries) {
      if (entry.domain != nullptr) entry.domain->unregister(entry.ctx);
    }
  }

  static DomainTls& instance() {
    thread_local DomainTls tls;
    return tls;
  }
};

namespace {
thread_local Domain* tl_cached_domain = nullptr;
thread_local void* tl_cached_ctx = nullptr;
}  // namespace

// ---------------------------------------------------------------------------
// Domain
// ---------------------------------------------------------------------------

Domain::Domain() = default;

Domain::~Domain() {
  // Unregister the destroying thread itself, if it ever used this domain.
  // All other threads must have exited or been joined by now (lifetime
  // contract), which means their TLS destructors already ran.
  auto& tls = DomainTls::instance();
  std::erase_if(tls.entries, [this](DomainTls::Entry& entry) {
    if (entry.domain != this) return false;
    unregister(entry.ctx);
    return true;
  });
  // A successor domain can be constructed at this address (per-execution
  // domains in the sim tests live on the driver's stack): drop the
  // one-entry cache so it cannot resolve to the dead context.
  if (tl_cached_domain == this) {
    tl_cached_domain = nullptr;
    tl_cached_ctx = nullptr;
  }
  for (auto& slot : slots_) {
    if (slot->owner.load(std::memory_order_acquire) != nullptr) {
      std::fprintf(stderr,
                   "cats::reclaim::Domain destroyed while a thread is still "
                   "registered; leaking its pending retirements\n");
    }
  }
  // No concurrent users remain: everything pending is safe to free.
  std::lock_guard<std::mutex> lock(orphan_mutex_);
  for (const Retired& r : orphans_) {
    CATS_CHECKED_ONLY(check::on_reclaim(r.ptr));
    r.deleter(r.ptr);
  }
  pending_.fetch_sub(orphans_.size(), std::memory_order_relaxed);
  orphans_.clear();
}

Domain& Domain::global() {
  static Domain* const instance = new Domain();  // leaked on purpose
  return *instance;
}

Domain::ThreadCtx& Domain::context() {
  if (tl_cached_domain == this) {
    return *static_cast<ThreadCtx*>(tl_cached_ctx);
  }
  auto& tls = DomainTls::instance();
  for (auto& entry : tls.entries) {
    if (entry.domain == this) {
      tl_cached_domain = this;
      tl_cached_ctx = entry.ctx;
      return *entry.ctx;
    }
  }
  ThreadCtx* ctx = register_thread();
  tls.entries.push_back({this, ctx});
  tl_cached_domain = this;
  tl_cached_ctx = ctx;
  return *ctx;
}

Domain::ThreadCtx* Domain::register_thread() {
  auto* ctx = new ThreadCtx();
  ctx->domain = this;
  // A free slot's `announced` is already kIdle: unregister() resets it
  // before releasing ownership.  Never write to a slot before owning it.
  for (std::size_t i = 0; i < kMaxThreads; ++i) {
    void* expected = nullptr;
    if (slots_[i]->owner.compare_exchange_strong(expected, ctx,
                                                 std::memory_order_acq_rel)) {
      ctx->slot_index = i;
      return ctx;
    }
  }
  std::fprintf(stderr, "cats::reclaim::Domain: more than %zu threads\n",
               kMaxThreads);
  std::abort();
}

void Domain::unregister(ThreadCtx* ctx) {
  if (!ctx->retired.empty()) {
    CATS_OBS_ONLY(
        obs::count(obs::GCounter::kEbrOrphaned, ctx->retired.size()));
    std::lock_guard<std::mutex> lock(orphan_mutex_);
    orphans_.insert(orphans_.end(), ctx->retired.begin(), ctx->retired.end());
  }
  auto& slot = *slots_[ctx->slot_index];
  slot.announced.store(kIdle, std::memory_order_release);
  slot.owner.store(nullptr, std::memory_order_release);
  if (tl_cached_domain == this) {
    tl_cached_domain = nullptr;
    tl_cached_ctx = nullptr;
  }
  delete ctx;
}

void Domain::enter() {
  ThreadCtx& ctx = context();
  if (ctx.guard_depth++ == 0) {
    cats::sim_point_event("ebr_guard_enter", this);
    const std::uint64_t e = global_epoch_.load(std::memory_order_relaxed);
    // seq_cst: the announcement must become visible before any subsequent
    // load of shared pointers, or try_advance could miss this reader.
    // catslint: seq_cst(store-load fence pairs with try_advance scan)
    slots_[ctx.slot_index]->announced.store(e, std::memory_order_seq_cst);
  }
}

void Domain::exit() {
  ThreadCtx& ctx = context();
  if (--ctx.guard_depth == 0) {
    cats::sim_point_event("ebr_guard_exit", this);
    slots_[ctx.slot_index]->announced.store(kIdle, std::memory_order_release);
  }
}

#if CATS_CHECKED_ENABLED
void Domain::retire(void* ptr, void (*deleter)(void*),
                    std::source_location site) {
  char site_buf[512];
  std::snprintf(site_buf, sizeof site_buf, "%s:%u", site.file_name(),
                static_cast<unsigned>(site.line()));
  check::on_retire(ptr, site_buf);
  enqueue_retirement(ptr, deleter);
}

void Domain::retire_shared(void* ptr, void (*deleter)(void*),
                           std::source_location site) {
  char site_buf[512];
  std::snprintf(site_buf, sizeof site_buf, "%s:%u", site.file_name(),
                static_cast<unsigned>(site.line()));
  check::on_retire_shared(ptr, site_buf);
  enqueue_retirement(ptr, deleter);
}

void Domain::enqueue_retirement(void* ptr, void (*deleter)(void*)) {
#else
void Domain::retire(void* ptr, void (*deleter)(void*)) {
#endif
  ThreadCtx& ctx = context();
  cats::sim_point_event("ebr_retire", this);
  const std::uint64_t e = global_epoch_.load(std::memory_order_acquire);
  ctx.retired.push_back({ptr, deleter, e});
  pending_.fetch_add(1, std::memory_order_relaxed);
  CATS_OBS_ONLY(obs::count(obs::GCounter::kEbrRetired));
  if (++ctx.retire_count % kDrainThreshold == 0) {
    // A failed advance means some reader still pins the epoch and this
    // thread's garbage backlog keeps growing — annotated on the current
    // flight-recorder span as an epoch wait.
    if (!try_advance()) CATS_OBS_ONLY(obs::flight::note_epoch_wait());
    free_eligible(ctx.retired, global_epoch_.load(std::memory_order_acquire));
  }
}

bool Domain::try_advance() {
  CATS_OBS_ONLY(obs::count(obs::GCounter::kEbrAdvanceAttempts));
  // Both seq_cst loads below close the Dekker race with enter(): a reader
  // announces (seq_cst store) and then reads shared pointers; the scan must
  // sit after that store in the single total order, or an advance could
  // free memory the reader is still traversing.  try_advance runs once per
  // kDrainThreshold retires, so this is off the operation hot path.
  // catslint: seq_cst(epoch read ordered against announce stores)
  std::uint64_t e = global_epoch_.load(std::memory_order_seq_cst);
  for (const auto& slot : slots_) {
    if (slot->owner.load(std::memory_order_acquire) == nullptr) continue;
    const std::uint64_t announced =
        // catslint: seq_cst(scan must observe every pre-scan announcement)
        slot->announced.load(std::memory_order_seq_cst);
    if (announced != kIdle && announced != e) return false;
  }
  const bool advanced = global_epoch_.compare_exchange_strong(
      e, e + 1, std::memory_order_acq_rel);
  CATS_OBS_ONLY({
    if (advanced) {
      obs::count(obs::GCounter::kEbrAdvances);
      // Instant event on the merged timeline (depth unused; stat carries
      // the new epoch, truncated — fine for a visual marker).
      obs::trace_adapt(obs::AdaptKind::kEpochAdvance, 0,
                       static_cast<std::int32_t>(e + 1));
    }
  });
  return advanced;
}

void Domain::free_eligible(std::vector<Retired>& list, std::uint64_t global) {
  // Partition first, run deleters after: a deleter may itself call
  // retire(), which appends to the calling thread's list — possibly this
  // very vector — and must not race with our iteration.
  std::vector<Retired> eligible;
  std::size_t kept = 0;
  for (const Retired& r : list) {
    if (r.epoch + 2 <= global) {
      eligible.push_back(r);
    } else {
      list[kept++] = r;
    }
  }
  list.resize(kept);
  for (const Retired& r : eligible) {
    CATS_CHECKED_ONLY(check::on_reclaim(r.ptr));
    r.deleter(r.ptr);
  }
  if (!eligible.empty()) {
    pending_.fetch_sub(eligible.size(), std::memory_order_relaxed);
    CATS_OBS_ONLY(obs::count(obs::GCounter::kEbrFreed, eligible.size()));
  }
}

void Domain::drain() {
  ThreadCtx& ctx = context();
  // Three advances move the epoch past everything retired so far; they can
  // only fail if a guard is active, which the caller promises is not the
  // case.
  for (int i = 0; i < 3; ++i) try_advance();
  const std::uint64_t global = global_epoch_.load(std::memory_order_acquire);
  free_eligible(ctx.retired, global);
  // Run orphan deleters outside the lock: deleters touch shared state
  // (refcounts, pools) and must not serialise — or, under CATS_SIM, hit a
  // scheduling point — while orphan_mutex_ is held.  Survivors (and
  // anything unregistered concurrently) are appended back afterwards.
  std::vector<Retired> grabbed;
  {
    std::lock_guard<std::mutex> lock(orphan_mutex_);
    grabbed.swap(orphans_);
  }
  free_eligible(grabbed, global);
  if (!grabbed.empty()) {
    std::lock_guard<std::mutex> lock(orphan_mutex_);
    orphans_.insert(orphans_.end(), grabbed.begin(), grabbed.end());
  }
}

void Domain::detach_current_thread() {
  // Erase the entry rather than nulling it: a sim run creates thousands
  // of short-lived per-execution domains on one driver thread, and dead
  // entries would make every context() lookup a linear scan over them.
  auto& tls = DomainTls::instance();
  std::erase_if(tls.entries, [this](DomainTls::Entry& entry) {
    if (entry.domain != this) return false;
    unregister(entry.ctx);
    return true;
  });
  if (tl_cached_domain == this) {
    tl_cached_domain = nullptr;
    tl_cached_ctx = nullptr;
  }
}

std::size_t Domain::pending() const {
  return pending_.load(std::memory_order_relaxed);
}

}  // namespace cats::reclaim
