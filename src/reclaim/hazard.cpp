#include "reclaim/hazard.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace cats::reclaim {

struct HazardTls {
  struct Entry {
    HazardDomain* domain;
    HazardDomain::ThreadCtx* ctx;
  };
  std::vector<Entry> entries;

  ~HazardTls() {
    for (auto& entry : entries) {
      if (entry.domain == nullptr) continue;
      auto* domain = entry.domain;
      auto* ctx = entry.ctx;
      if (!ctx->retired.empty()) {
        std::lock_guard<std::mutex> lock(domain->orphan_mutex_);
        domain->orphans_.insert(domain->orphans_.end(), ctx->retired.begin(),
                                ctx->retired.end());
      }
      for (std::size_t i = 0; i < HazardDomain::kPerThread; ++i) {
        // catslint: pairing(pairs with scan, whose seq_cst slot loads go through the range-for alias `hazard` the per-field matrix cannot see through)
        domain->hazards_[ctx->base_slot + i]->store(
            nullptr, std::memory_order_release);
      }
      domain->owners_[ctx->base_slot / HazardDomain::kPerThread]->store(
          nullptr, std::memory_order_release);
      delete ctx;
    }
  }

  static HazardTls& instance() {
    thread_local HazardTls tls;
    return tls;
  }
};

HazardDomain::~HazardDomain() {
  auto& tls = HazardTls::instance();
  for (auto& entry : tls.entries) {
    if (entry.domain == this) {
      orphans_.insert(orphans_.end(), entry.ctx->retired.begin(),
                      entry.ctx->retired.end());
      delete entry.ctx;
      entry.domain = nullptr;
    }
  }
  for (const Retired& r : orphans_) {
    CATS_CHECKED_ONLY(check::on_reclaim(r.ptr));
    r.deleter(r.ptr);
  }
  pending_.fetch_sub(orphans_.size(), std::memory_order_relaxed);
}

HazardDomain::ThreadCtx& HazardDomain::context() {
  auto& tls = HazardTls::instance();
  for (auto& entry : tls.entries) {
    if (entry.domain == this) return *entry.ctx;
  }
  auto* ctx = new ThreadCtx();
  for (std::size_t i = 0; i < kMaxThreads; ++i) {
    void* expected = nullptr;
    if (owners_[i]->compare_exchange_strong(expected, ctx,
                                            std::memory_order_acq_rel)) {
      ctx->base_slot = i * kPerThread;
      tls.entries.push_back({this, ctx});
      return *ctx;
    }
  }
  std::fprintf(stderr, "cats::reclaim::HazardDomain: more than %zu threads\n",
               kMaxThreads);
  std::abort();
}

HazardDomain::Holder HazardDomain::make_holder() {
  ThreadCtx& ctx = context();
  if (ctx.slots_in_use >= kPerThread) {
    std::fprintf(stderr,
                 "cats::reclaim::HazardDomain: more than %zu holders per "
                 "thread\n",
                 kPerThread);
    std::abort();
  }
  return Holder(*this, ctx.base_slot + ctx.slots_in_use++);
}

void HazardDomain::clear(std::size_t index) {
  hazards_[index]->store(nullptr, std::memory_order_release);
  ThreadCtx& ctx = context();
  // Holders are destroyed strictly LIFO (they are scoped objects), so the
  // released slot is always the last one handed out.
  --ctx.slots_in_use;
}

#if CATS_CHECKED_ENABLED
void HazardDomain::retire(void* ptr, void (*deleter)(void*),
                          std::source_location site) {
  {
    char site_buf[512];
    std::snprintf(site_buf, sizeof site_buf, "%s:%u", site.file_name(),
                  static_cast<unsigned>(site.line()));
    check::on_retire(ptr, site_buf);
  }
#else
void HazardDomain::retire(void* ptr, void (*deleter)(void*)) {
#endif
  ThreadCtx& ctx = context();
  ctx.retired.push_back({ptr, deleter});
  pending_.fetch_add(1, std::memory_order_relaxed);
  if (ctx.retired.size() >= kScanThreshold) scan(ctx);
}

void HazardDomain::scan(ThreadCtx& ctx) {
  std::vector<void*> protected_ptrs;
  protected_ptrs.reserve(kMaxThreads * kPerThread / 8);
  for (const auto& hazard : hazards_) {
    // catslint: seq_cst(scan load pairs with publish(); store-load fence)
    void* ptr = hazard->load(std::memory_order_seq_cst);
    if (ptr != nullptr) protected_ptrs.push_back(ptr);
  }
  std::sort(protected_ptrs.begin(), protected_ptrs.end());

  std::size_t kept = 0;
  std::size_t freed = 0;
  for (Retired& r : ctx.retired) {
    if (std::binary_search(protected_ptrs.begin(), protected_ptrs.end(),
                           r.ptr)) {
      ctx.retired[kept++] = r;
    } else {
      CATS_CHECKED_ONLY(check::on_reclaim(r.ptr));
      r.deleter(r.ptr);
      ++freed;
    }
  }
  ctx.retired.resize(kept);
  if (freed != 0) pending_.fetch_sub(freed, std::memory_order_relaxed);
}

void HazardDomain::scan_all() {
  ThreadCtx& ctx = context();
  {
    std::lock_guard<std::mutex> lock(orphan_mutex_);
    ctx.retired.insert(ctx.retired.end(), orphans_.begin(), orphans_.end());
    orphans_.clear();
  }
  scan(ctx);
}

}  // namespace cats::reclaim
