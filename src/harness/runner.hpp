// Multi-threaded throughput measurement engine.
//
// Mirrors the paper's benchmark driver (§7): N threads execute a random
// operation mix against one shared structure for a fixed wall-clock
// duration after a pre-fill phase; throughput is reported in operations per
// microsecond.  Thread groups may run different mixes (Fig. 10).  Range
// queries compute the sum and count of the items in the range, and the
// harness tracks the average traversed items per query as the paper's
// sanity check.
//
// Works with any structure exposing the shared interface:
//   bool insert(Key, Value); bool remove(Key);
//   bool lookup(Key, Value*); void range_query(Key, Key, ItemVisitor).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <thread>
#include <vector>

#include "common/padded.hpp"
#include "common/rng.hpp"
#include "common/spin_barrier.hpp"
#include "common/types.hpp"
#include "harness/workload.hpp"
#include "obs/registry.hpp"

namespace cats::harness {

/// Inserts random keys from [0, key_range) until the structure holds
/// exactly key_range/2 items (the paper's pre-fill).
template <class S>
void prefill(S& structure, Key key_range, std::uint64_t seed = 0xfeedbeef) {
  Xoshiro256 rng(seed);
  std::int64_t inserted = 0;
  const std::int64_t target = key_range / 2;
  while (inserted < target) {
    const Key k = rng.next_in(1, key_range - 1);
    if (structure.insert(k, static_cast<Value>(k) + 1)) ++inserted;
  }
}

namespace detail {

struct alignas(kCacheLine) ThreadCounters {
  std::uint64_t ops = 0;
  std::uint64_t range_queries = 0;
  std::uint64_t range_items = 0;
};

}  // namespace detail

/// Runs the groups' mixes for `duration_seconds` against `structure`
/// (already pre-filled) and returns the aggregated counts.
template <class S>
RunResult run_mix(S& structure, const std::vector<ThreadGroup>& groups,
                  Key key_range, double duration_seconds,
                  std::uint64_t seed = 1) {
  int total_threads = 0;
  for (const auto& group : groups) total_threads += group.threads;

  std::vector<detail::ThreadCounters> counters(total_threads);
  std::vector<int> group_of(total_threads);
  std::vector<std::thread> threads;
  SpinBarrier barrier(total_threads + 1);
  std::atomic<bool> stop{false};

  int thread_index = 0;
  for (std::size_t g = 0; g < groups.size(); ++g) {
    for (int i = 0; i < groups[g].threads; ++i, ++thread_index) {
      group_of[thread_index] = static_cast<int>(g);
      threads.emplace_back([&, thread_index, g] {
        const Mix mix = groups[g].mix;
        Xoshiro256 rng(seed * 7919 + thread_index);
        auto& my = counters[thread_index];
        barrier.arrive_and_wait();
        while (!stop.load(std::memory_order_relaxed)) {
          const std::uint64_t dice = rng.next_below(1000);
          const Key k = rng.next_in(1, key_range - 1);
#if CATS_OBS_ENABLED
          // Sample one in 32 operations into the global latency histograms;
          // timing every operation would dominate the cost of a lookup.
          const bool sampled = (my.ops & 31u) == 0;
          const auto op_begin = sampled ? std::chrono::steady_clock::now()
                                        : std::chrono::steady_clock::time_point();
          obs::GHistogram op_hist = obs::GHistogram::kUpdateLatencyNs;
#endif
          if (dice < mix.update_permille) {
            if ((dice & 1) == 0) {
              structure.insert(k, static_cast<Value>(k) + 1);
            } else {
              structure.remove(k);
            }
          } else if (dice < mix.update_permille + mix.lookup_permille) {
            Value v;
            structure.lookup(k, &v);
#if CATS_OBS_ENABLED
            op_hist = obs::GHistogram::kLookupLatencyNs;
#endif
          } else {
            const std::int64_t span =
                mix.fixed_range_size
                    ? mix.range_max
                    : static_cast<std::int64_t>(
                          rng.next_below(
                              static_cast<std::uint64_t>(mix.range_max))) +
                          1;
            std::uint64_t sum = 0;
            std::uint64_t items = 0;
            structure.range_query(k, k + span - 1, [&](Key key, Value value) {
              sum += static_cast<std::uint64_t>(key) + value;
              ++items;
            });
            // Keep the sum alive so the scan cannot be optimized away.
            if (sum == 0xdeadbeefdeadbeefull) std::abort();
            my.range_items += items;
            ++my.range_queries;
#if CATS_OBS_ENABLED
            op_hist = obs::GHistogram::kRangeLatencyNs;
#endif
          }
#if CATS_OBS_ENABLED
          if (sampled) {
            const auto elapsed = std::chrono::steady_clock::now() - op_begin;
            obs::record(
                op_hist,
                static_cast<std::uint64_t>(
                    std::chrono::duration_cast<std::chrono::nanoseconds>(
                        elapsed)
                        .count()));
          }
#endif
          ++my.ops;
        }
      });
    }
  }

  barrier.arrive_and_wait();
  const auto start = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(std::chrono::duration<double>(duration_seconds));
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : threads) t.join();
  const auto end = std::chrono::steady_clock::now();

  RunResult result;
  result.seconds = std::chrono::duration<double>(end - start).count();
  result.per_thread_ops.reserve(total_threads);
  for (int t = 0; t < total_threads; ++t) {
    result.total_ops += counters[t].ops;
    result.group_ops[group_of[t]] += counters[t].ops;
    result.range_queries += counters[t].range_queries;
    result.range_items += counters[t].range_items;
    result.per_thread_ops.push_back(counters[t].ops);
  }
  return result;
}

/// Convenience: single uniform group of `threads` threads.
template <class S>
RunResult run_mix(S& structure, int threads, const Mix& mix, Key key_range,
                  double duration_seconds, std::uint64_t seed = 1) {
  return run_mix(structure, std::vector<ThreadGroup>{{threads, mix}},
                 key_range, duration_seconds, seed);
}

}  // namespace cats::harness
