// Multi-threaded throughput measurement engine.
//
// Mirrors the paper's benchmark driver (§7): N threads execute a random
// operation mix against one shared structure for a fixed wall-clock
// duration after a pre-fill phase; throughput is reported in operations per
// microsecond.  Thread groups may run different mixes (Fig. 10).  Range
// queries compute the sum and count of the items in the range, and the
// harness tracks the average traversed items per query as the paper's
// sanity check.
//
// Works with any structure exposing the shared interface:
//   bool insert(Key, Value); bool remove(Key);
//   bool lookup(Key, Value*); void range_query(Key, Key, ItemVisitor).
#pragma once

#include <atomic>
#include <chrono>
#include <concepts>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/padded.hpp"
#include "common/rng.hpp"
#include "common/spin_barrier.hpp"
#include "common/types.hpp"
#include "harness/cli.hpp"
#include "harness/workload.hpp"
#include "obs/export.hpp"
#include "obs/flight/flight.hpp"
#include "obs/flight/perf_counters.hpp"
#include "obs/http_server.hpp"
#include "obs/monitor.hpp"
#include "obs/registry.hpp"

#if CATS_OBS_ENABLED
#include "obs/flight/perfetto.hpp"
#endif

namespace cats::harness {

/// Inserts random keys from [0, key_range) until the structure holds
/// exactly key_range/2 items (the paper's pre-fill).  `Codec` maps the
/// generator's integer keys onto the structure's key type (workload.hpp);
/// the default is the identity, so integer-keyed call sites are unchanged.
template <class S, class Codec = IntKeyCodec>
void prefill(S& structure, Key key_range, std::uint64_t seed = 0xfeedbeef) {
  // Hardware counters for the prefill phase (obs builds; stub otherwise).
  obs::flight::ThreadPerf perf;
  perf.start();
  Xoshiro256 rng(seed);
  std::int64_t inserted = 0;
  const std::int64_t target = key_range / 2;
  while (inserted < target) {
    const Key k = rng.next_in(1, key_range - 1);
    if (structure.insert(Codec::encode(k), static_cast<Value>(k) + 1)) {
      ++inserted;
    }
  }
  obs::flight::perf_phase_add("prefill", perf.stop());
}

namespace detail {

struct alignas(kCacheLine) ThreadCounters {
  std::uint64_t ops = 0;
  std::uint64_t range_queries = 0;
  std::uint64_t range_items = 0;
};

}  // namespace detail

/// Runs the groups' mixes for `duration_seconds` against `structure`
/// (already pre-filled) and returns the aggregated counts.  `Codec` must
/// match the one used to prefill.
template <class S, class Codec = IntKeyCodec>
RunResult run_mix(S& structure, const std::vector<ThreadGroup>& groups,
                  Key key_range, double duration_seconds,
                  std::uint64_t seed = 1) {
  int total_threads = 0;
  for (const auto& group : groups) total_threads += group.threads;

  std::vector<detail::ThreadCounters> counters(total_threads);
  std::vector<int> group_of(total_threads);
  std::vector<obs::flight::PerfCounts> thread_perf(total_threads);
  std::vector<std::thread> threads;
  SpinBarrier barrier(total_threads + 1);
  std::atomic<bool> stop{false};

  int thread_index = 0;
  for (std::size_t g = 0; g < groups.size(); ++g) {
    for (int i = 0; i < groups[g].threads; ++i, ++thread_index) {
      group_of[thread_index] = static_cast<int>(g);
      threads.emplace_back([&, thread_index, g] {
        const Mix mix = groups[g].mix;
        Xoshiro256 rng(seed * 7919 + thread_index);
        auto& my = counters[thread_index];
#if CATS_CHECKED_ENABLED
        // --check-every-n-ops: run the concurrent-mode validator inside the
        // workload.  The period is fixed before the threads start.
        const std::uint64_t check_period =
            g_check_every_n_ops.load(std::memory_order_relaxed);
#endif
        // Per-thread hardware counters over the measure phase (opened on
        // the worker thread itself; perf_event_open counts the caller).
        obs::flight::ThreadPerf perf;
        barrier.arrive_and_wait();
        perf.start();
        while (!stop.load(std::memory_order_relaxed)) {
          const std::uint64_t dice = rng.next_below(1000);
          const Key k = rng.next_in(1, key_range - 1);
#if CATS_OBS_ENABLED
          // Sample one in 32 operations into the global latency histograms;
          // timing every operation would dominate the cost of a lookup.
          const bool sampled = (my.ops & 31u) == 0;
          const auto op_begin = sampled ? std::chrono::steady_clock::now()
                                        : std::chrono::steady_clock::time_point();
          obs::GHistogram op_hist = obs::GHistogram::kUpdateLatencyNs;
#endif
          // Flight-recorder span (no-op unless the recorder is enabled and
          // this operation is sampled — see obs/flight/flight.hpp).
          obs::flight::SpanStart span = obs::flight::begin_span();
          obs::flight::SpanKind span_kind = obs::flight::SpanKind::kLookup;
          if (dice < mix.update_permille) {
            if ((dice & 1) == 0) {
              span_kind = obs::flight::SpanKind::kInsert;
              structure.insert(Codec::encode(k), static_cast<Value>(k) + 1);
            } else {
              span_kind = obs::flight::SpanKind::kRemove;
              structure.remove(Codec::encode(k));
            }
          } else if (dice < mix.update_permille + mix.lookup_permille) {
            Value v;
            structure.lookup(Codec::encode(k), &v);
#if CATS_OBS_ENABLED
            op_hist = obs::GHistogram::kLookupLatencyNs;
#endif
          } else {
            span_kind = obs::flight::SpanKind::kRange;
            const std::int64_t span =
                mix.fixed_range_size
                    ? mix.range_max
                    : static_cast<std::int64_t>(
                          rng.next_below(
                              static_cast<std::uint64_t>(mix.range_max))) +
                          1;
            std::uint64_t sum = 0;
            std::uint64_t items = 0;
            structure.range_query(
                Codec::encode(k), Codec::encode(k + span - 1),
                [&](typename Codec::StructKey key, Value value) {
                  sum += Codec::weight(key) + value;
                  ++items;
                });
            // Keep the sum alive so the scan cannot be optimized away.
            if (sum == 0xdeadbeefdeadbeefull) std::abort();
            my.range_items += items;
            ++my.range_queries;
#if CATS_OBS_ENABLED
            op_hist = obs::GHistogram::kRangeLatencyNs;
#endif
          }
          obs::flight::end_span(span, span_kind, k);
#if CATS_OBS_ENABLED
          if (sampled) {
            const auto elapsed = std::chrono::steady_clock::now() - op_begin;
            obs::record(
                op_hist,
                static_cast<std::uint64_t>(
                    std::chrono::duration_cast<std::chrono::nanoseconds>(
                        elapsed)
                        .count()));
          }
#endif
          ++my.ops;
          // Feed the process-wide op counter so a live monitor can derive
          // ops/sec; one relaxed sharded add, same cost class as the other
          // per-op hooks (bench_obs measures the total within noise).
          CATS_OBS_ONLY(obs::count(obs::GCounter::kHarnessOps));
#if CATS_CHECKED_ENABLED
          if (check_period != 0 && my.ops % check_period == 0) {
            if constexpr (requires(const S& s, std::string* d) {
                            { s.validate(d, false) } -> std::same_as<bool>;
                          }) {
              std::string why;
              if (!structure.validate(&why, /*expect_quiescent=*/false)) {
                check::fail(__FILE__, __LINE__,
                            "--check-every-n-ops: concurrent tree validation "
                            "failed:\n%s",
                            why.c_str());
              }
            }
          }
#endif
        }
        thread_perf[thread_index] = perf.stop();
      });
    }
  }

  barrier.arrive_and_wait();
  const auto start = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(std::chrono::duration<double>(duration_seconds));
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : threads) t.join();
  const auto end = std::chrono::steady_clock::now();

  RunResult result;
  result.seconds = std::chrono::duration<double>(end - start).count();
  result.per_thread_ops.reserve(total_threads);
  for (int t = 0; t < total_threads; ++t) {
    result.total_ops += counters[t].ops;
    result.group_ops[group_of[t]] += counters[t].ops;
    result.range_queries += counters[t].range_queries;
    result.range_items += counters[t].range_items;
    result.per_thread_ops.push_back(counters[t].ops);
    result.perf += thread_perf[t];
  }
  obs::flight::perf_phase_add("measure", result.perf);
  return result;
}

/// Convenience: single uniform group of `threads` threads.
template <class S, class Codec = IntKeyCodec>
RunResult run_mix(S& structure, int threads, const Mix& mix, Key key_range,
                  double duration_seconds, std::uint64_t seed = 1) {
  return run_mix<S, Codec>(structure, std::vector<ThreadGroup>{{threads, mix}},
                           key_range, duration_seconds, seed);
}

// ---------------------------------------------------------------------------
// Monitored-run mode.
//
// Wraps one benchmark run in the active observability stack: a background
// obs::Monitor sampling rates at --monitor-interval-ms, and an embedded
// obs::HttpServer on --monitor-port serving /metrics (Prometheus),
// /stats.json, /topology.json and /healthz while the run is under load.
// finish() (or the destructor) stops both and writes the final snapshot
// (--metrics-out) and the rate time-series (--series-out) — the single
// code path every bench binary uses for metrics dumping.
//
// Lifetime: the sources capture the structure, so a MonitoredRun must be
// declared after (destroyed before) the structure and its domain.
// ---------------------------------------------------------------------------

#if CATS_OBS_ENABLED

class MonitoredRun {
 public:
  using StatsSource = obs::Monitor::StatsSource;
  using TopologySource = obs::Monitor::TopologySource;

  MonitoredRun(const Options& opt, StatsSource stats,
               TopologySource topology = {})
      : stats_(std::move(stats)), metrics_path_(opt.metrics_out),
        series_path_(opt.series_out), trace_path_(opt.trace_out) {
    // The flight recorder turns on when a trace file was requested or a
    // live endpoint could serve /trace.json; otherwise every begin_span in
    // the workers stays on its two-instruction disabled path.
    if (!opt.trace_out.empty() || opt.monitor_port >= 0) {
      obs::flight::Recorder::instance().enable(
          static_cast<unsigned>(opt.trace_sample_shift));
      flight_enabled_ = true;
    }
    if (opt.monitor_interval_ms > 0) {
      obs::Monitor::Config config;
      config.interval = std::chrono::milliseconds(opt.monitor_interval_ms);
      // The stats source already carries the topology as gauges
      // (tree_stats_source), so the monitor gets no separate topology
      // source — one tree walk per sample, no duplicate CSV columns.  The
      // topology source only feeds the /topology.json route.
      monitor_ = std::make_unique<obs::Monitor>(config, stats_);
      monitor_->start();
    }
    if (opt.monitor_port >= 0) {
      server_ = std::make_unique<obs::HttpServer>(opt.monitor_port);
      server_->handle("/healthz", "text/plain",
                      [] { return std::string("ok\n"); });
      server_->handle("/metrics", "text/plain; version=0.0.4",
                      [src = stats_] {
                        std::ostringstream os;
                        obs::write_prometheus(os, src());
                        return os.str();
                      });
      server_->handle("/stats.json", "application/json", [src = stats_] {
        std::ostringstream os;
        obs::write_json(os, src());
        return os.str();
      });
      if (topology) {
        server_->handle("/topology.json", "application/json",
                        [src = topology] {
                          std::ostringstream os;
                          obs::write_topology_json(os, src());
                          return os.str();
                        });
      }
      if (flight_enabled_) {
        server_->handle("/trace.json", "application/json", [] {
          std::ostringstream os;
          obs::flight::write_chrome_trace(os);
          return os.str();
        });
      }
      if (server_->start()) {
        std::fprintf(stderr,
                     "monitor: serving http://127.0.0.1:%d/metrics\n",
                     server_->port());
      } else {
        server_.reset();
      }
    }
  }

  ~MonitoredRun() { finish(); }
  MonitoredRun(const MonitoredRun&) = delete;
  MonitoredRun& operator=(const MonitoredRun&) = delete;

  /// Bound HTTP port, or -1 when no endpoint is up.
  int port() const { return server_ ? server_->port() : -1; }
  obs::Monitor* monitor() { return monitor_.get(); }

  /// Stops the endpoint and the sampler and writes the output files.
  /// Idempotent; also run by the destructor.
  void finish() {
    if (finished_) return;
    finished_ = true;
    if (server_) server_->stop();
    if (monitor_) monitor_->stop();
    if (!trace_path_.empty()) {
      std::ofstream out(trace_path_);
      bool ok = static_cast<bool>(out);
      if (ok) {
        obs::flight::write_chrome_trace(out);
        out << '\n';
        ok = static_cast<bool>(out);
      }
      if (ok) {
        std::fprintf(stderr,
                     "monitor: trace written to %s (%llu spans recorded, "
                     "%llu overwritten)\n",
                     trace_path_.c_str(),
                     static_cast<unsigned long long>(
                         obs::flight::Recorder::instance().recorded()),
                     static_cast<unsigned long long>(
                         obs::flight::Recorder::instance().dropped()));
      } else {
        std::fprintf(stderr, "monitor: failed to write %s\n",
                     trace_path_.c_str());
      }
    }
    if (flight_enabled_) obs::flight::Recorder::instance().disable();
    if (!metrics_path_.empty()) {
      obs::Snapshot snap = stats_();
      // Per-phase hardware counters ride in the final snapshot only: they
      // are gathered at phase end, so the live monitor never sees them.
      obs::flight::append_perf_phases(snap);
      if (obs::write_json_file(metrics_path_, snap)) {
        std::fprintf(stderr, "monitor: metrics written to %s\n",
                     metrics_path_.c_str());
      } else {
        std::fprintf(stderr, "monitor: failed to write %s\n",
                     metrics_path_.c_str());
      }
    }
    if (monitor_ && !series_path_.empty()) {
      if (monitor_->write_csv_file(series_path_)) {
        std::fprintf(stderr, "monitor: time series written to %s\n",
                     series_path_.c_str());
      } else {
        std::fprintf(stderr, "monitor: failed to write %s\n",
                     series_path_.c_str());
      }
    }
  }

 private:
  StatsSource stats_;
  std::string metrics_path_;
  std::string series_path_;
  std::string trace_path_;
  std::unique_ptr<obs::Monitor> monitor_;
  std::unique_ptr<obs::HttpServer> server_;
  bool flight_enabled_ = false;
  bool finished_ = false;
};

/// Sources for an LFCA-style tree (anything with stats() and
/// collect_topology()): the global registry snapshot plus the tree's own
/// counters, and the EBR-guarded topology walk.
template <class Tree>
MonitoredRun::StatsSource tree_stats_source(Tree& tree,
                                            std::string prefix = "lfca_") {
  return [&tree, prefix] {
    obs::Snapshot snap = obs::global_snapshot();
    tree.stats().append_to(snap, prefix);
    tree.collect_topology().append_to(snap, prefix + "topo_");
    return snap;
  };
}

template <class Tree>
MonitoredRun::TopologySource tree_topology_source(Tree& tree) {
  return [&tree] { return tree.collect_topology(); };
}

#else  // !CATS_OBS_ENABLED

/// CATS_OBS=OFF stub: same shape, no thread, no socket, no output.  The
/// sources are cheap no-op placeholders so call sites compile unchanged.
class MonitoredRun {
 public:
  using StatsSource = int;
  using TopologySource = int;

  MonitoredRun(const Options& opt, StatsSource = 0, TopologySource = 0) {
    if (opt.monitor_interval_ms > 0 || opt.monitor_port >= 0 ||
        !opt.metrics_out.empty() || !opt.series_out.empty() ||
        !opt.trace_out.empty()) {
      std::fprintf(stderr,
                   "monitor: requested but compiled out (CATS_OBS=OFF)\n");
    }
  }
  int port() const { return -1; }
  void finish() {}
};

template <class Tree>
MonitoredRun::StatsSource tree_stats_source(Tree&,
                                            const std::string& = "lfca_") {
  return 0;
}
template <class Tree>
MonitoredRun::TopologySource tree_topology_source(Tree&) {
  return 0;
}

#endif  // CATS_OBS_ENABLED

}  // namespace cats::harness
