// Workload specification for the paper's benchmarks (§7).
//
// Scenarios are strings of the form  w:A% r:B% q:C%-R  meaning (A/2)%
// insert, (A/2)% remove, B% lookup and C% range queries whose sizes are
// uniform in [1, R].  Keys are uniform in [0, S); structures are pre-filled
// with S/2 random keys before measuring.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/strkey.hpp"
#include "common/types.hpp"
#include "obs/flight/perf_counters.hpp"

namespace cats::harness {

// ---------------------------------------------------------------------------
// Key codecs.
//
// The workload generator draws integer keys uniformly from [0, S); a codec
// maps that stream onto the key type of the structure under test, so the
// same scenarios drive both the integer fast path and the string-key
// instantiations.  A codec provides:
//   StructKey        — the structure's key type
//   kName            — CLI name (--key-type=...)
//   encode(Key)      — order-preserving mapping from the generator's keys
//   weight(StructKey)— cheap integer digest, summed by range queries so the
//                      scan cannot be optimized away
// ---------------------------------------------------------------------------

/// Identity codec for the integer fast path.
struct IntKeyCodec {
  using StructKey = Key;
  static constexpr const char* kName = "int";
  static Key encode(Key k) { return k; }
  static std::uint64_t weight(Key k) { return static_cast<std::uint64_t>(k); }
};

/// Zero-padded decimal rendering: lexicographic order equals numeric order
/// for the generator's non-negative keys, and 14 digits keep every key
/// inline in StrKey's small-string buffer — the hot path never touches the
/// intern table (common/strkey.hpp).
struct StrKeyCodec {
  using StructKey = StrKey;
  static constexpr const char* kName = "str";
  static StrKey encode(Key k) {
    // 24 bytes fit any int64 rendering; harness keys stay in [0, S), so
    // the result is always exactly 14 digits and stays inline.
    char buf[24];
    std::snprintf(buf, sizeof buf, "%014lld", static_cast<long long>(k));
    return StrKey::make(buf);
  }
  static std::uint64_t weight(const StrKey& k) {
    return static_cast<std::uint64_t>(k.view().size());
  }
};

struct Mix {
  /// Updates (insert + remove, split evenly), in permille of operations.
  std::uint32_t update_permille = 0;
  /// Lookups, in permille.
  std::uint32_t lookup_permille = 0;
  /// Range queries, in permille (the remainder must sum to 1000).
  std::uint32_t range_permille = 0;
  /// Maximum range-query span; sizes are uniform in [1, range_max].
  std::int64_t range_max = 0;
  /// If true, every range query spans exactly `range_max` keys (Fig. 10).
  bool fixed_range_size = false;

  /// Paper-style constructor from percentages: w:A% r:B% q:C%-R.
  static Mix of_percent(unsigned w, unsigned r, unsigned q,
                        std::int64_t range = 0, bool fixed = false) {
    return Mix{w * 10, r * 10, q * 10, range, fixed};
  }

  std::string describe() const {
    std::string s = "w:" + std::to_string(update_permille / 10) +
                    "% r:" + std::to_string(lookup_permille / 10) +
                    "% q:" + std::to_string(range_permille / 10) + "%";
    if (range_permille > 0) {
      s += '-';
      s += std::to_string(range_max);
      if (fixed_range_size) s += " (fixed)";
    }
    return s;
  }
};

/// A group of threads running one mix (Fig. 10 uses two groups).
struct ThreadGroup {
  int threads = 0;
  Mix mix;
};

struct RunResult {
  double seconds = 0;
  /// Completed operations per thread group, in group order.
  std::uint64_t group_ops[4] = {0, 0, 0, 0};
  std::uint64_t total_ops = 0;
  std::uint64_t range_queries = 0;
  std::uint64_t range_items = 0;
  /// Completed operations per thread, in spawn order.  Fairness check: a
  /// starved thread (ops_min far below ops_max) invalidates a throughput
  /// comparison even when the total looks fine.
  std::vector<std::uint64_t> per_thread_ops;
  /// Hardware counters summed over the worker threads of the measure
  /// phase.  `perf.available` is false (with a reason) when the counters
  /// could not be opened or are compiled out — never fails the run.
  obs::flight::PerfCounts perf;

  double throughput_mops() const {
    return seconds > 0 ? static_cast<double>(total_ops) / seconds / 1e6 : 0;
  }
  double group_mops(int group) const {
    return seconds > 0 ? static_cast<double>(group_ops[group]) / seconds / 1e6
                       : 0;
  }
  /// Sanity statistic from the paper: average items traversed per query.
  double items_per_range_query() const {
    return range_queries > 0 ? static_cast<double>(range_items) /
                                   static_cast<double>(range_queries)
                             : 0;
  }

  std::uint64_t ops_min() const {
    return per_thread_ops.empty()
               ? 0
               : *std::min_element(per_thread_ops.begin(),
                                   per_thread_ops.end());
  }
  std::uint64_t ops_max() const {
    return per_thread_ops.empty()
               ? 0
               : *std::max_element(per_thread_ops.begin(),
                                   per_thread_ops.end());
  }
  /// Population standard deviation of per-thread op counts.
  double ops_stddev() const {
    if (per_thread_ops.size() < 2) return 0;
    const double n = static_cast<double>(per_thread_ops.size());
    double mean = 0;
    for (std::uint64_t ops : per_thread_ops) {
      mean += static_cast<double>(ops);
    }
    mean /= n;
    double var = 0;
    for (std::uint64_t ops : per_thread_ops) {
      const double d = static_cast<double>(ops) - mean;
      var += d * d;
    }
    return std::sqrt(var / n);
  }
};

}  // namespace cats::harness
