// Minimal command-line options shared by the figure/table benchmark
// binaries.  Defaults are scaled down from the paper's 10-second,
// 10^6-key runs so the whole suite finishes in CI time; pass --paper for
// the full-scale parameters.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "check/check.hpp"
#include "common/types.hpp"

namespace cats::harness {

/// Process-wide period of the in-workload tree validator (0 = disabled).
/// Set by Options::parse from --check-every-n-ops; read by run_mix workers.
/// Only effective in CATS_CHECKED builds — the validator is compiled out
/// otherwise.
inline std::atomic<std::uint64_t> g_check_every_n_ops{0};

struct Options {
  /// Seconds measured per data point.
  double duration = 0.25;
  /// Measurement repetitions averaged per data point.
  int runs = 1;
  /// Key range S; the structure is pre-filled with S/2 items.
  Key size = 100'000;
  /// Thread counts for sweeps.
  std::vector<int> threads = {1, 2, 4, 8};
  /// Emit machine-readable CSV instead of the table layout.
  bool csv = false;
  /// Run only the structure with this name (empty = all).
  std::string only;
  /// LFCA heuristic overrides (paper defaults when untouched).  On hosts
  /// with few hardware threads, genuine CAS contention is rare and the
  /// paper's +/-1000 thresholds barely trigger; --sensitive drops them so
  /// the adaptation *direction* is still demonstrable (see EXPERIMENTS.md).
  int high_cont = 1000;
  int low_cont = -1000;
  int cont_contrib = 250;
  /// Live monitoring (CATS_OBS builds; see harness::MonitoredRun).
  /// Sampling interval of the background monitor; 0 disables the sampler.
  int monitor_interval_ms = 0;
  /// HTTP endpoint port (-1 disabled, 0 ephemeral — the bound port is
  /// printed to stderr).
  int monitor_port = -1;
  /// Where the final metrics snapshot (JSON) is written; empty = nowhere.
  std::string metrics_out;
  /// Where the monitor's rate time-series (CSV) is written; empty =
  /// nowhere.  Needs --monitor-interval-ms > 0 to have any rows.
  std::string series_out;
  /// Run the concurrent-mode tree validator every N operations per worker
  /// thread (CATS_CHECKED builds; 0 = never).  A failed validation aborts
  /// with the diagnostic report.
  std::uint64_t check_every_n_ops = 0;

  static Options parse(int argc, char** argv) {
    Options opt;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto value = [&](const char* prefix) -> const char* {
        return arg.compare(0, std::strlen(prefix), prefix) == 0
                   ? arg.c_str() + std::strlen(prefix)
                   : nullptr;
      };
      if (const char* v = value("--duration=")) {
        opt.duration = std::atof(v);
      } else if (const char* v = value("--runs=")) {
        opt.runs = std::atoi(v);
      } else if (const char* v = value("--size=")) {
        opt.size = std::atoll(v);
      } else if (const char* v = value("--threads=")) {
        opt.threads.clear();
        std::string list(v);
        std::size_t pos = 0;
        while (pos < list.size()) {
          const std::size_t comma = list.find(',', pos);
          opt.threads.push_back(
              std::atoi(list.substr(pos, comma - pos).c_str()));
          if (comma == std::string::npos) break;
          pos = comma + 1;
        }
      } else if (arg == "--csv") {
        opt.csv = true;
      } else if (const char* v = value("--only=")) {
        opt.only = v;
      } else if (const char* v = value("--high-cont=")) {
        opt.high_cont = std::atoi(v);
      } else if (const char* v = value("--low-cont=")) {
        opt.low_cont = std::atoi(v);
      } else if (const char* v = value("--cont-contrib=")) {
        opt.cont_contrib = std::atoi(v);
      } else if (arg == "--sensitive") {
        opt.high_cont = 0;
        opt.low_cont = -100;
      } else if (const char* v = value("--monitor-interval-ms=")) {
        opt.monitor_interval_ms = std::atoi(v);
      } else if (const char* v = value("--monitor-port=")) {
        opt.monitor_port = std::atoi(v);
      } else if (const char* v = value("--metrics-out=")) {
        opt.metrics_out = v;
      } else if (const char* v = value("--series-out=")) {
        opt.series_out = v;
      } else if (const char* v = value("--check-every-n-ops=")) {
        opt.check_every_n_ops = std::strtoull(v, nullptr, 10);
        g_check_every_n_ops.store(opt.check_every_n_ops,
                                  std::memory_order_relaxed);
        if (!check::kCheckedEnabled && opt.check_every_n_ops != 0) {
          std::fprintf(stderr,
                       "--check-every-n-ops: requested but compiled out "
                       "(CATS_CHECKED=OFF)\n");
        }
      } else if (arg == "--paper") {
        // The paper's configuration (§7): S = 10^6, 10 s runs, 3 runs
        // averaged, thread counts up to 128.
        opt.size = 1'000'000;
        opt.duration = 10.0;
        opt.runs = 3;
        opt.threads = {1, 2, 4, 8, 16, 32, 64, 128};
      } else if (arg == "--help" || arg == "-h") {
        std::printf(
            "options: --duration=SEC --runs=N --size=S --threads=a,b,c "
            "--csv --only=NAME --paper --sensitive --high-cont=X "
            "--low-cont=X --cont-contrib=X --monitor-interval-ms=MS "
            "--monitor-port=P --metrics-out=FILE --series-out=FILE "
            "--check-every-n-ops=N\n");
        std::exit(0);
      } else {
        std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
        std::exit(2);
      }
    }
    return opt;
  }
};

}  // namespace cats::harness
