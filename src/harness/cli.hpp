// Minimal command-line options shared by the figure/table benchmark
// binaries.  Defaults are scaled down from the paper's 10-second,
// 10^6-key runs so the whole suite finishes in CI time; pass --paper for
// the full-scale parameters.
#pragma once

#include <atomic>
#include <climits>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "check/check.hpp"
#include "common/types.hpp"
#include "obs/obs.hpp"

namespace cats::harness {

/// Process-wide period of the in-workload tree validator (0 = disabled).
/// Set by Options::parse from --check-every-n-ops; read by run_mix workers.
/// Only effective in CATS_CHECKED builds — the validator is compiled out
/// otherwise.
inline std::atomic<std::uint64_t> g_check_every_n_ops{0};

namespace detail {

// Strict numeric parsers: the whole value must parse (no trailing garbage,
// no empty string), unlike atoi/atof which silently return 0.

inline bool parse_double(const char* s, double* out) {
  if (*s == '\0') return false;
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  if (end == s || *end != '\0') return false;
  *out = v;
  return true;
}

inline bool parse_i64(const char* s, long long* out) {
  if (*s == '\0') return false;
  char* end = nullptr;
  const long long v = std::strtoll(s, &end, 10);
  if (end == s || *end != '\0') return false;
  *out = v;
  return true;
}

inline bool parse_int(const char* s, int* out) {
  long long v = 0;
  if (!parse_i64(s, &v) || v < INT_MIN || v > INT_MAX) return false;
  *out = static_cast<int>(v);
  return true;
}

inline bool parse_u64(const char* s, std::uint64_t* out) {
  long long v = 0;
  if (!parse_i64(s, &v) || v < 0) return false;
  *out = static_cast<std::uint64_t>(v);
  return true;
}

}  // namespace detail

struct Options {
  /// Seconds measured per data point.
  double duration = 0.25;
  /// Measurement repetitions averaged per data point.
  int runs = 1;
  /// Key range S; the structure is pre-filled with S/2 items.
  Key size = 100'000;
  /// Thread counts for sweeps.
  std::vector<int> threads = {1, 2, 4, 8};
  /// Emit machine-readable CSV instead of the table layout.
  bool csv = false;
  /// Run only the structure with this name (empty = all).
  std::string only;
  /// Key type driven through the structures: "int" (the fast path) or
  /// "str" (StrKey instantiations via harness::StrKeyCodec).  Binaries
  /// without a string-keyed roster reject "str" themselves.
  std::string key_type = "int";
  /// LFCA heuristic overrides (paper defaults when untouched).  On hosts
  /// with few hardware threads, genuine CAS contention is rare and the
  /// paper's +/-1000 thresholds barely trigger; --sensitive drops them so
  /// the adaptation *direction* is still demonstrable (see EXPERIMENTS.md).
  int high_cont = 1000;
  int low_cont = -1000;
  int cont_contrib = 250;
  /// Live monitoring (CATS_OBS builds; see harness::MonitoredRun).
  /// Sampling interval of the background monitor; 0 disables the sampler.
  int monitor_interval_ms = 0;
  /// HTTP endpoint port (-1 disabled, 0 ephemeral — the bound port is
  /// printed to stderr).
  int monitor_port = -1;
  /// Where the final metrics snapshot (JSON) is written; empty = nowhere.
  std::string metrics_out;
  /// Where the monitor's rate time-series (CSV) is written; empty =
  /// nowhere.  Needs --monitor-interval-ms > 0 to have any rows.
  std::string series_out;
  /// Run the concurrent-mode tree validator every N operations per worker
  /// thread (CATS_CHECKED builds; 0 = never).  A failed validation aborts
  /// with the diagnostic report.
  std::uint64_t check_every_n_ops = 0;
  /// Where the flight-recorder timeline (Chrome/Perfetto trace-event JSON)
  /// is written; empty = flight recorder stays off unless the monitor
  /// endpoint is up.  Hard error in CATS_OBS=OFF builds — a silently empty
  /// trace is worse than a refused run.
  std::string trace_out;
  /// Flight-recorder sampling: record every 2^shift-th operation per
  /// thread (0 = every op, default 10 = 1/1024).
  int trace_sample_shift = 10;

  /// Parses argv into `opt`.  Returns false (with a one-line message in
  /// `error`) on the first unknown flag, duplicate flag, malformed numeric
  /// value or out-of-range value — instead of silently taking the last
  /// occurrence or atoi's garbage-to-zero parse.  `--help` is reported via
  /// `help_requested` so the caller owns the exit.  Exposed separately from
  /// parse() for unit testing (harness_test.cpp).
  static bool parse_into(int argc, char** argv, Options& opt,
                         std::string& error, bool* help_requested = nullptr) {
    std::vector<std::string> seen;
    if (help_requested != nullptr) *help_requested = false;
    auto fail = [&](const std::string& msg) {
      error = msg;
      return false;
    };
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      const std::size_t eq = arg.find('=');
      const std::string name = arg.substr(0, eq);
      auto value = [&](const char* prefix) -> const char* {
        return arg.compare(0, std::strlen(prefix), prefix) == 0
                   ? arg.c_str() + std::strlen(prefix)
                   : nullptr;
      };
      if (arg == "--help" || arg == "-h") {
        if (help_requested != nullptr) *help_requested = true;
        return true;
      }
      // Every other flag is single-use: a repeated flag is almost always a
      // stale shell history edit, and silently taking the last value has
      // burned enough benchmark runs to reject it outright.
      for (const std::string& s : seen) {
        if (s == name) return fail("duplicate option: " + name);
      }
      seen.push_back(name);
      if (const char* v = value("--duration=")) {
        if (!detail::parse_double(v, &opt.duration) || opt.duration <= 0) {
          return fail("--duration: expected a positive number, got '" +
                      std::string(v) + "'");
        }
      } else if (const char* v = value("--runs=")) {
        if (!detail::parse_int(v, &opt.runs) || opt.runs < 1) {
          return fail("--runs: expected a positive integer, got '" +
                      std::string(v) + "'");
        }
      } else if (const char* v = value("--size=")) {
        long long size = 0;
        if (!detail::parse_i64(v, &size) || size < 1) {
          return fail("--size: expected a positive integer, got '" +
                      std::string(v) + "'");
        }
        opt.size = size;
      } else if (const char* v = value("--threads=")) {
        opt.threads.clear();
        std::string list(v);
        std::size_t pos = 0;
        while (true) {
          const std::size_t comma = list.find(',', pos);
          const std::string item = list.substr(pos, comma - pos);
          int n = 0;
          if (!detail::parse_int(item.c_str(), &n) || n < 1) {
            return fail("--threads: expected positive integers, got '" +
                        item + "'");
          }
          opt.threads.push_back(n);
          if (comma == std::string::npos) break;
          pos = comma + 1;
        }
      } else if (arg == "--csv") {
        opt.csv = true;
      } else if (const char* v = value("--only=")) {
        opt.only = v;
      } else if (const char* v = value("--key-type=")) {
        if (std::strcmp(v, "int") != 0 && std::strcmp(v, "str") != 0) {
          return fail("--key-type: expected 'int' or 'str', got '" +
                      std::string(v) + "'");
        }
        opt.key_type = v;
      } else if (const char* v = value("--high-cont=")) {
        if (!detail::parse_int(v, &opt.high_cont)) {
          return fail("--high-cont: expected an integer, got '" +
                      std::string(v) + "'");
        }
      } else if (const char* v = value("--low-cont=")) {
        if (!detail::parse_int(v, &opt.low_cont)) {
          return fail("--low-cont: expected an integer, got '" +
                      std::string(v) + "'");
        }
      } else if (const char* v = value("--cont-contrib=")) {
        if (!detail::parse_int(v, &opt.cont_contrib)) {
          return fail("--cont-contrib: expected an integer, got '" +
                      std::string(v) + "'");
        }
      } else if (arg == "--sensitive") {
        opt.high_cont = 0;
        opt.low_cont = -100;
      } else if (const char* v = value("--monitor-interval-ms=")) {
        if (!detail::parse_int(v, &opt.monitor_interval_ms) ||
            opt.monitor_interval_ms < 0) {
          return fail(
              "--monitor-interval-ms: expected a non-negative integer, "
              "got '" +
              std::string(v) + "'");
        }
      } else if (const char* v = value("--monitor-port=")) {
        if (!detail::parse_int(v, &opt.monitor_port) ||
            opt.monitor_port < -1 || opt.monitor_port > 65535) {
          return fail("--monitor-port: expected -1..65535, got '" +
                      std::string(v) + "'");
        }
      } else if (const char* v = value("--metrics-out=")) {
        opt.metrics_out = v;
      } else if (const char* v = value("--series-out=")) {
        opt.series_out = v;
      } else if (const char* v = value("--check-every-n-ops=")) {
        if (!detail::parse_u64(v, &opt.check_every_n_ops)) {
          return fail(
              "--check-every-n-ops: expected a non-negative integer, "
              "got '" +
              std::string(v) + "'");
        }
        g_check_every_n_ops.store(opt.check_every_n_ops,
                                  std::memory_order_relaxed);
        if (!check::kCheckedEnabled && opt.check_every_n_ops != 0) {
          std::fprintf(stderr,
                       "--check-every-n-ops: requested but compiled out "
                       "(CATS_CHECKED=OFF)\n");
        }
      } else if (const char* v = value("--trace-out=")) {
        if (*v == '\0') {
          return fail("--trace-out: expected a file path, got ''");
        }
        if (!obs::kEnabled) {
          // Unlike --check-every-n-ops (a validator that can degrade to a
          // warning), a trace request with no recorder would produce
          // nothing at all — refuse instead of no-opping.
          return fail(
              "--trace-out: flight recorder compiled out (CATS_OBS=OFF)");
        }
        opt.trace_out = v;
      } else if (const char* v = value("--trace-sample-shift=")) {
        if (!detail::parse_int(v, &opt.trace_sample_shift) ||
            opt.trace_sample_shift < 0 || opt.trace_sample_shift > 20) {
          return fail("--trace-sample-shift: expected 0..20, got '" +
                      std::string(v) + "'");
        }
        if (!obs::kEnabled) {
          return fail(
              "--trace-sample-shift: flight recorder compiled out "
              "(CATS_OBS=OFF)");
        }
      } else if (arg == "--paper") {
        // The paper's configuration (§7): S = 10^6, 10 s runs, 3 runs
        // averaged, thread counts up to 128.
        opt.size = 1'000'000;
        opt.duration = 10.0;
        opt.runs = 3;
        opt.threads = {1, 2, 4, 8, 16, 32, 64, 128};
      } else {
        return fail("unknown option: " + arg);
      }
    }
    return true;
  }

  static Options parse(int argc, char** argv) {
    Options opt;
    std::string error;
    bool help = false;
    if (!parse_into(argc, argv, opt, error, &help)) {
      std::fprintf(stderr, "%s\n", error.c_str());
      std::exit(2);
    }
    if (help) {
      std::printf(
          "options: --duration=SEC --runs=N --size=S --threads=a,b,c "
          "--csv --only=NAME --key-type=int|str --paper --sensitive "
          "--high-cont=X "
          "--low-cont=X --cont-contrib=X --monitor-interval-ms=MS "
          "--monitor-port=P --metrics-out=FILE --series-out=FILE "
          "--check-every-n-ops=N --trace-out=FILE "
          "--trace-sample-shift=N\n");
      std::exit(0);
    }
    return opt;
  }
};

}  // namespace cats::harness
