// Lock-free k-ary search tree baseline (Brown & Helga 2011, range queries
// per Brown & Avni 2012).
//
// The fixed-granularity fine-grained baseline of the paper (§1, §3, Fig. 1a
// "k-ary (k=64)").  Structure:
//
//   * an external tree whose leaves hold immutable containers of at most
//     k = 64 items (we reuse the fat-leaf container from src/treap, capped
//     at one leaf's worth of items, so leaf replacement costs what the
//     original's immutable arrays cost);
//   * updates replace a leaf with CAS; a leaf that would exceed k items is
//     split into two leaves under a new route node.  Leaves never join and
//     route nodes are never removed: the synchronization granularity is
//     fixed at construction time, which is exactly the property the LFCA
//     tree improves on;
//   * range queries do a read scan followed by a validation scan of the
//     immutable leaves and retry on mismatch [4] — the method §6 of the
//     paper adopts for its optimistic fast path, and which is prone to
//     starvation under update load (the paper's criticism in §1).
//
// Structural difference from the original: routing is binary rather than
// k-ary (the original packs up to k-1 keys per internal node).  This affects
// pointer-chasing constants, not the synchronization granularity, conflict
// windows, or retry behaviour the evaluation compares.
#pragma once

#include <atomic>
#include <cstddef>
#include <vector>

#include "common/function_ref.hpp"
#include "common/types.hpp"
#include "reclaim/ebr.hpp"
#include "treap/treap.hpp"

namespace cats::kary {

class KaryTree {
 public:
  struct Node;  // opaque; defined in kary_tree.cpp

  explicit KaryTree(reclaim::Domain& domain = reclaim::Domain::global(),
                    std::uint32_t k = 64);
  ~KaryTree();

  KaryTree(const KaryTree&) = delete;
  KaryTree& operator=(const KaryTree&) = delete;

  /// Lock-free; true iff the key was not present before.
  bool insert(Key key, Value value);
  /// Lock-free; true iff the key was present.
  bool remove(Key key);
  /// Wait-free.
  bool lookup(Key key, Value* value_out = nullptr) const;
  /// Linearizable scan-validate range query; retries under interference.
  void range_query(Key lo, Key hi, ItemVisitor visit) const;

  std::size_t size() const;
  std::size_t route_node_count() const;
  /// Validation failures observed by range queries (starvation indicator).
  std::uint64_t range_retries() const {
    return range_retries_.load(std::memory_order_relaxed);
  }

  reclaim::Domain& domain() const { return domain_; }

 private:
  Node* find_leaf(Key key) const;
  bool try_replace(Node* leaf, Node* replacement);
  void collect(Node* n, Key lo, Key hi, std::vector<Node*>& leaves) const;

  reclaim::Domain& domain_;
  const std::uint32_t k_;
  std::atomic<Node*> root_;
  mutable std::atomic<std::uint64_t> range_retries_{0};
};

}  // namespace cats::kary
