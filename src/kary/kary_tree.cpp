#include "kary/kary_tree.hpp"

#include <cassert>

namespace cats::kary {

// Route nodes are immutable except for their child pointers and, once
// created, are never unlinked (no joins): a leaf's parent pointer is
// permanent, which keeps try_replace simple.
struct KaryTree::Node {
  const bool is_route;
  // route
  const Key key;
  std::atomic<Node*> left{nullptr};
  std::atomic<Node*> right{nullptr};
  // leaf
  const treap::Node* data;  // owned reference, <= k items
  Node* const parent;

  Node(Key route_key)  // route
      : is_route(true), key(route_key), data(nullptr), parent(nullptr) {}
  Node(const treap::Node* d, Node* p)  // leaf (takes ownership of d)
      : is_route(false), key(0), data(d), parent(p) {}
  ~Node() {
    if (data != nullptr) treap::detail::decref(data);
  }
};

namespace {

// catslint: direct-delete(EBR deleter; runs after the grace period)
void node_deleter(void* p) { delete static_cast<KaryTree::Node*>(p); }

}  // namespace

KaryTree::KaryTree(reclaim::Domain& domain, std::uint32_t k)
    : domain_(domain), k_(k) {
  root_.store(new Node(nullptr, nullptr), std::memory_order_release);
}

namespace {

// catslint: quiescent(destructor-only teardown; no concurrent operations)
void destroy_rec(KaryTree::Node* n) {
  if (n == nullptr) return;
  if (n->is_route) {
    destroy_rec(n->left.load(std::memory_order_relaxed));
    destroy_rec(n->right.load(std::memory_order_relaxed));
  }
  delete n;  // catslint: direct-delete(quiescent teardown; tree is private)
}

}  // namespace

// catslint: quiescent(destructor; caller guarantees no concurrent access)
KaryTree::~KaryTree() { destroy_rec(root_.load(std::memory_order_relaxed)); }

KaryTree::Node* KaryTree::find_leaf(Key key) const {
  Node* n = root_.load(std::memory_order_acquire);
  while (n->is_route) {
    n = (key < n->key ? n->left : n->right).load(std::memory_order_acquire);
  }
  return n;
}

bool KaryTree::try_replace(Node* leaf, Node* replacement) {
  bool done = false;
  if (leaf->parent == nullptr) {
    Node* expected = leaf;
    done = root_.compare_exchange_strong(expected, replacement,
                                         std::memory_order_acq_rel);
  } else if (leaf->parent->left.load(std::memory_order_acquire) == leaf) {
    Node* expected = leaf;
    done = leaf->parent->left.compare_exchange_strong(
        expected, replacement, std::memory_order_acq_rel);
  } else if (leaf->parent->right.load(std::memory_order_acquire) == leaf) {
    Node* expected = leaf;
    done = leaf->parent->right.compare_exchange_strong(
        expected, replacement, std::memory_order_acq_rel);
  }
  if (done) domain_.retire(leaf, &node_deleter);
  return done;
}

bool KaryTree::insert(Key key, Value value) {
  reclaim::Domain::Guard guard(domain_);
  while (true) {
    Node* leaf = find_leaf(key);
    bool replaced = false;
    treap::Ref next = treap::insert(leaf->data, key, value, &replaced);
    if (treap::size(next) <= k_) {
      auto* fresh = new Node(next.release(), leaf->parent);
      if (try_replace(leaf, fresh)) return !replaced;
      delete fresh;  // catslint: direct-delete(never published; CAS lost)
      continue;
    }
    // Overflow: split into two leaves under a new (permanent) route node.
    treap::Ref left_half;
    treap::Ref right_half;
    Key pivot = 0;
    treap::split_evenly(next.get(), &left_half, &right_half, &pivot);
    auto* route = new Node(pivot);
    auto* lleaf = new Node(left_half.release(), route);
    auto* rleaf = new Node(right_half.release(), route);
    route->left.store(lleaf, std::memory_order_relaxed);
    route->right.store(rleaf, std::memory_order_relaxed);
    // route->parent is unused for routes; leaves carry the parent.
    if (try_replace(leaf, route)) return !replaced;
    // All three were built locally and the CAS lost: never published.
    delete lleaf;  // catslint: direct-delete(never published; CAS lost)
    delete rleaf;  // catslint: direct-delete(never published; CAS lost)
    delete route;  // catslint: direct-delete(never published; CAS lost)
  }
}

bool KaryTree::remove(Key key) {
  reclaim::Domain::Guard guard(domain_);
  while (true) {
    Node* leaf = find_leaf(key);
    bool removed = false;
    treap::Ref next = treap::remove(leaf->data, key, &removed);
    if (!removed) return false;
    auto* fresh = new Node(next.release(), leaf->parent);
    if (try_replace(leaf, fresh)) return true;
    delete fresh;  // catslint: direct-delete(never published; CAS lost)
  }
}

bool KaryTree::lookup(Key key, Value* value_out) const {
  reclaim::Domain::Guard guard(domain_);
  return treap::lookup(find_leaf(key)->data, key, value_out);
}

void KaryTree::collect(Node* n, Key lo, Key hi,
                       std::vector<Node*>& leaves) const {
  if (n->is_route) {
    if (lo < n->key) {
      collect(n->left.load(std::memory_order_acquire), lo, hi, leaves);
    }
    if (hi >= n->key) {
      collect(n->right.load(std::memory_order_acquire), lo, hi, leaves);
    }
    return;
  }
  leaves.push_back(n);
}

// Brown & Avni scan-validate: two identical consecutive collects of
// immutable leaves form a consistent snapshot (no pointer can recycle while
// we hold the epoch guard).  Retries indefinitely under interference — this
// baseline's documented weakness.
void KaryTree::range_query(Key lo, Key hi, ItemVisitor visit) const {
  reclaim::Domain::Guard guard(domain_);
  std::vector<Node*> scan1;
  std::vector<Node*> scan2;
  while (true) {
    scan1.clear();
    collect(root_.load(std::memory_order_acquire), lo, hi, scan1);
    scan2.clear();
    collect(root_.load(std::memory_order_acquire), lo, hi, scan2);
    if (scan1 == scan2) break;
    range_retries_.fetch_add(1, std::memory_order_relaxed);
  }
  for (Node* leaf : scan1) treap::for_range(leaf->data, lo, hi, visit);
}

namespace {

std::size_t count_items(KaryTree::Node* n) {
  if (n->is_route) {
    return count_items(n->left.load(std::memory_order_acquire)) +
           count_items(n->right.load(std::memory_order_acquire));
  }
  return treap::size(n->data);
}

std::size_t count_routes(KaryTree::Node* n) {
  if (!n->is_route) return 0;
  return 1 + count_routes(n->left.load(std::memory_order_acquire)) +
         count_routes(n->right.load(std::memory_order_acquire));
}

}  // namespace

std::size_t KaryTree::size() const {
  reclaim::Domain::Guard guard(domain_);
  return count_items(root_.load(std::memory_order_acquire));
}

std::size_t KaryTree::route_node_count() const {
  reclaim::Domain::Guard guard(domain_);
  return count_routes(root_.load(std::memory_order_acquire));
}

}  // namespace cats::kary
