// Slab-backed node pools for the fixed-size hot node types.
//
// The paper's JVM implementation allocates a fresh node per path copy and
// lets the GC nursery absorb the cost; this C++ reproduction pays full
// `operator new` price on every treap path copy, base-node replacement and
// chunk rebuild.  The pool gives those types a thread-local free-list fast
// path backed by 64 KiB slabs, with a bounded lock-free transfer cache so
// memory freed on one thread (typically by an EBR deleter running on
// whichever thread drained the retirement list) flows back to allocating
// threads instead of accumulating.
//
// Design:
//  - Size classes are multiples of 64 bytes up to kMaxPooledBytes; larger
//    requests (big chunk nodes) fall through to ::operator new/delete.
//  - Each thread owns a ThreadCache of per-class singly-linked free lists.
//    Lists are capped; overflow is pushed to the transfer cache in batches.
//  - The transfer cache is a per-class array of atomic slots, each holding
//    the head of a detached chain.  Push is a release-CAS of null -> head,
//    pop is an acquire-exchange of the whole slot; since entire chains move
//    at once there is no ABA window.  When every slot is full, chains spill
//    to a mutex-protected overflow list (cold path).
//  - Slabs are carved by the allocating thread and registered in a central,
//    intentionally leaked registry: pool memory is never returned to the
//    OS, mirroring the tcmalloc/jemalloc central-cache design, and stays
//    reachable for leak checkers.
//
// Interaction with reclamation and checking: EBR deleters call the node
// types' class-scope `operator delete`, which routes here — so grace-period
// expiry returns nodes to the owning pool automatically.  Under
// CATS_CHECKED those deletes poison the storage *before* pool_free; the
// free-list link only overwrites the first word, so canaries (which live
// past offset 8 in every pooled type) still read as poison if a stale
// pointer is dereferenced after the free.
//
// The whole subsystem is compiled out with -DCATS_POOL=OFF, which reduces
// pool_alloc/pool_free to plain ::operator new/delete.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>

namespace cats::alloc {

#if CATS_POOL_ENABLED
inline constexpr bool kPoolEnabled = true;
#else
inline constexpr bool kPoolEnabled = false;
#endif

/// Size-class granularity and ceiling.  Classes are (c + 1) * 64 bytes.
inline constexpr std::size_t kClassGranularity = 64;
inline constexpr std::size_t kMaxPooledBytes = 2048;
inline constexpr std::size_t kNumClasses = kMaxPooledBytes / kClassGranularity;

/// Aggregate pool statistics (process-wide, monotonic except occupancy).
/// Approximate under concurrency — same contract as obs counters.
struct PoolStats {
  bool enabled = kPoolEnabled;
  std::uint64_t alloc_fast = 0;       ///< served from the thread-local list
  std::uint64_t alloc_transfer = 0;   ///< refilled from the transfer cache
  std::uint64_t alloc_slab = 0;       ///< slabs carved from ::operator new
  std::uint64_t alloc_fallback = 0;   ///< oversize or TLS-dead ::operator new
  std::uint64_t free_fast = 0;        ///< pushed onto the thread-local list
  std::uint64_t free_fallback = 0;    ///< oversize ::operator delete
  std::uint64_t transfer_push = 0;    ///< batches parked in the transfer cache
  std::uint64_t overflow_push = 0;    ///< batches spilled to the overflow list
  std::uint64_t cached_blocks = 0;    ///< blocks idle in caches right now
  std::uint64_t slab_bytes = 0;       ///< total bytes carved from the OS

  /// Fraction of pooled allocations served without carving a slab.
  double hit_rate() const {
    const std::uint64_t total = alloc_fast + alloc_transfer + alloc_slab;
    return total == 0 ? 1.0
                      : static_cast<double>(alloc_fast + alloc_transfer) /
                            static_cast<double>(total);
  }
};

#if CATS_POOL_ENABLED

/// Allocates `size` bytes (suitably aligned for any pooled node type).
/// Never returns null; aborts on OS OOM like ::operator new.
void* pool_alloc(std::size_t size);

/// Returns a block obtained from pool_alloc(size) with the same size.
void pool_free(void* p, std::size_t size) noexcept;

#else  // CATS_POOL_ENABLED

inline void* pool_alloc(std::size_t size) { return ::operator new(size); }
inline void pool_free(void* p, std::size_t size) noexcept {
  ::operator delete(p, size);
}

#endif  // CATS_POOL_ENABLED

/// Snapshot of the process-wide pool counters (all zero when the pool is
/// compiled out).  Safe from any thread at any time.
PoolStats pool_stats() noexcept;

/// Pushes the calling thread's entire cache to the transfer/overflow lists.
/// Test hook (makes cross-thread occupancy deterministic); no-op when the
/// pool is disabled or the thread's cache was already torn down.
void flush_thread_cache() noexcept;

}  // namespace cats::alloc
