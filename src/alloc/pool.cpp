#include "alloc/pool.hpp"

#include <atomic>
#include <cstring>
#include <mutex>
#include <vector>

#include "common/catomic.hpp"
#include "obs/flight/annot.hpp"

namespace cats::alloc {

#if CATS_POOL_ENABLED

namespace {

/// Free blocks are chained through their first word.  Every pooled node
/// type keeps its canary past offset 8, so the link never clobbers it.
struct FreeBlock {
  FreeBlock* next;
};

constexpr std::size_t kSlabBytes = 64 * 1024;
constexpr std::size_t kTransferSlots = 16;

/// Per-thread counters, owner-written with relaxed stores so pool_stats()
/// can read them from other threads without a lock or a race.
enum Stat : std::size_t {
  kStatAllocFast,
  kStatAllocTransfer,
  kStatAllocSlab,
  kStatAllocFallback,
  kStatFreeFast,
  kStatFreeFallback,
  kStatTransferPush,
  kStatOverflowPush,
  kStatCount,
};

constexpr std::size_t class_bytes(std::size_t c) {
  return (c + 1) * kClassGranularity;
}

constexpr std::size_t class_for(std::size_t size) {
  return (size + kClassGranularity - 1) / kClassGranularity - 1;
}

/// Thread-local list cap: small classes cache more blocks.  The cap bounds
/// per-thread idle memory at roughly 16 KiB per active class.
constexpr std::uint32_t cache_cap(std::size_t c) {
  const std::size_t cap = (16 * 1024) / class_bytes(c);
  return cap < 8 ? 8 : (cap > 256 ? 256 : static_cast<std::uint32_t>(cap));
}

/// Blocks released to the transfer cache per batch (half the cap, so a
/// thread oscillating around the cap doesn't thrash).
constexpr std::uint32_t release_batch(std::size_t c) { return cache_cap(c) / 2; }

struct ThreadCache;

/// Process-wide shared state.  Leaked on purpose: thread caches flush into
/// it from TLS destructors that may run during static destruction, and the
/// slab registry must stay reachable for leak checkers.
struct Central {
  /// Each slot holds the head of a detached same-class chain (or null).
  /// Push: CAS null -> head (release).  Pop: exchange whole slot (acquire).
  /// Whole-chain moves leave no ABA window.
  cats::atomic<void*> transfer[kNumClasses][kTransferSlots] = {};

  std::mutex overflow_mutex;
  std::vector<void*> overflow[kNumClasses];  // chain heads, cold spill

  std::mutex registry_mutex;
  std::vector<void*> slabs;            // carved slabs, never freed
  std::vector<ThreadCache*> caches;    // live thread caches (for stats)

  cats::atomic<std::uint64_t> transfer_blocks{0};
  cats::atomic<std::uint64_t> overflow_blocks{0};
  cats::atomic<std::uint64_t> slab_bytes{0};
  /// Counters of exited threads, plus events on cache-less threads.
  cats::atomic<std::uint64_t> dead_stats[kStatCount] = {};

  static Central& instance() {
    static Central* const central = new Central();  // leaked on purpose
    return *central;
  }

  void bump_dead(Stat s, std::uint64_t n = 1) {
    dead_stats[s].fetch_add(n, std::memory_order_relaxed);
  }

  /// Parks a chain of `n` blocks of class `c`; takes ownership.
  void park_chain(std::size_t c, void* head, std::uint64_t n, Stat* out) {
    for (auto& slot : transfer[c]) {
      void* expected = nullptr;
      if (slot.compare_exchange_strong(expected, head,
                                       std::memory_order_release,
                                       std::memory_order_relaxed)) {
        transfer_blocks.fetch_add(n, std::memory_order_relaxed);
        if (out != nullptr) *out = kStatTransferPush;
        return;
      }
    }
    std::lock_guard<std::mutex> lock(overflow_mutex);
    overflow[c].push_back(head);
    overflow_blocks.fetch_add(n, std::memory_order_relaxed);
    if (out != nullptr) *out = kStatOverflowPush;
  }

  /// Takes one parked chain of class `c`, or null.  Writes its length.
  void* take_chain(std::size_t c, std::uint64_t* n_out) {
    for (auto& slot : transfer[c]) {
      void* head = slot.exchange(nullptr, std::memory_order_acquire);
      if (head != nullptr) {
        const std::uint64_t n = chain_length(head);
        transfer_blocks.fetch_sub(n, std::memory_order_relaxed);
        *n_out = n;
        return head;
      }
    }
    std::lock_guard<std::mutex> lock(overflow_mutex);
    if (overflow[c].empty()) return nullptr;
    void* head = overflow[c].back();
    overflow[c].pop_back();
    const std::uint64_t n = chain_length(head);
    overflow_blocks.fetch_sub(n, std::memory_order_relaxed);
    *n_out = n;
    return head;
  }

  static std::uint64_t chain_length(void* head) {
    std::uint64_t n = 0;
    for (auto* b = static_cast<FreeBlock*>(head); b != nullptr; b = b->next) {
      ++n;
    }
    return n;
  }
};

/// Set (permanently) by ~ThreadCache; trivial destructor, so it outlives the
/// cache during thread teardown and routes late frees to the central lists.
thread_local bool tl_cache_destroyed = false;

struct ThreadCache {
  FreeBlock* head[kNumClasses] = {};
  /// Owner-written, read by pool_stats() from other threads: relaxed
  /// atomics, as cheap as plain words on the owner's fast path.
  cats::atomic<std::uint32_t> count[kNumClasses] = {};
  cats::atomic<std::uint64_t> stats[kStatCount] = {};

  ThreadCache() {
    Central& central = Central::instance();
    std::lock_guard<std::mutex> lock(central.registry_mutex);
    central.caches.push_back(this);
  }

  ~ThreadCache() {
    Central& central = Central::instance();
    // Hold the registry lock across the whole teardown so a concurrent
    // pool_stats() sees this cache either fully live or fully aggregated,
    // never both.  Lock order registry -> overflow is consistent process
    // wide (park_chain may take the overflow mutex below).
    std::lock_guard<std::mutex> lock(central.registry_mutex);
    for (std::size_t c = 0; c < kNumClasses; ++c) {
      if (head[c] != nullptr) {
        central.park_chain(c, head[c],
                           count[c].load(std::memory_order_relaxed), nullptr);
        head[c] = nullptr;
        count[c].store(0, std::memory_order_relaxed);
      }
    }
    for (std::size_t s = 0; s < kStatCount; ++s) {
      central.bump_dead(static_cast<Stat>(s),
                        stats[s].load(std::memory_order_relaxed));
    }
    for (auto& entry : central.caches) {
      if (entry == this) {
        entry = central.caches.back();
        central.caches.pop_back();
        break;
      }
    }
    tl_cache_destroyed = true;
  }

  void bump(Stat s, std::uint64_t n = 1) {
    stats[s].store(stats[s].load(std::memory_order_relaxed) + n,
                   std::memory_order_relaxed);
  }

  void push(std::size_t c, FreeBlock* b) {
    b->next = head[c];
    head[c] = b;
    count[c].store(count[c].load(std::memory_order_relaxed) + 1,
                   std::memory_order_relaxed);
  }

  FreeBlock* pop(std::size_t c) {
    FreeBlock* b = head[c];
    if (b != nullptr) {
      head[c] = b->next;
      count[c].store(count[c].load(std::memory_order_relaxed) - 1,
                     std::memory_order_relaxed);
    }
    return b;
  }
};

ThreadCache* cache() noexcept {
  if (tl_cache_destroyed) return nullptr;
  thread_local ThreadCache tc;
  return &tc;
}

/// Carves a fresh slab for class `c`: chains half a cache cap into `tc` and
/// parks the surplus centrally.  Chaining the whole slab would leave the
/// cache far over its cap, and the very next free would then dump the
/// hottest (just-freed) blocks back out through release_to_central.
void carve_slab(ThreadCache& tc, std::size_t c) {
  Central& central = Central::instance();
  const std::size_t bytes = class_bytes(c);
  const std::size_t blocks = kSlabBytes / bytes;
  char* slab = static_cast<char*>(::operator new(kSlabBytes));
  {
    std::lock_guard<std::mutex> lock(central.registry_mutex);
    central.slabs.push_back(slab);
  }
  central.slab_bytes.fetch_add(kSlabBytes, std::memory_order_relaxed);
  const std::size_t keep =
      blocks < release_batch(c) ? blocks : release_batch(c);
  for (std::size_t i = 0; i < keep; ++i) {
    tc.push(c, reinterpret_cast<FreeBlock*>(slab + i * bytes));
  }
  if (blocks > keep) {
    FreeBlock* head = nullptr;
    for (std::size_t i = blocks; i-- > keep;) {
      auto* b = reinterpret_cast<FreeBlock*>(slab + i * bytes);
      b->next = head;
      head = b;
    }
    central.park_chain(c, head, blocks - keep, nullptr);
  }
  tc.bump(kStatAllocSlab);
}

/// Refills `tc` for class `c` from the transfer cache, the overflow list or
/// a fresh slab, then pops one block.
void* alloc_slow(ThreadCache& tc, std::size_t c) {
  obs::flight::note_pool_refill();
  Central& central = Central::instance();
  std::uint64_t n = 0;
  void* chain = central.take_chain(c, &n);
  if (chain != nullptr) {
    tc.head[c] = static_cast<FreeBlock*>(chain);
    tc.count[c].store(static_cast<std::uint32_t>(n),
                      std::memory_order_relaxed);
    tc.bump(kStatAllocTransfer);
  } else {
    carve_slab(tc, c);
  }
  return tc.pop(c);
}

/// Allocation after the thread cache was torn down (late TLS destructors,
/// e.g. an EBR domain draining orphans during static destruction).  The
/// block is a plain heap allocation of the exact class size, so it can
/// rejoin the pool when freed.
void* alloc_no_cache(std::size_t c) {
  Central& central = Central::instance();
  std::uint64_t n = 0;
  void* chain = central.take_chain(c, &n);
  if (chain == nullptr) {
    central.bump_dead(kStatAllocFallback);
    return ::operator new(class_bytes(c));
  }
  auto* b = static_cast<FreeBlock*>(chain);
  if (b->next != nullptr) {
    central.park_chain(c, b->next, n - 1, nullptr);
  }
  central.bump_dead(kStatAllocTransfer);
  return b;
}

/// Keeps the hottest half-cap of blocks (the most recently freed, at the
/// list head) and parks the colder remainder centrally as one chain.  Only
/// called with count >= cache_cap, so the remainder is never empty; the cut
/// walk is bounded by the cap even when a long adopted transfer chain
/// pushed the count far above it.
void release_to_central(ThreadCache& tc, std::size_t c) {
  const std::uint32_t keep = release_batch(c);
  const std::uint32_t count = tc.count[c].load(std::memory_order_relaxed);
  FreeBlock* tail = tc.head[c];
  for (std::uint32_t i = 1; i < keep; ++i) tail = tail->next;
  FreeBlock* chain = tail->next;
  tail->next = nullptr;
  tc.count[c].store(keep, std::memory_order_relaxed);
  Stat where = kStatTransferPush;
  Central::instance().park_chain(c, chain, count - keep, &where);
  tc.bump(where);
}

}  // namespace

void* pool_alloc(std::size_t size) {
  if (size == 0) size = 1;
  if (size > kMaxPooledBytes) {
    Central::instance().bump_dead(kStatAllocFallback);
    return ::operator new(size);
  }
  const std::size_t c = class_for(size);
  ThreadCache* tc = cache();
  if (tc == nullptr) return alloc_no_cache(c);
  FreeBlock* b = tc->pop(c);
  if (b != nullptr) {
    tc->bump(kStatAllocFast);
    return b;
  }
  return alloc_slow(*tc, c);
}

void pool_free(void* p, std::size_t size) noexcept {
  if (p == nullptr) return;
  if (size == 0) size = 1;
  if (size > kMaxPooledBytes) {
    Central::instance().bump_dead(kStatFreeFallback);
    ::operator delete(p);
    return;
  }
  const std::size_t c = class_for(size);
  auto* b = static_cast<FreeBlock*>(p);
  ThreadCache* tc = cache();
  if (tc == nullptr) {
    // Late free on a torn-down thread: park a one-block chain centrally.
    b->next = nullptr;
    Central::instance().park_chain(c, b, 1, nullptr);
    Central::instance().bump_dead(kStatFreeFast);
    return;
  }
  tc->push(c, b);
  tc->bump(kStatFreeFast);
  if (tc->count[c].load(std::memory_order_relaxed) >= cache_cap(c)) {
    release_to_central(*tc, c);
  }
}

PoolStats pool_stats() noexcept {
  Central& central = Central::instance();
  std::uint64_t stats[kStatCount] = {};
  std::uint64_t local_blocks = 0;
  {
    std::lock_guard<std::mutex> lock(central.registry_mutex);
    for (const ThreadCache* tc : central.caches) {
      for (std::size_t s = 0; s < kStatCount; ++s) {
        stats[s] += tc->stats[s].load(std::memory_order_relaxed);
      }
      for (std::size_t c = 0; c < kNumClasses; ++c) {
        local_blocks += tc->count[c].load(std::memory_order_relaxed);
      }
    }
  }
  for (std::size_t s = 0; s < kStatCount; ++s) {
    stats[s] += central.dead_stats[s].load(std::memory_order_relaxed);
  }
  PoolStats out;
  out.alloc_fast = stats[kStatAllocFast];
  out.alloc_transfer = stats[kStatAllocTransfer];
  out.alloc_slab = stats[kStatAllocSlab];
  out.alloc_fallback = stats[kStatAllocFallback];
  out.free_fast = stats[kStatFreeFast];
  out.free_fallback = stats[kStatFreeFallback];
  out.transfer_push = stats[kStatTransferPush];
  out.overflow_push = stats[kStatOverflowPush];
  out.cached_blocks =
      local_blocks +
      central.transfer_blocks.load(std::memory_order_relaxed) +
      central.overflow_blocks.load(std::memory_order_relaxed);
  out.slab_bytes = central.slab_bytes.load(std::memory_order_relaxed);
  return out;
}

void flush_thread_cache() noexcept {
  ThreadCache* tc = cache();
  if (tc == nullptr) return;
  Central& central = Central::instance();
  for (std::size_t c = 0; c < kNumClasses; ++c) {
    if (tc->head[c] == nullptr) continue;
    Stat where = kStatTransferPush;
    central.park_chain(c, tc->head[c],
                       tc->count[c].load(std::memory_order_relaxed), &where);
    tc->bump(where);
    tc->head[c] = nullptr;
    tc->count[c].store(0, std::memory_order_relaxed);
  }
}

#else  // CATS_POOL_ENABLED

PoolStats pool_stats() noexcept { return PoolStats{}; }

void flush_thread_cache() noexcept {}

#endif  // CATS_POOL_ENABLED

}  // namespace cats::alloc
