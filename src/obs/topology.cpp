#include "obs/topology.hpp"

#include <algorithm>
#include <ostream>

#include "obs/export.hpp"

namespace cats::obs {

namespace {

// Minimal JSON string escape for formatted key labels (export.cpp keeps its
// own copy private; labels only need the common escapes).
void write_escaped(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << ' ';  // control chars cannot appear in formatted keys
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

void TopologySnapshot::add_base_heat(const BaseHeat& base) {
  heat_cas_fails += base.cas_fails;
  heat_helps += base.helps;
  if (base.heat() == 0) return;
  const auto hotter = [](const BaseHeat& a, const BaseHeat& b) {
    return a.heat() > b.heat();
  };
  hot_bases.insert(
      std::upper_bound(hot_bases.begin(), hot_bases.end(), base, hotter),
      base);
  if (hot_bases.size() > kMaxHotBases) hot_bases.resize(kMaxHotBases);
}

void TopologySnapshot::append_to(Snapshot& snap,
                                 const std::string& prefix) const {
  snap.add_gauge(prefix + "route_nodes", static_cast<double>(route_nodes));
  snap.add_gauge(prefix + "base_nodes", static_cast<double>(base_nodes));
  snap.add_gauge(prefix + "normal_bases", static_cast<double>(normal_bases));
  snap.add_gauge(prefix + "joining_bases",
                 static_cast<double>(joining_bases));
  snap.add_gauge(prefix + "range_bases", static_cast<double>(range_bases));
  snap.add_gauge(prefix + "invalid_routes",
                 static_cast<double>(invalid_routes));
  snap.add_gauge(prefix + "marked_routes",
                 static_cast<double>(marked_routes));
  snap.add_gauge(prefix + "items", static_cast<double>(items));
  snap.add_gauge(prefix + "max_depth", static_cast<double>(max_depth));
  snap.add_gauge(prefix + "mean_occupancy", mean_occupancy());
  snap.add_gauge(prefix + "stat_min", static_cast<double>(stat_min));
  snap.add_gauge(prefix + "stat_max", static_cast<double>(stat_max));
  snap.add_gauge(prefix + "heat_cas_fails",
                 static_cast<double>(heat_cas_fails));
  snap.add_gauge(prefix + "heat_helps", static_cast<double>(heat_helps));
  snap.add_histogram(prefix + "base_depth", depth);
  snap.add_histogram(prefix + "base_occupancy", occupancy);
  snap.add_histogram(prefix + "base_stat_abs", stat_abs);
  // The hot-base list travels as labeled samples, not gauges: the set of
  // hot bases changes between samples, and the monitor's CSV schema is
  // fixed by the first sample — only the exporters that can label render
  // these (write_prometheus, write_json, write_table).
  for (std::size_t rank = 0; rank < hot_bases.size(); ++rank) {
    const BaseHeat& base = hot_bases[rank];
    Snapshot::HotBase hot;
    hot.metric = prefix + "hot_base";
    hot.rank = static_cast<std::uint32_t>(rank);
    hot.depth = base.depth;
    hot.key_lo = base.key_lo;
    hot.key_label = base.key_label;
    hot.cas_fails = base.cas_fails;
    hot.helps = base.helps;
    hot.items = base.items;
    hot.stat = base.stat;
    snap.hot_bases.push_back(std::move(hot));
  }
}

void write_topology_json(std::ostream& os, const TopologySnapshot& topo) {
  os << "{\"route_nodes\":" << topo.route_nodes
     << ",\"base_nodes\":" << topo.base_nodes
     << ",\"normal_bases\":" << topo.normal_bases
     << ",\"joining_bases\":" << topo.joining_bases
     << ",\"range_bases\":" << topo.range_bases
     << ",\"invalid_routes\":" << topo.invalid_routes
     << ",\"marked_routes\":" << topo.marked_routes
     << ",\"items\":" << topo.items << ",\"max_depth\":" << topo.max_depth
     << ",\"mean_occupancy\":" << topo.mean_occupancy()
     << ",\"stat_min\":" << topo.stat_min
     << ",\"stat_max\":" << topo.stat_max
     << ",\"heat_cas_fails\":" << topo.heat_cas_fails
     << ",\"heat_helps\":" << topo.heat_helps << ",\"depth\":";
  write_histogram_json(os, topo.depth);
  os << ",\"occupancy\":";
  write_histogram_json(os, topo.occupancy);
  os << ",\"stat_abs\":";
  write_histogram_json(os, topo.stat_abs);
  os << ",\"heatmap\":[";
  bool first = true;
  for (const BaseHeat& base : topo.hot_bases) {
    if (!first) os << ',';
    first = false;
    os << "{\"depth\":" << base.depth << ",\"key_lo\":" << base.key_lo;
    if (!base.key_label.empty()) {
      os << ",\"key_label\":";
      write_escaped(os, base.key_label);
    }
    os << ",\"cas_fails\":" << base.cas_fails << ",\"helps\":" << base.helps
       << ",\"items\":" << base.items << ",\"stat\":" << base.stat << '}';
  }
  os << "]}";
}

}  // namespace cats::obs
