#include "obs/topology.hpp"

#include <ostream>

#include "obs/export.hpp"

namespace cats::obs {

void TopologySnapshot::append_to(Snapshot& snap,
                                 const std::string& prefix) const {
  snap.add_gauge(prefix + "route_nodes", static_cast<double>(route_nodes));
  snap.add_gauge(prefix + "base_nodes", static_cast<double>(base_nodes));
  snap.add_gauge(prefix + "normal_bases", static_cast<double>(normal_bases));
  snap.add_gauge(prefix + "joining_bases",
                 static_cast<double>(joining_bases));
  snap.add_gauge(prefix + "range_bases", static_cast<double>(range_bases));
  snap.add_gauge(prefix + "invalid_routes",
                 static_cast<double>(invalid_routes));
  snap.add_gauge(prefix + "marked_routes",
                 static_cast<double>(marked_routes));
  snap.add_gauge(prefix + "items", static_cast<double>(items));
  snap.add_gauge(prefix + "max_depth", static_cast<double>(max_depth));
  snap.add_gauge(prefix + "mean_occupancy", mean_occupancy());
  snap.add_gauge(prefix + "stat_min", static_cast<double>(stat_min));
  snap.add_gauge(prefix + "stat_max", static_cast<double>(stat_max));
  snap.add_histogram(prefix + "base_depth", depth);
  snap.add_histogram(prefix + "base_occupancy", occupancy);
  snap.add_histogram(prefix + "base_stat_abs", stat_abs);
}

void write_topology_json(std::ostream& os, const TopologySnapshot& topo) {
  os << "{\"route_nodes\":" << topo.route_nodes
     << ",\"base_nodes\":" << topo.base_nodes
     << ",\"normal_bases\":" << topo.normal_bases
     << ",\"joining_bases\":" << topo.joining_bases
     << ",\"range_bases\":" << topo.range_bases
     << ",\"invalid_routes\":" << topo.invalid_routes
     << ",\"marked_routes\":" << topo.marked_routes
     << ",\"items\":" << topo.items << ",\"max_depth\":" << topo.max_depth
     << ",\"mean_occupancy\":" << topo.mean_occupancy()
     << ",\"stat_min\":" << topo.stat_min
     << ",\"stat_max\":" << topo.stat_max << ",\"depth\":";
  write_histogram_json(os, topo.depth);
  os << ",\"occupancy\":";
  write_histogram_json(os, topo.occupancy);
  os << ",\"stat_abs\":";
  write_histogram_json(os, topo.stat_abs);
  os << '}';
}

}  // namespace cats::obs
