// Observability build gate.
//
// The obs subsystem (sharded counters, log-scale histograms, the adaptation
// event trace and the exporters) is compiled behind the CATS_OBS CMake
// option.  `CATS_OBS_ENABLED` is defined 0 or 1 on every target through the
// cats_common interface library; hot-path hooks are written as
//
//     CATS_OBS_ONLY(obs::g_counters.add(obs::GCounter::kEbrRetire));
//
// so an OFF build compiles them to nothing — no loads, no stores, no code.
//
// The paper's own eight per-tree statistics counters (splits, joins, ...,
// Tables 1-2) are NOT behind the gate: they predate this subsystem, the
// adaptation tests assert on them, and they now share the cheap sharded
// implementation below.  Everything added on top of the paper is gated.
#pragma once

#ifndef CATS_OBS_ENABLED
#define CATS_OBS_ENABLED 1
#endif

#if CATS_OBS_ENABLED
#define CATS_OBS_ONLY(...) \
  do {                     \
    __VA_ARGS__;           \
  } while (0)
#else
#define CATS_OBS_ONLY(...) \
  do {                     \
  } while (0)
#endif

namespace cats::obs {

/// True in builds where the obs hooks are live.
inline constexpr bool kEnabled = CATS_OBS_ENABLED != 0;

}  // namespace cats::obs
