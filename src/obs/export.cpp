#include "obs/export.hpp"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <ostream>

#include "alloc/pool.hpp"
#include "obs/registry.hpp"

namespace cats::obs {

std::uint64_t Snapshot::counter(const std::string& name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

Snapshot global_snapshot() {
  Snapshot snap;
  Registry& reg = Registry::instance();
  const RegistryValues values = reg.snapshot();  // non-destructive copy
  for (std::size_t i = 0; i < static_cast<std::size_t>(GCounter::kCount);
       ++i) {
    const auto c = static_cast<GCounter>(i);
    snap.add_counter(gcounter_name(c), values.counter(c));
  }
  snap.add_gauge(
      "ebr_backlog",
      static_cast<double>(values.counter(GCounter::kEbrRetired)) -
          static_cast<double>(values.counter(GCounter::kEbrFreed)));
  snap.add_gauge(
      "treap_live_nodes",
      static_cast<double>(values.counter(GCounter::kTreapNodeAllocs)) -
          static_cast<double>(values.counter(GCounter::kTreapNodeFrees)));
  // Node-pool occupancy and hit rate (src/alloc).  The pool keeps its own
  // sharded counters rather than obs ones — its fast path is the very cost
  // this repo measures — so they surface here as gauges.  All zero when the
  // pool is compiled out (CATS_POOL=OFF).
  {
    const alloc::PoolStats pool = alloc::pool_stats();
    snap.add_gauge("pool_enabled", pool.enabled ? 1.0 : 0.0);
    snap.add_gauge("pool_alloc_fast", static_cast<double>(pool.alloc_fast));
    snap.add_gauge("pool_alloc_transfer",
                   static_cast<double>(pool.alloc_transfer));
    snap.add_gauge("pool_alloc_slab", static_cast<double>(pool.alloc_slab));
    snap.add_gauge("pool_alloc_fallback",
                   static_cast<double>(pool.alloc_fallback));
    snap.add_gauge("pool_transfer_push",
                   static_cast<double>(pool.transfer_push));
    snap.add_gauge("pool_overflow_push",
                   static_cast<double>(pool.overflow_push));
    snap.add_gauge("pool_cached_blocks",
                   static_cast<double>(pool.cached_blocks));
    snap.add_gauge("pool_slab_bytes", static_cast<double>(pool.slab_bytes));
    snap.add_gauge("pool_hit_rate", pool.hit_rate());
  }
  for (std::size_t i = 0; i < static_cast<std::size_t>(GHistogram::kCount);
       ++i) {
    const auto h = static_cast<GHistogram>(i);
    snap.add_histogram(ghistogram_name(h), values.histogram(h));
  }
  snap.events = reg.trace().dump();
  return snap;
}

// ---------------------------------------------------------------------------
// Table.
// ---------------------------------------------------------------------------

void write_table(std::ostream& os, const Snapshot& snap) {
  os << "-- counters --\n";
  for (const auto& [name, value] : snap.counters) {
    char line[128];
    std::snprintf(line, sizeof line, "%-28s %20" PRIu64 "\n", name.c_str(),
                  value);
    os << line;
  }
  if (!snap.gauges.empty()) {
    os << "-- gauges --\n";
    for (const auto& [name, value] : snap.gauges) {
      char line[128];
      std::snprintf(line, sizeof line, "%-28s %20.3f\n", name.c_str(), value);
      os << line;
    }
  }
  os << "-- histograms --\n";
  for (const auto& [name, h] : snap.histograms) {
    char line[192];
    std::snprintf(line, sizeof line,
                  "%-28s count=%-10" PRIu64
                  " mean=%-12.1f p50=%-12.1f p90=%-12.1f p99=%.1f\n",
                  name.c_str(), h.count, h.mean(), h.quantile(0.5),
                  h.quantile(0.9), h.quantile(0.99));
    os << line;
  }
  if (!snap.hot_bases.empty()) {
    os << "-- contention heatmap (hottest bases) --\n";
    for (const Snapshot::HotBase& hot : snap.hot_bases) {
      char line[256];
      if (hot.key_label.empty()) {
        std::snprintf(line, sizeof line,
                      "  #%-2u depth=%-3u key_lo=%-12lld cas_fails=%-10" PRIu64
                      " helps=%-8" PRIu64 " items=%" PRIu64 "\n",
                      hot.rank, hot.depth, hot.key_lo, hot.cas_fails,
                      hot.helps, hot.items);
      } else {
        std::snprintf(line, sizeof line,
                      "  #%-2u depth=%-3u key_lo=%-12s cas_fails=%-10" PRIu64
                      " helps=%-8" PRIu64 " items=%" PRIu64 "\n",
                      hot.rank, hot.depth, hot.key_label.c_str(),
                      hot.cas_fails, hot.helps, hot.items);
      }
      os << line;
    }
  }
  os << "-- adaptation trace (" << snap.events.size() << " events) --\n";
  // The full timeline can be thousands of lines; show the tail.
  const std::size_t show = snap.events.size() > 20 ? 20 : snap.events.size();
  for (std::size_t i = snap.events.size() - show; i < snap.events.size();
       ++i) {
    const TraceEvent& e = snap.events[i];
    char line[160];
    std::snprintf(line, sizeof line,
                  "  t=%12.6fs %-12s depth=%-3u stat=%-7d thread=%u\n",
                  static_cast<double>(e.time_ns) / 1e9,
                  adapt_kind_name(e.kind), e.depth, e.stat, e.thread);
    os << line;
  }
}

// ---------------------------------------------------------------------------
// JSON.
// ---------------------------------------------------------------------------

namespace {

void json_escape(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

void write_histogram_json(std::ostream& os, const HistogramSnapshot& h) {
  os << "{\"count\":" << h.count << ",\"sum\":" << h.sum
     << ",\"mean\":" << h.mean() << ",\"p50\":" << h.quantile(0.5)
     << ",\"p90\":" << h.quantile(0.9) << ",\"p99\":" << h.quantile(0.99)
     << ",\"buckets\":[";
  bool first = true;
  for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
    if (h.buckets[b] == 0) continue;
    if (!first) os << ',';
    first = false;
    os << "{\"bucket\":" << b << ",\"low\":" << bucket_low(b)
       << ",\"count\":" << h.buckets[b] << '}';
  }
  os << "]}";
}

void write_json(std::ostream& os, const Snapshot& snap) {
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    if (!first) os << ',';
    first = false;
    json_escape(os, name);
    os << ':' << value;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : snap.gauges) {
    if (!first) os << ',';
    first = false;
    json_escape(os, name);
    os << ':' << value;
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : snap.histograms) {
    if (!first) os << ',';
    first = false;
    json_escape(os, name);
    os << ':';
    write_histogram_json(os, h);
  }
  os << "},\"hot_bases\":[";
  first = true;
  for (const Snapshot::HotBase& hot : snap.hot_bases) {
    if (!first) os << ',';
    first = false;
    os << "{\"metric\":";
    json_escape(os, hot.metric);
    os << ",\"rank\":" << hot.rank << ",\"depth\":" << hot.depth
       << ",\"key_lo\":" << hot.key_lo;
    if (!hot.key_label.empty()) {
      os << ",\"key_label\":";
      json_escape(os, hot.key_label);
    }
    os << ",\"cas_fails\":" << hot.cas_fails
       << ",\"helps\":" << hot.helps << ",\"items\":" << hot.items
       << ",\"stat\":" << hot.stat << '}';
  }
  os << "],\"trace\":[";
  first = true;
  for (const TraceEvent& e : snap.events) {
    if (!first) os << ',';
    first = false;
    os << "{\"t_ns\":" << e.time_ns << ",\"kind\":\""
       << adapt_kind_name(e.kind) << "\",\"depth\":" << e.depth
       << ",\"stat\":" << e.stat << ",\"thread\":" << e.thread << '}';
  }
  os << "]}";
}

bool write_json_file(const std::string& path, const Snapshot& snap) {
  std::ofstream out(path);
  if (!out) return false;
  write_json(out, snap);
  out << '\n';
  return static_cast<bool>(out);
}

// ---------------------------------------------------------------------------
// Prometheus text exposition.
// ---------------------------------------------------------------------------

namespace {

/// Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*; ours are already
/// snake_case, so prefixing is all that's needed.
std::string prom_name(const std::string& name) { return "cats_" + name; }

}  // namespace

void write_prometheus(std::ostream& os, const Snapshot& snap) {
  for (const auto& [name, value] : snap.counters) {
    const std::string n = prom_name(name);
    os << "# TYPE " << n << " counter\n" << n << ' ' << value << '\n';
  }
  for (const auto& [name, value] : snap.gauges) {
    const std::string n = prom_name(name);
    os << "# TYPE " << n << " gauge\n" << n << ' ' << value << '\n';
  }
  for (const auto& [name, h] : snap.histograms) {
    const std::string n = prom_name(name);
    os << "# TYPE " << n << " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
      if (h.buckets[b] == 0) continue;
      cumulative += h.buckets[b];
      os << n << "_bucket{le=\"" << bucket_high(b) << "\"} " << cumulative
         << '\n';
    }
    os << n << "_bucket{le=\"+Inf\"} " << h.count << '\n'
       << n << "_sum " << h.sum << '\n'
       << n << "_count " << h.count << '\n';
    // Interpolated quantiles as a companion gauge (summary-style samples;
    // kept under a separate name so the histogram series stays canonical).
    os << "# TYPE " << n << "_quantile gauge\n";
    for (const double q : {0.5, 0.9, 0.99}) {
      char row[160];
      std::snprintf(row, sizeof row, "%s_quantile{q=\"%g\"} %.1f\n",
                    n.c_str(), q, h.quantile(q));
      os << row;
    }
  }
  // Hot bases as labeled gauges: one series family per metric name and
  // field, the base identified by rank/depth/key_lo labels.  TYPE lines are
  // emitted once per family (entries arrive grouped by metric).
  {
    using Field =
        std::pair<const char*, std::uint64_t (*)(const Snapshot::HotBase&)>;
    const Field fields[] = {
        {"cas_fails", [](const Snapshot::HotBase& h) { return h.cas_fails; }},
        {"helps", [](const Snapshot::HotBase& h) { return h.helps; }},
        {"items", [](const Snapshot::HotBase& h) { return h.items; }},
    };
    for (const auto& [field, value_of] : fields) {
      std::string last_metric;
      for (const Snapshot::HotBase& hot : snap.hot_bases) {
        const std::string n = prom_name(hot.metric) + "_" + field;
        if (hot.metric != last_metric) {
          os << "# TYPE " << n << " gauge\n";
          last_metric = hot.metric;
        }
        os << n << "{rank=\"" << hot.rank << "\",depth=\"" << hot.depth
           << "\",key_lo=\"" << hot.key_lo << "\"";
        if (!hot.key_label.empty()) {
          // Prometheus label values escape backslash and double-quote.
          os << ",key=\"";
          for (const char c : hot.key_label) {
            if (c == '\\' || c == '"') os << '\\';
            if (c == '\n') {
              os << "\\n";
            } else {
              os << c;
            }
          }
          os << '"';
        }
        os << "} " << value_of(hot) << '\n';
      }
    }
  }
  // The trace is not a Prometheus concept; expose its volume as a counter.
  const std::string n = prom_name("adaptation_events");
  os << "# TYPE " << n << " counter\n" << n << ' ' << snap.events.size()
     << '\n';
}

}  // namespace cats::obs
