// Sharded event counters.
//
// A single shared atomic counter turns every hot-path increment into a
// cache-line ping-pong between cores; the classic fix is striping.  Each
// thread is assigned a shard at first use (round-robin over a power of two),
// increments touch only that shard's cache line with a relaxed fetch_add,
// and reads aggregate over all shards.  Values are exact in quiescence and
// slightly approximate under concurrency — the same contract as the paper's
// statistics counters.
//
// `ShardedCounters<N>` is a fixed block of N logical counters (indexed by an
// enum), shard-major so that one thread's increments to different counters
// stay on the thread's own lines.  Instances are cheap enough to embed one
// per tree; the process-wide registry (registry.hpp) holds another for the
// reclamation and container substrates.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "common/padded.hpp"

namespace cats::obs {

/// Number of counter shards.  Power of two; threads beyond this many share
/// shards (correct, merely slower).
inline constexpr std::size_t kShards = 32;

/// Index of the calling thread's shard.  Assigned round-robin on first use
/// so the first kShards threads get private shards.
inline std::size_t shard_index() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t index =
      next.fetch_add(1, std::memory_order_relaxed) & (kShards - 1);
  return index;
}

template <std::size_t N>
class ShardedCounters {
 public:
  /// Relaxed add on the calling thread's shard (hot path).
  void add(std::size_t counter, std::uint64_t n = 1) {
    shards_[shard_index()]->cells[counter].fetch_add(
        n, std::memory_order_relaxed);
  }

  /// Enum convenience: any enum whose underlying values are [0, N).
  template <class E>
  void add(E counter, std::uint64_t n = 1) {
    add(static_cast<std::size_t>(counter), n);
  }

  /// Aggregate-on-read value of one counter.
  std::uint64_t read(std::size_t counter) const {
    std::uint64_t total = 0;
    for (const auto& shard : shards_) {
      total += shard->cells[counter].load(std::memory_order_relaxed);
    }
    return total;
  }

  template <class E>
  std::uint64_t read(E counter) const {
    return read(static_cast<std::size_t>(counter));
  }

  /// Zeroes every counter (not linearizable against concurrent adds).
  void reset() {
    for (auto& shard : shards_) {
      for (auto& cell : shard->cells) {
        cell.store(0, std::memory_order_relaxed);
      }
    }
  }

  static constexpr std::size_t size() { return N; }

 private:
  struct Shard {
    std::atomic<std::uint64_t> cells[N] = {};
  };
  Padded<Shard> shards_[kShards];
};

}  // namespace cats::obs
