// Minimal JSON document model and recursive-descent parser.
//
// Exists so exporter output can be parsed back — by the round-trip tests
// and by any tooling that consumes the benchmark metrics files — without
// adding a dependency the container doesn't have.  Covers the JSON subset
// the exporters emit: null, bool, finite numbers, strings with standard
// escapes, arrays, objects.  Numbers are stored as double (53-bit exact
// integer range), which is sufficient for every metric we export per run.
#pragma once

#include <cctype>
#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace cats::obs::json {

class Value;
using Array = std::vector<Value>;
using Object = std::map<std::string, Value>;

class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() : type_(Type::kNull) {}
  Value(bool b) : type_(Type::kBool), bool_(b) {}
  Value(double d) : type_(Type::kNumber), num_(d) {}
  Value(std::string s) : type_(Type::kString), str_(std::move(s)) {}
  Value(Array a) : type_(Type::kArray), arr_(std::move(a)) {}
  Value(Object o) : type_(Type::kObject), obj_(std::move(o)) {}

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }

  bool as_bool() const { expect(Type::kBool); return bool_; }
  double as_number() const { expect(Type::kNumber); return num_; }
  std::uint64_t as_uint() const {
    return static_cast<std::uint64_t>(as_number());
  }
  const std::string& as_string() const { expect(Type::kString); return str_; }
  const Array& as_array() const { expect(Type::kArray); return arr_; }
  const Object& as_object() const { expect(Type::kObject); return obj_; }

  /// Object member access; throws if absent or not an object.
  const Value& at(const std::string& key) const {
    const Object& o = as_object();
    auto it = o.find(key);
    if (it == o.end()) throw std::runtime_error("json: no member " + key);
    return it->second;
  }
  bool has(const std::string& key) const {
    return type_ == Type::kObject && obj_.count(key) != 0;
  }

 private:
  void expect(Type t) const {
    if (type_ != t) throw std::runtime_error("json: wrong type");
  }

  Type type_;
  bool bool_ = false;
  double num_ = 0;
  std::string str_;
  Array arr_;
  Object obj_;
};

namespace detail {

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  Value parse() {
    Value v = value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const char* what) {
    throw std::runtime_error("json parse error at offset " +
                             std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end");
    return s_[pos_];
  }

  void expect(char c) {
    if (pos_ >= s_.size() || s_[pos_] != c) fail("unexpected character");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t n = std::char_traits<char>::length(lit);
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  Value value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return object();
      case '[': return array();
      case '"': return Value(string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return Value(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return Value(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Value();
      default: return number();
    }
  }

  Value object() {
    expect('{');
    Object o;
    skip_ws();
    if (peek() == '}') { ++pos_; return Value(std::move(o)); }
    while (true) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      o.emplace(std::move(key), value());
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      expect('}');
      return Value(std::move(o));
    }
  }

  Value array() {
    expect('[');
    Array a;
    skip_ws();
    if (peek() == ']') { ++pos_; return Value(std::move(a)); }
    while (true) {
      a.push_back(value());
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      expect(']');
      return Value(std::move(a));
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= s_.size()) fail("unterminated string");
      char c = s_[pos_++];
      if (c == '"') return out;
      if (c != '\\') { out.push_back(c); continue; }
      if (pos_ >= s_.size()) fail("unterminated escape");
      c = s_[pos_++];
      switch (c) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > s_.size()) fail("bad \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // Exporters only emit ASCII; encode BMP code points as UTF-8.
          if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          }
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  Value number() {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
    bool any = false;
    auto digits = [&] {
      while (pos_ < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        ++pos_;
        any = true;
      }
    };
    digits();
    if (pos_ < s_.size() && s_[pos_] == '.') { ++pos_; digits(); }
    if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
      digits();
    }
    if (!any) fail("bad number");
    return Value(std::stod(s_.substr(start, pos_ - start)));
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace detail

/// Parses `text` into a Value; throws std::runtime_error on malformed input.
inline Value parse(const std::string& text) {
  return detail::Parser(text).parse();
}

}  // namespace cats::obs::json
