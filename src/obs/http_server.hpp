// Embedded metrics endpoint: a minimal single-threaded blocking HTTP/1.1
// listener, zero dependencies.
//
// Serves GET requests from one background thread — accept, read the
// request head, invoke the route's handler, write the full response, close.
// That is the right shape for a scrape endpoint: Prometheus polls one
// request every few seconds, a human curls now and then.  It is explicitly
// NOT a general web server — no keep-alive, no TLS, no request bodies, no
// concurrency; a slow client can delay the next scrape (reads time out
// after a few seconds so it cannot wedge the thread forever).
//
// Handlers run on the server thread concurrently with the workload, so they
// must only use concurrency-safe reads — which all obs sources are
// (aggregate-on-read counters, EBR-guarded topology walks).
//
// Compiled out entirely when CATS_OBS is OFF: no class, no socket code.
#pragma once

#include "obs/obs.hpp"

#if CATS_OBS_ENABLED

#include <functional>
#include <string>
#include <thread>
#include <vector>

namespace cats::obs {

class HttpServer {
 public:
  /// Returns the response body for one GET request.
  using Handler = std::function<std::string()>;

  /// `port` 0 binds an ephemeral port; read the actual one from port()
  /// after start().
  explicit HttpServer(int port);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Registers a route.  Call before start(); the route table is read
  /// without locks once the server thread runs.
  void handle(std::string path, std::string content_type, Handler handler);

  /// Binds, listens and spawns the server thread.  Returns false (with a
  /// message on stderr) if the socket could not be set up.
  bool start();
  /// Closes the listening socket and joins the thread.  Idempotent.
  void stop();
  bool running() const { return thread_.joinable(); }

  /// Port actually bound (resolves ephemeral requests); 0 before start().
  int port() const { return bound_port_; }

 private:
  struct Route {
    std::string path;
    std::string content_type;
    Handler handler;
  };

  void run();
  void serve_client(int client_fd);

  std::vector<Route> routes_;
  int requested_port_;
  int bound_port_ = 0;
  int listen_fd_ = -1;
  std::thread thread_;
};

}  // namespace cats::obs

#endif  // CATS_OBS_ENABLED
