// Log-scale histograms with lock-free per-thread shards.
//
// Power-of-two buckets: a sample v lands in bucket bit_width(v), so bucket b
// (b >= 1) covers [2^(b-1), 2^b - 1] and bucket 0 holds exact zeros.  That
// gives full uint64 range in 65 buckets with a constant-time, branch-light
// record path — the right trade for latency and size distributions, where
// only the order of magnitude matters.
//
// Recording is a relaxed fetch_add on the calling thread's shard (same
// striping scheme as counters.hpp); snapshots merge the shards.
#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>

#include "common/padded.hpp"
#include "obs/counters.hpp"

namespace cats::obs {

inline constexpr std::size_t kHistogramBuckets = 65;

/// Bucket index of a sample: 0 for 0, else 1 + floor(log2(v)).
inline std::size_t histogram_bucket(std::uint64_t v) {
  return static_cast<std::size_t>(std::bit_width(v));
}

/// Inclusive lower bound of a bucket.
inline std::uint64_t bucket_low(std::size_t b) {
  return b == 0 ? 0 : std::uint64_t{1} << (b - 1);
}

/// Inclusive upper bound of a bucket.
inline std::uint64_t bucket_high(std::size_t b) {
  if (b == 0) return 0;
  if (b == kHistogramBuckets - 1) return ~std::uint64_t{0};
  return (std::uint64_t{1} << b) - 1;
}

/// Mergeable point-in-time view of a histogram.  Also usable as a plain
/// single-threaded accumulator (see add) — the topology walker builds its
/// depth and occupancy distributions this way without any atomics.
struct HistogramSnapshot {
  std::uint64_t buckets[kHistogramBuckets] = {};
  std::uint64_t count = 0;
  std::uint64_t sum = 0;

  /// Single-threaded accumulation into the snapshot itself.
  void add(std::uint64_t v) {
    buckets[histogram_bucket(v)] += 1;
    count += 1;
    sum += v;
  }

  double mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }

  /// Upper bound of the bucket containing the q-quantile (q in [0, 1]).
  std::uint64_t quantile_bound(double q) const {
    if (count == 0) return 0;
    const double target = q * static_cast<double>(count);
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
      seen += buckets[b];
      if (static_cast<double>(seen) >= target) return bucket_high(b);
    }
    return bucket_high(kHistogramBuckets - 1);
  }

  /// Interpolated q-quantile: finds the bucket holding the q-th ranked
  /// sample and interpolates linearly inside its [low, high] span by the
  /// rank's position within the bucket.  Exact to within one bucket width;
  /// much closer than quantile_bound for the heavy middle of a
  /// distribution, where a single power-of-two bucket holds many samples.
  double quantile(double q) const {
    if (count == 0) return 0.0;
    if (q < 0.0) q = 0.0;
    if (q > 1.0) q = 1.0;
    const double target = q * static_cast<double>(count);
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
      if (buckets[b] == 0) continue;
      const double before = static_cast<double>(seen);
      seen += buckets[b];
      if (static_cast<double>(seen) >= target) {
        const double frac =
            (target - before) / static_cast<double>(buckets[b]);
        const double lo = static_cast<double>(bucket_low(b));
        const double hi = static_cast<double>(bucket_high(b));
        return lo + frac * (hi - lo);
      }
    }
    return static_cast<double>(bucket_high(kHistogramBuckets - 1));
  }
};

class LogHistogram {
 public:
  /// Relaxed record on the calling thread's shard (hot path).
  void record(std::uint64_t v) {
    Shard& s = *shards_[shard_index()];
    s.buckets[histogram_bucket(v)].fetch_add(1, std::memory_order_relaxed);
    s.count.fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(v, std::memory_order_relaxed);
  }

  HistogramSnapshot snapshot() const {
    HistogramSnapshot out;
    for (const auto& shard : shards_) {
      for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
        out.buckets[b] += shard->buckets[b].load(std::memory_order_relaxed);
      }
      out.count += shard->count.load(std::memory_order_relaxed);
      out.sum += shard->sum.load(std::memory_order_relaxed);
    }
    return out;
  }

  void reset() {
    for (auto& shard : shards_) {
      for (auto& b : shard->buckets) b.store(0, std::memory_order_relaxed);
      shard->count.store(0, std::memory_order_relaxed);
      shard->sum.store(0, std::memory_order_relaxed);
    }
  }

 private:
  struct Shard {
    std::atomic<std::uint64_t> buckets[kHistogramBuckets] = {};
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
  };
  Padded<Shard> shards_[kShards];
};

}  // namespace cats::obs
