// Metric snapshots and the three exporters.
//
// A `Snapshot` is an ordered, named bag of counters, gauges, histograms and
// trace events — detached from the live sharded storage, so exporting never
// perturbs the hot paths.  `global_snapshot()` captures the process-wide
// registry; callers append structure-specific metrics (e.g. a tree's Stats)
// before exporting.
//
// Exporters:
//   write_table      — human-readable, for terminals and test logs
//   write_json       — machine-readable, one self-contained document; the
//                      benchmark binaries write one per run and
//                      obs/json.hpp parses it back
//   write_prometheus — text exposition format (counters, gauges and
//                      cumulative le-bucket histograms), scrape-ready
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "obs/histogram.hpp"
#include "obs/trace.hpp"

namespace cats::obs {

struct Snapshot {
  /// One labeled contention-heatmap sample (topology.cpp fills these from
  /// TopologySnapshot::hot_bases).  Kept apart from the flat gauges
  /// because the hot-base set changes between samples: the monitor's fixed
  /// CSV schema ignores them, while write_prometheus renders them as
  /// labeled gauges and write_json/write_table as records.
  struct HotBase {
    std::string metric;       // e.g. "lfca_topo_hot_base"
    std::uint32_t rank = 0;   // 0 = hottest
    std::uint32_t depth = 0;
    long long key_lo = 0;
    std::string key_label;    // formatted key bound; empty = unlabeled
    std::uint64_t cas_fails = 0;
    std::uint64_t helps = 0;
    std::uint64_t items = 0;
    std::int64_t stat = 0;
  };

  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
  std::vector<TraceEvent> events;
  std::vector<HotBase> hot_bases;

  void add_counter(std::string name, std::uint64_t value) {
    counters.emplace_back(std::move(name), value);
  }
  void add_gauge(std::string name, double value) {
    gauges.emplace_back(std::move(name), value);
  }
  void add_histogram(std::string name, HistogramSnapshot h) {
    histograms.emplace_back(std::move(name), h);
  }

  /// Value of a named counter, or 0 if absent (test convenience).
  std::uint64_t counter(const std::string& name) const;
};

/// Captures the process-wide registry (counters, histograms, trace), plus
/// derived gauges (EBR backlog, live treap nodes).
Snapshot global_snapshot();

void write_table(std::ostream& os, const Snapshot& snap);
void write_json(std::ostream& os, const Snapshot& snap);
void write_prometheus(std::ostream& os, const Snapshot& snap);

/// One histogram as a JSON object ({"count":...,"buckets":[...]}); the
/// building block of write_json, shared with the topology exporter.
void write_histogram_json(std::ostream& os, const HistogramSnapshot& h);

/// write_json straight to a file; returns false on I/O failure.
bool write_json_file(const std::string& path, const Snapshot& snap);

}  // namespace cats::obs
