// Route-tree topology snapshots.
//
// The paper's central claim is structural: under contention the route tree
// splits until the synchronization granularity matches the workload, and
// joins back when contention subsides (§4-§5).  Aggregate split/join
// counters show that adaptations *happened*; this module captures what the
// tree currently *is* — how many base and route nodes exist, how deep they
// sit, how many items each leaf container holds, where the contention
// statistics have drifted, and how many nodes are mid-adaptation (joining,
// range-marked, invalidated routes).
//
// `TopologySnapshot` is a plain value struct, deliberately free of any
// dependency on the tree: the walker lives with the tree
// (BasicLfcaTree::collect_topology, lfca/lfca_tree_impl.hpp) and fills one
// of these in; the exporters here turn it into gauges/histograms on an obs
// Snapshot or into a self-contained JSON document (the /topology.json
// endpoint).
//
// Consistency contract: the walk runs inside one EBR guard, so every node
// it touches stays allocated, but the tree keeps adapting underneath it.
// The result is a "consistent-enough" snapshot — each visited node was
// reachable at the moment it was visited, counts can be off by the handful
// of adaptations that raced the walk.  That is exactly the fidelity the
// paper's own Tables 1-2 use.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/histogram.hpp"

namespace cats::obs {

struct Snapshot;  // export.hpp

/// Contention-heatmap record for one base node: where it sits (route depth
/// and the lower bound of its key interval) and how much contention it has
/// absorbed (CAS-failure and help tallies carried across replacement by
/// the lfca heat hooks; CATS_OBS builds only — always zero otherwise).
struct BaseHeat {
  std::uint32_t depth = 0;
  long long key_lo = 0;           // lower bound of the base's key interval
                                  // (KeyTraits<K>::heat_coord — a sortable
                                  // numeric projection of the key)
  std::string key_label;          // KeyTraits<K>::format of the same bound;
                                  // empty when the producer has no label
  std::uint64_t cas_fails = 0;
  std::uint64_t helps = 0;
  std::uint64_t items = 0;        // container occupancy at walk time
  std::int64_t stat = 0;          // contention statistic at walk time

  std::uint64_t heat() const { return cas_fails + helps; }
};

struct TopologySnapshot {
  // --- node census ---------------------------------------------------------
  std::uint64_t route_nodes = 0;
  std::uint64_t base_nodes = 0;     // all leaf kinds together
  std::uint64_t normal_bases = 0;   // plain base nodes
  std::uint64_t joining_bases = 0;  // join_main + join_neighbor nodes
  std::uint64_t range_bases = 0;    // range_base markers of in-flight queries
  std::uint64_t invalid_routes = 0; // routes with valid == false (mid-join)
  std::uint64_t marked_routes = 0;  // routes carrying a join_id mark
  std::uint64_t items = 0;          // total container items seen

  // --- shape ---------------------------------------------------------------
  std::uint32_t max_depth = 0;      // deepest base node (root base = 0)
  HistogramSnapshot depth;          // route depth per base node
  HistogramSnapshot occupancy;      // container item count per base node

  // --- contention statistics -----------------------------------------------
  std::int64_t stat_min = 0;        // most join-leaning statistic seen
  std::int64_t stat_max = 0;        // most split-leaning statistic seen
  HistogramSnapshot stat_abs;       // |stat| per base node (drift magnitude)

  // --- contention heatmap (CATS_OBS builds; all zero otherwise) ------------
  /// Hottest bases retained per snapshot.
  static constexpr std::size_t kMaxHotBases = 8;
  std::uint64_t heat_cas_fails = 0; // CAS-failure tallies over all bases
  std::uint64_t heat_helps = 0;     // help tallies over all bases
  /// Top-kMaxHotBases bases by heat(), hottest first; bases with zero heat
  /// never enter.
  std::vector<BaseHeat> hot_bases;

  /// Folds one walked base into the totals and the top-K list.
  void add_base_heat(const BaseHeat& base);

  double mean_occupancy() const {
    return base_nodes == 0 ? 0.0
                           : static_cast<double>(items) /
                                 static_cast<double>(base_nodes);
  }

  /// Appends everything as `prefix`-named gauges and histograms, so a
  /// topology travels through the existing table/JSON/Prometheus exporters
  /// alongside the counters.
  void append_to(Snapshot& snap, const std::string& prefix) const;
};

/// Self-contained JSON document ({"route_nodes":...,"depth":{...},...}) —
/// the payload of the /topology.json endpoint.  Parse it back with
/// obs/json.hpp.
void write_topology_json(std::ostream& os, const TopologySnapshot& topo);

}  // namespace cats::obs
