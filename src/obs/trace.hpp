// Adaptation event trace.
//
// The LFCA tree's behaviour is defined by *when* it adapts; aggregate split
// and join counters cannot show that a split storm happened in the first
// millisecond of a run, or that a base node oscillated split-join-split.
// This module records every adaptation decision (split, join, abort) into a
// fixed-size per-thread ring buffer:
//
//   {monotonic timestamp, event kind, route depth, triggering stat, thread}
//
// Writes are a few relaxed stores on the owning thread's ring — no
// synchronization with other recorders.  `dump()` merges all rings into one
// timeline sorted by timestamp; under concurrent recording the timeline is
// approximate (entries being overwritten mid-read are dropped by a sequence
// check), which is all a trace needs.  Adaptations are orders of magnitude
// rarer than operations, so the clock read on this path is irrelevant.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/padded.hpp"
#include "obs/counters.hpp"  // kShards / shard_index()

namespace cats::obs {

enum class AdaptKind : std::uint8_t {
  kSplit,         // high-contention adaptation installed a route node
  kSplitFailed,   // split lost its CAS (or the leaf was too small)
  kJoin,          // low-contention adaptation completed
  kJoinAborted,   // secure_join failed or was killed by another thread
  kEpochAdvance,  // EBR global epoch incremented (src/reclaim/ebr.cpp);
                  // rides in this trace so reclamation progress appears on
                  // the same timeline as the adaptations (depth is 0, stat
                  // carries the new epoch)
};

inline const char* adapt_kind_name(AdaptKind k) {
  switch (k) {
    case AdaptKind::kSplit: return "split";
    case AdaptKind::kSplitFailed: return "split_failed";
    case AdaptKind::kJoin: return "join";
    case AdaptKind::kJoinAborted: return "join_aborted";
    case AdaptKind::kEpochAdvance: return "epoch_advance";
  }
  return "?";
}

struct TraceEvent {
  std::uint64_t time_ns = 0;  // monotonic, process-relative
  AdaptKind kind = AdaptKind::kSplit;
  std::uint32_t depth = 0;    // route depth of the adapted base node
  std::int32_t stat = 0;      // statistics value that triggered the decision
  std::uint32_t thread = 0;   // recorder's shard index
};

class AdaptTrace {
 public:
  /// Entries retained per thread ring; older entries are overwritten.
  static constexpr std::size_t kRingSize = 1024;

  /// Monotonic nanoseconds since the first call in this process.
  static std::uint64_t now_ns() {
    static const auto origin = std::chrono::steady_clock::now();
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - origin)
            .count());
  }

  void record(AdaptKind kind, std::uint32_t depth, std::int32_t stat) {
    const std::size_t shard = shard_index();
    Ring& ring = *rings_[shard];
    const std::uint64_t seq = ring.next.load(std::memory_order_relaxed);
    Slot& slot = ring.slots[seq % kRingSize];
    // Odd sequence = slot being written; dump() skips such slots.
    slot.seq.store(2 * seq + 1, std::memory_order_release);
    slot.time_ns.store(now_ns(), std::memory_order_relaxed);
    slot.kind.store(static_cast<std::uint8_t>(kind),
                    std::memory_order_relaxed);
    slot.depth.store(depth, std::memory_order_relaxed);
    slot.stat.store(stat, std::memory_order_relaxed);
    slot.thread.store(static_cast<std::uint32_t>(shard),
                      std::memory_order_relaxed);
    slot.seq.store(2 * (seq + 1), std::memory_order_release);
    ring.next.store(seq + 1, std::memory_order_release);
  }

  /// Merged timeline of every ring, sorted by timestamp.
  std::vector<TraceEvent> dump() const {
    std::vector<TraceEvent> out;
    for (const auto& ring : rings_) {
      const std::uint64_t next = ring->next.load(std::memory_order_acquire);
      const std::uint64_t first = next > kRingSize ? next - kRingSize : 0;
      for (std::uint64_t seq = first; seq < next; ++seq) {
        const Slot& slot = ring->slots[seq % kRingSize];
        const std::uint64_t tag = slot.seq.load(std::memory_order_acquire);
        TraceEvent e;
        e.time_ns = slot.time_ns.load(std::memory_order_relaxed);
        e.kind = static_cast<AdaptKind>(
            slot.kind.load(std::memory_order_relaxed));
        e.depth = slot.depth.load(std::memory_order_relaxed);
        e.stat = slot.stat.load(std::memory_order_relaxed);
        e.thread = slot.thread.load(std::memory_order_relaxed);
        // Keep only slots that were complete for this seq when we started
        // and still are: drops torn entries under concurrent wraparound.
        if (tag == 2 * (seq + 1) &&
            slot.seq.load(std::memory_order_acquire) == tag) {
          out.push_back(e);
        }
      }
    }
    std::sort(out.begin(), out.end(),
              [](const TraceEvent& a, const TraceEvent& b) {
                return a.time_ns < b.time_ns;
              });
    return out;
  }

  /// Total events ever recorded (including overwritten ones).
  std::uint64_t recorded() const {
    std::uint64_t total = 0;
    for (const auto& ring : rings_) {
      total += ring->next.load(std::memory_order_relaxed);
    }
    return total;
  }

  void reset() {
    for (auto& ring : rings_) {
      for (auto& slot : ring->slots) slot.seq.store(0, std::memory_order_relaxed);
      ring->next.store(0, std::memory_order_relaxed);
    }
  }

 private:
  struct Slot {
    std::atomic<std::uint64_t> seq{0};
    std::atomic<std::uint64_t> time_ns{0};
    std::atomic<std::uint8_t> kind{0};
    std::atomic<std::uint32_t> depth{0};
    std::atomic<std::int32_t> stat{0};
    std::atomic<std::uint32_t> thread{0};
  };
  struct Ring {
    Slot slots[kRingSize];
    std::atomic<std::uint64_t> next{0};
  };
  Padded<Ring> rings_[kShards];
};

}  // namespace cats::obs
