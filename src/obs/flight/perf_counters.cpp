#include "obs/flight/perf_counters.hpp"

#if CATS_OBS_ENABLED

#include <cerrno>
#include <cstring>
#include <mutex>

#include "obs/export.hpp"

#if defined(__linux__) && __has_include(<linux/perf_event.h>)
#define CATS_HAVE_PERF_EVENT 1
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#else
#define CATS_HAVE_PERF_EVENT 0
#endif

namespace cats::obs::flight {

#if CATS_HAVE_PERF_EVENT

namespace {

int open_counter(std::uint32_t type, std::uint64_t config) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof attr);
  attr.type = type;
  attr.size = sizeof attr;
  attr.config = config;
  attr.disabled = 1;
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  // pid = 0, cpu = -1: this thread, any CPU it migrates to.
  return static_cast<int>(
      syscall(SYS_perf_event_open, &attr, 0, -1, -1, 0));
}

std::uint64_t read_counter(int fd) {
  if (fd < 0) return 0;
  std::uint64_t value = 0;
  if (read(fd, &value, sizeof value) != sizeof value) return 0;
  return value;
}

}  // namespace

ThreadPerf::ThreadPerf() {
  fds_[kCycles] =
      open_counter(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES);
  if (fds_[kCycles] < 0) {
    const int err = errno;
    reason_ = std::string(std::strerror(err));
    if (err == EACCES || err == EPERM) {
      reason_ += " (check /proc/sys/kernel/perf_event_paranoid)";
    }
    return;
  }
  fds_[kInstructions] =
      open_counter(PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS);
  if (fds_[kInstructions] < 0) {
    reason_ = std::string(std::strerror(errno));
    close(fds_[kCycles]);
    fds_[kCycles] = -1;
    return;
  }
  // Miss counters are optional: virtualized PMUs often expose only the
  // fixed cycle/instruction counters.  Missing ones just read 0.
  fds_[kCacheMisses] =
      open_counter(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES);
  fds_[kBranchMisses] =
      open_counter(PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES);
  available_ = true;
}

ThreadPerf::~ThreadPerf() {
  for (int& fd : fds_) {
    if (fd >= 0) close(fd);
    fd = -1;
  }
}

void ThreadPerf::start() {
  if (!available_) return;
  for (const int fd : fds_) {
    if (fd < 0) continue;
    ioctl(fd, PERF_EVENT_IOC_RESET, 0);
    ioctl(fd, PERF_EVENT_IOC_ENABLE, 0);
  }
}

PerfCounts ThreadPerf::stop() {
  PerfCounts counts;
  if (!available_) {
    counts.unavailable_reason = reason_;
    return counts;
  }
  for (const int fd : fds_) {
    if (fd >= 0) ioctl(fd, PERF_EVENT_IOC_DISABLE, 0);
  }
  counts.available = true;
  counts.threads = 1;
  counts.cycles = read_counter(fds_[kCycles]);
  counts.instructions = read_counter(fds_[kInstructions]);
  counts.cache_misses = read_counter(fds_[kCacheMisses]);
  counts.branch_misses = read_counter(fds_[kBranchMisses]);
  return counts;
}

#else  // !CATS_HAVE_PERF_EVENT

ThreadPerf::ThreadPerf() : reason_("perf_event_open not available on this platform") {}
ThreadPerf::~ThreadPerf() = default;
void ThreadPerf::start() {}
PerfCounts ThreadPerf::stop() {
  PerfCounts counts;
  counts.unavailable_reason = reason_;
  return counts;
}

#endif  // CATS_HAVE_PERF_EVENT

// ---------------------------------------------------------------------------
// Per-phase totals.  Mutex-protected: phase folding happens once per thread
// per run phase, far off any hot path.
// ---------------------------------------------------------------------------

namespace {

struct PhaseTotals {
  std::mutex mutex;
  std::vector<std::pair<std::string, PerfCounts>> phases;

  static PhaseTotals& instance() {
    static PhaseTotals* const totals = new PhaseTotals();  // leaked: may be
    return *totals;  // touched from thread-exit paths after static dtors
  }
};

}  // namespace

void perf_phase_add(const std::string& phase, const PerfCounts& counts) {
  PhaseTotals& totals = PhaseTotals::instance();
  std::lock_guard<std::mutex> lock(totals.mutex);
  for (auto& [name, total] : totals.phases) {
    if (name == phase) {
      total += counts;
      return;
    }
  }
  totals.phases.emplace_back(phase, PerfCounts{});
  totals.phases.back().second += counts;
}

std::vector<std::pair<std::string, PerfCounts>> perf_phase_totals() {
  PhaseTotals& totals = PhaseTotals::instance();
  std::lock_guard<std::mutex> lock(totals.mutex);
  return totals.phases;
}

void perf_phase_reset() {
  PhaseTotals& totals = PhaseTotals::instance();
  std::lock_guard<std::mutex> lock(totals.mutex);
  totals.phases.clear();
}

void append_perf_phases(Snapshot& snap) {
  for (const auto& [phase, counts] : perf_phase_totals()) {
    const std::string prefix = "perf_" + phase + "_";
    snap.add_gauge(prefix + "available", counts.available ? 1.0 : 0.0);
    snap.add_gauge(prefix + "threads", static_cast<double>(counts.threads));
    snap.add_gauge(prefix + "cycles", static_cast<double>(counts.cycles));
    snap.add_gauge(prefix + "instructions",
                   static_cast<double>(counts.instructions));
    snap.add_gauge(prefix + "cache_misses",
                   static_cast<double>(counts.cache_misses));
    snap.add_gauge(prefix + "branch_misses",
                   static_cast<double>(counts.branch_misses));
    snap.add_gauge(prefix + "ipc", counts.ipc());
  }
}

}  // namespace cats::obs::flight

#endif  // CATS_OBS_ENABLED
