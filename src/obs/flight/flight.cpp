#include "obs/flight/flight.hpp"

#if CATS_OBS_ENABLED

#include <algorithm>
#include <chrono>
#include <thread>

namespace cats::obs::flight {

Recorder& Recorder::instance() {
  static Recorder* const rec = new Recorder();  // leaked on purpose: spans
  return *rec;  // may be sealed from thread-exit paths after static dtors
}

void Recorder::enable(unsigned sample_shift) {
  if (sample_shift > 20) sample_shift = 20;  // 1/2^20 is already "never"
  disable();  // stop recorders racing the ring reset below
  reset();
  // Calibrate raw ticks against the AdaptTrace monotonic clock over a
  // short sleep, so span timestamps and adaptation instants share one
  // timeline.  2 ms is ~10^5 clock granules on every host we target —
  // plenty for the ~0.1% accuracy a trace view needs.
  const std::uint64_t t0 = AdaptTrace::now_ns();
  const std::uint64_t c0 = read_ticks();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const std::uint64_t t1 = AdaptTrace::now_ns();
  const std::uint64_t c1 = read_ticks();
  double ticks_per_ns = 1.0;
  if (t1 > t0 && c1 > c0) {
    ticks_per_ns = static_cast<double>(c1 - c0) / static_cast<double>(t1 - t0);
  }
  origin_ticks_.store(c1, std::memory_order_relaxed);
  origin_ns_.store(t1, std::memory_order_relaxed);
  ticks_per_ns_.store(ticks_per_ns, std::memory_order_release);
  ++generation_;
  g_control.store((generation_ << 8) | (sample_shift + 1),
                  std::memory_order_release);
}

std::vector<SpanEvent> Recorder::dump() const {
  const double ticks_per_ns = ticks_per_ns_.load(std::memory_order_acquire);
  const std::uint64_t origin_ticks =
      origin_ticks_.load(std::memory_order_relaxed);
  const std::uint64_t origin_ns = origin_ns_.load(std::memory_order_relaxed);
  auto to_ns = [&](std::uint64_t ticks, std::uint64_t base_ns) {
    const double delta = static_cast<double>(ticks) -
                         static_cast<double>(origin_ticks);
    const double ns = static_cast<double>(base_ns) + delta / ticks_per_ns;
    return ns <= 0 ? 0 : static_cast<std::uint64_t>(ns);
  };
  std::vector<SpanEvent> out;
  for (const auto& ring : rings_) {
    const std::uint64_t next = ring->next.load(std::memory_order_acquire);
    const std::uint64_t first = next > kRingSize ? next - kRingSize : 0;
    for (std::uint64_t seq = first; seq < next; ++seq) {
      const Slot& slot = ring->slots[seq % kRingSize];
      const std::uint64_t tag = slot.seq.load(std::memory_order_acquire);
      SpanEvent e;
      const std::uint64_t start_ticks =
          slot.start_ticks.load(std::memory_order_relaxed);
      const std::uint64_t dur_ticks =
          slot.dur_ticks.load(std::memory_order_relaxed);
      e.kind = static_cast<SpanKind>(slot.kind.load(std::memory_order_relaxed));
      e.key_hash = slot.key_hash.load(std::memory_order_relaxed);
      e.thread = static_cast<std::uint32_t>(&ring - &rings_[0]);
      e.cas_fails = slot.cas_fails.load(std::memory_order_relaxed);
      e.epoch_waits = slot.epoch_waits.load(std::memory_order_relaxed);
      e.pool_refills = slot.pool_refills.load(std::memory_order_relaxed);
      // Keep only slots that were complete for this seq when we started
      // and still are: drops torn entries under concurrent wraparound.
      if (tag == 2 * (seq + 1) &&
          slot.seq.load(std::memory_order_acquire) == tag) {
        e.t_ns = to_ns(start_ticks, origin_ns);
        e.dur_ns = static_cast<std::uint64_t>(
            static_cast<double>(dur_ticks) / ticks_per_ns);
        out.push_back(e);
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const SpanEvent& a, const SpanEvent& b) {
              return a.t_ns < b.t_ns;
            });
  return out;
}

std::uint64_t Recorder::recorded() const {
  std::uint64_t total = 0;
  for (const auto& ring : rings_) {
    total += ring->next.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t Recorder::dropped() const {
  std::uint64_t lost = 0;
  for (const auto& ring : rings_) {
    const std::uint64_t next = ring->next.load(std::memory_order_relaxed);
    if (next > kRingSize) lost += next - kRingSize;
  }
  return lost;
}

void Recorder::reset() {
  for (auto& ring : rings_) {
    for (auto& slot : ring->slots) {
      slot.seq.store(0, std::memory_order_relaxed);
    }
    ring->next.store(0, std::memory_order_relaxed);
  }
}

}  // namespace cats::obs::flight

#endif  // CATS_OBS_ENABLED
