// Chrome/Perfetto trace_event JSON writer.
//
// Merges the flight recorder's op spans (flight.hpp) and the adaptation
// trace's split/join/epoch instants (obs/trace.hpp) into one JSON Trace
// Event Format document that chrome://tracing and https://ui.perfetto.dev
// load directly:
//
//   spans    -> complete events  ("ph":"X", ts/dur in microseconds)
//   instants -> instant events   ("ph":"i", global scope)
//
// Both sources share the AdaptTrace::now_ns() timeline, so a split lands
// visually between the op spans that provoked it.  One track per recorder
// shard ("tid" = shard index); thread-name metadata rows label them.
//
// Compiled out with the rest of the flight recorder under CATS_OBS=OFF.
#pragma once

#include <iosfwd>
#include <vector>

#include "obs/flight/flight.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"

#if CATS_OBS_ENABLED

namespace cats::obs::flight {

/// Writes one self-contained trace document from explicit event lists.
void write_chrome_trace(std::ostream& os,
                        const std::vector<SpanEvent>& spans,
                        const std::vector<TraceEvent>& instants);

/// Convenience: dumps the recorder and the global adaptation trace — the
/// payload of the /trace.json endpoint and of --trace-out.
void write_chrome_trace(std::ostream& os);

}  // namespace cats::obs::flight

#endif  // CATS_OBS_ENABLED
