// Hardware performance counters via perf_event_open.
//
// Each worker thread opens a small group of per-thread counters (cycles,
// instructions, cache misses, branch misses) around its measurement loop;
// the harness folds per-thread readings into per-phase totals ("prefill",
// "measure") so a run reports cycles-per-op and IPC next to throughput.
//
// Graceful degradation is the contract: perf_event_open commonly fails in
// containers (EPERM under perf_event_paranoid >= 2, seccomp) and does not
// exist off Linux.  In every such case the counters report
// available == false with a reason string and the run proceeds — a
// benchmark must never die because the host withholds PMU access.
//
// `PerfCounts` is a plain value struct usable in every build; the live
// machinery is compiled out with the rest of the stack under CATS_OBS=OFF
// (header stubs keep call sites unchanged).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/obs.hpp"

namespace cats::obs {
struct Snapshot;  // export.hpp
}

namespace cats::obs::flight {

struct PerfCounts {
  bool available = false;
  /// Why the counters are off (empty when available); e.g. "EPERM
  /// (perf_event_paranoid?)" or "compiled out (CATS_OBS=OFF)".
  std::string unavailable_reason;
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t branch_misses = 0;
  /// Threads folded into this reading (1 for a ThreadPerf::stop result).
  std::uint32_t threads = 0;

  double ipc() const {
    return cycles == 0 ? 0.0
                       : static_cast<double>(instructions) /
                             static_cast<double>(cycles);
  }

  PerfCounts& operator+=(const PerfCounts& other) {
    if (other.available) {
      available = true;
      cycles += other.cycles;
      instructions += other.instructions;
      cache_misses += other.cache_misses;
      branch_misses += other.branch_misses;
      threads += other.threads;
    } else if (unavailable_reason.empty()) {
      unavailable_reason = other.unavailable_reason;
    }
    return *this;
  }
};

#if CATS_OBS_ENABLED

/// Per-thread counter group.  Construct on the measuring thread; start()
/// zeroes and arms, stop() disarms and reads.  Never throws, never fails
/// the caller: an unavailable host yields available == false readings.
class ThreadPerf {
 public:
  ThreadPerf();
  ~ThreadPerf();
  ThreadPerf(const ThreadPerf&) = delete;
  ThreadPerf& operator=(const ThreadPerf&) = delete;

  bool available() const { return available_; }
  const std::string& unavailable_reason() const { return reason_; }

  void start();
  PerfCounts stop();

 private:
  enum { kCycles, kInstructions, kCacheMisses, kBranchMisses, kCounters };
  int fds_[kCounters] = {-1, -1, -1, -1};
  bool available_ = false;
  std::string reason_;
};

/// Folds one thread's reading into the named phase's process-wide total.
void perf_phase_add(const std::string& phase, const PerfCounts& counts);
/// Per-phase totals in first-use order.
std::vector<std::pair<std::string, PerfCounts>> perf_phase_totals();
void perf_phase_reset();

/// Appends every phase total as gauges (perf_<phase>_cycles, ..._ipc,
/// ..._threads) to a Snapshot — used by the final metrics dump.
void append_perf_phases(Snapshot& snap);

#else  // !CATS_OBS_ENABLED

class ThreadPerf {
 public:
  bool available() const { return false; }
  const std::string& unavailable_reason() const {
    static const std::string reason = "compiled out (CATS_OBS=OFF)";
    return reason;
  }
  void start() {}
  PerfCounts stop() {
    PerfCounts c;
    c.unavailable_reason = unavailable_reason();
    return c;
  }
};

inline void perf_phase_add(const std::string&, const PerfCounts&) {}
inline std::vector<std::pair<std::string, PerfCounts>> perf_phase_totals() {
  return {};
}
inline void perf_phase_reset() {}
inline void append_perf_phases(Snapshot&) {}

#endif  // CATS_OBS_ENABLED

}  // namespace cats::obs::flight
