// Per-operation annotation counters for the flight recorder.
//
// The substrates below the tree — the EBR domain and the slab node pool —
// see interesting per-operation events (an epoch that could not advance, a
// thread-cache refill) but must not depend on the obs library: cats_obs
// links cats_alloc, so a pool → obs call would be a link cycle.  These
// counters are therefore header-only plain thread-locals: the substrate
// bumps them, and the flight recorder (flight.hpp) reads them at span
// begin/end and attributes the delta to the sampled operation.
//
// Cumulative, never reset: consumers subtract two readings.  A bump costs
// one thread-local increment; OFF builds compile the notes to nothing.
#pragma once

#include <cstdint>

#include "obs/obs.hpp"

namespace cats::obs::flight {

#if CATS_OBS_ENABLED

/// Cumulative per-thread annotation counters.
struct OpAnnot {
  std::uint32_t cas_fails = 0;     // lost CAS / retry events (lfca hooks)
  std::uint32_t epoch_waits = 0;   // EBR try_advance blocked by a reader
  std::uint32_t pool_refills = 0;  // node-pool thread-cache refills
};

inline OpAnnot& op_annot() {
  thread_local OpAnnot annot;
  return annot;
}

inline void note_cas_fail() { ++op_annot().cas_fails; }
inline void note_epoch_wait() { ++op_annot().epoch_waits; }
inline void note_pool_refill() { ++op_annot().pool_refills; }

#else  // !CATS_OBS_ENABLED

inline void note_cas_fail() {}
inline void note_epoch_wait() {}
inline void note_pool_refill() {}

#endif  // CATS_OBS_ENABLED

}  // namespace cats::obs::flight
