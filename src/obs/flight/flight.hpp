// Sampled per-operation flight recorder.
//
// The adaptation trace (obs/trace.hpp) records the tree's *decisions*;
// this module records what individual operations *experienced*: start
// timestamp, latency, op kind, key hash, and how many CAS failures, EBR
// epoch waits and pool refills the operation absorbed (annot.hpp).  Spans
// land in per-thread lock-free seqlock rings — same discipline as
// AdaptTrace — and dump() merges all rings into one timeline that shares
// AdaptTrace::now_ns()'s origin, so op spans and split/join instants line
// up in one Perfetto view (flight/perfetto.hpp).
//
// Timing every operation would dominate the cost of a lookup, so spans are
// sampled 1 in 2^shift per thread via a thread-local countdown:
//
//   disabled path:   one relaxed load + branch (g_control == 0)
//   unsampled path:  load + compare + decrement + branch
//   sampled path:    two TSC reads + a handful of relaxed ring stores
//
// Timestamps are raw TSC ticks (x86 rdtsc / aarch64 cntvct_el0, falling
// back to steady_clock); enable() calibrates ticks-per-ns against
// AdaptTrace::now_ns() and anchors the origins so dump() can convert.  The
// rings (~8 MB) are allocated lazily on the first enable(): a process that
// never traces never pays for them.
//
// Control plane (enable/disable/reset) is NOT thread-safe against itself —
// callers serialize it (the harness enables once before the run).  The
// data plane (begin/end/dump) is safe from any thread at any time.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "obs/obs.hpp"

#if CATS_OBS_ENABLED
#include "common/padded.hpp"
#include "common/rng.hpp"
#include "obs/counters.hpp"
#include "obs/flight/annot.hpp"
#include "obs/trace.hpp"
#endif

namespace cats::obs::flight {

enum class SpanKind : std::uint8_t {
  kInsert,
  kRemove,
  kLookup,
  kRange,
};

inline const char* span_kind_name(SpanKind k) {
  switch (k) {
    case SpanKind::kInsert: return "insert";
    case SpanKind::kRemove: return "remove";
    case SpanKind::kLookup: return "lookup";
    case SpanKind::kRange: return "range";
  }
  return "?";
}

/// One completed sampled operation, converted to the AdaptTrace timeline.
struct SpanEvent {
  std::uint64_t t_ns = 0;    // start, AdaptTrace::now_ns() timeline
  std::uint64_t dur_ns = 0;  // latency
  SpanKind kind = SpanKind::kLookup;
  std::uint32_t key_hash = 0;      // mix64(key) truncated; spreads hot keys
  std::uint32_t thread = 0;        // recorder's shard index
  std::uint32_t cas_fails = 0;     // annotation deltas over the span
  std::uint32_t epoch_waits = 0;
  std::uint32_t pool_refills = 0;
};

/// Token returned by begin_span(); inert (active == false) on the
/// disabled/unsampled paths.
struct SpanStart {
  std::uint64_t ticks = 0;
  std::uint32_t cas_fails = 0;
  std::uint32_t epoch_waits = 0;
  std::uint32_t pool_refills = 0;
  bool active = false;
};

#if CATS_OBS_ENABLED

/// Global sampling control word: 0 = disabled, else
/// (generation << 8) | (sample_shift + 1).  The generation bump on every
/// enable() invalidates each thread's cached countdown, so a new shift
/// takes effect immediately (and the first op after enable is sampled).
inline std::atomic<std::uint32_t> g_control{0};

/// Raw timestamp-counter read; units are calibrated at enable() time.
inline std::uint64_t read_ticks() {
#if defined(__x86_64__) || defined(__i386__)
  std::uint32_t lo, hi;
  asm volatile("rdtsc" : "=a"(lo), "=d"(hi));
  return (static_cast<std::uint64_t>(hi) << 32) | lo;
#elif defined(__aarch64__)
  std::uint64_t v;
  asm volatile("mrs %0, cntvct_el0" : "=r"(v));
  return v;
#else
  return AdaptTrace::now_ns();  // 1 tick == 1 ns, calibration finds ~1.0
#endif
}

class Recorder {
 public:
  /// Spans retained per thread ring; older spans are overwritten.
  static constexpr std::size_t kRingSize = 4096;

  /// Lazily constructed (and leaked) so the disabled path never touches —
  /// or allocates — the rings.
  static Recorder& instance();

  /// Calibrates the tick clock, clears the rings and turns sampling on at
  /// 1 in 2^sample_shift ops per thread (shift 0 = every op).
  void enable(unsigned sample_shift);
  void disable() { g_control.store(0, std::memory_order_release); }
  bool enabled() const {
    return g_control.load(std::memory_order_acquire) != 0;
  }
  /// Active shift, or negative when disabled.
  int sample_shift() const {
    const std::uint32_t control = g_control.load(std::memory_order_acquire);
    return control == 0 ? -1 : static_cast<int>((control & 0xffu) - 1);
  }
  double ticks_per_ns() const {
    return ticks_per_ns_.load(std::memory_order_acquire);
  }

  /// Hot path; called via begin_span() only when g_control != 0.
  SpanStart begin(std::uint32_t control) {
    Sampler& tl = sampler();
    if (tl.control != control) {
      tl.control = control;
      tl.countdown = 0;
    }
    if (tl.countdown != 0) {
      --tl.countdown;
      return {};
    }
    tl.countdown = (1u << ((control & 0xffu) - 1)) - 1;
    SpanStart s;
    s.active = true;
    const OpAnnot& annot = op_annot();
    s.cas_fails = annot.cas_fails;
    s.epoch_waits = annot.epoch_waits;
    s.pool_refills = annot.pool_refills;
    s.ticks = read_ticks();
    return s;
  }

  /// Seals a sampled span into the calling thread's ring.
  void end(const SpanStart& s, SpanKind kind, Key key) {
    const std::uint64_t end_ticks = read_ticks();
    const OpAnnot& annot = op_annot();
    const std::size_t shard = shard_index();
    Ring& ring = *rings_[shard];
    const std::uint64_t seq = ring.next.load(std::memory_order_relaxed);
    Slot& slot = ring.slots[seq % kRingSize];
    // Odd sequence = slot being written; dump() skips such slots (the
    // seqlock discipline of obs/trace.hpp).
    slot.seq.store(2 * seq + 1, std::memory_order_release);
    slot.start_ticks.store(s.ticks, std::memory_order_relaxed);
    // TSC reads may jump backwards across a core migration; clamp.
    slot.dur_ticks.store(end_ticks > s.ticks ? end_ticks - s.ticks : 0,
                         std::memory_order_relaxed);
    slot.kind.store(static_cast<std::uint8_t>(kind),
                    std::memory_order_relaxed);
    slot.key_hash.store(
        static_cast<std::uint32_t>(mix64(static_cast<std::uint64_t>(key))),
        std::memory_order_relaxed);
    slot.cas_fails.store(annot.cas_fails - s.cas_fails,
                         std::memory_order_relaxed);
    slot.epoch_waits.store(annot.epoch_waits - s.epoch_waits,
                           std::memory_order_relaxed);
    slot.pool_refills.store(annot.pool_refills - s.pool_refills,
                            std::memory_order_relaxed);
    slot.seq.store(2 * (seq + 1), std::memory_order_release);
    ring.next.store(seq + 1, std::memory_order_release);
  }

  /// Merged timeline of every ring, sorted by start time.  Entries being
  /// overwritten mid-read are dropped (same contract as AdaptTrace::dump).
  std::vector<SpanEvent> dump() const;

  /// Total spans ever recorded (including overwritten ones).
  std::uint64_t recorded() const;
  /// Spans lost to ring wraparound (recorded minus still-resident).
  std::uint64_t dropped() const;

  /// Clears the rings (control plane; not safe against live recording).
  void reset();

 private:
  struct Sampler {
    std::uint32_t control = 0;
    std::uint32_t countdown = 0;
  };
  static Sampler& sampler() {
    thread_local Sampler tl;
    return tl;
  }

  struct Slot {
    std::atomic<std::uint64_t> seq{0};
    std::atomic<std::uint64_t> start_ticks{0};
    std::atomic<std::uint64_t> dur_ticks{0};
    std::atomic<std::uint8_t> kind{0};
    std::atomic<std::uint32_t> key_hash{0};
    std::atomic<std::uint32_t> cas_fails{0};
    std::atomic<std::uint32_t> epoch_waits{0};
    std::atomic<std::uint32_t> pool_refills{0};
  };
  struct Ring {
    Slot slots[kRingSize];
    std::atomic<std::uint64_t> next{0};
  };

  Recorder() = default;

  // Calibration anchors, written by enable() before the g_control release
  // store; dump() reads them acquire.  Spans always store raw ticks — the
  // conversion happens only at dump time.
  std::atomic<std::uint64_t> origin_ticks_{0};
  std::atomic<std::uint64_t> origin_ns_{0};
  std::atomic<double> ticks_per_ns_{1.0};
  std::uint32_t generation_ = 0;  // control plane only

  Padded<Ring> rings_[kShards];
};

/// Hot-path entry: inert token unless sampling is on and this op won the
/// thread's countdown.
inline SpanStart begin_span() {
  const std::uint32_t control = g_control.load(std::memory_order_relaxed);
  if (control == 0) return {};
  return Recorder::instance().begin(control);
}

inline void end_span(const SpanStart& s, SpanKind kind, Key key) {
  if (!s.active) return;
  Recorder::instance().end(s, kind, key);
}

#else  // !CATS_OBS_ENABLED

/// CATS_OBS=OFF stubs: same shape, no rings, no clock reads — call sites
/// outside CATS_OBS_ONLY blocks compile unchanged and emit nothing.
class Recorder {
 public:
  static constexpr std::size_t kRingSize = 0;
  static Recorder& instance() {
    static Recorder r;
    return r;
  }
  void enable(unsigned) {}
  void disable() {}
  bool enabled() const { return false; }
  int sample_shift() const { return -1; }
  double ticks_per_ns() const { return 1.0; }
  std::vector<SpanEvent> dump() const { return {}; }
  std::uint64_t recorded() const { return 0; }
  std::uint64_t dropped() const { return 0; }
  void reset() {}
};

inline SpanStart begin_span() { return {}; }
inline void end_span(const SpanStart&, SpanKind, Key) {}

#endif  // CATS_OBS_ENABLED

}  // namespace cats::obs::flight
