#include "obs/flight/perfetto.hpp"

#if CATS_OBS_ENABLED

#include <cinttypes>
#include <cstdio>
#include <ostream>

#include "obs/registry.hpp"

namespace cats::obs::flight {

namespace {

/// Microsecond timestamps with nanosecond precision (the Trace Event
/// Format's `ts`/`dur` unit is microseconds; fractions are allowed).
void write_us(std::ostream& os, std::uint64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%" PRIu64 ".%03u", ns / 1000,
                static_cast<unsigned>(ns % 1000));
  os << buf;
}

void write_span(std::ostream& os, const SpanEvent& e) {
  os << "{\"name\":\"" << span_kind_name(e.kind)
     << "\",\"cat\":\"op\",\"ph\":\"X\",\"pid\":1,\"tid\":" << e.thread
     << ",\"ts\":";
  write_us(os, e.t_ns);
  os << ",\"dur\":";
  write_us(os, e.dur_ns);
  os << ",\"args\":{\"key_hash\":" << e.key_hash
     << ",\"cas_fails\":" << e.cas_fails
     << ",\"epoch_waits\":" << e.epoch_waits
     << ",\"pool_refills\":" << e.pool_refills << "}}";
}

void write_instant(std::ostream& os, const TraceEvent& e) {
  os << "{\"name\":\"" << adapt_kind_name(e.kind)
     << "\",\"cat\":\"adapt\",\"ph\":\"i\",\"s\":\"g\",\"pid\":1,\"tid\":"
     << e.thread << ",\"ts\":";
  write_us(os, e.time_ns);
  os << ",\"args\":{\"depth\":" << e.depth << ",\"stat\":" << e.stat << "}}";
}

}  // namespace

void write_chrome_trace(std::ostream& os,
                        const std::vector<SpanEvent>& spans,
                        const std::vector<TraceEvent>& instants) {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
        "\"args\":{\"name\":\"cats\"}}";
  // Label every track that carries at least one event.
  bool used[kShards] = {};
  for (const SpanEvent& e : spans) used[e.thread % kShards] = true;
  for (const TraceEvent& e : instants) used[e.thread % kShards] = true;
  for (std::size_t t = 0; t < kShards; ++t) {
    if (!used[t]) continue;
    os << ",{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << t
       << ",\"args\":{\"name\":\"shard " << t << "\"}}";
  }
  // Two-way merge by timestamp: both inputs are already sorted (the dump()
  // contracts), so the document reads chronologically.
  std::size_t si = 0;
  std::size_t ii = 0;
  while (si < spans.size() || ii < instants.size()) {
    os << ',';
    const bool take_span =
        ii >= instants.size() ||
        (si < spans.size() && spans[si].t_ns <= instants[ii].time_ns);
    if (take_span) {
      write_span(os, spans[si++]);
    } else {
      write_instant(os, instants[ii++]);
    }
  }
  os << "]}";
}

void write_chrome_trace(std::ostream& os) {
  write_chrome_trace(os, Recorder::instance().dump(),
                     Registry::instance().trace().dump());
}

}  // namespace cats::obs::flight

#endif  // CATS_OBS_ENABLED
