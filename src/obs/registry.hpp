// Process-wide observability registry.
//
// One singleton owning the counters, histograms and the adaptation trace
// that are not naturally per-tree: the reclamation substrate and the leaf
// containers are shared by every structure in the process, and the trace is
// a process-level timeline.  Per-tree counters (the paper's statistics)
// live in the tree itself — see lfca/stats.hpp.
//
// Everything here is safe to touch from any thread at any time; increments
// are relaxed per-thread-shard operations (counters.hpp).  Reads aggregate.
#pragma once

#include <cstdint>

#include "obs/counters.hpp"
#include "obs/histogram.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"

namespace cats::obs {

/// Global (process-level) counters.  Order defines export order.
enum class GCounter : std::size_t {
  // --- epoch-based reclamation (src/reclaim/ebr.cpp) ----------------------
  kEbrRetired,          // nodes handed to Domain::retire
  kEbrFreed,            // retired nodes actually deleted
  kEbrAdvanceAttempts,  // try_advance calls
  kEbrAdvances,         // epoch increments that succeeded
  kEbrOrphaned,         // retirements handed over at thread exit
  // --- treap leaf containers (src/treap/treap.cpp) ------------------------
  kTreapNodeAllocs,     // persistent treap nodes allocated (path copies)
  kTreapNodeFrees,      // persistent treap nodes destroyed
  // --- benchmark harness (src/harness/runner.hpp) --------------------------
  kHarnessOps,          // operations completed by harness worker threads;
                        // the monitor derives ops/sec from its deltas
  kCount
};

inline const char* gcounter_name(GCounter c) {
  switch (c) {
    case GCounter::kEbrRetired: return "ebr_retired";
    case GCounter::kEbrFreed: return "ebr_freed";
    case GCounter::kEbrAdvanceAttempts: return "ebr_advance_attempts";
    case GCounter::kEbrAdvances: return "ebr_advances";
    case GCounter::kEbrOrphaned: return "ebr_orphaned";
    case GCounter::kTreapNodeAllocs: return "treap_node_allocs";
    case GCounter::kTreapNodeFrees: return "treap_node_frees";
    case GCounter::kHarnessOps: return "harness_ops";
    case GCounter::kCount: break;
  }
  return "?";
}

/// Global histograms.  Latencies are nanoseconds (sampled by the harness);
/// the others are dimensionless sizes.
enum class GHistogram : std::size_t {
  kUpdateLatencyNs,      // insert/remove latency (sampled)
  kLookupLatencyNs,      // lookup latency (sampled)
  kRangeLatencyNs,       // range-query latency (sampled)
  kRangeBasesTraversed,  // base nodes per completed range query
  kSplitLeafItems,       // leaf container occupancy at split time
  kCount
};

inline const char* ghistogram_name(GHistogram h) {
  switch (h) {
    case GHistogram::kUpdateLatencyNs: return "update_latency_ns";
    case GHistogram::kLookupLatencyNs: return "lookup_latency_ns";
    case GHistogram::kRangeLatencyNs: return "range_latency_ns";
    case GHistogram::kRangeBasesTraversed: return "range_bases_traversed";
    case GHistogram::kSplitLeafItems: return "split_leaf_items";
    case GHistogram::kCount: break;
  }
  return "?";
}

/// Value-type copy of every registry counter and histogram, taken without
/// disturbing the live sharded storage.  This is how periodic consumers
/// (the background monitor) compute interval deltas: subtract two
/// snapshots.  Never use Registry::reset() for that — see its comment.
struct RegistryValues {
  std::uint64_t counters[static_cast<std::size_t>(GCounter::kCount)] = {};
  HistogramSnapshot histograms[static_cast<std::size_t>(GHistogram::kCount)];
  /// Total adaptation events ever recorded (including overwritten ones).
  std::uint64_t trace_recorded = 0;

  std::uint64_t counter(GCounter c) const {
    return counters[static_cast<std::size_t>(c)];
  }
  const HistogramSnapshot& histogram(GHistogram h) const {
    return histograms[static_cast<std::size_t>(h)];
  }
};

class Registry {
 public:
  static Registry& instance() {
    static Registry* const reg = new Registry();  // leaked on purpose: may
    return *reg;  // be used from thread-exit paths after static destruction
  }

  void count(GCounter c, std::uint64_t n = 1) { counters_.add(c, n); }
  std::uint64_t read(GCounter c) const { return counters_.read(c); }

  LogHistogram& histogram(GHistogram h) {
    return histograms_[static_cast<std::size_t>(h)];
  }
  void record(GHistogram h, std::uint64_t v) { histogram(h).record(v); }

  AdaptTrace& trace() { return trace_; }

  /// Non-destructive value copy of every counter and histogram.  Safe to
  /// call from any thread at any time; concurrent recorders make the result
  /// slightly approximate (same contract as read()).
  RegistryValues snapshot() const {
    RegistryValues out;
    for (std::size_t i = 0; i < static_cast<std::size_t>(GCounter::kCount);
         ++i) {
      out.counters[i] = counters_.read(i);
    }
    for (std::size_t i = 0; i < static_cast<std::size_t>(GHistogram::kCount);
         ++i) {
      out.histograms[i] = histograms_[i].snapshot();
    }
    out.trace_recorded = trace_.recorded();
    return out;
  }

  /// Zeroes counters and histograms and clears the trace (for benchmarks
  /// that want per-run deltas).
  ///
  /// ONLY safe in quiescence: zeroing proceeds shard by shard while a
  /// concurrent recorder keeps adding, so a racing reset can both lose
  /// increments and produce aggregate reads that briefly go backwards.
  /// Periodic consumers must compute deltas between two snapshot() calls
  /// instead of resetting.
  void reset() {
    counters_.reset();
    for (auto& h : histograms_) h.reset();
    trace_.reset();
  }

 private:
  Registry() = default;

  ShardedCounters<static_cast<std::size_t>(GCounter::kCount)> counters_;
  LogHistogram histograms_[static_cast<std::size_t>(GHistogram::kCount)];
  AdaptTrace trace_;
};

/// Hot-path helpers; call through CATS_OBS_ONLY so OFF builds emit nothing.
inline void count(GCounter c, std::uint64_t n = 1) {
  Registry::instance().count(c, n);
}
inline void record(GHistogram h, std::uint64_t v) {
  Registry::instance().record(h, v);
}
inline void trace_adapt(AdaptKind kind, std::uint32_t depth,
                        std::int32_t stat) {
  Registry::instance().trace().record(kind, depth, stat);
}

}  // namespace cats::obs
