// Background monitor: a sampler thread turning cumulative counters into a
// rate time-series.
//
// Counters answer "how many splits happened this run"; the monitor answers
// "when" — it wakes at a fixed interval, pulls a non-destructive Snapshot
// from a caller-supplied source (Registry::snapshot() deltas under the
// hood, never reset()), computes per-second rates for every counter from
// the interval deltas, optionally collects a route-tree topology snapshot,
// and appends everything to a bounded in-memory ring.  The series dumps as
// CSV (one row per sample, for plotting) or JSON.
//
// The sampler thread never touches tree hot paths: sources read sharded
// counters (aggregate-on-read) and walk the tree inside an EBR guard.
// series()/write_csv may be called while sampling is live; the sample ring
// is mutex-protected (the monitor is not a hot path).
//
// Compiled out entirely when CATS_OBS is OFF: no class, no thread.
#pragma once

#include "obs/obs.hpp"

#if CATS_OBS_ENABLED

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <iosfwd>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/export.hpp"
#include "obs/topology.hpp"

namespace cats::obs {

class Monitor {
 public:
  /// Produces the counters/gauges to sample.  Must be callable from the
  /// monitor thread concurrently with whatever the process is doing —
  /// global_snapshot() plus Stats::append_to satisfies this.
  using StatsSource = std::function<Snapshot()>;
  /// Optional: produces a route-tree topology snapshot (an EBR-guarded
  /// walk); its scalar fields are recorded as gauges per sample.
  using TopologySource = std::function<TopologySnapshot()>;

  struct Config {
    std::chrono::milliseconds interval{100};
    /// Samples retained; older samples fall off the front.  At the default
    /// 100 ms interval this holds ~27 minutes.
    std::size_t capacity = 16384;
  };

  struct Sample {
    double t_s = 0;         // seconds since start()
    double interval_s = 0;  // actual wall-clock delta to the previous sample
    std::vector<std::uint64_t> counters;  // cumulative, counter_names order
    std::vector<double> rates;            // (delta / interval_s) per counter
    std::vector<double> gauges;           // gauge_names order
  };

  Monitor(Config config, StatsSource stats, TopologySource topology = {});
  ~Monitor();

  Monitor(const Monitor&) = delete;
  Monitor& operator=(const Monitor&) = delete;

  /// Spawns the sampler thread (no-op if already running).
  void start();
  /// Stops and joins the sampler thread; the collected series remains
  /// readable.  Idempotent.
  void stop();
  bool running() const { return thread_.joinable(); }

  /// Column schema, fixed by the first sample: counter names from the
  /// stats source, then gauge names (stats gauges, then "topo_"-prefixed
  /// topology scalars).  Empty until the first sample lands.
  std::vector<std::string> counter_names() const;
  std::vector<std::string> gauge_names() const;

  /// Copy of the collected series, oldest first.
  std::vector<Sample> series() const;
  std::size_t sample_count() const;

  /// CSV: header `t_s,interval_s,<counters...>,<counter>_per_sec...,
  /// <gauges...>`, one row per sample.
  void write_csv(std::ostream& os) const;
  /// JSON: {"interval_ms":...,"counters":[names],"gauges":[names],
  /// "samples":[{"t_s":...,"cumulative":[...],"per_sec":[...],
  /// "gauges":[...]}]}.
  void write_json(std::ostream& os) const;
  bool write_csv_file(const std::string& path) const;

  /// Takes one sample immediately on the calling thread (also used by the
  /// sampler loop; exposed so tests and finish paths need not wait an
  /// interval).
  void sample_now();

 private:
  void run();

  const Config config_;
  const StatsSource stats_;
  const TopologySource topology_;

  mutable std::mutex mutex_;  // guards everything below
  std::vector<std::string> counter_names_;
  std::vector<std::string> gauge_names_;
  std::deque<Sample> samples_;
  std::chrono::steady_clock::time_point start_time_;
  bool have_last_ = false;
  std::vector<std::uint64_t> last_counters_;
  double last_t_s_ = 0;

  std::mutex stop_mutex_;
  std::condition_variable stop_cv_;
  bool stop_requested_ = false;
  std::thread thread_;
};

}  // namespace cats::obs

#endif  // CATS_OBS_ENABLED
