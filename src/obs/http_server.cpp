#include "obs/http_server.hpp"

#if CATS_OBS_ENABLED

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace cats::obs {

namespace {

/// Writes the whole buffer, retrying short writes; MSG_NOSIGNAL so a
/// disconnected client yields EPIPE instead of killing the process.
void send_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                             MSG_NOSIGNAL);
    if (n <= 0) return;  // client gone; nothing to salvage
    off += static_cast<std::size_t>(n);
  }
}

std::string make_response(int status, const char* reason,
                          const std::string& content_type,
                          const std::string& body) {
  std::string head = "HTTP/1.1 " + std::to_string(status) + " " + reason +
                     "\r\nContent-Type: " + content_type +
                     "\r\nContent-Length: " + std::to_string(body.size()) +
                     "\r\nConnection: close\r\n\r\n";
  return head + body;
}

}  // namespace

HttpServer::HttpServer(int port) : requested_port_(port) {}

HttpServer::~HttpServer() { stop(); }

void HttpServer::handle(std::string path, std::string content_type,
                        Handler handler) {
  routes_.push_back(
      Route{std::move(path), std::move(content_type), std::move(handler)});
}

bool HttpServer::start() {
  if (thread_.joinable()) return true;
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    std::fprintf(stderr, "obs::HttpServer: socket() failed: %s\n",
                 std::strerror(errno));
    return false;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(static_cast<std::uint16_t>(requested_port_));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
          0 ||
      ::listen(listen_fd_, 16) < 0) {
    std::fprintf(stderr, "obs::HttpServer: bind/listen on port %d failed: %s\n",
                 requested_port_, std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0) {
    bound_port_ = ntohs(bound.sin_port);
  }
  thread_ = std::thread([this] { run(); });
  return true;
}

void HttpServer::stop() {
  if (!thread_.joinable()) return;
  // shutdown() wakes the blocked accept(); the loop then sees the fd is
  // dead and exits.  close() only after the join so the descriptor number
  // cannot be reused while the thread still touches it.
  ::shutdown(listen_fd_, SHUT_RDWR);
  thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void HttpServer::run() {
  while (true) {
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR) continue;
      return;  // listening socket shut down (or broken): server is done
    }
    // A stalled client must not wedge the single server thread.
    timeval timeout{};
    timeout.tv_sec = 2;
    ::setsockopt(client, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof timeout);
    ::setsockopt(client, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof timeout);
    serve_client(client);
    ::close(client);
  }
}

void HttpServer::serve_client(int client_fd) {
  // Read until the end of the request head (we ignore everything past the
  // request line) or a small cap; scrape requests are tiny.
  std::string request;
  char buf[2048];
  while (request.find("\r\n\r\n") == std::string::npos &&
         request.size() < 8192) {
    const ssize_t n = ::recv(client_fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    request.append(buf, static_cast<std::size_t>(n));
  }
  const std::size_t line_end = request.find("\r\n");
  if (line_end == std::string::npos) return;  // not even a request line
  const std::string line = request.substr(0, line_end);

  // "GET /path HTTP/1.1" — method, target, version.
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 = line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    send_all(client_fd, make_response(400, "Bad Request", "text/plain",
                                      "bad request line\n"));
    return;
  }
  const std::string method = line.substr(0, sp1);
  std::string path = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::size_t query = path.find('?');
  if (query != std::string::npos) path.resize(query);

  if (method != "GET" && method != "HEAD") {
    send_all(client_fd,
             make_response(405, "Method Not Allowed", "text/plain",
                           "only GET is served here\n"));
    return;
  }
  for (const Route& route : routes_) {
    if (route.path != path) continue;
    std::string response =
        make_response(200, "OK", route.content_type, route.handler());
    if (method == "HEAD") response.resize(response.find("\r\n\r\n") + 4);
    send_all(client_fd, response);
    return;
  }
  std::string listing = "not found; routes:\n";
  for (const Route& route : routes_) listing += "  " + route.path + "\n";
  send_all(client_fd, make_response(404, "Not Found", "text/plain", listing));
}

}  // namespace cats::obs

#endif  // CATS_OBS_ENABLED
