#include "obs/monitor.hpp"

#if CATS_OBS_ENABLED

#include <fstream>
#include <ostream>

namespace cats::obs {

Monitor::Monitor(Config config, StatsSource stats, TopologySource topology)
    : config_(config), stats_(std::move(stats)),
      topology_(std::move(topology)) {
  start_time_ = std::chrono::steady_clock::now();
}

Monitor::~Monitor() { stop(); }

void Monitor::start() {
  if (thread_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(stop_mutex_);
    stop_requested_ = false;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    start_time_ = std::chrono::steady_clock::now();
  }
  thread_ = std::thread([this] { run(); });
}

void Monitor::stop() {
  if (!thread_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(stop_mutex_);
    stop_requested_ = true;
  }
  stop_cv_.notify_all();
  thread_.join();
}

void Monitor::run() {
  // One sample right away so short runs still produce a baseline row, then
  // one per interval until stop() is requested; a final sample on the way
  // out captures the tail of the run.
  sample_now();
  while (true) {
    std::unique_lock<std::mutex> lock(stop_mutex_);
    if (stop_cv_.wait_for(lock, config_.interval,
                          [this] { return stop_requested_; })) {
      break;
    }
    lock.unlock();
    sample_now();
  }
  sample_now();
}

void Monitor::sample_now() {
  // Sources run outside the sample mutex: a topology walk can take a while
  // on a big tree and must not block concurrent series() readers.
  Snapshot snap = stats_();
  TopologySnapshot topo;
  const bool have_topo = static_cast<bool>(topology_);
  if (have_topo) topo = topology_();
  const auto now = std::chrono::steady_clock::now();

  std::lock_guard<std::mutex> lock(mutex_);
  const double t_s =
      std::chrono::duration<double>(now - start_time_).count();
  if (counter_names_.empty() && gauge_names_.empty()) {
    // First sample fixes the column schema.
    for (const auto& [name, value] : snap.counters) {
      (void)value;
      counter_names_.push_back(name);
    }
    for (const auto& [name, value] : snap.gauges) {
      (void)value;
      gauge_names_.push_back(name);
    }
    if (have_topo) {
      for (const char* name :
           {"topo_route_nodes", "topo_base_nodes", "topo_joining_bases",
            "topo_range_bases", "topo_items", "topo_max_depth",
            "topo_mean_occupancy"}) {
        gauge_names_.push_back(name);
      }
    }
  }

  Sample s;
  s.t_s = t_s;
  s.counters.reserve(counter_names_.size());
  for (std::size_t i = 0; i < counter_names_.size(); ++i) {
    s.counters.push_back(i < snap.counters.size() ? snap.counters[i].second
                                                  : 0);
  }
  s.interval_s = have_last_ ? t_s - last_t_s_ : 0.0;
  s.rates.resize(s.counters.size(), 0.0);
  if (have_last_ && s.interval_s > 0) {
    for (std::size_t i = 0; i < s.counters.size(); ++i) {
      const std::uint64_t prev =
          i < last_counters_.size() ? last_counters_[i] : 0;
      // Counters are monotone except across an explicit quiescent reset;
      // clamp so a reset between samples shows as 0 rather than underflow.
      const std::uint64_t delta =
          s.counters[i] >= prev ? s.counters[i] - prev : 0;
      s.rates[i] = static_cast<double>(delta) / s.interval_s;
    }
  }
  for (std::size_t i = 0; i < snap.gauges.size(); ++i) {
    s.gauges.push_back(snap.gauges[i].second);
  }
  if (have_topo) {
    s.gauges.push_back(static_cast<double>(topo.route_nodes));
    s.gauges.push_back(static_cast<double>(topo.base_nodes));
    s.gauges.push_back(static_cast<double>(topo.joining_bases));
    s.gauges.push_back(static_cast<double>(topo.range_bases));
    s.gauges.push_back(static_cast<double>(topo.items));
    s.gauges.push_back(static_cast<double>(topo.max_depth));
    s.gauges.push_back(topo.mean_occupancy());
  }

  last_counters_ = s.counters;
  last_t_s_ = t_s;
  have_last_ = true;
  samples_.push_back(std::move(s));
  while (samples_.size() > config_.capacity) samples_.pop_front();
}

std::vector<std::string> Monitor::counter_names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counter_names_;
}

std::vector<std::string> Monitor::gauge_names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return gauge_names_;
}

std::vector<Monitor::Sample> Monitor::series() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return std::vector<Sample>(samples_.begin(), samples_.end());
}

std::size_t Monitor::sample_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return samples_.size();
}

void Monitor::write_csv(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mutex_);
  os << "t_s,interval_s";
  for (const auto& name : counter_names_) os << ',' << name;
  for (const auto& name : counter_names_) os << ',' << name << "_per_sec";
  for (const auto& name : gauge_names_) os << ',' << name;
  os << '\n';
  for (const Sample& s : samples_) {
    os << s.t_s << ',' << s.interval_s;
    for (std::size_t i = 0; i < counter_names_.size(); ++i) {
      os << ',' << (i < s.counters.size() ? s.counters[i] : 0);
    }
    for (std::size_t i = 0; i < counter_names_.size(); ++i) {
      os << ',' << (i < s.rates.size() ? s.rates[i] : 0.0);
    }
    for (std::size_t i = 0; i < gauge_names_.size(); ++i) {
      os << ',' << (i < s.gauges.size() ? s.gauges[i] : 0.0);
    }
    os << '\n';
  }
}

void Monitor::write_json(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mutex_);
  os << "{\"interval_ms\":" << config_.interval.count() << ",\"counters\":[";
  for (std::size_t i = 0; i < counter_names_.size(); ++i) {
    if (i > 0) os << ',';
    os << '"' << counter_names_[i] << '"';  // names are plain snake_case
  }
  os << "],\"gauges\":[";
  for (std::size_t i = 0; i < gauge_names_.size(); ++i) {
    if (i > 0) os << ',';
    os << '"' << gauge_names_[i] << '"';
  }
  os << "],\"samples\":[";
  bool first = true;
  for (const Sample& s : samples_) {
    if (!first) os << ',';
    first = false;
    os << "{\"t_s\":" << s.t_s << ",\"interval_s\":" << s.interval_s
       << ",\"cumulative\":[";
    for (std::size_t i = 0; i < s.counters.size(); ++i) {
      if (i > 0) os << ',';
      os << s.counters[i];
    }
    os << "],\"per_sec\":[";
    for (std::size_t i = 0; i < s.rates.size(); ++i) {
      if (i > 0) os << ',';
      os << s.rates[i];
    }
    os << "],\"gauges\":[";
    for (std::size_t i = 0; i < s.gauges.size(); ++i) {
      if (i > 0) os << ',';
      os << s.gauges[i];
    }
    os << "]}";
  }
  os << "]}";
}

bool Monitor::write_csv_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  write_csv(out);
  return static_cast<bool>(out);
}

}  // namespace cats::obs

#endif  // CATS_OBS_ENABLED
