// sim.hpp -- public API of the cats deterministic concurrency simulator.
//
// A loom/CHESS-style cooperative scheduler: inside sim::explore() exactly one
// scenario thread runs at a time, and the token is handed over only at
// *scheduling points* (every cats::atomic operation, guard enter/exit,
// Domain::retire, thread spawn/join).  Because every visible operation is a
// scheduling point, a schedule -- the sequence of thread choices -- fully
// determines an execution, which makes exploration exhaustive (up to the
// preemption bound) and failures replayable from a dumped trace.
//
// Exploration modes:
//   kDfs    -- stateless depth-first search over schedules.  Sleep-set
//              partial-order reduction prunes commutative reorderings;
//              CHESS-style iterative preemption bounding runs bound 0, 1, ...
//              up to Options::preemption_bound so the simplest failing
//              schedule is found first.
//   kRandom -- seeded random walk; schedule i uses mix(seed, i), so any
//              failure is reproducible from (seed, i) or from the dumped
//              choice list.
//   kReplay -- re-execute a recorded choice list (e.g. a failure trace).
//
// On top of the scheduler:
//   * a vector-clock happens-before race detector over instrumented plain
//     node-field accesses (cats::sim_plain_read/write) and quarantined frees;
//   * observed release->acquire pairings, exportable for the catslint R5
//     matrix diff (tools/sim_pairs_diff.py);
//   * a logical clock (logical_time()) for linearizability histories.
//
// Only built when CATS_SIM=ON; see DESIGN.md "Deterministic simulation".

#pragma once

#if !CATS_SIM_ENABLED
#error "src/sim requires a CATS_SIM=ON build (cmake -DCATS_SIM=ON)"
#endif

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/catomic.hpp"

namespace cats::sim {

inline constexpr int kMaxSimThreads = 12;

enum class Mode { kDfs, kRandom, kReplay };

struct Options {
  Mode mode = Mode::kDfs;

  // kDfs: iterative preemption bounding explores bounds 0..preemption_bound.
  int preemption_bound = 1;
  // kDfs: sleep-set partial-order reduction (disable to brute-force, e.g. in
  // the DPOR soundness litmus tests).
  bool sleep_sets = true;

  // Safety cap across all modes; Result::hit_schedule_cap reports truncation.
  std::uint64_t max_schedules = 100000;

  // kRandom: number of schedules and base seed (schedule i -> mix(seed, i)).
  std::uint64_t random_schedules = 1000;
  std::uint64_t seed = 1;

  // kReplay: recorded thread choices; past the end the scheduler continues
  // with the default (stay-with-current) policy.
  std::vector<int> replay;

  // Per-execution step budget (livelock / runaway guard).
  std::uint64_t max_steps = 200000;

  // Record observed release->acquire site pairs into Result::observed_pairs.
  bool collect_pairs = false;

  // Stop exploring after the first failing execution (default) or keep
  // going and report only the first failure.
  bool stop_on_failure = true;
};

// One observed release->acquire synchronisation, aggregated by site pair.
struct ObservedPair {
  std::string store_file;
  unsigned store_line = 0;
  std::string load_file;
  unsigned load_line = 0;
  std::uint64_t count = 0;
};

struct Result {
  std::uint64_t schedules_explored = 0;
  std::uint64_t schedules_pruned = 0;  // sleep-set-pruned executions
  std::uint64_t max_steps_seen = 0;
  int bound_used = 0;       // preemption bound in effect when explore ended
  bool hit_schedule_cap = false;

  bool failed = false;
  int failing_bound = -1;   // preemption bound of the failing schedule (kDfs)
  std::string failure_message;
  std::vector<int> failure_schedule;  // thread choice per step, replayable
  std::string failure_trace;          // annotated human-readable trace

  // FNV over every (execution, step, choice) triple: identical explorations
  // produce identical digests (scheduler determinism tests).
  std::uint64_t schedule_digest = 0;

  std::vector<ObservedPair> observed_pairs;

  std::string summary() const;
};

// Run `scenario` under the simulator.  The calling thread becomes simulated
// thread 0 and re-executes the scenario once per explored schedule, so the
// scenario must be restartable: build all shared state inside the callable
// (fresh tree, fresh reclamation Domain, fresh cats::sim_thread workers).
Result explore(const Options& opts, const std::function<void()>& scenario);

// --- failure trace dump / replay -------------------------------------------

// Serialise a failing Result to `path` (schedule line + annotated steps).
bool write_trace_file(const std::string& path, const Result& r);

// Parse the "schedule:" line of a dumped trace back into a choice list.
bool load_schedule_file(const std::string& path, std::vector<int>& out);
std::vector<int> parse_schedule_line(const std::string& text);

// --- in-scenario helpers ----------------------------------------------------

// True while the calling thread belongs to an active exploration.
// (Same predicate the cats::atomic wrapper consults.)
bool active() noexcept;

// Logical step clock, strictly monotonic within an execution.  Use for
// linearizability invoke/response timestamps.
std::uint64_t logical_time() noexcept;

// Record a failure if !ok (execution keeps running to completion so the
// trace stays replayable; exploration stops afterwards).
void check(bool ok, const char* msg);

// Unconditional failure record.
void fail(const std::string& msg);

}  // namespace cats::sim
