// explore.cpp -- schedule exploration strategies (DFS + sleep sets +
// preemption bounds, seeded random walk, replay) and the explore() driver.

#include "sim/sim_internal.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

namespace cats::sim {

namespace {

bool contains_tid(const std::vector<EnabledThread>& en, int tid) {
  for (const auto& e : en)
    if (e.tid == tid) return true;
  return false;
}

const Pending* pending_of(const std::vector<EnabledThread>& en, int tid) {
  for (const auto& e : en)
    if (e.tid == tid) return e.announced ? &e.pending : nullptr;
  return nullptr;
}

std::uint64_t fnv_step(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x100;
  return h * 1099511628211ull;
}

}  // namespace

// --- DfsStrategy ------------------------------------------------------------

DfsStrategy::DfsStrategy(int preemption_bound, bool sleep_sets)
    : bound_(preemption_bound), sleep_on_(sleep_sets) {}

void DfsStrategy::begin_execution(std::uint64_t) {
  cur_preempt_ = 0;
  pruned_ = false;
}

bool DfsStrategy::feasible(const Node& n, int cand) const {
  int cost = n.preempt_before;
  if (n.prev >= 0 && contains_tid(n.en, n.prev) && cand != n.prev) cost += 1;
  return cost <= bound_;
}

int DfsStrategy::pick_default(const Node& n, int prev) const {
  // Stay with the running thread when possible (a switch away from a
  // still-enabled thread is the preemption the bound counts).
  if (prev >= 0 && contains_tid(n.en, prev) &&
      (!sleep_on_ || !n.sleep.count(prev)))
    return prev;
  for (const auto& e : n.en)
    if (!sleep_on_ || !n.sleep.count(e.tid)) return e.tid;
  // Everyone enabled is asleep: every continuation is redundant with an
  // already-explored one.  Finish the execution (cheap) and report pruned.
  return prev >= 0 && contains_tid(n.en, prev) ? prev : n.en.front().tid;
}

int DfsStrategy::choose(std::uint64_t step, const std::vector<EnabledThread>& en,
                        int prev) {
  if (step < prefix_len_) {
    Node& n = path_[step];
    // Determinism check: the replayed prefix must see the same enabled set.
    bool same = n.en.size() == en.size();
    if (same) {
      for (std::size_t i = 0; i < en.size(); ++i)
        if (n.en[i].tid != en[i].tid) same = false;
    }
    if (!same || !contains_tid(en, n.chosen)) {
      if (Runtime* rt = Runtime::get())
        rt->fail(0,
                 "nondeterministic scenario: replayed prefix diverged at step " +
                     std::to_string(step) +
                     " (enabled set changed between executions)");
      return en.front().tid;
    }
    n.en = en;  // refresh pending-op addresses for this execution
    n.prev = prev;
    n.preempt_before = cur_preempt_;
    if (prev >= 0 && contains_tid(en, prev) && n.chosen != prev)
      ++cur_preempt_;
    return n.chosen;
  }

  Node n;
  n.en = en;
  n.prev = prev;
  n.preempt_before = cur_preempt_;
  if (sleep_on_ && step > 0 && path_.size() == step) {
    // Sleep-set inheritance: a thread stays asleep past the parent step iff
    // its (unchanged) pending op commutes with the op the parent executed.
    const Node& parent = path_[step - 1];
    const Pending* parent_op = pending_of(parent.en, parent.chosen);
    for (int u : parent.sleep) {
      const Pending* up = pending_of(en, u);
      if (!up || !parent_op) continue;  // unknown ops: conservatively wake
      if (ops_independent(*up, *parent_op)) n.sleep.insert(u);
    }
  }
  int c = pick_default(n, prev);
  if (sleep_on_ && n.sleep.count(c)) pruned_ = true;
  n.chosen = c;
  n.done.insert(c);
  if (prev >= 0 && contains_tid(en, prev) && c != prev) ++cur_preempt_;
  path_.push_back(std::move(n));
  return c;
}

void DfsStrategy::end_execution() {
  while (!path_.empty()) {
    Node& n = path_.back();
    // The subtree under the branch we just finished is fully explored:
    // its thread goes to sleep at this node.
    n.sleep.insert(n.chosen);
    int cand = -1;
    for (const auto& e : n.en) {
      if (n.done.count(e.tid)) continue;
      if (sleep_on_ && n.sleep.count(e.tid)) continue;
      if (!feasible(n, e.tid)) continue;
      cand = e.tid;
      break;
    }
    if (cand >= 0) {
      n.chosen = cand;
      n.done.insert(cand);
      prefix_len_ = path_.size();
      return;
    }
    path_.pop_back();
  }
  prefix_len_ = 0;
  done_ = true;
}

bool DfsStrategy::more() const { return !done_; }

// --- RandomStrategy ---------------------------------------------------------

RandomStrategy::RandomStrategy(std::uint64_t seed, std::uint64_t schedules)
    : seed_(seed), budget_(schedules) {}

void RandomStrategy::begin_execution(std::uint64_t exec_index) {
  state_ = mix64(seed_ ^ mix64(exec_index + 0x5DEECE66Dull));
  if (state_ == 0) state_ = 1;
  ++run_;
}

int RandomStrategy::choose(std::uint64_t, const std::vector<EnabledThread>& en,
                           int) {
  // xorshift64*
  state_ ^= state_ >> 12;
  state_ ^= state_ << 25;
  state_ ^= state_ >> 27;
  std::uint64_t r = state_ * 0x2545F4914F6CDD1Dull;
  return en[static_cast<std::size_t>(r % en.size())].tid;
}

bool RandomStrategy::more() const { return run_ < budget_; }

// --- ReplayStrategy ---------------------------------------------------------

ReplayStrategy::ReplayStrategy(std::vector<int> choices)
    : choices_(std::move(choices)) {}

int ReplayStrategy::choose(std::uint64_t step,
                           const std::vector<EnabledThread>& en, int prev) {
  if (step < choices_.size()) {
    int c = choices_[static_cast<std::size_t>(step)];
    if (contains_tid(en, c)) return c;
    if (Runtime* rt = Runtime::get())
      rt->fail(0, "replay divergence at step " + std::to_string(step) +
                      ": thread " + std::to_string(c) + " not enabled");
    return en.front().tid;
  }
  // Past the recorded schedule: default continuation.
  if (prev >= 0 && contains_tid(en, prev)) return prev;
  return en.front().tid;
}

// --- explore ----------------------------------------------------------------

Result explore(const Options& opts, const std::function<void()>& scenario) {
  Result res;
  Runtime rt(opts);
  std::uint64_t exec = 0;
  std::uint64_t digest = 1469598103934665603ull;

  // Runs executions under `strat` until it is exhausted.  Returns true when
  // exploration should stop entirely (failure or cap).
  auto run_with = [&](Strategy& strat) -> bool {
    for (;;) {
      if (res.schedules_explored >= opts.max_schedules) {
        res.hit_schedule_cap = true;
        return true;
      }
      rt.begin_execution(&strat, exec);
      try {
        scenario();
      } catch (const Abort&) {
        // Step-budget abort already recorded by the runtime.
      }
      rt.finish_execution();
      digest = fnv_step(digest, exec);
      for (int c : rt.choices())
        digest = fnv_step(digest, static_cast<std::uint64_t>(c) + 1);
      ++res.schedules_explored;
      ++exec;
      if (strat.last_execution_pruned()) ++res.schedules_pruned;
      res.max_steps_seen = std::max(res.max_steps_seen, rt.steps());
      strat.end_execution();
      if (rt.failed()) {
        if (!res.failed) {
          res.failed = true;
          res.failing_bound = res.bound_used;
          res.failure_message = rt.failure_message();
          res.failure_schedule = rt.choices();
          res.failure_trace = rt.format_trace();
        }
        if (opts.stop_on_failure) return true;
        rt.clear_failure();
      }
      if (!strat.more()) return false;
    }
  };

  switch (opts.mode) {
    case Mode::kDfs: {
      // CHESS-style iterative bounding: all schedules with 0 preemptions,
      // then 1, ... so a failure is found at its minimal preemption count.
      for (int b = 0; b <= opts.preemption_bound; ++b) {
        res.bound_used = b;
        DfsStrategy strat(b, opts.sleep_sets);
        if (run_with(strat)) break;
      }
      break;
    }
    case Mode::kRandom: {
      res.bound_used = -1;
      RandomStrategy strat(opts.seed, opts.random_schedules);
      run_with(strat);
      break;
    }
    case Mode::kReplay: {
      res.bound_used = -1;
      ReplayStrategy strat(opts.replay);
      run_with(strat);
      break;
    }
  }

  res.schedule_digest = digest;
  for (const auto& [k, count] : rt.pairs()) {
    ObservedPair p;
    p.store_file = k.sf ? k.sf : "";
    p.store_line = k.sl;
    p.load_file = k.lf ? k.lf : "";
    p.load_line = k.ll;
    p.count = count;
    res.observed_pairs.push_back(std::move(p));
  }
  return res;
}

// --- trace files ------------------------------------------------------------

std::string Result::summary() const {
  std::ostringstream os;
  os << "explored " << schedules_explored << " schedules ("
     << schedules_pruned << " sleep-pruned, max " << max_steps_seen
     << " steps";
  if (bound_used >= 0) os << ", preemption bound " << bound_used;
  if (hit_schedule_cap) os << ", schedule cap hit";
  os << ")";
  if (failed) {
    os << " FAILED";
    if (failing_bound >= 0) os << " at bound " << failing_bound;
    os << ": " << failure_message;
  }
  return os.str();
}

bool write_trace_file(const std::string& path, const Result& r) {
  std::ofstream out(path);
  if (!out) return false;
  out << r.failure_trace;
  if (r.failure_trace.find("schedule:") == std::string::npos) {
    out << "schedule:";
    for (int c : r.failure_schedule) out << ' ' << c;
    out << '\n';
  }
  return static_cast<bool>(out);
}

std::vector<int> parse_schedule_line(const std::string& text) {
  std::vector<int> out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    // Accept a "schedule: 0 1 ..." line from a trace dump, or — for
    // hand-authored input — a bare line that is nothing but integers.
    std::string body;
    if (line.rfind("schedule:", 0) == 0) {
      body = line.substr(9);
    } else {
      if (line.find_first_not_of("0123456789 \t-") != std::string::npos)
        continue;
      body = line;
    }
    std::istringstream ls(body);
    int v;
    while (ls >> v) out.push_back(v);
    if (!out.empty()) break;
  }
  return out;
}

bool load_schedule_file(const std::string& path, std::vector<int>& out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  out = parse_schedule_line(buf.str());
  return !out.empty();
}

}  // namespace cats::sim
