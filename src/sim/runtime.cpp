// runtime.cpp -- cooperative scheduler, vector-clock race detector and
// reclamation quarantine for the cats simulator.
//
// Invariants the code below leans on:
//   * Exactly one managed thread runs between two scheduling points (the
//     "token holder").  All vector-clock / race / trace state is therefore
//     only ever touched by the token holder and needs no locking; mu_ only
//     protects the scheduling state (thread table, current_, choices_).
//   * Every visible operation announces itself *before* executing, so at
//     every decision point the scheduler knows each enabled thread's next
//     operation (location + read/write) -- that is what sleep sets need.
//   * On a blown step budget the runtime flips `aborting_`: parked threads
//     wake and unwind via sim::Abort, hooks degrade to passthrough, and the
//     execution is reported as failed.  (During unwinding destructors we
//     never throw; threads then free-run, which is safe because the real
//     code is a correct concurrent algorithm being torn down.)

#include "sim/sim_internal.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <sstream>

namespace cats::sim {

namespace {

std::atomic<Runtime*> g_rt{nullptr};
thread_local int tl_tid = -1;

bool is_acquire(std::memory_order mo) {
  return mo == std::memory_order_acquire || mo == std::memory_order_consume ||
         mo == std::memory_order_acq_rel || mo == std::memory_order_seq_cst;
}

bool is_release(std::memory_order mo) {
  return mo == std::memory_order_release || mo == std::memory_order_acq_rel ||
         mo == std::memory_order_seq_cst;
}

const char* mo_name(std::memory_order mo) {
  switch (mo) {
    case std::memory_order_relaxed: return "relaxed";
    case std::memory_order_consume: return "consume";
    case std::memory_order_acquire: return "acquire";
    case std::memory_order_release: return "release";
    case std::memory_order_acq_rel: return "acq_rel";
    default: return "seq_cst";
  }
}

const char* kind_name(OpKind k) {
  switch (k) {
    case OpKind::kLoad: return "load";
    case OpKind::kStore: return "store";
    case OpKind::kRmw: return "rmw";
    case OpKind::kRmwFail: return "rmw-fail";
    case OpKind::kSpawn: return "spawn";
    case OpKind::kJoinWait: return "join-wait";
    case OpKind::kThreadExit: return "exit";
    case OpKind::kEvent: return "event";
  }
  return "?";
}

Site make_site(const std::source_location& loc) {
  return Site{loc.file_name(), loc.line(), loc.function_name()};
}

}  // namespace

std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

std::string short_site(const Site& s) {
  if (!s.file) return "<unknown>";
  const char* base = s.file;
  for (const char* p = s.file; *p; ++p)
    if (*p == '/' || *p == '\\') base = p + 1;
  return std::string(base) + ":" + std::to_string(s.line);
}

bool ops_independent(const Pending& a, const Pending& b) {
  // Unknown ops (never-announced fresh threads) are dependent on everything.
  if (a.addr == nullptr || b.addr == nullptr) return false;
  if (a.addr != b.addr) return true;
  return !a.is_write && !b.is_write;
}

// --- Runtime ---------------------------------------------------------------

Runtime::Runtime(const Options& opts) : opts_(opts) {
  Runtime* expected = nullptr;
  Runtime* self = this;
  if (!g_rt.compare_exchange_strong(expected, self,
                                    std::memory_order_acq_rel)) {
    std::fprintf(stderr, "cats-sim: nested explore() is not supported\n");
    std::abort();
  }
}

Runtime::~Runtime() {
  g_rt.store(nullptr, std::memory_order_release);
  tl_tid = -1;
}

Runtime* Runtime::get() noexcept { return g_rt.load(std::memory_order_acquire); }

void Runtime::begin_execution(Strategy* strat, std::uint64_t exec_index) {
  std::lock_guard<std::mutex> lk(mu_);
  strat_ = strat;
  exec_index_ = exec_index;
  step_ = 0;
  current_ = 0;
  last_run_ = -1;
  nthreads_ = 1;
  for (auto& t : th_) t = ThreadRec{};
  th_[0].st = ThreadRec::St::kReady;
  aborting_.store(false, std::memory_order_relaxed);
  abort_hit_ = false;
  choices_.clear();
  trace_.clear();
  atomics_.clear();
  plain_.clear();
  freed_.clear();
  strat->begin_execution(exec_index);
  tl_tid = 0;  // the driver is simulated thread 0
}

bool Runtime::finish_execution() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (int i = 1; i < nthreads_; ++i) {
      if (th_[i].st != ThreadRec::St::kFinished && !abort_hit_ && !failed_) {
        failed_ = true;
        fail_msg_ = "scenario returned with unjoined sim threads";
        fail_step_ = step_;
      }
    }
  }
  // Release everything the execution reclaimed.  Deferred until here so no
  // address is recycled while vector-clock state still refers to it.
  for (auto& q : quarantine_) q.fr(q.p, q.size);
  quarantine_.clear();
  tl_tid = -1;
  return abort_hit_;
}

void Runtime::trigger_abort() {
  abort_hit_ = true;
  aborting_.store(true, std::memory_order_relaxed);
  cv_.notify_all();
}

void Runtime::fail(int tid, const std::string& msg) {
  // First failure wins; the CAS also makes this safe from free-running
  // threads during an abort.
  bool expected = false;
  if (!failed_.compare_exchange_strong(expected, true,
                                       std::memory_order_acq_rel))
    return;
  fail_msg_ = msg;
  fail_step_ = step_;
  (void)tid;
}

void Runtime::clear_failure() {
  failed_.store(false, std::memory_order_relaxed);
  fail_msg_.clear();
  fail_step_ = 0;
}

void Runtime::pick_next(std::unique_lock<std::mutex>& lk, int from,
                        bool from_enabled) {
  (void)lk;
  (void)from_enabled;
  if (step_ >= opts_.max_steps) {
    fail(from, "step budget exceeded (" + std::to_string(opts_.max_steps) +
                   " scheduling points) -- possible livelock");
    trigger_abort();
    return;
  }
  std::vector<EnabledThread> en;
  en.reserve(static_cast<std::size_t>(nthreads_));
  for (int i = 0; i < nthreads_; ++i)
    if (th_[i].st == ThreadRec::St::kReady)
      en.push_back(EnabledThread{i, th_[i].announced, th_[i].pending});
  if (en.empty()) {
    fail(from, "deadlock: every live thread is blocked in join");
    trigger_abort();
    return;
  }
  int c = strat_->choose(static_cast<std::uint64_t>(choices_.size()), en,
                         last_run_);
  bool valid = c >= 0 && c < nthreads_ && th_[c].st == ThreadRec::St::kReady;
  if (!valid) {
    fail(from, "internal: strategy chose a non-enabled thread");
    c = en.front().tid;
  }
  choices_.push_back(c);
  trace_.push_back(TraceStep{c, th_[c].announced ? th_[c].pending : Pending{}});
  ++step_;
  last_run_ = c;
  current_ = c;
  cv_.notify_all();
}

void Runtime::wait_for_token(std::unique_lock<std::mutex>& lk, int self) {
  cv_.wait(lk, [&] {
    return current_ == self || aborting_.load(std::memory_order_relaxed);
  });
}

void Runtime::announce_and_schedule(int tid, const Pending& p) {
  // Once aborting, scheduling points become passthroughs and every thread
  // free-runs to completion.  No exceptions: atomic ops sit inside noexcept
  // functions (e.g. refcount decrefs), where an unwind would terminate.
  // Free-running is safe -- the code under test is real concurrent code --
  // and the execution is already recorded as failed.
  if (aborting_.load(std::memory_order_relaxed)) return;
  std::unique_lock<std::mutex> lk(mu_);
  th_[tid].pending = p;
  th_[tid].announced = true;
  pick_next(lk, tid, /*from_enabled=*/true);
  wait_for_token(lk, tid);
}

// --- happens-before machinery (token holder only, no lock) -----------------

void Runtime::sync_acquire(int tid, const void* addr, const Site& site) {
  auto it = atomics_.find(addr);
  if (it == atomics_.end() || !it->second.has_release) return;
  th_[tid].vc.join(it->second.release_vc);
  if (opts_.collect_pairs) {
    pairs_[PairKey{it->second.release_site.file, it->second.release_site.line,
                   site.file, site.line}]++;
  }
}

void Runtime::check_freed(int tid, std::uintptr_t lo, std::uintptr_t hi,
                          const Site& site, const char* what) {
  if (freed_.empty()) return;
  auto it = freed_.upper_bound(lo);
  if (it != freed_.begin()) --it;
  for (; it != freed_.end() && it->second.lo < hi; ++it) {
    if (it->second.hi <= lo) continue;
    std::ostringstream os;
    if (it->second.vc.leq(th_[tid].vc)) {
      os << "use-after-reclaim: " << what << " at " << short_site(site)
         << " touches memory already freed by T" << it->second.tid
         << " (ordered, protocol bug)";
    } else {
      os << "data race with free: " << what << " at " << short_site(site)
         << " by T" << tid << " races with concurrent free by T"
         << it->second.tid;
    }
    fail(tid, os.str());
    return;
  }
}

void Runtime::commit(int tid, const void* addr, OpKind kind,
                     std::memory_order mo, const Site& site) {
  if (aborting_.load(std::memory_order_relaxed)) return;
  ThreadRec& t = th_[tid];
  t.vc.c[tid]++;
  if (!trace_.empty() && trace_.back().tid == tid) {
    trace_.back().op.kind = kind;
    trace_.back().op.mo = mo;
    trace_.back().op.addr = addr;
    trace_.back().op.site = site;
  }
  switch (kind) {
    case OpKind::kLoad:
    case OpKind::kRmwFail:
      check_freed(tid, reinterpret_cast<std::uintptr_t>(addr),
                  reinterpret_cast<std::uintptr_t>(addr) + 1, site,
                  "atomic load");
      if (is_acquire(mo)) sync_acquire(tid, addr, site);
      break;
    case OpKind::kStore: {
      check_freed(tid, reinterpret_cast<std::uintptr_t>(addr),
                  reinterpret_cast<std::uintptr_t>(addr) + 1, site,
                  "atomic store");
      AtomicLoc& loc = atomics_[addr];
      if (is_release(mo)) {
        loc.has_release = true;
        loc.release_vc = t.vc;
        loc.release_site = site;
      } else {
        // A relaxed store is not a release and breaks any release sequence
        // headed by an earlier store to this location.
        loc.has_release = false;
      }
      break;
    }
    case OpKind::kRmw: {
      check_freed(tid, reinterpret_cast<std::uintptr_t>(addr),
                  reinterpret_cast<std::uintptr_t>(addr) + 1, site,
                  "atomic rmw");
      if (is_acquire(mo)) sync_acquire(tid, addr, site);
      AtomicLoc& loc = atomics_[addr];
      if (is_release(mo)) {
        // The RMW heads a new release sequence AND continues the existing
        // one (an acquire of its value synchronises with both writers).
        loc.release_vc.join(t.vc);
        loc.has_release = true;
        loc.release_site = site;
      }
      // Relaxed RMW: the existing release sequence continues unchanged.
      break;
    }
    case OpKind::kSpawn:
    case OpKind::kJoinWait:
    case OpKind::kThreadExit:
    case OpKind::kEvent:
      break;
  }
}

void Runtime::plain(int tid, const void* addr, std::size_t size, bool is_write,
                    const Site& site) {
  if (aborting_.load(std::memory_order_relaxed)) return;
  ThreadRec& t = th_[tid];
  t.vc.c[tid]++;
  std::uintptr_t a = reinterpret_cast<std::uintptr_t>(addr);
  check_freed(tid, a, a + size, site,
              is_write ? "plain write" : "plain read");
  auto& entry = plain_[a];
  entry.first = size;
  PlainLoc& p = entry.second;
  if (is_write) {
    if (p.w_tid >= 0 && p.w_clk > t.vc.c[p.w_tid] && p.w_tid != tid) {
      fail(tid, "data race: plain write at " + short_site(site) + " by T" +
                    std::to_string(tid) + " races with plain write at " +
                    short_site(p.w_site) + " by T" + std::to_string(p.w_tid));
      return;
    }
    for (int u = 0; u < kMaxSimThreads; ++u) {
      if (u != tid && p.r_clk[u] > t.vc.c[u]) {
        fail(tid, "data race: plain write at " + short_site(site) + " by T" +
                      std::to_string(tid) + " races with plain read at " +
                      short_site(p.r_site[u]) + " by T" + std::to_string(u));
        return;
      }
    }
    p.w_tid = tid;
    p.w_clk = t.vc.c[tid];
    p.w_site = site;
    p.r_clk.fill(0);
  } else {
    if (p.w_tid >= 0 && p.w_tid != tid && p.w_clk > t.vc.c[p.w_tid]) {
      fail(tid, "data race: plain read at " + short_site(site) + " by T" +
                    std::to_string(tid) + " races with plain write at " +
                    short_site(p.w_site) + " by T" + std::to_string(p.w_tid));
      return;
    }
    p.r_clk[tid] = t.vc.c[tid];
    p.r_site[tid] = site;
  }
}

void Runtime::on_note_alloc(void* ptr, std::size_t size) {
  if (aborting_.load(std::memory_order_relaxed)) return;
  // Fresh storage: drop any state a previous (untracked) occupant of this
  // address range left behind.  Tracked node frees are quarantined until the
  // end of the execution, so tracked atomic state is never recycled and
  // atomics_ needs no range sweep here.
  std::uintptr_t lo = reinterpret_cast<std::uintptr_t>(ptr);
  std::uintptr_t hi = lo + size;
  if (!freed_.empty()) {
    auto it = freed_.lower_bound(lo);
    if (it != freed_.begin()) {
      auto prev = std::prev(it);
      if (prev->second.hi > lo) it = prev;
    }
    while (it != freed_.end() && it->second.lo < hi) it = freed_.erase(it);
  }
  if (!plain_.empty()) {
    auto it = plain_.lower_bound(lo);
    while (it != plain_.end() && it->first < hi) it = plain_.erase(it);
  }
}

bool Runtime::on_quarantine_free(int tid, void* ptr, std::size_t size,
                                 void (*fr)(void*, std::size_t)) {
  if (aborting_.load(std::memory_order_relaxed)) {
    // Threads free-run during an abort; keep memory alive anyway so the
    // teardown cannot turn into a real use-after-free.
    std::lock_guard<std::mutex> lk(mu_);
    quarantine_.push_back(QuarantinedBlock{ptr, size, fr});
    return true;
  }
  ThreadRec& t = th_[tid];
  t.vc.c[tid]++;
  std::uintptr_t lo = reinterpret_cast<std::uintptr_t>(ptr);
  std::uintptr_t hi = lo + size;
  Site fsite{"<free>", 0, nullptr};
  check_freed(tid, lo, hi, fsite, "free");
  // A free behaves like a write to the whole block: it must be ordered after
  // every instrumented access.
  auto it = plain_.lower_bound(lo);
  while (it != plain_.end() && it->first < hi) {
    PlainLoc& p = it->second.second;
    if (p.w_tid >= 0 && p.w_tid != tid && p.w_clk > t.vc.c[p.w_tid]) {
      fail(tid, "data race: free by T" + std::to_string(tid) +
                    " races with plain write at " + short_site(p.w_site) +
                    " by T" + std::to_string(p.w_tid));
    }
    for (int u = 0; u < kMaxSimThreads; ++u) {
      if (u != tid && p.r_clk[u] > t.vc.c[u]) {
        fail(tid, "data race: free by T" + std::to_string(tid) +
                      " races with plain read at " + short_site(p.r_site[u]) +
                      " by T" + std::to_string(u));
      }
    }
    it = plain_.erase(it);
  }
  freed_[lo] = FreedRange{lo, hi, tid, t.vc};
  quarantine_.push_back(QuarantinedBlock{ptr, size, fr});
  return true;
}

// --- thread management ------------------------------------------------------

int Runtime::register_child(int parent) {
  std::unique_lock<std::mutex> lk(mu_);
  if (nthreads_ >= kMaxSimThreads) {
    fail(parent, "too many sim threads (max " +
                     std::to_string(kMaxSimThreads) + ")");
    trigger_abort();
    // Overflow threads free-run in the dump slot; it is never scheduled
    // (nthreads_ stays within bounds) and commits are skipped while
    // aborting.
    return kMaxSimThreads;
  }
  int id = nthreads_++;
  th_[id].st = ThreadRec::St::kReady;
  th_[id].announced = false;
  th_[id].vc = th_[parent].vc;  // fork edge: child starts after the parent
  return id;
}

void Runtime::enter_thread(int self) {
  tl_tid = self;
  if (aborting_.load(std::memory_order_relaxed)) return;  // free-run teardown
  std::unique_lock<std::mutex> lk(mu_);
  wait_for_token(lk, self);
}

void Runtime::exit_thread(int self) {
  std::unique_lock<std::mutex> lk(mu_);
  th_[self].st = ThreadRec::St::kFinished;
  for (int i = 0; i < nthreads_; ++i) {
    if (th_[i].st == ThreadRec::St::kBlockedJoin && th_[i].wait_child == self)
      th_[i].st = ThreadRec::St::kReady;
  }
  tl_tid = -1;
  if (aborting_.load(std::memory_order_relaxed)) {
    cv_.notify_all();
    return;
  }
  pick_next(lk, self, /*from_enabled=*/false);
}

void Runtime::join_wait(int self, int child) {
  if (aborting_.load(std::memory_order_relaxed)) return;  // caller real-joins
  std::unique_lock<std::mutex> lk(mu_);
  while (th_[child].st != ThreadRec::St::kFinished) {
    th_[self].st = ThreadRec::St::kBlockedJoin;
    th_[self].wait_child = child;
    th_[self].pending =
        Pending{&th_[child], OpKind::kJoinWait, /*is_write=*/true,
                std::memory_order_seq_cst, Site{}, nullptr};
    th_[self].announced = true;
    pick_next(lk, self, /*from_enabled=*/false);
    if (aborting_.load(std::memory_order_relaxed)) {
      th_[self].st = ThreadRec::St::kReady;
      th_[self].wait_child = -1;
      return;  // caller falls through to the real join; children free-run
    }
    wait_for_token(lk, self);
  }
  th_[self].wait_child = -1;
  th_[self].vc.join(th_[child].vc);  // join edge
}

// --- trace formatting -------------------------------------------------------

std::string Runtime::format_trace() const {
  std::ostringstream os;
  os << "# cats-sim failure trace\n";
  os << "# execution " << exec_index_ << ", " << trace_.size() << " steps\n";
  os << "schedule:";
  for (int c : choices_) os << ' ' << c;
  os << '\n';
  std::map<const void*, int> loc_ids;
  for (std::size_t i = 0; i < trace_.size(); ++i) {
    const TraceStep& s = trace_[i];
    os << "step " << i << "  T" << s.tid << "  ";
    if (s.op.addr == nullptr && s.op.kind == OpKind::kEvent && !s.op.tag) {
      os << "(start)\n";
      continue;
    }
    os << kind_name(s.op.kind);
    if (s.op.kind == OpKind::kEvent && s.op.tag) os << '[' << s.op.tag << ']';
    if (s.op.kind == OpKind::kLoad || s.op.kind == OpKind::kStore ||
        s.op.kind == OpKind::kRmw || s.op.kind == OpKind::kRmwFail)
      os << ' ' << mo_name(s.op.mo);
    if (s.op.addr) {
      auto [it, fresh] =
          loc_ids.emplace(s.op.addr, static_cast<int>(loc_ids.size()));
      os << "  obj#" << it->second;
      (void)fresh;
    }
    if (s.op.site.file) os << "  " << short_site(s.op.site);
    os << '\n';
  }
  if (failed_)
    os << "failure (step " << fail_step_ << "): " << fail_msg_ << '\n';
  return os.str();
}

// --- free-function hooks (declared in common/catomic.hpp & sim.hpp) --------

bool thread_active() noexcept {
  return tl_tid >= 0 && g_rt.load(std::memory_order_acquire) != nullptr;
}

bool active() noexcept { return thread_active(); }

std::uint64_t logical_time() noexcept {
  Runtime* rt = Runtime::get();
  return rt ? rt->steps() : 0;
}

void atomic_pre(const void* addr, bool is_write, std::memory_order order,
                const std::source_location& loc) {
  Runtime::get()->announce_and_schedule(
      tl_tid, Pending{addr, is_write ? OpKind::kStore : OpKind::kLoad,
                      is_write, order, make_site(loc), nullptr});
}

void atomic_commit(const void* addr, OpKind kind, std::memory_order order,
                   const std::source_location& loc) {
  Runtime::get()->commit(tl_tid, addr, kind, order, make_site(loc));
}

void plain_access(const void* addr, std::size_t size, bool is_write,
                  const std::source_location& loc) {
  Runtime::get()->plain(tl_tid, addr, size, is_write, make_site(loc));
}

void event_point(const char* tag, const void* addr,
                 const std::source_location& loc) {
  Runtime* rt = Runtime::get();
  Site site = make_site(loc);
  rt->announce_and_schedule(tl_tid, Pending{addr, OpKind::kEvent,
                                            /*is_write=*/true,
                                            std::memory_order_seq_cst, site,
                                            tag});
  rt->commit(tl_tid, addr, OpKind::kEvent, std::memory_order_seq_cst, site);
}

void note_alloc(void* p, std::size_t size) noexcept {
  Runtime* rt = Runtime::get();
  if (rt) rt->on_note_alloc(p, size);
}

bool quarantine_free(void* p, std::size_t size, void (*fr)(void*, std::size_t)) {
  Runtime* rt = Runtime::get();
  if (!rt) return false;
  return rt->on_quarantine_free(tl_tid, p, size, fr);
}

std::uint64_t deterministic_seed() noexcept {
  return mix64(0x9E3779B97F4A7C15ull * static_cast<std::uint64_t>(tl_tid + 2));
}

std::uint64_t execution_generation() noexcept {
  Runtime* rt = Runtime::get();
  return rt ? rt->exec_index() + 1 : 0;
}

int thread_register_child() {
  return Runtime::get()->register_child(tl_tid);
}

void thread_spawn_point(int child, const std::source_location& loc) {
  Runtime* rt = Runtime::get();
  Site site = make_site(loc);
  // addr == nullptr makes the spawn conservatively dependent on everything.
  rt->announce_and_schedule(tl_tid, Pending{nullptr, OpKind::kSpawn,
                                            /*is_write=*/true,
                                            std::memory_order_seq_cst, site,
                                            "spawn"});
  rt->commit(tl_tid, nullptr, OpKind::kSpawn, std::memory_order_seq_cst, site);
  (void)child;
}

void thread_enter(int self) { Runtime::get()->enter_thread(self); }

void thread_exit(int self) { Runtime::get()->exit_thread(self); }

void thread_join_wait(int child) {
  Runtime::get()->join_wait(tl_tid, child);
}

void check(bool ok, const char* msg) {
  if (ok) return;
  Runtime* rt = Runtime::get();
  if (rt && tl_tid >= 0) rt->fail(tl_tid, msg ? msg : "sim::check failed");
}

void fail(const std::string& msg) {
  Runtime* rt = Runtime::get();
  if (rt && tl_tid >= 0) rt->fail(tl_tid, msg);
}

}  // namespace cats::sim
