// sim_internal.hpp -- shared internals of the cats simulator (not installed;
// include only from src/sim/*.cpp and the simulator's own tests).

#pragma once

#include <array>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "sim/sim.hpp"

namespace cats::sim {

// --- vector clocks ---------------------------------------------------------

struct VClock {
  std::array<std::uint32_t, kMaxSimThreads> c{};

  void join(const VClock& o) {
    for (int i = 0; i < kMaxSimThreads; ++i)
      if (o.c[i] > c[i]) c[i] = o.c[i];
  }
  // this <= o componentwise (i.e. "this happened before or at o").
  bool leq(const VClock& o) const {
    for (int i = 0; i < kMaxSimThreads; ++i)
      if (c[i] > o.c[i]) return false;
    return true;
  }
};

struct Site {
  const char* file = nullptr;
  unsigned line = 0;
  const char* func = nullptr;
};

std::string short_site(const Site& s);

// --- pending operations / trace --------------------------------------------

struct Pending {
  const void* addr = nullptr;
  OpKind kind = OpKind::kEvent;
  bool is_write = false;
  std::memory_order mo = std::memory_order_seq_cst;
  Site site;
  const char* tag = nullptr;  // kEvent only
};

struct TraceStep {
  int tid = -1;
  Pending op;
};

// Two pending ops commute iff they touch different locations or are both
// reads.  Unannounced threads (addr == nullptr, e.g. freshly spawned) are
// conservatively dependent on everything.
bool ops_independent(const Pending& a, const Pending& b);

// --- scheduling strategy ----------------------------------------------------

struct EnabledThread {
  int tid = -1;
  bool announced = false;  // pending valid (false for never-scheduled spawns)
  Pending pending;
};

class Strategy {
 public:
  virtual ~Strategy() = default;
  virtual void begin_execution(std::uint64_t exec_index) = 0;
  // Pick the thread to run next.  `prev` is the thread that executed the
  // previous step (-1 at step 0).  `en` is non-empty and sorted by tid.
  virtual int choose(std::uint64_t step, const std::vector<EnabledThread>& en,
                     int prev) = 0;
  virtual void end_execution() = 0;
  // Another execution to run?
  virtual bool more() const = 0;
  virtual bool last_execution_pruned() const { return false; }
};

// --- race / sync state ------------------------------------------------------

struct AtomicLoc {
  bool has_release = false;
  VClock release_vc;    // accumulated over the active release sequence
  Site release_site;    // head of the release sequence (for pair reporting)
};

struct PlainLoc {
  int w_tid = -1;
  std::uint32_t w_clk = 0;
  Site w_site;
  std::array<std::uint32_t, kMaxSimThreads> r_clk{};
  std::array<Site, kMaxSimThreads> r_site{};
};

struct FreedRange {
  std::uintptr_t lo = 0, hi = 0;
  int tid = -1;
  VClock vc;
};

struct QuarantinedBlock {
  void* p = nullptr;
  std::size_t size = 0;
  void (*fr)(void*, std::size_t) = nullptr;
};

struct PairKey {
  const char* sf;
  unsigned sl;
  const char* lf;
  unsigned ll;
  bool operator<(const PairKey& o) const {
    if (sf != o.sf) return std::string_view(sf) < std::string_view(o.sf);
    if (sl != o.sl) return sl < o.sl;
    if (lf != o.lf) return std::string_view(lf) < std::string_view(o.lf);
    return ll < o.ll;
  }
};

// --- per-thread records -----------------------------------------------------

struct ThreadRec {
  enum class St : std::uint8_t { kUnborn, kReady, kBlockedJoin, kFinished };
  St st = St::kUnborn;
  bool announced = false;
  int wait_child = -1;
  Pending pending;
  VClock vc;
};

// --- the runtime ------------------------------------------------------------

class Runtime {
 public:
  explicit Runtime(const Options& opts);
  ~Runtime();

  static Runtime* get() noexcept;

  // Execution lifecycle (driver thread only).
  void begin_execution(Strategy* strat, std::uint64_t exec_index);
  // Returns true if the execution aborted on the step budget.
  bool finish_execution();

  // Hook entry points (called via cats::sim:: free functions).
  void announce_and_schedule(int tid, const Pending& p);
  void commit(int tid, const void* addr, OpKind kind, std::memory_order mo,
              const Site& site);
  void plain(int tid, const void* addr, std::size_t size, bool is_write,
             const Site& site);
  void on_note_alloc(void* p, std::size_t size);
  bool on_quarantine_free(int tid, void* p, std::size_t size,
                          void (*fr)(void*, std::size_t));

  int register_child(int parent);
  void enter_thread(int self);
  void exit_thread(int self);
  void join_wait(int self, int child);

  void fail(int tid, const std::string& msg);
  void clear_failure();
  bool failed() const { return failed_.load(std::memory_order_relaxed); }
  const std::string& failure_message() const { return fail_msg_; }

  std::uint64_t steps() const { return step_; }
  std::uint64_t exec_index() const { return exec_index_; }
  const std::vector<int>& choices() const { return choices_; }
  const std::vector<TraceStep>& trace() const { return trace_; }
  std::string format_trace() const;
  bool aborting() const {
    return aborting_.load(std::memory_order_relaxed);
  }

  const std::map<PairKey, std::uint64_t>& pairs() const { return pairs_; }
  const Options& options() const { return opts_; }

 private:
  // Scheduling core; requires mu_ held.  Picks the next runner, records the
  // choice, bumps the step counter, wakes the chosen thread.
  void pick_next(std::unique_lock<std::mutex>& lk, int from,
                 bool from_enabled);
  void wait_for_token(std::unique_lock<std::mutex>& lk, int self);
  void trigger_abort();

  // Happens-before machinery; token-holder only, no lock needed.
  void sync_acquire(int tid, const void* addr, const Site& site);
  void check_freed(int tid, std::uintptr_t lo, std::uintptr_t hi,
                   const Site& site, const char* what);

  Options opts_;

  std::mutex mu_;
  std::condition_variable cv_;
  int current_ = 0;
  int last_run_ = -1;
  int nthreads_ = 1;
  // +1: dump slot for thread-limit overflow (free-runs, never scheduled).
  std::array<ThreadRec, kMaxSimThreads + 1> th_;
  Strategy* strat_ = nullptr;
  std::uint64_t exec_index_ = 0;
  std::uint64_t step_ = 0;
  std::atomic<bool> aborting_{false};
  bool abort_hit_ = false;

  std::atomic<bool> failed_{false};
  std::string fail_msg_;
  std::uint64_t fail_step_ = 0;

  std::vector<int> choices_;
  std::vector<TraceStep> trace_;

  std::unordered_map<const void*, AtomicLoc> atomics_;
  std::map<std::uintptr_t, std::pair<std::size_t, PlainLoc>> plain_;
  std::map<std::uintptr_t, FreedRange> freed_;
  std::vector<QuarantinedBlock> quarantine_;
  std::map<PairKey, std::uint64_t> pairs_;
};

// --- strategies (explore.cpp) ----------------------------------------------

class DfsStrategy final : public Strategy {
 public:
  DfsStrategy(int preemption_bound, bool sleep_sets);
  void begin_execution(std::uint64_t exec_index) override;
  int choose(std::uint64_t step, const std::vector<EnabledThread>& en,
             int prev) override;
  void end_execution() override;
  bool more() const override;
  bool last_execution_pruned() const override { return pruned_; }

 private:
  struct Node {
    std::vector<EnabledThread> en;
    int prev = -1;
    int chosen = -1;
    int preempt_before = 0;
    std::set<int> sleep;
    std::set<int> done;
  };

  int pick_default(const Node& n, int prev) const;
  bool feasible(const Node& n, int cand) const;

  int bound_;
  bool sleep_on_;
  std::vector<Node> path_;
  std::size_t prefix_len_ = 0;
  int cur_preempt_ = 0;
  bool pruned_ = false;
  bool done_ = false;
};

class RandomStrategy final : public Strategy {
 public:
  RandomStrategy(std::uint64_t seed, std::uint64_t schedules);
  void begin_execution(std::uint64_t exec_index) override;
  int choose(std::uint64_t step, const std::vector<EnabledThread>& en,
             int prev) override;
  void end_execution() override {}
  bool more() const override;

 private:
  std::uint64_t seed_;
  std::uint64_t budget_;
  std::uint64_t run_ = 0;
  std::uint64_t state_ = 0;
};

class ReplayStrategy final : public Strategy {
 public:
  explicit ReplayStrategy(std::vector<int> choices);
  void begin_execution(std::uint64_t /*exec_index*/) override {}
  int choose(std::uint64_t step, const std::vector<EnabledThread>& en,
             int prev) override;
  void end_execution() override { spent_ = true; }
  bool more() const override { return !spent_; }

 private:
  std::vector<int> choices_;
  bool spent_ = false;
};

std::uint64_t mix64(std::uint64_t x) noexcept;

}  // namespace cats::sim
