// Immutable (persistent) ordered leaf container with fat leaves.
//
// This is the "leaf container" of the paper (§2, §7): an immutable balanced
// search tree storing the actual items of each base node.  The paper's
// implementation uses a randomized treap whose fat leaf nodes hold arrays of
// up to 64 items; it also notes (§2) that any persistent balanced tree with
// O(log n) updates and O(log n) split/join works (red-black trees, treaps,
// ...).  We keep the fat-leaf layout — that is what gives range queries their
// cache behaviour — but balance with deterministic AVL-style heights instead
// of random priorities: identical asymptotics, reproducible shapes for
// testing.  The module keeps the paper's `treap` name since it fills exactly
// the `treap_*` role of the pseudo-code.
//
// All nodes are immutable after construction and intrusively reference
// counted.  Persistent versions share subtrees; sharing forms a DAG of
// immutable nodes, so plain reference counting is sound (no cycles).  Every
// operation is a pure function: inputs are never consumed, outputs carry
// fresh references owned by the caller (wrapped in `Ref`).
//
// The implementation is the BasicTreap<K, V, Compare> template
// (treap_impl.hpp); this header keeps the historical free-function API as
// inline wrappers over the default <int64_t, uint64_t, std::less>
// instantiation, which is explicitly instantiated in treap.cpp (the extern
// template below) — the int fast path compiles in the same translation unit
// it always did.
//
// Complexity (n items, fat leaves of up to kLeafCapacity items):
//   lookup                O(log n)
//   insert / remove       O(log n)        (path copying)
//   join / split          O(log n)
//   split_evenly          O(log n)
//   for_range             O(log n + k)    (k items reported)
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>

#include "check/check.hpp"
#include "common/function_ref.hpp"
#include "common/types.hpp"
#include "treap/treap_impl.hpp"

namespace cats::treap {

/// The default (integer-key) instantiation; codegen lives in treap.cpp.
using Impl = BasicTreap<Key, Value, std::less<Key>>;
extern template struct BasicTreap<Key, Value, std::less<Key>>;

/// Sets the effective leaf fill limit (clamped to [2, kLeafCapacity]).
/// Affects leaves created afterwards; existing trees remain valid.  The
/// knob is shared by every BasicTreap instantiation.
void set_leaf_fill(std::uint32_t fill);
std::uint32_t leaf_fill();

using Node = Impl::Node;
using Ref = Impl::Ref;

namespace detail {
inline void incref(const Node* node) noexcept { Impl::incref(node); }
inline void decref(const Node* node) noexcept { Impl::decref(node); }
}  // namespace detail

// --- Queries (accept raw node pointers so lock-free readers can use them
// --- on pointers protected by an epoch guard rather than a Ref). ----------

/// Looks up `key`; writes the value through `value_out` (may be null).
inline bool lookup(const Node* tree, Key key, Value* value_out) {
  return Impl::lookup(tree, key, value_out);
}

inline std::size_t size(const Node* tree) { return Impl::size(tree); }
inline bool empty(const Node* tree) { return Impl::empty(tree); }
/// True if the container holds fewer than two items (split precondition).
inline bool less_than_two_items(const Node* tree) {
  return Impl::less_than_two_items(tree);
}
/// Smallest / largest key.  Precondition: !empty(tree).
inline Key min_key(const Node* tree) { return Impl::min_key(tree); }
inline Key max_key(const Node* tree) { return Impl::max_key(tree); }

/// Visits every item with lo <= key <= hi in ascending key order.
inline void for_range(const Node* tree, Key lo, Key hi, ItemVisitor visit) {
  Impl::for_range(tree, lo, hi, visit);
}
/// Visits every item in ascending key order.
inline void for_all(const Node* tree, ItemVisitor visit) {
  Impl::for_all(tree, visit);
}

/// Key of rank `index` (0-based, ascending).  Precondition: index < size.
inline Key select(const Node* tree, std::size_t index) {
  return Impl::select(tree, index);
}

// --- Persistent updates (pure; inputs not consumed). ----------------------

/// Returns a version with (key, value) present.  `*replaced_out` (may be
/// null) is set to true iff an existing item with `key` was overwritten.
inline Ref insert(const Node* tree, Key key, Value value,
                  bool* replaced_out = nullptr) {
  return Impl::insert(tree, key, value, replaced_out);
}

/// Returns a version without `key`.  `*removed_out` (may be null) is set to
/// true iff an item was removed.
inline Ref remove(const Node* tree, Key key, bool* removed_out = nullptr) {
  return Impl::remove(tree, key, removed_out);
}

/// Concatenates two trees; every key in `left` must be smaller than every
/// key in `right`.
inline Ref join(const Node* left, const Node* right) {
  return Impl::join(left, right);
}

/// Splits by key: `left_out` receives keys < key, `right_out` keys >= key.
inline void split(const Node* tree, Key key, Ref* left_out, Ref* right_out) {
  Impl::split(tree, key, left_out, right_out);
}

/// Splits into halves of (nearly) equal size.  `split_key_out` receives the
/// smallest key of the right half (route-node semantics: < key goes left).
/// Precondition: size(tree) >= 2.
inline void split_evenly(const Node* tree, Ref* left_out, Ref* right_out,
                         Key* split_key_out) {
  Impl::split_evenly(tree, left_out, right_out, split_key_out);
}

// --- Introspection for tests and statistics. ------------------------------

/// Height of the tree (empty = 0, single leaf = 1).
inline std::size_t height(const Node* tree) { return Impl::height(tree); }
/// Number of fat leaves.
inline std::size_t leaf_count(const Node* tree) {
  return Impl::leaf_count(tree);
}
/// Verifies all structural invariants (ordering, balance, sizes, min/max
/// caches, leaf fill bounds).  Returns true if they all hold.
inline bool check_invariants(const Node* tree) {
  return Impl::check_invariants(tree);
}
/// Same checks with one diagnostic line per violated invariant appended to
/// `report` (CATS_CHECKED builds additionally verify node canaries and
/// refcount sanity).  Returns true if everything holds.
inline bool validate(const Node* tree, check::Report* report) {
  return Impl::validate(tree, report);
}
/// Total live node count across all trees — and all key-type instantiations
/// (leak detection in tests).
std::size_t live_nodes();

#if CATS_CHECKED_ENABLED
namespace testing {
/// Deliberately corrupts the leftmost leaf's first key so ordering and the
/// min-key cache break — negative tests prove the validators fire.  Integer
/// keys only (the corruption is arithmetic), hence outside the template.
void corrupt_first_leaf_key(const Node* tree);
/// Smashes the root node's canary — negative tests of the canary protocol.
void corrupt_canary(const Node* tree);
}  // namespace testing
#endif

// Convenience overloads on Ref.
inline bool lookup(const Ref& t, Key k, Value* v) { return lookup(t.get(), k, v); }
inline std::size_t size(const Ref& t) { return size(t.get()); }
inline bool empty(const Ref& t) { return empty(t.get()); }
inline Ref insert(const Ref& t, Key k, Value v, bool* r = nullptr) {
  return insert(t.get(), k, v, r);
}
inline Ref remove(const Ref& t, Key k, bool* r = nullptr) {
  return remove(t.get(), k, r);
}
inline Ref join(const Ref& l, const Ref& r) { return join(l.get(), r.get()); }

}  // namespace cats::treap
