// Immutable (persistent) ordered leaf container with fat leaves.
//
// This is the "leaf container" of the paper (§2, §7): an immutable balanced
// search tree storing the actual items of each base node.  The paper's
// implementation uses a randomized treap whose fat leaf nodes hold arrays of
// up to 64 items; it also notes (§2) that any persistent balanced tree with
// O(log n) updates and O(log n) split/join works (red-black trees, treaps,
// ...).  We keep the fat-leaf layout — that is what gives range queries their
// cache behaviour — but balance with deterministic AVL-style heights instead
// of random priorities: identical asymptotics, reproducible shapes for
// testing.  The module keeps the paper's `treap` name since it fills exactly
// the `treap_*` role of the pseudo-code.
//
// All nodes are immutable after construction and intrusively reference
// counted.  Persistent versions share subtrees; sharing forms a DAG of
// immutable nodes, so plain reference counting is sound (no cycles).  Every
// operation is a pure function: inputs are never consumed, outputs carry
// fresh references owned by the caller (wrapped in `Ref`).
//
// Complexity (n items, fat leaves of up to kLeafCapacity items):
//   lookup                O(log n)
//   insert / remove       O(log n)        (path copying)
//   join / split          O(log n)
//   split_evenly          O(log n)
//   for_range             O(log n + k)    (k items reported)
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>

#include "check/check.hpp"
#include "common/function_ref.hpp"
#include "common/types.hpp"

namespace cats::treap {

/// Physical capacity of a fat leaf.  The *effective* fill limit is the
/// runtime knob `set_leaf_fill` (<= kLeafCapacity), used by the ablation
/// benchmarks; the paper's evaluation uses 64.
inline constexpr std::uint32_t kLeafCapacity = 64;

/// Sets the effective leaf fill limit (clamped to [2, kLeafCapacity]).
/// Affects leaves created afterwards; existing trees remain valid.
void set_leaf_fill(std::uint32_t fill);
std::uint32_t leaf_fill();

struct Node;  // opaque; defined in treap.cpp

namespace detail {
void incref(const Node* node) noexcept;
void decref(const Node* node) noexcept;
}  // namespace detail

/// Shared-ownership handle to an immutable tree.  A default-constructed Ref
/// is the empty container.
class Ref {
 public:
  Ref() noexcept = default;
  /// Adopts an already-owned reference (used by the implementation).
  static Ref adopt(const Node* node) noexcept {
    Ref ref;
    ref.node_ = node;
    return ref;
  }

  Ref(const Ref& other) noexcept : node_(other.node_) {
    if (node_ != nullptr) detail::incref(node_);
  }
  Ref(Ref&& other) noexcept : node_(std::exchange(other.node_, nullptr)) {}
  Ref& operator=(const Ref& other) noexcept {
    Ref copy(other);
    swap(copy);
    return *this;
  }
  Ref& operator=(Ref&& other) noexcept {
    Ref moved(std::move(other));
    swap(moved);
    return *this;
  }
  ~Ref() {
    if (node_ != nullptr) detail::decref(node_);
  }

  void swap(Ref& other) noexcept { std::swap(node_, other.node_); }
  const Node* get() const noexcept { return node_; }
  explicit operator bool() const noexcept { return node_ != nullptr; }

  /// Releases ownership without decrementing (for handoff into atomics).
  const Node* release() noexcept { return std::exchange(node_, nullptr); }

 private:
  const Node* node_ = nullptr;
};

// --- Queries (accept raw node pointers so lock-free readers can use them
// --- on pointers protected by an epoch guard rather than a Ref). ----------

/// Looks up `key`; writes the value through `value_out` (may be null).
bool lookup(const Node* tree, Key key, Value* value_out);

std::size_t size(const Node* tree);
bool empty(const Node* tree);
/// True if the container holds fewer than two items (split precondition).
bool less_than_two_items(const Node* tree);
/// Smallest / largest key.  Precondition: !empty(tree).
Key min_key(const Node* tree);
Key max_key(const Node* tree);

/// Visits every item with lo <= key <= hi in ascending key order.
void for_range(const Node* tree, Key lo, Key hi, ItemVisitor visit);
/// Visits every item in ascending key order.
void for_all(const Node* tree, ItemVisitor visit);

/// Key of rank `index` (0-based, ascending).  Precondition: index < size.
Key select(const Node* tree, std::size_t index);

// --- Persistent updates (pure; inputs not consumed). ----------------------

/// Returns a version with (key, value) present.  `*replaced_out` (may be
/// null) is set to true iff an existing item with `key` was overwritten.
Ref insert(const Node* tree, Key key, Value value,
           bool* replaced_out = nullptr);

/// Returns a version without `key`.  `*removed_out` (may be null) is set to
/// true iff an item was removed.
Ref remove(const Node* tree, Key key, bool* removed_out = nullptr);

/// Concatenates two trees; every key in `left` must be smaller than every
/// key in `right`.
Ref join(const Node* left, const Node* right);

/// Splits by key: `left_out` receives keys < key, `right_out` keys >= key.
void split(const Node* tree, Key key, Ref* left_out, Ref* right_out);

/// Splits into halves of (nearly) equal size.  `split_key_out` receives the
/// smallest key of the right half (route-node semantics: < key goes left).
/// Precondition: size(tree) >= 2.
void split_evenly(const Node* tree, Ref* left_out, Ref* right_out,
                  Key* split_key_out);

// --- Introspection for tests and statistics. ------------------------------

/// Height of the tree (empty = 0, single leaf = 1).
std::size_t height(const Node* tree);
/// Number of fat leaves.
std::size_t leaf_count(const Node* tree);
/// Verifies all structural invariants (ordering, balance, sizes, min/max
/// caches, leaf fill bounds).  Returns true if they all hold.
bool check_invariants(const Node* tree);
/// Same checks with one diagnostic line per violated invariant appended to
/// `report` (CATS_CHECKED builds additionally verify node canaries and
/// refcount sanity).  Returns true if everything holds.
bool validate(const Node* tree, check::Report* report);
/// Total live node count across all trees (leak detection in tests).
std::size_t live_nodes();

#if CATS_CHECKED_ENABLED
namespace testing {
/// Deliberately corrupts the leftmost leaf's first key so ordering and the
/// min-key cache break — negative tests prove the validators fire.
void corrupt_first_leaf_key(const Node* tree);
/// Smashes the root node's canary — negative tests of the canary protocol.
void corrupt_canary(const Node* tree);
}  // namespace testing
#endif

// Convenience overloads on Ref.
inline bool lookup(const Ref& t, Key k, Value* v) { return lookup(t.get(), k, v); }
inline std::size_t size(const Ref& t) { return size(t.get()); }
inline bool empty(const Ref& t) { return empty(t.get()); }
inline Ref insert(const Ref& t, Key k, Value v, bool* r = nullptr) {
  return insert(t.get(), k, v, r);
}
inline Ref remove(const Ref& t, Key k, bool* r = nullptr) {
  return remove(t.get(), k, r);
}
inline Ref join(const Ref& l, const Ref& r) { return join(l.get(), r.get()); }

}  // namespace cats::treap
