#include "treap/treap.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>

#include "common/catomic.hpp"
#include "common/strkey.hpp"

namespace cats::treap {

namespace detail {

// Shared by every BasicTreap instantiation (see treap_impl.hpp).
cats::atomic<std::uint32_t> g_leaf_fill{kLeafCapacity};
cats::atomic<std::size_t> g_live_nodes{0};

}  // namespace detail

// All member-function codegen for the supported key types lives here: the
// wrappers in treap.hpp (and generic users elsewhere) link against these
// instantiations instead of re-instantiating per translation unit.
template struct BasicTreap<Key, Value, std::less<Key>>;
template struct BasicTreap<StrKey, Value, std::less<StrKey>>;

void set_leaf_fill(std::uint32_t fill) {
  detail::g_leaf_fill.store(std::clamp<std::uint32_t>(fill, 2, kLeafCapacity),
                            std::memory_order_relaxed);
}

std::uint32_t leaf_fill() {
  return detail::g_leaf_fill.load(std::memory_order_relaxed);
}

std::size_t live_nodes() {
  return detail::g_live_nodes.load(std::memory_order_relaxed);
}

#if CATS_CHECKED_ENABLED
namespace testing {

// Test-only mutations of nominally-immutable nodes: negative tests use them
// to prove the validators actually fire.  const_cast is confined to here.
// These stay integer-key-only free functions (not template members): the
// key corruption is arithmetic, and keeping them outside BasicTreap keeps
// the explicit instantiations free of int-specific code.

void corrupt_first_leaf_key(const Node* tree) {
  assert(tree != nullptr);
  const Node* n = tree;
  while (!n->is_leaf) n = Impl::as_inner(n)->left;
  auto* leaf = const_cast<Impl::Leaf*>(Impl::as_leaf(n));
  // Breaks the min-key cache of every ancestor; with count > 1 it may also
  // break intra-leaf ordering.
  leaf->items[0].key += 1;
}

void corrupt_canary(const Node* tree) {
  assert(tree != nullptr);
  const_cast<Node*>(tree)->check_canary.store(0xBAD0BAD0'BAD0BAD0ull,
                                              std::memory_order_relaxed);
}

}  // namespace testing
#endif  // CATS_CHECKED_ENABLED

}  // namespace cats::treap
