#include "treap/treap.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdarg>
#include <cstdlib>

#include "alloc/pool.hpp"
#include "common/catomic.hpp"
#include "obs/registry.hpp"

namespace cats::treap {

namespace {

cats::atomic<std::uint32_t> g_leaf_fill{kLeafCapacity};
cats::atomic<std::size_t> g_live_nodes{0};

}  // namespace

void set_leaf_fill(std::uint32_t fill) {
  g_leaf_fill.store(std::clamp<std::uint32_t>(fill, 2, kLeafCapacity),
                    std::memory_order_relaxed);
}

std::uint32_t leaf_fill() { return g_leaf_fill.load(std::memory_order_relaxed); }

// ---------------------------------------------------------------------------
// Node layout.  Immutable after construction; `rc` is the only mutable field.
// ---------------------------------------------------------------------------

struct Node {
  mutable cats::atomic<std::uint64_t> rc;
  std::uint64_t size;
  Key min_key;
  Key max_key;
  std::uint8_t height;  // leaves have height 1
  bool is_leaf;

#if CATS_CHECKED_ENABLED
  /// Canary header: treap nodes are purely refcounted (never retired), so
  /// the states are Alive -> poison; incref/decref verify Alive.
  check::Canary check_canary{check::kCanaryAlive};
#endif

  /// Pool-backed storage: path copying allocates O(height) nodes per
  /// update, the dominant allocation cost of the whole tree (paper §7's
  /// immutable fat leaves; the JVM amortizes this in the GC nursery).
  static void* operator new(std::size_t size) {
    void* p = alloc::pool_alloc(size);
    cats::sim_note_alloc(p, size);
    return p;
  }

  /// Poison-on-free under CATS_CHECKED (after the destructor, before the
  /// block re-enters the pool): a stale pointer from a refcount bug reads
  /// 0xEF..EF instead of plausible data — the free-list link clobbers only
  /// the first word (`rc`), not the canary.  Under CATS_SIM the release is
  /// quarantined until the end of the execution.
  static void operator delete(void* p, std::size_t size) {
    CATS_CHECKED_ONLY(check::poison(p, size));
    if (cats::sim_quarantine_free(p, size, &alloc::pool_free)) return;
    alloc::pool_free(p, size);
  }

  Node(std::uint64_t size_, Key min_, Key max_, std::uint8_t height_,
       bool is_leaf_)
      : rc(1), size(size_), min_key(min_), max_key(max_), height(height_),
        is_leaf(is_leaf_) {
    g_live_nodes.fetch_add(1, std::memory_order_relaxed);
    CATS_OBS_ONLY(obs::count(obs::GCounter::kTreapNodeAllocs));
  }
  ~Node() {
    CATS_CHECKED_ONLY(
        check::canary_expect_alive(check_canary, "treap node (destructor)"));
    g_live_nodes.fetch_sub(1, std::memory_order_relaxed);
    CATS_OBS_ONLY(obs::count(obs::GCounter::kTreapNodeFrees));
  }

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;
};

namespace {

struct Leaf : Node {
  std::uint32_t count;
  Item items[kLeafCapacity];

  Leaf(const Item* src, std::uint32_t n)
      : Node(n, src[0].key, src[n - 1].key, 1, true), count(n) {
    std::copy_n(src, n, items);
  }
};

struct Inner : Node {
  const Node* left;
  const Node* right;

  Inner(const Node* l, const Node* r)
      : Node(l->size + r->size, l->min_key, r->max_key,
             static_cast<std::uint8_t>(std::max(l->height, r->height) + 1),
             false),
        left(l), right(r) {}
};

inline const Leaf* as_leaf(const Node* n) { return static_cast<const Leaf*>(n); }
inline const Inner* as_inner(const Node* n) {
  return static_cast<const Inner*>(n);
}

inline int h(const Node* n) { return n == nullptr ? 0 : n->height; }

inline const Node* incref_ret(const Node* n) {
  detail::incref(n);
  return n;
}

/// New inner node; takes ownership of both child references.
const Node* mk_inner(const Node* l, const Node* r) { return new Inner(l, r); }

/// New inner node, rebalancing with AVL rotations when the height difference
/// is 2 (it never exceeds 2 given single insert/remove/join steps).  Takes
/// ownership of both references; children are non-null.
const Node* bal(const Node* l, const Node* r) {
  const int hl = h(l);
  const int hr = h(r);
  if (hl > hr + 1) {
    const Inner* li = as_inner(l);  // hl >= 3, so l is inner
    if (h(li->left) >= h(li->right)) {
      // Single rotation:    (ll, (lr, r))
      const Node* nr = mk_inner(incref_ret(li->right), r);
      const Node* res = mk_inner(incref_ret(li->left), nr);
      detail::decref(l);
      return res;
    }
    // Double rotation:    ((ll, lrl), (lrr, r))
    const Inner* lri = as_inner(li->right);
    const Node* a = mk_inner(incref_ret(li->left), incref_ret(lri->left));
    const Node* b = mk_inner(incref_ret(lri->right), r);
    detail::decref(l);
    return mk_inner(a, b);
  }
  if (hr > hl + 1) {
    const Inner* ri = as_inner(r);
    if (h(ri->right) >= h(ri->left)) {
      const Node* nl = mk_inner(l, incref_ret(ri->left));
      const Node* res = mk_inner(nl, incref_ret(ri->right));
      detail::decref(r);
      return res;
    }
    const Inner* rli = as_inner(ri->left);
    const Node* a = mk_inner(l, incref_ret(rli->left));
    const Node* b = mk_inner(incref_ret(rli->right), incref_ret(ri->right));
    detail::decref(r);
    return mk_inner(a, b);
  }
  return mk_inner(l, r);
}

const Leaf* make_leaf(const Item* items, std::uint32_t n) {
  assert(n >= 1 && n <= kLeafCapacity);
  return new Leaf(items, n);
}

/// Builds a leaf or a two-leaf inner from a sorted item array that may
/// exceed the fill limit by one (insert overflow).
const Node* build_from_items(const Item* items, std::uint32_t n) {
  if (n <= g_leaf_fill.load(std::memory_order_relaxed)) {
    return make_leaf(items, n);
  }
  const std::uint32_t half = (n + 1) / 2;
  return mk_inner(make_leaf(items, half), make_leaf(items + half, n - half));
}

/// Concatenation with rebalancing; all keys in l precede all keys in r.
/// Takes ownership; either side may be null.
const Node* join_nodes(const Node* l, const Node* r) {
  if (l == nullptr) return r;
  if (r == nullptr) return l;
  if (l->is_leaf && r->is_leaf &&
      l->size + r->size <= g_leaf_fill.load(std::memory_order_relaxed)) {
    Item merged[kLeafCapacity];
    const Leaf* ll = as_leaf(l);
    const Leaf* rl = as_leaf(r);
    std::copy_n(ll->items, ll->count, merged);
    std::copy_n(rl->items, rl->count, merged + ll->count);
    const Node* res = make_leaf(merged, ll->count + rl->count);
    detail::decref(l);
    detail::decref(r);
    return res;
  }
  if (h(l) > h(r) + 1) {
    const Inner* li = as_inner(l);
    const Node* a = incref_ret(li->left);
    const Node* b = join_nodes(incref_ret(li->right), r);
    detail::decref(l);
    return bal(a, b);
  }
  if (h(r) > h(l) + 1) {
    const Inner* ri = as_inner(r);
    const Node* a = join_nodes(l, incref_ret(ri->left));
    const Node* b = incref_ret(ri->right);
    detail::decref(r);
    return bal(a, b);
  }
  return mk_inner(l, r);
}

// --- iterative path-copy builders for insert/remove ------------------------
//
// Updates copy the root-to-leaf path.  A recursive builder pays a call
// frame per level and, for an absent-key remove, an incref/decref pair per
// level on the way back up.  Instead the descent records the path in a
// fixed stack buffer, the leaf is rewritten, and the copy is built bottom
// up — and an absent key is answered with a single incref of the original
// root.  `height` is a uint8_t, so 256 entries always suffice (an AVL tree
// of height 255 would need more nodes than any machine holds).

constexpr std::size_t kMaxPath = 256;

struct PathEntry {
  const Inner* node;
  bool went_left;
};

/// Rebuilds the path copy bottom-up.  `sub` is the owned replacement for
/// the deepest subtree (null = became empty); siblings are increffed as
/// they are grafted.  Returns the owned new root.
const Node* rebuild_path(const PathEntry* path, std::size_t depth,
                         const Node* sub) {
  while (depth > 0) {
    const PathEntry& e = path[--depth];
    if (sub == nullptr) {
      sub = incref_ret(e.went_left ? e.node->right : e.node->left);
    } else if (e.went_left) {
      sub = bal(sub, incref_ret(e.node->right));
    } else {
      sub = bal(incref_ret(e.node->left), sub);
    }
  }
  return sub;
}

const Node* insert_iter(const Node* tree, Key key, Value value,
                        bool* replaced) {
  PathEntry path[kMaxPath];
  std::size_t depth = 0;
  const Node* n = tree;
  while (!n->is_leaf) {
    const Inner* in = as_inner(n);
    const bool left = key < in->right->min_key;
    path[depth++] = {in, left};
    n = left ? in->left : in->right;
  }
  const Leaf* leaf = as_leaf(n);
  const Item* end = leaf->items + leaf->count;
  const Item* pos = std::lower_bound(
      leaf->items, end, key,
      [](const Item& item, Key k) { return item.key < k; });
  Item buffer[kLeafCapacity + 1];
  const auto prefix = static_cast<std::uint32_t>(pos - leaf->items);
  std::copy_n(leaf->items, prefix, buffer);
  buffer[prefix] = Item{key, value};
  const Node* sub;
  if (pos != end && pos->key == key) {
    *replaced = true;
    std::copy(pos + 1, end, buffer + prefix + 1);
    sub = make_leaf(buffer, leaf->count);
  } else {
    std::copy(pos, end, buffer + prefix + 1);
    sub = build_from_items(buffer, leaf->count + 1);
  }
  return rebuild_path(path, depth, sub);
}

/// Returns the new tree (owned, possibly null) after removing `key`; an
/// absent key returns the original tree with one fresh reference.
const Node* remove_iter(const Node* tree, Key key, bool* removed) {
  PathEntry path[kMaxPath];
  std::size_t depth = 0;
  const Node* n = tree;
  while (!n->is_leaf) {
    const Inner* in = as_inner(n);
    if (key <= in->left->max_key) {
      path[depth++] = {in, true};
      n = in->left;
    } else if (key >= in->right->min_key) {
      path[depth++] = {in, false};
      n = in->right;
    } else {
      return incref_ret(tree);  // key falls in the gap between subtrees
    }
  }
  const Leaf* leaf = as_leaf(n);
  const Item* end = leaf->items + leaf->count;
  const Item* pos = std::lower_bound(
      leaf->items, end, key,
      [](const Item& item, Key k) { return item.key < k; });
  if (pos == end || pos->key != key) return incref_ret(tree);
  *removed = true;
  const Node* sub = nullptr;
  if (leaf->count > 1) {
    Item buffer[kLeafCapacity];
    const auto prefix = static_cast<std::uint32_t>(pos - leaf->items);
    std::copy_n(leaf->items, prefix, buffer);
    std::copy(pos + 1, end, buffer + prefix);
    sub = make_leaf(buffer, leaf->count - 1);
  }
  return rebuild_path(path, depth, sub);
}

/// Splits into (< key, >= key); outputs owned, possibly null.
void split_rec(const Node* n, Key key, const Node** lo_out,
               const Node** hi_out) {
  if (n == nullptr) {
    *lo_out = nullptr;
    *hi_out = nullptr;
    return;
  }
  if (n->is_leaf) {
    const Leaf* leaf = as_leaf(n);
    const Item* end = leaf->items + leaf->count;
    const Item* pos = std::lower_bound(
        leaf->items, end, key,
        [](const Item& item, Key k) { return item.key < k; });
    const auto prefix = static_cast<std::uint32_t>(pos - leaf->items);
    *lo_out = prefix == 0 ? nullptr : make_leaf(leaf->items, prefix);
    *hi_out = prefix == leaf->count ? nullptr
                                    : make_leaf(pos, leaf->count - prefix);
    return;
  }
  const Inner* in = as_inner(n);
  if (key <= in->left->max_key) {
    const Node* a = nullptr;
    const Node* b = nullptr;
    split_rec(in->left, key, &a, &b);
    *lo_out = a;
    *hi_out = join_nodes(b, incref_ret(in->right));
  } else {
    const Node* a = nullptr;
    const Node* b = nullptr;
    split_rec(in->right, key, &a, &b);
    *lo_out = join_nodes(incref_ret(in->left), a);
    *hi_out = b;
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Reference counting.
// ---------------------------------------------------------------------------

namespace detail {

void incref(const Node* node) noexcept {
  CATS_CHECKED_ONLY(
      check::canary_expect_alive(node->check_canary, "treap node (incref)"));
  node->rc.fetch_add(1, std::memory_order_relaxed);
}

void decref(const Node* node) noexcept {
  while (node != nullptr) {
    CATS_CHECKED_ONLY(check::canary_expect_alive(node->check_canary,
                                                 "treap node (decref)"));
    const std::uint64_t prev =
        node->rc.fetch_sub(1, std::memory_order_acq_rel);
    CATS_CHECK(prev != 0, "treap node %p: refcount underflow",
               static_cast<const void*>(node));
    if (prev != 1) return;
    // Treap nodes are immutable and refcounted: dropping the last
    // reference is the only path here, so the delete cannot race a reader
    // (any reader holds its own reference or sits behind an EBR retire of
    // the container that owns this reference).
    if (node->is_leaf) {
      // catslint: direct-delete(refcounted; last reference frees)
      delete static_cast<const Leaf*>(node);
      return;
    }
    const Inner* inner = static_cast<const Inner*>(node);
    const Node* left = inner->left;
    const Node* right = inner->right;
    delete inner;  // catslint: direct-delete(refcounted; last reference frees)
    decref(left);   // bounded by tree height
    node = right;   // iterate down the other spine
  }
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Public API.
// ---------------------------------------------------------------------------

bool lookup(const Node* tree, Key key, Value* value_out) {
  const Node* n = tree;
  if (n == nullptr) return false;
  while (!n->is_leaf) {
    const Inner* in = as_inner(n);
    n = key <= in->left->max_key ? in->left : in->right;
  }
  const Leaf* leaf = as_leaf(n);
  const Item* end = leaf->items + leaf->count;
  const Item* pos = std::lower_bound(
      leaf->items, end, key,
      [](const Item& item, Key k) { return item.key < k; });
  if (pos == end || pos->key != key) return false;
  if (value_out != nullptr) *value_out = pos->value;
  return true;
}

std::size_t size(const Node* tree) { return tree == nullptr ? 0 : tree->size; }

bool empty(const Node* tree) { return tree == nullptr; }

bool less_than_two_items(const Node* tree) { return size(tree) < 2; }

Key min_key(const Node* tree) {
  assert(tree != nullptr);
  return tree->min_key;
}

Key max_key(const Node* tree) {
  assert(tree != nullptr);
  return tree->max_key;
}

void for_range(const Node* tree, Key lo, Key hi, ItemVisitor visit) {
  if (tree == nullptr || tree->max_key < lo || tree->min_key > hi) return;
  if (tree->is_leaf) {
    const Leaf* leaf = as_leaf(tree);
    const Item* end = leaf->items + leaf->count;
    const Item* pos = std::lower_bound(
        leaf->items, end, lo,
        [](const Item& item, Key k) { return item.key < k; });
    for (; pos != end && pos->key <= hi; ++pos) visit(pos->key, pos->value);
    return;
  }
  const Inner* in = as_inner(tree);
  for_range(in->left, lo, hi, visit);
  for_range(in->right, lo, hi, visit);
}

void for_all(const Node* tree, ItemVisitor visit) {
  for_range(tree, kKeyMin, kKeyMax, visit);
}

Key select(const Node* tree, std::size_t index) {
  assert(tree != nullptr && index < tree->size);
  const Node* n = tree;
  while (!n->is_leaf) {
    const Inner* in = as_inner(n);
    if (index < in->left->size) {
      n = in->left;
    } else {
      index -= in->left->size;
      n = in->right;
    }
  }
  return as_leaf(n)->items[index].key;
}

Ref insert(const Node* tree, Key key, Value value, bool* replaced_out) {
  bool replaced = false;
  const Node* result;
  if (tree == nullptr) {
    const Item item{key, value};
    result = make_leaf(&item, 1);
  } else {
    result = insert_iter(tree, key, value, &replaced);
  }
  if (replaced_out != nullptr) *replaced_out = replaced;
  return Ref::adopt(result);
}

Ref remove(const Node* tree, Key key, bool* removed_out) {
  bool removed = false;
  const Node* result =
      tree == nullptr ? nullptr : remove_iter(tree, key, &removed);
  if (removed_out != nullptr) *removed_out = removed;
  return Ref::adopt(result);
}

Ref join(const Node* left, const Node* right) {
  assert(left == nullptr || right == nullptr ||
         left->max_key < right->min_key);
  const Node* l = left;
  const Node* r = right;
  if (l != nullptr) detail::incref(l);
  if (r != nullptr) detail::incref(r);
  return Ref::adopt(join_nodes(l, r));
}

void split(const Node* tree, Key key, Ref* left_out, Ref* right_out) {
  const Node* lo = nullptr;
  const Node* hi = nullptr;
  split_rec(tree, key, &lo, &hi);
  *left_out = Ref::adopt(lo);
  *right_out = Ref::adopt(hi);
}

void split_evenly(const Node* tree, Ref* left_out, Ref* right_out,
                  Key* split_key_out) {
  assert(size(tree) >= 2);
  const Key pivot = select(tree, tree->size / 2);
  split(tree, pivot, left_out, right_out);
  *split_key_out = pivot;
}

std::size_t height(const Node* tree) { return tree == nullptr ? 0 : tree->height; }

std::size_t leaf_count(const Node* tree) {
  if (tree == nullptr) return 0;
  if (tree->is_leaf) return 1;
  const Inner* in = as_inner(tree);
  return leaf_count(in->left) + leaf_count(in->right);
}

namespace {

/// Records one violated invariant against `report` (when non-null) and
/// always evaluates to false so call sites read `ok = flag(...)`.
bool flag(check::Report* report, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

bool flag(check::Report* report, const char* fmt, ...) {
  if (report != nullptr) {
    std::va_list args;
    va_start(args, fmt);
    report->addv(fmt, args);
    va_end(args);
  }
  return false;
}

bool validate_rec(const Node* n, check::Report* report) {
  const void* p = n;
#if CATS_CHECKED_ENABLED
  const std::uint64_t canary =
      n->check_canary.load(std::memory_order_relaxed);
  if (check::canary_state(canary) != check::CanaryState::kAlive) {
    // Do not read further fields of a node whose canary is gone: the rest
    // of the struct is as untrustworthy as the canary itself.
    return flag(report, "treap node %p: canary is %s (0x%016llx), not alive",
                p, check::canary_name(canary),
                static_cast<unsigned long long>(canary));
  }
#endif
  bool ok = true;
  if (n->rc.load(std::memory_order_relaxed) == 0) {
    ok = flag(report, "treap node %p: refcount is 0 but node is reachable", p);
  }
  if (n->is_leaf) {
    const Leaf* leaf = as_leaf(n);
    if (leaf->count < 1 || leaf->count > kLeafCapacity) {
      return flag(report, "treap leaf %p: count %u outside [1, %u]", p,
                  leaf->count, kLeafCapacity);
    }
    if (leaf->size != leaf->count) {
      ok = flag(report, "treap leaf %p: size cache %llu != count %u", p,
                static_cast<unsigned long long>(leaf->size), leaf->count);
    }
    if (leaf->min_key != leaf->items[0].key) {
      ok = flag(report,
                "treap leaf %p: min_key cache %lld != first item key %lld", p,
                static_cast<long long>(leaf->min_key),
                static_cast<long long>(leaf->items[0].key));
    }
    if (leaf->max_key != leaf->items[leaf->count - 1].key) {
      ok = flag(report,
                "treap leaf %p: max_key cache %lld != last item key %lld", p,
                static_cast<long long>(leaf->max_key),
                static_cast<long long>(leaf->items[leaf->count - 1].key));
    }
    for (std::uint32_t i = 1; i < leaf->count; ++i) {
      if (leaf->items[i - 1].key >= leaf->items[i].key) {
        ok = flag(report,
                  "treap leaf %p: items[%u].key %lld >= items[%u].key %lld "
                  "(not strictly ascending)",
                  p, i - 1, static_cast<long long>(leaf->items[i - 1].key), i,
                  static_cast<long long>(leaf->items[i].key));
      }
    }
    if (leaf->height != 1) {
      ok = flag(report, "treap leaf %p: height %u != 1", p,
                static_cast<unsigned>(leaf->height));
    }
    return ok;
  }
  const Inner* in = as_inner(n);
  if (in->left == nullptr || in->right == nullptr) {
    return flag(report, "treap inner %p: null child", p);
  }
  if (!validate_rec(in->left, report)) ok = false;
  if (!validate_rec(in->right, report)) ok = false;
  if (!ok) return false;  // child fields below are only meaningful if sound
  if (in->left->max_key >= in->right->min_key) {
    ok = flag(report,
              "treap inner %p: left max_key %lld >= right min_key %lld "
              "(BST order violated)",
              p, static_cast<long long>(in->left->max_key),
              static_cast<long long>(in->right->min_key));
  }
  if (in->size != in->left->size + in->right->size) {
    ok = flag(report, "treap inner %p: size cache %llu != %llu + %llu", p,
              static_cast<unsigned long long>(in->size),
              static_cast<unsigned long long>(in->left->size),
              static_cast<unsigned long long>(in->right->size));
  }
  if (in->min_key != in->left->min_key) {
    ok = flag(report, "treap inner %p: min_key cache %lld != left's %lld", p,
              static_cast<long long>(in->min_key),
              static_cast<long long>(in->left->min_key));
  }
  if (in->max_key != in->right->max_key) {
    ok = flag(report, "treap inner %p: max_key cache %lld != right's %lld", p,
              static_cast<long long>(in->max_key),
              static_cast<long long>(in->right->max_key));
  }
  if (in->height != std::max(in->left->height, in->right->height) + 1) {
    ok = flag(report, "treap inner %p: height %u != max(%u, %u) + 1", p,
              static_cast<unsigned>(in->height),
              static_cast<unsigned>(in->left->height),
              static_cast<unsigned>(in->right->height));
  }
  if (std::abs(h(in->left) - h(in->right)) > 1) {
    ok = flag(report, "treap inner %p: unbalanced (heights %d vs %d)", p,
              h(in->left), h(in->right));
  }
  return ok;
}

}  // namespace

bool validate(const Node* tree, check::Report* report) {
  return tree == nullptr || validate_rec(tree, report);
}

bool check_invariants(const Node* tree) { return validate(tree, nullptr); }

std::size_t live_nodes() {
  return g_live_nodes.load(std::memory_order_relaxed);
}

#if CATS_CHECKED_ENABLED
namespace testing {

// Test-only mutations of nominally-immutable nodes: negative tests use them
// to prove the validators actually fire.  const_cast is confined to here.

void corrupt_first_leaf_key(const Node* tree) {
  assert(tree != nullptr);
  const Node* n = tree;
  while (!n->is_leaf) n = as_inner(n)->left;
  auto* leaf = const_cast<Leaf*>(as_leaf(n));
  // Breaks the min-key cache of every ancestor; with count > 1 it may also
  // break intra-leaf ordering.
  leaf->items[0].key += 1;
}

void corrupt_canary(const Node* tree) {
  assert(tree != nullptr);
  const_cast<Node*>(tree)->check_canary.store(0xBAD0BAD0'BAD0BAD0ull,
                                              std::memory_order_relaxed);
}

}  // namespace testing
#endif  // CATS_CHECKED_ENABLED

}  // namespace cats::treap
