// Template implementation of the immutable fat-leaf leaf container (see
// treap.hpp for the design discussion).  BasicTreap<K, V, Compare> is a
// struct-as-namespace: every node type and operation of the container lives
// inside one template, so a single explicit instantiation in treap.cpp
// centralizes all codegen for a given key type (the historical
// <int64_t, uint64_t, std::less> instantiation keeps compiling in the same
// translation unit it always did, and treap.hpp's free functions are thin
// inline wrappers over it).
//
// Ordering is defined exclusively through Compare: `a <= b` is spelled
// `!comp(b, a)`, equality `!comp(a, b) && !comp(b, a)`.  Key-domain bounds
// (full-range scans) come from KeyTraits<K>, and validator diagnostics print
// keys through KeyTraits<K>::format — no arithmetic or formatting is ever
// done on K directly, so any totally-ordered trivially-copyable key works.
#pragma once

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdarg>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <utility>

#include "alloc/pool.hpp"
#include "check/check.hpp"
#include "common/catomic.hpp"
#include "common/function_ref.hpp"
#include "common/types.hpp"
#include "obs/registry.hpp"

namespace cats::treap {

/// Physical capacity of a fat leaf.  The *effective* fill limit is the
/// runtime knob `set_leaf_fill` (<= kLeafCapacity), used by the ablation
/// benchmarks; the paper's evaluation uses 64.
inline constexpr std::uint32_t kLeafCapacity = 64;

namespace detail {

/// Effective leaf fill limit and process-wide live-node counter, shared by
/// every BasicTreap instantiation (defined in treap.cpp).  Sharing keeps the
/// leak checks ("no treap node outlives its tree") meaningful across mixed
/// key-type workloads, exactly as before the template conversion.
extern cats::atomic<std::uint32_t> g_leaf_fill;
extern cats::atomic<std::size_t> g_live_nodes;

/// Records one violated invariant against `report` (when non-null) and
/// always evaluates to false so call sites read `ok = flag(...)`.
inline bool flag(check::Report* report, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

inline bool flag(check::Report* report, const char* fmt, ...) {
  if (report != nullptr) {
    std::va_list args;
    va_start(args, fmt);
    report->addv(fmt, args);
    va_end(args);
  }
  return false;
}

}  // namespace detail

template <class K, class V, class Compare = std::less<K>>
struct BasicTreap {
  using Key = K;
  using Value = V;
  using Item = BasicItem<K, V>;
  using Visitor = BasicItemVisitor<K, V>;

  // Ordering helpers: everything below uses only these, never raw operators.
  static bool lt(const K& a, const K& b) { return Compare{}(a, b); }
  static bool le(const K& a, const K& b) { return !Compare{}(b, a); }
  static bool eq(const K& a, const K& b) {
    return !Compare{}(a, b) && !Compare{}(b, a);
  }
  static std::string fmt(const K& key) { return KeyTraits<K>::format(key); }

  // -------------------------------------------------------------------------
  // Node layout.  Immutable after construction; `rc` is the only mutable
  // field.
  // -------------------------------------------------------------------------

  struct Node {
    mutable cats::atomic<std::uint64_t> rc;
    std::uint64_t size;
    K min_key;
    K max_key;
    std::uint8_t height;  // leaves have height 1
    bool is_leaf;

#if CATS_CHECKED_ENABLED
    /// Canary header: treap nodes are purely refcounted (never retired), so
    /// the states are Alive -> poison; incref/decref verify Alive.
    check::Canary check_canary{check::kCanaryAlive};
#endif

    /// Pool-backed storage: path copying allocates O(height) nodes per
    /// update, the dominant allocation cost of the whole tree (paper §7's
    /// immutable fat leaves; the JVM amortizes this in the GC nursery).
    static void* operator new(std::size_t size) {
      void* p = alloc::pool_alloc(size);
      cats::sim_note_alloc(p, size);
      return p;
    }

    /// Poison-on-free under CATS_CHECKED (after the destructor, before the
    /// block re-enters the pool): a stale pointer from a refcount bug reads
    /// 0xEF..EF instead of plausible data — the free-list link clobbers only
    /// the first word (`rc`), not the canary.  Under CATS_SIM the release is
    /// quarantined until the end of the execution.
    static void operator delete(void* p, std::size_t size) {
      CATS_CHECKED_ONLY(check::poison(p, size));
      if (cats::sim_quarantine_free(p, size, &alloc::pool_free)) return;
      alloc::pool_free(p, size);
    }

    Node(std::uint64_t size_, const K& min_, const K& max_,
         std::uint8_t height_, bool is_leaf_)
        : rc(1), size(size_), min_key(min_), max_key(max_), height(height_),
          is_leaf(is_leaf_) {
      detail::g_live_nodes.fetch_add(1, std::memory_order_relaxed);
      CATS_OBS_ONLY(obs::count(obs::GCounter::kTreapNodeAllocs));
    }
    ~Node() {
      CATS_CHECKED_ONLY(
          check::canary_expect_alive(check_canary, "treap node (destructor)"));
      detail::g_live_nodes.fetch_sub(1, std::memory_order_relaxed);
      CATS_OBS_ONLY(obs::count(obs::GCounter::kTreapNodeFrees));
    }

    Node(const Node&) = delete;
    Node& operator=(const Node&) = delete;
  };

  struct Leaf : Node {
    std::uint32_t count;
    Item items[kLeafCapacity];

    Leaf(const Item* src, std::uint32_t n)
        : Node(n, src[0].key, src[n - 1].key, 1, true), count(n) {
      std::copy_n(src, n, items);
    }
  };

  struct Inner : Node {
    const Node* left;
    const Node* right;

    Inner(const Node* l, const Node* r)
        : Node(l->size + r->size, l->min_key, r->max_key,
               static_cast<std::uint8_t>(std::max(l->height, r->height) + 1),
               false),
          left(l), right(r) {}
  };

  static const Leaf* as_leaf(const Node* n) {
    return static_cast<const Leaf*>(n);
  }
  static const Inner* as_inner(const Node* n) {
    return static_cast<const Inner*>(n);
  }

  // -------------------------------------------------------------------------
  // Reference counting.
  // -------------------------------------------------------------------------

  static void incref(const Node* node) noexcept {
    CATS_CHECKED_ONLY(
        check::canary_expect_alive(node->check_canary, "treap node (incref)"));
    node->rc.fetch_add(1, std::memory_order_relaxed);
  }

  static void decref(const Node* node) noexcept {
    while (node != nullptr) {
      CATS_CHECKED_ONLY(check::canary_expect_alive(node->check_canary,
                                                   "treap node (decref)"));
      const std::uint64_t prev =
          node->rc.fetch_sub(1, std::memory_order_acq_rel);
      CATS_CHECK(prev != 0, "treap node %p: refcount underflow",
                 static_cast<const void*>(node));
      if (prev != 1) return;
      // Treap nodes are immutable and refcounted: dropping the last
      // reference is the only path here, so the delete cannot race a reader
      // (any reader holds its own reference or sits behind an EBR retire of
      // the container that owns this reference).
      if (node->is_leaf) {
        // catslint: direct-delete(refcounted; last reference frees)
        delete static_cast<const Leaf*>(node);
        return;
      }
      const Inner* inner = static_cast<const Inner*>(node);
      const Node* left = inner->left;
      const Node* right = inner->right;
      delete inner;  // catslint: direct-delete(refcounted; last reference frees)
      decref(left);   // bounded by tree height
      node = right;   // iterate down the other spine
    }
  }

  /// Shared-ownership handle to an immutable tree.  A default-constructed
  /// Ref is the empty container.
  class Ref {
   public:
    Ref() noexcept = default;
    /// Adopts an already-owned reference (used by the implementation).
    static Ref adopt(const Node* node) noexcept {
      Ref ref;
      ref.node_ = node;
      return ref;
    }

    Ref(const Ref& other) noexcept : node_(other.node_) {
      if (node_ != nullptr) incref(node_);
    }
    Ref(Ref&& other) noexcept : node_(std::exchange(other.node_, nullptr)) {}
    Ref& operator=(const Ref& other) noexcept {
      Ref copy(other);
      swap(copy);
      return *this;
    }
    Ref& operator=(Ref&& other) noexcept {
      Ref moved(std::move(other));
      swap(moved);
      return *this;
    }
    ~Ref() {
      if (node_ != nullptr) decref(node_);
    }

    void swap(Ref& other) noexcept { std::swap(node_, other.node_); }
    const Node* get() const noexcept { return node_; }
    explicit operator bool() const noexcept { return node_ != nullptr; }

    /// Releases ownership without decrementing (for handoff into atomics).
    const Node* release() noexcept { return std::exchange(node_, nullptr); }

   private:
    const Node* node_ = nullptr;
  };

  // -------------------------------------------------------------------------
  // Internal builders.
  // -------------------------------------------------------------------------

  static int h(const Node* n) { return n == nullptr ? 0 : n->height; }

  static const Node* incref_ret(const Node* n) {
    incref(n);
    return n;
  }

  /// New inner node; takes ownership of both child references.
  static const Node* mk_inner(const Node* l, const Node* r) {
    return new Inner(l, r);
  }

  /// New inner node, rebalancing with AVL rotations when the height
  /// difference is 2 (it never exceeds 2 given single insert/remove/join
  /// steps).  Takes ownership of both references; children are non-null.
  static const Node* bal(const Node* l, const Node* r) {
    const int hl = h(l);
    const int hr = h(r);
    if (hl > hr + 1) {
      const Inner* li = as_inner(l);  // hl >= 3, so l is inner
      if (h(li->left) >= h(li->right)) {
        // Single rotation:    (ll, (lr, r))
        const Node* nr = mk_inner(incref_ret(li->right), r);
        const Node* res = mk_inner(incref_ret(li->left), nr);
        decref(l);
        return res;
      }
      // Double rotation:    ((ll, lrl), (lrr, r))
      const Inner* lri = as_inner(li->right);
      const Node* a = mk_inner(incref_ret(li->left), incref_ret(lri->left));
      const Node* b = mk_inner(incref_ret(lri->right), r);
      decref(l);
      return mk_inner(a, b);
    }
    if (hr > hl + 1) {
      const Inner* ri = as_inner(r);
      if (h(ri->right) >= h(ri->left)) {
        const Node* nl = mk_inner(l, incref_ret(ri->left));
        const Node* res = mk_inner(nl, incref_ret(ri->right));
        decref(r);
        return res;
      }
      const Inner* rli = as_inner(ri->left);
      const Node* a = mk_inner(l, incref_ret(rli->left));
      const Node* b = mk_inner(incref_ret(rli->right), incref_ret(ri->right));
      decref(r);
      return mk_inner(a, b);
    }
    return mk_inner(l, r);
  }

  static const Leaf* make_leaf(const Item* items, std::uint32_t n) {
    assert(n >= 1 && n <= kLeafCapacity);
    return new Leaf(items, n);
  }

  /// Builds a leaf or a two-leaf inner from a sorted item array that may
  /// exceed the fill limit by one (insert overflow).
  static const Node* build_from_items(const Item* items, std::uint32_t n) {
    if (n <= detail::g_leaf_fill.load(std::memory_order_relaxed)) {
      return make_leaf(items, n);
    }
    const std::uint32_t half = (n + 1) / 2;
    return mk_inner(make_leaf(items, half), make_leaf(items + half, n - half));
  }

  /// Concatenation with rebalancing; all keys in l precede all keys in r.
  /// Takes ownership; either side may be null.
  static const Node* join_nodes(const Node* l, const Node* r) {
    if (l == nullptr) return r;
    if (r == nullptr) return l;
    if (l->is_leaf && r->is_leaf &&
        l->size + r->size <=
            detail::g_leaf_fill.load(std::memory_order_relaxed)) {
      Item merged[kLeafCapacity];
      const Leaf* ll = as_leaf(l);
      const Leaf* rl = as_leaf(r);
      std::copy_n(ll->items, ll->count, merged);
      std::copy_n(rl->items, rl->count, merged + ll->count);
      const Node* res = make_leaf(merged, ll->count + rl->count);
      decref(l);
      decref(r);
      return res;
    }
    if (h(l) > h(r) + 1) {
      const Inner* li = as_inner(l);
      const Node* a = incref_ret(li->left);
      const Node* b = join_nodes(incref_ret(li->right), r);
      decref(l);
      return bal(a, b);
    }
    if (h(r) > h(l) + 1) {
      const Inner* ri = as_inner(r);
      const Node* a = join_nodes(l, incref_ret(ri->left));
      const Node* b = incref_ret(ri->right);
      decref(r);
      return bal(a, b);
    }
    return mk_inner(l, r);
  }

  // --- iterative path-copy builders for insert/remove -----------------------
  //
  // Updates copy the root-to-leaf path.  A recursive builder pays a call
  // frame per level and, for an absent-key remove, an incref/decref pair per
  // level on the way back up.  Instead the descent records the path in a
  // fixed stack buffer, the leaf is rewritten, and the copy is built bottom
  // up — and an absent key is answered with a single incref of the original
  // root.  `height` is a uint8_t, so 256 entries always suffice (an AVL tree
  // of height 255 would need more nodes than any machine holds).

  static constexpr std::size_t kMaxPath = 256;

  struct PathEntry {
    const Inner* node;
    bool went_left;
  };

  /// Rebuilds the path copy bottom-up.  `sub` is the owned replacement for
  /// the deepest subtree (null = became empty); siblings are increffed as
  /// they are grafted.  Returns the owned new root.
  static const Node* rebuild_path(const PathEntry* path, std::size_t depth,
                                  const Node* sub) {
    while (depth > 0) {
      const PathEntry& e = path[--depth];
      if (sub == nullptr) {
        sub = incref_ret(e.went_left ? e.node->right : e.node->left);
      } else if (e.went_left) {
        sub = bal(sub, incref_ret(e.node->right));
      } else {
        sub = bal(incref_ret(e.node->left), sub);
      }
    }
    return sub;
  }

  static const Item* leaf_lower_bound(const Leaf* leaf, const K& key) {
    return std::lower_bound(
        leaf->items, leaf->items + leaf->count, key,
        [](const Item& item, const K& k) { return Compare{}(item.key, k); });
  }

  static const Node* insert_iter(const Node* tree, const K& key,
                                 const V& value, bool* replaced) {
    PathEntry path[kMaxPath];
    std::size_t depth = 0;
    const Node* n = tree;
    while (!n->is_leaf) {
      const Inner* in = as_inner(n);
      const bool left = lt(key, in->right->min_key);
      path[depth++] = {in, left};
      n = left ? in->left : in->right;
    }
    const Leaf* leaf = as_leaf(n);
    const Item* end = leaf->items + leaf->count;
    const Item* pos = leaf_lower_bound(leaf, key);
    Item buffer[kLeafCapacity + 1];
    const auto prefix = static_cast<std::uint32_t>(pos - leaf->items);
    std::copy_n(leaf->items, prefix, buffer);
    buffer[prefix] = Item{key, value};
    const Node* sub;
    if (pos != end && eq(pos->key, key)) {
      *replaced = true;
      std::copy(pos + 1, end, buffer + prefix + 1);
      sub = make_leaf(buffer, leaf->count);
    } else {
      std::copy(pos, end, buffer + prefix + 1);
      sub = build_from_items(buffer, leaf->count + 1);
    }
    return rebuild_path(path, depth, sub);
  }

  /// Returns the new tree (owned, possibly null) after removing `key`; an
  /// absent key returns the original tree with one fresh reference.
  static const Node* remove_iter(const Node* tree, const K& key,
                                 bool* removed) {
    PathEntry path[kMaxPath];
    std::size_t depth = 0;
    const Node* n = tree;
    while (!n->is_leaf) {
      const Inner* in = as_inner(n);
      if (le(key, in->left->max_key)) {
        path[depth++] = {in, true};
        n = in->left;
      } else if (le(in->right->min_key, key)) {
        path[depth++] = {in, false};
        n = in->right;
      } else {
        return incref_ret(tree);  // key falls in the gap between subtrees
      }
    }
    const Leaf* leaf = as_leaf(n);
    const Item* end = leaf->items + leaf->count;
    const Item* pos = leaf_lower_bound(leaf, key);
    if (pos == end || !eq(pos->key, key)) return incref_ret(tree);
    *removed = true;
    const Node* sub = nullptr;
    if (leaf->count > 1) {
      Item buffer[kLeafCapacity];
      const auto prefix = static_cast<std::uint32_t>(pos - leaf->items);
      std::copy_n(leaf->items, prefix, buffer);
      std::copy(pos + 1, end, buffer + prefix);
      sub = make_leaf(buffer, leaf->count - 1);
    }
    return rebuild_path(path, depth, sub);
  }

  /// Splits into (< key, >= key); outputs owned, possibly null.
  static void split_rec(const Node* n, const K& key, const Node** lo_out,
                        const Node** hi_out) {
    if (n == nullptr) {
      *lo_out = nullptr;
      *hi_out = nullptr;
      return;
    }
    if (n->is_leaf) {
      const Leaf* leaf = as_leaf(n);
      const Item* pos = leaf_lower_bound(leaf, key);
      const auto prefix = static_cast<std::uint32_t>(pos - leaf->items);
      *lo_out = prefix == 0 ? nullptr : make_leaf(leaf->items, prefix);
      *hi_out = prefix == leaf->count ? nullptr
                                      : make_leaf(pos, leaf->count - prefix);
      return;
    }
    const Inner* in = as_inner(n);
    if (le(key, in->left->max_key)) {
      const Node* a = nullptr;
      const Node* b = nullptr;
      split_rec(in->left, key, &a, &b);
      *lo_out = a;
      *hi_out = join_nodes(b, incref_ret(in->right));
    } else {
      const Node* a = nullptr;
      const Node* b = nullptr;
      split_rec(in->right, key, &a, &b);
      *lo_out = join_nodes(incref_ret(in->left), a);
      *hi_out = b;
    }
  }

  // -------------------------------------------------------------------------
  // Public operations (mirroring the classic free-function API).
  // -------------------------------------------------------------------------

  static bool lookup(const Node* tree, const K& key, V* value_out) {
    const Node* n = tree;
    if (n == nullptr) return false;
    while (!n->is_leaf) {
      const Inner* in = as_inner(n);
      n = le(key, in->left->max_key) ? in->left : in->right;
    }
    const Leaf* leaf = as_leaf(n);
    const Item* end = leaf->items + leaf->count;
    const Item* pos = leaf_lower_bound(leaf, key);
    if (pos == end || !eq(pos->key, key)) return false;
    if (value_out != nullptr) *value_out = pos->value;
    return true;
  }

  static std::size_t size(const Node* tree) {
    return tree == nullptr ? 0 : tree->size;
  }

  static bool empty(const Node* tree) { return tree == nullptr; }

  static bool less_than_two_items(const Node* tree) { return size(tree) < 2; }

  static K min_key(const Node* tree) {
    assert(tree != nullptr);
    return tree->min_key;
  }

  static K max_key(const Node* tree) {
    assert(tree != nullptr);
    return tree->max_key;
  }

  static void for_range(const Node* tree, const K& lo, const K& hi,
                        Visitor visit) {
    if (tree == nullptr || lt(tree->max_key, lo) || lt(hi, tree->min_key)) {
      return;
    }
    if (tree->is_leaf) {
      const Leaf* leaf = as_leaf(tree);
      const Item* end = leaf->items + leaf->count;
      for (const Item* pos = leaf_lower_bound(leaf, lo);
           pos != end && le(pos->key, hi); ++pos) {
        visit(pos->key, pos->value);
      }
      return;
    }
    const Inner* in = as_inner(tree);
    for_range(in->left, lo, hi, visit);
    for_range(in->right, lo, hi, visit);
  }

  static void for_all(const Node* tree, Visitor visit) {
    for_range(tree, KeyTraits<K>::min(), KeyTraits<K>::max(), visit);
  }

  /// Key of rank `index` (0-based, ascending).  Precondition: index < size.
  static K select(const Node* tree, std::size_t index) {
    assert(tree != nullptr && index < tree->size);
    const Node* n = tree;
    while (!n->is_leaf) {
      const Inner* in = as_inner(n);
      if (index < in->left->size) {
        n = in->left;
      } else {
        index -= in->left->size;
        n = in->right;
      }
    }
    return as_leaf(n)->items[index].key;
  }

  static Ref insert(const Node* tree, const K& key, const V& value,
                    bool* replaced_out = nullptr) {
    bool replaced = false;
    const Node* result;
    if (tree == nullptr) {
      const Item item{key, value};
      result = make_leaf(&item, 1);
    } else {
      result = insert_iter(tree, key, value, &replaced);
    }
    if (replaced_out != nullptr) *replaced_out = replaced;
    return Ref::adopt(result);
  }

  static Ref remove(const Node* tree, const K& key,
                    bool* removed_out = nullptr) {
    bool removed = false;
    const Node* result =
        tree == nullptr ? nullptr : remove_iter(tree, key, &removed);
    if (removed_out != nullptr) *removed_out = removed;
    return Ref::adopt(result);
  }

  static Ref join(const Node* left, const Node* right) {
    assert(left == nullptr || right == nullptr ||
           lt(left->max_key, right->min_key));
    const Node* l = left;
    const Node* r = right;
    if (l != nullptr) incref(l);
    if (r != nullptr) incref(r);
    return Ref::adopt(join_nodes(l, r));
  }

  static void split(const Node* tree, const K& key, Ref* left_out,
                    Ref* right_out) {
    const Node* lo = nullptr;
    const Node* hi = nullptr;
    split_rec(tree, key, &lo, &hi);
    *left_out = Ref::adopt(lo);
    *right_out = Ref::adopt(hi);
  }

  static void split_evenly(const Node* tree, Ref* left_out, Ref* right_out,
                           K* split_key_out) {
    assert(size(tree) >= 2);
    const K pivot = select(tree, tree->size / 2);
    split(tree, pivot, left_out, right_out);
    *split_key_out = pivot;
  }

  static std::size_t height(const Node* tree) {
    return tree == nullptr ? 0 : tree->height;
  }

  static std::size_t leaf_count(const Node* tree) {
    if (tree == nullptr) return 0;
    if (tree->is_leaf) return 1;
    const Inner* in = as_inner(tree);
    return leaf_count(in->left) + leaf_count(in->right);
  }

  // -------------------------------------------------------------------------
  // Validation.
  // -------------------------------------------------------------------------

  static bool validate_rec(const Node* n, check::Report* report) {
    using detail::flag;
    const void* p = n;
#if CATS_CHECKED_ENABLED
    const std::uint64_t canary =
        n->check_canary.load(std::memory_order_relaxed);
    if (check::canary_state(canary) != check::CanaryState::kAlive) {
      // Do not read further fields of a node whose canary is gone: the rest
      // of the struct is as untrustworthy as the canary itself.
      return flag(report, "treap node %p: canary is %s (0x%016llx), not alive",
                  p, check::canary_name(canary),
                  static_cast<unsigned long long>(canary));
    }
#endif
    bool ok = true;
    if (n->rc.load(std::memory_order_relaxed) == 0) {
      ok = flag(report, "treap node %p: refcount is 0 but node is reachable",
                p);
    }
    if (n->is_leaf) {
      const Leaf* leaf = as_leaf(n);
      if (leaf->count < 1 || leaf->count > kLeafCapacity) {
        return flag(report, "treap leaf %p: count %u outside [1, %u]", p,
                    leaf->count, kLeafCapacity);
      }
      if (leaf->size != leaf->count) {
        ok = flag(report, "treap leaf %p: size cache %llu != count %u", p,
                  static_cast<unsigned long long>(leaf->size), leaf->count);
      }
      if (!eq(leaf->min_key, leaf->items[0].key)) {
        ok = flag(report,
                  "treap leaf %p: min_key cache %s != first item key %s", p,
                  fmt(leaf->min_key).c_str(), fmt(leaf->items[0].key).c_str());
      }
      if (!eq(leaf->max_key, leaf->items[leaf->count - 1].key)) {
        ok = flag(report,
                  "treap leaf %p: max_key cache %s != last item key %s", p,
                  fmt(leaf->max_key).c_str(),
                  fmt(leaf->items[leaf->count - 1].key).c_str());
      }
      for (std::uint32_t i = 1; i < leaf->count; ++i) {
        if (!lt(leaf->items[i - 1].key, leaf->items[i].key)) {
          ok = flag(report,
                    "treap leaf %p: items[%u].key %s >= items[%u].key %s "
                    "(not strictly ascending)",
                    p, i - 1, fmt(leaf->items[i - 1].key).c_str(), i,
                    fmt(leaf->items[i].key).c_str());
        }
      }
      if (leaf->height != 1) {
        ok = flag(report, "treap leaf %p: height %u != 1", p,
                  static_cast<unsigned>(leaf->height));
      }
      return ok;
    }
    const Inner* in = as_inner(n);
    if (in->left == nullptr || in->right == nullptr) {
      return flag(report, "treap inner %p: null child", p);
    }
    if (!validate_rec(in->left, report)) ok = false;
    if (!validate_rec(in->right, report)) ok = false;
    if (!ok) return false;  // child fields below are only meaningful if sound
    if (!lt(in->left->max_key, in->right->min_key)) {
      ok = flag(report,
                "treap inner %p: left max_key %s >= right min_key %s "
                "(BST order violated)",
                p, fmt(in->left->max_key).c_str(),
                fmt(in->right->min_key).c_str());
    }
    if (in->size != in->left->size + in->right->size) {
      ok = flag(report, "treap inner %p: size cache %llu != %llu + %llu", p,
                static_cast<unsigned long long>(in->size),
                static_cast<unsigned long long>(in->left->size),
                static_cast<unsigned long long>(in->right->size));
    }
    if (!eq(in->min_key, in->left->min_key)) {
      ok = flag(report, "treap inner %p: min_key cache %s != left's %s", p,
                fmt(in->min_key).c_str(), fmt(in->left->min_key).c_str());
    }
    if (!eq(in->max_key, in->right->max_key)) {
      ok = flag(report, "treap inner %p: max_key cache %s != right's %s", p,
                fmt(in->max_key).c_str(), fmt(in->right->max_key).c_str());
    }
    if (in->height != std::max(in->left->height, in->right->height) + 1) {
      ok = flag(report, "treap inner %p: height %u != max(%u, %u) + 1", p,
                static_cast<unsigned>(in->height),
                static_cast<unsigned>(in->left->height),
                static_cast<unsigned>(in->right->height));
    }
    if (std::abs(h(in->left) - h(in->right)) > 1) {
      ok = flag(report, "treap inner %p: unbalanced (heights %d vs %d)", p,
                h(in->left), h(in->right));
    }
    return ok;
  }

  static bool validate(const Node* tree, check::Report* report) {
    return tree == nullptr || validate_rec(tree, report);
  }

  static bool check_invariants(const Node* tree) {
    return validate(tree, nullptr);
  }
};

}  // namespace cats::treap
