// Lock-free skiplist with non-linearizable range queries.
//
// Stands in for java.util.concurrent.ConcurrentSkipListMap (`NonAtomicSL` in
// the paper's evaluation, §7): single-item operations are lock-free and
// linearizable (Fraser / Herlihy-Shavit scheme with marked next pointers),
// but a range query simply walks the bottom level and may observe an update
// in the middle of its traversal — it is NOT an atomic snapshot.  The test
// suite demonstrates that violation; the benchmarks use it as the
// "no-snapshot overhead" upper bound for mixed workloads.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "common/function_ref.hpp"
#include "common/types.hpp"
#include "reclaim/ebr.hpp"

namespace cats::skiplist {

class SkipList {
 public:
  struct Node;  // opaque; defined in skiplist.cpp

  static constexpr int kMaxLevel = 20;  // supports ~2^20 items at p = 1/2

  explicit SkipList(reclaim::Domain& domain = reclaim::Domain::global());
  ~SkipList();

  SkipList(const SkipList&) = delete;
  SkipList& operator=(const SkipList&) = delete;

  /// Lock-free; returns true iff the key was not present (the value is
  /// updated in place — atomically — when it was).
  bool insert(Key key, Value value);

  /// Lock-free; returns true iff the key was present.
  bool remove(Key key);

  /// Lock-free (wait-free in the absence of marked nodes on the path).
  bool lookup(Key key, Value* value_out = nullptr) const;

  /// Walks the bottom level across [lo, hi].  NOT linearizable: concurrent
  /// updates may be partially observed.
  void range_query(Key lo, Key hi, ItemVisitor visit) const;

  std::size_t size() const;

  reclaim::Domain& domain() const { return domain_; }

 private:
  /// Locates the insertion window for `key` on every level, physically
  /// unlinking marked nodes on the way.  Returns true if an unmarked node
  /// with `key` is present (then succs[0] is that node).
  bool find(Key key, Node** preds, Node** succs) const;
  static int random_level();

  reclaim::Domain& domain_;
  Node* head_;
  Node* tail_;
};

}  // namespace cats::skiplist
