#include "skiplist/skiplist.hpp"

#include <cstdint>

#include "common/rng.hpp"

namespace cats::skiplist {

// A marked next pointer (LSB set) means the owning node is logically
// deleted at that level; the pointer part still identifies the successor so
// that helpers can splice the node out.
//
// The head/tail sentinels carry an out-of-band rank instead of stealing the
// extreme key values: kHead orders before every key and kTail after every
// key, so kKeyMin and kKeyMax are ordinary insertable keys in every build
// type (the key-domain contract of common/types.hpp).
struct SkipList::Node {
  enum Rank : std::int8_t { kHead = -1, kItem = 0, kTail = 1 };

  Key key;
  std::atomic<Value> value;
  std::int8_t rank;
  int top_level;
  std::atomic<std::uintptr_t> next[kMaxLevel + 1];

  Node(Key k, Value v, Rank r, int levels)
      : key(k), value(v), rank(r), top_level(levels) {
    for (int i = 0; i <= kMaxLevel; ++i) {
      next[i].store(0, std::memory_order_relaxed);
    }
  }
};

namespace {

using Node = SkipList::Node;

constexpr std::uintptr_t kMarkBit = 1;

Node* ptr_of(std::uintptr_t word) {
  return reinterpret_cast<Node*>(word & ~kMarkBit);
}
bool is_marked(std::uintptr_t word) { return (word & kMarkBit) != 0; }
std::uintptr_t make_word(Node* node, bool marked) {
  return reinterpret_cast<std::uintptr_t>(node) | (marked ? kMarkBit : 0);
}

/// Node position strictly before `key` (head before everything, tail after).
bool node_before(const Node* n, Key key) {
  return n->rank == Node::kHead || (n->rank == Node::kItem && n->key < key);
}

/// Node holds exactly `key` (sentinels hold no key at all).
bool node_is(const Node* n, Key key) {
  return n->rank == Node::kItem && n->key == key;
}

}  // namespace

SkipList::SkipList(reclaim::Domain& domain) : domain_(domain) {
  tail_ = new Node(Key{}, 0, Node::kTail, kMaxLevel);
  head_ = new Node(Key{}, 0, Node::kHead, kMaxLevel);
  for (int i = 0; i <= kMaxLevel; ++i) {
    head_->next[i].store(make_word(tail_, false), std::memory_order_relaxed);
  }
}

// catslint: quiescent(destructor; caller guarantees no concurrent access)
SkipList::~SkipList() {
  Node* cur = head_;
  while (cur != nullptr) {
    Node* next = ptr_of(cur->next[0].load(std::memory_order_relaxed));
    delete cur;  // catslint: direct-delete(quiescent teardown)
    cur = next;
  }
}

int SkipList::random_level() {
  thread_local Xoshiro256 rng(
      mix64(reinterpret_cast<std::uintptr_t>(&rng) ^ 0x5bd1e995u));
  // Geometric with p = 1/2: count trailing ones of a random word.
  const std::uint64_t word = rng.next();
  int level = 0;
  while (level < kMaxLevel && ((word >> level) & 1) != 0) ++level;
  return level;
}

// Herlihy-Shavit `find`: snips out marked nodes on the search path and
// returns the pred/succ window per level.  Restarts when a CAS loses.
bool SkipList::find(Key key, Node** preds, Node** succs) const {
retry:
  while (true) {
    Node* pred = head_;
    for (int level = kMaxLevel; level >= 0; --level) {
      std::uintptr_t curr_word = pred->next[level].load(
          std::memory_order_acquire);
      Node* curr = ptr_of(curr_word);
      while (true) {
        std::uintptr_t succ_word =
            curr->next[level].load(std::memory_order_acquire);
        while (is_marked(succ_word)) {
          // curr is logically deleted at this level: splice it out.
          std::uintptr_t expected = make_word(curr, false);
          if (!pred->next[level].compare_exchange_strong(
                  expected, make_word(ptr_of(succ_word), false),
                  std::memory_order_acq_rel)) {
            goto retry;
          }
          curr = ptr_of(succ_word);
          succ_word = curr->next[level].load(std::memory_order_acquire);
        }
        if (node_before(curr, key)) {
          pred = curr;
          curr = ptr_of(succ_word);
        } else {
          break;
        }
      }
      preds[level] = pred;
      succs[level] = curr;
    }
    return node_is(succs[0], key);
  }
}

bool SkipList::insert(Key key, Value value) {
  reclaim::Domain::Guard guard(domain_);
  Node* preds[kMaxLevel + 1];
  Node* succs[kMaxLevel + 1];
  const int top = random_level();
  while (true) {
    if (find(key, preds, succs)) {
      // Present: update the value in place (linearizes at the store).
      succs[0]->value.store(value, std::memory_order_release);
      return false;
    }
    auto* node = new Node(key, value, Node::kItem, top);
    for (int level = 0; level <= top; ++level) {
      node->next[level].store(make_word(succs[level], false),
                              std::memory_order_relaxed);
    }
    // Linearization point: linking at the bottom level.
    std::uintptr_t expected = make_word(succs[0], false);
    if (!preds[0]->next[0].compare_exchange_strong(
            expected, make_word(node, false), std::memory_order_acq_rel)) {
      delete node;  // catslint: direct-delete(never published; CAS lost)
      continue;
    }
    // Link the upper levels.  A concurrent remove may mark the node at any
    // moment; marked forward pointers stop the linking (the node is
    // logically gone, higher links would resurrect it).
    for (int level = 1; level <= top; ++level) {
      while (true) {
        std::uintptr_t node_next =
            node->next[level].load(std::memory_order_acquire);
        if (is_marked(node_next)) return true;  // removed concurrently
        Node* succ = succs[level];
        if (ptr_of(node_next) != succ) {
          // Refresh our forward pointer to the current window first.
          if (!node->next[level].compare_exchange_strong(
                  node_next, make_word(succ, false),
                  std::memory_order_acq_rel)) {
            continue;  // raced with a marker; re-check
          }
        }
        std::uintptr_t expected = make_word(succ, false);
        if (preds[level]->next[level].compare_exchange_strong(
                expected, make_word(node, false),
                std::memory_order_acq_rel)) {
          break;  // linked at this level
        }
        find(key, preds, succs);           // window moved: recompute
        if (succs[0] != node) return true;  // node was removed meanwhile
      }
    }
    return true;
  }
}

bool SkipList::remove(Key key) {
  reclaim::Domain::Guard guard(domain_);
  Node* preds[kMaxLevel + 1];
  Node* succs[kMaxLevel + 1];
  if (!find(key, preds, succs)) return false;
  Node* victim = succs[0];
  // Mark the upper levels top-down.
  for (int level = victim->top_level; level >= 1; --level) {
    std::uintptr_t word = victim->next[level].load(std::memory_order_acquire);
    while (!is_marked(word)) {
      victim->next[level].compare_exchange_weak(
          word, word | kMarkBit, std::memory_order_acq_rel);
    }
  }
  // Level 0 decides logical deletion.
  std::uintptr_t word = victim->next[0].load(std::memory_order_acquire);
  while (true) {
    if (is_marked(word)) return false;  // someone else removed it
    if (victim->next[0].compare_exchange_strong(word, word | kMarkBit,
                                                std::memory_order_acq_rel)) {
      // We are the logical deleter: ensure physical unlinking, then retire.
      find(key, preds, succs);
      domain_.retire(victim);
      return true;
    }
  }
}

bool SkipList::lookup(Key key, Value* value_out) const {
  reclaim::Domain::Guard guard(domain_);
  Node* pred = head_;
  Node* curr = nullptr;
  for (int level = kMaxLevel; level >= 0; --level) {
    curr = ptr_of(pred->next[level].load(std::memory_order_acquire));
    while (node_before(curr, key)) {
      pred = curr;
      curr = ptr_of(curr->next[level].load(std::memory_order_acquire));
    }
  }
  if (!node_is(curr, key)) return false;
  if (is_marked(curr->next[0].load(std::memory_order_acquire))) return false;
  if (value_out != nullptr) {
    *value_out = curr->value.load(std::memory_order_acquire);
  }
  return true;
}

void SkipList::range_query(Key lo, Key hi, ItemVisitor visit) const {
  reclaim::Domain::Guard guard(domain_);
  Node* pred = head_;
  for (int level = kMaxLevel; level >= 0; --level) {
    Node* curr = ptr_of(pred->next[level].load(std::memory_order_acquire));
    while (node_before(curr, lo)) {
      pred = curr;
      curr = ptr_of(curr->next[level].load(std::memory_order_acquire));
    }
  }
  Node* curr = ptr_of(pred->next[0].load(std::memory_order_acquire));
  // The tail sentinel's rank terminates the walk regardless of hi.
  while (curr->rank == Node::kItem && curr->key <= hi) {
    const std::uintptr_t next_word =
        curr->next[0].load(std::memory_order_acquire);
    if (!is_marked(next_word) && curr->key >= lo) {
      visit(curr->key, curr->value.load(std::memory_order_acquire));
    }
    curr = ptr_of(next_word);
  }
}

std::size_t SkipList::size() const {
  reclaim::Domain::Guard guard(domain_);
  std::size_t count = 0;
  Node* curr = ptr_of(head_->next[0].load(std::memory_order_acquire));
  while (curr != tail_) {
    if (!is_marked(curr->next[0].load(std::memory_order_acquire))) ++count;
    curr = ptr_of(curr->next[0].load(std::memory_order_acquire));
  }
  return count;
}

}  // namespace cats::skiplist
