#include "vskip/versioned_skiplist.hpp"

#include <algorithm>
#include <cstdint>

#include "common/backoff.hpp"
#include "common/rng.hpp"

namespace cats::vskip {

/// One version of a key's state.  `next` points to the previous (older)
/// record; it is atomic only so that pruning can detach dead suffixes.
struct VersionedSkipList::Record {
  /// 0 = pending (not yet ordered); assigned once, by writer or helper.
  std::atomic<std::uint64_t> version{0};
  const Value value;
  const bool deleted;
  std::atomic<Record*> next;

  Record(Value v, bool d, Record* n) : value(v), deleted(d), next(n) {}
};

/// Per-key index node.  Never physically removed: logical removal is a
/// tombstone record, so the index needs no deletion marks.
///
/// Head/tail sentinels carry an out-of-band rank rather than stealing the
/// extreme key values, so kKeyMin and kKeyMax are ordinary insertable keys
/// in every build type (the key-domain contract of common/types.hpp).
struct VersionedSkipList::Node {
  enum Rank : std::int8_t { kHead = -1, kItem = 0, kTail = 1 };

  const Key key;
  const std::int8_t rank;
  const int top_level;
  std::atomic<Record*> records{nullptr};
  std::atomic<Node*> next[kMaxLevel + 1];

  Node(Key k, Rank r, int levels) : key(k), rank(r), top_level(levels) {
    for (auto& n : next) n.store(nullptr, std::memory_order_relaxed);
  }
};

namespace {

int random_level() {
  thread_local Xoshiro256 rng(
      mix64(reinterpret_cast<std::uintptr_t>(&rng) ^ 0x9e3779b9u));
  const std::uint64_t word = rng.next();
  int level = 0;
  while (level < VersionedSkipList::kMaxLevel && ((word >> level) & 1) != 0) {
    ++level;
  }
  return level;
}

void record_deleter(void* p) {
  // catslint: direct-delete(EBR deleter; runs after the grace period)
  delete static_cast<VersionedSkipList::Record*>(p);
}

using Node = VersionedSkipList::Node;

/// Node position strictly before `key` (head before everything, tail after).
bool node_before(const Node* n, Key key) {
  return n->rank == Node::kHead || (n->rank == Node::kItem && n->key < key);
}

/// Node holds exactly `key` (sentinels hold no key at all).
bool node_is(const Node* n, Key key) {
  return n->rank == Node::kItem && n->key == key;
}

}  // namespace

VersionedSkipList::VersionedSkipList(reclaim::Domain& domain)
    : domain_(domain) {
  tail_ = new Node(Key{}, Node::kTail, kMaxLevel);
  head_ = new Node(Key{}, Node::kHead, kMaxLevel);
  for (int i = 0; i <= kMaxLevel; ++i) {
    head_->next[i].store(tail_, std::memory_order_relaxed);
  }
  for (auto& slot : scan_slots_) slot->store(0, std::memory_order_relaxed);
}

// catslint: quiescent(destructor; caller guarantees no concurrent access)
VersionedSkipList::~VersionedSkipList() {
  Node* cur = head_;
  while (cur != nullptr) {
    Node* next = cur->next[0].load(std::memory_order_relaxed);
    Record* rec = cur->records.load(std::memory_order_relaxed);
    while (rec != nullptr) {
      Record* older = rec->next.load(std::memory_order_relaxed);
      delete rec;  // catslint: direct-delete(quiescent teardown)
      rec = older;
    }
    delete cur;  // catslint: direct-delete(quiescent teardown)
    cur = next;
  }
}

VersionedSkipList::Node* VersionedSkipList::find_node(Key key) const {
  Node* pred = head_;
  Node* curr = nullptr;
  for (int level = kMaxLevel; level >= 0; --level) {
    curr = pred->next[level].load(std::memory_order_acquire);
    while (node_before(curr, key)) {
      pred = curr;
      curr = curr->next[level].load(std::memory_order_acquire);
    }
  }
  return node_is(curr, key) ? curr : nullptr;
}

VersionedSkipList::Node* VersionedSkipList::get_or_insert_node(Key key) {
  Node* preds[kMaxLevel + 1];
  Node* succs[kMaxLevel + 1];
  while (true) {
    // Locate the window on every level.
    Node* pred = head_;
    for (int level = kMaxLevel; level >= 0; --level) {
      Node* curr = pred->next[level].load(std::memory_order_acquire);
      while (node_before(curr, key)) {
        pred = curr;
        curr = curr->next[level].load(std::memory_order_acquire);
      }
      preds[level] = pred;
      succs[level] = curr;
    }
    if (node_is(succs[0], key)) return succs[0];

    const int top = random_level();
    auto* node = new Node(key, Node::kItem, top);
    for (int level = 0; level <= top; ++level) {
      node->next[level].store(succs[level], std::memory_order_relaxed);
    }
    Node* expected = succs[0];
    if (!preds[0]->next[0].compare_exchange_strong(
            expected, node, std::memory_order_acq_rel)) {
      delete node;  // catslint: direct-delete(never published; CAS lost)
      continue;  // somebody changed the bottom window; retry
    }
    // Upper levels: nodes are immortal, so linking is simple best-effort
    // with window refresh on failure.
    for (int level = 1; level <= top; ++level) {
      while (true) {
        Node* succ = succs[level];
        node->next[level].store(succ, std::memory_order_release);
        Node* exp = succ;
        if (preds[level]->next[level].compare_exchange_strong(
                exp, node, std::memory_order_acq_rel)) {
          break;
        }
        // Recompute the window at this level only.
        Node* p = head_;
        for (int l = kMaxLevel; l >= level; --l) {
          Node* c = p->next[l].load(std::memory_order_acquire);
          while (node_before(c, key)) {
            p = c;
            c = c->next[l].load(std::memory_order_acquire);
          }
          if (l == level) {
            if (c == node) goto next_level;  // someone linked us already
            preds[level] = p;
            succs[level] = c;
          }
        }
      }
    next_level:;
    }
    return node;
  }
}

std::uint64_t VersionedSkipList::finalize(Record* record) const {
  std::uint64_t w = record->version.load(std::memory_order_acquire);
  if (w != 0) return w;
  std::uint64_t fresh = version_.load(std::memory_order_acquire);
  std::uint64_t expected = 0;
  record->version.compare_exchange_strong(expected, fresh,
                                          std::memory_order_acq_rel);
  return record->version.load(std::memory_order_acquire);
}

std::uint64_t VersionedSkipList::min_active_scan() const {
  std::uint64_t m = version_.load(std::memory_order_acquire);
  for (const auto& slot : scan_slots_) {
    const std::uint64_t announced = slot->load(std::memory_order_acquire);
    if (announced != 0) m = std::min(m, announced);
  }
  return m;
}

// Detaches and retires every record strictly older than the newest record
// with version <= min_needed: no active or future scan can select them.
void VersionedSkipList::prune(Node* node, std::uint64_t min_needed) {
  Record* rec = node->records.load(std::memory_order_acquire);
  while (rec != nullptr) {
    const std::uint64_t w = rec->version.load(std::memory_order_acquire);
    if (w != 0 && w <= min_needed) break;  // newest scannable record
    rec = rec->next.load(std::memory_order_acquire);
  }
  if (rec == nullptr) return;
  Record* suffix = rec->next.load(std::memory_order_acquire);
  if (suffix == nullptr) return;
  if (rec->next.compare_exchange_strong(suffix, nullptr,
                                        std::memory_order_acq_rel)) {
    // We won the detach: retire the whole suffix.
    while (suffix != nullptr) {
      Record* older = suffix->next.load(std::memory_order_relaxed);
      domain_.retire(suffix, &record_deleter);
      suffix = older;
    }
  }
}

bool VersionedSkipList::write(Key key, Value value, bool deleted) {
  reclaim::Domain::Guard guard(domain_);
  Node* node = get_or_insert_node(key);
  auto* rec = new Record(value, deleted, nullptr);
  Record* head = node->records.load(std::memory_order_acquire);
  do {
    rec->next.store(head, std::memory_order_relaxed);
  } while (!node->records.compare_exchange_weak(head, rec,
                                                std::memory_order_acq_rel));
  finalize(rec);
  // Logical state before this write = the previous newest record.
  Record* prev = rec->next.load(std::memory_order_acquire);
  const bool was_present = prev != nullptr && !prev->deleted;

  // Opportunistic chain maintenance.
  int length = 0;
  for (Record* r = rec; r != nullptr && length < 5;
       r = r->next.load(std::memory_order_acquire)) {
    ++length;
  }
  if (length >= 4) prune(node, min_active_scan());
  return was_present;
}

bool VersionedSkipList::insert(Key key, Value value) {
  return !write(key, value, /*deleted=*/false);
}

bool VersionedSkipList::remove(Key key) {
  // Avoid creating index nodes for keys that were never inserted.
  {
    reclaim::Domain::Guard guard(domain_);
    Node* node = find_node(key);
    if (node == nullptr) return false;
    Record* head = node->records.load(std::memory_order_acquire);
    if (head == nullptr || head->deleted) return false;
  }
  return write(key, Value{}, /*deleted=*/true);
}

bool VersionedSkipList::lookup(Key key, Value* value_out) const {
  reclaim::Domain::Guard guard(domain_);
  Node* node = find_node(key);
  if (node == nullptr) return false;
  Record* head = node->records.load(std::memory_order_acquire);
  if (head == nullptr) return false;
  finalize(head);  // the newest committed state
  if (head->deleted) return false;
  if (value_out != nullptr) *value_out = head->value;
  return true;
}

void VersionedSkipList::range_query(Key lo, Key hi, ItemVisitor visit) const {
  reclaim::Domain::Guard guard(domain_);

  // Announce before incrementing so pruners always see a version no newer
  // than the one this scan will use.
  const std::uint64_t announced = version_.load(std::memory_order_acquire);
  std::size_t slot = 0;
  {
    thread_local std::size_t preferred =
        static_cast<std::size_t>(mix64(
            reinterpret_cast<std::uintptr_t>(&slot))) % kScanSlots;
    Backoff backoff;
    while (true) {
      bool claimed = false;
      for (std::size_t probe = 0; probe < kScanSlots; ++probe) {
        const std::size_t index = (preferred + probe) % kScanSlots;
        std::uint64_t expected = 0;
        if (scan_slots_[index]->compare_exchange_strong(
                expected, announced, std::memory_order_acq_rel)) {
          slot = index;
          claimed = true;
          break;
        }
      }
      if (claimed) break;
      backoff.spin();
    }
  }

  // KiWi's linearization: the scan owns version v; records finalized later
  // get versions > v and are invisible.
  const std::uint64_t v =
      version_.fetch_add(1, std::memory_order_acq_rel);

  // Walk the bottom level across the range.
  Node* pred = head_;
  for (int level = kMaxLevel; level >= 0; --level) {
    Node* curr = pred->next[level].load(std::memory_order_acquire);
    while (node_before(curr, lo)) {
      pred = curr;
      curr = curr->next[level].load(std::memory_order_acquire);
    }
  }
  Node* curr = pred->next[0].load(std::memory_order_acquire);
  // The tail sentinel's rank terminates the walk regardless of hi.
  while (curr->rank == Node::kItem && curr->key <= hi) {
    Record* rec = curr->records.load(std::memory_order_acquire);
    while (rec != nullptr) {
      if (finalize(rec) <= v) break;  // newest record visible at v
      rec = rec->next.load(std::memory_order_acquire);
    }
    if (rec != nullptr && !rec->deleted) visit(curr->key, rec->value);
    curr = curr->next[0].load(std::memory_order_acquire);
  }

  scan_slots_[slot]->store(0, std::memory_order_release);
}

std::size_t VersionedSkipList::size() const {
  reclaim::Domain::Guard guard(domain_);
  std::size_t count = 0;
  Node* curr = head_->next[0].load(std::memory_order_acquire);
  while (curr != tail_) {
    Record* head = curr->records.load(std::memory_order_acquire);
    if (head != nullptr && !head->deleted) ++count;
    curr = curr->next[0].load(std::memory_order_acquire);
  }
  return count;
}

}  // namespace cats::vskip
