// Versioned skiplist — the KiWi-mechanism baseline.
//
// Stand-in for KiWi (Basin et al., PPoPP'17), reproducing the mechanism the
// paper identifies as its scalability limit (§3): every range query
// atomically increments a GLOBAL version counter, and updates keep
// per-key version chains so that a scan at version v reads, for every key,
// the newest record with version <= v.  Update/scan ordering uses KiWi's
// helping rule: a record is linked with a PENDING version and assigned its
// real version afterwards (by the writer or by any scan that encounters it),
// which guarantees that a record is ordered after any scan it was not
// visible to.
//
// Simplifications vs. the full KiWi (documented in DESIGN.md): one node per
// key in a skiplist index instead of multi-key chunks with rebalancing, and
// key nodes are never physically removed (removal writes a tombstone
// record).  Neither changes the global-version hot spot or the version-chain
// cost that the paper's Fig. 9/10 comparisons exercise.
//
// Old records are pruned using a scan-announcement array: an active scan
// publishes its version; writers may free chain suffixes no announced scan
// can need.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "common/function_ref.hpp"
#include "common/padded.hpp"
#include "common/types.hpp"
#include "reclaim/ebr.hpp"

namespace cats::vskip {

class VersionedSkipList {
 public:
  struct Node;    // per-key index node (immortal)
  struct Record;  // one version of a key's state

  static constexpr int kMaxLevel = 20;
  static constexpr std::size_t kScanSlots = 256;

  explicit VersionedSkipList(
      reclaim::Domain& domain = reclaim::Domain::global());
  ~VersionedSkipList();

  VersionedSkipList(const VersionedSkipList&) = delete;
  VersionedSkipList& operator=(const VersionedSkipList&) = delete;

  /// Lock-free; true iff the key was not logically present before.
  bool insert(Key key, Value value);
  /// Lock-free; true iff the key was logically present.
  bool remove(Key key);
  /// Lock-free; does not touch the global version counter.
  bool lookup(Key key, Value* value_out = nullptr) const;
  /// Linearizable snapshot scan; increments the global version counter
  /// (the KiWi hot spot).
  void range_query(Key lo, Key hi, ItemVisitor visit) const;

  std::size_t size() const;
  std::uint64_t version() const {
    return version_.load(std::memory_order_relaxed);
  }

  reclaim::Domain& domain() const { return domain_; }

 private:
  bool write(Key key, Value value, bool deleted);
  Node* find_node(Key key) const;
  Node* get_or_insert_node(Key key);
  /// Assigns a real version to a pending record (helping rule) and returns
  /// the assigned version.
  std::uint64_t finalize(Record* record) const;
  /// Smallest version any active scan announced (or current version).
  std::uint64_t min_active_scan() const;
  void prune(Node* node, std::uint64_t min_needed);

  reclaim::Domain& domain_;
  alignas(kCacheLine) mutable std::atomic<std::uint64_t> version_{1};
  mutable Padded<std::atomic<std::uint64_t>> scan_slots_[kScanSlots];
  Node* head_;
  Node* tail_;
};

}  // namespace cats::vskip
