// BasicLfcaTree — the lock-free contention adapting search tree.
//
// The primary data structure of Winblad, Sagonas & Jonsson, "Lock-free
// Contention Adapting Search Trees" (SPAA 2018).  An ordered key-value map
// with:
//
//   * wait-free lookup,
//   * lock-free insert, remove and linearizable range query,
//   * runtime adaptation of synchronization granularity: base nodes split
//     under contention and join when contention is low or range queries
//     repeatedly span several base nodes.
//
// Internally, route nodes form a binary search tree whose leaves (base
// nodes) hold immutable containers supplied by the policy `C` — the paper's
// "Flexible" property (container_policy.hpp provides the paper's fat-leaf
// treap and a flat-array alternative).  Updates replace a base node with
// CAS; range queries replace every base node in their span with
// `range_base` markers that other threads can help complete (or first try
// a read-only double-collect scan, §6).  Unlinked nodes are reclaimed
// through epoch-based reclamation (src/reclaim).
//
// `LfcaTree` is the paper's configuration (treap containers).
//
// Thread safety: all public member functions may be called concurrently
// from any number of threads.  Item visitors run inside an epoch critical
// section and must not call back into functions that block.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "common/catomic.hpp"
#include "common/function_ref.hpp"
#include "common/padded.hpp"
#include "common/types.hpp"
#include "lfca/config.hpp"
#include "obs/counters.hpp"
#include "obs/obs.hpp"
#include "obs/topology.hpp"
#include "lfca/container_policy.hpp"
#include "lfca/node.hpp"
#include "lfca/stats.hpp"
#include "reclaim/ebr.hpp"

namespace cats::lfca {

template <class C>
class BasicLfcaTree {
 public:
  using Container = C;
  /// Key/value/comparator types come from the container policy; the
  /// class-scope names shadow the global integer-key aliases so the whole
  /// implementation below reads unchanged for any instantiation.
  using Key = typename C::Key;
  using Value = typename C::Value;
  using Compare = typename C::Compare;
  using ItemVisitor = BasicItemVisitor<Key, Value>;

  explicit BasicLfcaTree(reclaim::Domain& domain = reclaim::Domain::global(),
                         const Config& config = Config());
  ~BasicLfcaTree();

  BasicLfcaTree(const BasicLfcaTree&) = delete;
  BasicLfcaTree& operator=(const BasicLfcaTree&) = delete;

  /// Inserts (key, value), replacing the value if the key exists.
  /// Returns true iff the key was not present before (lock-free).
  bool insert(Key key, Value value);

  /// Removes the item with `key` if present; returns true iff it was
  /// present (lock-free).
  bool remove(Key key);

  /// Returns true iff `key` is present; writes its value through
  /// `value_out` when non-null (wait-free).
  bool lookup(Key key, Value* value_out = nullptr) const;

  /// Visits every item with lo <= key <= hi in ascending key order, as one
  /// linearizable snapshot (lock-free).
  void range_query(Key lo, Key hi, ItemVisitor visit) const;

  /// Number of items (walks the whole tree; linearizable only in
  /// quiescence).
  std::size_t size() const;

  /// Number of route nodes (Tables 1 & 2).  Racy walk; exact in quiescence.
  std::size_t route_node_count() const;

  /// Live structural snapshot: walks the whole route tree inside one EBR
  /// guard and returns the node census, depth and occupancy histograms and
  /// contention-statistic distribution (obs/topology.hpp).  Safe to call
  /// from any thread concurrently with updates, range queries and
  /// adaptations; counts are exact in quiescence and off by at most the
  /// adaptations that raced the walk otherwise.
  obs::TopologySnapshot collect_topology() const;

  /// Verifies structural invariants (route-key ordering vs. container key
  /// ranges, container invariants are the policy's own concern).  Intended
  /// for tests, in quiescence.
  bool check_integrity() const;

  /// Deep validator (CATS_CHECKED builds): walks every reachable node under
  /// one EBR guard and checks route-key BST order, base-node containment,
  /// join-protocol reachability rules, container invariants and node
  /// canaries (check/tree_check.hpp).  With `expect_quiescent` false, only
  /// the subset of invariants that hold mid-operation is enforced — safe to
  /// call concurrently with updates (used by --check-every-n-ops).  Appends
  /// one line per violated invariant to `diagnostics` when non-null.
  /// Always returns true when the CATS_CHECKED gate is off.
  bool validate(std::string* diagnostics = nullptr,
                bool expect_quiescent = true) const;

  /// Maintenance/testing extension (not in the paper): forces a
  /// high-contention adaptation of the base node covering `hint`,
  /// regardless of its statistics.  Useful to pre-shard a tree for a known
  /// access pattern and to build structure deterministically in tests.
  /// Returns true iff a split was installed.
  bool force_split(Key hint);
  /// Counterpart: forces a low-contention adaptation (join) of the base
  /// node covering `hint`.  Returns true iff the join completed.
  bool force_join(Key hint);

  /// Snapshot of the operation counters.
  Stats stats() const;
  /// Resets the operation counters (not the tree).
  void reset_stats();

  /// Test-only instrumentation: when set, all_in_range invokes it at its
  /// two decision points — phase 0 after the initial descent of a find_first
  /// attempt, phase 1 after each advance step finds its next candidate base
  /// node (before this query tries to replace it).  Regression tests use it
  /// to drive concurrent mutations into exact points of the retry protocol
  /// (see lfca_test.cpp); the hook may re-enter the tree, including nested
  /// range queries.  Must only be set in quiescence and cleared before the
  /// tree is destroyed.  Empty (zero-cost check) in normal operation.
  std::function<void(int)> testing_range_step_hook;

  const Config& config() const { return config_; }
  reclaim::Domain& domain() const { return domain_; }

 private:
  using Node = detail::Node<C>;
  using NodeType = detail::NodeType;
  using ResultStorage = detail::ResultStorage<C>;

  enum class ContentionInfo { kContended, kUncontended, kNoInfo };

  // --- help functions (paper Fig. 3/4) -----------------------------------
  bool try_replace(Node* b, Node* new_b);
  static bool is_replaceable(const Node* n);
  void help_if_needed(Node* n);
  int new_stat(const Node* n, ContentionInfo info) const;
  void adapt_if_needed(Node* b);

  // --- single-item operations (paper Fig. 4) -----------------------------
  enum class UpdateKind { kInsert, kRemove };
  bool do_update(UpdateKind kind, Key key, Value value);
  Node* find_base_node(Key key) const;

  // --- range queries (paper Fig. 5 and §6) --------------------------------
  const typename C::Node* all_in_range(Key lo, Key hi, ResultStorage* help_s);
  Node* find_base_stack(Key key, std::vector<Node*>& stack) const;
  static Node* leftmost_and_stack(Node* n, std::vector<Node*>& stack);
  static Node* find_next_base_stack(std::vector<Node*>& stack);
  /// Read-only double-collect scan; on success fills `bases` with a
  /// consistent cut of base nodes covering [lo, hi] and returns true.
  bool try_optimistic_collect(Key lo, Key hi,
                              std::vector<Node*>& bases) const;

  // --- adaptations (paper Fig. 7) -----------------------------------------
  bool high_contention_adaptation(Node* b);
  bool low_contention_adaptation(Node* b);
  Node* secure_join(Node* b, bool left_child);
  void complete_join(Node* m);
  Node* parent_of(Node* r) const;

  void retire(Node* n);
  void count_range_query(std::size_t bases_traversed) const;
  /// Route depth of the base node currently covering `key` (for the
  /// adaptation trace; racy walk, adaptation events only).
  std::uint32_t depth_of(Key key) const;

  /// Paper counters: always maintained (Tables 1-2 and the adaptation
  /// tests read them through stats()).
  void count(TreeCounter c, std::uint64_t n = 1) const {
    counters_.add(c, n);
  }
  /// Diagnostic counters: compiled to nothing when CATS_OBS is off.
  void count_obs([[maybe_unused]] TreeCounter c,
                 [[maybe_unused]] std::uint64_t n = 1) const {
    CATS_OBS_ONLY(counters_.add(c, n));
  }

  reclaim::Domain& domain_;
  const Config config_;
  cats::atomic<Node*> root_;

  /// Per-tree statistics: per-thread sharded cells with relaxed increments,
  /// aggregated on read (obs/counters.hpp).
  mutable obs::ShardedCounters<static_cast<std::size_t>(TreeCounter::kCount)>
      counters_;
};

/// The paper's configuration: fat-leaf treap leaf containers.
using LfcaTree = BasicLfcaTree<TreapContainer>;
/// The flat-array variant (k-ary/Leaplist-style containers, §3).
using LfcaTreeChunk = BasicLfcaTree<ChunkContainer>;
/// Interned string keys over both container families (common/strkey.hpp).
using LfcaStrTree = BasicLfcaTree<StrTreapContainer>;
using LfcaStrTreeChunk = BasicLfcaTree<StrChunkContainer>;

extern template class BasicLfcaTree<TreapContainer>;
extern template class BasicLfcaTree<ChunkContainer>;
extern template class BasicLfcaTree<StrTreapContainer>;
extern template class BasicLfcaTree<StrChunkContainer>;

}  // namespace cats::lfca
