// Heuristic constants of the LFCA tree (paper Fig. 3, lines 2-6).
//
// The statistics value of a base node drifts up under contention and down
// when operations run unimpeded or when range queries span several base
// nodes; crossing `high_cont` triggers a split, crossing `low_cont` a join.
// The paper fixes these at compile time; we make them per-tree so the
// ablation benchmarks (bench/bench_ablation.cpp) can probe the design space.
#pragma once

namespace cats::lfca {

struct Config {
  /// Added to the statistics value when an update detected contention
  /// (failed CAS or irreplaceable base node).  Larger than the decrease
  /// constant so splits happen quickly under sustained contention.
  int cont_contrib = 250;

  /// Subtracted when an update completed without detecting contention.
  int low_cont_contrib = 1;

  /// Subtracted when the base node took part in a range query that needed
  /// more than one base node (steers the structure toward coarser leaves).
  int range_contrib = 100;

  /// Statistics threshold above which a high-contention adaptation (split)
  /// is issued.
  int high_cont = 1000;

  /// Statistics threshold below which a low-contention adaptation (join)
  /// is issued.
  int low_cont = -1000;

  /// Enables the §6 optimization: range queries first attempt a read-only
  /// double-collect scan and only fall back to the node-replacing algorithm
  /// when validation fails.
  bool optimistic_ranges = true;
};

}  // namespace cats::lfca
