// Runtime statistics of an LFCA tree, reproducing the measurements of the
// paper's Tables 1 and 2 (route-node count, base nodes traversed per range
// query, split and join rates).
#pragma once

#include <cstdint>

namespace cats::lfca {

/// Snapshot of the tree's internal counters.  Counters are maintained with
/// relaxed atomics; values are exact in quiescence and slightly approximate
/// under concurrency, which is all the paper's tables require.
struct Stats {
  std::uint64_t splits = 0;
  std::uint64_t joins = 0;
  std::uint64_t aborted_joins = 0;
  /// Completed range queries (counted by the initiating thread).
  std::uint64_t range_queries = 0;
  /// Total base nodes traversed by completed range queries.
  std::uint64_t range_bases_traversed = 0;
  /// Range queries answered by the §6 read-only fast path.
  std::uint64_t optimistic_ranges = 0;
  /// Range queries that fell back to the node-replacing algorithm.
  std::uint64_t fallback_ranges = 0;
  /// Calls that helped another thread's operation.
  std::uint64_t helps = 0;

  double traversed_per_query() const {
    return range_queries == 0
               ? 0.0
               : static_cast<double>(range_bases_traversed) /
                     static_cast<double>(range_queries);
  }
};

}  // namespace cats::lfca
