// Runtime statistics of an LFCA tree.
//
// The original eight counters reproduce the measurements of the paper's
// Tables 1 and 2 (split and join rates, base nodes traversed per range
// query); the remaining counters instrument the contention-detection and
// help machinery itself: CAS failures per operation type, blocked-retry
// loops, split/join attempts vs. successes vs. aborts, and the §6
// optimistic-range fast path.  All counters are maintained in a per-tree
// sharded block (obs/counters.hpp): per-thread cache-line-padded cells with
// relaxed increments on the hot paths, aggregated on read — exact in
// quiescence, slightly approximate under concurrency, which is all the
// paper's tables (and these diagnostics) require.
#pragma once

#include <cstdint>

#include "obs/export.hpp"

namespace cats::lfca {

/// Per-tree counter indices (the storage lives in BasicLfcaTree).
enum class TreeCounter : std::size_t {
  // --- the paper's Tables 1-2 measurements (always maintained) -----------
  kSplits,
  kJoins,
  kAbortedJoins,
  kRangeQueries,
  kRangeBasesTraversed,
  kOptimisticRanges,
  kFallbackRanges,
  kHelps,
  // --- contention-detection diagnostics (CATS_OBS builds only) ------------
  kSplitAttempts,        // high_contention_adaptation entered
  kSplitFailedCas,       // split built but lost its installing CAS
  kSplitRefusedSmall,    // split refused: leaf had < 2 items
  kJoinAttempts,         // low_contention_adaptation entered
  kUpdateCasFails,       // insert/remove lost the base-replacing CAS
  kUpdateBlockedRetries, // insert/remove found an irreplaceable base node
  kContentionEvents,     // contention fed into a base node's statistics
  kRangeCasFails,        // range query lost a range_base-installing CAS
  kHelpJoins,            // help_if_needed completed another thread's join
  kHelpRanges,           // help_if_needed joined another thread's range query
  kCount
};

inline const char* tree_counter_name(TreeCounter c) {
  switch (c) {
    case TreeCounter::kSplits: return "splits";
    case TreeCounter::kJoins: return "joins";
    case TreeCounter::kAbortedJoins: return "aborted_joins";
    case TreeCounter::kRangeQueries: return "range_queries";
    case TreeCounter::kRangeBasesTraversed: return "range_bases_traversed";
    case TreeCounter::kOptimisticRanges: return "optimistic_ranges";
    case TreeCounter::kFallbackRanges: return "fallback_ranges";
    case TreeCounter::kHelps: return "helps";
    case TreeCounter::kSplitAttempts: return "split_attempts";
    case TreeCounter::kSplitFailedCas: return "split_failed_cas";
    case TreeCounter::kSplitRefusedSmall: return "split_refused_small";
    case TreeCounter::kJoinAttempts: return "join_attempts";
    case TreeCounter::kUpdateCasFails: return "update_cas_fails";
    case TreeCounter::kUpdateBlockedRetries: return "update_blocked_retries";
    case TreeCounter::kContentionEvents: return "contention_events";
    case TreeCounter::kRangeCasFails: return "range_cas_fails";
    case TreeCounter::kHelpJoins: return "help_joins";
    case TreeCounter::kHelpRanges: return "help_ranges";
    case TreeCounter::kCount: break;
  }
  return "?";
}

/// Snapshot of the tree's internal counters (see TreeCounter for meanings).
struct Stats {
  std::uint64_t splits = 0;
  std::uint64_t joins = 0;
  std::uint64_t aborted_joins = 0;
  /// Completed range queries (counted by the initiating thread).
  std::uint64_t range_queries = 0;
  /// Total base nodes traversed by completed range queries.
  std::uint64_t range_bases_traversed = 0;
  /// Range queries answered by the §6 read-only fast path.
  std::uint64_t optimistic_ranges = 0;
  /// Range queries that fell back to the node-replacing algorithm.
  std::uint64_t fallback_ranges = 0;
  /// Calls that helped another thread's operation.
  std::uint64_t helps = 0;

  // Diagnostics (zero in CATS_OBS=OFF builds).
  std::uint64_t split_attempts = 0;
  std::uint64_t split_failed_cas = 0;
  std::uint64_t split_refused_small = 0;
  std::uint64_t join_attempts = 0;
  std::uint64_t update_cas_fails = 0;
  std::uint64_t update_blocked_retries = 0;
  std::uint64_t contention_events = 0;
  std::uint64_t range_cas_fails = 0;
  std::uint64_t help_joins = 0;
  std::uint64_t help_ranges = 0;

  double traversed_per_query() const {
    return range_queries == 0
               ? 0.0
               : static_cast<double>(range_bases_traversed) /
                     static_cast<double>(range_queries);
  }

  /// Appends every counter to an obs snapshot under a `prefix` (e.g.
  /// "lfca_"), so tree statistics travel in the same exported document as
  /// the process-wide metrics.
  void append_to(obs::Snapshot& snap, const std::string& prefix) const {
    snap.add_counter(prefix + "splits", splits);
    snap.add_counter(prefix + "joins", joins);
    snap.add_counter(prefix + "aborted_joins", aborted_joins);
    snap.add_counter(prefix + "range_queries", range_queries);
    snap.add_counter(prefix + "range_bases_traversed", range_bases_traversed);
    snap.add_counter(prefix + "optimistic_ranges", optimistic_ranges);
    snap.add_counter(prefix + "fallback_ranges", fallback_ranges);
    snap.add_counter(prefix + "helps", helps);
    snap.add_counter(prefix + "split_attempts", split_attempts);
    snap.add_counter(prefix + "split_failed_cas", split_failed_cas);
    snap.add_counter(prefix + "split_refused_small", split_refused_small);
    snap.add_counter(prefix + "join_attempts", join_attempts);
    snap.add_counter(prefix + "update_cas_fails", update_cas_fails);
    snap.add_counter(prefix + "update_blocked_retries",
                     update_blocked_retries);
    snap.add_counter(prefix + "contention_events", contention_events);
    snap.add_counter(prefix + "range_cas_fails", range_cas_fails);
    snap.add_counter(prefix + "help_joins", help_joins);
    snap.add_counter(prefix + "help_ranges", help_ranges);
  }
};

}  // namespace cats::lfca
