// Implementation of BasicLfcaTree.  Included only by lfca_tree.cpp, which
// explicitly instantiates the supported container policies — keep it out of
// other translation units.
//
// Function and variable names follow the paper's pseudo-code (Figs. 3-5 and
// 7); comments cite the corresponding line numbers.  Differences from the
// pseudo-code:
//
//  * Memory reclamation is explicit: the thread whose CAS unlinks a node
//    retires it through the EBR domain (the Java original relies on GC),
//    and join_main nodes carry a reference count because reachable
//    join_neighbor nodes point at them indefinitely (see node.hpp).
//  * `new_stat` with no contention info subtracts RANGE_CONTRIB for
//    multi-base range queries, following the paper's prose (§4
//    "Adaptations") rather than the pseudo-code's bare `return n->stat`,
//    which would make line 213's adaptation call a no-op for range-driven
//    joins.
//  * The §6 optimistic range query updates the statistics of one random
//    traversed base node in place (a relaxed fetch_sub) when it spanned
//    more than one base node.  The published algorithm only feeds range
//    information into the statistics when range_base nodes are later
//    replaced by updates; with the read-only fast path those nodes never
//    exist, so without this nudge a range-dominated workload would never
//    trigger joins.  Statistics are heuristic only, so the in-place update
//    cannot affect correctness.
#pragma once

#include <cassert>

#include "check/tree_check.hpp"
#include "common/catomic.hpp"
#include "common/rng.hpp"
#include "lfca/lfca_tree.hpp"
#include "lfca/scratch.hpp"
#include "obs/flight/annot.hpp"
#include "obs/registry.hpp"

namespace cats::lfca {

namespace detail {

/// Per-thread generator for the random adaptation probe (paper line 213).
inline Xoshiro256& thread_rng() {
  thread_local Xoshiro256 rng(mix64(reinterpret_cast<std::uintptr_t>(&rng)));
#if CATS_SIM_ENABLED
  // Deterministic replay: the simulator replays a scenario many times in
  // one process, but thread_local state survives across executions (and the
  // seed above depends on the TLS address, which varies run to run).
  // Re-seed from the simulated thread id whenever a new execution begins so
  // every adaptation probe is a pure function of the schedule.
  thread_local std::uint64_t seeded_generation = 0;
  if (cats::sim_thread_active()) {
    const std::uint64_t generation = cats::sim_execution_generation();
    if (seeded_generation != generation) {
      seeded_generation = generation;
      rng = Xoshiro256(cats::sim_deterministic_seed());
    }
  }
#endif
  return rng;
}

template <class C>
Node<C>* extreme_base(Node<C>* n, bool leftmost,
                      std::vector<Node<C>*>* stack) {
  while (n->type == NodeType::kRoute) {
    if (stack != nullptr) stack->push_back(n);
    n = (leftmost ? n->left : n->right).load(std::memory_order_acquire);
  }
  if (stack != nullptr) stack->push_back(n);
  return n;
}

template <class C>
// catslint: quiescent(destructor-only teardown; no concurrent operations)
void destroy_reachable(Node<C>* n) {
  if (!is_real<C>(n)) return;
  if (n->type == NodeType::kRoute) {
    destroy_reachable<C>(n->left.load(std::memory_order_relaxed));
    destroy_reachable<C>(n->right.load(std::memory_order_relaxed));
    delete n;  // catslint: direct-delete(quiescent teardown)
  } else if (n->type == NodeType::kJoinMain) {
    // Drop the tree-slot reference; a retired-but-unfreed join_neighbor may
    // still hold one, in which case its deleter frees n later.
    release_join_main<C>(n);
  } else {
    delete n;  // catslint: direct-delete(quiescent teardown)
  }
}

template <class C>
Node<C>* new_range_base(Node<C>* b, typename C::Key lo, typename C::Key hi,
                        ResultStorage<C>* storage) {
  auto* n = new Node<C>(NodeType::kRange);
  cats::sim_plain_write(n->parent, cats::sim_plain_read(b->parent));
  cats::sim_plain_write(n->data, cats::sim_plain_read(b->data));
  if (n->data != nullptr) C::incref(n->data);
  n->stat.store(b->stat.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
  CATS_OBS_ONLY(heat_inherit<C>(n, b));
  cats::sim_plain_write(n->lo, lo);
  cats::sim_plain_write(n->hi, hi);
  storage->add_ref();
  cats::sim_plain_write(n->storage, storage);
  return n;
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Construction / destruction.
// ---------------------------------------------------------------------------

template <class C>
BasicLfcaTree<C>::BasicLfcaTree(reclaim::Domain& domain, const Config& config)
    : domain_(domain), config_(config) {
  auto* base = new Node(NodeType::kNormal);  // empty root base node
  root_.store(base, std::memory_order_release);
}

template <class C>
// catslint: quiescent(destructor; caller guarantees no concurrent access)
BasicLfcaTree<C>::~BasicLfcaTree() {
  // Precondition: quiescent.  Joins always finish phase 2 before their
  // initiating operation returns, so no node reachable here is duplicated
  // in an uninstalled `neigh2`; unreachable (retired) nodes are freed by
  // the domain.
  detail::destroy_reachable<C>(root_.load(std::memory_order_relaxed));
}

// ---------------------------------------------------------------------------
// Help functions (paper Fig. 3, lines 54-72 and Fig. 4, lines 74-104).
// ---------------------------------------------------------------------------

// Retires an unlinked node.  A join_main node's tree-slot reference is
// dropped only after the grace period (direct in-guard holders), and the
// node itself is deleted once the join_neighbor nodes referencing it are
// gone too — see release_join_main in node.hpp.
template <class C>
void BasicLfcaTree<C>::retire(Node* n) {
  // Canary Alive -> Retired before the domain takes over: a second retire of
  // the same node (the bug class the canary exists for) fails immediately.
  CATS_CHECKED_ONLY(check::canary_mark_retired(n->check_canary, "lfca node"));
  if (n->type == NodeType::kJoinMain) {
    domain_.retire(n, &detail::join_main_unlink_deleter<C>);
  } else {
    domain_.retire(n, &detail::node_deleter<C>);
  }
}

// Paper lines 54-62.  On success the unlinked node is retired here, which
// also makes every call site's "winner frees" rule uniform.
template <class C>
bool BasicLfcaTree<C>::try_replace(Node* b, Node* new_b) {
  bool done = false;
  Node* parent = cats::sim_plain_read(b->parent);
  if (parent == nullptr) {
    Node* expected = b;
    done = root_.compare_exchange_strong(expected, new_b,
                                         std::memory_order_acq_rel);
  } else if (parent->left.load(std::memory_order_acquire) == b) {
    Node* expected = b;
    done = parent->left.compare_exchange_strong(expected, new_b,
                                                std::memory_order_acq_rel);
  } else if (parent->right.load(std::memory_order_acquire) == b) {
    Node* expected = b;
    done = parent->right.compare_exchange_strong(expected, new_b,
                                                 std::memory_order_acq_rel);
  }
  if (done) retire(b);
  return done;
}

// Paper lines 63-72.
template <class C>
bool BasicLfcaTree<C>::is_replaceable(const Node* n) {
  switch (n->type) {
    case NodeType::kNormal:
      return true;
    case NodeType::kJoinMain:
      return n->neigh2.load(std::memory_order_acquire) == Node::aborted();
    case NodeType::kJoinNeighbor: {
      Node* state =
          cats::sim_plain_read(n->main_node)
              ->neigh2.load(std::memory_order_acquire);
      return state == Node::aborted() || state == Node::done_mark();
    }
    case NodeType::kRange:
      return n->storage->result.load(std::memory_order_acquire) !=
             detail::not_set<C>();
    case NodeType::kRoute:
      break;
  }
  return false;
}

// Paper lines 74-86.
template <class C>
void BasicLfcaTree<C>::help_if_needed(Node* n) {
  if (n->type == NodeType::kJoinNeighbor) n = cats::sim_plain_read(n->main_node);
  if (n->type == NodeType::kJoinMain) {
    Node* state = n->neigh2.load(std::memory_order_acquire);
    if (state == Node::preparing()) {
      // Kill the unsecured join so our own operation can proceed.
      Node* expected = Node::preparing();
      n->neigh2.compare_exchange_strong(expected, Node::aborted(),
                                        std::memory_order_acq_rel);
    } else if (detail::is_real<C>(state)) {
      count(TreeCounter::kHelps);
      count_obs(TreeCounter::kHelpJoins);
      CATS_OBS_ONLY(n->heat_helps.fetch_add(1, std::memory_order_relaxed));
      complete_join(n);
    }
  } else if (n->type == NodeType::kRange &&
             cats::sim_plain_read(n->storage)
                     ->result.load(std::memory_order_acquire) ==
                 detail::not_set<C>()) {
    count(TreeCounter::kHelps);
    count_obs(TreeCounter::kHelpRanges);
    CATS_OBS_ONLY(n->heat_helps.fetch_add(1, std::memory_order_relaxed));
    all_in_range(cats::sim_plain_read(n->lo), cats::sim_plain_read(n->hi),
                 cats::sim_plain_read(n->storage));
  }
}

// Paper lines 87-97 (with the prose semantics for the no-info case, see the
// file comment).
template <class C>
int BasicLfcaTree<C>::new_stat(const Node* n, ContentionInfo info) const {
  int range_sub = 0;
  if (n->type == NodeType::kRange &&
      n->storage->more_than_one_base.load(std::memory_order_relaxed)) {
    range_sub = config_.range_contrib;
  }
  const int stat = n->stat.load(std::memory_order_relaxed);
  int next = stat - range_sub;
  if (info == ContentionInfo::kContended && stat <= config_.high_cont) {
    next = stat + config_.cont_contrib - range_sub;
  } else if (info == ContentionInfo::kUncontended &&
             stat >= config_.low_cont) {
    next = stat - config_.low_cont_contrib - range_sub;
  }
  // A parentless base node spans the whole key space and can never join
  // (line 269's parent check), so negative drift at the root serves no
  // adaptation: it only delays future splits.  Left unfloored, the prefill
  // phase alone sinks the root's statistics to low_cont - 1, and contention
  // then has to climb the full |low_cont| + high_cont distance before the
  // first split — on machines where conflicts are rare (few cores), that
  // masks real contention indefinitely (diagnosed via the
  // contention_events-vs-splits counters and the adaptation trace).
  if (n->parent == nullptr && next < 0) next = 0;
  return next;
}

// Paper lines 98-104.
template <class C>
void BasicLfcaTree<C>::adapt_if_needed(Node* b) {
  if (!is_replaceable(b)) return;
  const int stat = new_stat(b, ContentionInfo::kNoInfo);
  if (stat > config_.high_cont) {
    high_contention_adaptation(b);
  } else if (stat < config_.low_cont) {
    low_contention_adaptation(b);
  }
}

// ---------------------------------------------------------------------------
// Single-item operations (paper Fig. 4, lines 106-138).
// ---------------------------------------------------------------------------

template <class C>
typename BasicLfcaTree<C>::Node* BasicLfcaTree<C>::find_base_node(
    Key key) const {
  Node* n = root_.load(std::memory_order_acquire);
  while (n->type == NodeType::kRoute) {
    n = (Compare{}(key, cats::sim_plain_read(n->key)) ? n->left : n->right)
            .load(std::memory_order_acquire);
  }
  return n;
}

template <class C>
bool BasicLfcaTree<C>::do_update(UpdateKind kind, Key key, Value value) {
  reclaim::Domain::Guard guard(domain_);
  ContentionInfo info = ContentionInfo::kUncontended;
#if CATS_OBS_ENABLED
  // Heatmap carry: a lost CAS means `base` was just replaced, so charging
  // the failure to it would write to a retired node and lose the tally.
  // Accumulate locally and charge the next base found on retry — it is live
  // (we just loaded it) and covers the same key.
  std::uint64_t pending_cas_fails = 0;
#endif
  while (true) {
    Node* base = find_base_node(key);
#if CATS_OBS_ENABLED
    if (pending_cas_fails != 0) {
      base->heat_cas_fails.fetch_add(pending_cas_fails,
                                     std::memory_order_relaxed);
      pending_cas_fails = 0;
    }
#endif
    if (is_replaceable(base)) {
      bool changed = false;
      typename C::Ref new_data =
          kind == UpdateKind::kInsert
              ? C::insert(cats::sim_plain_read(base->data), key, value,
                          &changed)
              : C::remove(cats::sim_plain_read(base->data), key, &changed);
      // `changed` means replaced-an-existing-item for insert and
      // removed-an-item for remove.
      auto* newb = new Node(NodeType::kNormal);
      cats::sim_plain_write(newb->parent, cats::sim_plain_read(base->parent));
      cats::sim_plain_write(newb->data, new_data.release());
      newb->stat.store(new_stat(base, info), std::memory_order_relaxed);
      CATS_OBS_ONLY(detail::heat_inherit<C>(newb, base));
      if (try_replace(base, newb)) {
        adapt_if_needed(newb);
        return kind == UpdateKind::kInsert ? !changed : changed;
      }
      delete newb;  // catslint: direct-delete(never published; CAS lost)
      count_obs(TreeCounter::kUpdateCasFails);
      CATS_OBS_ONLY({
        ++pending_cas_fails;
        obs::flight::note_cas_fail();
      });
    } else {
      count_obs(TreeCounter::kUpdateBlockedRetries);
    }
    info = ContentionInfo::kContended;
    // Feed the conflict into the current base node's statistics at event
    // time (in place, bounded by high_cont like line 92's guard).  The
    // pseudo-code records contention only in the replacement node of the
    // final successful attempt, which collapses any number of lost rounds
    // into a single cont_contrib and discards the evidence entirely when
    // the losing thread moves on — under bursty conflicts (e.g. a
    // preempted range query holding its span irreplaceable) the surviving
    // single contribution is cancelled by the uncontended decrements that
    // follow, and the split threshold is never reached.  In-place
    // statistics updates cannot affect correctness (see the file comment on
    // the §6 nudge); if `base` was already unlinked by the winning thread
    // the write lands on a retired node and is simply lost, which matches
    // the pseudo-code's behaviour.
    if (base->stat.load(std::memory_order_relaxed) <= config_.high_cont) {
      base->stat.fetch_add(config_.cont_contrib, std::memory_order_relaxed);
      count_obs(TreeCounter::kContentionEvents);
    }
    help_if_needed(base);
  }
}

template <class C>
bool BasicLfcaTree<C>::insert(Key key, Value value) {
  return do_update(UpdateKind::kInsert, key, value);
}

template <class C>
bool BasicLfcaTree<C>::remove(Key key) {
  return do_update(UpdateKind::kRemove, key, Value{});
}

template <class C>
bool BasicLfcaTree<C>::lookup(Key key, Value* value_out) const {
  reclaim::Domain::Guard guard(domain_);
  Node* base = find_base_node(key);
  return C::lookup(cats::sim_plain_read(base->data), key, value_out);
}

// ---------------------------------------------------------------------------
// Adaptations (paper Fig. 7).
// ---------------------------------------------------------------------------

// Paper lines 277-287.
template <class C>
bool BasicLfcaTree<C>::high_contention_adaptation(Node* b) {
  count_obs(TreeCounter::kSplitAttempts);
  const typename C::Node* b_data = cats::sim_plain_read(b->data);
  if (C::less_than_two_items(b_data)) {
    count_obs(TreeCounter::kSplitRefusedSmall);
    return false;
  }
  [[maybe_unused]] const int stat = b->stat.load(std::memory_order_relaxed);
  typename C::Ref left_data;
  typename C::Ref right_data;
  Key split_key{};
  C::split_evenly(b_data, &left_data, &right_data, &split_key);

  auto* r = new Node(NodeType::kRoute);
  cats::sim_plain_write(r->key, split_key);
  auto* lb = new Node(NodeType::kNormal);
  cats::sim_plain_write(lb->parent, r);
  cats::sim_plain_write(lb->data, left_data.release());
  auto* rb = new Node(NodeType::kNormal);
  cats::sim_plain_write(rb->parent, r);
  cats::sim_plain_write(rb->data, right_data.release());
  r->left.store(lb, std::memory_order_relaxed);
  r->right.store(rb, std::memory_order_relaxed);
#if CATS_OBS_ENABLED
  // Split the heat tallies between the halves so the heatmap's totals are
  // conserved across the adaptation (half each; odd remainder to the right).
  {
    const std::uint64_t cf = b->heat_cas_fails.load(std::memory_order_relaxed);
    const std::uint64_t hp = b->heat_helps.load(std::memory_order_relaxed);
    lb->heat_cas_fails.store(cf / 2, std::memory_order_relaxed);
    rb->heat_cas_fails.store(cf - cf / 2, std::memory_order_relaxed);
    lb->heat_helps.store(hp / 2, std::memory_order_relaxed);
    rb->heat_helps.store(hp - hp / 2, std::memory_order_relaxed);
  }
#endif

  if (try_replace(b, r)) {
    count(TreeCounter::kSplits);
    CATS_OBS_ONLY({
      obs::record(obs::GHistogram::kSplitLeafItems, C::size(b->data));
      obs::trace_adapt(obs::AdaptKind::kSplit, depth_of(split_key), stat);
    });
    return true;
  }
  delete lb;  // catslint: direct-delete(never published; split CAS lost)
  delete rb;  // catslint: direct-delete(never published; split CAS lost)
  delete r;   // catslint: direct-delete(never published; split CAS lost)
  count_obs(TreeCounter::kSplitFailedCas);
  CATS_OBS_ONLY(
      obs::trace_adapt(obs::AdaptKind::kSplitFailed, depth_of(split_key),
                       stat));
  return false;
}

// Paper lines 268-276.
template <class C>
bool BasicLfcaTree<C>::low_contention_adaptation(Node* b) {
  Node* parent = cats::sim_plain_read(b->parent);
  if (parent == nullptr) return false;
  count_obs(TreeCounter::kJoinAttempts);
  [[maybe_unused]] const int stat = b->stat.load(std::memory_order_relaxed);
  [[maybe_unused]] const Key probe = cats::sim_plain_read(parent->key);
  Node* m = nullptr;
  if (parent->left.load(std::memory_order_acquire) == b) {
    m = secure_join(b, /*left_child=*/true);
  } else if (parent->right.load(std::memory_order_acquire) == b) {
    m = secure_join(b, /*left_child=*/false);
  }
  if (m != nullptr) {
    complete_join(m);
    count(TreeCounter::kJoins);
    CATS_OBS_ONLY(
        obs::trace_adapt(obs::AdaptKind::kJoin, depth_of(probe), stat));
    return true;
  }
  count(TreeCounter::kAbortedJoins);
  CATS_OBS_ONLY(
      obs::trace_adapt(obs::AdaptKind::kJoinAborted, depth_of(probe), stat));
  return false;
}

template <class C>
bool BasicLfcaTree<C>::force_split(Key hint) {
  reclaim::Domain::Guard guard(domain_);
  Node* base = find_base_node(hint);
  if (!is_replaceable(base)) return false;
  return high_contention_adaptation(base);
}

template <class C>
bool BasicLfcaTree<C>::force_join(Key hint) {
  reclaim::Domain::Guard guard(domain_);
  Node* base = find_base_node(hint);
  if (!is_replaceable(base)) return false;
  return low_contention_adaptation(base);
}

// Paper lines 216-250 (secure_join_left; the right-child case is the mirror
// image, folded in via `left_child`).
template <class C>
typename BasicLfcaTree<C>::Node* BasicLfcaTree<C>::secure_join(
    Node* b, bool left_child) {
  Node* parent = cats::sim_plain_read(b->parent);
  // Line 217: the neighbor is the leaf closest to b on the other side of
  // its parent.
  Node* n0 =
      left_child
          ? detail::extreme_base<C>(
                parent->right.load(std::memory_order_acquire),
                /*leftmost=*/true, nullptr)
          : detail::extreme_base<C>(
                parent->left.load(std::memory_order_acquire),
                /*leftmost=*/false, nullptr);
  if (!is_replaceable(n0)) return nullptr;  // line 218

  // Lines 219-222: replace b with the join_main node m.
  auto* m = new Node(NodeType::kJoinMain);
  cats::sim_plain_write(m->parent, parent);
  cats::sim_plain_write(m->data, cats::sim_plain_read(b->data));
  if (m->data != nullptr) C::incref(m->data);
  m->stat.store(b->stat.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
  CATS_OBS_ONLY(detail::heat_inherit<C>(m, b));
  m->neigh2.store(Node::preparing(), std::memory_order_relaxed);
  {
    auto& slot = left_child ? parent->left : parent->right;
    Node* expected = b;
    if (!slot.compare_exchange_strong(expected, m,
                                      std::memory_order_acq_rel)) {
      delete m;  // catslint: direct-delete(never published; CAS lost)
      return nullptr;
    }
    retire(b);
  }

  // Lines 223-227: replace the neighbor n0 with the join_neighbor node n1.
  auto* n1 = new Node(NodeType::kJoinNeighbor);
  cats::sim_plain_write(n1->parent, cats::sim_plain_read(n0->parent));
  cats::sim_plain_write(n1->data, cats::sim_plain_read(n0->data));
  if (n1->data != nullptr) C::incref(n1->data);
  n1->stat.store(n0->stat.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
  CATS_OBS_ONLY(detail::heat_inherit<C>(n1, n0));
  cats::sim_plain_write(n1->main_node, m);
  m->main_refs.fetch_add(1, std::memory_order_relaxed);  // held by n1
  if (!try_replace(n0, n1)) {
    delete n1;  // catslint: direct-delete(never published; CAS lost)
    m->neigh2.store(Node::aborted(), std::memory_order_release);  // fail0
    return nullptr;
  }

  // Lines 228-229: mark the parent with the unique join id m.
  {
    Node* expected = nullptr;
    if (!parent->join_id.compare_exchange_strong(
            expected, m, std::memory_order_acq_rel)) {
      m->neigh2.store(Node::aborted(), std::memory_order_release);  // fail0
      return nullptr;
    }
  }

  // Lines 230-233: find and mark the grandparent.
  Node* gparent = parent_of(parent);
  if (gparent == Node::not_found()) {
    parent->join_id.store(nullptr, std::memory_order_release);      // fail1
    m->neigh2.store(Node::aborted(), std::memory_order_release);    // fail0
    return nullptr;
  }
  if (gparent != nullptr) {
    Node* expected = nullptr;
    if (!gparent->join_id.compare_exchange_strong(
            expected, m, std::memory_order_acq_rel)) {
      parent->join_id.store(nullptr, std::memory_order_release);    // fail1
      m->neigh2.store(Node::aborted(), std::memory_order_release);  // fail0
      return nullptr;
    }
  }

  // Lines 234-236.  m is already reachable, but helpers read these three
  // fields only after observing neigh2 != preparing(), and the neigh2
  // store below line 243 is the release edge that publishes them.
  // catslint: pre-publish(read only after neigh2's release store; neigh2 is still preparing())
  cats::sim_plain_write(m->gparent, gparent);
  Node* otherb = (left_child ? parent->right : parent->left)
                     .load(std::memory_order_acquire);
  // catslint: pre-publish(read only after neigh2's release store; neigh2 is still preparing())
  cats::sim_plain_write(m->otherb, otherb);
  // catslint: pre-publish(read only after neigh2's release store; neigh2 is still preparing())
  cats::sim_plain_write(m->neigh1, n1);

  // Lines 237-243: build the joined base node n2 and attempt to secure the
  // join by publishing it in m->neigh2.
  Node* joinedp = otherb == n1 ? gparent : cats::sim_plain_read(n1->parent);
  auto* n2 = new Node(NodeType::kJoinNeighbor);
  cats::sim_plain_write(n2->parent, joinedp);
  cats::sim_plain_write(n2->main_node, m);
  m->main_refs.fetch_add(1, std::memory_order_relaxed);  // held by n2
  cats::sim_plain_write(
      n2->data, (left_child ? C::join(m->data, cats::sim_plain_read(n1->data))
                            : C::join(cats::sim_plain_read(n1->data), m->data))
                    .release());
#if CATS_OBS_ENABLED
  // The joined base covers both intervals: its heat is the sum.
  n2->heat_cas_fails.store(
      m->heat_cas_fails.load(std::memory_order_relaxed) +
          n1->heat_cas_fails.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  n2->heat_helps.store(m->heat_helps.load(std::memory_order_relaxed) +
                           n1->heat_helps.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
#endif
  {
    Node* expected = Node::preparing();
    if (m->neigh2.compare_exchange_strong(expected, n2,
                                          std::memory_order_acq_rel)) {
      return m;
    }
  }

  // Lines 245-248: another thread aborted the join; roll back the marks.
  // catslint: direct-delete(never published; releases main_refs reference)
  delete n2;
  if (gparent != nullptr) {
    gparent->join_id.store(nullptr, std::memory_order_release);
  }
  parent->join_id.store(nullptr, std::memory_order_release);    // fail1
  m->neigh2.store(Node::aborted(), std::memory_order_release);  // fail0
  return nullptr;
}

// Paper lines 251-267.  May be executed concurrently by several threads for
// the same m; every step is idempotent or guarded by a CAS whose winner
// retires the unlinked nodes.
template <class C>
void BasicLfcaTree<C>::complete_join(Node* m) {
  Node* n2 = m->neigh2.load(std::memory_order_acquire);
  if (n2 == Node::done_mark()) return;
  assert(detail::is_real<C>(n2));
  // The plain fields below were published by neigh2's release store (the
  // pre-publish protocol secured above); each is immutable afterwards, so a
  // helper may cache them in locals.  The sim_plain_read hooks let the
  // simulator's race detector verify exactly that pairing.
  Node* neigh1 = cats::sim_plain_read(m->neigh1);
  Node* parent = cats::sim_plain_read(m->parent);
  Node* gparent = cats::sim_plain_read(m->gparent);
  Node* otherb = cats::sim_plain_read(m->otherb);
  try_replace(neigh1, n2);                              // line 254
  parent->valid.store(false, std::memory_order_release);  // line 255
  Node* replacement = otherb == neigh1 ? n2 : otherb;
  if (gparent == nullptr) {
    Node* expected = parent;
    if (root_.compare_exchange_strong(expected, replacement,
                                      std::memory_order_acq_rel)) {
      retire(parent);
      retire(m);
    }
  } else if (gparent->left.load(std::memory_order_acquire) == parent) {
    Node* expected = parent;
    if (gparent->left.compare_exchange_strong(expected, replacement,
                                              std::memory_order_acq_rel)) {
      retire(parent);
      retire(m);
    }
    Node* expected_id = m;
    gparent->join_id.compare_exchange_strong(expected_id, nullptr,
                                             std::memory_order_acq_rel);
  } else if (gparent->right.load(std::memory_order_acquire) == parent) {
    Node* expected = parent;
    if (gparent->right.compare_exchange_strong(expected, replacement,
                                               std::memory_order_acq_rel)) {
      retire(parent);
      retire(m);
    }
    Node* expected_id = m;
    gparent->join_id.compare_exchange_strong(expected_id, nullptr,
                                             std::memory_order_acq_rel);
  }
  m->neigh2.store(Node::done_mark(), std::memory_order_release);  // line 266
}

// Finds the parent of route node r by searching from the root (the paper's
// parent_of).  Returns null when r is the root and not_found() when r is no
// longer reachable.
//
// Liveness audit (this PR): not_found() is terminal for the join attempt,
// never retried against the same node.  The only caller is secure_join,
// which aborts the join (fail1/fail0 stores) on not_found(); its own caller
// low_contention_adaptation makes at most two secure_join attempts (left
// then right neighbor) and returns.  A route node invalidated by a helped
// join therefore costs the next adaptation one aborted attempt — the next
// operation re-descends from the root and reaches only live route nodes, so
// no loop can spin on a permanently-invalid parent.  The join-after-join
// test in lfca_test.cpp pins this down deterministically.
template <class C>
typename BasicLfcaTree<C>::Node* BasicLfcaTree<C>::parent_of(Node* r) const {
  Node* prev = nullptr;
  Node* cur = root_.load(std::memory_order_acquire);
  while (cur != r && cur->type == NodeType::kRoute) {
    prev = cur;
    cur = (Compare{}(cats::sim_plain_read(r->key),
                     cats::sim_plain_read(cur->key))
               ? cur->left
               : cur->right)
              .load(std::memory_order_acquire);
  }
  return cur == r ? prev : Node::not_found();
}

// ---------------------------------------------------------------------------
// Range queries (paper Fig. 5 and §6).
// ---------------------------------------------------------------------------

template <class C>
typename BasicLfcaTree<C>::Node* BasicLfcaTree<C>::find_base_stack(
    Key key, std::vector<Node*>& stack) const {
  Node* n = root_.load(std::memory_order_acquire);
  while (n->type == NodeType::kRoute) {
    stack.push_back(n);
    n = (Compare{}(key, cats::sim_plain_read(n->key)) ? n->left : n->right)
            .load(std::memory_order_acquire);
  }
  stack.push_back(n);
  return n;
}

template <class C>
typename BasicLfcaTree<C>::Node* BasicLfcaTree<C>::leftmost_and_stack(
    Node* n, std::vector<Node*>& stack) {
  return detail::extreme_base<C>(n, /*leftmost=*/true, &stack);
}

// Paper lines 144-157.
template <class C>
typename BasicLfcaTree<C>::Node* BasicLfcaTree<C>::find_next_base_stack(
    std::vector<Node*>& stack) {
  Node* base = stack.back();
  stack.pop_back();
  if (stack.empty()) return nullptr;
  Node* t = stack.back();
  if (t->left.load(std::memory_order_acquire) == base) {
    return leftmost_and_stack(t->right.load(std::memory_order_acquire),
                              stack);
  }
  const Key be_greater_than = t->key;
  while (!stack.empty()) {
    t = stack.back();
    if (t->valid.load(std::memory_order_acquire) &&
        Compare{}(be_greater_than, t->key)) {
      return leftmost_and_stack(t->right.load(std::memory_order_acquire),
                                stack);
    }
    stack.pop_back();
  }
  return nullptr;
}

template <class C>
void BasicLfcaTree<C>::count_range_query(std::size_t bases_traversed) const {
  count(TreeCounter::kRangeQueries);
  count(TreeCounter::kRangeBasesTraversed, bases_traversed);
  CATS_OBS_ONLY(obs::record(obs::GHistogram::kRangeBasesTraversed,
                            bases_traversed));
}

// Paper lines 161-215.  Must be called inside an epoch guard; the returned
// container pointer stays valid until the guard is released.
template <class C>
const typename C::Node* BasicLfcaTree<C>::all_in_range(
    Key lo, Key hi, ResultStorage* help_s) {
  // Thread-local scratch (scratch.hpp): the lease is recursion-safe, which
  // matters because the help-wider-query path below re-enters all_in_range.
  detail::ScratchLease<C> scratch;
  std::vector<Node*>& stack = scratch->stack;
  std::vector<Node*>& backup = scratch->backup;
  std::vector<Node*>& done = scratch->done;
  ResultStorage* my_s = nullptr;
  Node* b = nullptr;
#if CATS_OBS_ENABLED
  // Heatmap carry, same scheme as do_update: charge a lost CAS to the next
  // live base found on retry, never to the already-replaced loser.
  std::uint64_t pending_cas_fails = 0;
  const auto settle_heat = [&](Node* live) {
    if (pending_cas_fails != 0) {
      live->heat_cas_fails.fetch_add(pending_cas_fails,
                                     std::memory_order_relaxed);
      pending_cas_fails = 0;
    }
  };
#endif

  // find_first (lines 168-183).
  while (true) {
    stack.clear();
    b = find_base_stack(lo, stack);
    CATS_OBS_ONLY(settle_heat(b));
    if (testing_range_step_hook) testing_range_step_hook(0);
    if (help_s != nullptr) {
      if (b->type != NodeType::kRange ||
          cats::sim_plain_read(b->storage) != help_s) {
        // The helped query has linearized (its first base node would still
        // be irreplaceable otherwise); its result is available.
        return help_s->result.load(std::memory_order_acquire);
      }
      my_s = help_s;
      break;
    }
    if (is_replaceable(b)) {
      if (my_s == nullptr) my_s = new ResultStorage();  // reused on retry
      Node* n = detail::new_range_base<C>(b, lo, hi, my_s);
      if (!try_replace(b, n)) {
        delete n;  // catslint: direct-delete(never published; CAS lost)
        count_obs(TreeCounter::kRangeCasFails);
        CATS_OBS_ONLY({
          ++pending_cas_fails;
          obs::flight::note_cas_fail();
        });
        continue;  // goto find_first
      }
      stack.back() = n;  // replace_top
      b = n;
      break;
    }
    if (b->type == NodeType::kRange &&
        !Compare{}(cats::sim_plain_read(b->hi), hi)) {
      // A wider in-flight range query covers ours: help it and use its
      // result (line 179).  Ownership audit: my_s can only be non-null here
      // after a lost CAS above, whose `delete n` already dropped the
      // reference the marker held, so the creation reference released here
      // is the last one and the storage is freed — never leaked, never
      // double-released.
      if (my_s != nullptr) my_s->release();  // ours was never installed
      return all_in_range(cats::sim_plain_read(b->lo),
                          cats::sim_plain_read(b->hi),
                          cats::sim_plain_read(b->storage));
    }
    help_if_needed(b);
  }

  // Find the remaining base nodes (lines 184-207).
  //
  // Retry bookkeeping, audited for this PR: find_next_base_stack consumes
  // `stack` destructively (it pops at least the current base), so `backup`
  // preserves the pre-advance stack.  Both not-advanced exits of the inner
  // loop — the lost CAS and the help_if_needed detour — restore it with
  // `stack = backup` before retrying, and the copy is taken again after
  // every successful advance.  The copy is NOT dead, and dropping either
  // restore would make the retry resume from a half-popped stack and skip
  // base nodes.  The regression tests in lfca_test.cpp drive each of these
  // paths deterministically through testing_range_step_hook.
  while (true) {
    done.push_back(b);
    backup = stack;
    {
      const typename C::Node* d = cats::sim_plain_read(b->data);
      if (!C::empty(d) && !Compare{}(C::max_key(d), hi)) break;
    }
    bool advanced = false;
    while (!advanced) {
      b = find_next_base_stack(stack);
      if (b == nullptr) break;
      CATS_OBS_ONLY(settle_heat(b));
      if (testing_range_step_hook) testing_range_step_hook(1);
      const typename C::Node* result =
          my_s->result.load(std::memory_order_acquire);
      if (result != detail::not_set<C>()) {
        if (help_s == nullptr) my_s->release();
        return result;
      }
      if (b->type == NodeType::kRange &&
          cats::sim_plain_read(b->storage) == my_s) {
        advanced = true;  // replaced by a concurrent helper of this query
      } else if (is_replaceable(b)) {
        Node* n = detail::new_range_base<C>(b, lo, hi, my_s);
        if (try_replace(b, n)) {
          stack.back() = n;  // replace_top
          b = n;
          advanced = true;
        } else {
          delete n;  // catslint: direct-delete(never published; CAS lost)
          count_obs(TreeCounter::kRangeCasFails);
          CATS_OBS_ONLY({
            ++pending_cas_fails;
            obs::flight::note_cas_fail();
          });
          stack = backup;
        }
      } else {
        help_if_needed(b);
        stack = backup;
      }
    }
    if (b == nullptr) break;
  }

  // Collect and publish the result (lines 208-214).
  typename C::Ref result;
  for (std::size_t i = 0; i < done.size(); ++i) {
    const typename C::Node* d = cats::sim_plain_read(done[i]->data);
    if (i == 0) {
      if (d != nullptr) C::incref(d);
      result = C::Ref::adopt(d);
    } else {
      result = C::join(result.get(), d);
    }
  }
  const typename C::Node* raw = result.get();
  const typename C::Node* expected = detail::not_set<C>();
  if (my_s->result.compare_exchange_strong(expected, raw,
                                           std::memory_order_acq_rel)) {
    result.release();  // ownership moved into the storage
    if (done.size() > 1) {
      // catslint: pairing(monotonic hint flag; new_stat reads it relaxed on purpose — it only biases the contention statistic, never guards data)
      my_s->more_than_one_base.store(true, std::memory_order_release);
    }
    count_range_query(done.size());
  }
  adapt_if_needed(
      done[detail::thread_rng().next_below(done.size())]);  // line 213
  const typename C::Node* out = my_s->result.load(std::memory_order_acquire);
  if (help_s == nullptr) my_s->release();
  return out;
}

// §6: read-only double-collect attempt.  Fills `bases` with the sequence of
// base nodes covering [lo, hi] and returns false if any of them is
// irreplaceable (an in-flight range query or join could otherwise leak a
// partially applied state into the snapshot).
template <class C>
bool BasicLfcaTree<C>::try_optimistic_collect(
    Key lo, Key hi, std::vector<Node*>& bases) const {
  detail::ScratchLease<C> scratch;  // nested under range_query's own lease
  std::vector<Node*>& stack = scratch->stack;
  Node* b = find_base_stack(lo, stack);
  while (true) {
    if (!is_replaceable(b)) return false;
    bases.push_back(b);
    if (!C::empty(b->data) && !Compare{}(C::max_key(b->data), hi)) {
      return true;
    }
    b = find_next_base_stack(stack);
    if (b == nullptr) return true;
  }
}

template <class C>
void BasicLfcaTree<C>::range_query(Key lo, Key hi, ItemVisitor visit) const {
  auto* self = const_cast<BasicLfcaTree*>(this);
  reclaim::Domain::Guard guard(domain_);

  if (config_.optimistic_ranges) {
    detail::ScratchLease<C> scratch;
    std::vector<Node*>& scan1 = scratch->scan1;
    std::vector<Node*>& scan2 = scratch->scan2;
    if (try_optimistic_collect(lo, hi, scan1) &&
        try_optimistic_collect(lo, hi, scan2) && scan1 == scan2) {
      // Identical consecutive collects of immutable-content nodes: some
      // instant between the scans had all of them installed at once (no
      // pointer can recycle inside our guard), so this is a linearizable
      // snapshot.  See Brown & Avni [4] for the proof of this scheme.
      std::size_t base_count = 0;
      for (Node* n : scan1) {
        C::for_range(n->data, lo, hi, visit);
        ++base_count;
      }
      count(TreeCounter::kOptimisticRanges);
      count_range_query(base_count);
      if (base_count > 1) {
        // Feed the multi-base observation into the heuristics (see the file
        // comment); the writing path does this via new_stat on replacement.
        Node* probe = scan1[detail::thread_rng().next_below(scan1.size())];
        probe->stat.fetch_sub(config_.range_contrib,
                              std::memory_order_relaxed);
        self->adapt_if_needed(probe);
      }
      return;
    }
    count(TreeCounter::kFallbackRanges);
  }

  const typename C::Node* result = self->all_in_range(lo, hi, nullptr);
  assert(result != detail::not_set<C>());
  C::for_range(result, lo, hi, visit);
}

// ---------------------------------------------------------------------------
// Introspection.
// ---------------------------------------------------------------------------

namespace detail {

template <class C>
std::size_t count_items(Node<C>* n) {
  if (n->type == NodeType::kRoute) {
    return count_items<C>(n->left.load(std::memory_order_acquire)) +
           count_items<C>(n->right.load(std::memory_order_acquire));
  }
  return C::size(n->data);
}

template <class C>
std::size_t count_routes(Node<C>* n) {
  if (n->type != NodeType::kRoute) return 0;
  return 1 + count_routes<C>(n->left.load(std::memory_order_acquire)) +
         count_routes<C>(n->right.load(std::memory_order_acquire));
}

/// Topology walk (see BasicLfcaTree::collect_topology).  Must run inside an
/// EBR guard: child pointers are acquire-loaded, so every node reached was
/// published before we saw it, its immutable fields (type, data, parent)
/// are complete, and the guard keeps even concurrently-unlinked nodes
/// allocated until we are done.  The only mutable fields read are atomics
/// (valid, join_id, stat), so the walk is race-free by construction.
template <class C>
void topology_walk(Node<C>* n, std::uint32_t route_depth, typename C::Key lo,
                   obs::TopologySnapshot& out) {
  if (n->type == NodeType::kRoute) {
    ++out.route_nodes;
    if (!n->valid.load(std::memory_order_acquire)) ++out.invalid_routes;
    if (n->join_id.load(std::memory_order_acquire) != nullptr) {
      ++out.marked_routes;
    }
    topology_walk<C>(n->left.load(std::memory_order_acquire),
                     route_depth + 1, lo, out);
    topology_walk<C>(n->right.load(std::memory_order_acquire),
                     route_depth + 1, n->key, out);
    return;
  }
  ++out.base_nodes;
  switch (n->type) {
    case NodeType::kNormal: ++out.normal_bases; break;
    case NodeType::kJoinMain:
    case NodeType::kJoinNeighbor: ++out.joining_bases; break;
    case NodeType::kRange: ++out.range_bases; break;
    case NodeType::kRoute: break;  // unreachable
  }
  out.depth.add(route_depth);
  if (route_depth > out.max_depth) out.max_depth = route_depth;
  const std::size_t occupancy = C::size(n->data);
  out.items += occupancy;
  out.occupancy.add(occupancy);
  const std::int64_t stat = n->stat.load(std::memory_order_relaxed);
  if (out.base_nodes == 1 || stat < out.stat_min) out.stat_min = stat;
  if (out.base_nodes == 1 || stat > out.stat_max) out.stat_max = stat;
  out.stat_abs.add(static_cast<std::uint64_t>(stat < 0 ? -stat : stat));
#if CATS_OBS_ENABLED
  // Contention heatmap sample: the base's key interval starts at the key of
  // the nearest ancestor whose right subtree contains it (KeyTraits min()
  // for the leftmost path), which identifies the region spatially across
  // snapshots even as the node pointers churn.
  obs::BaseHeat heat;
  heat.depth = route_depth;
  heat.key_lo = KeyTraits<typename C::Key>::heat_coord(lo);
  heat.key_label = KeyTraits<typename C::Key>::format(lo);
  heat.cas_fails = n->heat_cas_fails.load(std::memory_order_relaxed);
  heat.helps = n->heat_helps.load(std::memory_order_relaxed);
  heat.items = occupancy;
  heat.stat = stat;
  out.add_base_heat(heat);
#endif
}

/// Quiescent structural check: route keys form a BST and every base node's
/// container keys lie inside the key interval its route path implies.
///
/// Bounds are passed as pointers — `lo` inclusive, `hi` exclusive, nullptr
/// meaning unbounded — so the whole key domain stays representable for any
/// key type (the former __int128 widening only worked for integers, and
/// silently made KeyTraits<K>::min()/max() second-class citizens).
template <class C>
bool check_rec(Node<C>* n, const typename C::Key* lo,
               const typename C::Key* hi) {
  using K = typename C::Key;
  using Cmp = typename C::Compare;
  const auto lt = [](const K& a, const K& b) { return Cmp{}(a, b); };
  if (n->type == NodeType::kRoute) {
    const K& key = n->key;
    if (lo != nullptr && lt(key, *lo)) return false;
    if (hi != nullptr && !lt(key, *hi)) return false;
    // Route semantics: keys < n->key descend left, keys >= n->key right.
    return check_rec<C>(n->left.load(std::memory_order_relaxed), lo,
                        &n->key) &&
           check_rec<C>(n->right.load(std::memory_order_relaxed), &n->key,
                        hi);
  }
  if (C::empty(n->data)) return true;
  K first{};
  K last{};
  bool started = false;
  bool sorted = true;
  C::for_range(n->data, KeyTraits<K>::min(), KeyTraits<K>::max(),
               [&](K k, typename C::Value) {
                 if (!started) {
                   first = k;
                   started = true;
                 } else if (!lt(last, k)) {
                   sorted = false;
                 }
                 last = k;
               });
  if (!sorted) return false;
  if (lo != nullptr && lt(first, *lo)) return false;
  if (hi != nullptr && !lt(last, *hi)) return false;
  return true;
}

}  // namespace detail

template <class C>
std::size_t BasicLfcaTree<C>::size() const {
  reclaim::Domain::Guard guard(domain_);
  return detail::count_items<C>(root_.load(std::memory_order_acquire));
}

template <class C>
std::size_t BasicLfcaTree<C>::route_node_count() const {
  reclaim::Domain::Guard guard(domain_);
  return detail::count_routes<C>(root_.load(std::memory_order_acquire));
}

template <class C>
bool BasicLfcaTree<C>::check_integrity() const {
  reclaim::Domain::Guard guard(domain_);
  return detail::check_rec<C>(root_.load(std::memory_order_acquire), nullptr,
                              nullptr);
}

template <class C>
bool BasicLfcaTree<C>::validate(std::string* diagnostics,
                                bool expect_quiescent) const {
#if CATS_CHECKED_ENABLED
  reclaim::Domain::Guard guard(domain_);
  check::Report report;
  const bool ok = check::validate_tree<C>(
      root_.load(std::memory_order_acquire),
      expect_quiescent ? check::TreeValidateMode::kQuiescent
                       : check::TreeValidateMode::kConcurrent,
      &report);
  if (diagnostics != nullptr) *diagnostics = report.text();
  return ok;
#else
  (void)expect_quiescent;
  if (diagnostics != nullptr) diagnostics->clear();
  return true;
#endif
}

template <class C>
obs::TopologySnapshot BasicLfcaTree<C>::collect_topology() const {
  obs::TopologySnapshot out;
  reclaim::Domain::Guard guard(domain_);
  detail::topology_walk<C>(root_.load(std::memory_order_acquire), 0,
                           KeyTraits<Key>::min(), out);
  return out;
}

template <class C>
std::uint32_t BasicLfcaTree<C>::depth_of(Key key) const {
  std::uint32_t depth = 0;
  Node* n = root_.load(std::memory_order_acquire);
  while (n->type == NodeType::kRoute) {
    ++depth;
    n = (Compare{}(key, n->key) ? n->left : n->right)
            .load(std::memory_order_acquire);
  }
  return depth;
}

template <class C>
Stats BasicLfcaTree<C>::stats() const {
  Stats s;
  s.splits = counters_.read(TreeCounter::kSplits);
  s.joins = counters_.read(TreeCounter::kJoins);
  s.aborted_joins = counters_.read(TreeCounter::kAbortedJoins);
  s.range_queries = counters_.read(TreeCounter::kRangeQueries);
  s.range_bases_traversed =
      counters_.read(TreeCounter::kRangeBasesTraversed);
  s.optimistic_ranges = counters_.read(TreeCounter::kOptimisticRanges);
  s.fallback_ranges = counters_.read(TreeCounter::kFallbackRanges);
  s.helps = counters_.read(TreeCounter::kHelps);
  s.split_attempts = counters_.read(TreeCounter::kSplitAttempts);
  s.split_failed_cas = counters_.read(TreeCounter::kSplitFailedCas);
  s.split_refused_small = counters_.read(TreeCounter::kSplitRefusedSmall);
  s.join_attempts = counters_.read(TreeCounter::kJoinAttempts);
  s.update_cas_fails = counters_.read(TreeCounter::kUpdateCasFails);
  s.update_blocked_retries =
      counters_.read(TreeCounter::kUpdateBlockedRetries);
  s.contention_events = counters_.read(TreeCounter::kContentionEvents);
  s.range_cas_fails = counters_.read(TreeCounter::kRangeCasFails);
  s.help_joins = counters_.read(TreeCounter::kHelpJoins);
  s.help_ranges = counters_.read(TreeCounter::kHelpRanges);
  return s;
}

template <class C>
void BasicLfcaTree<C>::reset_stats() {
  counters_.reset();
}

}  // namespace cats::lfca
