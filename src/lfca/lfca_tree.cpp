// Explicit instantiations of BasicLfcaTree for the supported leaf-container
// policies.  The implementation lives in lfca_tree_impl.hpp; translation
// units using the tree only see the extern-template declarations in
// lfca_tree.hpp and link against this object file.
#include "lfca/lfca_tree_impl.hpp"

namespace cats::lfca {

template class BasicLfcaTree<TreapContainer>;
template class BasicLfcaTree<ChunkContainer>;
template class BasicLfcaTree<StrTreapContainer>;
template class BasicLfcaTree<StrChunkContainer>;

}  // namespace cats::lfca
