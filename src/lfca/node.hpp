// Node types of the LFCA tree (paper Fig. 3, lines 14-52), parameterized on
// the leaf-container policy C (see container_policy.hpp).
//
// The paper defines five node types sharing fields via `with_fields_from`;
// we mirror that with a single struct carrying the union of all fields plus
// a `type` tag.  Wasting a few words per node keeps every pointer transition
// of the pseudo-code a plain CAS on a `Node*`, exactly as published.
//
// All fields are written before a node is published (via CAS into a parent
// pointer) and are immutable afterwards, EXCEPT the fields declared atomic:
//   route:      left, right, valid, join_id
//   join_main:  neigh2 (PREPARING -> joined node -> DONE, or -> ABORTED)
//               and main_refs (lifetime bookkeeping, see below)
//   any base:   stat (heuristic only; in-place updates cannot affect
//               correctness — see BasicLfcaTree::range_query)
// plus the fields of ResultStorage.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>

#include "alloc/pool.hpp"
#include "common/catomic.hpp"
#include "check/check.hpp"
#include "common/types.hpp"
#include "obs/obs.hpp"

namespace cats::lfca::detail {

enum class NodeType : std::uint8_t {
  kRoute,
  kNormal,
  kJoinMain,
  kJoinNeighbor,
  kRange,
};

template <class C>
struct Node;

/// Sentinel container pointer: "result not yet computed".  Compared against
/// real heap pointers, which are never 1.
template <class C>
const typename C::Node* not_set() {
  return reinterpret_cast<const typename C::Node*>(1);
}

template <class C>
bool is_real_result(const typename C::Node* p) {
  return reinterpret_cast<std::uintptr_t>(p) > 1;
}

/// Result storage of a range query (paper's `struct rs`).  Shared by every
/// range_base node of one query; reference counted because those nodes are
/// reclaimed independently through EBR.
template <class C>
struct ResultStorage {
  /// not_set<C>() until the query linearizes; afterwards the joined
  /// container (an owned reference, possibly null for an empty result).
  cats::atomic<const typename C::Node*> result;
  cats::atomic<bool> more_than_one_base{false};
  cats::atomic<std::uint32_t> rc{1};

  ResultStorage() : result(not_set<C>()) {}
  ~ResultStorage() {
    const typename C::Node* r = result.load(std::memory_order_relaxed);
    if (is_real_result<C>(r)) C::decref(r);
  }

  // Pool-backed storage: range queries allocate one of these per query, on
  // the hot path of every scan.  Under CATS_SIM the simulator tracks the
  // block and quarantines the free until the end of the execution.
  static void* operator new(std::size_t size) {
    void* p = alloc::pool_alloc(size);
    cats::sim_note_alloc(p, size);
    return p;
  }
  static void operator delete(void* p, std::size_t size) {
    if (cats::sim_quarantine_free(p, size, &alloc::pool_free)) return;
    alloc::pool_free(p, size);
  }

  void add_ref() { rc.fetch_add(1, std::memory_order_relaxed); }
  void release() {
    // catslint: direct-delete(refcounted; last release owns the storage)
    if (rc.fetch_sub(1, std::memory_order_acq_rel) == 1) delete this;
  }
};

template <class C>
void release_join_main(Node<C>* m);

template <class C>
struct Node {
  using Key = typename C::Key;

  NodeType type;

  // --- route_node fields -------------------------------------------------
  Key key{};
  cats::atomic<Node*> left{nullptr};
  cats::atomic<Node*> right{nullptr};
  cats::atomic<bool> valid{true};
  cats::atomic<Node*> join_id{nullptr};

  // --- fields shared by every base-node type ------------------------------
  /// Owned reference to the immutable leaf container (may be null = empty).
  const typename C::Node* data = nullptr;
  /// Contention statistics (paper's `stat`).
  cats::atomic<int> stat{0};
  /// Parent route node, or null if this base node is the root.
  Node* parent = nullptr;

  // --- join_main fields ----------------------------------------------------
  Node* neigh1 = nullptr;
  /// preparing() -> (joined replacement node | aborted()) -> done().
  cats::atomic<Node*> neigh2{nullptr};
  Node* gparent = nullptr;
  Node* otherb = nullptr;
  /// Lifetime references to this join_main node: one for the tree slot plus
  /// one per join_neighbor whose `main_node` points here.  The Java
  /// original leans on the GC for exactly this edge: a join_neighbor stays
  /// reachable long after the join completes, and is_replaceable() follows
  /// its main_node pointer — so the main node must outlive every neighbor
  /// that references it, not just its own reclamation grace period.
  cats::atomic<std::uint32_t> main_refs{1};

#if CATS_OBS_ENABLED
  /// Contention-heatmap tallies (obs builds): CAS failures charged to this
  /// base's key interval and help events observed on it.  Heuristic only,
  /// like `stat`: the thread that builds a replacement copies the tallies
  /// into it before publishing (single-writer), concurrent bumps are
  /// relaxed, and a bump racing the node's unlink lands on the retired
  /// node and is dropped — the same best-effort contract as the in-place
  /// stat feed in do_update.  The topology walk reads them into the
  /// route-node contention heatmap (obs/topology.hpp).
  cats::atomic<std::uint64_t> heat_cas_fails{0};
  cats::atomic<std::uint64_t> heat_helps{0};
#endif

  // --- join_neighbor fields -------------------------------------------------
  Node* main_node = nullptr;

  // --- range_base fields -----------------------------------------------------
  Key lo{};
  Key hi{};
  ResultStorage<C>* storage = nullptr;

#if CATS_CHECKED_ENABLED
  /// Canary header (check/check.hpp): Alive while the node may be
  /// reachable, Retired once handed to the reclamation domain, poison after
  /// the storage is freed.  Written by at most one thread per transition;
  /// validators read it relaxed.
  check::Canary check_canary{check::kCanaryAlive};
#endif

  /// Pool-backed storage: every update allocates a base node and every
  /// adaptation a route/join node, so these go through the slab pool.  EBR
  /// deleters land here too (they run `delete node`), which is how
  /// grace-period expiry returns nodes to the owning pool.
  static void* operator new(std::size_t size) {
    void* p = alloc::pool_alloc(size);
    cats::sim_note_alloc(p, size);
    return p;
  }

  /// Poison-on-free (CATS_CHECKED): runs after the destructor, while the
  /// storage is still owned, so a dangling reader races against poison
  /// instead of against allocator reuse.  Safe under EBR quiescence — the
  /// node is only freed two epochs after its unlink, when no guard that
  /// could have observed it remains (direct deletes of never-published
  /// nodes are trivially safe).  The pool's free-list link overwrites only
  /// the first word, past which the poison and the dead canary survive
  /// while the block sits in a cache.  Under CATS_SIM the storage release
  /// is quarantined so the simulator can flag any later touch as a race.
  static void operator delete(void* p, std::size_t size) {
    CATS_CHECKED_ONLY(check::poison(p, size));
    if (cats::sim_quarantine_free(p, size, &alloc::pool_free)) return;
    alloc::pool_free(p, size);
  }

  explicit Node(NodeType t) : type(t) {}
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;
  ~Node() {
    CATS_CHECKED_ONLY(
        check::canary_expect_not_dead(check_canary, "lfca node"));
    if (data != nullptr) C::decref(data);
    if (type == NodeType::kRange && storage != nullptr) storage->release();
    if (type == NodeType::kJoinNeighbor && main_node != nullptr) {
      release_join_main<C>(main_node);
    }
  }

  // Sentinel pointer values (paper Fig. 3, lines 7-11).  Compared against
  // real heap pointers, which are always > 2.
  static Node* not_found() { return reinterpret_cast<Node*>(1); }
  static Node* preparing() { return nullptr; }
  static Node* done_mark() { return reinterpret_cast<Node*>(1); }
  static Node* aborted() { return reinterpret_cast<Node*>(2); }
};

/// True if `p` is a real node pointer rather than a sentinel.
template <class C>
bool is_real(const Node<C>* p) {
  return reinterpret_cast<std::uintptr_t>(p) > 2;
}

#if CATS_OBS_ENABLED
/// Copies the heatmap tallies into a replacement node.  Single-writer: the
/// thread building the replacement calls this before publishing it, so the
/// relaxed stores cannot race another writer of `to`.
template <class C>
void heat_inherit(Node<C>* to, const Node<C>* from) {
  to->heat_cas_fails.store(from->heat_cas_fails.load(std::memory_order_relaxed),
                           std::memory_order_relaxed);
  to->heat_helps.store(from->heat_helps.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
}
#endif

/// EBR deleter for LFCA nodes: the destructor releases the container
/// reference, the result-storage reference, and (for a join_neighbor) its
/// main-node reference.
template <class C>
void node_deleter(void* ptr) {
  // catslint: direct-delete(EBR deleter; runs after the grace period)
  delete static_cast<Node<C>*>(ptr);
}

/// Drops one `main_refs` reference of a join_main node; the last reference
/// deletes it.  Safe to call without a grace period ONLY from contexts that
/// no concurrent reader can race with: a neighbor's destructor (any reader
/// that obtained the pointer through that neighbor finished before the
/// neighbor could be freed) or quiescent teardown.  The tree-slot reference
/// is instead dropped by `join_main_unlink_deleter` through EBR retire, so
/// direct in-guard holders of the unlinked node get their grace period.
template <class C>
void release_join_main(Node<C>* m) {
  const std::uint32_t prev =
      m->main_refs.fetch_sub(1, std::memory_order_acq_rel);
  CATS_CHECK(prev != 0, "join_main %p: main_refs underflow",
             static_cast<void*>(m));
  if (prev == 1) {
    // catslint: direct-delete(refcounted; last main_refs holder frees)
    delete m;
  }
}

/// EBR deleter used when a join_main node is unlinked from its tree slot.
template <class C>
void join_main_unlink_deleter(void* ptr) {
  release_join_main<C>(static_cast<Node<C>*>(ptr));
}

}  // namespace cats::lfca::detail
