// Leaf-container policies for BasicLfcaTree — the paper's "Flexible"
// property (§1): "Performance characteristics of an LFCA tree can be
// changed by providing a different set implementation."
//
// A policy supplies an immutable, reference-counted ordered container with
// O(log n)-or-better lookup and persistent insert/remove/join/split, plus
// the key/value/comparator types the tree is instantiated over (the
// LeafContainer concept below).  Two container families are provided, each
// generic in <K, V, Compare>:
//
//   BasicTreapContainer — the paper's choice: balanced fat-leaf tree,
//                         O(log n) updates and splits/joins (src/treap).
//   BasicChunkContainer — a flat immutable sorted array as used by the
//                         k-ary tree and the Leaplist: O(n) updates,
//                         unbeatable scan locality (src/chunk).  §3
//                         explains why this degrades when base nodes grow —
//                         bench_ablation measures it.
//
// TreapContainer / ChunkContainer are the historical integer-key aliases;
// the Str* aliases carry the interned string-key instantiation.
#pragma once

#include <concepts>
#include <cstddef>
#include <functional>

#include "chunk/chunk.hpp"
#include "common/function_ref.hpp"
#include "common/strkey.hpp"
#include "common/types.hpp"
#include "treap/treap.hpp"

namespace cats::lfca {

/// What BasicLfcaTree requires of a leaf-container policy.  (The ordered-map
/// semantics — persistence, refcounting, Compare-consistent ordering — are
/// contracts the type system cannot express; tests/differential_test.cpp
/// checks them behaviourally.)
template <class C>
concept LeafContainer = requires(const typename C::Node* n,
                                 typename C::Key k, typename C::Value v,
                                 typename C::Ref ref, bool* flag,
                                 typename C::Key* key_out,
                                 BasicItemVisitor<typename C::Key,
                                                  typename C::Value> visit) {
  typename C::Key;
  typename C::Value;
  typename C::Compare;
  { C::kName } -> std::convertible_to<const char*>;
  { C::incref(n) };
  { C::decref(n) };
  { C::insert(n, k, v, flag) } -> std::same_as<typename C::Ref>;
  { C::remove(n, k, flag) } -> std::same_as<typename C::Ref>;
  { C::lookup(n, k, &v) } -> std::same_as<bool>;
  { C::join(n, n) } -> std::same_as<typename C::Ref>;
  { C::split_evenly(n, &ref, &ref, key_out) };
  { C::for_range(n, k, k, visit) };
  { C::empty(n) } -> std::same_as<bool>;
  { C::less_than_two_items(n) } -> std::same_as<bool>;
  { C::min_key(n) } -> std::same_as<typename C::Key>;
  { C::max_key(n) } -> std::same_as<typename C::Key>;
  { C::size(n) } -> std::same_as<std::size_t>;
};

template <class K, class V, class Cmp = std::less<K>>
struct BasicTreapContainer {
  using Impl = treap::BasicTreap<K, V, Cmp>;
  using Node = typename Impl::Node;
  using Ref = typename Impl::Ref;
  using Key = K;
  using Value = V;
  using Compare = Cmp;
  using Visitor = BasicItemVisitor<K, V>;
  static constexpr const char* kName = "treap";

  static void incref(const Node* n) { Impl::incref(n); }
  static void decref(const Node* n) { Impl::decref(n); }
  static Ref insert(const Node* t, const K& k, const V& v, bool* replaced) {
    return Impl::insert(t, k, v, replaced);
  }
  static Ref remove(const Node* t, const K& k, bool* removed) {
    return Impl::remove(t, k, removed);
  }
  static bool lookup(const Node* t, const K& k, V* v) {
    return Impl::lookup(t, k, v);
  }
  static Ref join(const Node* l, const Node* r) { return Impl::join(l, r); }
  static void split_evenly(const Node* t, Ref* l, Ref* r, K* pivot) {
    Impl::split_evenly(t, l, r, pivot);
  }
  static void for_range(const Node* t, const K& lo, const K& hi,
                        Visitor visit) {
    Impl::for_range(t, lo, hi, visit);
  }
  static bool empty(const Node* t) { return Impl::empty(t); }
  static bool less_than_two_items(const Node* t) {
    return Impl::less_than_two_items(t);
  }
  static K min_key(const Node* t) { return Impl::min_key(t); }
  static K max_key(const Node* t) { return Impl::max_key(t); }
  static std::size_t size(const Node* t) { return Impl::size(t); }
  static bool check_invariants(const Node* t) {
    return Impl::check_invariants(t);
  }
  static bool validate(const Node* t, check::Report* report) {
    return Impl::validate(t, report);
  }
};

template <class K, class V, class Cmp = std::less<K>>
struct BasicChunkContainer {
  using Impl = chunk::BasicChunk<K, V, Cmp>;
  using Node = typename Impl::Node;
  using Ref = typename Impl::Ref;
  using Key = K;
  using Value = V;
  using Compare = Cmp;
  using Visitor = BasicItemVisitor<K, V>;
  static constexpr const char* kName = "chunk";

  static void incref(const Node* n) { Impl::incref(n); }
  static void decref(const Node* n) { Impl::decref(n); }
  static Ref insert(const Node* t, const K& k, const V& v, bool* replaced) {
    return Impl::insert(t, k, v, replaced);
  }
  static Ref remove(const Node* t, const K& k, bool* removed) {
    return Impl::remove(t, k, removed);
  }
  static bool lookup(const Node* t, const K& k, V* v) {
    return Impl::lookup(t, k, v);
  }
  static Ref join(const Node* l, const Node* r) { return Impl::join(l, r); }
  static void split_evenly(const Node* t, Ref* l, Ref* r, K* pivot) {
    Impl::split_evenly(t, l, r, pivot);
  }
  static void for_range(const Node* t, const K& lo, const K& hi,
                        Visitor visit) {
    Impl::for_range(t, lo, hi, visit);
  }
  static bool empty(const Node* t) { return Impl::empty(t); }
  static bool less_than_two_items(const Node* t) {
    return Impl::less_than_two_items(t);
  }
  static K min_key(const Node* t) { return Impl::min_key(t); }
  static K max_key(const Node* t) { return Impl::max_key(t); }
  static std::size_t size(const Node* t) { return Impl::size(t); }
  static bool check_invariants(const Node* t) {
    return Impl::check_invariants(t);
  }
  static bool validate(const Node* t, check::Report* report) {
    return Impl::validate(t, report);
  }
};

/// Historical integer-key policies (the paper's configuration).
using TreapContainer = BasicTreapContainer<Key, Value, std::less<Key>>;
using ChunkContainer = BasicChunkContainer<Key, Value, std::less<Key>>;

/// Interned string-key policies (see common/strkey.hpp).
using StrTreapContainer = BasicTreapContainer<StrKey, Value, std::less<StrKey>>;
using StrChunkContainer = BasicChunkContainer<StrKey, Value, std::less<StrKey>>;

static_assert(LeafContainer<TreapContainer>);
static_assert(LeafContainer<ChunkContainer>);
static_assert(LeafContainer<StrTreapContainer>);
static_assert(LeafContainer<StrChunkContainer>);

}  // namespace cats::lfca
