// Leaf-container policies for BasicLfcaTree — the paper's "Flexible"
// property (§1): "Performance characteristics of an LFCA tree can be
// changed by providing a different set implementation."
//
// A policy supplies an immutable, reference-counted ordered container with
// O(log n)-or-better lookup and persistent insert/remove/join/split.  Two
// policies are provided:
//
//   TreapContainer — the paper's choice: balanced fat-leaf tree, O(log n)
//                    updates and splits/joins (src/treap).
//   ChunkContainer — a flat immutable sorted array as used by the k-ary
//                    tree and the Leaplist: O(n) updates, unbeatable scan
//                    locality (src/chunk).  §3 explains why this degrades
//                    when base nodes grow — bench_ablation measures it.
#pragma once

#include "chunk/chunk.hpp"
#include "common/function_ref.hpp"
#include "common/types.hpp"
#include "treap/treap.hpp"

namespace cats::lfca {

struct TreapContainer {
  using Node = treap::Node;
  using Ref = treap::Ref;
  static constexpr const char* kName = "treap";

  static void incref(const Node* n) { treap::detail::incref(n); }
  static void decref(const Node* n) { treap::detail::decref(n); }
  static Ref insert(const Node* t, Key k, Value v, bool* replaced) {
    return treap::insert(t, k, v, replaced);
  }
  static Ref remove(const Node* t, Key k, bool* removed) {
    return treap::remove(t, k, removed);
  }
  static bool lookup(const Node* t, Key k, Value* v) {
    return treap::lookup(t, k, v);
  }
  static Ref join(const Node* l, const Node* r) { return treap::join(l, r); }
  static void split_evenly(const Node* t, Ref* l, Ref* r, Key* pivot) {
    treap::split_evenly(t, l, r, pivot);
  }
  static void for_range(const Node* t, Key lo, Key hi, ItemVisitor visit) {
    treap::for_range(t, lo, hi, visit);
  }
  static bool empty(const Node* t) { return treap::empty(t); }
  static bool less_than_two_items(const Node* t) {
    return treap::less_than_two_items(t);
  }
  static Key min_key(const Node* t) { return treap::min_key(t); }
  static Key max_key(const Node* t) { return treap::max_key(t); }
  static std::size_t size(const Node* t) { return treap::size(t); }
  static bool check_invariants(const Node* t) {
    return treap::check_invariants(t);
  }
  static bool validate(const Node* t, check::Report* report) {
    return treap::validate(t, report);
  }
};

struct ChunkContainer {
  using Node = chunk::Node;
  using Ref = chunk::Ref;
  static constexpr const char* kName = "chunk";

  static void incref(const Node* n) { chunk::detail::incref(n); }
  static void decref(const Node* n) { chunk::detail::decref(n); }
  static Ref insert(const Node* t, Key k, Value v, bool* replaced) {
    return chunk::insert(t, k, v, replaced);
  }
  static Ref remove(const Node* t, Key k, bool* removed) {
    return chunk::remove(t, k, removed);
  }
  static bool lookup(const Node* t, Key k, Value* v) {
    return chunk::lookup(t, k, v);
  }
  static Ref join(const Node* l, const Node* r) { return chunk::join(l, r); }
  static void split_evenly(const Node* t, Ref* l, Ref* r, Key* pivot) {
    chunk::split_evenly(t, l, r, pivot);
  }
  static void for_range(const Node* t, Key lo, Key hi, ItemVisitor visit) {
    chunk::for_range(t, lo, hi, visit);
  }
  static bool empty(const Node* t) { return chunk::empty(t); }
  static bool less_than_two_items(const Node* t) {
    return chunk::less_than_two_items(t);
  }
  static Key min_key(const Node* t) { return chunk::min_key(t); }
  static Key max_key(const Node* t) { return chunk::max_key(t); }
  static std::size_t size(const Node* t) { return chunk::size(t); }
  static bool check_invariants(const Node* t) {
    return chunk::check_invariants(t);
  }
  static bool validate(const Node* t, check::Report* report) {
    return chunk::validate(t, report);
  }
};

}  // namespace cats::lfca
