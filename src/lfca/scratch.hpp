// Per-thread scratch vectors for range queries.
//
// all_in_range keeps three route-node stacks (descent stack, its retry
// backup and the collected base nodes) and the optimistic fast path keeps
// two more for its double collect.  Allocating those five std::vectors per
// query was a measurable slice of range-query cost; instead each thread
// keeps a small pool of scratch frames whose vectors retain their capacity
// across queries, so a warmed-up thread performs range queries without
// touching the allocator at all.
//
// Frames are handed out through an RAII lease with a depth counter because
// range queries re-enter: helping a wider in-flight query recurses into
// all_in_range, and the test hooks can nest whole queries.  Each activation
// gets its own frame; the per-thread pool grows to the deepest nesting ever
// seen (a handful of frames) and is freed at thread exit.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "lfca/node.hpp"

namespace cats::lfca::detail {

/// The reusable vectors of one range-query activation.
template <class C>
struct RangeScratch {
  std::vector<Node<C>*> stack;
  std::vector<Node<C>*> backup;
  std::vector<Node<C>*> done;
  std::vector<Node<C>*> scan1;
  std::vector<Node<C>*> scan2;

  void reset() {
    stack.clear();
    backup.clear();
    done.clear();
    scan1.clear();
    scan2.clear();
  }

  RangeScratch() = default;
  RangeScratch(const RangeScratch&) = delete;
  RangeScratch& operator=(const RangeScratch&) = delete;
};

/// RAII lease of a per-thread scratch frame; recursion-safe (nested leases
/// get distinct frames).
template <class C>
class ScratchLease {
 public:
  ScratchLease() {
    Pool& pool = tls();
    if (pool.depth == pool.frames.size()) {
      pool.frames.push_back(std::make_unique<RangeScratch<C>>());
    }
    frame_ = pool.frames[pool.depth++].get();
    frame_->reset();
  }
  ~ScratchLease() { --tls().depth; }

  ScratchLease(const ScratchLease&) = delete;
  ScratchLease& operator=(const ScratchLease&) = delete;

  RangeScratch<C>& operator*() const { return *frame_; }
  RangeScratch<C>* operator->() const { return frame_; }

 private:
  struct Pool {
    std::vector<std::unique_ptr<RangeScratch<C>>> frames;
    std::size_t depth = 0;
  };
  static Pool& tls() {
    thread_local Pool pool;
    return pool;
  }

  RangeScratch<C>* frame_;
};

}  // namespace cats::lfca::detail
