// Lock-based contention adapting search tree (CA tree) baseline.
//
// The predecessor design the paper builds on (Sagonas & Winblad [17, 22]):
// the same route-node/base-node architecture and the same
// contention-statistics heuristics as the LFCA tree, but base nodes are
// protected by locks.  We implement the "immutable leaf container" variant
// of [22]: base nodes point to the same persistent fat-leaf containers the
// LFCA tree uses, so lookups and range queries can read container snapshots
// without holding locks.
//
//   * update: find base, lock it (a failed try_lock counts as contention),
//     retry if the base was invalidated, replace the container, adjust the
//     statistics, possibly split/join, unlock.
//   * lookup: lock-free — read the container pointer, search the immutable
//     snapshot, retry if the base was invalidated before the read.
//   * range query: lock every base node covering the range in ascending key
//     order (deadlock-free: joins only try_lock), snapshot the container
//     pointers, unlock, then scan outside the locks — the optimization [22]
//     that keeps conflict time short.
//
// Simplification vs. the original: structural surgery (splits and joins)
// additionally serializes on one per-tree mutex.  Adaptations are rare
// (~1/ms in the paper's Table 1), so this changes no benchmark shape, and it
// removes the hardest lock-ordering corner of the original; the trade-off is
// documented in DESIGN.md.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "common/function_ref.hpp"
#include "common/types.hpp"
#include "lfca/config.hpp"
#include "reclaim/ebr.hpp"
#include "treap/treap.hpp"

namespace cats::calock {

/// Reuses the LFCA heuristic constants; `optimistic_ranges` is ignored.
using Config = lfca::Config;

class CaTree {
 public:
  struct Node;  // opaque; defined in ca_tree.cpp

  explicit CaTree(reclaim::Domain& domain = reclaim::Domain::global(),
                  const Config& config = Config());
  ~CaTree();

  CaTree(const CaTree&) = delete;
  CaTree& operator=(const CaTree&) = delete;

  /// Blocking (lock-based); true iff the key was not present before.
  bool insert(Key key, Value value);
  /// Blocking; true iff the key was present.
  bool remove(Key key);
  /// Lock-free read of an immutable snapshot.
  bool lookup(Key key, Value* value_out = nullptr) const;
  /// Linearizable: locks all covered base nodes, snapshots, scans unlocked.
  void range_query(Key lo, Key hi, ItemVisitor visit) const;

  /// Atomically replaces the value of every item with lo <= key <= hi by
  /// `f(key, value)`.  Linearizable: all covered base nodes are locked
  /// while their containers are rebuilt.  This is the range-update
  /// operation of the companion paper (Sagonas & Winblad, LCPC'16 [16]);
  /// the paper notes (§3) that locks make extending the interface with
  /// such multi-item operations easy — which is exactly what this method
  /// demonstrates.  Returns the number of items updated.
  std::size_t range_update(Key lo, Key hi,
                           FunctionRef<Value(Key, Value)> f);

  /// Maintenance/testing extension, mirroring LfcaTree: adapts the base
  /// node covering `hint` regardless of its statistics.
  bool force_split(Key hint);
  bool force_join(Key hint);

  std::size_t size() const;
  std::size_t route_node_count() const;
  std::uint64_t splits() const {
    return splits_.load(std::memory_order_relaxed);
  }
  std::uint64_t joins() const { return joins_.load(std::memory_order_relaxed); }

  reclaim::Domain& domain() const { return domain_; }

 private:
  enum class UpdateKind { kInsert, kRemove };
  bool do_update(UpdateKind kind, Key key, Value value);
  Node* find_base(Key key) const;
  /// Finds the base covering `key` and the smallest route key bounding its
  /// span from above.  `*bounded` is false when the base's span is
  /// unbounded above (rightmost path) — an explicit flag, because every key
  /// value including kKeyMax is a legitimate route pivot and cannot double
  /// as an "unbounded" marker.
  Node* find_base_with_bound(Key key, Key* upper_bound, bool* bounded) const;
  // `hint` is any key routed to `base` by the route nodes (callers know one
  // from their own traversal); it locates the base's parent without a
  // parent pointer.  Caller holds base->lock for all three.
  void adapt(Node* base, Key hint);
  bool split(Node* base, Key hint);
  bool join(Node* base, Key hint);
  Node* parent_of(Node* target, Key hint, Node** gparent) const;

  reclaim::Domain& domain_;
  const Config config_;
  std::atomic<Node*> root_;
  mutable std::mutex structure_mutex_;
  std::atomic<std::uint64_t> splits_{0};
  std::atomic<std::uint64_t> joins_{0};
};

}  // namespace cats::calock
