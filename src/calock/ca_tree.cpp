#include "calock/ca_tree.hpp"

#include <cassert>

#include "common/rng.hpp"

namespace cats::calock {

struct CaTree::Node {
  const bool is_route;

  // --- route fields -------------------------------------------------------
  const Key key;
  std::atomic<Node*> left{nullptr};
  std::atomic<Node*> right{nullptr};

  // --- base fields ----------------------------------------------------------
  std::mutex lock;
  std::atomic<bool> valid{true};
  int stat = 0;  // guarded by `lock`
  /// Owned reference to the immutable container; swapped under `lock`, read
  /// lock-free by lookups and (post-lock) range queries.
  std::atomic<const treap::Node*> data{nullptr};

  explicit Node(Key route_key) : is_route(true), key(route_key) {}
  explicit Node(const treap::Node* d) : is_route(false), key(0) {
    data.store(d, std::memory_order_relaxed);
  }
  ~Node() {
    const treap::Node* d = data.load(std::memory_order_relaxed);
    if (d != nullptr) treap::detail::decref(d);
  }
};

namespace {

using Node = CaTree::Node;

// catslint: direct-delete(EBR deleter; runs after the grace period)
void node_deleter(void* p) { delete static_cast<Node*>(p); }

void release_container(reclaim::Domain& domain, const treap::Node* root) {
  if (root == nullptr) return;
  // Shared retire: after a split both halves can reuse subtrees of the old
  // root (and a join can hand an unchanged root onward), so the same
  // address may legitimately be pending retirement from several owners.
  domain.retire_shared(
      const_cast<treap::Node*>(root), +[](void* p) {
        treap::detail::decref(static_cast<const treap::Node*>(p));
      });
}

Xoshiro256& thread_rng() {
  thread_local Xoshiro256 rng(mix64(reinterpret_cast<std::uintptr_t>(&rng)));
  return rng;
}

// catslint: quiescent(destructor-only teardown; no concurrent operations)
void destroy_rec(Node* n) {
  if (n == nullptr) return;
  if (n->is_route) {
    destroy_rec(n->left.load(std::memory_order_relaxed));
    destroy_rec(n->right.load(std::memory_order_relaxed));
  }
  delete n;  // catslint: direct-delete(quiescent teardown; tree is private)
}

}  // namespace

CaTree::CaTree(reclaim::Domain& domain, const Config& config)
    : domain_(domain), config_(config) {
  root_.store(new Node(static_cast<const treap::Node*>(nullptr)),
              std::memory_order_release);
}

// catslint: quiescent(destructor; caller guarantees no concurrent access)
CaTree::~CaTree() { destroy_rec(root_.load(std::memory_order_relaxed)); }

CaTree::Node* CaTree::find_base(Key key) const {
  Node* n = root_.load(std::memory_order_acquire);
  while (n->is_route) {
    n = (key < n->key ? n->left : n->right).load(std::memory_order_acquire);
  }
  return n;
}

CaTree::Node* CaTree::find_base_with_bound(Key key, Key* upper_bound,
                                           bool* bounded) const {
  Key bound{};
  bool has_bound = false;
  Node* n = root_.load(std::memory_order_acquire);
  while (n->is_route) {
    if (key < n->key) {
      bound = n->key;
      has_bound = true;
      n = n->left.load(std::memory_order_acquire);
    } else {
      n = n->right.load(std::memory_order_acquire);
    }
  }
  *upper_bound = bound;
  *bounded = has_bound;
  return n;
}

// Locates the parent (and grandparent) of `target` by descending with
// `hint`, a key the route nodes direct to `target`.  Caller holds
// structure_mutex_, so the route structure is frozen; `target` is valid and
// locked, hence reachable.  Returns null when target is the root.
CaTree::Node* CaTree::parent_of(Node* target, Key hint,
                                Node** gparent) const {
  Node* gp = nullptr;
  Node* prev = nullptr;
  Node* cur = root_.load(std::memory_order_acquire);
  while (cur != target) {
    assert(cur->is_route);
    gp = prev;
    prev = cur;
    cur = (hint < cur->key ? cur->left : cur->right)
              .load(std::memory_order_acquire);
  }
  if (gparent != nullptr) *gparent = gp;
  return prev;
}

bool CaTree::do_update(UpdateKind kind, Key key, Value value) {
  reclaim::Domain::Guard guard(domain_);
  while (true) {
    Node* base = find_base(key);
    bool contended = false;
    if (!base->lock.try_lock()) {
      base->lock.lock();
      contended = true;  // the statistics signal of the CA tree
    }
    if (!base->valid.load(std::memory_order_relaxed)) {
      base->lock.unlock();
      continue;  // base was split/joined away; retry from the root
    }
    const treap::Node* old = base->data.load(std::memory_order_relaxed);
    bool changed = false;
    treap::Ref next = kind == UpdateKind::kInsert
                          ? treap::insert(old, key, value, &changed)
                          : treap::remove(old, key, &changed);
    base->data.store(next.release(), std::memory_order_release);
    release_container(domain_, old);
    if (contended) {
      if (base->stat <= config_.high_cont) base->stat += config_.cont_contrib;
    } else {
      if (base->stat >= config_.low_cont) base->stat -= config_.low_cont_contrib;
    }
    adapt(base, key);
    base->lock.unlock();
    return kind == UpdateKind::kInsert ? !changed : changed;
  }
}

bool CaTree::insert(Key key, Value value) {
  return do_update(UpdateKind::kInsert, key, value);
}

bool CaTree::remove(Key key) {
  return do_update(UpdateKind::kRemove, key, Value{});
}

bool CaTree::lookup(Key key, Value* value_out) const {
  reclaim::Domain::Guard guard(domain_);
  while (true) {
    Node* base = find_base(key);
    const treap::Node* d = base->data.load(std::memory_order_acquire);
    if (!base->valid.load(std::memory_order_acquire)) continue;
    // `base` was still current when we read `d`: linearize at that read.
    return treap::lookup(d, key, value_out);
  }
}

void CaTree::range_query(Key lo, Key hi, ItemVisitor visit) const {
  auto* self = const_cast<CaTree*>(this);
  reclaim::Domain::Guard guard(domain_);

  std::vector<Node*> locked;
  std::vector<Key> cursors;  // search key that reached each locked base
  std::vector<const treap::Node*> snapshots;
  while (true) {
    locked.clear();
    cursors.clear();
    Key cursor = lo;
    bool restart = false;
    while (true) {
      Key bound{};
      bool bounded = false;
      Node* base = find_base_with_bound(cursor, &bound, &bounded);
      base->lock.lock();  // ascending key order: deadlock-free vs. ranges
      if (!base->valid.load(std::memory_order_relaxed)) {
        base->lock.unlock();
        // The tree changed under this segment.  Already-locked bases are
        // still valid (invalidation needs their lock), so only this
        // segment needs a retry — but the route that produced `bound` may
        // be gone; restart the whole collection for simplicity.
        restart = true;
        break;
      }
      locked.push_back(base);
      cursors.push_back(cursor);
      if (!bounded || bound > hi) break;
      cursor = bound;
    }
    if (!restart) break;
    for (Node* b : locked) b->lock.unlock();
  }

  // All covered bases are locked simultaneously: snapshot and release.
  snapshots.reserve(locked.size());
  for (Node* b : locked) {
    snapshots.push_back(b->data.load(std::memory_order_relaxed));
  }
  if (locked.size() > 1) {
    // Multi-base range query: steer the heuristics toward coarser leaves.
    for (Node* b : locked) {
      if (b->stat >= config_.low_cont) b->stat -= config_.range_contrib;
    }
  }
  for (Node* b : locked) b->lock.unlock();

  // Scan outside the locks — the conflict-time optimization of [22].
  for (const treap::Node* snapshot : snapshots) {
    treap::for_range(snapshot, lo, hi, visit);
  }

  // Adaptation probe on one random covered base (single lock: safe).
  if (locked.size() > 1) {
    const std::size_t pick = thread_rng().next_below(locked.size());
    Node* probe = locked[pick];
    probe->lock.lock();
    if (probe->valid.load(std::memory_order_relaxed)) {
      self->adapt(probe, cursors[pick]);
    }
    probe->lock.unlock();
  }
}

std::size_t CaTree::range_update(Key lo, Key hi,
                                 FunctionRef<Value(Key, Value)> f) {
  reclaim::Domain::Guard guard(domain_);

  // Lock every covered base in ascending key order (as range_query does).
  std::vector<Node*> locked;
  while (true) {
    locked.clear();
    Key cursor = lo;
    bool restart = false;
    while (true) {
      Key bound{};
      bool bounded = false;
      Node* base = find_base_with_bound(cursor, &bound, &bounded);
      base->lock.lock();
      if (!base->valid.load(std::memory_order_relaxed)) {
        base->lock.unlock();
        restart = true;
        break;
      }
      locked.push_back(base);
      if (!bounded || bound > hi) break;
      cursor = bound;
    }
    if (!restart) break;
    for (Node* b : locked) b->lock.unlock();
  }

  // Rebuild each container with the transformed values while holding all
  // the locks: the whole multi-base update appears atomic.
  std::size_t updated = 0;
  for (Node* base : locked) {
    const treap::Node* old = base->data.load(std::memory_order_relaxed);
    if (old == nullptr) continue;
    treap::Ref next;
    const treap::Node* old_root = old;
    treap::for_range(old_root, kKeyMin, kKeyMax, [&](Key k, Value v) {
      const Value nv = (k >= lo && k <= hi) ? f(k, v) : v;
      if (k >= lo && k <= hi) ++updated;
      next = treap::insert(next.get(), k, nv, nullptr);
    });
    base->data.store(next.release(), std::memory_order_release);
    release_container(domain_, old);
  }
  for (Node* b : locked) b->lock.unlock();
  return updated;
}

// Caller holds base->lock and base is valid.
void CaTree::adapt(Node* base, Key hint) {
  if (base->stat > config_.high_cont) {
    split(base, hint);
  } else if (base->stat < config_.low_cont) {
    join(base, hint);
  }
}

bool CaTree::split(Node* base, Key hint) {
  const treap::Node* d = base->data.load(std::memory_order_relaxed);
  if (treap::less_than_two_items(d)) return false;
  std::lock_guard<std::mutex> structure(structure_mutex_);
  Node* parent = parent_of(base, hint, nullptr);

  treap::Ref left_data;
  treap::Ref right_data;
  Key pivot = 0;
  treap::split_evenly(d, &left_data, &right_data, &pivot);
  auto* route = new Node(pivot);
  route->left.store(new Node(left_data.release()), std::memory_order_relaxed);
  route->right.store(new Node(right_data.release()),
                     std::memory_order_relaxed);

  base->valid.store(false, std::memory_order_release);
  if (parent == nullptr) {
    root_.store(route, std::memory_order_release);
  } else if (parent->left.load(std::memory_order_relaxed) == base) {
    parent->left.store(route, std::memory_order_release);
  } else {
    parent->right.store(route, std::memory_order_release);
  }
  domain_.retire(base, &node_deleter);
  splits_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool CaTree::join(Node* base, Key hint) {
  std::lock_guard<std::mutex> structure(structure_mutex_);
  Node* gparent = nullptr;
  Node* parent = parent_of(base, hint, &gparent);
  if (parent == nullptr) return false;  // the root base node cannot join

  const bool left_child =
      parent->left.load(std::memory_order_relaxed) == base;
  Node* sibling =
      (left_child ? parent->right : parent->left).load(std::memory_order_relaxed);
  // Neighbor: the base adjacent to `base` inside the sibling subtree.
  Node* np = parent;
  Node* neighbor = sibling;
  while (neighbor->is_route) {
    np = neighbor;
    neighbor = (left_child ? neighbor->left : neighbor->right)
                   .load(std::memory_order_relaxed);
  }
  if (!neighbor->lock.try_lock()) {
    return false;  // avoid deadlock: abort instead
  }
  if (!neighbor->valid.load(std::memory_order_relaxed)) {
    neighbor->lock.unlock();
    return false;
  }

  const treap::Node* base_data = base->data.load(std::memory_order_relaxed);
  const treap::Node* neigh_data =
      neighbor->data.load(std::memory_order_relaxed);
  treap::Ref merged_data = left_child ? treap::join(base_data, neigh_data)
                                      : treap::join(neigh_data, base_data);
  auto* merged = new Node(merged_data.release());

  base->valid.store(false, std::memory_order_release);
  neighbor->valid.store(false, std::memory_order_release);

  Node* replacement;
  if (sibling == neighbor) {
    replacement = merged;
  } else {
    // Replace the neighbor inside the sibling subtree, promote the sibling.
    if (np->left.load(std::memory_order_relaxed) == neighbor) {
      np->left.store(merged, std::memory_order_release);
    } else {
      np->right.store(merged, std::memory_order_release);
    }
    replacement = sibling;
  }
  if (gparent == nullptr) {
    root_.store(replacement, std::memory_order_release);
  } else if (gparent->left.load(std::memory_order_relaxed) == parent) {
    gparent->left.store(replacement, std::memory_order_release);
  } else {
    gparent->right.store(replacement, std::memory_order_release);
  }
  domain_.retire(parent, &node_deleter);
  domain_.retire(base, &node_deleter);
  domain_.retire(neighbor, &node_deleter);
  neighbor->lock.unlock();
  joins_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool CaTree::force_split(Key hint) {
  reclaim::Domain::Guard guard(domain_);
  while (true) {
    Node* base = find_base(hint);
    base->lock.lock();
    if (!base->valid.load(std::memory_order_relaxed)) {
      base->lock.unlock();
      continue;
    }
    const bool done = split(base, hint);
    base->lock.unlock();
    return done;
  }
}

bool CaTree::force_join(Key hint) {
  reclaim::Domain::Guard guard(domain_);
  while (true) {
    Node* base = find_base(hint);
    base->lock.lock();
    if (!base->valid.load(std::memory_order_relaxed)) {
      base->lock.unlock();
      continue;
    }
    const bool done = join(base, hint);
    base->lock.unlock();
    return done;
  }
}

namespace {

std::size_t count_items(Node* n) {
  if (n->is_route) {
    return count_items(n->left.load(std::memory_order_acquire)) +
           count_items(n->right.load(std::memory_order_acquire));
  }
  return treap::size(n->data.load(std::memory_order_acquire));
}

std::size_t count_routes(Node* n) {
  if (!n->is_route) return 0;
  return 1 + count_routes(n->left.load(std::memory_order_acquire)) +
         count_routes(n->right.load(std::memory_order_acquire));
}

}  // namespace

std::size_t CaTree::size() const {
  reclaim::Domain::Guard guard(domain_);
  return count_items(root_.load(std::memory_order_acquire));
}

std::size_t CaTree::route_node_count() const {
  reclaim::Domain::Guard guard(domain_);
  return count_routes(root_.load(std::memory_order_acquire));
}

}  // namespace cats::calock
