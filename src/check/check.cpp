#include "check/check.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <unordered_map>

namespace cats::check {

void fail(const char* file, int line, const char* fmt, ...) {
  std::fprintf(stderr, "CATS_CHECKED failure at %s:%d: ", file, line);
  std::va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
  std::fflush(stderr);
  std::abort();
}

void Report::add(const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  addv(fmt, args);
  va_end(args);
}

void Report::addv(const char* fmt, std::va_list args) {
  char buffer[1024];
  std::vsnprintf(buffer, sizeof buffer, fmt, args);
  failures_.emplace_back(buffer);
}

std::string Report::text() const {
  std::string out;
  for (const std::string& failure : failures_) {
    if (!out.empty()) out += '\n';
    out += failure;
  }
  return out;
}

#if CATS_CHECKED_ENABLED

const char* canary_name(std::uint64_t value) {
  switch (canary_state(value)) {
    case CanaryState::kAlive:
      return "alive";
    case CanaryState::kRetired:
      return "retired";
    case CanaryState::kDead:
      return value == kPoisonWord ? "freed (poison)" : "corrupt";
  }
  return "corrupt";
}

void canary_mark_retired(Canary& canary, const char* what) {
  const std::uint64_t old =
      canary.exchange(kCanaryRetired, std::memory_order_relaxed);
  if (old == kCanaryAlive) return;
  if (old == kCanaryRetired) {
    fail(__FILE__, __LINE__, "double retire of %s (canary already retired)",
         what);
  }
  fail(__FILE__, __LINE__,
       "retire of %s whose canary is %s (0x%016llx) — use-after-free or "
       "memory corruption",
       what, canary_name(old), static_cast<unsigned long long>(old));
}

void canary_expect_alive(const Canary& canary, const char* what) {
  const std::uint64_t value = canary.load(std::memory_order_relaxed);
  if (value == kCanaryAlive) return;
  fail(__FILE__, __LINE__,
       "%s touched while its canary is %s (0x%016llx) — use-after-retire or "
       "memory corruption",
       what, canary_name(value), static_cast<unsigned long long>(value));
}

void canary_expect_not_dead(const Canary& canary, const char* what) {
  const std::uint64_t value = canary.load(std::memory_order_relaxed);
  if (value == kCanaryAlive || value == kCanaryRetired) return;
  fail(__FILE__, __LINE__,
       "%s freed while its canary is %s (0x%016llx) — double free or memory "
       "corruption",
       what, canary_name(value), static_cast<unsigned long long>(value));
}

void poison(void* ptr, std::size_t size) {
  std::memset(ptr, kPoisonByte, size);
}

// ---------------------------------------------------------------------------
// Retired-pointer registry.
//
// A mutex-guarded hash map is plenty: the registry exists only in checked
// builds, where diagnostic determinism beats throughput.  The singleton is
// leaked so the at-exit census (and any retirement running during static
// destruction) can never touch a destroyed map.
// ---------------------------------------------------------------------------

namespace {

struct RetiredRegistry {
  struct Entry {
    std::string site;      // first retirement call site ("file:line")
    std::size_t count;     // pending retirements of this address
    bool shared;           // refcounted: aliases may be retired concurrently
  };

  std::mutex mutex;
  std::unordered_map<void*, Entry> entries;

  static RetiredRegistry& instance() {
    static RetiredRegistry* const registry = [] {
      auto* r = new RetiredRegistry();  // leaked on purpose
      std::atexit(&RetiredRegistry::report_census);
      return r;
    }();
    return *registry;
  }

  /// At-exit leak census.  Pending retirements of the intentionally-leaked
  /// global EBR domain are expected here; the census reports, it does not
  /// fail — tests assert emptiness on drained local domains instead.
  static void report_census() {
    const std::vector<CensusEntry> entries = census();
    if (entries.empty()) return;
    std::size_t total = 0;
    for (const CensusEntry& entry : entries) total += entry.count;
    std::fprintf(stderr,
                 "CATS_CHECKED leak census: %zu retirement(s) never "
                 "reclaimed (pending in a reclamation domain at exit):\n",
                 total);
    for (const CensusEntry& entry : entries) {
      std::fprintf(stderr, "  %6zu  retired at %s\n", entry.count,
                   entry.site.c_str());
    }
    std::fflush(stderr);
  }
};

}  // namespace

void on_retire(void* ptr, const char* site) {
  RetiredRegistry& registry = RetiredRegistry::instance();
  std::lock_guard<std::mutex> lock(registry.mutex);
  auto [it, inserted] =
      registry.entries.emplace(ptr, RetiredRegistry::Entry{site, 1, false});
  if (!inserted) {
    fail(__FILE__, __LINE__,
         "double retire of %p: first retired at %s, retired again at %s",
         ptr, it->second.site.c_str(), site);
  }
}

void on_retire_shared(void* ptr, const char* site) {
  RetiredRegistry& registry = RetiredRegistry::instance();
  std::lock_guard<std::mutex> lock(registry.mutex);
  auto [it, inserted] =
      registry.entries.emplace(ptr, RetiredRegistry::Entry{site, 1, true});
  if (!inserted) {
    if (!it->second.shared) {
      fail(__FILE__, __LINE__,
           "shared retire of %p aliases an exclusive retirement: first "
           "retired at %s, retired again at %s",
           ptr, it->second.site.c_str(), site);
    }
    ++it->second.count;
  }
}

void on_reclaim(void* ptr) {
  RetiredRegistry& registry = RetiredRegistry::instance();
  std::lock_guard<std::mutex> lock(registry.mutex);
  auto it = registry.entries.find(ptr);
  if (it == registry.entries.end()) {
    fail(__FILE__, __LINE__,
         "reclaiming %p that was never retired (or already reclaimed)", ptr);
  }
  if (--it->second.count == 0) registry.entries.erase(it);
}

std::vector<CensusEntry> census() {
  RetiredRegistry& registry = RetiredRegistry::instance();
  std::unordered_map<std::string, std::size_t> by_site;
  {
    std::lock_guard<std::mutex> lock(registry.mutex);
    for (const auto& [ptr, entry] : registry.entries) {
      by_site[entry.site] += entry.count;
    }
  }
  std::vector<CensusEntry> out;
  out.reserve(by_site.size());
  for (auto& [site, count] : by_site) out.push_back({site, count});
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.count != b.count ? a.count > b.count : a.site < b.site;
  });
  return out;
}

std::size_t registered_retirements() {
  RetiredRegistry& registry = RetiredRegistry::instance();
  std::lock_guard<std::mutex> lock(registry.mutex);
  std::size_t total = 0;
  for (const auto& [ptr, entry] : registry.entries) total += entry.count;
  return total;
}

#endif  // CATS_CHECKED_ENABLED

}  // namespace cats::check
