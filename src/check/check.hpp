// Correctness-checking build gate (CATS_CHECKED).
//
// The LFCA tree's correctness rests on invariants the type system cannot
// express: route-node BST order over immutable base nodes, container
// key-range containment, the join protocol's reachability rules, and the
// retire-once/free-once discipline of the reclamation substrate that stands
// in for the JVM garbage collector the paper's Java artifact relied on.
// This module provides the machinery to check those invariants mechanically:
//
//   * `CATS_CHECK(cond, fmt, ...)` — fatal assertion with a printf-style
//     diagnostic, compiled to nothing when the gate is off.
//   * `Report` — accumulator for non-fatal validators (validate_tree,
//     treap::validate, chunk::validate) so tests can inspect which invariant
//     broke instead of just getting `false`.
//   * Canary protocol — every reclaimable node carries a canary word (gated
//     member) that moves Alive -> Retired -> poison; incref/decref/retire
//     hooks verify the expected state and turn use-after-retire,
//     double-retire and double-free into immediate diagnostics instead of
//     silent corruption.
//   * Retired-pointer registry — `on_retire`/`on_reclaim` bracket every
//     EBR/hazard retirement, detect double retires across domains, and feed
//     an at-exit leak census with per-call-site counts.
//
// Mirrors the CATS_OBS pattern (obs/obs.hpp): `CATS_CHECKED_ENABLED` is
// defined 0 or 1 on every target through the cats_common interface library;
// an OFF build compiles every hook to nothing — no fields, no loads, no
// code — so the release layout and hot paths are bit-identical to an
// unchecked build.
#pragma once

#include <atomic>
#include <cstdarg>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#ifndef CATS_CHECKED_ENABLED
#define CATS_CHECKED_ENABLED 0
#endif

#if CATS_CHECKED_ENABLED
#define CATS_CHECKED_ONLY(...) \
  do {                         \
    __VA_ARGS__;               \
  } while (0)
/// Fatal invariant check: prints "CATS_CHECKED failure" plus the formatted
/// diagnostic to stderr and aborts.  The prefix is stable so death tests and
/// log scrapers can match on it.
#define CATS_CHECK(cond, ...)                                  \
  do {                                                         \
    if (!(cond)) {                                             \
      ::cats::check::fail(__FILE__, __LINE__, __VA_ARGS__);    \
    }                                                          \
  } while (0)
#else
#define CATS_CHECKED_ONLY(...) \
  do {                         \
  } while (0)
#define CATS_CHECK(cond, ...) \
  do {                        \
  } while (0)
#endif

namespace cats::check {

/// True in builds where the checking hooks are live.
inline constexpr bool kCheckedEnabled = CATS_CHECKED_ENABLED != 0;

// ---------------------------------------------------------------------------
// Canary values.  Chosen so no two states share a byte pattern and none
// looks like a plausible pointer, size or refcount.
// ---------------------------------------------------------------------------

/// Node is constructed and may be reachable from a shared structure.
inline constexpr std::uint64_t kCanaryAlive = 0xA11CE0DE'A11CE0DEull;
/// Node was unlinked and handed to a reclamation domain; concurrent readers
/// inside the grace period may still dereference its payload, but it must
/// never be retired again or reached by a quiescent validator.
inline constexpr std::uint64_t kCanaryRetired = 0x0DDB10CD'0DDB10CDull;
/// The byte every freed node's storage is filled with (poison-on-free): a
/// stale pointer dereference reads 0xEF...EF instead of plausible data, and
/// a canary load from poisoned storage fails both state checks.
inline constexpr int kPoisonByte = 0xEF;
inline constexpr std::uint64_t kPoisonWord = 0xEFEFEFEF'EFEFEFEFull;

/// Prints "CATS_CHECKED failure at file:line: <formatted message>" to
/// stderr and aborts.  Also the funnel for validator death tests.
[[noreturn]] void fail(const char* file, int line, const char* fmt, ...)
    __attribute__((format(printf, 3, 4)));

// ---------------------------------------------------------------------------
// Report: diagnostic accumulator for the non-fatal validators.
// ---------------------------------------------------------------------------

class Report {
 public:
  /// Records one failed invariant (printf-style).
  void add(const char* fmt, ...) __attribute__((format(printf, 2, 3)));
  void addv(const char* fmt, std::va_list args);

  bool ok() const { return failures_.empty(); }
  std::size_t failure_count() const { return failures_.size(); }
  const std::vector<std::string>& failures() const { return failures_; }

  /// All failures joined with newlines (empty when ok()).
  std::string text() const;

 private:
  std::vector<std::string> failures_;
};

#if CATS_CHECKED_ENABLED

// ---------------------------------------------------------------------------
// Canary helpers.  The canary word lives inside the node (a "canary
// header"); these free functions keep the state-machine logic in one place.
// The canary is an atomic written only by the single constructing /
// retiring / freeing thread; concurrent validators read it relaxed, so the
// checking itself introduces no data races.
// ---------------------------------------------------------------------------

/// The canary member type.  Gated node structs declare
/// `CATS_CHECKED_ONLY`-style:  `check::Canary check_canary{...}`.
using Canary = std::atomic<std::uint64_t>;

enum class CanaryState { kAlive, kRetired, kDead };

inline CanaryState canary_state(std::uint64_t value) {
  if (value == kCanaryAlive) return CanaryState::kAlive;
  if (value == kCanaryRetired) return CanaryState::kRetired;
  return CanaryState::kDead;
}

/// Human-readable canary classification for diagnostics.
const char* canary_name(std::uint64_t value);

/// Alive -> Retired transition; fails on double retire (Retired -> Retired)
/// and on retiring freed/corrupt storage.
void canary_mark_retired(Canary& canary, const char* what);

/// Verifies the canary is Alive (incref/decref/read paths).
void canary_expect_alive(const Canary& canary, const char* what);

/// Verifies a node handed to a deleter was constructed and not yet freed
/// (Alive for direct deletes of unpublished nodes, Retired for reclaimed
/// ones).
void canary_expect_not_dead(const Canary& canary, const char* what);

/// Fills `size` bytes with kPoisonByte.  Called after the destructor and
/// before the storage is returned to the allocator, so any dangling reader
/// that wins the race against allocator reuse sees poison, not plausible
/// data.
void poison(void* ptr, std::size_t size);

// ---------------------------------------------------------------------------
// Retired-pointer registry (reclamation checker).
//
// Brackets every retirement that flows through a reclamation domain:
//   retire(ptr)  -> on_retire(ptr, site)   [fails on double retire]
//   deleter(ptr) -> on_reclaim(ptr)        [fails on reclaim-without-retire]
//
// Whatever is still registered at process exit is reported as the leak
// census, grouped by retirement call site.  Entries owned by the
// intentionally-leaked global EBR domain show up there too — the census is
// a report, not a failure; tests assert emptiness on drained local domains
// via `census()`.
// ---------------------------------------------------------------------------

void on_retire(void* ptr, const char* site);

/// Retirement of one *reference* to a refcounted object (the deleter is a
/// decref, not a destructor).  Several owners may retire the same address
/// while earlier retirements are still pending — e.g. two CA-tree base
/// nodes whose containers share a treap root after a split/join — so the
/// registry counts pending retirements per address instead of failing.
/// Each one must still be balanced by exactly one on_reclaim.  Mixing a
/// shared retire with a pending exclusive retire of the same address is
/// always a bug and still fails.
void on_retire_shared(void* ptr, const char* site);

void on_reclaim(void* ptr);

struct CensusEntry {
  std::string site;
  std::size_t count;
};

/// Current still-retired-not-yet-reclaimed pointers grouped by site,
/// sorted by descending count.
std::vector<CensusEntry> census();

/// Total registered pointers (for tests).
std::size_t registered_retirements();

#endif  // CATS_CHECKED_ENABLED

}  // namespace cats::check
