// Structural validator for the LFCA route tree (CATS_CHECKED builds).
//
// Walks every node reachable from the root — inside one EBR guard supplied
// by the caller — and verifies the invariants the paper's proofs rest on:
//
//   * Route-key BST order: every route key lies inside the key interval its
//     path implies.  Route keys are immutable and both adaptations preserve
//     search-tree order, so this holds even while updates, range queries and
//     adaptations run concurrently with the walk.
//   * Base-node containment: every container key lies inside the base
//     node's path interval.  Only checked in quiescent mode: the join
//     protocol intentionally publishes the joined container at the
//     neighbor's old slot (line 254) *before* splicing out the parent
//     (lines 255-265), so a concurrent walker can legitimately observe a
//     base node holding the union of two sibling ranges.
//   * Joining/invalidated reachability rules: in a quiescent tree no route
//     node is invalid or join-marked, every join_main is aborted (a
//     preparing/secured state would mean an operation returned with its
//     join unfinished), every join_neighbor's main node is done or aborted,
//     and every range base has a computed result.
//   * Container invariants: the policy's own deep check (treap
//     ordering/balance/size/fill/refcount, chunk sortedness) on every base
//     node's immutable container — safe in both modes.
//   * Canary sanity: reachable nodes are Alive (quiescent) or at worst
//     Retired (concurrent: a guard-protected walker may hold a pointer into
//     a subtree that was unlinked mid-walk); a Dead/poison canary means
//     use-after-free and is reported in both modes.
//   * parent pointers (quiescent): each base node's parent field names its
//     actual route parent — the field try_replace's unlink CAS depends on.
//
// The walker only reads: immutable fields directly, mutable fields through
// their atomics.  It never blocks writers and introduces no synchronization
// beyond the caller's guard.
#pragma once

#include <string>

#include "check/check.hpp"
#include "common/types.hpp"
#include "lfca/node.hpp"

#if CATS_CHECKED_ENABLED

namespace cats::check {

enum class TreeValidateMode {
  /// Full check; caller promises no concurrent operations.
  kQuiescent,
  /// Subset that holds mid-operation (used by --check-every-n-ops).
  kConcurrent,
};

namespace detail {

/// Formats a bound pointer for diagnostics ("-unbounded-" when nullptr).
template <class K>
std::string format_bound(const K* bound) {
  return bound == nullptr ? std::string("-unbounded-")
                          : cats::KeyTraits<K>::format(*bound);
}

// Path bounds are pointers into route keys — `lo` inclusive, `hi`
// exclusive, nullptr = unbounded — so any key type works, including its
// KeyTraits extremes (the former __int128 widening was integer-only).
template <class C>
void validate_tree_rec(lfca::detail::Node<C>* n,
                       lfca::detail::Node<C>* parent_route,
                       const typename C::Key* lo, const typename C::Key* hi,
                       TreeValidateMode mode, Report& report) {
  using lfca::detail::NodeType;
  using Node = lfca::detail::Node<C>;
  using K = typename C::Key;
  const auto lt = [](const K& a, const K& b) {
    return typename C::Compare{}(a, b);
  };

  if (!lfca::detail::is_real<C>(n)) {
    report.add("node %p: sentinel or null pointer reachable from the tree",
               static_cast<void*>(n));
    return;
  }

  // Canary first: everything else reads fields that poison would trash.
  const std::uint64_t canary =
      n->check_canary.load(std::memory_order_relaxed);
  switch (canary_state(canary)) {
    case CanaryState::kAlive:
      break;
    case CanaryState::kRetired:
      if (mode == TreeValidateMode::kQuiescent) {
        report.add("node %p: retired node still reachable in a quiescent "
                   "tree (premature retire)",
                   static_cast<void*>(n));
      }
      break;
    case CanaryState::kDead:
      report.add("node %p: canary is %s (0x%016llx) — reachable node was "
                 "freed or corrupted",
                 static_cast<void*>(n), canary_name(canary),
                 static_cast<unsigned long long>(canary));
      return;  // fields are not trustworthy past this point
  }

  if (n->type == NodeType::kRoute) {
    if ((lo != nullptr && lt(n->key, *lo)) ||
        (hi != nullptr && !lt(n->key, *hi))) {
      report.add("route %p: key %s outside its path interval [%s, %s)",
                 static_cast<void*>(n),
                 cats::KeyTraits<K>::format(n->key).c_str(),
                 format_bound(lo).c_str(), format_bound(hi).c_str());
    }
    if (mode == TreeValidateMode::kQuiescent) {
      if (!n->valid.load(std::memory_order_acquire)) {
        report.add("route %p: invalidated route node reachable in a "
                   "quiescent tree",
                   static_cast<void*>(n));
      }
      if (n->join_id.load(std::memory_order_acquire) != nullptr) {
        report.add("route %p: join-marked route node in a quiescent tree "
                   "(unrolled join mark)",
                   static_cast<void*>(n));
      }
    }
    validate_tree_rec<C>(n->left.load(std::memory_order_acquire), n, lo,
                         &n->key, mode, report);
    validate_tree_rec<C>(n->right.load(std::memory_order_acquire), n,
                         &n->key, hi, mode, report);
    return;
  }

  // --- base node ----------------------------------------------------------
  if (mode == TreeValidateMode::kQuiescent && n->parent != parent_route) {
    report.add("base %p: parent pointer %p does not name its actual route "
               "parent %p",
               static_cast<void*>(n), static_cast<void*>(n->parent),
               static_cast<void*>(parent_route));
  }

  switch (n->type) {
    case NodeType::kNormal:
      break;
    case NodeType::kJoinMain: {
      Node* state = n->neigh2.load(std::memory_order_acquire);
      if (mode == TreeValidateMode::kQuiescent &&
          state != Node::aborted()) {
        report.add("join_main %p: state is %s in a quiescent tree (join "
                   "never completed or rolled back)",
                   static_cast<void*>(n),
                   state == Node::preparing() ? "preparing"
                   : state == Node::done_mark()
                       ? "done but still reachable"
                       : "secured");
      }
      const std::uint32_t refs =
          n->main_refs.load(std::memory_order_relaxed);
      if (refs == 0) {
        report.add("join_main %p: main_refs is 0 while reachable",
                   static_cast<void*>(n));
      }
      break;
    }
    case NodeType::kJoinNeighbor: {
      Node* main = n->main_node;
      if (main == nullptr) {
        report.add("join_neighbor %p: null main_node",
                   static_cast<void*>(n));
        break;
      }
      const std::uint64_t main_canary =
          main->check_canary.load(std::memory_order_relaxed);
      if (canary_state(main_canary) == CanaryState::kDead) {
        report.add("join_neighbor %p: main_node %p was freed under it "
                   "(canary %s) — main_refs protocol broken",
                   static_cast<void*>(n), static_cast<void*>(main),
                   canary_name(main_canary));
        break;
      }
      if (main->main_refs.load(std::memory_order_relaxed) == 0) {
        report.add("join_neighbor %p: main_node %p has main_refs 0 while "
                   "still referenced",
                   static_cast<void*>(n), static_cast<void*>(main));
      }
      Node* state = main->neigh2.load(std::memory_order_acquire);
      if (mode == TreeValidateMode::kQuiescent &&
          state != Node::done_mark() && state != Node::aborted()) {
        report.add("join_neighbor %p: main_node %p state is neither done "
                   "nor aborted in a quiescent tree",
                   static_cast<void*>(n), static_cast<void*>(main));
      }
      break;
    }
    case NodeType::kRange: {
      if (n->storage == nullptr) {
        report.add("range_base %p: null result storage",
                   static_cast<void*>(n));
        break;
      }
      if (n->storage->rc.load(std::memory_order_relaxed) == 0) {
        report.add("range_base %p: result storage refcount is 0",
                   static_cast<void*>(n));
      }
      if (mode == TreeValidateMode::kQuiescent &&
          n->storage->result.load(std::memory_order_acquire) ==
              lfca::detail::not_set<C>()) {
        report.add("range_base %p: unlinearized range query left in a "
                   "quiescent tree",
                   static_cast<void*>(n));
      }
      break;
    }
    case NodeType::kRoute:
      break;  // unreachable
  }

  // Container: deep policy invariants always (immutable data), containment
  // only in quiescence (see file comment).
  if (!C::validate(n->data, &report)) {
    report.add("base %p: container failed its invariant checks (see above)",
               static_cast<void*>(n));
  } else if (!C::empty(n->data)) {
    if (mode == TreeValidateMode::kQuiescent) {
      const K first = C::min_key(n->data);
      const K last = C::max_key(n->data);
      if ((lo != nullptr && lt(first, *lo)) ||
          (hi != nullptr && !lt(last, *hi))) {
        report.add("base %p: container keys [%s, %s] escape the path "
                   "interval [%s, %s)",
                   static_cast<void*>(n),
                   cats::KeyTraits<K>::format(first).c_str(),
                   cats::KeyTraits<K>::format(last).c_str(),
                   format_bound(lo).c_str(), format_bound(hi).c_str());
      }
    }
  }
}

}  // namespace detail

/// Validates every invariant of the route tree under `root`.  Must be
/// called inside an EBR guard of the tree's domain.  Returns true if all
/// checks pass; failures are appended to `report` when non-null.
template <class C>
bool validate_tree(lfca::detail::Node<C>* root, TreeValidateMode mode,
                   Report* report = nullptr) {
  Report local;
  Report& out = report != nullptr ? *report : local;
  const std::size_t before = out.failure_count();
  if (root == nullptr) {
    out.add("tree root is null");
  } else {
    detail::validate_tree_rec<C>(root, nullptr, nullptr, nullptr, mode, out);
  }
  return out.failure_count() == before;
}

}  // namespace cats::check

#endif  // CATS_CHECKED_ENABLED
