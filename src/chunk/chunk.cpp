#include "chunk/chunk.hpp"

#include <atomic>

#include "common/catomic.hpp"
#include "common/strkey.hpp"

namespace cats::chunk {

namespace detail {

// Shared by every BasicChunk instantiation (see chunk_impl.hpp).
cats::atomic<std::size_t> g_live_nodes{0};

}  // namespace detail

// All member-function codegen for the supported key types lives here.
template struct BasicChunk<Key, Value, std::less<Key>>;
template struct BasicChunk<StrKey, Value, std::less<StrKey>>;

std::size_t live_nodes() {
  return detail::g_live_nodes.load(std::memory_order_relaxed);
}

}  // namespace cats::chunk
