#include "chunk/chunk.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <new>

#include "alloc/pool.hpp"
#include "common/catomic.hpp"

namespace cats::chunk {

namespace {
cats::atomic<std::size_t> g_live_nodes{0};
}  // namespace

/// One immutable, exactly-sized sorted array of items.
struct Node {
  mutable cats::atomic<std::uint64_t> rc;
  std::uint32_t count;
#if CATS_CHECKED_ENABLED
  /// Canary header; see check/check.hpp.  Like `rc`, initialized by a plain
  /// store in allocate() — the node is raw storage, never constructed.
  check::Canary check_canary;
#endif
  Item items[];  // flexible array member (GNU extension, exact allocation)
};

namespace {

std::size_t allocation_bytes(std::uint32_t count) {
  return sizeof(Node) + count * sizeof(Item);
}

Node* allocate(std::uint32_t count) {
  // Chunk nodes are rebuilt wholesale on every update; route the common
  // sizes through the slab pool (oversize chunks fall through to the heap
  // inside pool_alloc).
  void* memory = alloc::pool_alloc(allocation_bytes(count));
  cats::sim_note_alloc(memory, allocation_bytes(count));
  Node* node = static_cast<Node*>(memory);
  node->rc.store(1, std::memory_order_relaxed);
  node->count = count;
  CATS_CHECKED_ONLY(
      node->check_canary.store(check::kCanaryAlive, std::memory_order_relaxed));
  g_live_nodes.fetch_add(1, std::memory_order_relaxed);
  return node;
}

const Item* lower_bound(const Node* node, Key key) {
  return std::lower_bound(
      node->items, node->items + node->count, key,
      [](const Item& item, Key k) { return item.key < k; });
}

}  // namespace

namespace detail {

void incref(const Node* node) noexcept {
  CATS_CHECKED_ONLY(
      check::canary_expect_alive(node->check_canary, "chunk node (incref)"));
  node->rc.fetch_add(1, std::memory_order_relaxed);
}

void decref(const Node* node) noexcept {
  CATS_CHECKED_ONLY(
      check::canary_expect_alive(node->check_canary, "chunk node (decref)"));
  const std::uint64_t prev = node->rc.fetch_sub(1, std::memory_order_acq_rel);
  CATS_CHECK(prev != 0, "chunk node %p: refcount underflow",
             static_cast<const void*>(node));
  if (prev == 1) {
    g_live_nodes.fetch_sub(1, std::memory_order_relaxed);
    // Compute the size before the poison overwrites `count`; pool_free
    // needs it too (the pool's size classes are keyed on it).
    const std::size_t bytes = allocation_bytes(node->count);
    CATS_CHECKED_ONLY(check::poison(const_cast<Node*>(node), bytes));
    if (!cats::sim_quarantine_free(const_cast<Node*>(node), bytes,
                                   &alloc::pool_free))
      alloc::pool_free(const_cast<Node*>(node), bytes);
  }
}

}  // namespace detail

bool lookup(const Node* chunk, Key key, Value* value_out) {
  if (chunk == nullptr) return false;
  const Item* pos = lower_bound(chunk, key);
  if (pos == chunk->items + chunk->count || pos->key != key) return false;
  if (value_out != nullptr) *value_out = pos->value;
  return true;
}

std::size_t size(const Node* chunk) {
  return chunk == nullptr ? 0 : chunk->count;
}

bool empty(const Node* chunk) { return chunk == nullptr; }

bool less_than_two_items(const Node* chunk) { return size(chunk) < 2; }

Key min_key(const Node* chunk) {
  assert(chunk != nullptr);
  return chunk->items[0].key;
}

Key max_key(const Node* chunk) {
  assert(chunk != nullptr);
  return chunk->items[chunk->count - 1].key;
}

void for_range(const Node* chunk, Key lo, Key hi, ItemVisitor visit) {
  if (chunk == nullptr) return;
  const Item* end = chunk->items + chunk->count;
  for (const Item* pos = lower_bound(chunk, lo); pos != end && pos->key <= hi;
       ++pos) {
    visit(pos->key, pos->value);
  }
}

void for_all(const Node* chunk, ItemVisitor visit) {
  for_range(chunk, kKeyMin, kKeyMax, visit);
}

Ref insert(const Node* chunk, Key key, Value value, bool* replaced_out) {
  if (chunk == nullptr) {
    Node* fresh = allocate(1);
    fresh->items[0] = Item{key, value};
    if (replaced_out != nullptr) *replaced_out = false;
    return Ref::adopt(fresh);
  }
  const Item* pos = lower_bound(chunk, key);
  const auto prefix = static_cast<std::uint32_t>(pos - chunk->items);
  const bool replaces =
      pos != chunk->items + chunk->count && pos->key == key;
  if (replaced_out != nullptr) *replaced_out = replaces;
  Node* fresh = allocate(chunk->count + (replaces ? 0 : 1));
  std::copy_n(chunk->items, prefix, fresh->items);
  fresh->items[prefix] = Item{key, value};
  std::copy(chunk->items + prefix + (replaces ? 1 : 0),
            chunk->items + chunk->count, fresh->items + prefix + 1);
  return Ref::adopt(fresh);
}

Ref remove(const Node* chunk, Key key, bool* removed_out) {
  if (removed_out != nullptr) *removed_out = false;
  if (chunk == nullptr) return Ref();
  const Item* pos = lower_bound(chunk, key);
  if (pos == chunk->items + chunk->count || pos->key != key) {
    detail::incref(chunk);
    return Ref::adopt(chunk);  // unchanged version
  }
  if (removed_out != nullptr) *removed_out = true;
  if (chunk->count == 1) return Ref();
  const auto prefix = static_cast<std::uint32_t>(pos - chunk->items);
  Node* fresh = allocate(chunk->count - 1);
  std::copy_n(chunk->items, prefix, fresh->items);
  std::copy(pos + 1, chunk->items + chunk->count, fresh->items + prefix);
  return Ref::adopt(fresh);
}

Ref join(const Node* left, const Node* right) {
  if (left == nullptr) {
    if (right != nullptr) detail::incref(right);
    return Ref::adopt(right);
  }
  if (right == nullptr) {
    detail::incref(left);
    return Ref::adopt(left);
  }
  assert(max_key(left) < min_key(right));
  Node* fresh = allocate(left->count + right->count);
  std::copy_n(left->items, left->count, fresh->items);
  std::copy_n(right->items, right->count, fresh->items + left->count);
  return Ref::adopt(fresh);
}

void split_evenly(const Node* chunk, Ref* left_out, Ref* right_out,
                  Key* split_key_out) {
  assert(size(chunk) >= 2);
  const std::uint32_t half = chunk->count / 2;
  Node* left = allocate(half);
  Node* right = allocate(chunk->count - half);
  std::copy_n(chunk->items, half, left->items);
  std::copy(chunk->items + half, chunk->items + chunk->count, right->items);
  *left_out = Ref::adopt(left);
  *right_out = Ref::adopt(right);
  *split_key_out = right->items[0].key;
}

bool validate(const Node* chunk, check::Report* report) {
  if (chunk == nullptr) return true;
  const void* p = chunk;
#if CATS_CHECKED_ENABLED
  const std::uint64_t canary =
      chunk->check_canary.load(std::memory_order_relaxed);
  if (check::canary_state(canary) != check::CanaryState::kAlive) {
    if (report != nullptr) {
      report->add("chunk node %p: canary is %s (0x%016llx), not alive", p,
                  check::canary_name(canary),
                  static_cast<unsigned long long>(canary));
    }
    return false;  // remaining fields are as untrustworthy as the canary
  }
#endif
  bool ok = true;
  if (chunk->count == 0) {  // empty is represented as null
    if (report != nullptr) {
      report->add("chunk node %p: count is 0 (empty must be null)", p);
    }
    ok = false;
  }
  if (chunk->rc.load(std::memory_order_relaxed) == 0) {
    if (report != nullptr) {
      report->add("chunk node %p: refcount is 0 but node is reachable", p);
    }
    ok = false;
  }
  for (std::uint32_t i = 1; i < chunk->count; ++i) {
    if (chunk->items[i - 1].key >= chunk->items[i].key) {
      if (report != nullptr) {
        report->add(
            "chunk node %p: items[%u].key %lld >= items[%u].key %lld "
            "(not strictly ascending)",
            p, i - 1, static_cast<long long>(chunk->items[i - 1].key), i,
            static_cast<long long>(chunk->items[i].key));
      }
      ok = false;
    }
  }
  return ok;
}

bool check_invariants(const Node* chunk) { return validate(chunk, nullptr); }

std::size_t live_nodes() {
  return g_live_nodes.load(std::memory_order_relaxed);
}

}  // namespace cats::chunk
