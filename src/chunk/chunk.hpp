// Immutable sorted-array container ("chunk").
//
// The alternative leaf container discussed in the paper's §3: the k-ary
// search tree and the Leaplist keep their items in immutable ARRAYS, which
// makes scans as cache friendly as possible but costs O(n) per update (the
// whole array is copied).  The paper points out that this is exactly why
// those structures degrade when their granularity parameter is set high —
// and the LFCA tree's "Flexible" property says any container with this
// interface can be plugged in.  This module provides the array variant so
// the flexibility claim is exercised end to end (see BasicLfcaTree and
// bench_ablation).
//
// The implementation is the BasicChunk<K, V, Compare> template
// (chunk_impl.hpp); this header keeps the historical free-function API as
// inline wrappers over the default <int64_t, uint64_t, std::less>
// instantiation, explicitly instantiated in chunk.cpp.
//
// Complexity (n items): lookup O(log n); insert/remove/join/split O(n);
// for_range O(log n + k).
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>

#include "check/check.hpp"
#include "chunk/chunk_impl.hpp"
#include "common/function_ref.hpp"
#include "common/types.hpp"

namespace cats::chunk {

/// The default (integer-key) instantiation; codegen lives in chunk.cpp.
using Impl = BasicChunk<Key, Value, std::less<Key>>;
extern template struct BasicChunk<Key, Value, std::less<Key>>;

using Node = Impl::Node;
using Ref = Impl::Ref;

namespace detail {
inline void incref(const Node* node) noexcept { Impl::incref(node); }
inline void decref(const Node* node) noexcept { Impl::decref(node); }
}  // namespace detail

inline bool lookup(const Node* chunk, Key key, Value* value_out) {
  return Impl::lookup(chunk, key, value_out);
}
inline std::size_t size(const Node* chunk) { return Impl::size(chunk); }
inline bool empty(const Node* chunk) { return Impl::empty(chunk); }
inline bool less_than_two_items(const Node* chunk) {
  return Impl::less_than_two_items(chunk);
}
inline Key min_key(const Node* chunk) { return Impl::min_key(chunk); }
inline Key max_key(const Node* chunk) { return Impl::max_key(chunk); }
inline void for_range(const Node* chunk, Key lo, Key hi, ItemVisitor visit) {
  Impl::for_range(chunk, lo, hi, visit);
}
inline void for_all(const Node* chunk, ItemVisitor visit) {
  Impl::for_all(chunk, visit);
}

inline Ref insert(const Node* chunk, Key key, Value value,
                  bool* replaced_out = nullptr) {
  return Impl::insert(chunk, key, value, replaced_out);
}
inline Ref remove(const Node* chunk, Key key, bool* removed_out = nullptr) {
  return Impl::remove(chunk, key, removed_out);
}
inline Ref join(const Node* left, const Node* right) {
  return Impl::join(left, right);
}
inline void split_evenly(const Node* chunk, Ref* left_out, Ref* right_out,
                         Key* split_key_out) {
  Impl::split_evenly(chunk, left_out, right_out, split_key_out);
}

/// Structural checks for tests (sorted, unique, cached bounds).
inline bool check_invariants(const Node* chunk) {
  return Impl::check_invariants(chunk);
}
/// Same checks with one diagnostic line per violated invariant appended to
/// `report` (CATS_CHECKED builds additionally verify the node canary).
/// Returns true if everything holds.
inline bool validate(const Node* chunk, check::Report* report) {
  return Impl::validate(chunk, report);
}
/// Total live node count across all chunks and all key-type instantiations.
std::size_t live_nodes();

}  // namespace cats::chunk
