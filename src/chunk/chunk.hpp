// Immutable sorted-array container ("chunk").
//
// The alternative leaf container discussed in the paper's §3: the k-ary
// search tree and the Leaplist keep their items in immutable ARRAYS, which
// makes scans as cache friendly as possible but costs O(n) per update (the
// whole array is copied).  The paper points out that this is exactly why
// those structures degrade when their granularity parameter is set high —
// and the LFCA tree's "Flexible" property says any container with this
// interface can be plugged in.  This module provides the array variant so
// the flexibility claim is exercised end to end (see BasicLfcaTree and
// bench_ablation).
//
// Complexity (n items): lookup O(log n); insert/remove/join/split O(n);
// for_range O(log n + k).
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>

#include "check/check.hpp"
#include "common/function_ref.hpp"
#include "common/types.hpp"

namespace cats::chunk {

struct Node;  // opaque; defined in chunk.cpp

namespace detail {
void incref(const Node* node) noexcept;
void decref(const Node* node) noexcept;
}  // namespace detail

/// Shared-ownership handle; default-constructed = empty container.
class Ref {
 public:
  Ref() noexcept = default;
  static Ref adopt(const Node* node) noexcept {
    Ref ref;
    ref.node_ = node;
    return ref;
  }
  Ref(const Ref& other) noexcept : node_(other.node_) {
    if (node_ != nullptr) detail::incref(node_);
  }
  Ref(Ref&& other) noexcept : node_(std::exchange(other.node_, nullptr)) {}
  Ref& operator=(const Ref& other) noexcept {
    Ref copy(other);
    swap(copy);
    return *this;
  }
  Ref& operator=(Ref&& other) noexcept {
    Ref moved(std::move(other));
    swap(moved);
    return *this;
  }
  ~Ref() {
    if (node_ != nullptr) detail::decref(node_);
  }
  void swap(Ref& other) noexcept { std::swap(node_, other.node_); }
  const Node* get() const noexcept { return node_; }
  explicit operator bool() const noexcept { return node_ != nullptr; }
  const Node* release() noexcept { return std::exchange(node_, nullptr); }

 private:
  const Node* node_ = nullptr;
};

bool lookup(const Node* chunk, Key key, Value* value_out);
std::size_t size(const Node* chunk);
bool empty(const Node* chunk);
bool less_than_two_items(const Node* chunk);
Key min_key(const Node* chunk);
Key max_key(const Node* chunk);
void for_range(const Node* chunk, Key lo, Key hi, ItemVisitor visit);
void for_all(const Node* chunk, ItemVisitor visit);

Ref insert(const Node* chunk, Key key, Value value,
           bool* replaced_out = nullptr);
Ref remove(const Node* chunk, Key key, bool* removed_out = nullptr);
Ref join(const Node* left, const Node* right);
void split_evenly(const Node* chunk, Ref* left_out, Ref* right_out,
                  Key* split_key_out);

/// Structural checks for tests (sorted, unique, cached bounds).
bool check_invariants(const Node* chunk);
/// Same checks with one diagnostic line per violated invariant appended to
/// `report` (CATS_CHECKED builds additionally verify the node canary).
/// Returns true if everything holds.
bool validate(const Node* chunk, check::Report* report);
std::size_t live_nodes();

}  // namespace cats::chunk
