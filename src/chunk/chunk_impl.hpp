// Template implementation of the immutable sorted-array container (see
// chunk.hpp for the design discussion).  BasicChunk<K, V, Compare> mirrors
// BasicTreap's struct-as-namespace shape: one explicit instantiation per key
// type in chunk.cpp carries all codegen, and chunk.hpp wraps the default
// integer instantiation in the historical free-function API.
//
// The node is a flexible-array-member allocation that is never constructed —
// fields are written with plain stores into raw pool storage — so K and V
// must be trivially copyable and trivially destructible (enforced below;
// StrKey qualifies by design).
#pragma once

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <new>
#include <type_traits>
#include <utility>

#include "alloc/pool.hpp"
#include "check/check.hpp"
#include "common/catomic.hpp"
#include "common/function_ref.hpp"
#include "common/types.hpp"

namespace cats::chunk {

namespace detail {

/// Process-wide live-node counter shared by every BasicChunk instantiation
/// (defined in chunk.cpp), keeping leak checks meaningful across mixed
/// key-type workloads.
extern cats::atomic<std::size_t> g_live_nodes;

}  // namespace detail

template <class K, class V, class Compare = std::less<K>>
struct BasicChunk {
  static_assert(std::is_trivially_copyable_v<K> &&
                    std::is_trivially_destructible_v<K>,
                "chunk keys are raw-copied into unconstructed storage");
  static_assert(std::is_trivially_copyable_v<V> &&
                    std::is_trivially_destructible_v<V>,
                "chunk values are raw-copied into unconstructed storage");

  using Key = K;
  using Value = V;
  using Item = BasicItem<K, V>;
  using Visitor = BasicItemVisitor<K, V>;

  static bool lt(const K& a, const K& b) { return Compare{}(a, b); }
  static bool le(const K& a, const K& b) { return !Compare{}(b, a); }
  static bool eq(const K& a, const K& b) {
    return !Compare{}(a, b) && !Compare{}(b, a);
  }

  /// One immutable, exactly-sized sorted array of items.
  struct Node {
    mutable cats::atomic<std::uint64_t> rc;
    std::uint32_t count;
#if CATS_CHECKED_ENABLED
    /// Canary header; see check/check.hpp.  Like `rc`, initialized by a
    /// plain store in allocate() — the node is raw storage, never
    /// constructed.
    check::Canary check_canary;
#endif
    Item items[];  // flexible array member (GNU extension, exact allocation)
  };

  static std::size_t allocation_bytes(std::uint32_t count) {
    return sizeof(Node) + count * sizeof(Item);
  }

  static Node* allocate(std::uint32_t count) {
    // Chunk nodes are rebuilt wholesale on every update; route the common
    // sizes through the slab pool (oversize chunks fall through to the heap
    // inside pool_alloc).
    void* memory = alloc::pool_alloc(allocation_bytes(count));
    cats::sim_note_alloc(memory, allocation_bytes(count));
    Node* node = static_cast<Node*>(memory);
    node->rc.store(1, std::memory_order_relaxed);
    node->count = count;
    CATS_CHECKED_ONLY(node->check_canary.store(check::kCanaryAlive,
                                               std::memory_order_relaxed));
    detail::g_live_nodes.fetch_add(1, std::memory_order_relaxed);
    return node;
  }

  static const Item* lower_bound(const Node* node, const K& key) {
    return std::lower_bound(
        node->items, node->items + node->count, key,
        [](const Item& item, const K& k) { return Compare{}(item.key, k); });
  }

  static void incref(const Node* node) noexcept {
    CATS_CHECKED_ONLY(
        check::canary_expect_alive(node->check_canary, "chunk node (incref)"));
    node->rc.fetch_add(1, std::memory_order_relaxed);
  }

  static void decref(const Node* node) noexcept {
    CATS_CHECKED_ONLY(
        check::canary_expect_alive(node->check_canary, "chunk node (decref)"));
    const std::uint64_t prev = node->rc.fetch_sub(1, std::memory_order_acq_rel);
    CATS_CHECK(prev != 0, "chunk node %p: refcount underflow",
               static_cast<const void*>(node));
    if (prev == 1) {
      detail::g_live_nodes.fetch_sub(1, std::memory_order_relaxed);
      // Compute the size before the poison overwrites `count`; pool_free
      // needs it too (the pool's size classes are keyed on it).
      const std::size_t bytes = allocation_bytes(node->count);
      CATS_CHECKED_ONLY(check::poison(const_cast<Node*>(node), bytes));
      if (!cats::sim_quarantine_free(const_cast<Node*>(node), bytes,
                                     &alloc::pool_free))
        alloc::pool_free(const_cast<Node*>(node), bytes);
    }
  }

  /// Shared-ownership handle; default-constructed = empty container.
  class Ref {
   public:
    Ref() noexcept = default;
    static Ref adopt(const Node* node) noexcept {
      Ref ref;
      ref.node_ = node;
      return ref;
    }
    Ref(const Ref& other) noexcept : node_(other.node_) {
      if (node_ != nullptr) incref(node_);
    }
    Ref(Ref&& other) noexcept : node_(std::exchange(other.node_, nullptr)) {}
    Ref& operator=(const Ref& other) noexcept {
      Ref copy(other);
      swap(copy);
      return *this;
    }
    Ref& operator=(Ref&& other) noexcept {
      Ref moved(std::move(other));
      swap(moved);
      return *this;
    }
    ~Ref() {
      if (node_ != nullptr) decref(node_);
    }
    void swap(Ref& other) noexcept { std::swap(node_, other.node_); }
    const Node* get() const noexcept { return node_; }
    explicit operator bool() const noexcept { return node_ != nullptr; }
    const Node* release() noexcept { return std::exchange(node_, nullptr); }

   private:
    const Node* node_ = nullptr;
  };

  static bool lookup(const Node* chunk, const K& key, V* value_out) {
    if (chunk == nullptr) return false;
    const Item* pos = lower_bound(chunk, key);
    if (pos == chunk->items + chunk->count || !eq(pos->key, key)) return false;
    if (value_out != nullptr) *value_out = pos->value;
    return true;
  }

  static std::size_t size(const Node* chunk) {
    return chunk == nullptr ? 0 : chunk->count;
  }

  static bool empty(const Node* chunk) { return chunk == nullptr; }

  static bool less_than_two_items(const Node* chunk) {
    return size(chunk) < 2;
  }

  static K min_key(const Node* chunk) {
    assert(chunk != nullptr);
    return chunk->items[0].key;
  }

  static K max_key(const Node* chunk) {
    assert(chunk != nullptr);
    return chunk->items[chunk->count - 1].key;
  }

  static void for_range(const Node* chunk, const K& lo, const K& hi,
                        Visitor visit) {
    if (chunk == nullptr) return;
    const Item* end = chunk->items + chunk->count;
    for (const Item* pos = lower_bound(chunk, lo);
         pos != end && le(pos->key, hi); ++pos) {
      visit(pos->key, pos->value);
    }
  }

  static void for_all(const Node* chunk, Visitor visit) {
    for_range(chunk, KeyTraits<K>::min(), KeyTraits<K>::max(), visit);
  }

  static Ref insert(const Node* chunk, const K& key, const V& value,
                    bool* replaced_out = nullptr) {
    if (chunk == nullptr) {
      Node* fresh = allocate(1);
      fresh->items[0] = Item{key, value};
      if (replaced_out != nullptr) *replaced_out = false;
      return Ref::adopt(fresh);
    }
    const Item* pos = lower_bound(chunk, key);
    const auto prefix = static_cast<std::uint32_t>(pos - chunk->items);
    const bool replaces =
        pos != chunk->items + chunk->count && eq(pos->key, key);
    if (replaced_out != nullptr) *replaced_out = replaces;
    Node* fresh = allocate(chunk->count + (replaces ? 0 : 1));
    std::copy_n(chunk->items, prefix, fresh->items);
    fresh->items[prefix] = Item{key, value};
    std::copy(chunk->items + prefix + (replaces ? 1 : 0),
              chunk->items + chunk->count, fresh->items + prefix + 1);
    return Ref::adopt(fresh);
  }

  static Ref remove(const Node* chunk, const K& key,
                    bool* removed_out = nullptr) {
    if (removed_out != nullptr) *removed_out = false;
    if (chunk == nullptr) return Ref();
    const Item* pos = lower_bound(chunk, key);
    if (pos == chunk->items + chunk->count || !eq(pos->key, key)) {
      incref(chunk);
      return Ref::adopt(chunk);  // unchanged version
    }
    if (removed_out != nullptr) *removed_out = true;
    if (chunk->count == 1) return Ref();
    const auto prefix = static_cast<std::uint32_t>(pos - chunk->items);
    Node* fresh = allocate(chunk->count - 1);
    std::copy_n(chunk->items, prefix, fresh->items);
    std::copy(pos + 1, chunk->items + chunk->count, fresh->items + prefix);
    return Ref::adopt(fresh);
  }

  static Ref join(const Node* left, const Node* right) {
    if (left == nullptr) {
      if (right != nullptr) incref(right);
      return Ref::adopt(right);
    }
    if (right == nullptr) {
      incref(left);
      return Ref::adopt(left);
    }
    assert(lt(max_key(left), min_key(right)));
    Node* fresh = allocate(left->count + right->count);
    std::copy_n(left->items, left->count, fresh->items);
    std::copy_n(right->items, right->count, fresh->items + left->count);
    return Ref::adopt(fresh);
  }

  static void split_evenly(const Node* chunk, Ref* left_out, Ref* right_out,
                           K* split_key_out) {
    assert(size(chunk) >= 2);
    const std::uint32_t half = chunk->count / 2;
    Node* left = allocate(half);
    Node* right = allocate(chunk->count - half);
    std::copy_n(chunk->items, half, left->items);
    std::copy(chunk->items + half, chunk->items + chunk->count, right->items);
    *left_out = Ref::adopt(left);
    *right_out = Ref::adopt(right);
    *split_key_out = right->items[0].key;
  }

  static bool validate(const Node* chunk, check::Report* report) {
    if (chunk == nullptr) return true;
    const void* p = chunk;
#if CATS_CHECKED_ENABLED
    const std::uint64_t canary =
        chunk->check_canary.load(std::memory_order_relaxed);
    if (check::canary_state(canary) != check::CanaryState::kAlive) {
      if (report != nullptr) {
        report->add("chunk node %p: canary is %s (0x%016llx), not alive", p,
                    check::canary_name(canary),
                    static_cast<unsigned long long>(canary));
      }
      return false;  // remaining fields are as untrustworthy as the canary
    }
#endif
    bool ok = true;
    if (chunk->count == 0) {  // empty is represented as null
      if (report != nullptr) {
        report->add("chunk node %p: count is 0 (empty must be null)", p);
      }
      ok = false;
    }
    if (chunk->rc.load(std::memory_order_relaxed) == 0) {
      if (report != nullptr) {
        report->add("chunk node %p: refcount is 0 but node is reachable", p);
      }
      ok = false;
    }
    for (std::uint32_t i = 1; i < chunk->count; ++i) {
      if (!lt(chunk->items[i - 1].key, chunk->items[i].key)) {
        if (report != nullptr) {
          report->add(
              "chunk node %p: items[%u].key %s >= items[%u].key %s "
              "(not strictly ascending)",
              p, i - 1, KeyTraits<K>::format(chunk->items[i - 1].key).c_str(),
              i, KeyTraits<K>::format(chunk->items[i].key).c_str());
        }
        ok = false;
      }
    }
    return ok;
  }

  static bool check_invariants(const Node* chunk) {
    return validate(chunk, nullptr);
  }
};

}  // namespace cats::chunk
