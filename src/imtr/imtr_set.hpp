// Im-Tr-Coarse: the coarse-grained snapshot baseline from the paper's
// introduction (§1).
//
// A single mutable reference points at an immutable balanced tree (the same
// fat-leaf container the LFCA tree uses).  Updates build a new version in
// O(log n) by path copying and install it with one CAS on the root; range
// queries read the root once — a constant conflict time — and then traverse
// the snapshot at leisure.  This is the scheme Herlihy [9] describes and the
// upper-right corner of the granularity trade-off: unbeatable for large
// range queries, a single global hot spot for updates.
#pragma once

#include <atomic>
#include <cstddef>

#include "common/function_ref.hpp"
#include "common/types.hpp"
#include "reclaim/ebr.hpp"
#include "treap/treap.hpp"

namespace cats::imtr {

class ImTreeSet {
 public:
  explicit ImTreeSet(reclaim::Domain& domain = reclaim::Domain::global())
      : domain_(domain), root_(nullptr) {}

  // catslint: quiescent(destructor; caller guarantees no concurrent access)
  ~ImTreeSet() {
    const treap::Node* root = root_.load(std::memory_order_relaxed);
    if (root != nullptr) treap::detail::decref(root);
  }

  ImTreeSet(const ImTreeSet&) = delete;
  ImTreeSet& operator=(const ImTreeSet&) = delete;

  /// Lock-free; returns true iff the key was not present before.
  bool insert(Key key, Value value) {
    reclaim::Domain::Guard guard(domain_);
    while (true) {
      const treap::Node* old_root = root_.load(std::memory_order_acquire);
      bool replaced = false;
      treap::Ref next = treap::insert(old_root, key, value, &replaced);
      if (publish(old_root, next)) return !replaced;
    }
  }

  /// Lock-free; returns true iff the key was present.
  bool remove(Key key) {
    reclaim::Domain::Guard guard(domain_);
    while (true) {
      const treap::Node* old_root = root_.load(std::memory_order_acquire);
      bool removed = false;
      treap::Ref next = treap::remove(old_root, key, &removed);
      if (!removed) return false;  // nothing to publish
      if (publish(old_root, next)) return true;
    }
  }

  /// Wait-free.
  bool lookup(Key key, Value* value_out = nullptr) const {
    reclaim::Domain::Guard guard(domain_);
    return treap::lookup(root_.load(std::memory_order_acquire), key,
                         value_out);
  }

  /// Wait-free snapshot range query with O(1) conflict time.
  void range_query(Key lo, Key hi, ItemVisitor visit) const {
    reclaim::Domain::Guard guard(domain_);
    treap::for_range(root_.load(std::memory_order_acquire), lo, hi, visit);
  }

  std::size_t size() const {
    reclaim::Domain::Guard guard(domain_);
    return treap::size(root_.load(std::memory_order_acquire));
  }

  /// O(1) linearizable clone — the multi-item operation the paper contrasts
  /// with SnapTree's (§3): with a persistent container behind one mutable
  /// reference, cloning is just sharing the current version.
  ImTreeSet clone() const {
    reclaim::Domain::Guard guard(domain_);
    ImTreeSet copy(domain_);
    const treap::Node* root = root_.load(std::memory_order_acquire);
    if (root != nullptr) {
      treap::detail::incref(root);
      copy.root_.store(root, std::memory_order_release);
    }
    return copy;
  }

  ImTreeSet(ImTreeSet&& other) noexcept
      : domain_(other.domain_),
        root_(other.root_.exchange(nullptr, std::memory_order_acq_rel)) {}

  reclaim::Domain& domain() const { return domain_; }

 private:
  /// Installs `next` over `expected`; on success the old version is retired
  /// (its reference released once no reader can hold it).
  bool publish(const treap::Node* expected, treap::Ref& next) {
    const treap::Node* desired = next.get();
    if (root_.compare_exchange_strong(expected, desired,
                                      std::memory_order_acq_rel)) {
      next.release();  // ownership moved into root_
      if (expected != nullptr) {
        // Shared retire: the deleter is a decref, and path-copying updates
        // can briefly leave the displaced root reachable as a subtree of a
        // later version that is itself retired.
        domain_.retire_shared(
            const_cast<treap::Node*>(expected), +[](void* p) {
              treap::detail::decref(static_cast<const treap::Node*>(p));
            });
      }
      return true;
    }
    return false;
  }

  reclaim::Domain& domain_;
  std::atomic<const treap::Node*> root_;
};

}  // namespace cats::imtr
